// Benchmarks regenerating the paper's tables and figures. Each benchmark
// reports the paper's metric — page I/Os per query — via ReportMetric
// alongside wall-clock time. Run with:
//
//	go test -bench=. -benchmem
//
// Mapping to the paper (see DESIGN.md for the experiment index):
//
//	BenchmarkFigure1*        Figure 1 (E1)
//	BenchmarkSection74*      section 7.4 cost example (E8)
//	BenchmarkCountBug*       section 5.1 (E2)
//	BenchmarkNonEquality*    section 5.3 (E5)
//	BenchmarkDuplicates*     section 5.4 (E6)
//	BenchmarkSavingsSweep*   section 4 claim (E11)
//	BenchmarkTempTable*      section 7.2 temp-creation cost (E12)
//	BenchmarkExtended*       section 8 predicates (E10)
//	BenchmarkGeneralNesting  section 9.1 recursive procedure (E9)
package nestedsql_test

import (
	"fmt"
	"testing"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/metamorph"
	"repro/internal/planner"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/spill"
	"repro/internal/sqlparser"
	"repro/internal/transform"
	"repro/internal/workload"
)

// benchQuery executes sql repeatedly on a freshly-loaded database and
// reports average page I/Os per query.
func benchQuery(b *testing.B, mk func() *engine.DB, sql string, opts engine.Options) {
	b.Helper()
	db := mk()
	var totalIO int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(sql, opts)
		if err != nil {
			b.Fatal(err)
		}
		totalIO += res.Stats.Total()
	}
	b.ReportMetric(float64(totalIO)/float64(b.N), "pageIO/op")
}

func mkFixture(bufferPages int, load func(*workload.DB) error) func() *engine.DB {
	return func() *engine.DB {
		db := engine.New(bufferPages)
		if err := load(&workload.DB{Cat: db.Catalog(), Store: db.Store()}); err != nil {
			panic(err)
		}
		return db
	}
}

func mkSynthetic(bufferPages int, cfg workload.SyntheticConfig) func() *engine.DB {
	return func() *engine.DB {
		db := engine.New(bufferPages)
		if err := workload.LoadSynthetic(&workload.DB{Cat: db.Catalog(), Store: db.Store()}, cfg); err != nil {
			panic(err)
		}
		return db
	}
}

// ---- E1: Figure 1, measured on synthetic data in the paper's regime ----

var figure1Cfg = workload.SyntheticConfig{
	Name:        "figure1",
	OuterTuples: 400, InnerTuples: 800,
	OuterPerPage: 10, InnerPerPage: 10,
	JoinDomain: 80, Selectivity: 0.25, MatchFraction: 0.5,
	Seed: 1987,
}

func BenchmarkFigure1TypeN(b *testing.B) {
	sql := workload.TypeNQuery(figure1Cfg)
	b.Run("nested-iteration", func(b *testing.B) {
		benchQuery(b, mkSynthetic(8, figure1Cfg), sql, engine.Options{Strategy: engine.NestedIteration})
	})
	b.Run("transform", func(b *testing.B) {
		benchQuery(b, mkSynthetic(8, figure1Cfg), sql, engine.Options{Strategy: engine.TransformJA2})
	})
}

func BenchmarkFigure1TypeJ(b *testing.B) {
	sql := workload.TypeJQuery(figure1Cfg)
	b.Run("nested-iteration", func(b *testing.B) {
		benchQuery(b, mkSynthetic(8, figure1Cfg), sql, engine.Options{Strategy: engine.NestedIteration})
	})
	b.Run("transform", func(b *testing.B) {
		benchQuery(b, mkSynthetic(8, figure1Cfg), sql, engine.Options{Strategy: engine.TransformJA2})
	})
}

func BenchmarkFigure1TypeJA(b *testing.B) {
	sql := workload.TypeJAQuery(figure1Cfg)
	b.Run("nested-iteration", func(b *testing.B) {
		benchQuery(b, mkSynthetic(8, figure1Cfg), sql, engine.Options{Strategy: engine.NestedIteration})
	})
	b.Run("transform", func(b *testing.B) {
		benchQuery(b, mkSynthetic(8, figure1Cfg), sql, engine.Options{Strategy: engine.TransformJA2})
	})
}

// ---- E8: the section 7.4 example at the paper's exact scale (Pi=50,
// Pj=30, B=6, f(i)·Ni=100; nested iteration measures exactly 3050). ----

var cost74Cfg = workload.SyntheticConfig{
	Name:        "cost74",
	OuterTuples: 500, InnerTuples: 300,
	OuterPerPage: 10, InnerPerPage: 10,
	JoinDomain: 350, Selectivity: 0.2, MatchFraction: 0.6,
	Seed: 74,
}

func BenchmarkSection74(b *testing.B) {
	sql := workload.TypeJAMaxQuery(cost74Cfg)
	b.Run("nested-iteration", func(b *testing.B) {
		benchQuery(b, mkSynthetic(6, cost74Cfg), sql, engine.Options{Strategy: engine.NestedIteration})
	})
	combos := []struct {
		name        string
		temp, final planner.JoinMethod
	}{
		{"merge-merge", planner.JoinMerge, planner.JoinMerge},
		{"merge-nl", planner.JoinMerge, planner.JoinNL},
		{"nl-merge", planner.JoinNL, planner.JoinMerge},
		{"nl-nl", planner.JoinNL, planner.JoinNL},
	}
	for _, c := range combos {
		b.Run(c.name, func(b *testing.B) {
			benchQuery(b, mkSynthetic(6, cost74Cfg), sql, engine.Options{
				Strategy: engine.TransformJA2,
				Planner:  planner.Options{TempJoin: c.temp, FinalJoin: c.final, TempTuplesPerPage: 10},
			})
		})
	}
}

// ---- E2/E5/E6: the semantic counterexamples as micro-benchmarks ----

func BenchmarkCountBugQ2(b *testing.B) {
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2, engine.TransformKim} {
		b.Run(s.String(), func(b *testing.B) {
			benchQuery(b, mkFixture(8, workload.LoadKiessling), workload.KiesslingQ2,
				engine.Options{Strategy: s})
		})
	}
}

func BenchmarkNonEqualityQ5(b *testing.B) {
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2, engine.TransformKim} {
		b.Run(s.String(), func(b *testing.B) {
			benchQuery(b, mkFixture(8, workload.LoadNonEquality), workload.GanskiQ5,
				engine.Options{Strategy: s})
		})
	}
}

func BenchmarkDuplicatesQ2(b *testing.B) {
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		b.Run(s.String(), func(b *testing.B) {
			benchQuery(b, mkFixture(8, workload.LoadDuplicates), workload.KiesslingQ2,
				engine.Options{Strategy: s})
		})
	}
}

// ---- E11: the 80%-95% savings claim across workload scales ----

func BenchmarkSavingsSweep(b *testing.B) {
	scales := []int{200, 1000, 4000}
	if testing.Short() {
		scales = scales[:2] // -short: drop the 400-page inner relation
	}
	for _, innerTuples := range scales {
		cfg := workload.SyntheticConfig{
			Name:        fmt.Sprintf("rj%d", innerTuples),
			OuterTuples: 300, InnerTuples: innerTuples,
			OuterPerPage: 10, InnerPerPage: 10,
			JoinDomain: 60, Selectivity: 0.5, MatchFraction: 0.5,
			Seed: int64(innerTuples),
		}
		sql := workload.TypeJAQuery(cfg)
		for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
			b.Run(fmt.Sprintf("rj=%dpages/%s", innerTuples/10, s), func(b *testing.B) {
				benchQuery(b, mkSynthetic(8, cfg), sql, engine.Options{Strategy: s})
			})
		}
	}
}

// ---- E12: section 7.2 — temp-table creation join method as the inner
// projection grows past B−1 pages ----

func BenchmarkTempTableCreation(b *testing.B) {
	scales := []int{40, 2000} // Rt3 far below / above B-1 pages
	if testing.Short() {
		scales = []int{40, 400} // -short: still above B-1, much cheaper
	}
	for _, innerTuples := range scales {
		cfg := workload.SyntheticConfig{
			Name:        fmt.Sprintf("rt3-%d", innerTuples),
			OuterTuples: 300, InnerTuples: innerTuples,
			OuterPerPage: 10, InnerPerPage: 10,
			JoinDomain: 60, Selectivity: 1.0, MatchFraction: 1.0,
			Seed: 7,
		}
		sql := workload.TypeJAQuery(cfg)
		for _, m := range []planner.JoinMethod{planner.JoinNL, planner.JoinMerge} {
			b.Run(fmt.Sprintf("inner=%dpages/temp=%s", innerTuples/10, m), func(b *testing.B) {
				benchQuery(b, mkSynthetic(8, cfg), sql, engine.Options{
					Strategy: engine.TransformJA2,
					Planner:  planner.Options{TempJoin: m},
				})
			})
		}
	}
}

// ---- E10: section 8 extended predicates ----

func BenchmarkExtendedPredicates(b *testing.B) {
	queries := map[string]string{
		"exists": `SELECT PNUM FROM PARTS
		           WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		"not-exists": `SELECT PNUM FROM PARTS
		               WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		"lt-any": `SELECT PNUM FROM PARTS
		           WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		"gt-all": `SELECT PNUM FROM PARTS
		           WHERE QOH > ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
	}
	for name, sql := range queries {
		b.Run(name, func(b *testing.B) {
			benchQuery(b, mkFixture(8, workload.LoadKiessling), sql,
				engine.Options{Strategy: engine.TransformJA2})
		})
	}
}

// ---- E9: the recursive procedure on a three-level query ----

func BenchmarkGeneralNesting(b *testing.B) {
	sql := `
		SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		b.Run(s.String(), func(b *testing.B) {
			benchQuery(b, mkFixture(8, workload.LoadSuppliers), sql, engine.Options{Strategy: s})
		})
	}
}

// ---- Morsel-driven parallel execution: sequential vs N workers ----

// BenchmarkParallelNestJA2 runs a type-JA query at a scale where the
// joins dominate, comparing the sequential NEST-JA2 pipeline against the
// morsel-driven parallel one at 2, 4, and 8 workers. ForceParallel
// bypasses the cost gate so every worker count actually parallelizes;
// the pageIO metric stays comparable because parallelism does not change
// what is read, only who reads it.
func BenchmarkParallelNestJA2(b *testing.B) {
	cfg := workload.SyntheticConfig{
		Name:        "par",
		OuterTuples: 20000, InnerTuples: 40000,
		OuterPerPage: 10, InnerPerPage: 10,
		JoinDomain: 2000, Selectivity: 0.5, MatchFraction: 0.5,
		Seed: 2026,
	}
	if testing.Short() {
		// -short: keep the same shape at a tenth the scale; parallel
		// speedups shrink but every code path still runs.
		cfg.OuterTuples, cfg.InnerTuples, cfg.JoinDomain = 2000, 4000, 200
	}
	sql := workload.TypeJAQuery(cfg)
	b.Run("sequential", func(b *testing.B) {
		benchQuery(b, mkSynthetic(64, cfg), sql, engine.Options{Strategy: engine.TransformJA2})
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchQuery(b, mkSynthetic(64, cfg), sql, engine.Options{
				Strategy: engine.TransformJA2,
				Planner:  planner.Options{Parallelism: w, ForceParallel: true},
			})
		})
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkTransformOnly measures the transformation itself (no
// execution): parse + resolve once, transform per iteration.
func BenchmarkTransformOnly(b *testing.B) {
	db := mkFixture(8, workload.LoadKiessling)()
	qb := sqlparser.MustParse(workload.KiesslingQ2)
	if _, err := schema.Resolve(db.Catalog(), qb); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.New(db.Catalog(), transform.JA2).Transform(qb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures parser throughput on the paper's Q2.
func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(workload.KiesslingQ2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Index access path: the selective-restriction speedup ----

func BenchmarkIndexAccessPath(b *testing.B) {
	mk := func(withIndex bool) func() *engine.DB {
		return func() *engine.DB {
			db := mkSynthetic(8, workload.SyntheticConfig{
				Name:        "idx",
				OuterTuples: 1000, InnerTuples: 100,
				OuterPerPage: 10, InnerPerPage: 10,
				JoinDomain: 200, Selectivity: 1, MatchFraction: 1,
				Seed: 5,
			})()
			if withIndex {
				if err := db.CreateIndex("RI", "JC"); err != nil {
					panic(err)
				}
			}
			return db
		}
	}
	sql := "SELECT JC, VAL FROM RI WHERE JC = 42"
	b.Run("seq-scan", func(b *testing.B) {
		benchQuery(b, mk(false), sql, engine.Options{Strategy: engine.TransformJA2})
	})
	b.Run("index-scan", func(b *testing.B) {
		benchQuery(b, mk(true), sql, engine.Options{Strategy: engine.TransformJA2})
	})
}

// ---- NOT IN via the NULL-aware anti-join (extension) vs nested iteration ----

func BenchmarkNotInAntiJoin(b *testing.B) {
	cfg := workload.SyntheticConfig{
		Name:        "notin",
		OuterTuples: 400, InnerTuples: 800,
		OuterPerPage: 10, InnerPerPage: 10,
		JoinDomain: 80, Selectivity: 1, MatchFraction: 0.3,
		Seed: 31,
	}
	sql := `SELECT JC FROM RI WHERE VAL NOT IN (SELECT VAL FROM RJ WHERE RJ.JC = RI.JC AND RJ.FILT < 30)`
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		b.Run(s.String(), func(b *testing.B) {
			benchQuery(b, mkSynthetic(8, cfg), sql, engine.Options{Strategy: s})
		})
	}
}

// ---- Metamorphic fuzzer throughput (extension) ----

// BenchmarkMetamorphScenario measures the correctness fuzzer's in-process
// throughput: one generated scenario (25 query pairs) loaded, executed
// through the sequential, parallel, and nested-iteration regimes with all
// relation checks, and unloaded, per iteration. This is the cost unit
// behind `make metamorph` budgeting (pairs per second ≈ 25 / time per op).
func BenchmarkMetamorphScenario(b *testing.B) {
	gen := metamorph.NewGenerator(metamorph.Config{Seed: 20260808, Scenarios: 1})
	r, err := metamorph.NewRunner(metamorph.RunnerConfig{Parallel: true})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	s := gen.Scenario(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, err := r.RunScenario(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(vs) > 0 {
			b.Fatalf("relation violation during benchmark: %s", vs[0].String())
		}
	}
}

// ---- Admission gateway overhead and contended throughput (extension) ----

// BenchmarkAdmissionGateway measures what the admission gate adds to an
// uncontended query ("off" vs "on": one client, slots always free) and
// what throughput looks like when parallel clients contend for fewer
// slots than there are clients ("contended": the queue is deep enough
// that nothing is shed, so every operation is a completed query).
func BenchmarkAdmissionGateway(b *testing.B) {
	sql := workload.KiesslingQ2
	opts := engine.Options{Strategy: engine.TransformJA2}
	mkGoverned := func() *engine.DB {
		db := mkFixture(8, workload.LoadKiessling)()
		db.EnableAdmission(admission.Config{
			MaxConcurrent: 8,
			QueueDepth:    1024,
			PoolBytes:     64 << 20,
		})
		return db
	}
	b.Run("off", func(b *testing.B) {
		benchQuery(b, mkFixture(8, workload.LoadKiessling), sql, opts)
	})
	b.Run("on", func(b *testing.B) {
		benchQuery(b, mkGoverned, sql, opts)
	})
	b.Run("contended", func(b *testing.B) {
		db := mkFixture(8, workload.LoadKiessling)()
		db.EnableAdmission(admission.Config{
			MaxConcurrent: 4,
			QueueDepth:    1024,
			PoolBytes:     64 << 20,
		})
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := db.Query(sql, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// ---- Spill-to-disk overhead (extension) ----

// spillBenchCfg sizes relations so sorts and join groups buffer tens of
// kilobytes — enough that forced spilling moves real data through run
// files. -short quarters the scale.
func spillBenchCfg() workload.SyntheticConfig {
	cfg := workload.SyntheticConfig{
		Name:        "spill",
		OuterTuples: 2000, InnerTuples: 4000,
		OuterPerPage: 10, InnerPerPage: 10,
		JoinDomain: 200, Selectivity: 1, MatchFraction: 0.5,
		Seed: 12,
	}
	if testing.Short() {
		cfg.OuterTuples, cfg.InnerTuples = 500, 1000
	}
	return cfg
}

// BenchmarkSpillJoin measures what spilling costs a NEST-JA2 plan (temp
// materialization, sorts, merge join): the same query fully in memory,
// then with every reservation refused so all buffered state rides
// checksummed spill runs. The gap is the price of graceful degradation.
func BenchmarkSpillJoin(b *testing.B) {
	cfg := spillBenchCfg()
	sql := workload.TypeJAQuery(cfg)
	opts := engine.Options{Strategy: engine.TransformJA2}
	opts.Planner.TempJoin = planner.JoinMerge
	opts.Planner.FinalJoin = planner.JoinMerge
	b.Run("in-memory", func(b *testing.B) {
		benchQuery(b, mkSynthetic(32, cfg), sql, opts)
	})
	b.Run("forced-spill", func(b *testing.B) {
		mk := func() *engine.DB {
			db := mkSynthetic(32, cfg)()
			if err := db.EnableSpill(b.TempDir(), 0); err != nil {
				b.Fatal(err)
			}
			return db
		}
		spilled := opts
		spilled.Spill = qctx.SpillForced
		benchQuery(b, mk, sql, spilled)
	})
}

// BenchmarkExternalSort measures the sort operator alone: in-memory
// sorting vs external merge sorting through checksummed spill runs, over
// the same scanned input.
func BenchmarkExternalSort(b *testing.B) {
	cfg := spillBenchCfg()
	mk := mkSynthetic(32, cfg)
	run := func(b *testing.B, forced bool) {
		db := mk()
		file, ok := db.Store().Lookup("RJ")
		if !ok {
			b.Fatal("synthetic relation RJ missing")
		}
		var sess *spill.Session
		var qc *qctx.QueryContext
		if forced {
			mgr, err := spill.NewManager(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			sess = mgr.NewSession("bench")
			defer sess.Close()
			qc = qctx.New(qctx.Limits{Spill: qctx.SpillForced})
			defer qc.Finish()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &exec.Sort{
				Child: exec.NewSeqScan(file, "RJ", []string{"JC", "VAL", "FILT"}),
				Keys:  []int{1, 2},
				Store: db.Store(),
				QC:    qc,
				Spill: sess,
			}
			rows, err := exec.Drain(s)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			if len(rows) != cfg.InnerTuples {
				b.Fatalf("sorted %d rows, want %d", len(rows), cfg.InnerTuples)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, false) })
	b.Run("spill-runs", func(b *testing.B) { run(b, true) })
}
