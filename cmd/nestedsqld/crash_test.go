package main

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wire"
)

// The kill -9 recovery storm: a real daemon subprocess (built with the
// race detector and with WAL torn-append faults armed) takes concurrent
// DML bursts from four clients on disjoint tables and is SIGKILLed
// mid-burst, over and over. After every kill the next boot must recover
// exactly the acknowledged commits — allowing, per client, the one
// in-flight statement that was sent but unanswered when the process
// died — with no ghost writes, no torn-tail panics, and no leaked WAL
// or snapshot files. The storm ends with a SIGTERM drain that must exit
// 0 and leave a single snapshot + segment pair behind.

// buildDaemon compiles nestedsqld with -race into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nestedsqld")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running nestedsqld subprocess.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr strings.Builder
}

func (d *daemon) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// startDaemon launches the binary against dataDir and waits for its
// listening line. Torn-append faults are armed with the given seed.
func startDaemon(t *testing.T, bin, dataDir string, faultSeed int64) *daemon {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-fixture", "none",
		"-data-dir", dataDir,
		"-wal-fault-rate", "0.02",
		"-wal-fault-seed", fmt.Sprint(faultSeed),
		"-drain-timeout", "5s",
	)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- a:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never listened; stderr:\n%s", d.log())
	}
	return d
}

// tableState is a sorted multiset of a table's rows, or absent entirely.
type tableState struct {
	exists bool
	rows   []string
}

func (s tableState) equal(o tableState) bool {
	if s.exists != o.exists || len(s.rows) != len(o.rows) {
		return false
	}
	for i := range s.rows {
		if s.rows[i] != o.rows[i] {
			return false
		}
	}
	return true
}

// serverTable reads one table's state over the wire.
func serverTable(t *testing.T, addr, table string) tableState {
	t.Helper()
	c, err := client.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	res, err := c.Collect(fmt.Sprintf("SELECT K, V FROM %s", table), client.Options{})
	if err != nil {
		if strings.Contains(err.Error(), "unknown relation") {
			return tableState{}
		}
		t.Fatalf("read %s: %v", table, err)
	}
	return tupleState(res.Rows)
}

func tupleState(rows []storage.Tuple) tableState {
	st := tableState{exists: true, rows: []string{}}
	for _, r := range rows {
		st.rows = append(st.rows, r.String())
	}
	sort.Strings(st.rows)
	return st
}

// oracleTable replays a statement list into a fresh engine and reads the
// table's state — the ground truth for one client's acked (or acked +
// in-flight) history.
func oracleTable(t *testing.T, table string, history []string) tableState {
	t.Helper()
	db := engine.New(32)
	for _, sql := range history {
		if _, err := db.Exec(sql, engine.Options{}); err != nil {
			t.Fatalf("oracle replay %q: %v", sql, err)
		}
	}
	f, ok := db.Store().Lookup(table)
	if !ok {
		return tableState{}
	}
	st := tableState{exists: true, rows: []string{}}
	f.Scan(func(tu storage.Tuple) bool {
		st.rows = append(st.rows, tu.String())
		return true
	})
	sort.Strings(st.rows)
	return st
}

// dataFiles counts the data directory's contents by kind.
func dataFiles(t *testing.T, dir string) (segs, snaps, other int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".seg"):
			segs++
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		default:
			other++
		}
	}
	return segs, snaps, other
}

func genStormDML(rng *rand.Rand, table string, create bool) string {
	switch {
	case create:
		return fmt.Sprintf("CREATE TABLE %s (K INT, V INT)", table)
	case rng.Intn(5) == 0:
		return fmt.Sprintf("UPDATE %s SET V = %d WHERE K < %d", table, rng.Intn(1000), rng.Intn(40))
	case rng.Intn(5) == 1:
		return fmt.Sprintf("DELETE FROM %s WHERE V > %d", table, 600+rng.Intn(400))
	default:
		return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d), (%d, %d)",
			table, rng.Intn(40), rng.Intn(1000), rng.Intn(40), rng.Intn(1000))
	}
}

func TestCrashStormKill9(t *testing.T) {
	if testing.Short() && os.Getenv("CRASH_STORM_SHORT") == "" {
		// Even the short storm builds a -race daemon; allow scripted
		// short gates to opt in explicitly.
		t.Skip("kill -9 storm skipped in -short mode without CRASH_STORM_SHORT=1")
	}
	rounds, workers := 16, 4
	if testing.Short() {
		rounds = 4
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	acked := make([][]string, workers)  // acknowledged statements, in order
	inflight := make([]string, workers) // sent but unanswered at the kill
	created := make([]bool, workers)    // CREATE TABLE acked (or promoted)
	tables := make([]string, workers)
	for w := range tables {
		tables[w] = fmt.Sprintf("CRASH%d", w)
	}

	// resolve reads the recovered server state for every client table and
	// settles each in-flight statement: it either became durable before
	// the kill (promote it to acked) or it did not (drop it). Anything
	// else — a half-applied statement, a ghost, a lost ack — fails.
	resolve := func(round int, addr string) {
		for w := 0; w < workers; w++ {
			got := serverTable(t, addr, tables[w])
			ackedState := oracleTable(t, tables[w], acked[w])
			if inflight[w] == "" {
				if !got.equal(ackedState) {
					t.Fatalf("round %d: %s diverged from acked history:\n  got:  %v\n  want: %v",
						round, tables[w], got, ackedState)
				}
				continue
			}
			withInflight := oracleTable(t, tables[w], append(append([]string{}, acked[w]...), inflight[w]))
			switch {
			case got.equal(ackedState):
				inflight[w] = ""
			case got.equal(withInflight):
				acked[w] = append(acked[w], inflight[w])
				if strings.HasPrefix(inflight[w], "CREATE") {
					created[w] = true
				}
				inflight[w] = ""
			default:
				t.Fatalf("round %d: %s matches neither acked history nor acked+in-flight %q:\n  got:          %v\n  acked:        %v\n  with inflight: %v",
					round, tables[w], inflight[w], got, ackedState, withInflight)
			}
		}
	}

	for round := 0; round < rounds; round++ {
		d := startDaemon(t, bin, dataDir, int64(round+1))
		resolve(round, d.addr)
		if segs, snaps, other := dataFiles(t, dataDir); segs != 1 || snaps != 1 || other != 0 {
			t.Fatalf("round %d: data dir leaked files after boot checkpoint: %d segments, %d snapshots, %d other\nstderr:\n%s",
				round, segs, snaps, other, d.log())
		}

		// The burst: every worker hammers its own table until the kill
		// lands or the op budget runs out.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				conn, err := client.Dial(d.addr, 10*time.Second)
				if err != nil {
					return // the kill can beat the dial; nothing sent
				}
				defer conn.Close()
				rng := rand.New(rand.NewSource(int64(round*100 + w)))
				for op := 0; op < 400; op++ {
					sql := genStormDML(rng, tables[w], op == 0 && !created[w])
					inflight[w] = sql
					res, err := conn.Collect(sql, client.Options{})
					if err != nil {
						var remote *wire.RemoteError
						if errors.As(err, &remote) {
							// A served refusal (e.g. the armed WAL fault
							// tearing this append): the torn record cannot
							// survive recovery, so the statement is
							// definitively not committed.
							inflight[w] = ""
						}
						// Anything else means the connection died — the
						// kill landed mid-statement, and whether the
						// commit record made it to the OS is unknowable
						// from here. It stays in-flight for resolve.
						return
					}
					inflight[w] = ""
					acked[w] = append(acked[w], sql)
					if strings.HasPrefix(sql, "CREATE") {
						created[w] = true
					} else if strings.HasPrefix(sql, "INSERT") && res.Done.Rows != 2 {
						t.Errorf("round %d: INSERT acked %d rows, want 2", round, res.Done.Rows)
					}
				}
			}(w)
		}
		// Let the burst run, then kill -9 mid-flight.
		time.Sleep(time.Duration(80+rand.New(rand.NewSource(int64(round))).Intn(200)) * time.Millisecond)
		d.cmd.Process.Kill()
		wg.Wait()
		d.cmd.Wait()
	}

	// Final clean cycle: boot once more (resolving the last kill), then
	// SIGTERM. The drain must exit 0 and leave one snapshot + segment.
	d := startDaemon(t, bin, dataDir, 0)
	resolve(rounds, d.addr)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v\nstderr:\n%s", err, d.log())
	}
	if !strings.Contains(d.log(), "bye") {
		t.Fatalf("daemon did not shut down cleanly:\n%s", d.log())
	}
	if segs, snaps, other := dataFiles(t, dataDir); segs != 1 || snaps != 1 || other != 0 {
		t.Fatalf("after final drain: %d segments, %d snapshots, %d other files", segs, snaps, other)
	}

	var total int
	for w := range acked {
		total += len(acked[w])
	}
	t.Logf("kill -9 storm: %d rounds, %d statements acknowledged and verified recovered", rounds, total)
	if total == 0 {
		t.Fatal("storm acknowledged nothing; the burst never reached the daemon")
	}
}
