// Command nestedsqld serves one of the paper's example databases over
// the nestedsql wire protocol (see internal/wire). Clients connect with
// internal/client (or cmd/benchpaper's -serve-load harness), stream
// results batch by batch, and receive typed Error frames — an admission
// shed arrives with its retry-after hint intact.
//
//	nestedsqld -addr 127.0.0.1:4045 -fixture both -max-concurrent 8
//
// The daemon always runs with the admission gateway enabled (the flag
// defaults impose no concurrency bound, but the gateway is what makes
// SIGTERM drain instead of drop): on SIGTERM or SIGINT it stops
// accepting connections, lets in-flight queries finish streaming for up
// to -drain-timeout, then closes every connection and exits 0.
//
// With -coordinator the same binary fronts a cluster instead of an
// engine: it dials the listed workers (plain nestedsqld instances — any
// daemon is a worker, the cluster feature is always negotiated), shards
// CREATE/INSERT across them by hash of each table's partition key, and
// answers distributable queries by shuffling misplaced tables and
// gathering per-shard results. Start the workers first, empty:
//
//	nestedsqld -addr 127.0.0.1:5001 -fixture none &
//	nestedsqld -addr 127.0.0.1:5002 -fixture none &
//	nestedsqld -addr 127.0.0.1:4045 \
//	  -coordinator 127.0.0.1:5001,127.0.0.1:5002 -place SP=SNO
//
// It prints "listening on ADDR" to stderr once the socket is open, so
// scripts using -addr 127.0.0.1:0 can discover the port.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	nestedsql "repro"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/wal"
)

var strategies = map[string]engine.Strategy{
	"ni":  engine.NestedIteration,
	"ja2": engine.TransformJA2,
	"kim": engine.TransformKim,
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4045", "listen address (port 0 picks a free port)")
	fixture := flag.String("fixture", "both", "dataset: kiessling | suppliers | both | none")
	strategy := flag.String("strategy", "ja2", "default strategy for StrategyDefault queries: ni | ja2 | kim")
	buffer := flag.Int("buffer", 32, "buffer pool size in pages (the paper's B)")
	parallel := flag.Int("parallel", 0, "default planner parallelism (clients may override per query)")
	batchRows := flag.Int("batch-rows", 0, "rows per RowBatch frame (0 = 64)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on per-query deadlines; also applied to clients that send none (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "cap on per-query row budgets; also applied to clients that send none (0 = none)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission: max concurrent queries (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission: queries allowed to wait behind the running ones; beyond that, shed")
	memPool := flag.Int64("mem-pool", 0, "admission: global memory pool (bytes) leased out per query (0 = none)")
	spillDir := flag.String("spill-dir", "", "spill-to-disk directory: queries over their memory lease write checksummed run files there and complete instead of failing (empty = spilling off)")
	spillThreshold := flag.Int64("spill-threshold", 0, "start spilling once a query buffers this many bytes, even under budget (0 = spill only at the budget)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long in-flight queries may finish on shutdown")
	heartbeat := flag.Duration("heartbeat", 0, "ping interval for idle sessions that negotiated heartbeats; two unanswered pings evict the peer (0 = 15s)")
	writeDeadline := flag.Duration("write-deadline", 0, "per-frame write deadline; a consumer stalled past it is evicted, its query cancelled (0 = 30s)")
	noChecksum := flag.Bool("no-checksum", false, "refuse checksummed framing in negotiation (for overhead measurements)")
	noHeartbeat := flag.Bool("no-heartbeat", false, "refuse heartbeat liveness in negotiation")
	dataDir := flag.String("data-dir", "", "durability: write-ahead log + checkpoint directory; recovers prior state on start, checkpoints on clean shutdown (empty = in-memory only)")
	fsync := flag.Bool("fsync", false, "durability: fsync every commit batch (with -data-dir); off = commits survive a process crash, not host power loss")
	walFaultRate := flag.Float64("wal-fault-rate", 0, "testing: probability that a WAL append tears mid-record and poisons the log")
	walFaultSeed := flag.Int64("wal-fault-seed", 1, "testing: seed for -wal-fault-rate")
	coordinator := flag.String("coordinator", "", "run as cluster coordinator over these comma-separated worker addresses (no local engine)")
	place := flag.String("place", "", "coordinator: comma-separated TABLE=COL partition-key overrides (default: each table's first key column)")
	ioTimeout := flag.Duration("io-timeout", 10*time.Second, "coordinator: per-frame deadline on worker connections")
	replicas := flag.Int("replicas", 1, "coordinator: copies per shard; DML acks only after every live replica logged it, and queries fail over to a replica when a worker dies")
	probeInterval := flag.Duration("probe-interval", time.Second, "coordinator: health-probe cadence; dead workers are automatically rejoined via snapshot re-ship")
	flag.Parse()

	strat, ok := strategies[*strategy]
	if !ok {
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	srvCfg := server.Config{
		BatchRows:         *batchRows,
		MaxTimeout:        *maxTimeout,
		MaxRows:           *maxRows,
		Strategy:          strat,
		Parallelism:       *parallel,
		WriteTimeout:      *writeDeadline,
		HeartbeatInterval: *heartbeat,
		DisableChecksum:   *noChecksum,
		DisableHeartbeat:  *noHeartbeat,
	}

	if *coordinator != "" {
		// Coordinator mode has no local engine, so engine-only flags are
		// a configuration error, not something to silently ignore.
		engineOnly := map[string]bool{
			"fixture": true, "buffer": true, "max-concurrent": true,
			"queue-depth": true, "mem-pool": true, "spill-dir": true,
			"spill-threshold": true, "data-dir": true, "fsync": true,
			"wal-fault-rate": true, "wal-fault-seed": true,
		}
		var bad []string
		flag.Visit(func(f *flag.Flag) {
			if engineOnly[f.Name] {
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			fail(fmt.Errorf("coordinator mode has no local engine; drop %s (workers own storage)",
				strings.Join(bad, ", ")))
		}
		runCoordinator(*coordinator, *place, *ioTimeout, *replicas, *probeInterval, srvCfg, *addr, *drainTimeout)
		return
	}

	// Admission is always on: it is the drain mechanism behind graceful
	// shutdown. Zero flags just mean no concurrency bound.
	db := nestedsql.Open(
		nestedsql.WithBufferPages(*buffer),
		nestedsql.WithAdmissionControl(nestedsql.AdmissionConfig{
			MaxConcurrent: *maxConcurrent,
			QueueDepth:    *queueDepth,
			MemPool:       *memPool,
		}),
	)
	if *spillDir != "" {
		if err := db.EnableSpill(*spillDir, *spillThreshold); err != nil {
			fail(err)
		}
	}
	recovered := false
	if *dataDir != "" {
		info, err := db.EnableDurability(*dataDir, *fsync)
		if err != nil {
			fail(err)
		}
		recovered = info.Recovered()
		fmt.Fprintf(os.Stderr, "nestedsqld: %s\n", info)
	}
	// A recovered database already holds its tables (fixtures included,
	// since the first boot's loads were logged); loading again would
	// duplicate rows.
	if !recovered {
		switch *fixture {
		case "kiessling":
			mustLoad(db, nestedsql.FixtureKiessling)
		case "suppliers":
			mustLoad(db, nestedsql.FixtureSuppliers)
		case "both":
			// Disjoint table names (PARTS/SUPPLY vs S/P/SP), so both paper
			// databases fit in one catalog.
			mustLoad(db, nestedsql.FixtureKiessling)
			mustLoad(db, nestedsql.FixtureSuppliers)
		case "none":
		default:
			fail(fmt.Errorf("unknown fixture %q", *fixture))
		}
	}
	if *dataDir != "" {
		// Fold boot-time loads or a replayed WAL tail into one snapshot:
		// every boot starts from a short log, so recovery time and file
		// count stay bounded across kill -9 cycles.
		if err := db.Checkpoint(); err != nil {
			fail(err)
		}
		if *walFaultRate > 0 {
			db.Internal().WAL().SetFaultInjector(wal.NewFaultInjector(wal.FaultConfig{
				Seed:           *walFaultSeed,
				TornAppendRate: *walFaultRate,
				MaxFaults:      1,
			}))
			fmt.Fprintf(os.Stderr, "nestedsqld: WAL fault injection armed (rate=%g seed=%d)\n",
				*walFaultRate, *walFaultSeed)
		}
	}

	srv := server.New(db.Internal(), srvCfg)
	serveLoop(srv, *addr, *drainTimeout)
	if *spillDir != "" {
		fmt.Fprintf(os.Stderr, "nestedsqld: spill: %v\n", db.SpillStats())
	}
	if *dataDir != "" {
		// Drained: no queries or DML in flight. One final checkpoint
		// makes the next boot recover from the snapshot alone.
		if err := db.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "nestedsqld: final checkpoint: %v\n", err)
			os.Exit(1)
		}
		if ws, ok := db.WALStats(); ok {
			fmt.Fprintf(os.Stderr, "nestedsqld: wal: %v\n", ws)
		}
	}
	fmt.Fprintln(os.Stderr, "nestedsqld: bye")
}

// serveLoop runs srv on addr until SIGTERM/SIGINT triggers a drain. It
// returns (rather than exiting) so each mode can print its epilogue.
func serveLoop(srv *server.Server, addr string, drainTimeout time.Duration) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "nestedsqld: listening on %s\n", lis.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	shutdownErr := make(chan error, 1)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "nestedsqld: %v; draining (up to %s)\n", sig, drainTimeout)
		shutdownErr <- srv.Shutdown(drainTimeout)
	}()

	if err := srv.Serve(lis); err != nil {
		fail(err)
	}
	// Serve returned nil, so a signal triggered Shutdown; report how the
	// drain went but exit 0 either way — stragglers were canceled, not
	// leaked.
	if err := <-shutdownErr; err != nil {
		fmt.Fprintf(os.Stderr, "nestedsqld: drain: %v\n", err)
	}
}

// runCoordinator fronts a worker fleet with the same wire protocol a
// single-node daemon speaks: clients cannot tell (and need not care)
// that results are gathered from shards.
func runCoordinator(workerList, placeList string, ioTimeout time.Duration, replicas int, probeInterval time.Duration, cfg server.Config, addr string, drainTimeout time.Duration) {
	workers := splitNonEmpty(workerList)
	if len(workers) == 0 {
		fail(fmt.Errorf("-coordinator needs at least one worker address"))
	}
	placement := map[string]string{}
	for _, kv := range splitNonEmpty(placeList) {
		table, col, ok := strings.Cut(kv, "=")
		if !ok || table == "" || col == "" {
			fail(fmt.Errorf("-place entry %q is not TABLE=COL", kv))
		}
		placement[strings.ToUpper(strings.TrimSpace(table))] =
			strings.ToUpper(strings.TrimSpace(col))
	}
	co, err := cluster.New(cluster.Config{
		Workers:       workers,
		Replicas:      replicas,
		Placement:     placement,
		IOTimeout:     ioTimeout,
		ProbeInterval: probeInterval,
	})
	if err != nil {
		fail(fmt.Errorf("coordinator: %w", err))
	}
	fmt.Fprintf(os.Stderr, "nestedsqld: coordinating %d workers (replicas=%d): %s\n",
		co.NumWorkers(), co.Replicas(), strings.Join(workers, ", "))

	serveLoop(server.NewBackend(co, cfg), addr, drainTimeout)

	counts := co.GatherCounts()
	states := co.WorkerStates()
	for i, n := range counts {
		fmt.Fprintf(os.Stderr, "nestedsqld: worker %d (%s): %d gathers, %s\n", i, workers[i], n, states[i])
	}
	if err := co.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "nestedsqld: coordinator close: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "nestedsqld: bye")
}

// splitNonEmpty splits a comma list, trimming blanks away.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func mustLoad(db *nestedsql.DB, f nestedsql.Fixture) {
	if err := db.LoadFixture(f); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nestedsqld:", err)
	os.Exit(1)
}
