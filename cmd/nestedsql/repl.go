package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	nestedsql "repro"
)

// session carries the REPL's mutable execution settings, seeded from the
// command-line flags.
type session struct {
	strategy       nestedsql.Strategy
	explain        bool
	parallel       int
	verifyParallel bool
	timeout        time.Duration
	maxRows        int64
	maxBytes       int64
}

// options assembles the QueryOptions for one statement.
func (s *session) options() []nestedsql.QueryOption {
	opts := []nestedsql.QueryOption{nestedsql.WithStrategy(s.strategy)}
	if s.parallel != 0 {
		opts = append(opts, nestedsql.WithParallelism(s.parallel))
	}
	if s.verifyParallel {
		opts = append(opts, nestedsql.WithParallelVerify())
	}
	if s.timeout > 0 {
		opts = append(opts, nestedsql.WithTimeout(s.timeout))
	}
	if s.maxRows > 0 {
		opts = append(opts, nestedsql.WithMaxRows(s.maxRows))
	}
	if s.maxBytes > 0 {
		opts = append(opts, nestedsql.WithMemoryBudget(s.maxBytes))
	}
	return opts
}

// interruptCancel returns a QueryOption that cancels the query when the
// process receives an interrupt (Ctrl-C), and a cleanup function that
// restores the default signal disposition — so a Ctrl-C at the prompt
// still terminates the process, while one mid-query only fails that query
// with ErrCanceled.
func interruptCancel() (nestedsql.QueryOption, func()) {
	cancel := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	stop := make(chan struct{})
	signal.Notify(sigc, os.Interrupt)
	go func() {
		select {
		case <-sigc:
			fmt.Fprintln(os.Stderr, "canceling query...")
			close(cancel)
		case <-stop:
		}
	}()
	cleanup := func() {
		signal.Stop(sigc)
		close(stop)
	}
	return nestedsql.WithCancel(cancel), cleanup
}

// repl reads statements (terminated by ';') from the reader and executes
// them, printing results. Meta commands: \d lists tables, \strategy sets
// the evaluation strategy, \explain toggles EXPLAIN mode, \parallel sets
// the worker count, \timeout sets the per-query deadline, \q quits.
func repl(db *nestedsql.DB, in io.Reader, interactive bool, sess *session) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder

	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("nestedsql> ")
		} else {
			fmt.Print("      ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !metaCommand(db, trimmed, sess) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			runStatement(db, buf.String(), sess)
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		runStatement(db, buf.String(), sess)
	}
}

// metaCommand handles backslash commands; it returns false to quit.
func metaCommand(db *nestedsql.DB, cmd string, sess *session) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`:
		return false
	case `\d`:
		for _, name := range db.Internal().Catalog().Names() {
			rel, _ := db.Internal().Catalog().Lookup(name)
			cols := make([]string, len(rel.Columns))
			for i, c := range rel.Columns {
				cols[i] = c.Name + " " + c.Type.String()
			}
			fmt.Printf("%s(%s)\n", rel.Name, strings.Join(cols, ", "))
		}
	case `\strategy`:
		if len(fields) != 2 {
			fmt.Println("usage: \\strategy ni|ja2|kim")
			break
		}
		s, ok := strategies[fields[1]]
		if !ok {
			fmt.Printf("unknown strategy %q\n", fields[1])
			break
		}
		sess.strategy = s
		fmt.Printf("strategy set to %s\n", fields[1])
	case `\explain`:
		sess.explain = !sess.explain
		fmt.Printf("explain mode: %v\n", sess.explain)
	case `\parallel`:
		if len(fields) != 2 {
			fmt.Println("usage: \\parallel N  (0|1 sequential, N>1 workers, -1 one per CPU)")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Printf("bad worker count %q\n", fields[1])
			break
		}
		sess.parallel = n
		fmt.Printf("parallel workers set to %d\n", n)
	case `\verify`:
		sess.verifyParallel = !sess.verifyParallel
		fmt.Printf("parallel verification: %v\n", sess.verifyParallel)
	case `\timeout`:
		if len(fields) != 2 {
			fmt.Println("usage: \\timeout DURATION  (e.g. 500ms, 10s; 0 disables)")
			break
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d < 0 {
			fmt.Printf("bad duration %q\n", fields[1])
			break
		}
		sess.timeout = d
		if d == 0 {
			fmt.Println("query timeout disabled")
		} else {
			fmt.Printf("query timeout set to %v\n", d)
		}
	case `\index`:
		if len(fields) != 3 {
			fmt.Println("usage: \\index TABLE COLUMN")
			break
		}
		if err := db.CreateIndex(fields[1], fields[2]); err != nil {
			fmt.Println("index:", err)
			break
		}
		fmt.Printf("index created on %s.%s\n", fields[1], fields[2])
	case `\analyze`:
		if err := db.Analyze(); err != nil {
			fmt.Println("analyze:", err)
			break
		}
		fmt.Println("statistics collected")
	case `\stats`:
		if db.Internal().Admission() != nil {
			fmt.Println(db.AdmissionStats())
		} else {
			fmt.Println("admission gateway disabled (start with -max-concurrent / -mem-pool)")
		}
		if db.Internal().SpillManager() != nil {
			fmt.Println("spill:", db.SpillStats())
		} else {
			fmt.Println("spilling disabled (start with -spill-dir)")
		}
		if ws, ok := db.WALStats(); ok {
			fmt.Println("wal:", ws)
			fmt.Println("recovery:", db.RecoveryInfo())
		} else {
			fmt.Println("durability disabled (start with -data-dir)")
		}
	default:
		fmt.Printf("unknown command %s (try \\d, \\strategy, \\explain, \\parallel, \\verify, \\timeout, \\analyze, \\index, \\stats, \\q)\n", fields[0])
	}
	return true
}

func runStatement(db *nestedsql.DB, sql string, sess *session) {
	if strings.TrimSpace(strings.Trim(strings.TrimSpace(sql), ";")) == "" {
		return
	}
	cancelOpt, cleanup := interruptCancel()
	defer cleanup()
	opts := append(sess.options(), cancelOpt)
	if sess.explain {
		rep, err := db.Explain(sql, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Println(rep)
		return
	}
	res, err := db.Exec(sql, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	if res == nil || len(res.Columns) == 0 {
		if res != nil && res.Affected > 0 {
			fmt.Printf("%d row(s) affected\n", res.Affected)
		} else {
			fmt.Println("ok")
		}
		return
	}
	printResult(res)
}
