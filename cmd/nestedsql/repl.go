package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	nestedsql "repro"
)

// repl reads statements (terminated by ';') from the reader and executes
// them, printing results. Meta commands: \d lists tables, \strategy sets
// the evaluation strategy, \explain toggles EXPLAIN mode, \parallel sets
// the worker count, \q quits.
func repl(db *nestedsql.DB, in io.Reader, interactive bool, parallel int, verifyParallel bool) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	strategy := nestedsql.StrategyTransform
	explain := false

	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("nestedsql> ")
		} else {
			fmt.Print("      ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !metaCommand(db, trimmed, &strategy, &explain, &parallel, &verifyParallel) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			runStatement(db, buf.String(), strategy, explain, parallel, verifyParallel)
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		runStatement(db, buf.String(), strategy, explain, parallel, verifyParallel)
	}
}

// metaCommand handles backslash commands; it returns false to quit.
func metaCommand(db *nestedsql.DB, cmd string, strategy *nestedsql.Strategy, explain *bool, parallel *int, verifyParallel *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`:
		return false
	case `\d`:
		for _, name := range db.Internal().Catalog().Names() {
			rel, _ := db.Internal().Catalog().Lookup(name)
			cols := make([]string, len(rel.Columns))
			for i, c := range rel.Columns {
				cols[i] = c.Name + " " + c.Type.String()
			}
			fmt.Printf("%s(%s)\n", rel.Name, strings.Join(cols, ", "))
		}
	case `\strategy`:
		if len(fields) != 2 {
			fmt.Println("usage: \\strategy ni|ja2|kim")
			break
		}
		s, ok := strategies[fields[1]]
		if !ok {
			fmt.Printf("unknown strategy %q\n", fields[1])
			break
		}
		*strategy = s
		fmt.Printf("strategy set to %s\n", fields[1])
	case `\explain`:
		*explain = !*explain
		fmt.Printf("explain mode: %v\n", *explain)
	case `\parallel`:
		if len(fields) != 2 {
			fmt.Println("usage: \\parallel N  (0|1 sequential, N>1 workers, -1 one per CPU)")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Printf("bad worker count %q\n", fields[1])
			break
		}
		*parallel = n
		fmt.Printf("parallel workers set to %d\n", n)
	case `\verify`:
		*verifyParallel = !*verifyParallel
		fmt.Printf("parallel verification: %v\n", *verifyParallel)
	case `\index`:
		if len(fields) != 3 {
			fmt.Println("usage: \\index TABLE COLUMN")
			break
		}
		if err := db.CreateIndex(fields[1], fields[2]); err != nil {
			fmt.Println("index:", err)
			break
		}
		fmt.Printf("index created on %s.%s\n", fields[1], fields[2])
	case `\analyze`:
		if err := db.Analyze(); err != nil {
			fmt.Println("analyze:", err)
			break
		}
		fmt.Println("statistics collected")
	default:
		fmt.Printf("unknown command %s (try \\d, \\strategy, \\explain, \\parallel, \\verify, \\analyze, \\index, \\q)\n", fields[0])
	}
	return true
}

func runStatement(db *nestedsql.DB, sql string, strategy nestedsql.Strategy, explain bool, parallel int, verifyParallel bool) {
	if strings.TrimSpace(strings.Trim(strings.TrimSpace(sql), ";")) == "" {
		return
	}
	opts := []nestedsql.QueryOption{nestedsql.WithStrategy(strategy)}
	if parallel != 0 {
		opts = append(opts, nestedsql.WithParallelism(parallel))
	}
	if verifyParallel {
		opts = append(opts, nestedsql.WithParallelVerify())
	}
	if explain {
		rep, err := db.Explain(sql, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Println(rep)
		return
	}
	res, err := db.Exec(sql, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	if res == nil {
		fmt.Println("ok")
		return
	}
	printResult(res)
}
