// Command nestedsql runs SQL against one of the paper's example databases
// (or an empty database) under a chosen evaluation strategy, printing the
// result rows and the measured page I/Os. With -explain it also prints the
// classification, transformation steps, and plan decisions.
//
// Examples:
//
//	nestedsql -fixture kiessling \
//	  "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
//	   WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)"
//
//	nestedsql -fixture kiessling -strategy kim -explain "..."   # the COUNT bug
//	echo "SELECT SNAME FROM S" | nestedsql -fixture suppliers -
//
// Scripts with DDL and DML work too:
//
//	nestedsql -fixture none "CREATE TABLE T (X INT); INSERT INTO T VALUES (1); SELECT X FROM T"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	nestedsql "repro"
)

var fixtures = map[string]nestedsql.Fixture{
	"kiessling":   nestedsql.FixtureKiessling,
	"nonequality": nestedsql.FixtureNonEquality,
	"duplicates":  nestedsql.FixtureDuplicates,
	"suppliers":   nestedsql.FixtureSuppliers,
}

var strategies = map[string]nestedsql.Strategy{
	"ni":  nestedsql.StrategyNestedIteration,
	"ja2": nestedsql.StrategyTransform,
	"kim": nestedsql.StrategyTransformKim,
}

var joins = map[string]nestedsql.JoinChoice{
	"auto":  nestedsql.JoinAuto,
	"merge": nestedsql.JoinMerge,
	"nl":    nestedsql.JoinNestedLoops,
}

// csvLoads accumulates repeated -load TABLE=FILE flags.
type csvLoads []string

func (c *csvLoads) String() string     { return strings.Join(*c, ",") }
func (c *csvLoads) Set(v string) error { *c = append(*c, v); return nil }

func main() {
	fixture := flag.String("fixture", "kiessling", "dataset: kiessling | nonequality | duplicates | suppliers | none")
	strategy := flag.String("strategy", "ja2", "evaluation strategy: ni | ja2 | kim")
	buffer := flag.Int("buffer", 32, "buffer pool size in pages (the paper's B)")
	explain := flag.Bool("explain", false, "print classification, transformation steps, and plan decisions")
	tempJoin := flag.String("join-temp", "auto", "force temp-table join method: auto | merge | nl")
	finalJoin := flag.String("join-final", "auto", "force final join method: auto | merge | nl")
	interactive := flag.Bool("i", false, "interactive REPL (read statements from stdin)")
	parallel := flag.Int("parallel", 0, "parallel workers for transformed plans: 0|1 sequential, n>1 workers, -1 one per CPU")
	verifyParallel := flag.Bool("verify-parallel", false, "cross-check every parallel result against the sequential plan and nested iteration")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock limit; exceeding it fails the query (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query result-row budget; exceeding it fails the query (0 = none)")
	maxBytes := flag.Int64("max-bytes", 0, "per-query memory budget (bytes) for hash builds and sorts; without -spill-dir exceeding it fails the query (0 = none)")
	spillDir := flag.String("spill-dir", "", "spill-to-disk directory: queries over budget write checksummed run files there and complete instead of failing (empty = spilling off)")
	spillThreshold := flag.Int64("spill-threshold", 0, "start spilling once a query buffers this many bytes, even under budget (0 = spill only at the budget)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission: max concurrent queries (0 = no admission gateway)")
	queueDepth := flag.Int("queue-depth", 0, "admission: queries allowed to wait behind the running ones; beyond that, shed")
	memPool := flag.Int64("mem-pool", 0, "admission: global memory pool (bytes) leased out per query (0 = none)")
	var loads csvLoads
	flag.Var(&loads, "load", "bulk-load a CSV file: TABLE=FILE (repeatable; first line is a header)")
	open := flag.String("open", "", "open a database snapshot instead of a fixture")
	save := flag.String("save", "", "write a database snapshot to this file before exiting")
	dataDir := flag.String("data-dir", "", "durability: write-ahead log + checkpoint directory; recovers prior state on start, checkpoints on exit (empty = in-memory only)")
	fsync := flag.Bool("fsync", false, "durability: fsync every commit batch (with -data-dir); off = commits survive a process crash, not host power loss")
	flag.Parse()
	strat, ok := strategies[*strategy]
	if !ok {
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}
	tj, ok := joins[*tempJoin]
	if !ok {
		fail(fmt.Errorf("unknown join method %q", *tempJoin))
	}
	fj, ok := joins[*finalJoin]
	if !ok {
		fail(fmt.Errorf("unknown join method %q", *finalJoin))
	}

	var db *nestedsql.DB
	if *open != "" {
		f, err := os.Open(*open)
		if err != nil {
			fail(err)
		}
		db, err = nestedsql.Restore(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		openOpts := []nestedsql.Option{nestedsql.WithBufferPages(*buffer)}
		if *maxConcurrent > 0 || *memPool > 0 {
			openOpts = append(openOpts, nestedsql.WithAdmissionControl(nestedsql.AdmissionConfig{
				MaxConcurrent: *maxConcurrent,
				QueueDepth:    *queueDepth,
				MemPool:       *memPool,
			}))
		}
		db = nestedsql.Open(openOpts...)
	}
	if *spillDir != "" {
		// EnableSpill (not the Open option) so a restored snapshot gets
		// spilling too, and so a bad directory is a clean error.
		if err := db.EnableSpill(*spillDir, *spillThreshold); err != nil {
			fail(err)
		}
	}
	recovered := false
	if *dataDir != "" {
		if *open != "" {
			fail(fmt.Errorf("-data-dir and -open are mutually exclusive; the data directory is the durable state"))
		}
		info, err := db.EnableDurability(*dataDir, *fsync)
		if err != nil {
			fail(err)
		}
		recovered = info.Recovered()
		fmt.Fprintf(os.Stderr, "nestedsql: %s\n", info)
	}
	// A recovered database already holds its tables; loading the fixture
	// again would duplicate rows.
	if *open == "" && !recovered && *fixture != "none" {
		f, ok := fixtures[*fixture]
		if !ok {
			fail(fmt.Errorf("unknown fixture %q", *fixture))
		}
		if err := db.LoadFixture(f); err != nil {
			fail(err)
		}
	}
	for _, spec := range loads {
		table, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -load %q; want TABLE=FILE", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		n, err := db.LoadCSV(table, f, true)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d rows into %s\n", n, table)
	}

	saveAndExit := func() {
		if *dataDir != "" {
			// Retire the log into one snapshot so the next start recovers
			// instantly instead of replaying the session's WAL tail.
			if err := db.Checkpoint(); err != nil {
				fail(err)
			}
		}
		if *save == "" {
			return
		}
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		if err := db.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *save)
	}
	defer saveAndExit()

	sess := &session{
		strategy:       strat,
		explain:        *explain,
		parallel:       *parallel,
		verifyParallel: *verifyParallel,
		timeout:        *timeout,
		maxRows:        *maxRows,
		maxBytes:       *maxBytes,
	}
	if *interactive {
		repl(db, os.Stdin, true, sess)
		return
	}
	sql, err := readQuery(flag.Args())
	if err != nil {
		fail(err)
	}

	cancelOpt, cleanup := interruptCancel()
	defer cleanup()
	opts := append(sess.options(),
		nestedsql.WithForcedJoins(tj, fj),
		cancelOpt,
	)
	if *explain {
		rep, err := db.Explain(sql, opts...)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
		return
	}
	res, err := db.Exec(sql, opts...)
	if err != nil {
		fail(err)
	}
	if res == nil || len(res.Columns) == 0 {
		if res != nil && res.Affected > 0 {
			fmt.Printf("%d row(s) affected (no SELECT in script)\n", res.Affected)
		} else {
			fmt.Println("ok (no SELECT in script)")
		}
		return
	}
	printResult(res)
}

func readQuery(args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("usage: nestedsql [flags] <sql> (or '-' to read stdin)")
	}
	if len(args) == 1 && args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	return strings.Join(args, " "), nil
}

func printResult(res *nestedsql.Result) {
	fmt.Println(strings.Join(res.Columns, " | "))
	fmt.Println(strings.Repeat("-", len(strings.Join(res.Columns, " | "))+4))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			if v == nil {
				parts[i] = "NULL"
			} else {
				parts[i] = fmt.Sprint(v)
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("\n%d row(s); %s", len(res.Rows), res.PageIO)
	if res.Spill.Runs > 0 {
		fmt.Printf("; spilled %d run(s), %d bytes", res.Spill.Runs, res.Spill.Bytes)
	}
	if res.FellBack {
		fmt.Print("; fell back to nested iteration")
	}
	fmt.Println()
}

func fail(err error) {
	// An admission shed is transient by definition: say when to come
	// back (the gateway's own hint) and exit with EX_TEMPFAIL so scripts
	// can distinguish "try again" from "broken query".
	if d, ok := nestedsql.RetryAfter(err); ok {
		fmt.Fprintf(os.Stderr, "nestedsql: %v — overloaded, retry in %s\n", err, d)
		os.Exit(75)
	}
	fmt.Fprintln(os.Stderr, "nestedsql:", err)
	os.Exit(1)
}
