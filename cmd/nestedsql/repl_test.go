package main

import (
	"os"
	"strings"
	"testing"

	nestedsql "repro"
)

// runREPL feeds a script through the REPL capturing stdout.
func runREPL(t *testing.T, db *nestedsql.DB, script string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	repl(db, strings.NewReader(script), false, &session{strategy: nestedsql.StrategyTransform})
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}

func TestREPLSession(t *testing.T) {
	db := nestedsql.Open()
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		t.Fatal(err)
	}
	out := runREPL(t, db, `
\d
SELECT PNUM FROM PARTS
WHERE QOH = 0;
\strategy kim
\parallel 4
\verify
\timeout 30s
\analyze
\index PARTS PNUM
\explain
SELECT PNUM FROM PARTS WHERE QOH = 1;
\explain
INSERT INTO PARTS VALUES (99, 7);
SELECT PNUM FROM PARTS WHERE PNUM = 99;
`)
	for _, frag := range []string{
		"PARTS(PNUM INTEGER, QOH INTEGER)", // \d
		"strategy set to kim",
		"parallel workers set to 4",
		"parallel verification: true",
		"query timeout set to 30s",
		"statistics collected",
		"index created on PARTS.PNUM",
		"explain mode: true",
		"Strategy: transform (Kim NEST-JA)", // explain output
		"explain mode: false",
		"99", // the inserted row came back
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("REPL output missing %q:\n%s", frag, out)
		}
	}
}

func TestREPLMetaErrors(t *testing.T) {
	db := nestedsql.Open()
	out := runREPL(t, db, `
\strategy bogus
\strategy
\timeout soon
\index onlyone
\nosuchcommand
SELECT NOPE FROM NOWHERE;
\q
SELECT THIS FROM NEVERRUNS;
`)
	for _, frag := range []string{
		`unknown strategy "bogus"`,
		`usage: \strategy`,
		`bad duration "soon"`,
		`usage: \index`,
		"unknown command",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("REPL output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "NEVERRUNS") {
		t.Error("\\q did not stop the session")
	}
}

func TestREPLTrailingStatementWithoutSemicolon(t *testing.T) {
	db := nestedsql.Open()
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		t.Fatal(err)
	}
	out := runREPL(t, db, "SELECT PNUM FROM PARTS WHERE QOH = 0")
	if !strings.Contains(out, "8") {
		t.Errorf("trailing statement not executed:\n%s", out)
	}
}
