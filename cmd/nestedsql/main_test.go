package main

import (
	"os"
	"testing"

	nestedsql "repro"
)

func TestReadQuery(t *testing.T) {
	if _, err := readQuery(nil); err == nil {
		t.Error("no args must error with usage")
	}
	got, err := readQuery([]string{"SELECT", "X", "FROM", "T"})
	if err != nil || got != "SELECT X FROM T" {
		t.Errorf("joined args = %q, %v", got, err)
	}
}

func TestFlagTables(t *testing.T) {
	for name := range fixtures {
		db := nestedsql.Open()
		if err := db.LoadFixture(fixtures[name]); err != nil {
			t.Errorf("fixture %s: %v", name, err)
		}
	}
	if len(strategies) != 3 || len(joins) != 3 {
		t.Errorf("option tables: %d strategies, %d joins", len(strategies), len(joins))
	}
}

func TestPrintResult(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	db := nestedsql.Open()
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT PNUM, QOH FROM PARTS WHERE QOH > 100")
	if err != nil {
		t.Fatal(err)
	}
	printResult(res) // empty result: header only, no panic
	res, err = db.Exec("CREATE TABLE W (X INT); INSERT INTO W VALUES (NULL); SELECT X FROM W")
	if err != nil {
		t.Fatal(err)
	}
	printResult(res) // NULL rendering path
}
