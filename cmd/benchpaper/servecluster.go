package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// The cluster load harness: -serve-load -cluster N boots N in-process
// worker servers plus a coordinator fronted by its own wire server,
// loads a generated supplier database through the coordinator (so the
// rows are hash-sharded for real), and drives the distributable query
// mix from -connections clients. Every result is compared, canonically
// sorted, against a single-node sequential oracle; the report shows
// aggregate throughput and the per-node gather counts, which is the
// scaling record EXPERIMENTS.md E14 captures for 1 vs 2 vs 4 nodes.
//
//	benchpaper -serve-load -cluster 4 -connections 8 -rounds 20

var serveCluster int
var serveReplicas int

// clusterDataSQL generates the sharded benchmark database: 240
// suppliers (some with NULL keys, some with no shipments — the COUNT=0
// groups PR 7 fought for) and ~1400 shipments, deterministically.
func clusterDataSQL() string {
	rng := rand.New(rand.NewSource(20260808))
	cities := []string{"PARIS", "LONDON", "ROME", "ATHENS", "OSLO", "CAIRO"}
	var b strings.Builder
	b.WriteString("CREATE TABLE S (SNO INTEGER, SNAME TEXT, CITY TEXT, PRIMARY KEY (SNO));\n")
	b.WriteString("CREATE TABLE SP (SNO INTEGER, PNO INTEGER, QTY INTEGER);\n")
	b.WriteString("INSERT INTO S VALUES\n")
	const suppliers = 240
	for i := 1; i <= suppliers; i++ {
		if i > 1 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  (%d, 'SUP%03d', '%s')", i, i, cities[rng.Intn(len(cities))])
	}
	// A NULL supplier key: the partitioner must keep it with the other
	// NULLs so NULL-safe predicates see the whole equivalence class.
	b.WriteString(",\n  (NULL, 'GHOST', 'LIMBO');\n")
	b.WriteString("INSERT INTO SP VALUES\n")
	first := true
	for i := 1; i <= suppliers; i++ {
		if i%8 == 0 {
			continue // every 8th supplier ships nothing: a COUNT=0 group
		}
		for n := rng.Intn(9); n >= 0; n-- {
			if !first {
				b.WriteString(",\n")
			}
			first = false
			fmt.Fprintf(&b, "  (%d, %d, %d)", i, 10*(1+rng.Intn(9)), 5+rng.Intn(500))
		}
	}
	b.WriteString(",\n  (NULL, 10, 999), (NULL, 20, 888);\n")
	return b.String()
}

// clusterMix is the distributable slice of the paper workload: the
// NEST-JA2 flagship (COUNT with empty groups), IN, SUM, NOT EXISTS and
// quantified ALL, all correlated on the placement key SNO.
var clusterMix = []loadQuery{
	{"count-zero", `SELECT S.SNO, S.SNAME FROM S
		WHERE 0 = (SELECT COUNT(SP.PNO) FROM SP WHERE SP.SNO = S.SNO)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"sum-ja2", `SELECT S.SNAME FROM S
		WHERE 900 <= (SELECT SUM(SP.QTY) FROM SP WHERE SP.SNO = S.SNO)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"in", `SELECT S.SNAME FROM S WHERE S.SNO IN (SELECT SP.SNO FROM SP WHERE SP.QTY > 490)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"not-exists", `SELECT S.SNAME FROM S
		WHERE NOT EXISTS (SELECT SP.PNO FROM SP WHERE SP.SNO = S.SNO)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"gt-all", `SELECT S.SNAME FROM S
		WHERE S.SNO > ALL (SELECT SP.PNO FROM SP WHERE SP.SNO = S.SNO)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"count-ni", `SELECT S.SNO, S.SNAME FROM S
		WHERE 0 = (SELECT COUNT(SP.PNO) FROM SP WHERE SP.SNO = S.SNO)`,
		wire.StrategyNested, engine.NestedIteration},
}

// canonSorted puts rows in a canonical total order before encoding: a
// distributed gather concatenates shard-major, so order-insensitive
// byte identity is the correct cross-check against the oracle.
func canonSorted(cols []string, rows []storage.Tuple) []byte {
	sorted := append([]storage.Tuple(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			c, err := value.TotalCompare(a[k], b[k])
			if err != nil {
				c = bytes.Compare(wire.AppendValue(nil, a[k]), wire.AppendValue(nil, b[k]))
			}
			if c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return wire.EncodeRowBatch(wire.RowBatch{Columns: cols, Rows: sorted})
}

// expServeCluster runs the cluster load harness and exits non-zero on
// any mismatch, so scripts (and the E14 record) can gate on it.
func expServeCluster() {
	script := clusterDataSQL()

	// The oracle: one engine, the same SQL, queried sequentially.
	oracle := engine.New(32)
	if _, err := oracle.Exec(script, engine.Options{}); err != nil {
		fatal(fmt.Errorf("oracle load: %w", err))
	}
	expected := make([][]byte, len(clusterMix))
	for i, q := range clusterMix {
		res, err := oracle.Query(q.sql, engine.Options{Strategy: q.engStrat})
		if err != nil {
			fatal(fmt.Errorf("oracle %s: %w", q.name, err))
		}
		expected[i] = canonSorted(res.Columns, res.Rows)
	}

	// N workers, each a real wire server on a loopback port.
	workers := make([]string, serveCluster)
	workerSrvs := make([]*server.Server, serveCluster)
	for i := range workers {
		srv := server.New(engine.New(32), server.Config{Strategy: engine.TransformJA2})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(lis)
		defer srv.Shutdown(10 * time.Second)
		workers[i] = lis.Addr().String()
		workerSrvs[i] = srv
	}

	if serveReplicas < 1 {
		serveReplicas = 1
	}
	co, err := cluster.New(cluster.Config{
		Workers:       workers,
		Replicas:      serveReplicas,
		IOTimeout:     30 * time.Second,
		ProbeInterval: 250 * time.Millisecond,
	})
	if err != nil {
		fatal(err)
	}
	defer co.Close()
	if _, err := co.ExecSQL(script, engine.Options{}); err != nil {
		fatal(fmt.Errorf("cluster load: %w", err))
	}

	// Replicated-DML overhead: timed single-row commits, each acked only
	// after every live replica logged it. E15 compares R=1 against R=2.
	const dmlProbe = 200
	if _, err := co.ExecSQL("CREATE TABLE DML_PROBE (K INTEGER, V INTEGER, PRIMARY KEY (K))", engine.Options{}); err != nil {
		fatal(err)
	}
	t0 := time.Now()
	for k := 0; k < dmlProbe; k++ {
		if _, err := co.ExecSQL(fmt.Sprintf("INSERT INTO DML_PROBE VALUES (%d, %d)", k, k*3), engine.Options{}); err != nil {
			fatal(fmt.Errorf("DML probe commit %d: %w", k, err))
		}
	}
	fmt.Printf("serve-load: replicated DML: %d single-row commits at R=%d, mean %s/commit\n",
		dmlProbe, co.Replicas(), (time.Since(t0) / dmlProbe).Round(time.Microsecond))

	// Front the coordinator with its own server: clients speak to the
	// cluster exactly as they would to one node.
	front := server.NewBackend(co, server.Config{Strategy: engine.TransformJA2})
	frontLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go front.Serve(frontLis)
	defer front.Shutdown(10 * time.Second)
	addr := frontLis.Addr().String()

	fmt.Printf("serve-load: cluster of %d workers behind coordinator %s\n", serveCluster, addr)
	fmt.Printf("serve-load: %d connections x %d rounds x %d queries\n",
		serveConns, serveRounds, len(clusterMix))

	results := make([]outcome, serveConns)
	start := time.Now()
	var wg sync.WaitGroup
	for w := range serveConns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := &results[w]
			conn, err := client.Dial(addr, 10*time.Second)
			if err != nil {
				out.failures = append(out.failures, fmt.Sprintf("dial: %v", err))
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for range serveRounds {
				for _, qi := range rng.Perm(len(clusterMix)) {
					q := clusterMix[qi]
					t0 := time.Now()
					res, err := conn.Collect(q.sql, client.Options{Strategy: q.wireStrat})
					if err != nil {
						out.failures = append(out.failures, fmt.Sprintf("%s: %v", q.name, err))
						return
					}
					out.latencies = append(out.latencies, time.Since(t0))
					if got := canonSorted(res.Columns, res.Rows); !bytes.Equal(got, expected[qi]) {
						out.mismatches = append(out.mismatches,
							fmt.Sprintf("%s: %d result bytes != oracle's %d", q.name, len(got), len(expected[qi])))
					}
					out.done++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var done int
	var lats []time.Duration
	bad := false
	for w, out := range results {
		done += out.done
		lats = append(lats, out.latencies...)
		for _, m := range out.mismatches {
			fmt.Printf("serve-load: MISMATCH conn %d: %s\n", w, m)
			bad = true
		}
		for _, f := range out.failures {
			fmt.Printf("serve-load: FAILURE conn %d: %s\n", w, f)
			bad = true
		}
	}
	if want := serveConns * serveRounds * len(clusterMix); done != want {
		fmt.Printf("serve-load: completed %d of %d queries\n", done, want)
		bad = true
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("serve-load: %d queries OK, %.1fs wall, aggregate %.0f q/s\n",
		done, elapsed.Seconds(), float64(done)/elapsed.Seconds())
	if len(lats) > 0 {
		fmt.Printf("serve-load: latency p50 %s p99 %s\n",
			lats[len(lats)*50/100].Round(time.Microsecond),
			lats[len(lats)*99/100].Round(time.Microsecond))
	}
	// Every gather fans out to every worker, so equal per-node counts
	// mean the coordinator kept the fleet uniformly busy.
	for i, n := range co.GatherCounts() {
		fmt.Printf("serve-load: node %d: %d gathers, %.0f q/s\n",
			i, n, float64(n)/elapsed.Seconds())
	}

	// Failover drill (R>1 only): kill one worker outright, measure how
	// long until the cluster serves its first complete query again, and
	// re-verify the whole mix against the oracle with the node gone.
	if serveReplicas > 1 {
		fmt.Println("serve-load: failover drill: killing worker 0")
		kill := time.Now()
		workerSrvs[0].Shutdown(0)
		var reroute time.Duration
		for {
			if _, err := co.ExecSQL(clusterMix[0].sql, engine.Options{Strategy: engine.TransformJA2}); err == nil {
				reroute = time.Since(kill)
				break
			}
			if time.Since(kill) > 30*time.Second {
				fmt.Println("serve-load: FAILURE: no query completed within 30s of the kill")
				os.Exit(1)
			}
		}
		fmt.Printf("serve-load: failover: first query served %s after the kill (worker states: %s)\n",
			reroute.Round(time.Millisecond), strings.Join(co.WorkerStates(), " "))
		for i, q := range clusterMix {
			res, err := co.ExecSQL(q.sql, engine.Options{Strategy: q.engStrat})
			if err != nil {
				fmt.Printf("serve-load: FAILURE post-failover %s: %v\n", q.name, err)
				bad = true
				continue
			}
			if got := canonSorted(res.Columns, res.Rows); !bytes.Equal(got, expected[i]) {
				fmt.Printf("serve-load: MISMATCH post-failover %s\n", q.name)
				bad = true
			}
		}
		if !bad {
			fmt.Println("serve-load: failover: full query mix byte-identical to the oracle with worker 0 dead")
		}
	}

	if bad {
		os.Exit(1)
	}
	fmt.Println("serve-load: all distributed results byte-identical (canonically sorted) to the oracle")
}
