package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/workload"
)

// admitMaxConcurrent, admitQueueDepth, and admitMemPool hold the
// -max-concurrent, -queue-depth, and -mem-pool admission flags; when any
// is set, every experiment database runs behind the admission gateway,
// which lets the overhead experiment compare governed vs. raw runs on
// identical workloads. All zero (the default) keeps the gateway off and
// the golden output byte-identical.
var (
	admitMaxConcurrent int
	admitQueueDepth    int
	admitMemPool       int64
)

// newDB loads a fixture into a fresh engine database.
func newDB(bufferPages int, load func(*workload.DB) error) *engine.DB {
	db := engine.New(bufferPages)
	if admitMaxConcurrent > 0 || admitMemPool > 0 {
		db.EnableAdmission(admission.Config{
			MaxConcurrent: admitMaxConcurrent,
			QueueDepth:    admitQueueDepth,
			PoolBytes:     admitMemPool,
		})
	}
	if err := load(&workload.DB{Cat: db.Catalog(), Store: db.Store()}); err != nil {
		panic(err)
	}
	return db
}

// parallelWorkers and forceParallel configure how the experiments execute:
// TestGoldenParallelSemantics sets them to re-run the semantic experiments
// on the morsel-driven parallel operators (with the differential oracle
// armed) and compares the output against the sequential run. Zero keeps
// everything sequential, matching experiments.golden byte for byte.
var (
	parallelWorkers int
	forceParallel   bool
)

// queryTimeout and queryMaxRows hold the -timeout and -max-rows lifecycle
// flags; govern applies them so every experiment query runs under the same
// budgets.
var (
	queryTimeout time.Duration
	queryMaxRows int64
)

func govern(opts engine.Options) engine.Options {
	opts.Timeout = queryTimeout
	opts.MaxRows = queryMaxRows
	return opts
}

// runStrategy executes sql under a strategy and returns the result.
func runStrategy(db *engine.DB, sql string, s engine.Strategy) *engine.Result {
	opts := engine.Options{Strategy: s}
	opts.Planner.Parallelism = parallelWorkers
	opts.Planner.ForceParallel = forceParallel
	opts.VerifyParallel = parallelWorkers > 1
	res, err := db.Query(sql, govern(opts))
	if err != nil {
		panic(err)
	}
	return res
}

// printRows renders a result like the paper prints tables.
func printRows(header string, rows []storage.Tuple) {
	fmt.Printf("  %s\n", header)
	if len(rows) == 0 {
		fmt.Println("    (empty)")
		return
	}
	for _, r := range rows {
		fmt.Printf("    %s\n", r)
	}
}

// printTable prints a stored relation's contents.
func printTable(db *engine.DB, name string) {
	f, ok := db.Store().Lookup(name)
	if !ok {
		fmt.Printf("  %s: (missing)\n", name)
		return
	}
	var rows []storage.Tuple
	f.Scan(func(t storage.Tuple) bool {
		rows = append(rows, t)
		return true
	})
	rel, _ := db.Catalog().Lookup(name)
	cols := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		cols[i] = c.Name
	}
	printRows(fmt.Sprintf("%s(%s):", name, strings.Join(cols, ", ")), rows)
}

// transformKeepingTemps runs the transformation and planner with KeepTemps
// so temp contents can be printed, then returns the result rows and a
// cleanup function.
func transformKeepingTemps(db *engine.DB, sql string, variant transform.Variant) ([]storage.Tuple, *transform.Result, func()) {
	qb, err := sqlparser.Parse(sql)
	if err != nil {
		panic(err)
	}
	if _, err := schema.Resolve(db.Catalog(), qb); err != nil {
		panic(err)
	}
	tr, err := transform.New(db.Catalog(), variant).Transform(qb)
	if err != nil {
		panic(err)
	}
	pl := planner.New(db.Catalog(), db.Store(), planner.Options{
		KeepTemps:     true,
		Parallelism:   parallelWorkers,
		ForceParallel: forceParallel,
	})
	rows, _, err := pl.Run(tr)
	if err != nil {
		panic(err)
	}
	return rows, tr, pl.DropTemps
}

// expCountBug reproduces section 5.1: Kiessling's query Q2 on his
// PARTS/SUPPLY instance under nested iteration (the correct {10, 8}) and
// under Kim's NEST-JA (the buggy {10}).
func expCountBug() {
	db := newDB(8, workload.LoadKiessling)
	printTable(db, "PARTS")
	printTable(db, "SUPPLY")
	fmt.Println("\n  Query Q2 [KIE 84:4]:", oneLine(workload.KiesslingQ2))

	ni := runStrategy(db, workload.KiesslingQ2, engine.NestedIteration)
	printRows("Nested iteration (correct) — paper: {10, 8}:", ni.Rows)

	rows, tr, drop := transformKeepingTemps(db, workload.KiesslingQ2, transform.KimJA)
	fmt.Println("\n  Kim's NEST-JA transformation:")
	for _, t := range tr.Temps {
		fmt.Printf("    %s = %s\n", t.Name, t.Def)
	}
	fmt.Printf("    final: %s\n", tr.Query)
	printTable(db, tr.Temps[0].Name)
	drop()
	printRows("Kim NEST-JA result — paper: COUNT never returns zero, part 8 lost:", rows)
}

// expCountFix reproduces section 5.2: the outer-join construction of the
// temporary table restores {10, 8}, with TEMP2/TEMP3 printed as the paper
// shows them.
func expCountFix() {
	db := newDB(8, workload.LoadKiessling)
	rows, tr, drop := transformKeepingTemps(db, workload.KiesslingQ2, transform.JA2)
	fmt.Println("  NEST-JA2 transformation steps:")
	for _, t := range tr.Temps {
		fmt.Printf("    %s = %s\n", t.Name, t.Def)
	}
	fmt.Printf("    final: %s\n", tr.Query)
	fmt.Println()
	for _, t := range tr.Temps {
		printTable(db, t.Name)
	}
	drop()
	printRows("Result — paper: {10, 8}, matching nested iteration:", rows)
}

// expCountStar reproduces section 5.2.1: COUNT(*) must become COUNT over
// the inner join column after the outer join.
func expCountStar() {
	db := newDB(8, workload.LoadKiessling)
	fmt.Println("  Query Q2 with COUNT(*):", oneLine(workload.KiesslingQ2CountStar))
	rows, tr, drop := transformKeepingTemps(db, workload.KiesslingQ2CountStar, transform.JA2)
	temp3 := tr.Temps[len(tr.Temps)-1]
	fmt.Printf("  COUNT(*) converted in %s: %s\n", temp3.Name, temp3.Def)
	printTable(db, temp3.Name)
	drop()
	printRows("Result — COUNT(*) handled correctly: {10, 8}:", rows)

	ni := runStrategy(db, workload.KiesslingQ2CountStar, engine.NestedIteration)
	printRows("Nested iteration agrees:", ni.Rows)
}

// expNonEq reproduces section 5.3: query Q5 with the "<" operator. Kim's
// algorithm aggregates per inner join-column value and answers {10, 8};
// the fix aggregates over the range each outer tuple sees and answers {8}.
func expNonEq() {
	db := newDB(8, workload.LoadNonEquality)
	printTable(db, "PARTS")
	printTable(db, "SUPPLY")
	fmt.Println("\n  Query Q5 (section 5.3):", oneLine(workload.GanskiQ5))

	ni := runStrategy(db, workload.GanskiQ5, engine.NestedIteration)
	printRows("Nested iteration (correct, MAX({}) = NULL) — paper: {8}:", ni.Rows)

	rowsKim, trKim, dropKim := transformKeepingTemps(db, workload.GanskiQ5, transform.KimJA)
	fmt.Printf("\n  Kim temp (TEMP5 in the paper): %s\n", trKim.Temps[0].Def)
	printTable(db, trKim.Temps[0].Name)
	dropKim()
	printRows("Kim NEST-JA result — paper: {10, 8} (wrong):", rowsKim)

	rowsJA2, trJA2, dropJA2 := transformKeepingTemps(db, workload.GanskiQ5, transform.JA2)
	fmt.Printf("\n  NEST-JA2 temp (TEMP6 in the paper): %s\n", trJA2.Temps[1].Def)
	printTable(db, trJA2.Temps[1].Name)
	dropJA2()
	printRows("NEST-JA2 result — paper: {8}:", rowsJA2)
}

// expDuplicates reproduces section 5.4: with duplicate outer join-column
// values, the outer-join fix alone over-counts; the DISTINCT projection of
// the outer join column (TEMP1) restores {3, 10, 8}. The naive variant is
// built explicitly as the ablation the paper walks through.
func expDuplicates() {
	db := newDB(8, workload.LoadDuplicates)
	printTable(db, "PARTS")
	printTable(db, "SUPPLY")
	fmt.Println("\n  Query Q2 over the duplicate-laden PARTS (section 5.4)")

	ni := runStrategy(db, workload.KiesslingQ2, engine.NestedIteration)
	printRows("Nested iteration — paper: {3, 10, 8}:", ni.Rows)

	naive := naiveOuterJoinRows(db)
	printRows("Outer-join fix WITHOUT the DISTINCT projection — paper: {8} (wrong):", naive)

	rows, tr, drop := transformKeepingTemps(db, workload.KiesslingQ2, transform.JA2)
	for _, t := range tr.Temps {
		printTable(db, t.Name)
	}
	drop()
	printRows("Full NEST-JA2 (with TEMP1 projection) — paper: {3, 10, 8}:", rows)
}

// expJA2Example reproduces section 6.1: the three steps of algorithm
// NEST-JA2 applied to query Q2 on the duplicates instance, printing TEMP1
// and TEMP3 as the paper does.
func expJA2Example() {
	db := newDB(8, workload.LoadDuplicates)
	rows, tr, drop := transformKeepingTemps(db, workload.KiesslingQ2, transform.JA2)
	fmt.Println("  Algorithm NEST-JA2, the three steps of section 6.1:")
	for i, t := range tr.Temps {
		fmt.Printf("    step %d: %s = %s\n", i+1, t.Name, t.Def)
	}
	fmt.Printf("    step 3 (rewritten query): %s\n\n", tr.Query)
	printTable(db, tr.Temps[0].Name) // TEMP1 — paper: {3, 10, 8}
	printTable(db, tr.Temps[2].Name) // TEMP3 — paper: {(3,2), (10,1), (8,0)}
	drop()
	printRows("Final result — paper: {3, 10, 8}:", rows)
}

func oneLine(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}
