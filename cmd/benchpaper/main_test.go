package main

import (
	"os"
	"testing"

	"repro/internal/workload"
)

// The experiment functions print to stdout and panic on internal errors;
// running each one end to end is an integration test of the whole
// pipeline (transform + planner + executors + cost model) at once.
func TestAllExperimentsRun(t *testing.T) {
	// Silence the experiment output during tests.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	for _, e := range experiments {
		t.Run(e.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("experiment %s panicked: %v", e.name, r)
				}
			}()
			e.run()
		})
	}
}

// The analytic Figure 1 rows must stay pinned to the paper's numbers
// (within the documented tolerance for the type-JA transform row).
func TestFigure1Calibration(t *testing.T) {
	for _, r := range figure1Analytic() {
		checks := []struct {
			name         string
			model, paper float64
			tol          float64
		}{
			{"NI", r.modelNI, r.paperNI, 0.005},
			{"transform", r.modelTransform, r.paperTransform, 0.03},
		}
		for _, c := range checks {
			rel := (c.model - c.paper) / c.paper
			if rel < 0 {
				rel = -rel
			}
			if rel > c.tol {
				t.Errorf("%s %s: model %.1f vs paper %.0f (%.1f%% off, tolerance %.1f%%)",
					r.label, c.name, c.model, c.paper, rel*100, c.tol*100)
			}
		}
	}
}

// The section 7 cost model must predict measured behavior: nested
// iteration exactly (the deterministic filter makes f(i)·Ni exact), and
// the JA2 merge-merge total within a small constant factor (the model
// ignores in-memory sorts and buffer hits, so measured may be below; it
// also charges no joins' output scans, so measured may be mildly above).
func TestModelFitBounds(t *testing.T) {
	cfg := workload.SyntheticConfig{
		Name: "fit", OuterTuples: 500, InnerTuples: 300,
		OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 350,
		Selectivity: 0.2, MatchFraction: 0.6, Seed: 22,
	}
	niModel, niMeas, ja2Model, ja2Meas := ModelFitRow(cfg, 6)
	if float64(niMeas) != niModel {
		t.Errorf("nested iteration: model %.0f, measured %d", niModel, niMeas)
	}
	ratio := float64(ja2Meas) / ja2Model
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("JA2 merge-merge: model %.1f, measured %d (ratio %.2f outside [0.3, 3])",
			ja2Model, ja2Meas, ratio)
	}
}
