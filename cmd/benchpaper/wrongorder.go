package main

import (
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

// cutoffDate is the paper's SHIPDATE restriction constant.
func cutoffDate() value.Date {
	d, err := value.ParseDate("1-1-80")
	if err != nil {
		panic(err)
	}
	return d
}

// restrictionAfterOuterJoin builds — directly from physical operators —
// the incorrect evaluation order section 5.2 warns against: outer-join the
// projection of PARTS with the *unrestricted* SUPPLY, and only then apply
// SHIPDATE < 1-1-80. The filter's three-valued logic drops the NULL-padded
// rows of unmatched groups, so the group for part 8 (COUNT = 0) vanishes
// from the temp table. Returns the wrong TEMP3 contents.
func restrictionAfterOuterJoin(db *engine.DB) []storage.Tuple {
	store := db.Store()
	parts, _ := store.Lookup("PARTS")
	supply, _ := store.Lookup("SUPPLY")

	// DTEMP = SELECT DISTINCT PNUM FROM PARTS, in sorted order.
	proj := exec.NewProject(
		exec.NewSeqScan(parts, "PARTS", []string{"PNUM", "QOH"}),
		[]int{0}, []exec.ColID{{Table: "DTEMP", Column: "PNUM"}})
	distinct := &exec.Distinct{Child: &exec.Sort{Child: proj, Keys: []int{0}, Store: store}}
	dtemp, err := exec.Materialize(distinct, store, 0)
	if err != nil {
		panic(err)
	}
	defer store.Drop(dtemp.Name())

	// Outer join DTEMP with the unrestricted SUPPLY.
	left := exec.NewSeqScan(dtemp, "DTEMP", []string{"PNUM"})
	rightSch := exec.RowSchema{
		{Table: "SUPPLY", Column: "PNUM"},
		{Table: "SUPPLY", Column: "QUAN"},
		{Table: "SUPPLY", Column: "SHIPDATE"},
	}
	pred, err := exec.CompileConjuncts([]ast.Predicate{&ast.Comparison{
		Left:  ast.ColumnRef{Table: "DTEMP", Column: "PNUM"},
		Op:    value.OpEq,
		Right: ast.ColumnRef{Table: "SUPPLY", Column: "PNUM"},
	}}, left.Schema().Concat(rightSch))
	if err != nil {
		panic(err)
	}
	join := &exec.NestedLoopJoin{Left: left, Right: supply, RightSch: rightSch, Pred: pred, Outer: true}

	// The mistake: restrict AFTER the join. SHIPDATE < 1-1-80 is Unknown
	// for the padded rows, which are therefore dropped.
	cutoff, err := exec.CompileConjuncts([]ast.Predicate{&ast.Comparison{
		Left:  ast.ColumnRef{Table: "SUPPLY", Column: "SHIPDATE"},
		Op:    value.OpLt,
		Right: ast.Const{Val: value.NewDateValue(cutoffDate())},
	}}, join.Schema())
	if err != nil {
		panic(err)
	}
	filtered := &exec.Filter{Child: join, Pred: cutoff}

	group := &exec.GroupAgg{
		Child:     filtered, // nested loops preserved DTEMP's order
		GroupCols: []int{0},
		Items: []exec.GroupItem{
			{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "PNUM"}},
			{Agg: value.AggCount, Col: 3, Out: exec.ColID{Column: "CT"}},
		},
	}
	rows, err := exec.Drain(group)
	if err != nil {
		panic(err)
	}
	return rows
}
