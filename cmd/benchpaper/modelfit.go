package main

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/transform"
	"repro/internal/workload"
)

// expModelFit validates the section 7 cost model against end-to-end
// measurements: for a grid of workload shapes it computes the analytic
// NEST-JA2 two-merge-join total (deriving the temp sizes from the actual
// materialized temps) and compares it with the measured page I/Os of the
// forced merge+merge plan, plus the nested-iteration baseline against
// Pi + f(i)·Ni·Pj.
//
// Measured merge-join numbers sit at or below the model: small
// intermediates sort in memory and the buffer pool absorbs re-reads, both
// of which the model conservatively ignores.
func expModelFit() {
	fmt.Printf("  %-26s %10s %10s %7s %12s %12s %7s\n",
		"workload", "NI model", "NI meas", "ratio", "JA2 model", "JA2 meas", "ratio")
	grid := []workload.SyntheticConfig{
		{Name: "Pi=30 Pj=20 f=0.5", OuterTuples: 300, InnerTuples: 200,
			OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 60,
			Selectivity: 0.5, MatchFraction: 0.5, Seed: 21},
		{Name: "Pi=50 Pj=30 f=0.2", OuterTuples: 500, InnerTuples: 300,
			OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 350,
			Selectivity: 0.2, MatchFraction: 0.6, Seed: 22},
		{Name: "Pi=40 Pj=100 f=1.0", OuterTuples: 400, InnerTuples: 1000,
			OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 100,
			Selectivity: 1.0, MatchFraction: 0.5, Seed: 23},
	}
	for _, cfg := range grid {
		niModel, niMeas, ja2Model, ja2Meas := ModelFitRow(cfg, 6)
		fmt.Printf("  %-26s %10.0f %10d %7.2f %12.1f %12d %7.2f\n",
			cfg.Name, niModel, niMeas, float64(niMeas)/niModel,
			ja2Model, ja2Meas, float64(ja2Meas)/ja2Model)
	}
}

// ModelFitRow computes (analytic NI, measured NI, analytic JA2 merge-merge,
// measured JA2 merge-merge) for one workload at buffer size b. The temp
// page counts for the analytic formula are taken from the actual
// materialized temps (the model predicts evaluation cost given sizes, not
// the sizes themselves). Exported for the regression test.
func ModelFitRow(cfg workload.SyntheticConfig, b int) (niModel float64, niMeas int64, ja2Model float64, ja2Meas int64) {
	sql := workload.TypeJAMaxQuery(cfg)
	niMeas = measure(cfg, b, sql, engine.NestedIteration, planner.Options{})
	ja2Meas = measure(cfg, b, sql, engine.TransformJA2,
		planner.Options{TempJoin: planner.JoinMerge, FinalJoin: planner.JoinMerge, TempTuplesPerPage: 10})

	// Derive the model's inputs from the workload and the materialized
	// temp sizes of a probe run.
	db := engine.New(b)
	if err := workload.LoadSynthetic(&workload.DB{Cat: db.Catalog(), Store: db.Store()}, cfg); err != nil {
		panic(err)
	}
	pi := float64((cfg.OuterTuples + cfg.OuterPerPage - 1) / cfg.OuterPerPage)
	pj := float64((cfg.InnerTuples + cfg.InnerPerPage - 1) / cfg.InnerPerPage)
	fNi := float64(cfg.OuterTuples) * cfg.Selectivity

	sizes := tempSizes(db, sql)
	params := costmodel.JA2Params{
		Pi: pi, Pj: pj,
		Pt2: sizes["TEMP1"], Pt3: pj * cfg.MatchFraction,
		Pt4: sizes["TEMP2"], Pt: sizes["TEMP2"],
		FNi: fNi, Ni: float64(cfg.OuterTuples), Nt2: sizes["TEMP1"] * 10,
		B: b,
	}
	return params.NestedIteration(), niMeas, params.Totals().MergeMerge, ja2Meas
}

// tempSizes runs the transformation keeping temps and returns their page
// counts by name.
func tempSizes(db *engine.DB, sql string) map[string]float64 {
	_, tr, drop := transformKeepingTemps(db, sql, transform.JA2)
	defer drop()
	out := make(map[string]float64, len(tr.Temps))
	for _, temp := range tr.Temps {
		if f, ok := db.Store().Lookup(temp.Name); ok {
			out[temp.Name] = float64(f.NumPages())
		}
	}
	return out
}
