// Command benchpaper regenerates every table and figure of "Optimization
// of Nested SQL Queries Revisited" (Ganski & Wong, SIGMOD 1987):
//
//	benchpaper -exp all           # everything, in paper order
//	benchpaper -exp figure1       # Figure 1: page I/Os in Kim's examples
//	benchpaper -exp countbug      # section 5.1: the COUNT bug
//	benchpaper -exp countfix      # section 5.2: the outer-join fix (TEMP tables)
//	benchpaper -exp countstar     # section 5.2.1: COUNT(*) conversion
//	benchpaper -exp noneq         # section 5.3: the non-equality bug and fix
//	benchpaper -exp dups          # section 5.4: the duplicates problem and fix
//	benchpaper -exp ja2           # section 6.1: NEST-JA2 worked example
//	benchpaper -exp cost74        # section 7.4: cost example (3050 vs ~475)
//	benchpaper -exp predicates    # section 8: EXISTS/ANY/ALL extensions
//	benchpaper -exp tree          # section 9.1 / Figure 2: recursive nest_g
//	benchpaper -exp sweep         # section 4: the 80%-95% savings claim
//	benchpaper -exp modelfit      # section 7: cost model vs measurement
//	benchpaper -exp ablations     # design ablations A1-A4 (see DESIGN.md)
//
// Experiment numbering (E1-E12) follows DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
)

type experiment struct {
	name string
	desc string
	run  func()
}

var experiments = []experiment{
	{"figure1", "Figure 1 — page I/Os required in Kim's examples (E1)", expFigure1},
	{"countbug", "Section 5.1 — the COUNT bug in NEST-JA (E2)", expCountBug},
	{"countfix", "Section 5.2 — the outer-join fix, temp table contents (E3)", expCountFix},
	{"countstar", "Section 5.2.1 — COUNT(*) conversion (E4)", expCountStar},
	{"noneq", "Section 5.3 — the non-equality bug and fix (E5)", expNonEq},
	{"dups", "Section 5.4 — the duplicates problem and fix (E6)", expDuplicates},
	{"ja2", "Section 6.1 — algorithm NEST-JA2 worked example (E7)", expJA2Example},
	{"cost74", "Section 7.4 — cost example: 3050 vs ~475 (E8)", expCost74},
	{"predicates", "Section 8 — EXISTS / NOT EXISTS / ANY / ALL (E10)", expPredicates},
	{"tree", "Section 9.1 / Figure 2 — recursive processing of a general nested query (E9)", expTree},
	{"sweep", "Section 4 — savings sweep, analytic and measured (E11)", expSweep},
	{"modelfit", "Section 7 — cost model vs end-to-end measurement", expModelFit},
	{"ablations", "Ablations A1-A4 — isolating each NEST-JA2 ingredient", expAblations},
	{"durability", "Durability — commit overhead (fsync on/off) and recovery time vs WAL length (E13)", expDurability},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all | "+names()+")")
	flag.DurationVar(&queryTimeout, "timeout", 0, "per-query wall-clock limit for experiment queries (0 = none)")
	flag.Int64Var(&queryMaxRows, "max-rows", 0, "per-query result-row budget for experiment queries (0 = none)")
	flag.IntVar(&admitMaxConcurrent, "max-concurrent", 0, "admission: max concurrent queries per experiment database (0 = no gateway)")
	flag.IntVar(&admitQueueDepth, "queue-depth", 0, "admission: queries allowed to wait behind the running ones")
	flag.Int64Var(&admitMemPool, "mem-pool", 0, "admission: global memory pool in bytes (0 = none)")
	flag.BoolVar(&serveLoadFlag, "serve-load", false, "run the network load harness instead of an experiment (see serveload.go)")
	flag.StringVar(&serveAddr, "serve-addr", "", "serve-load: address of a running nestedsqld -fixture both (empty = in-process server)")
	flag.IntVar(&serveConns, "connections", 8, "serve-load: concurrent client connections")
	flag.IntVar(&serveRounds, "rounds", 3, "serve-load: rounds of the query mix per connection")
	flag.StringVar(&serveSpillDir, "serve-spill-dir", "", "serve-load: enable spill-to-disk on the in-process server, rooted here (empty = off)")
	flag.IntVar(&serveCluster, "cluster", 0, "serve-load: shard across N in-process workers behind a coordinator and report per-node q/s (0 = single node)")
	flag.IntVar(&serveReplicas, "replicas", 1, "serve-load: copies per shard; at R>1 the harness also runs the failover drill (kill a worker mid-fleet) and reports replicated-DML commit overhead")
	serveDML := flag.Int("serve-dml", 0, "drive N sequential acked INSERTs into table DURABLE on -serve-addr, printing the acked count (see serve_smoke.sh phase 4)")
	serveDMLVerify := flag.Int("serve-dml-verify", -1, "verify the recovered DURABLE table on -serve-addr holds the contiguous acked prefix (N = acked count from -serve-dml)")
	flag.Parse()

	if serveLoadFlag {
		if serveCluster > 0 {
			banner("Cluster load harness — distributed gathers vs the sequential oracle")
			expServeCluster()
			return
		}
		banner("Network load harness — streamed results vs the sequential oracle")
		expServeLoad()
		return
	}
	if *serveDML > 0 {
		expServeDML(serveAddr, *serveDML)
		return
	}
	if *serveDMLVerify >= 0 {
		expServeDMLVerify(serveAddr, *serveDMLVerify)
		return
	}

	if *exp == "all" {
		for _, e := range experiments {
			banner(e.desc)
			e.run()
		}
		return
	}
	for _, e := range experiments {
		if e.name == *exp {
			banner(e.desc)
			e.run()
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of: all %s\n", *exp, names())
	os.Exit(2)
}

func names() string {
	s := ""
	for i, e := range experiments {
		if i > 0 {
			s += " | "
		}
		s += e.name
	}
	return s
}

func banner(title string) {
	fmt.Println()
	fmt.Println("==================================================================")
	fmt.Println(title)
	fmt.Println("==================================================================")
}
