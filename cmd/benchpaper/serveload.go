package main

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	nestedsql "repro"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
)

// The serve-load harness: N concurrent client connections drive the
// paper workload through a nestedsqld server and cross-check every
// streamed result, byte for byte, against an in-process sequential
// oracle. Overload sheds are retried after the server's hint; any
// result mismatch or unexpected error fails the run.
//
//	benchpaper -serve-load                        # in-process server
//	benchpaper -serve-load -serve-addr HOST:PORT  # external nestedsqld
//	  (the external server must be started with -fixture both)

var (
	serveLoadFlag bool
	serveAddr     string
	serveConns    int
	serveRounds   int
	serveSpillDir string
)

// loadQuery is one workload entry: the SQL, the strategy byte the
// client requests, and the engine strategy the oracle mirrors.
type loadQuery struct {
	name      string
	sql       string
	wireStrat byte
	engStrat  engine.Strategy
}

// loadWorkload is the paper mix over the Kiessling PARTS/SUPPLY and the
// introduction's S/P/SP databases (disjoint names, one catalog). The
// flagship COUNT query runs under both evaluation strategies so the
// harness exercises nested iteration and NEST-JA2 streaming side by
// side; everything runs sequentially (parallelism 0) so results are
// order-deterministic and the byte comparison is exact.
var loadWorkload = []loadQuery{
	{"countbug-ja2", `SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"countbug-ni", `SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`,
		wire.StrategyNested, engine.NestedIteration},
	{"exists", `SELECT PNUM FROM PARTS
		WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"not-exists", `SELECT PNUM FROM PARTS
		WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"lt-any", `SELECT PNUM FROM PARTS
		WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"gt-all", `SELECT PNUM FROM PARTS
		WHERE QOH > ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"division-ja2", `SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
			WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`,
		wire.StrategyTransform, engine.TransformJA2},
	{"division-ni", `SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
			WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`,
		wire.StrategyNested, engine.NestedIteration},
	{"in-simple", `SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE QTY > 200)`,
		wire.StrategyTransform, engine.TransformJA2},
	{"empty", `SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY
		WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN > 100000)`,
		wire.StrategyTransform, engine.TransformJA2},
}

// loadDB builds the combined paper database the harness (and an
// in-process server) runs against; nestedsqld -fixture both is the
// external equivalent.
func loadDB() *nestedsql.DB {
	db := nestedsql.Open(
		nestedsql.WithBufferPages(32),
		nestedsql.WithAdmissionControl(nestedsql.AdmissionConfig{
			MaxConcurrent: admitMaxConcurrent,
			QueueDepth:    admitQueueDepth,
			MemPool:       admitMemPool,
		}),
	)
	if serveSpillDir != "" {
		if err := db.EnableSpill(serveSpillDir, 0); err != nil {
			panic(err)
		}
	}
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		panic(err)
	}
	if err := db.LoadFixture(nestedsql.FixtureSuppliers); err != nil {
		panic(err)
	}
	return db
}

// canonical renders a result as the wire's own value encoding, so
// "byte-identical" means exactly that: the comparison covers column
// names, row order, and every value byte.
func canonical(cols []string, rows []storage.Tuple) []byte {
	return wire.EncodeRowBatch(wire.RowBatch{Columns: cols, Rows: rows})
}

// expServeLoad runs the load harness. It exits the process non-zero on
// any mismatch or unexpected error, so scripts can gate on it.
func expServeLoad() {
	// The oracle: the same database, queried in process, sequentially.
	oracle := nestedsql.Open(nestedsql.WithBufferPages(32))
	if err := oracle.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		fatal(err)
	}
	if err := oracle.LoadFixture(nestedsql.FixtureSuppliers); err != nil {
		fatal(err)
	}
	expected := make([][]byte, len(loadWorkload))
	for i, q := range loadWorkload {
		res, err := oracle.Internal().Query(q.sql, engine.Options{Strategy: q.engStrat})
		if err != nil {
			fatal(fmt.Errorf("oracle %s: %w", q.name, err))
		}
		expected[i] = canonical(res.Columns, res.Rows)
	}

	addr := serveAddr
	var srvDB *nestedsql.DB
	if addr == "" {
		// No external server: boot one in process on a random port.
		srvDB = loadDB()
		srv := server.New(srvDB.Internal(), server.Config{Strategy: engine.TransformJA2})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(lis)
		defer srv.Shutdown(10 * time.Second)
		addr = lis.Addr().String()
		fmt.Printf("serve-load: in-process server on %s\n", addr)
	}

	fmt.Printf("serve-load: %d connections x %d rounds x %d queries against %s\n",
		serveConns, serveRounds, len(loadWorkload), addr)

	results := make([]outcome, serveConns)
	start := time.Now()
	var wg sync.WaitGroup
	for w := range serveConns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := &results[w]
			conn, err := client.Dial(addr, 10*time.Second)
			if err != nil {
				out.failures = append(out.failures, fmt.Sprintf("dial: %v", err))
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for range serveRounds {
				order := rng.Perm(len(loadWorkload))
				for _, qi := range order {
					q := loadWorkload[qi]
					if !runOne(conn, q, expected[qi], out) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var done, sheds int
	var lats []time.Duration
	bad := false
	for w, out := range results {
		done += out.done
		sheds += out.sheds
		lats = append(lats, out.latencies...)
		for _, m := range out.mismatches {
			fmt.Printf("serve-load: MISMATCH conn %d: %s\n", w, m)
			bad = true
		}
		for _, f := range out.failures {
			fmt.Printf("serve-load: FAILURE conn %d: %s\n", w, f)
			bad = true
		}
	}
	want := serveConns * serveRounds * len(loadWorkload)
	if done != want {
		fmt.Printf("serve-load: completed %d of %d queries\n", done, want)
		bad = true
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("serve-load: %d queries OK, %d overload sheds retried, %.1fs wall\n",
		done, sheds, elapsed.Seconds())
	if len(lats) > 0 {
		fmt.Printf("serve-load: throughput %.0f q/s, latency p50 %s p99 %s\n",
			float64(done)/elapsed.Seconds(),
			lats[len(lats)*50/100].Round(time.Microsecond),
			lats[len(lats)*99/100].Round(time.Microsecond))
	}
	if bad {
		os.Exit(1)
	}
	if srvDB != nil {
		st := srvDB.AdmissionStats()
		fmt.Printf("serve-load: admission admitted=%d shed=%d degraded=%d pressure=%d\n",
			st.Admitted, st.Shed, st.Degraded, st.PressureGrants)
		sp := srvDB.SpillStats()
		fmt.Printf("serve-load: spill runs=%d bytes=%d\n", sp.Runs, sp.Bytes)
	}
	fmt.Println("serve-load: all streamed results byte-identical to the sequential oracle")
}

// outcome accumulates one connection's results.
type outcome struct {
	done       int
	mismatches []string
	failures   []string
	sheds      int
	latencies  []time.Duration
}

// runOne executes one workload query with overload retries, recording
// the outcome. It reports false when the connection is unusable.
func runOne(conn *client.Conn, q loadQuery, want []byte, out *outcome) bool {
	const maxAttempts = 200
	for attempt := 1; ; attempt++ {
		t0 := time.Now()
		res, err := conn.Collect(q.sql, client.Options{Strategy: q.wireStrat})
		if err != nil {
			var ov *qctx.OverloadError
			if errors.As(err, &ov) && attempt < maxAttempts {
				// The server said when to come back; believe it.
				out.sheds++
				pause := ov.RetryAfter
				if pause <= 0 {
					pause = time.Millisecond
				}
				time.Sleep(pause)
				continue
			}
			out.failures = append(out.failures, fmt.Sprintf("%s: %v", q.name, err))
			return false
		}
		out.latencies = append(out.latencies, time.Since(t0))
		if got := canonical(res.Columns, res.Rows); string(got) != string(want) {
			out.mismatches = append(out.mismatches,
				fmt.Sprintf("%s: %d result bytes != oracle's %d", q.name, len(got), len(want)))
		}
		out.done++
		return true
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve-load:", err)
	os.Exit(1)
}
