package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment output")

// The full experiment output is deterministic (fixed seeds, deterministic
// engine), so it is pinned as a golden file: any semantic or cost change
// to the reproduction shows up as a diff against the paper's tables.
// Experiments whose output *is* the measurement — wall-clock timings —
// are excluded; their correctness lives in their own test gates.
var timingExperiments = map[string]bool{
	"durability": true, // per-commit latency and recovery timings (make crash is the gate)
}

func TestGoldenExperimentOutput(t *testing.T) {
	var buf bytes.Buffer
	captureStdout(t, &buf, func() {
		for _, e := range experiments {
			if timingExperiments[e.name] {
				continue
			}
			banner(e.desc)
			e.run()
		}
	})
	golden := filepath.Join("testdata", "experiments.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated (%d bytes)", buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("experiment output drifted from golden file; run with -update and inspect the diff (got %d bytes, want %d)",
			buf.Len(), len(want))
		// Show the first divergence for quick triage.
		g, w := buf.Bytes(), want
		n := min(len(g), len(w))
		for i := range n {
			if g[i] != w[i] {
				lo := max(0, i-120)
				t.Errorf("first divergence at byte %d:\n  got:  ...%q\n  want: ...%q",
					i, g[lo:min(len(g), i+120)], w[lo:min(len(w), i+120)])
				break
			}
		}
	}
}

// Parallel execution may only reorder rows — never add, drop, or change
// them. The semantic experiments (result rows and temp-table contents, no
// measured I/O numbers) must therefore print the same content under
// sequential and forced-parallel execution once row order, the one thing
// parallelism is allowed to perturb, is normalized away by sorting lines.
// The parallel run also arms the differential oracle, so any semantic
// divergence fails inside the engine before the comparison here.
func TestGoldenParallelSemantics(t *testing.T) {
	semantic := map[string]bool{
		"countbug": true, "countfix": true, "countstar": true,
		"noneq": true, "dups": true, "ja2": true,
		"predicates": true, "tree": true,
	}
	run := func() string {
		var buf bytes.Buffer
		captureStdout(t, &buf, func() {
			for _, e := range experiments {
				if semantic[e.name] {
					banner(e.desc)
					e.run()
				}
			}
		})
		return buf.String()
	}
	seq := run()
	parallelWorkers, forceParallel = 4, true
	defer func() { parallelWorkers, forceParallel = 0, false }()
	par := run()
	got, want := sortedLines(par), sortedLines(seq)
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := min(len(gl), len(wl))
	for i := range n {
		if gl[i] != wl[i] {
			t.Fatalf("parallel semantics diverge from sequential (%d vs %d lines); first difference:\n  parallel:   %q\n  sequential: %q",
				len(gl), len(wl), gl[i], wl[i])
		}
	}
	t.Fatalf("parallel semantics diverge from sequential: %d vs %d lines; first unmatched: %q",
		len(gl), len(wl), append(gl, wl...)[n])
}

// sortedLines sorts the output's lines, erasing row order while keeping
// every printed row, temp-table tuple, and banner comparable.
func sortedLines(s string) string {
	lines := strings.Split(s, "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// captureStdout redirects os.Stdout into buf while fn runs.
func captureStdout(t *testing.T, buf *bytes.Buffer, fn func()) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	go func() {
		buf.ReadFrom(r)
		close(done)
	}()
	fn()
	w.Close()
	<-done
	os.Stdout = old
}
