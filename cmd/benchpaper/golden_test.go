package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment output")

// The full experiment output is deterministic (fixed seeds, deterministic
// engine), so it is pinned as a golden file: any semantic or cost change
// to the reproduction shows up as a diff against the paper's tables.
func TestGoldenExperimentOutput(t *testing.T) {
	var buf bytes.Buffer
	captureStdout(t, &buf, func() {
		for _, e := range experiments {
			banner(e.desc)
			e.run()
		}
	})
	golden := filepath.Join("testdata", "experiments.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated (%d bytes)", buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("experiment output drifted from golden file; run with -update and inspect the diff (got %d bytes, want %d)",
			buf.Len(), len(want))
		// Show the first divergence for quick triage.
		g, w := buf.Bytes(), want
		n := min(len(g), len(w))
		for i := range n {
			if g[i] != w[i] {
				lo := max(0, i-120)
				t.Errorf("first divergence at byte %d:\n  got:  ...%q\n  want: ...%q",
					i, g[lo:min(len(g), i+120)], w[lo:min(len(w), i+120)])
				break
			}
		}
	}
}

// captureStdout redirects os.Stdout into buf while fn runs.
func captureStdout(t *testing.T, buf *bytes.Buffer, fn func()) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	go func() {
		buf.ReadFrom(r)
		close(done)
	}()
	fn()
	w.Close()
	<-done
	os.Stdout = old
}
