package main

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/workload"
)

// Figure-1 calibration. The paper reprints Kim's numbers but not Kim's
// example parameters ([KIM 82:462-463]); the parameter sets below are
// calibrated against the implemented cost formulas to land on the paper's
// reported values (derivation in EXPERIMENTS.md). The type-JA nested
// iteration row needs no calibration: the paper's own section 7.4
// parameters give exactly 3050.
type figure1Row struct {
	label          string
	paperNI        float64
	paperTransform float64
	modelNI        float64
	modelTransform float64
}

func figure1Analytic() []figure1Row {
	rows := []figure1Row{}

	// Type-N: Pi=100, Pj=120, Px=100, f(i)·Ni=100, B=64.
	rows = append(rows, figure1Row{
		label:          "type-N",
		paperNI:        10220,
		paperTransform: 720,
		modelNI:        costmodel.TypeNNestedIterationCost(100, 120, 100, 100, 64),
		modelTransform: costmodel.CanonicalMergeJoinCost(100, 120, 64),
	})
	// Type-J: Pi=120, Pj=100, f(i)·Ni=100, B=530.
	rows = append(rows, figure1Row{
		label:          "type-J",
		paperNI:        10120,
		paperTransform: 550,
		modelNI:        costmodel.NestedIterationCost(120, 100, 100),
		modelTransform: costmodel.CanonicalMergeJoinCost(120, 100, 530),
	})
	// Type-JA: Pi=50, Pj=30, Pt=5, f(i)·Ni=100, B=4 (Kim's NEST-JA
	// evaluated with merge joins; closest integer-B calibration).
	rows = append(rows, figure1Row{
		label:          "type-JA",
		paperNI:        3050,
		paperTransform: 615,
		modelNI:        costmodel.NestedIterationCost(50, 100, 30),
		modelTransform: costmodel.KimJACost(50, 30, 5, 4),
	})
	return rows
}

// expFigure1 reproduces Figure 1, "Page I/Os Required in Kim's Examples":
// analytically with the calibrated parameters, then measured end-to-end on
// synthetic data in the regime the paper targets (inner relation larger
// than the buffer pool).
func expFigure1() {
	fmt.Println("  Analytic (calibrated parameters; see EXPERIMENTS.md):")
	fmt.Printf("    %-8s %14s %14s %18s %18s\n",
		"query", "NI (paper)", "NI (model)", "transform (paper)", "transform (model)")
	for _, r := range figure1Analytic() {
		fmt.Printf("    %-8s %14.0f %14.0f %18.0f %18.0f\n",
			r.label, r.paperNI, r.modelNI, r.paperTransform, r.modelTransform)
	}

	fmt.Println("\n  Measured (engine, B = 8, RI: 400 tuples / 40 pages, RJ: 800 tuples / 80 pages):")
	cfg := workload.SyntheticConfig{
		Name:        "figure1-measured",
		OuterTuples: 400, InnerTuples: 800,
		OuterPerPage: 10, InnerPerPage: 10,
		JoinDomain: 80, Selectivity: 0.25, MatchFraction: 0.5,
		Seed: 1987,
	}
	queries := []struct {
		label string
		sql   string
	}{
		{"type-N", workload.TypeNQuery(cfg)},
		{"type-J", workload.TypeJQuery(cfg)},
		{"type-JA", workload.TypeJAQuery(cfg)},
	}
	fmt.Printf("    %-8s %16s %16s %10s\n", "query", "NI (measured)", "transform", "savings")
	for _, q := range queries {
		ni := measure(cfg, 8, q.sql, engine.NestedIteration, planner.Options{})
		tr := measure(cfg, 8, q.sql, engine.TransformJA2, planner.Options{})
		fmt.Printf("    %-8s %16d %16d %9.1f%%\n",
			q.label, ni, tr, 100*(1-float64(tr)/float64(ni)))
	}
}

// measure loads a fresh synthetic database and returns the query's total
// page I/Os under the strategy.
func measure(cfg workload.SyntheticConfig, b int, sql string, s engine.Strategy, popts planner.Options) int64 {
	db := engine.New(b)
	if err := workload.LoadSynthetic(&workload.DB{Cat: db.Catalog(), Store: db.Store()}, cfg); err != nil {
		panic(err)
	}
	res, err := db.Query(sql, govern(engine.Options{Strategy: s, Planner: popts}))
	if err != nil {
		panic(err)
	}
	return res.Stats.Total()
}

// expCost74 reproduces the section 7.4 example: the analytic totals for
// all four join-method combinations (the paper reports nested iteration =
// 3050 and the two-merge-join total "about 475"), and a measured rerun at
// the paper's exact scale (Pi=50, Pj=30, B=6, f(i)·Ni=100).
func expCost74() {
	p := costmodel.Section74Params
	t := p.Totals()
	fmt.Println("  Analytic (Pi=50 Pj=30 Pt2=7 Pt3=10 Pt4=8 Pt=5 B=6 f(i)Ni=100):")
	fmt.Printf("    nested iteration:            %7.0f   (paper: 3050)\n", p.NestedIteration())
	fmt.Printf("    NEST-JA2, merge + merge:     %7.1f   (paper: about 475)\n", t.MergeMerge)
	fmt.Printf("    NEST-JA2, merge + NL:        %7.1f\n", t.MergeNL)
	fmt.Printf("    NEST-JA2, NL + merge:        %7.1f\n", t.NLMerge)
	fmt.Printf("    NEST-JA2, NL + NL:           %7.1f\n", t.NLNL)
	fmt.Printf("    savings (two merge joins):   %6.1f%%\n", 100*(1-t.MergeMerge/p.NestedIteration()))

	// Measured at the paper's scale: Ni=500 tuples over Pi=50 pages,
	// Nj=300 over Pj=30, f(i)=0.2 so f(i)·Ni=100, B=6. The deterministic
	// FILT column makes the selectivity exact, so nested iteration costs
	// exactly Pi + 100·Pj = 3050 page reads.
	cfg := workload.SyntheticConfig{
		Name:        "cost74",
		OuterTuples: 500, InnerTuples: 300,
		OuterPerPage: 10, InnerPerPage: 10,
		JoinDomain: 350, Selectivity: 0.2, MatchFraction: 0.6,
		Seed: 74,
	}
	sql := workload.TypeJAMaxQuery(cfg)
	fmt.Println("\n  Measured (same scale, MAX aggregate, temp pages at 10 tuples/page):")
	ni := measure(cfg, 6, sql, engine.NestedIteration, planner.Options{})
	fmt.Printf("    nested iteration:            %7d\n", ni)
	combos := []struct {
		label       string
		temp, final planner.JoinMethod
	}{
		{"merge + merge", planner.JoinMerge, planner.JoinMerge},
		{"merge + NL   ", planner.JoinMerge, planner.JoinNL},
		{"NL + merge   ", planner.JoinNL, planner.JoinMerge},
		{"NL + NL      ", planner.JoinNL, planner.JoinNL},
	}
	best := int64(1 << 60)
	for _, c := range combos {
		got := measure(cfg, 6, sql, engine.TransformJA2,
			planner.Options{TempJoin: c.temp, FinalJoin: c.final, TempTuplesPerPage: 10})
		if got < best {
			best = got
		}
		fmt.Printf("    NEST-JA2, %s:      %7d\n", c.label, got)
	}
	fmt.Printf("    savings (best combination):  %6.1f%%\n", 100*(1-float64(best)/float64(ni)))
}

// expSweep substantiates the section 4 claim that the transformation saves
// 80%-95%: an analytic sweep over relation sizes and selectivities, plus
// measured spot checks.
func expSweep() {
	fmt.Println("  Analytic savings, NEST-JA2 best combination vs nested iteration:")
	fmt.Printf("    %8s %8s %8s %12s %12s %9s\n", "Pi", "Pj", "f(i)Ni", "NI", "transform", "savings")
	for _, pi := range []float64{50, 100, 200} {
		for _, pj := range []float64{30, 100, 300} {
			for _, fni := range []float64{50, 100, 500} {
				p := costmodel.JA2Params{
					Pi: pi, Pj: pj,
					Pt2: pi / 7, Pt3: pj / 3, Pt4: pj / 3, Pt: pi / 10,
					FNi: fni, Ni: pi * 10, Nt2: pi, B: 6,
				}
				ni := p.NestedIteration()
				tr := p.Totals().Best()
				fmt.Printf("    %8.0f %8.0f %8.0f %12.0f %12.0f %8.1f%%\n",
					pi, pj, fni, ni, tr, 100*(1-tr/ni))
			}
		}
	}

	fmt.Println("\n  Measured spot checks (B = 8):")
	fmt.Printf("    %-28s %12s %12s %9s\n", "workload", "NI", "transform", "savings")
	for _, cfg := range []workload.SyntheticConfig{
		{Name: "small (RJ 20 pages)", OuterTuples: 200, InnerTuples: 200,
			OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 50,
			Selectivity: 0.5, MatchFraction: 0.5, Seed: 1},
		{Name: "medium (RJ 100 pages)", OuterTuples: 500, InnerTuples: 1000,
			OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 100,
			Selectivity: 1.0, MatchFraction: 0.5, Seed: 2},
		{Name: "selective outer f=0.1", OuterTuples: 1000, InnerTuples: 1000,
			OuterPerPage: 10, InnerPerPage: 10, JoinDomain: 100,
			Selectivity: 0.1, MatchFraction: 0.5, Seed: 3},
	} {
		sql := workload.TypeJAQuery(cfg)
		ni := measure(cfg, 8, sql, engine.NestedIteration, planner.Options{})
		tr := measure(cfg, 8, sql, engine.TransformJA2, planner.Options{})
		fmt.Printf("    %-28s %12d %12d %8.1f%%\n",
			cfg.Name, ni, tr, 100*(1-float64(tr)/float64(ni)))
	}
}
