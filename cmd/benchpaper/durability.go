package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	nestedsql "repro"
	"repro/internal/client"
	"repro/internal/wire"
)

// The durability experiment (E13): what a commit costs with the
// write-ahead log off, on, and on with fsync — and how long recovery
// takes as a function of the WAL tail it must replay. A final row shows
// a checkpointed directory recovering from the snapshot alone, which is
// why the daemon folds its log into a snapshot at every clean shutdown.

// durableDB opens a database with durability rooted at dir, failing the
// experiment on error.
func durableDB(dir string, fsync bool) *nestedsql.DB {
	db := nestedsql.Open(nestedsql.WithBufferPages(64))
	if _, err := db.EnableDurability(dir, fsync); err != nil {
		fatalDur(err)
	}
	return db
}

// commitRate times n single-statement INSERT commits and returns the
// mean per-commit latency.
func commitRate(db *nestedsql.DB, n int) time.Duration {
	if _, err := db.Exec("CREATE TABLE DUR (K INT, V INT)"); err != nil {
		fatalDur(err)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO DUR VALUES (%d, %d)", i, i)); err != nil {
			fatalDur(err)
		}
	}
	return time.Since(start) / time.Duration(n)
}

func expDurability() {
	const commits = 2000

	fmt.Println("Commit overhead: mean latency of a 1-row INSERT commit")
	fmt.Printf("  %-28s %12s\n", "configuration", "per commit")

	mem := nestedsql.Open(nestedsql.WithBufferPages(64))
	fmt.Printf("  %-28s %12s\n", "in-memory (no WAL)", commitRate(mem, commits))

	dir, err := os.MkdirTemp("", "benchdur")
	if err != nil {
		fatalDur(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("  %-28s %12s\n", "WAL, no fsync", commitRate(durableDB(dir+"/nofsync", false), commits))
	// fsync pays a device flush per (group-committed) batch; a
	// sequential client sees every one, so far fewer iterations.
	fmt.Printf("  %-28s %12s\n", "WAL + fsync", commitRate(durableDB(dir+"/fsync", true), commits/10))

	fmt.Println()
	fmt.Println("Recovery time vs WAL length (no checkpoint: full replay)")
	fmt.Printf("  %-28s %12s %10s\n", "WAL contents", "recovery", "replayed")
	for _, n := range []int{500, 2000, 8000} {
		sub := fmt.Sprintf("%s/replay%d", dir, n)
		commitRate(durableDB(sub, false), n)
		start := time.Now()
		fresh := nestedsql.Open(nestedsql.WithBufferPages(64))
		info, err := fresh.EnableDurability(sub, false)
		if err != nil {
			fatalDur(err)
		}
		fmt.Printf("  %-28s %12s %10d\n",
			fmt.Sprintf("%d commit records", n+1), time.Since(start).Round(time.Microsecond), info.ReplayedRecords)
	}

	// The same 8000-commit state, checkpointed: recovery loads one
	// snapshot and replays nothing.
	sub := dir + "/replay8000"
	db := durableDB(sub, false)
	if err := db.Checkpoint(); err != nil {
		fatalDur(err)
	}
	start := time.Now()
	fresh := nestedsql.Open(nestedsql.WithBufferPages(64))
	info, err := fresh.EnableDurability(sub, false)
	if err != nil {
		fatalDur(err)
	}
	fmt.Printf("  %-28s %12s %10d\n",
		"checkpoint snapshot", time.Since(start).Round(time.Microsecond), info.ReplayedRecords)
}

// The serve-dml harness behind serve_smoke.sh phase 4: a sequential
// burst of acked single-row INSERTs into a well-known table, printing
// how many the server acknowledged before the connection died (the
// smoke script kills the daemon mid-burst). The companion verify mode
// re-reads the recovered table and requires a contiguous key prefix
// whose length is the acked count — plus at most the one statement
// that was in flight when the kill landed.

// expServeDML drives the burst: CREATE TABLE DURABLE, then INSERT keys
// 0,1,2,... sequentially until n are acked or the server goes away.
// The acked count (CREATE excluded) is printed as "serve-dml: acked N"
// and the exit is 0 either way; losing the server mid-burst is the
// expected outcome.
func expServeDML(addr string, n int) {
	conn, err := client.Dial(addr, 10*time.Second)
	if err != nil {
		fatalDur(fmt.Errorf("dial %s: %w", addr, err))
	}
	defer conn.Close()
	acked := 0
	report := func(how string) {
		fmt.Printf("serve-dml: acked %d (%s)\n", acked, how)
	}
	if _, err := conn.Collect("CREATE TABLE DURABLE (K INT, V INT)", client.Options{}); err != nil {
		report("server lost before CREATE was acked")
		return
	}
	for i := 0; i < n; i++ {
		res, err := conn.Collect(fmt.Sprintf("INSERT INTO DURABLE VALUES (%d, %d)", i, i), client.Options{})
		if err != nil {
			var remote *wire.RemoteError
			if errors.As(err, &remote) {
				// A served refusal is a hard failure here: phase 4 runs
				// without WAL faults, so the daemon should never refuse.
				fatalDur(fmt.Errorf("INSERT %d refused: %w", i, err))
			}
			report("server lost mid-burst")
			return
		}
		if res.Done.Rows != 1 {
			fatalDur(fmt.Errorf("INSERT %d acked %d rows, want 1", i, res.Done.Rows))
		}
		acked++
	}
	report("burst completed")
}

// expServeDMLVerify reads the recovered DURABLE table and checks it is
// exactly the acked prefix — keys 0..m-1 with acked <= m <= acked+1,
// the slack being the single INSERT that may have been in flight (sent,
// unanswered) when the daemon was killed.
func expServeDMLVerify(addr string, ackedArg int) {
	conn, err := client.Dial(addr, 10*time.Second)
	if err != nil {
		fatalDur(fmt.Errorf("dial %s: %w", addr, err))
	}
	defer conn.Close()
	res, err := conn.Collect("SELECT K FROM DURABLE", client.Options{})
	if err != nil {
		fatalDur(fmt.Errorf("read DURABLE: %w", err))
	}
	keys := make([]int64, 0, len(res.Rows))
	for _, row := range res.Rows {
		keys = append(keys, row[0].Int())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if k != int64(i) {
			fatalDur(fmt.Errorf("recovered keys are not a contiguous prefix: position %d holds %d", i, k))
		}
	}
	m := len(keys)
	if m < ackedArg || m > ackedArg+1 {
		fatalDur(fmt.Errorf("recovered %d rows; %d were acked (at most 1 in-flight allowed)", m, ackedArg))
	}
	extra := ""
	if m == ackedArg+1 {
		extra = " (+ the in-flight INSERT, which made it to the log)"
	}
	fmt.Printf("serve-dml: verified %d recovered rows = contiguous acked prefix%s\n", m, extra)
}

func fatalDur(err error) {
	fmt.Fprintln(os.Stderr, "durability:", err)
	os.Exit(1)
}
