package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/value"
	"repro/internal/workload"
)

// manualTemp is a hand-written temporary-table program step, used to build
// the deliberately-broken pipelines the paper walks through (applying a
// fix partially to show why each ingredient is needed).
type manualTemp struct {
	name string
	cols []schema.Column
	sql  string
}

// runManualPipeline resolves and executes a hand-written temp program plus
// final query through the planner.
func runManualPipeline(db *engine.DB, temps []manualTemp, finalSQL string, opts planner.Options) []storage.Tuple {
	res := &transform.Result{}
	var defined []string
	for _, mt := range temps {
		qb := sqlparser.MustParse(mt.sql)
		if _, err := schema.Resolve(db.Catalog(), qb); err != nil {
			panic(fmt.Sprintf("%s: %v", mt.name, err))
		}
		rel := &schema.Relation{Name: mt.name, Columns: mt.cols}
		res.Temps = append(res.Temps, transform.TempTable{Name: mt.name, Rel: rel, Def: qb})
		// Define for resolution of later steps; the planner re-defines
		// during execution.
		if err := db.Catalog().Define(rel); err != nil {
			panic(err)
		}
		defined = append(defined, mt.name)
	}
	final := sqlparser.MustParse(finalSQL)
	if _, err := schema.Resolve(db.Catalog(), final); err != nil {
		panic(err)
	}
	res.Query = final
	for _, name := range defined {
		db.Catalog().Drop(name)
	}
	rows, _, err := planner.New(db.Catalog(), db.Store(), opts).Run(res)
	if err != nil {
		panic(err)
	}
	return rows
}

// naiveOuterJoinRows is ablation A2 / the section 5.4 counterexample: the
// outer-join COUNT fix applied against the raw outer relation instead of
// its DISTINCT projection. Duplicate PARTS.PNUM values inflate the COUNT.
func naiveOuterJoinRows(db *engine.DB) []storage.Tuple {
	intCol := func(n string) schema.Column { return schema.Column{Name: n, Type: value.KindInt} }
	return runManualPipeline(db,
		[]manualTemp{
			{"NTEMP2", []schema.Column{intCol("PNUM"), {Name: "SHIPDATE", Type: value.KindDate}},
				"SELECT PNUM, SHIPDATE FROM SUPPLY WHERE SHIPDATE < 1-1-80"},
			{"NTEMP3", []schema.Column{intCol("PNUM"), intCol("CT")},
				`SELECT PARTS.PNUM, COUNT(NTEMP2.SHIPDATE) AS CT
				 FROM PARTS, NTEMP2
				 WHERE PARTS.PNUM =+ NTEMP2.PNUM
				 GROUP BY PARTS.PNUM`},
		},
		`SELECT PARTS.PNUM FROM PARTS, NTEMP3
		 WHERE PARTS.QOH = NTEMP3.CT AND PARTS.PNUM = NTEMP3.PNUM`,
		planner.Options{})
}

// expAblations isolates each ingredient of NEST-JA2 (DESIGN.md A1-A4).
func expAblations() {
	// ---- A1: inner join vs outer join in the temp table (the COUNT fix).
	fmt.Println("  A1 — outer join vs inner join in temp creation (Kiessling instance):")
	{
		db := newDB(8, workload.LoadKiessling)
		intCol := func(n string) schema.Column { return schema.Column{Name: n, Type: value.KindInt} }
		temps := []manualTemp{
			{"DTEMP", []schema.Column{intCol("PNUM")},
				"SELECT DISTINCT PNUM FROM PARTS"},
			{"ATEMP2", []schema.Column{intCol("PNUM"), {Name: "SHIPDATE", Type: value.KindDate}},
				"SELECT PNUM, SHIPDATE FROM SUPPLY WHERE SHIPDATE < 1-1-80"},
		}
		innerJoin := append(temps, manualTemp{
			"ATEMP3", []schema.Column{intCol("PNUM"), intCol("CT")},
			`SELECT DTEMP.PNUM, COUNT(ATEMP2.SHIPDATE) AS CT
			 FROM DTEMP, ATEMP2
			 WHERE DTEMP.PNUM = ATEMP2.PNUM
			 GROUP BY DTEMP.PNUM`})
		rows := runManualPipeline(db,
			innerJoin,
			`SELECT PARTS.PNUM FROM PARTS, ATEMP3
			 WHERE PARTS.QOH = ATEMP3.CT AND PARTS.PNUM = ATEMP3.PNUM`,
			planner.Options{})
		printRows("inner join (no =+): COUNT can never be 0, part 8 lost:", rows)
	}
	{
		db := newDB(8, workload.LoadKiessling)
		ja2 := runStrategy(db, workload.KiesslingQ2, engine.TransformJA2)
		printRows("outer join (NEST-JA2): correct {10, 8}:", ja2.Rows)
	}

	// ---- A2: with vs without the DISTINCT projection of the outer join
	// column, on the duplicates instance.
	fmt.Println("\n  A2 — DISTINCT projection of the outer join column (duplicates instance):")
	{
		db := newDB(8, workload.LoadDuplicates)
		naive := naiveOuterJoinRows(db)
		printRows("without projection: duplicates inflate COUNT, only {8} survives:", naive)
		ja2 := runStrategy(db, workload.KiesslingQ2, engine.TransformJA2)
		printRows("with projection (NEST-JA2): correct {3, 10, 8}:", ja2.Rows)
	}

	// ---- A3: restriction before vs after the outer join (section 5.2's
	// correctness note: "the condition which applies to only one relation
	// must be applied before the join is performed"). The planner always
	// restricts first, so the wrong order is built directly from physical
	// operators here.
	fmt.Println("\n  A3 — restricting the inner relation before vs after the outer join:")
	{
		db := newDB(8, workload.LoadKiessling)
		wrong := restrictionAfterOuterJoin(db)
		printRows("TEMP3 with restriction applied AFTER the outer join (group 8 lost):", wrong)
		_, tr, drop := transformKeepingTemps(db, workload.KiesslingQ2, transform.JA2)
		printTable(db, tr.Temps[2].Name)
		drop()
		fmt.Println("    (NEST-JA2 restricts into TEMP2 first; group 8 keeps COUNT = 0)")
	}

	// ---- A5 (beyond the paper, found by differential fuzzing): merging an
	// IN predicate inside a COUNT block changes the aggregate through join
	// multiplicity; the transformer refuses the merge unless the merged
	// column is a declared key.
	fmt.Println("\n  A5 — multiplicity guard for IN under COUNT/SUM/AVG (fuzzer-found):")
	{
		db := engine.New(8)
		if _, err := db.Exec(`
			CREATE TABLE RA (K INT, V INT);
			CREATE TABLE RC (K INT, V INT);
			INSERT INTO RA VALUES (4, 3);
			INSERT INTO RC VALUES (1, 2), (0, 2), (1, 2);
		`, engine.Options{}); err != nil {
			panic(err)
		}
		sql := `SELECT K, V FROM RA
		        WHERE V > (SELECT COUNT(*) FROM RC T2
		                   WHERE T2.K = 1 AND T2.V IN (SELECT T3.V FROM RC T3 WHERE T3.K < 2))`
		ni := runStrategy(db, sql, engine.NestedIteration)
		tr := runStrategy(db, sql, engine.TransformJA2)
		printRows("nested iteration (COUNT counts 2 rows; 3 > 2 qualifies):", ni.Rows)
		fmt.Printf("  transformation falls back rather than merge (fellback=%v):\n", tr.FellBack)
		printRows("  result (must agree):", tr.Rows)
		fmt.Println("    (a naive NEST-N-J merge would join-duplicate the counted rows,")
		fmt.Println("     COUNT would become 6, and the row would vanish)")
	}

	// ---- A4: the four join-method combinations of section 7.4, measured.
	fmt.Println("\n  A4 — join method combinations (measured page I/Os, synthetic workload):")
	cfg := workload.DefaultSynthetic()
	methods := []planner.JoinMethod{planner.JoinMerge, planner.JoinNL}
	for _, temp := range methods {
		for _, final := range methods {
			db := engine.New(8)
			if err := workload.LoadSynthetic(&workload.DB{Cat: db.Catalog(), Store: db.Store()}, cfg); err != nil {
				panic(err)
			}
			res, err := db.Query(workload.TypeJAQuery(cfg), govern(engine.Options{
				Strategy: engine.TransformJA2,
				Planner:  planner.Options{TempJoin: temp, FinalJoin: final},
			}))
			if err != nil {
				panic(err)
			}
			fmt.Printf("    temp=%-12s final=%-12s  %v (%d rows)\n",
				temp, final, res.Stats, len(res.Rows))
		}
	}
}
