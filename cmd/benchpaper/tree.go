package main

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/engine"
	"repro/internal/querygraph"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/transform"
	"repro/internal/workload"
)

// expTree demonstrates the recursive procedure nest_g of section 9.1 on a
// Figure-2-style query: the innermost block references a relation of the
// outermost block, the reference crosses the aggregate block in the
// middle, and the transformation must first merge the inner blocks
// (NEST-N-J) so the aggregate block inherits the "trans-aggregate" join
// predicate, at which point type-JA nesting becomes visible and NEST-JA2
// applies.
func expTree() {
	// A (over S) -> B (MAX over SP) -> C (over P, references S.CITY).
	sql := `
		SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P
		                              WHERE P.CITY = S.CITY))`
	db := newDB(8, workload.LoadSuppliers)

	qb := sqlparser.MustParse(sql)
	if _, err := schema.Resolve(db.Catalog(), qb); err != nil {
		panic(err)
	}
	fmt.Println("  Query tree (A -> B -> C, C references A's relation):")
	fmt.Println(indentLines(qb.Pretty(), "    "))
	fmt.Println("\n  Figure 2 — the query as a multi-way tree of query blocks:")
	fmt.Println(indentLines(querygraph.Build(qb).ASCII(), "    "))

	prof := classify.Profile(qb)
	fmt.Printf("\n  %d query blocks, nesting depth %d\n", prof.Blocks, prof.MaxDepth)
	fmt.Printf("  Outermost nested predicate classifies as %v:\n", prof.Types[0])
	fmt.Println("    the aggregate block's subtree references S.CITY — the join")
	fmt.Println("    predicate reference spans the query block containing the")
	fmt.Println("    aggregate function, so type-JA nesting is present (section 9.1).")

	tr, err := transform.New(db.Catalog(), transform.JA2).Transform(qb)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n  nest_g transformation steps (postorder):")
	for _, s := range tr.Steps {
		fmt.Printf("    %-14s %s\n", s.Rule+":", s.Detail)
	}
	fmt.Printf("\n  Canonical query: %s\n\n", tr.Query)

	ni := runStrategy(db, sql, engine.NestedIteration)
	printRows("Nested iteration result:", ni.Rows)
	ja2 := runStrategy(db, sql, engine.TransformJA2)
	printRows("Transformed result (must agree):", ja2.Rows)
}

func indentLines(s, prefix string) string {
	out := prefix
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += prefix
		}
	}
	return out
}

// expPredicates demonstrates the section 8 extensions: each EXISTS / NOT
// EXISTS / ANY / ALL predicate is rewritten into aggregate or IN form and
// then processed by the core algorithms; results are compared with nested
// iteration.
func expPredicates() {
	cases := []struct {
		label string
		sql   string
	}{
		{"EXISTS -> 0 < COUNT(*)", `
			SELECT PNUM FROM PARTS
			WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`},
		{"NOT EXISTS -> 0 = COUNT(*)", `
			SELECT PNUM FROM PARTS
			WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY
			                  WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`},
		{"< ANY -> < MAX", `
			SELECT PNUM FROM PARTS
			WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`},
		{"> ALL -> > MAX", `
			SELECT PNUM FROM PARTS
			WHERE QOH > ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`},
		{"= ANY -> IN", `
			SELECT PNUM FROM PARTS
			WHERE QOH = ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`},
	}
	for _, c := range cases {
		db := newDB(8, workload.LoadKiessling)
		fmt.Printf("  %s\n", c.label)
		ni := runStrategy(db, c.sql, engine.NestedIteration)
		ja2 := runStrategy(db, c.sql, engine.TransformJA2)
		agree := fmt.Sprint(ni.Rows) == fmt.Sprint(ja2.Rows)
		for _, t := range ja2.Trace {
			if len(t) >= 6 && t[:6] == "EXTEND" {
				fmt.Printf("    %s\n", t)
			}
		}
		fmt.Printf("    nested iteration: %v   transformed: %v   agree: %v\n\n",
			ni.Rows, ja2.Rows, agree)
	}
}
