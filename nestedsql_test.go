package nestedsql_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	nestedsql "repro"
	"repro/internal/qctx"
	"repro/internal/wire"
)

func kiesslingDB(t *testing.T) *nestedsql.DB {
	t.Helper()
	db := nestedsql.Open(nestedsql.WithBufferPages(8))
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		t.Fatal(err)
	}
	return db
}

const q2 = `
	SELECT PNUM FROM PARTS
	WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
	             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`

func firstCol(res *nestedsql.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = fmt.Sprint(r[0])
	}
	sort.Strings(out)
	return out
}

func TestPublicAPICountBug(t *testing.T) {
	db := kiesslingDB(t)
	ni, err := db.Query(q2, nestedsql.WithStrategy(nestedsql.StrategyNestedIteration))
	if err != nil {
		t.Fatal(err)
	}
	ja2, err := db.Query(q2) // default strategy is the transformation
	if err != nil {
		t.Fatal(err)
	}
	kim, err := db.Query(q2, nestedsql.WithStrategy(nestedsql.StrategyTransformKim))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(firstCol(ni), ","); got != "10,8" {
		t.Errorf("nested iteration = %v", got)
	}
	if got := strings.Join(firstCol(ja2), ","); got != "10,8" {
		t.Errorf("NEST-JA2 = %v", got)
	}
	if got := strings.Join(firstCol(kim), ","); got != "10" {
		t.Errorf("Kim NEST-JA = %v (the COUNT bug loses part 8)", got)
	}
	if ja2.FellBack {
		t.Error("unexpected fallback")
	}
	if ja2.PageIO.Total() <= 0 {
		t.Error("no I/O measured")
	}
	if len(ja2.Columns) != 1 || ja2.Columns[0] != "PNUM" {
		t.Errorf("columns = %v", ja2.Columns)
	}
}

func TestPublicAPICreateInsertQuery(t *testing.T) {
	db := nestedsql.Open()
	if err := db.CreateTable("EMP", []nestedsql.Column{
		{Name: "ID", Type: nestedsql.Int},
		{Name: "NAME", Type: nestedsql.String},
		{Name: "SAL", Type: nestedsql.Float},
		{Name: "HIRED", Type: nestedsql.Date},
	}, 0, "ID"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("EMP",
		[]any{1, "ada", 10.5, "1-1-80"},
		[]any{2, "bob", 9.0, "1979-06-01"},
		[]any{int64(3), "cyd", nil, nil},
	); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT NAME FROM EMP WHERE HIRED < 1-1-80")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
	// NULL round-trips as nil.
	res, err = db.Query("SELECT SAL FROM EMP WHERE ID = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != nil {
		t.Errorf("NULL came back as %v", res.Rows[0][0])
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := nestedsql.Open()
	if err := db.Insert("NOPE", []any{1}); err == nil {
		t.Error("insert into unknown table")
	}
	if err := db.CreateTable("T", []nestedsql.Column{{Name: "X", Type: nestedsql.Int}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("T", []any{1, 2}); err == nil {
		t.Error("arity mismatch")
	}
	if err := db.Insert("T", []any{struct{}{}}); err == nil {
		t.Error("unsupported Go type")
	}
	if err := db.Insert("T", []any{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM T"); err == nil {
		t.Error("star select is not in the dialect")
	}
	if err := db.LoadFixture(nestedsql.Fixture(99)); err == nil {
		t.Error("unknown fixture")
	}
}

func TestPublicAPIForcedJoins(t *testing.T) {
	db := kiesslingDB(t)
	for _, temp := range []nestedsql.JoinChoice{nestedsql.JoinAuto, nestedsql.JoinMerge, nestedsql.JoinNestedLoops} {
		for _, final := range []nestedsql.JoinChoice{nestedsql.JoinAuto, nestedsql.JoinMerge, nestedsql.JoinNestedLoops} {
			res, err := db.Query(q2, nestedsql.WithForcedJoins(temp, final))
			if err != nil {
				t.Fatalf("temp=%v final=%v: %v", temp, final, err)
			}
			if got := strings.Join(firstCol(res), ","); got != "10,8" {
				t.Errorf("temp=%v final=%v rows = %v", temp, final, got)
			}
		}
	}
}

func TestPublicAPIFallbackControls(t *testing.T) {
	db := nestedsql.Open()
	if err := db.LoadFixture(nestedsql.FixtureSuppliers); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT SNAME FROM S WHERE STATUS > 100 OR SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')"
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Error("expected fallback for a subquery under OR")
	}
	if _, err := db.Query(sql, nestedsql.WithoutFallback()); err == nil {
		t.Error("WithoutFallback must error")
	}
}

func TestPublicAPIExplain(t *testing.T) {
	db := kiesslingDB(t)
	rep, err := db.Explain(q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"type-JA", "NEST-JA2", "Measured cost"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("Explain missing %q", frag)
		}
	}
}

func TestPublicAPIAllFixtures(t *testing.T) {
	for _, f := range []nestedsql.Fixture{
		nestedsql.FixtureKiessling, nestedsql.FixtureNonEquality,
		nestedsql.FixtureDuplicates, nestedsql.FixtureSuppliers,
	} {
		db := nestedsql.Open()
		if err := db.LoadFixture(f); err != nil {
			t.Errorf("fixture %d: %v", f, err)
		}
	}
}

func ExampleDB_Query() {
	db := nestedsql.Open(nestedsql.WithBufferPages(8))
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		panic(err)
	}
	res, err := db.Query(`
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// 10
	// 8
}

func TestPublicAPIExecScript(t *testing.T) {
	db := nestedsql.Open()
	res, err := db.Exec(`
		CREATE TABLE T (K INTEGER, V INTEGER, PRIMARY KEY (K));
		INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
		UPDATE T SET V = 99 WHERE K = 2;
		DELETE FROM T WHERE V = 30;
		SELECT K, V FROM T ORDER BY K;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1][1] != int64(99) {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Affected != 5 { // 3 inserted + 1 updated + 1 deleted
		t.Errorf("Affected = %d, want 5", res.Affected)
	}
	// DDL-only scripts return a bare result without rows.
	res, err = db.Exec("CREATE TABLE U (X INTEGER)")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Rows) != 0 || res.Affected != 0 {
		t.Errorf("DDL-only Exec returned %+v", res)
	}
	if _, err := db.Exec("GARBAGE"); err == nil {
		t.Error("bad script accepted")
	}
}

func TestPublicAPISaveRestoreAnalyzeIndex(t *testing.T) {
	db := kiesslingDB(t)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("SUPPLY", "PNUM"); err != nil {
		t.Fatal(err)
	}
	// Save/Restore through the public API.
	f := &strings.Builder{}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	restored, err := nestedsql.Restore(strings.NewReader(f.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(firstCol(res), ","); got != "10,8" {
		t.Errorf("restored rows = %v", got)
	}
}

func TestRetryAfterHelper(t *testing.T) {
	// A local overload carries the gateway's hint; the helper surfaces
	// it for any error that wraps one, and stays quiet otherwise.
	ov := &qctx.OverloadError{Reason: "queue full", RetryAfter: 75 * time.Millisecond}
	wrapped := fmt.Errorf("query failed: %w", ov)
	if d, ok := nestedsql.RetryAfter(wrapped); !ok || d != 75*time.Millisecond {
		t.Errorf("RetryAfter(wrapped overload) = %v, %v", d, ok)
	}
	if _, ok := nestedsql.RetryAfter(errors.New("boring")); ok {
		t.Error("RetryAfter matched a non-overload error")
	}
	if _, ok := nestedsql.RetryAfter(nestedsql.ErrOverloaded); ok {
		t.Error("RetryAfter matched the bare sentinel (no hint to give)")
	}
	// The wire client reconstructs the same concrete type, so a remote
	// shed answers the helper identically.
	remote := &wire.RemoteError{Frame: wire.ErrorFrame{
		Code: wire.CodeOverloaded, RetryAfter: 20 * time.Millisecond, Message: "shed",
	}}
	if d, ok := nestedsql.RetryAfter(remote); !ok || d != 20*time.Millisecond {
		t.Errorf("RetryAfter(remote overload) = %v, %v", d, ok)
	}
}
