// Package nestedsql is a reproduction of "Optimization of Nested SQL
// Queries Revisited" (Ganski & Wong, SIGMOD 1987) as a usable library: an
// embedded relational engine whose query processor implements the paper's
// nested-query transformation algorithms — Kim's NEST-N-J, the corrected
// NEST-JA2, the EXISTS/ANY/ALL extensions, and the recursive general
// procedure — next to the System R nested-iteration baseline, over a paged
// storage layer that measures the paper's cost metric (page I/Os).
//
// Quick start:
//
//	db := nestedsql.Open(nestedsql.WithBufferPages(8))
//	db.LoadFixture(nestedsql.FixtureKiessling)
//	res, _ := db.Query(`
//	    SELECT PNUM FROM PARTS
//	    WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
//	                 WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`,
//	    nestedsql.WithStrategy(nestedsql.StrategyTransform))
//	fmt.Println(res.Rows, res.PageIO)
//
// The same query run with StrategyNestedIteration gives the semantic
// ground truth; StrategyTransformKim reproduces the paper's COUNT and
// non-equality bugs on purpose.
package nestedsql

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/spill"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Typed lifecycle errors, for errors.Is against failures of governed
// queries (see WithTimeout, WithMaxRows, WithMemoryBudget, WithCancel).
var (
	// ErrQueryTimeout reports a query that ran past WithTimeout.
	ErrQueryTimeout = qctx.ErrQueryTimeout
	// ErrCanceled reports a query stopped via WithCancel.
	ErrCanceled = qctx.ErrCanceled
	// ErrBudgetExceeded is the common ancestor of the budget errors.
	ErrBudgetExceeded = qctx.ErrBudgetExceeded
	// ErrRowBudget reports a query that produced more rows than WithMaxRows.
	ErrRowBudget = qctx.ErrRowBudget
	// ErrMemoryBudget reports a query that buffered more than WithMemoryBudget.
	ErrMemoryBudget = qctx.ErrMemoryBudget
	// ErrOverloaded reports a query shed by the admission gateway (full
	// queue, or a draining database — see WithAdmissionControl). The
	// concrete error carries a retry-after hint.
	ErrOverloaded = qctx.ErrOverloaded
	// ErrCircuitOpen reports a query that demanded a parallel plan while
	// the parallel path is circuit-broken after repeated worker faults.
	ErrCircuitOpen = qctx.ErrCircuitOpen
	// ErrSpillCorrupt reports a spill run file that failed its checksum
	// or framing on read-back (see WithSpill): the query fails typed —
	// never returns wrong rows — and its spill files are removed.
	ErrSpillCorrupt = qctx.ErrSpillCorrupt
	// ErrWALBroken reports DML refused because a write-ahead log append
	// failed (see EnableDurability): the in-memory state is ahead of the
	// log, so writes stay poisoned until Checkpoint re-establishes the
	// durable image.
	ErrWALBroken = wal.ErrBroken
)

// RetryAfter extracts the admission gateway's retry-after hint from an
// overload error (local or received over the wire — the network client
// reconstructs the same concrete error). It reports false for every
// other error, including overloads without a hint.
func RetryAfter(err error) (time.Duration, bool) {
	var ov *qctx.OverloadError
	if errors.As(err, &ov) && ov.RetryAfter > 0 {
		return ov.RetryAfter, true
	}
	return 0, false
}

// Type is a column type.
type Type uint8

// The supported column types.
const (
	Int Type = iota
	Float
	String
	Date
)

func (t Type) kind() value.Kind {
	switch t {
	case Int:
		return value.KindInt
	case Float:
		return value.KindFloat
	case String:
		return value.KindString
	case Date:
		return value.KindDate
	default:
		return value.KindNull
	}
}

// Column declares one column of a table.
type Column struct {
	Name string
	Type Type
}

// Strategy selects the query evaluation method.
type Strategy uint8

// The strategies of the reproduction.
const (
	// StrategyNestedIteration evaluates nested predicates tuple by tuple,
	// as System R did — the paper's baseline and ground truth.
	StrategyNestedIteration Strategy = iota
	// StrategyTransform applies the paper's algorithms (NEST-N-J +
	// NEST-JA2 via the recursive procedure) and runs the canonical form
	// with cost-chosen joins, falling back to nested iteration for
	// queries outside the algorithms' scope. This is the default.
	StrategyTransform
	// StrategyTransformKim uses Kim's original NEST-JA, reproducing the
	// COUNT bug and the non-equality bug the paper corrects.
	StrategyTransformKim
)

// JoinChoice forces a join method in transformed plans (for the section
// 7.4 experiments).
type JoinChoice uint8

// The join choices.
const (
	JoinAuto JoinChoice = iota
	JoinMerge
	JoinNestedLoops
)

func (j JoinChoice) planner() planner.JoinMethod {
	switch j {
	case JoinMerge:
		return planner.JoinMerge
	case JoinNestedLoops:
		return planner.JoinNL
	default:
		return planner.JoinAuto
	}
}

// DB is an embedded database instance.
type DB struct {
	eng *engine.DB
}

// Option configures Open.
type Option func(*config)

type config struct {
	bufferPages    int
	admission      *AdmissionConfig
	spillDir       string
	spillThreshold int64
}

// WithBufferPages sets the buffer pool size in pages — the paper's B.
// The default is 32.
func WithBufferPages(n int) Option {
	return func(c *config) { c.bufferPages = n }
}

// AdmissionConfig sizes the concurrency gateway; see WithAdmissionControl.
// Zero fields pick the gateway's defaults (unlimited concurrency, no
// queue, no memory pool).
type AdmissionConfig struct {
	// MaxConcurrent bounds how many queries run at once; 0 = unlimited.
	MaxConcurrent int
	// QueueDepth bounds how many queries may wait behind the running
	// ones. The wait counts against each query's WithTimeout; arrivals
	// beyond the depth fail immediately with ErrOverloaded.
	QueueDepth int
	// MemPool is a global memory budget (bytes) leased out per query:
	// concurrent queries share it and are degraded or queued rather than
	// ever overcommitting it. 0 disables pooling.
	MemPool int64
	// RetryMax bounds automatic retries of transiently-failed queries
	// (injected storage faults); 0 disables.
	RetryMax int
}

// WithSpill enables spill-to-disk execution rooted at dir: a query that
// cannot keep its hash builds and sort runs within WithMemoryBudget
// writes checksummed run files under dir and completes (slower but
// correct) instead of failing with ErrMemoryBudget. Spill files are
// namespaced per query and always removed when the query ends —
// success, error, cancel, or panic. Open panics if dir cannot be
// created; use DB.EnableSpill to handle the error instead.
func WithSpill(dir string) Option {
	return func(c *config) { c.spillDir = dir }
}

// WithSpillThreshold makes queries start spilling once they buffer more
// than n bytes even while under their memory budget (or unbudgeted),
// bounding the engine's in-memory working set per query. It has no
// effect without WithSpill.
func WithSpillThreshold(n int64) Option {
	return func(c *config) { c.spillThreshold = n }
}

// WithAdmissionControl turns on the concurrency gateway: every Query
// first acquires an admission slot (bounded concurrency, bounded FIFO
// queue, memory-pool lease), overload is shed with ErrOverloaded, and
// repeated parallel-worker faults trip a circuit breaker that degrades
// parallel plans to sequential for a cooldown. Required before serving
// concurrent traffic with bounded resources; single-caller use works
// without it.
func WithAdmissionControl(cfg AdmissionConfig) Option {
	return func(c *config) { c.admission = &cfg }
}

// Open creates an empty in-memory database.
func Open(opts ...Option) *DB {
	cfg := config{bufferPages: 32}
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{eng: engine.New(cfg.bufferPages)}
	if cfg.admission != nil {
		db.eng.EnableAdmission(admission.Config{
			MaxConcurrent: cfg.admission.MaxConcurrent,
			QueueDepth:    cfg.admission.QueueDepth,
			PoolBytes:     cfg.admission.MemPool,
			RetryMax:      cfg.admission.RetryMax,
		})
	}
	if cfg.spillDir != "" {
		if err := db.eng.EnableSpill(cfg.spillDir, cfg.spillThreshold); err != nil {
			panic(fmt.Sprintf("nestedsql: WithSpill: %v", err))
		}
	}
	return db
}

// EnableSpill is WithSpill + WithSpillThreshold after Open, with an
// error return instead of a panic when dir cannot be created.
func (db *DB) EnableSpill(dir string, threshold int64) error {
	return db.eng.EnableSpill(dir, threshold)
}

// EnableDurability opens a write-ahead log under dir, recovering any
// prior state (newest valid snapshot plus WAL tail replay, truncating a
// torn tail). Call it on a fresh database before loading data; after it
// returns, every DDL and DML statement is acknowledged only once its
// commit record is durable, and Checkpoint writes atomic snapshots that
// retire the log. With fsync false, records reach the OS page cache on
// ack — surviving process crashes, not host power loss.
func (db *DB) EnableDurability(dir string, fsync bool) (RecoveryInfo, error) {
	return db.eng.EnableDurability(dir, wal.Options{Fsync: fsync})
}

// Checkpoint writes an atomic snapshot of the database and retires the
// write-ahead log. A no-op without EnableDurability.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// RecoveryInfo reports what EnableDurability reconstructed on boot.
type RecoveryInfo = engine.RecoveryInfo

// RecoveryInfo reports what the last EnableDurability reconstructed.
func (db *DB) RecoveryInfo() RecoveryInfo { return db.eng.RecoveryInfo() }

// WALStats is a snapshot of write-ahead-log activity: live segments and
// bytes, appends, group-commit syncs, checkpoints, and whether the log
// is poisoned.
type WALStats = wal.Stats

// WALStats reports cumulative write-ahead-log activity; ok is false
// without EnableDurability.
func (db *DB) WALStats() (WALStats, bool) { return db.eng.WALStats() }

// SpillStats counts spill activity: run files written and payload bytes
// in them.
type SpillStats = spill.Stats

// SpillStats reports cumulative spill activity across all queries (zero
// without WithSpill).
func (db *DB) SpillStats() SpillStats { return db.eng.SpillStats() }

// AdmissionStats is a snapshot of the gateway's counters: queries
// running, queued, admitted, shed; memory-pool usage and peak; transient
// retries; and the parallel circuit breaker's state.
type AdmissionStats = admission.Stats

// AdmissionStats snapshots the gateway counters. The zero value is
// returned when WithAdmissionControl was not used.
func (db *DB) AdmissionStats() AdmissionStats {
	if c := db.eng.Admission(); c != nil {
		return c.Stats()
	}
	return AdmissionStats{}
}

// Drain gracefully stops query traffic: new queries are shed with
// ErrOverloaded, in-flight queries get until the deadline to finish, and
// stragglers are then canceled with ErrCanceled. After a drain the
// database still answers nothing until Resume. A no-op without
// WithAdmissionControl.
func (db *DB) Drain(timeout time.Duration) error { return db.eng.Drain(timeout) }

// Resume re-opens admission after a Drain.
func (db *DB) Resume() {
	if c := db.eng.Admission(); c != nil {
		c.Resume()
	}
}

// CreateTable defines a table. tuplesPerPage controls the stored page
// capacity (0 uses the default); experiments use it to set relation page
// counts precisely.
func (db *DB) CreateTable(name string, cols []Column, tuplesPerPage int, key ...string) error {
	rel := &schema.Relation{Name: name, Key: key}
	for _, c := range cols {
		rel.Columns = append(rel.Columns, schema.Column{Name: c.Name, Type: c.Type.kind()})
	}
	return db.eng.CreateRelation(rel, tuplesPerPage)
}

// Insert appends rows of Go values. Accepted element types: nil (NULL),
// int, int64, float64, string, and date strings for DATE columns (M-D-YY,
// M/D/YY, or ISO).
func (db *DB) Insert(table string, rows ...[]any) error {
	rel, ok := db.eng.Catalog().Lookup(table)
	if !ok {
		return fmt.Errorf("nestedsql: unknown table %s", table)
	}
	for _, row := range rows {
		if len(row) != len(rel.Columns) {
			return fmt.Errorf("nestedsql: row has %d values, table %s has %d columns",
				len(row), table, len(rel.Columns))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			cv, err := convertValue(v, rel.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("nestedsql: column %s: %w", rel.Columns[i].Name, err)
			}
			t[i] = cv
		}
		if err := db.eng.Insert(table, t); err != nil {
			return err
		}
	}
	return db.eng.Seal(table)
}

func convertValue(v any, want value.Kind) (value.Value, error) {
	switch v := v.(type) {
	case nil:
		return value.Null, nil
	case int:
		return value.NewInt(int64(v)), nil
	case int64:
		return value.NewInt(v), nil
	case float64:
		return value.NewFloat(v), nil
	case string:
		if want == value.KindDate {
			d, err := value.ParseDate(v)
			if err != nil {
				return value.Null, err
			}
			return value.NewDateValue(d), nil
		}
		return value.NewString(v), nil
	default:
		return value.Null, fmt.Errorf("unsupported Go value %T", v)
	}
}

// QueryOption configures a single query.
type QueryOption func(*engine.Options)

// WithStrategy selects the evaluation strategy (default StrategyTransform).
func WithStrategy(s Strategy) QueryOption {
	return func(o *engine.Options) {
		switch s {
		case StrategyNestedIteration:
			o.Strategy = engine.NestedIteration
		case StrategyTransformKim:
			o.Strategy = engine.TransformKim
		default:
			o.Strategy = engine.TransformJA2
		}
	}
}

// WithForcedJoins forces the join methods used for temporary-table
// creation and for the final query, reproducing the four section 7.4
// combinations.
func WithForcedJoins(temp, final JoinChoice) QueryOption {
	return func(o *engine.Options) {
		o.Planner.TempJoin = temp.planner()
		o.Planner.FinalJoin = final.planner()
	}
}

// WithoutFallback makes a non-transformable query an error instead of
// silently using nested iteration.
func WithoutFallback() QueryOption {
	return func(o *engine.Options) { o.NoFallback = true }
}

// WithParallelism enables the morsel-driven parallel operators for
// transformed plans: n > 1 uses n worker goroutines, n < 0 uses one per
// CPU, and 0 or 1 keeps plans sequential (the default). Small inputs stay
// sequential under the cost model's gate regardless.
func WithParallelism(n int) QueryOption {
	return func(o *engine.Options) { o.Planner.Parallelism = n }
}

// WithParallelVerify runs the differential oracle on every parallel query:
// the parallel result must be bag-equal to the sequential plan's result
// and, for NEST-JA2, set-equal to nested iteration's. A disagreement makes
// the query fail. It has no effect without WithParallelism.
func WithParallelVerify() QueryOption {
	return func(o *engine.Options) { o.VerifyParallel = true }
}

// WithTimeout bounds the query's wall-clock execution; exceeding it fails
// the query with ErrQueryTimeout. Zero means no limit (the default).
func WithTimeout(d time.Duration) QueryOption {
	return func(o *engine.Options) { o.Timeout = d }
}

// WithMaxRows bounds the number of result rows; a query producing more
// fails with ErrRowBudget within one row of the limit.
func WithMaxRows(n int64) QueryOption {
	return func(o *engine.Options) { o.MaxRows = n }
}

// WithMemoryBudget bounds the bytes a query may buffer at once in hash
// builds and sort runs; exceeding it fails the query with ErrMemoryBudget
// (a cost-gated parallel plan is retried sequentially once first).
func WithMemoryBudget(n int64) QueryOption {
	return func(o *engine.Options) { o.MaxBytes = n }
}

// SpillPolicy selects how one query responds to memory pressure when
// the database was opened WithSpill; see WithSpillPolicy.
type SpillPolicy = qctx.SpillPolicy

// The spill policies.
const (
	// SpillAuto (the default with WithSpill) spills when buffering would
	// cross the memory budget or the spill threshold.
	SpillAuto = qctx.SpillAuto
	// SpillOff restores the pre-spill behavior for one query: exceeding
	// the memory budget fails with ErrMemoryBudget.
	SpillOff = qctx.SpillOff
	// SpillForced routes every buffering operator through spill runs
	// regardless of budget — for tests and chaos suites.
	SpillForced = qctx.SpillForced
)

// WithSpillPolicy overrides the query's spill policy. Without WithSpill
// every policy degrades to SpillOff — there is nowhere to write runs.
func WithSpillPolicy(p SpillPolicy) QueryOption {
	return func(o *engine.Options) { o.Spill = p }
}

// WithCancel cancels the query with ErrCanceled as soon as ch is closed —
// wire it to a signal handler for Ctrl-C, or close it from another
// goroutine. Cancellation is cooperative and takes effect within one
// morsel of work.
func WithCancel(ch <-chan struct{}) QueryOption {
	return func(o *engine.Options) { o.Cancel = ch }
}

// PageIO is the paper's cost metric for one query.
type PageIO struct {
	Reads  int64
	Writes int64
}

// Total is reads plus writes.
func (p PageIO) Total() int64 { return p.Reads + p.Writes }

// String renders the counters.
func (p PageIO) String() string {
	return fmt.Sprintf("%d page I/Os (%d reads + %d writes)", p.Total(), p.Reads, p.Writes)
}

// Result is a completed query.
type Result struct {
	Columns  []string
	Rows     [][]any
	PageIO   PageIO
	Spill    SpillStats // spill runs/bytes this query wrote (see WithSpill)
	FellBack bool       // transformation fell back to nested iteration
	Affected int64      // rows inserted/updated/deleted by Exec DML
	Trace    []string   // transformation steps and plan decisions
}

// Query executes one SQL statement. The default strategy is
// StrategyTransform.
func (db *DB) Query(sql string, opts ...QueryOption) (*Result, error) {
	eopts := engine.Options{Strategy: engine.TransformJA2}
	for _, o := range opts {
		o(&eopts)
	}
	res, err := db.eng.Query(sql, eopts)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Columns:  res.Columns,
		PageIO:   PageIO{Reads: res.Stats.Reads, Writes: res.Stats.Writes},
		Spill:    res.Spill,
		FellBack: res.FellBack,
		Trace:    res.Trace,
	}
	for _, row := range res.Rows {
		converted := make([]any, len(row))
		for i, v := range row {
			converted[i] = goValue(v)
		}
		out.Rows = append(out.Rows, converted)
	}
	return out, nil
}

func goValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindDate:
		return v.DateOf().String()
	default:
		return v.String()
	}
}

// Exec runs a script of semicolon-separated statements — CREATE TABLE,
// INSERT INTO, UPDATE, DELETE, and SELECT — returning the result of the
// last SELECT, with Affected counting every DML statement's rows. A
// script without a SELECT returns a bare result carrying only Affected:
//
//	db.Exec(`
//	    CREATE TABLE T (X INTEGER, D DATE, PRIMARY KEY (X));
//	    INSERT INTO T VALUES (1, 7-3-79), (2, NULL);
//	    SELECT X FROM T WHERE D < 1-1-80;`)
func (db *DB) Exec(script string, opts ...QueryOption) (*Result, error) {
	eopts := engine.Options{Strategy: engine.TransformJA2}
	for _, o := range opts {
		o(&eopts)
	}
	res, err := db.eng.Exec(script, eopts)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Columns:  res.Columns,
		PageIO:   PageIO{Reads: res.Stats.Reads, Writes: res.Stats.Writes},
		Spill:    res.Spill,
		FellBack: res.FellBack,
		Affected: res.Affected,
		Trace:    res.Trace,
	}
	for _, row := range res.Rows {
		converted := make([]any, len(row))
		for i, v := range row {
			converted[i] = goValue(v)
		}
		out.Rows = append(out.Rows, converted)
	}
	return out, nil
}

// Explain returns a report of the classification, transformation steps,
// plan decisions, and measured cost of the query under the given options.
func (db *DB) Explain(sql string, opts ...QueryOption) (string, error) {
	eopts := engine.Options{Strategy: engine.TransformJA2}
	for _, o := range opts {
		o(&eopts)
	}
	return db.eng.Explain(sql, eopts)
}

// Fixture names a bundled dataset from the paper.
type Fixture uint8

// The bundled fixtures.
const (
	// FixtureKiessling is the PARTS/SUPPLY instance of [KIE 84] used in
	// section 5.1 (the COUNT bug).
	FixtureKiessling Fixture = iota
	// FixtureNonEquality is the section 5.3 instance (the "<" bug).
	FixtureNonEquality
	// FixtureDuplicates is the section 5.4 instance (duplicate outer
	// join-column values).
	FixtureDuplicates
	// FixtureSuppliers is the S/P/SP database of the introduction.
	FixtureSuppliers
)

// LoadFixture loads one of the paper's example databases.
func (db *DB) LoadFixture(f Fixture) error {
	w := &workload.DB{Cat: db.eng.Catalog(), Store: db.eng.Store()}
	switch f {
	case FixtureKiessling:
		return workload.LoadKiessling(w)
	case FixtureNonEquality:
		return workload.LoadNonEquality(w)
	case FixtureDuplicates:
		return workload.LoadDuplicates(w)
	case FixtureSuppliers:
		return workload.LoadSuppliers(w)
	default:
		return fmt.Errorf("nestedsql: unknown fixture %d", f)
	}
}

// Save writes a snapshot of the database (catalog, keys, rows, page
// shapes, buffer size) to w; Restore rebuilds it. Snapshots are
// self-contained binary images (gob encoded).
func (db *DB) Save(w io.Writer) error { return db.eng.Save(w) }

// Restore reads a snapshot written by Save into a new database.
func Restore(r io.Reader) (*DB, error) {
	eng, err := engine.Restore(r)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// CreateIndex builds a secondary index on table.column. The planner then
// considers an index scan for selective restrictions on that column.
// Indexes are snapshots: inserting into the table drops them.
func (db *DB) CreateIndex(table, column string) error {
	return db.eng.CreateIndex(table, column)
}

// Analyze collects System R-style statistics (page and tuple counts,
// distinct values per column) over every table; subsequent transformed
// queries use them for selectivity-aware join choices. Run after bulk
// loading.
func (db *DB) Analyze() error { return db.eng.Analyze() }

// ResetIOStats zeroes the database's cumulative page-I/O counters (query
// results already report per-query deltas; this is for custom harnesses
// that read the store directly).
func (db *DB) ResetIOStats() { db.eng.Store().ResetStats() }

// Internal exposes the underlying engine for the experiment harness and
// tests in this module. It is not part of the stable API.
func (db *DB) Internal() *engine.DB { return db.eng }
