#!/bin/sh
# Serving smoke gate. Two phases:
#
#  1. Boot nestedsqld on a random port with admission bounded below the
#     client count, stream the paper workload through the Go client from
#     8 concurrent connections (benchpaper -serve-load), and diff every
#     streamed result byte-for-byte against the in-process sequential
#     oracle. Overload sheds must come back as typed Error frames whose
#     retry-after hint the harness obeys. Then SIGTERM the idle server
#     and require exit 0.
#
#  2. Boot a fresh server, put the load harness on it, and SIGTERM the
#     server MID-RUN: the drain must let in-flight streams finish and
#     the server must still exit 0. The harness's own status is ignored
#     here (its later queries race the shutdown by design).
#
#  3. Kill the CLIENT mid-stream (SIGKILL, no goodbye): the server must
#     notice the dead peer, release its admission slot, keep serving a
#     fresh client cleanly, and still exit 0 on SIGTERM.
#
#  4. Kill the SERVER (kill -9, no drain) mid-DML-burst with durability
#     on: a restart against the same -data-dir must recover exactly the
#     contiguous prefix of acked INSERTs — at most one in-flight
#     statement beyond the last ack, never a ghost or a gap — and the
#     recovered server must then shut down cleanly.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${srv_pid:-}" ] && kill "$srv_pid" 2>/dev/null || true
    [ -n "${load_pid:-}" ] && kill "$load_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> building nestedsqld and benchpaper"
go build -o "$tmp/nestedsqld" ./cmd/nestedsqld
go build -o "$tmp/benchpaper" ./cmd/benchpaper

# wait_addr LOGFILE: poll for the "listening on" line and print the addr.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*listening on //p' "$1" | head -n 1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        i=$((i + 1))
        sleep 0.05
    done
    echo "serve-smoke: server never reported its address" >&2
    cat "$1" >&2
    return 1
}

echo "==> phase 1: full workload, 8 connections, oracle diff"
# Admission bounded below the client count: any overload sheds must come
# back as typed Error frames, and the harness retries them after the
# server's hint. (On small machines CPU-bound queries may serialize and
# never saturate the gateway; the deterministic shed-with-retry-after
# coverage is TestServeOverloadCarriesRetryAfter in internal/server.)
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture both \
    -max-concurrent 2 -queue-depth 0 2>"$tmp/serve1.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve1.log")

"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 8 -rounds 3

kill -TERM "$srv_pid"
wait "$srv_pid"   # set -e: a non-zero server exit fails the gate
srv_pid=""
echo "==> phase 1 ok (server exited 0 after SIGTERM)"

echo "==> phase 2: SIGTERM with in-flight streaming queries"
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture both \
    -max-concurrent 4 -queue-depth 2 2>"$tmp/serve2.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve2.log")

"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 8 -rounds 200 \
    >"$tmp/load2.log" 2>&1 &
load_pid=$!
sleep 1   # let the storm get going
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
wait "$load_pid" 2>/dev/null || true   # the harness loses its server mid-run; that's the point
load_pid=""
echo "==> phase 2 ok (mid-run SIGTERM drained and exited 0)"

echo "==> phase 3: SIGKILL the client mid-stream, server must survive"
# Tight write deadline and fast heartbeats so the dead peer is noticed
# quickly; the killed harness never closes its socket, so eviction (or
# the kernel RST) is the only way its query's slot comes back.
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture both \
    -max-concurrent 2 -queue-depth 2 \
    -write-deadline 2s -heartbeat 500ms 2>"$tmp/serve3.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve3.log")

"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 4 -rounds 200 \
    >"$tmp/load3.log" 2>&1 &
load_pid=$!
sleep 1   # let streams get in flight
kill -9 "$load_pid" 2>/dev/null || true
wait "$load_pid" 2>/dev/null || true
load_pid=""

# The server must still serve a fresh, well-behaved client end to end —
# the dead connections' slots must come back (max-concurrent is 2, so a
# leaked slot pair would wedge this run).
"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 2 -rounds 2

kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
echo "==> phase 3 ok (client SIGKILL absorbed; server served on and exited 0)"

echo "==> phase 4: kill -9 the server mid-DML-burst, restart, verify recovery"
datadir="$tmp/data"
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none -data-dir "$datadir" \
    2>"$tmp/serve4.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve4.log")

# A burst far larger than one second's worth of round trips, so the
# kill -9 lands mid-flight. The harness exits 0 when it loses the
# server, printing how many INSERTs were acknowledged first.
"$tmp/benchpaper" -serve-dml 500000 -serve-addr "$addr" >"$tmp/dml4.log" 2>&1 &
load_pid=$!
sleep 1
kill -9 "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
srv_pid=""
wait "$load_pid"   # set -e: a served refusal or bad ack fails the gate
load_pid=""
acked=$(sed -n 's/serve-dml: acked \([0-9]*\).*/\1/p' "$tmp/dml4.log")
if [ -z "$acked" ] || [ "$acked" -le 0 ]; then
    echo "serve-smoke: DML burst acknowledged nothing before the kill" >&2
    cat "$tmp/dml4.log" >&2
    exit 1
fi

# Restart on the same data directory: recovery must yield the acked
# prefix exactly (plus at most the one in-flight INSERT), and the
# recovered server must still drain and exit 0.
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none -data-dir "$datadir" \
    2>"$tmp/serve4b.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve4b.log")
"$tmp/benchpaper" -serve-dml-verify "$acked" -serve-addr "$addr"
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
echo "==> phase 4 ok (kill -9 mid-burst; restart recovered exactly the acked prefix)"

echo "==> serve-smoke passed"
