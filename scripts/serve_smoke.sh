#!/bin/sh
# Serving smoke gate. Two phases:
#
#  1. Boot nestedsqld on a random port with admission bounded below the
#     client count, stream the paper workload through the Go client from
#     8 concurrent connections (benchpaper -serve-load), and diff every
#     streamed result byte-for-byte against the in-process sequential
#     oracle. Overload sheds must come back as typed Error frames whose
#     retry-after hint the harness obeys. Then SIGTERM the idle server
#     and require exit 0.
#
#  2. Boot a fresh server, put the load harness on it, and SIGTERM the
#     server MID-RUN: the drain must let in-flight streams finish and
#     the server must still exit 0. The harness's own status is ignored
#     here (its later queries race the shutdown by design).
#
#  3. Kill the CLIENT mid-stream (SIGKILL, no goodbye): the server must
#     notice the dead peer, release its admission slot, keep serving a
#     fresh client cleanly, and still exit 0 on SIGTERM.
#
#  4. Kill the SERVER (kill -9, no drain) mid-DML-burst with durability
#     on: a restart against the same -data-dir must recover exactly the
#     contiguous prefix of acked INSERTs — at most one in-flight
#     statement beyond the last ack, never a ghost or a gap — and the
#     recovered server must then shut down cleanly.
#
#  5. Replicated cluster failover: three workers behind a coordinator at
#     -replicas 2, a DML burst through the coordinator, and kill -9 of
#     one WORKER mid-burst. Every insert the coordinator acked must
#     still be readable through it afterwards — the ack promised all
#     live replicas had the row, so losing one node loses nothing.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${srv_pid:-}" ] && kill "$srv_pid" 2>/dev/null || true
    [ -n "${load_pid:-}" ] && kill "$load_pid" 2>/dev/null || true
    [ -n "${w0_pid:-}" ] && kill "$w0_pid" 2>/dev/null || true
    [ -n "${w1_pid:-}" ] && kill "$w1_pid" 2>/dev/null || true
    [ -n "${w2_pid:-}" ] && kill "$w2_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "==> building nestedsqld and benchpaper"
go build -o "$tmp/nestedsqld" ./cmd/nestedsqld
go build -o "$tmp/benchpaper" ./cmd/benchpaper

# wait_addr LOGFILE: poll for the "listening on" line and print the addr.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*listening on //p' "$1" | head -n 1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        i=$((i + 1))
        sleep 0.05
    done
    echo "serve-smoke: server never reported its address" >&2
    cat "$1" >&2
    return 1
}

echo "==> phase 1: full workload, 8 connections, oracle diff"
# Admission bounded below the client count: any overload sheds must come
# back as typed Error frames, and the harness retries them after the
# server's hint. (On small machines CPU-bound queries may serialize and
# never saturate the gateway; the deterministic shed-with-retry-after
# coverage is TestServeOverloadCarriesRetryAfter in internal/server.)
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture both \
    -max-concurrent 2 -queue-depth 0 2>"$tmp/serve1.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve1.log")

"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 8 -rounds 3

kill -TERM "$srv_pid"
wait "$srv_pid"   # set -e: a non-zero server exit fails the gate
srv_pid=""
echo "==> phase 1 ok (server exited 0 after SIGTERM)"

echo "==> phase 2: SIGTERM with in-flight streaming queries"
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture both \
    -max-concurrent 4 -queue-depth 2 2>"$tmp/serve2.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve2.log")

"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 8 -rounds 200 \
    >"$tmp/load2.log" 2>&1 &
load_pid=$!
sleep 1   # let the storm get going
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
wait "$load_pid" 2>/dev/null || true   # the harness loses its server mid-run; that's the point
load_pid=""
echo "==> phase 2 ok (mid-run SIGTERM drained and exited 0)"

echo "==> phase 3: SIGKILL the client mid-stream, server must survive"
# Tight write deadline and fast heartbeats so the dead peer is noticed
# quickly; the killed harness never closes its socket, so eviction (or
# the kernel RST) is the only way its query's slot comes back.
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture both \
    -max-concurrent 2 -queue-depth 2 \
    -write-deadline 2s -heartbeat 500ms 2>"$tmp/serve3.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve3.log")

"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 4 -rounds 200 \
    >"$tmp/load3.log" 2>&1 &
load_pid=$!
sleep 1   # let streams get in flight
kill -9 "$load_pid" 2>/dev/null || true
wait "$load_pid" 2>/dev/null || true
load_pid=""

# The server must still serve a fresh, well-behaved client end to end —
# the dead connections' slots must come back (max-concurrent is 2, so a
# leaked slot pair would wedge this run).
"$tmp/benchpaper" -serve-load -serve-addr "$addr" -connections 2 -rounds 2

kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
echo "==> phase 3 ok (client SIGKILL absorbed; server served on and exited 0)"

echo "==> phase 4: kill -9 the server mid-DML-burst, restart, verify recovery"
datadir="$tmp/data"
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none -data-dir "$datadir" \
    2>"$tmp/serve4.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve4.log")

# A burst far larger than one second's worth of round trips, so the
# kill -9 lands mid-flight. The harness exits 0 when it loses the
# server, printing how many INSERTs were acknowledged first.
"$tmp/benchpaper" -serve-dml 500000 -serve-addr "$addr" >"$tmp/dml4.log" 2>&1 &
load_pid=$!
sleep 1
kill -9 "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
srv_pid=""
wait "$load_pid"   # set -e: a served refusal or bad ack fails the gate
load_pid=""
acked=$(sed -n 's/serve-dml: acked \([0-9]*\).*/\1/p' "$tmp/dml4.log")
if [ -z "$acked" ] || [ "$acked" -le 0 ]; then
    echo "serve-smoke: DML burst acknowledged nothing before the kill" >&2
    cat "$tmp/dml4.log" >&2
    exit 1
fi

# Restart on the same data directory: recovery must yield the acked
# prefix exactly (plus at most the one in-flight INSERT), and the
# recovered server must still drain and exit 0.
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none -data-dir "$datadir" \
    2>"$tmp/serve4b.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve4b.log")
"$tmp/benchpaper" -serve-dml-verify "$acked" -serve-addr "$addr"
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
echo "==> phase 4 ok (kill -9 mid-burst; restart recovered exactly the acked prefix)"

echo "==> phase 5: kill -9 a replicated WORKER mid-DML-burst, acked rows must survive"
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none 2>"$tmp/w0.log" &
w0_pid=$!
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none 2>"$tmp/w1.log" &
w1_pid=$!
"$tmp/nestedsqld" -addr 127.0.0.1:0 -fixture none 2>"$tmp/w2.log" &
w2_pid=$!
waddr0=$(wait_addr "$tmp/w0.log")
waddr1=$(wait_addr "$tmp/w1.log")
waddr2=$(wait_addr "$tmp/w2.log")

"$tmp/nestedsqld" -addr 127.0.0.1:0 \
    -coordinator "$waddr0,$waddr1,$waddr2" -replicas 2 \
    -probe-interval 250ms 2>"$tmp/serve5.log" &
srv_pid=$!
addr=$(wait_addr "$tmp/serve5.log")

# A burst long enough that the worker kill lands mid-flight (phase 4
# clocks >20k inserts/s on one node; 30000 through a replicating
# coordinator outlasts the 1s fuse comfortably). With replicas=2 the
# coordinator commits each row on the shard's surviving copy, so the
# burst must run to completion: a served refusal fails the gate inside
# the harness, a lost coordinator would shrink the acked count below
# the full burst and fail the check below.
"$tmp/benchpaper" -serve-dml 30000 -serve-addr "$addr" >"$tmp/dml5.log" 2>&1 &
load_pid=$!
sleep 1
kill -9 "$w1_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
w1_pid=""
wait "$load_pid"
load_pid=""
acked=$(sed -n 's/serve-dml: acked \([0-9]*\).*/\1/p' "$tmp/dml5.log")
if [ -z "$acked" ] || [ "$acked" -ne 30000 ]; then
    echo "serve-smoke: replicated burst acked ${acked:-nothing}, want all 30000" >&2
    cat "$tmp/dml5.log" >&2
    exit 1
fi

# Read the table back through the coordinator with the node still dead:
# every acked key must be there, exactly once, served from the replicas.
"$tmp/benchpaper" -serve-dml-verify "$acked" -serve-addr "$addr"

kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
kill -TERM "$w0_pid" && wait "$w0_pid"
w0_pid=""
kill -TERM "$w2_pid" && wait "$w2_pid"
w2_pid=""
echo "==> phase 5 ok (worker kill -9 absorbed; every acked row survived on a replica)"

echo "==> serve-smoke passed"
