#!/bin/sh
# Full verification gate, equivalent to `make check` for environments
# without make. Runs vet, build, the entire test suite under the race
# detector (the morsel-driven parallel executor runs real goroutines, so
# -race is part of the contract, not a nicety), and a short parser fuzz.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser"
go test -run '^$' -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser

# The wire-protocol decoder must turn any malformed frame into an error,
# never a panic or a hang; see internal/wire/fuzz_test.go.
echo "==> go test -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/wire"
go test -run '^$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/wire

# Any single-byte corruption of a checksummed frame must surface as
# wire.ErrCorruptFrame — never as a silently garbled frame.
echo "==> go test -fuzz FuzzFrameCorruption -fuzztime 10s ./internal/wire"
go test -run '^$' -fuzz FuzzFrameCorruption -fuzztime 10s ./internal/wire

# WAL replay must treat any byte sequence as a possibly-torn log tail:
# scan to the first invalid record, never panic, never mis-frame. Seeded
# from the committed golden corpus of truncated/bit-flipped tails.
echo "==> go test -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal"
go test -run '^$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal

# Short chaos pass: a reduced-round run of the seeded fault-injection
# suite (the full 250-round sweep is `make chaos`). -count=1 defeats the
# test cache so the faults actually execute in this gate.
echo "==> go test -race -short -run TestChaosFaultInjection ./internal/engine"
go test -race -short -count=1 -run TestChaosFaultInjection ./internal/engine

# Short storm pass: the multi-client admission storm plus the mid-storm
# drain check (the full-length storm is `make storm`).
echo "==> go test -race -short -run 'TestChaosStorm|TestDrainUnderFaults' ./internal/engine"
go test -race -short -count=1 -run 'TestChaosStorm|TestDrainUnderFaults' ./internal/engine

# Short memory-pressure storm: tiny-budget queries through admission and
# forced spilling with spill I/O faults armed — completions must match
# the unbudgeted oracle byte-for-byte, failures must be typed, and no
# spill or temp file may survive (the full-length storm is
# `make memstorm`).
echo "==> go test -race -short -run 'TestMemPressureStorm|TestSpill' ./internal/engine"
go test -race -short -count=1 -run 'TestMemPressureStorm|TestSpillCompletesUnderSmallBudget|TestSpillCorruptRunDetected|TestSpillTimeoutLeakFree' ./internal/engine

# Metamorphic correctness gate: 200 fixed-seed query pairs with provable
# set relations run through every execution regime (sequential, parallel,
# nested iteration, live network), plus the mutant check that Kim's
# retained COUNT bug is caught within the same budget — proof the oracle
# has teeth. Violations print a minimized repro script verbatim. The long
# seeded pass is `make metamorph ROUNDS=...`.
echo "==> go test -race -run 'TestMetamorph(Short|Faults|TightMemory|CatchesKimMutant)|TestGoldenRepros' ./internal/metamorph"
go test -race -count=1 -run 'TestMetamorph(Short|Faults|TightMemory|CatchesKimMutant)|TestGoldenRepros' ./internal/metamorph

# Short crash-safety gate: the durability suite plus reduced-round
# crash storms — in-process (abandoned engines, injected WAL tears) and
# subprocess (a -race daemon SIGKILLed mid-burst, 4 rounds). Recovery
# must equal exactly the acked commits; no leaked WAL or snapshot
# files. The full 16-round storm is `make crash`.
echo "==> go test -race -short -run 'TestDurability|TestCrashStorm|TestGoldenCorpus' ./internal/engine ./internal/wal"
go test -race -short -count=1 -run 'TestDurability|TestCrashStorm|TestGoldenCorpus' ./internal/engine ./internal/wal
echo "==> CRASH_STORM_SHORT=1 go test -race -short -run TestCrashStormKill9 ./cmd/nestedsqld"
CRASH_STORM_SHORT=1 go test -race -short -count=1 -run TestCrashStormKill9 ./cmd/nestedsqld

# Network chaos storm: clients through the seeded fault-injecting proxy
# (delays, split writes, corruption, truncation, drops, partitions).
# Completed results must match the in-process oracle byte-for-byte;
# failures must be typed; nothing may leak afterwards. Fixed seed, so a
# failure here replays (see internal/server/netchaos_test.go).
echo "==> go test -race -run TestNetChaosStorm ./internal/server"
go test -race -count=1 -run TestNetChaosStorm ./internal/server

# Distributed gate: the sharded NEST-JA2 acceptance diff (3 workers vs
# the single-node oracle, co-located and shuffled placements) and the
# multi-node chaos storm with every worker link behind the fault proxy.
echo "==> go test -race -run 'TestDistributedNestJA2|TestClusterChaosStorm' ./internal/cluster"
go test -race -count=1 -run 'TestDistributedNestJA2|TestClusterChaosStorm' ./internal/cluster

# Failover gate: the deterministic replica-failover drill (dead worker,
# rerouted queries, DML on the survivor, snapshot rejoin), the fast
# ErrWorkerLost surface check, the replication-aware Analyze refusal
# table, and the failover storm — a -race worker SIGKILLed and
# restarted empty under concurrent DML + queries. Every acked row must
# be present exactly once after the fleet heals. The same gate is
# `make cluster-failover`.
echo "==> FAILOVER_STORM_SHORT=1 go test -race -short -run 'TestClusterFailover|TestWorkerLostFastFailure|TestClusterAnalyzeRefusals' ./internal/cluster"
FAILOVER_STORM_SHORT=1 go test -race -short -count=1 -run 'TestClusterFailover|TestWorkerLostFastFailure|TestClusterAnalyzeRefusals' ./internal/cluster

# End-to-end serving smoke: nestedsqld + the Go client + the load
# harness, including graceful SIGTERM with in-flight streams and a
# client killed mid-stream.
echo "==> scripts/serve_smoke.sh"
./scripts/serve_smoke.sh

echo "==> all checks passed"
