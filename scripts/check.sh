#!/bin/sh
# Full verification gate, equivalent to `make check` for environments
# without make. Runs vet, build, the entire test suite under the race
# detector (the morsel-driven parallel executor runs real goroutines, so
# -race is part of the contract, not a nicety), and a short parser fuzz.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser"
go test -run '^$' -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser

echo "==> all checks passed"
