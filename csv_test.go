package nestedsql_test

import (
	"strings"
	"testing"

	nestedsql "repro"
)

func csvDB(t *testing.T) *nestedsql.DB {
	t.Helper()
	db := nestedsql.Open()
	if err := db.CreateTable("SUPPLY", []nestedsql.Column{
		{Name: "PNUM", Type: nestedsql.Int},
		{Name: "QUAN", Type: nestedsql.Float},
		{Name: "SHIPDATE", Type: nestedsql.Date},
		{Name: "NOTE", Type: nestedsql.String},
	}, 0); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadCSV(t *testing.T) {
	db := csvDB(t)
	data := `pnum,quan,shipdate,note
3,4.5,7-3-79,first
10,1,1979-06-08,
8,,5-7-83,NULL
`
	n, err := db.LoadCSV("SUPPLY", strings.NewReader(data), true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded %d rows, want 3", n)
	}
	res, err := db.Query("SELECT PNUM FROM SUPPLY WHERE SHIPDATE < 1-1-80 ORDER BY PNUM")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(3) || res.Rows[1][0] != int64(10) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Empty and NULL fields round-trip as SQL NULL.
	res, err = db.Query("SELECT QUAN, NOTE FROM SUPPLY WHERE PNUM = 8")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != nil || res.Rows[0][1] != nil {
		t.Errorf("NULL fields = %v", res.Rows[0])
	}
}

func TestLoadCSVNoHeader(t *testing.T) {
	db := csvDB(t)
	n, err := db.LoadCSV("SUPPLY", strings.NewReader("1,2,6-8-78,x\n"), false)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := csvDB(t)
	cases := []struct {
		name, data string
	}{
		{"arity", "1,2\n"},
		{"bad int", "x,2,6-8-78,y\n"},
		{"bad float", "1,x,6-8-78,y\n"},
		{"bad date", "1,2,notadate,y\n"},
	}
	for _, c := range cases {
		if _, err := db.LoadCSV("SUPPLY", strings.NewReader(c.data), false); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := db.LoadCSV("NOPE", strings.NewReader("1\n"), false); err == nil {
		t.Error("unknown table: expected error")
	}
}
