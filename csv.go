package nestedsql

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// LoadCSV bulk-loads comma-separated rows into an existing table. Fields
// are converted by the table's column types; an empty field is NULL. With
// header set, the first record is skipped. Dates accept the same formats
// as SQL literals (M-D-YY, M/D/YY, ISO).
func (db *DB) LoadCSV(table string, r io.Reader, header bool) (int, error) {
	rel, ok := db.eng.Catalog().Lookup(table)
	if !ok {
		return 0, fmt.Errorf("nestedsql: unknown table %s", table)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	n := 0
	first := true
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("nestedsql: %s: %w", table, err)
		}
		if first && header {
			first = false
			continue
		}
		first = false
		if len(record) != len(rel.Columns) {
			return n, fmt.Errorf("nestedsql: %s: record has %d fields, table has %d columns",
				table, len(record), len(rel.Columns))
		}
		t := make(storage.Tuple, len(record))
		for i, field := range record {
			v, err := parseCSVField(field, rel.Columns[i].Type)
			if err != nil {
				return n, fmt.Errorf("nestedsql: %s column %s: %w", table, rel.Columns[i].Name, err)
			}
			t[i] = v
		}
		if err := db.eng.Insert(table, t); err != nil {
			return n, err
		}
		n++
	}
	return n, db.eng.Seal(table)
}

func parseCSVField(field string, want value.Kind) (value.Value, error) {
	field = strings.TrimSpace(field)
	if field == "" || strings.EqualFold(field, "NULL") {
		return value.Null, nil
	}
	switch want {
	case value.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(n), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case value.KindDate:
		d, err := value.ParseDate(field)
		if err != nil {
			return value.Null, err
		}
		return value.NewDateValue(d), nil
	default:
		return value.NewString(field), nil
	}
}
