// Package metamorph is the engine's metamorphic correctness fuzzer: the
// first oracle that can falsify the transformation layer itself rather
// than just the executors.
//
// Every other correctness gate in this repository (VerifyParallel, the
// chaos storms, the serve-load byte diff) compares the engine's own
// execution paths against each other, so a logic bug shared by every
// path — exactly the COUNT-bug / duplicates-bug class Kim's NEST-JA is
// famous for — is invisible to all of them. This package instead
// generates query *pairs* whose results stand in a provable set
// relation regardless of how any path evaluates them:
//
//   - predicate strengthening: adding a conjunct can only shrink the
//     result (a sub-bag);
//   - partition scans: restricting a scan to R < c and R >= c and
//     unioning the two halves reproduces the full scan exactly when the
//     partition column is NULL-free, and loses exactly the NULL rows —
//     never gains any — when it is not (the 3VL regime of Libkin's
//     two-valued-logic critique, where unnesting bugs historically hide);
//   - DISTINCT projection: equal as a set, smaller as a bag;
//   - aggregate monotonicity: COUNT can only fall, MIN only rise, MAX
//     only fall under a strengthened predicate;
//   - unnest round trips: the same query evaluated by the transformation
//     pipeline and by nested iteration must agree as a set (Kim's Lemma 1
//     semantics), and sequential/parallel/network paths must agree as a
//     bag;
//   - 3VL form rewrites: x IN (...) is set-equal to its correlated
//     EXISTS form, and NOT IN is contained in NOT EXISTS (they differ
//     exactly on NULLs, and only in one direction).
//
// A seeded generator produces small schemas and NULL-dense,
// duplicate-heavy data together with pairs from this catalog; a runner
// executes both queries of each pair through every execution regime the
// engine has (sequential transform, parallel transform, nested
// iteration, and the network client against a live server, optionally
// through the netfault proxy and the storage fault injector) and checks
// the relation rather than the exact output. A violated relation is
// shrunk to a minimal reproducing instance and written to a corpus
// directory as a replayable SQL script.
package metamorph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Relation is the machine-checkable oracle relation a pair's results
// must satisfy in every execution regime. Q0 is always the "larger"
// query of the pair.
type Relation uint8

// The relation catalog.
const (
	// SubsetBag: bag(Q1) ⊆ bag(Q0). Q1 is Q0 with an extra restriction
	// on the outer relation, which can only remove (outer row × match)
	// combinations, never add or multiply them.
	SubsetBag Relation = iota
	// SubsetSet: set(Q1) ⊆ set(Q0). Used where multiplicities are not
	// comparable across the pair's two query forms (NOT IN vs NOT
	// EXISTS: they differ exactly on NULL members, and only downward).
	SubsetSet
	// SetEqual: set(Q0) = set(Q1). Form rewrites (IN vs EXISTS,
	// GROUP BY vs DISTINCT) that preserve the set but not multiplicity.
	SetEqual
	// PartitionEqual: bag(Q1) ⊎ bag(Q2) = bag(Q0), for partitions over a
	// NULL-free column: every row lands in exactly one half.
	PartitionEqual
	// PartitionSubset: bag(Q1) ⊎ bag(Q2) ⊆ bag(Q0), for partitions over
	// a NULLable column: under 3VL a NULL satisfies neither X < c nor
	// X >= c, so the union may only lose rows — never gain or double
	// them.
	PartitionSubset
	// CountBound: both queries yield one COUNT(*) row; count(Q1) ≤
	// count(Q0).
	CountBound
	// MinMaxBound: both queries yield one (MIN(x), MAX(x)) row over
	// superset/subset inputs: when Q1's MIN is non-NULL, Q0's is too and
	// min(Q0) ≤ min(Q1); symmetrically max(Q0) ≥ max(Q1).
	MinMaxBound
	// DistinctEqual: Q1 is Q0 with DISTINCT: equal as sets, and bag(Q1)
	// ⊆ bag(Q0).
	DistinctEqual
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case SubsetBag:
		return "subset-bag"
	case SubsetSet:
		return "subset-set"
	case SetEqual:
		return "set-equal"
	case PartitionEqual:
		return "partition-equal"
	case PartitionSubset:
		return "partition-subset"
	case CountBound:
		return "count-bound"
	case MinMaxBound:
		return "minmax-bound"
	case DistinctEqual:
		return "distinct-equal"
	default:
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
}

// Arity is the number of queries the relation connects.
func (r Relation) Arity() int {
	if r == PartitionEqual || r == PartitionSubset {
		return 3
	}
	return 2
}

// relationByName inverts String, for repro files.
func relationByName(s string) (Relation, bool) {
	for r := SubsetBag; r <= DistinctEqual; r++ {
		if r.String() == s {
			return r, true
		}
	}
	return 0, false
}

// Query is one generated SQL statement plus the nesting profile the
// generator built it with (the classification every one of its nested
// predicates must receive, in preorder — see internal/classify).
type Query struct {
	SQL string
	// Want is the expected classify.Profile().Types of the query.
	Want []classify.NestType
	// HasAll marks a query containing an ALL quantifier, whose
	// transformed form deliberately diverges from nested iteration on
	// empty inner results (see README "Known semantic notes"); the
	// transform-vs-nested-iteration round trip is not checked for it.
	HasAll bool
}

// Pair is one metamorphic test case: Relation.Arity() queries whose
// results must satisfy Relation under every execution regime.
type Pair struct {
	ID       int
	Class    string // generator class, e.g. "strengthen/typeJA"
	Relation Relation
	Queries  []Query
}

// Table is one generated relation: schema plus rows.
type Table struct {
	Name string
	Cols []schema.Column
	Key  []string
	Rows []storage.Tuple
}

// Scenario is one generated database instance plus the pairs to run on
// it. Table names embed the scenario ID so scenarios can share one
// engine without colliding.
type Scenario struct {
	Seed  int64
	ID    int
	Tables []Table
	Pairs  []Pair
}

// relation renders the table's schema for engine.CreateRelation.
func (t Table) relation() *schema.Relation {
	rel := &schema.Relation{Name: t.Name, Key: t.Key}
	rel.Columns = append(rel.Columns, t.Cols...)
	return rel
}

// Catalog builds a standalone catalog of the scenario's tables, for
// resolution outside an engine (the classify shape tests use it).
func (s *Scenario) Catalog() (*schema.Catalog, error) {
	cat := schema.NewCatalog()
	for _, t := range s.Tables {
		rel := &schema.Relation{Name: t.Name, Key: t.Key}
		rel.Columns = append(rel.Columns, t.Cols...)
		if err := cat.Define(rel); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// SetupSQL renders the scenario's tables as a CREATE TABLE + INSERT
// script — the replayable half of a repro file.
func (s *Scenario) SetupSQL() string {
	var b strings.Builder
	for _, t := range s.Tables {
		b.WriteString("CREATE TABLE " + t.Name + " (")
		for i, c := range t.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name + " " + sqlType(c.Type))
		}
		if len(t.Key) > 0 {
			b.WriteString(", PRIMARY KEY (" + strings.Join(t.Key, ", ") + ")")
		}
		b.WriteString(");\n")
		if len(t.Rows) == 0 {
			continue
		}
		b.WriteString("INSERT INTO " + t.Name + " VALUES\n")
		for i, row := range t.Rows {
			b.WriteString("  (")
			for j, v := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(sqlLiteral(v))
			}
			b.WriteString(")")
			if i < len(t.Rows)-1 {
				b.WriteString(",\n")
			}
		}
		b.WriteString(";\n")
	}
	return b.String()
}

func sqlType(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindString:
		return "VARCHAR"
	case value.KindDate:
		return "DATE"
	default:
		return "INTEGER"
	}
}

// sqlLiteral renders a value as a literal the parser reads back: NULL,
// bare ints/floats/dates, single-quoted strings.
func sqlLiteral(v value.Value) string {
	switch v.Kind() {
	case value.KindNull:
		return "NULL"
	case value.KindString:
		return "'" + v.Str() + "'"
	case value.KindDate:
		return v.DateOf().String()
	default:
		return v.String()
	}
}

// ---- Relation checking ----

// bagOf renders rows as a sorted multiset of printed tuples — the
// comparison currency of every relation check.
func bagOf(rows []storage.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// setOf is bagOf with duplicates removed.
func setOf(rows []storage.Tuple) []string {
	bag := bagOf(rows)
	out := make([]string, 0, len(bag))
	for i, s := range bag {
		if i == 0 || s != bag[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// subBag reports "" when small ⊆ big as sorted multisets, else a
// description of the first element of small that big cannot cover.
func subBag(small, big []string) string {
	i, j := 0, 0
	for i < len(small) {
		switch {
		case j >= len(big) || small[i] < big[j]:
			return fmt.Sprintf("row %s present in the smaller query's result but not (often enough) in the larger's (%d vs %d rows)",
				small[i], len(small), len(big))
		case small[i] == big[j]:
			i++
			j++
		default:
			j++
		}
	}
	return ""
}

// equalBags reports "" when a = b, else the first difference.
func equalBags(a, b []string) string {
	n := min(len(a), len(b))
	for i := range n {
		if a[i] != b[i] {
			return fmt.Sprintf("%d vs %d rows; first difference: %s vs %s", len(a), len(b), a[i], b[i])
		}
	}
	if len(a) != len(b) {
		extra := a
		if len(b) > len(a) {
			extra = b
		}
		return fmt.Sprintf("%d vs %d rows; first unmatched: %s", len(a), len(b), extra[n])
	}
	return ""
}

// mergeBags is the multiset union of two sorted bags.
func mergeBags(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Strings(out)
	return out
}

// scalarAt extracts the single-row aggregate value at column col, or an
// error when the result is not the one-row shape aggregate queries
// produce.
func scalarAt(rows []storage.Tuple, col int) (value.Value, error) {
	if len(rows) != 1 || col >= len(rows[0]) {
		return value.Null, fmt.Errorf("aggregate query returned %d rows (want 1)", len(rows))
	}
	return rows[0][col], nil
}

// Check verifies the pair's relation over the results of its queries
// (results[i] belongs to Queries[i]). It returns "" when the relation
// holds and a human-readable violation otherwise.
func (p *Pair) Check(results ...[]storage.Tuple) string {
	if len(results) != p.Relation.Arity() {
		return fmt.Sprintf("internal: %d results for %v (arity %d)", len(results), p.Relation, p.Relation.Arity())
	}
	switch p.Relation {
	case SubsetBag:
		return prefixed("strengthened result is not a sub-bag of the base result",
			subBag(bagOf(results[1]), bagOf(results[0])))
	case SubsetSet:
		return prefixed("restricted form's result is not a subset of the wider form's",
			subBag(setOf(results[1]), setOf(results[0])))
	case SetEqual:
		return prefixed("equivalent forms disagree as sets",
			equalBags(setOf(results[0]), setOf(results[1])))
	case PartitionEqual:
		return prefixed("partition halves do not reassemble the full scan",
			equalBags(mergeBags(bagOf(results[1]), bagOf(results[2])), bagOf(results[0])))
	case PartitionSubset:
		return prefixed("partition halves exceed the full scan (NULL rows may only be lost, never gained)",
			subBag(mergeBags(bagOf(results[1]), bagOf(results[2])), bagOf(results[0])))
	case CountBound:
		c0, err := scalarAt(results[0], 0)
		if err != nil {
			return err.Error()
		}
		c1, err := scalarAt(results[1], 0)
		if err != nil {
			return err.Error()
		}
		if c0.Kind() != value.KindInt || c1.Kind() != value.KindInt {
			return fmt.Sprintf("COUNT returned non-integer values %v / %v", c0, c1)
		}
		if c1.Int() > c0.Int() {
			return fmt.Sprintf("COUNT grew under a strengthened predicate: %d > %d", c1.Int(), c0.Int())
		}
		return ""
	case MinMaxBound:
		min0, err := scalarAt(results[0], 0)
		if err != nil {
			return err.Error()
		}
		max0 := results[0][0][1]
		min1, err := scalarAt(results[1], 0)
		if err != nil {
			return err.Error()
		}
		max1 := results[1][0][1]
		if !min1.IsNull() {
			if min0.IsNull() {
				return fmt.Sprintf("subset has MIN %v but superset has MIN NULL", min1)
			}
			if cmp, err := value.Compare(min0, min1); err != nil {
				return err.Error()
			} else if cmp > 0 {
				return fmt.Sprintf("superset MIN %v exceeds subset MIN %v", min0, min1)
			}
		}
		if !max1.IsNull() {
			if max0.IsNull() {
				return fmt.Sprintf("subset has MAX %v but superset has MAX NULL", max1)
			}
			if cmp, err := value.Compare(max0, max1); err != nil {
				return err.Error()
			} else if cmp < 0 {
				return fmt.Sprintf("superset MAX %v below subset MAX %v", max0, max1)
			}
		}
		return ""
	case DistinctEqual:
		if d := equalBags(setOf(results[0]), setOf(results[1])); d != "" {
			return "DISTINCT changed the result as a set: " + d
		}
		return prefixed("DISTINCT result is not a sub-bag of the plain projection",
			subBag(bagOf(results[1]), bagOf(results[0])))
	default:
		return fmt.Sprintf("internal: unknown relation %v", p.Relation)
	}
}

// CheckRelaxed is Check with the bag relations degraded to their set
// forms. The runner uses it when the pair's queries took different
// execution shapes within one regime (one transformed, one fell back to
// nested iteration): the transform preserves sets but carries
// join-multiplicity duplicates, so duplicate counts across the pair are
// not comparable, while the set containments still are.
func (p *Pair) CheckRelaxed(results ...[]storage.Tuple) string {
	if len(results) != p.Relation.Arity() {
		return fmt.Sprintf("internal: %d results for %v (arity %d)", len(results), p.Relation, p.Relation.Arity())
	}
	switch p.Relation {
	case SubsetBag:
		return prefixed("strengthened result is not a subset of the base result",
			subBag(setOf(results[1]), setOf(results[0])))
	case PartitionEqual:
		union := setOf(append(append([]storage.Tuple{}, results[1]...), results[2]...))
		return prefixed("partition halves do not reassemble the full scan (as sets)",
			equalBags(union, setOf(results[0])))
	case PartitionSubset:
		union := setOf(append(append([]storage.Tuple{}, results[1]...), results[2]...))
		return prefixed("partition halves exceed the full scan (as sets)",
			subBag(union, setOf(results[0])))
	case DistinctEqual:
		return prefixed("DISTINCT changed the result as a set",
			equalBags(setOf(results[0]), setOf(results[1])))
	default:
		return p.Check(results...)
	}
}

func prefixed(msg, diff string) string {
	if diff == "" {
		return ""
	}
	return msg + ": " + diff
}
