package metamorph

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// TestPinGoldenRepros regenerates the pinned corpus under testdata/golden
// when METAMORPH_PIN_GOLDEN is set: it runs the short seed against Kim's
// NEST-JA mutant and freezes one minimized repro per violation class.
// Mutant repros make good goldens precisely because they fail under the
// retained bug and pass under the corrected pipeline — TestGoldenRepros
// replays them under NEST-JA2 forever after. The hand-written nullkey-*.sql
// files in the same directory are kept, not regenerated: they pin the
// NULL-correlation-key bug the fuzzer found in NEST-JA2 itself.
func TestPinGoldenRepros(t *testing.T) {
	if os.Getenv("METAMORPH_PIN_GOLDEN") == "" {
		t.Skip("set METAMORPH_PIN_GOLDEN=1 to regenerate testdata/golden")
	}
	dir := filepath.Join("testdata", "golden")
	gen := NewGenerator(Config{Seed: shortSeed})
	r, err := NewRunner(RunnerConfig{
		UnderTest: engine.TransformKim,
		Shrink:    true,
		CorpusDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seen := map[string]bool{}
	kept := map[string]bool{}
	for id := 0; id < gen.Scenarios() && len(kept) < 3; id++ {
		vs, err := r.RunScenario(gen.Scenario(id))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vs {
			v := &vs[i]
			if v.ReproPath == "" || kept[v.ReproPath] {
				// Violations of the same pair share one repro file —
				// never delete a file already pinned.
				continue
			}
			// One golden per class (and three total) keeps the corpus
			// small; surplus corpus files from this run are removed.
			if seen[v.Pair.Class] || len(kept) >= 3 {
				os.Remove(v.ReproPath)
				continue
			}
			seen[v.Pair.Class] = true
			kept[v.ReproPath] = true
			t.Logf("pinned %s", v.ReproPath)
		}
	}
	if len(kept) == 0 {
		t.Fatal("mutant produced no repros to pin")
	}
}
