package metamorph

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/netfault"
	"repro/internal/storage"
)

// shortSeed fixes the deterministic gate pass: the same pairs run on
// every machine, so a failure here replays everywhere.
const shortSeed = 20260808

func runAll(t *testing.T, gen *Generator, r *Runner) []Violation {
	t.Helper()
	var out []Violation
	for id := 0; id < gen.Scenarios(); id++ {
		vs, err := r.RunScenario(gen.Scenario(id))
		if err != nil {
			t.Fatalf("scenario %d: %v", id, err)
		}
		out = append(out, vs...)
	}
	return out
}

func reportViolations(t *testing.T, vs []Violation) {
	t.Helper()
	for i := range vs {
		v := &vs[i]
		// The repro script is the whole point of a failure: print it
		// verbatim so it can be replayed without re-running the fuzzer.
		t.Errorf("%s\nminimized repro:\n%s", v.String(), v.ReproSQL)
	}
}

// TestMetamorphShort is the deterministic check-gate pass: 200 pairs
// (8 scenarios x 25) through every regime — sequential, parallel,
// nested iteration, and the live-server network path — with shrinking
// armed. Zero relation violations expected.
func TestMetamorphShort(t *testing.T) {
	gen := NewGenerator(Config{Seed: shortSeed})
	r, err := NewRunner(RunnerConfig{
		Parallel:  true,
		Network:   true,
		Shrink:    true,
		CorpusDir: filepath.Join(t.TempDir(), "corpus"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reportViolations(t, runAll(t, gen, r))
	st := r.Stats()
	if st.Pairs != 200 {
		t.Errorf("short pass ran %d pairs, want 200", st.Pairs)
	}
	t.Logf("pairs=%d queries=%d elapsed=%s relations=%v relaxed=%d skippedAll=%d",
		st.Pairs, st.Queries, st.Elapsed.Round(1e6), st.Relations, st.Relaxed, st.SkippedAll)
}

// TestMetamorphFaults runs a reduced pass with both fault injectors
// armed: storage faults inside the engine and the seeded chaos proxy on
// the wire. Injected faults may cost coverage (skips), never
// correctness.
func TestMetamorphFaults(t *testing.T) {
	gen := NewGenerator(Config{Seed: shortSeed + 1, Scenarios: 4, PairsPerScenario: 10})
	r, err := NewRunner(RunnerConfig{
		Parallel: true,
		Network:  true,
		NetFault: &netfault.Config{
			Seed:        shortSeed,
			Delay:       0.05,
			DelayDur:    1e6, // 1ms
			SplitWrites: 0.2,
			Corrupt:     0.01,
			Drop:        0.01,
			MaxFaults:   24,
		},
		Faults: &storage.FaultConfig{
			Seed:      shortSeed,
			ReadError: 0.002,
			WriteTear: 0.01,
			MaxFaults: 16,
		},
		Shrink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reportViolations(t, runAll(t, gen, r))
	st := r.Stats()
	t.Logf("pairs=%d queries=%d faultSkips=%d", st.Pairs, st.Queries, st.FaultSkips)
}

// TestMetamorphTightMemory is the tight-memory regime gate: a fixed-seed
// corpus where every query additionally runs with all memory
// reservations refused, pushing each sort, join group, and aggregate
// through checksummed spill runs. Relations must still hold, forced-spill
// results must bag-match the in-memory regime, every scenario must
// actually spill (no silent no-spill pass), and no run files may outlive
// their scenario.
func TestMetamorphTightMemory(t *testing.T) {
	gen := NewGenerator(Config{Seed: shortSeed + 2, Scenarios: 4, PairsPerScenario: 10})
	spillDir := filepath.Join(t.TempDir(), "spill")
	r, err := NewRunner(RunnerConfig{
		TightMemory: true,
		SpillDir:    spillDir,
		Shrink:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var vs []Violation
	prevRuns := int64(0)
	for id := 0; id < gen.Scenarios(); id++ {
		out, err := r.RunScenario(gen.Scenario(id))
		if err != nil {
			t.Fatalf("scenario %d: %v", id, err)
		}
		vs = append(vs, out...)
		st := r.Stats()
		if st.SpillRuns == prevRuns {
			t.Errorf("scenario %d: tight-memory regime wrote no spill runs — the gate exercised nothing", id)
		}
		prevRuns = st.SpillRuns
		if n, err := r.db.SpillManager().LiveFiles(); err != nil || n != 0 {
			t.Fatalf("scenario %d: %d spill file(s) left behind (err %v)", id, n, err)
		}
	}
	reportViolations(t, vs)
	st := r.Stats()
	t.Logf("pairs=%d queries=%d spillRuns=%d", st.Pairs, st.Queries, st.SpillRuns)
}

// TestMetamorphCatchesKimMutant proves the oracle has teeth: pointing
// the runner at Kim's original NEST-JA (the deliberately retained
// COUNT-bug strategy) must surface a violation within the short gate's
// 200-pair budget.
func TestMetamorphCatchesKimMutant(t *testing.T) {
	gen := NewGenerator(Config{Seed: shortSeed})
	r, err := NewRunner(RunnerConfig{
		UnderTest: engine.TransformKim,
		Shrink:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for id := 0; id < gen.Scenarios(); id++ {
		vs, err := r.RunScenario(gen.Scenario(id))
		if err != nil {
			t.Fatalf("scenario %d: %v", id, err)
		}
		if len(vs) > 0 {
			v := vs[0]
			if v.ReproSQL == "" {
				t.Fatalf("mutant violation carries no repro script: %s", v.String())
			}
			// The minimized repro must itself replay against the mutant.
			rep, err := ParseRepro(v.ReproSQL)
			if err != nil {
				t.Fatalf("mutant repro does not parse: %v\n%s", err, v.ReproSQL)
			}
			if d := rep.Replay(engine.TransformKim); d == "" {
				t.Fatalf("minimized repro no longer fails under the mutant:\n%s", v.ReproSQL)
			}
			t.Logf("mutant caught after %d pairs: %s\nminimized repro:\n%s",
				r.Stats().Pairs, v.String(), v.ReproSQL)
			return
		}
	}
	t.Fatalf("Kim NEST-JA mutant escaped %d pairs — the oracle is toothless", r.Stats().Pairs)
}

// TestMetamorphLong is the seeded long pass behind `make metamorph`,
// gated on METAMORPH_ROUNDS so plain `go test ./...` stays fast.
// METAMORPH_SEED varies the pairs; ROUNDS is the total pair budget.
func TestMetamorphLong(t *testing.T) {
	roundsEnv := os.Getenv("METAMORPH_ROUNDS")
	if roundsEnv == "" {
		t.Skip("set METAMORPH_ROUNDS (and optionally METAMORPH_SEED) to run the long pass; see `make metamorph`")
	}
	rounds, err := strconv.Atoi(roundsEnv)
	if err != nil || rounds <= 0 {
		t.Fatalf("bad METAMORPH_ROUNDS %q", roundsEnv)
	}
	seed := int64(shortSeed)
	if s := os.Getenv("METAMORPH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad METAMORPH_SEED %q", s)
		}
		seed = n
	}
	const perScenario = 25
	gen := NewGenerator(Config{
		Seed:             seed,
		Scenarios:        (rounds + perScenario - 1) / perScenario,
		PairsPerScenario: perScenario,
	})
	r, err := NewRunner(RunnerConfig{
		Parallel:  true,
		Network:   true,
		Shrink:    true,
		CorpusDir: corpusDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reportViolations(t, runAll(t, gen, r))
	st := r.Stats()
	qps := float64(st.Queries) / st.Elapsed.Seconds()
	t.Logf("seed=%d pairs=%d queries=%d (%.0f queries/sec) violations=%d relations=%v relaxed=%d skippedAll=%d faultSkips=%d",
		seed, st.Pairs, st.Queries, qps, st.Violations, st.Relations, st.Relaxed, st.SkippedAll, st.FaultSkips)
}

func corpusDir() string {
	if d := os.Getenv("METAMORPH_CORPUS"); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "metamorph-corpus")
}

// TestGeneratorDeterministic pins the generator contract: the same seed
// must yield byte-identical scenarios, or corpus seeds stop replaying.
func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 7}).Scenario(3)
	b := NewGenerator(Config{Seed: 7}).Scenario(3)
	if a.SetupSQL() != b.SetupSQL() {
		t.Fatal("same seed generated different data")
	}
	for i := range a.Pairs {
		for qi := range a.Pairs[i].Queries {
			if a.Pairs[i].Queries[qi].SQL != b.Pairs[i].Queries[qi].SQL {
				t.Fatalf("same seed generated different SQL for pair %d", i)
			}
		}
	}
}

// TestShrinkMinimizes checks the shrinker does real work: a mutant
// violation found on a full-size scenario must come back with strictly
// fewer rows and still fail its recorded check.
func TestShrinkMinimizes(t *testing.T) {
	gen := NewGenerator(Config{Seed: shortSeed})
	r, err := NewRunner(RunnerConfig{UnderTest: engine.TransformKim})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for id := 0; id < gen.Scenarios(); id++ {
		s := gen.Scenario(id)
		vs, err := r.RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			continue
		}
		v := vs[0]
		min := ShrinkViolation(s, &v, engine.TransformKim)
		if replayDetail(min, &v, engine.TransformKim) == "" {
			t.Fatal("shrunk scenario no longer reproduces the violation")
		}
		before, after := rowCount(s), rowCount(min)
		if after > before {
			t.Fatalf("shrinking grew the scenario: %d -> %d rows", before, after)
		}
		t.Logf("shrunk %d rows to %d", before, after)
		return
	}
	t.Fatal("no mutant violation to shrink")
}

func rowCount(s *Scenario) int {
	n := 0
	for _, t := range s.Tables {
		n += len(t.Rows)
	}
	return n
}

// TestReproRoundTrip pins the corpus format: write, parse, replay.
func TestReproRoundTrip(t *testing.T) {
	gen := NewGenerator(Config{Seed: shortSeed})
	r, err := NewRunner(RunnerConfig{
		UnderTest: engine.TransformKim,
		Shrink:    true,
		CorpusDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for id := 0; id < gen.Scenarios(); id++ {
		vs, err := r.RunScenario(gen.Scenario(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			continue
		}
		v := vs[0]
		if v.ReproPath == "" {
			t.Fatalf("violation was not written to the corpus: %s", v.String())
		}
		rep, err := LoadRepro(v.ReproPath)
		if err != nil {
			t.Fatalf("corpus file does not load: %v", err)
		}
		if d := rep.Replay(engine.TransformKim); d == "" {
			t.Fatalf("corpus repro does not fail under the mutant:\n%s", v.ReproSQL)
		}
		if d := rep.Replay(engine.TransformJA2); d != "" {
			t.Fatalf("corpus repro fails under NEST-JA2 too — not a mutant-specific repro? %s", d)
		}
		return
	}
	t.Fatal("no violation to round-trip")
}

// TestGoldenRepros replays the pinned corpus under testdata/golden:
// generated pairs frozen as regression tests. Every repro must pass
// (empty detail) under the corrected NEST-JA2 pipeline.
func TestGoldenRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.sql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden repros pinned under testdata/golden")
	}
	for _, path := range paths {
		rep, err := LoadRepro(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if d := rep.Replay(engine.TransformJA2); d != "" {
			t.Errorf("%s: relation %s no longer holds: %s", path, rep.Relation, d)
		}
	}
}
