package metamorph

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/storage"
)

// ReproScript renders a violation as a standalone .sql script: a header
// of structured comments, the scenario's CREATE/INSERT setup, and the
// pair's queries behind "-- Q<i>:" markers. The script replays through
// LoadRepro/Replay (or any tool that feeds it to engine.Exec).
func ReproScript(s *Scenario, v *Violation) string {
	var b strings.Builder
	b.WriteString("-- metamorph repro\n")
	fmt.Fprintf(&b, "-- class: %s\n", v.Pair.Class)
	fmt.Fprintf(&b, "-- relation: %s\n", v.Pair.Relation)
	fmt.Fprintf(&b, "-- check: %s\n", v.Check)
	if v.Regime != "" {
		fmt.Fprintf(&b, "-- regime: %s\n", v.Regime)
	}
	fmt.Fprintf(&b, "-- query-index: %d\n", v.QueryIndex)
	fmt.Fprintf(&b, "-- hasall: %s\n", hasAllList(v.Pair.Queries))
	fmt.Fprintf(&b, "-- seed: %d scenario: %d pair: %d\n", s.Seed, s.ID, v.Pair.ID)
	for _, line := range strings.Split(v.Detail, "\n") {
		fmt.Fprintf(&b, "-- detail: %s\n", line)
	}
	b.WriteString(s.SetupSQL())
	for i, q := range v.Pair.Queries {
		fmt.Fprintf(&b, "-- Q%d:\n%s;\n", i, q.SQL)
	}
	return b.String()
}

func hasAllList(qs []Query) string {
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = strconv.FormatBool(q.HasAll)
	}
	return strings.Join(parts, ",")
}

// WriteRepro writes the violation's repro script into dir (creating it)
// and returns the file path.
func WriteRepro(dir string, s *Scenario, v *Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	class := strings.NewReplacer("/", "-", " ", "-", "(", "", ")", "").Replace(v.Pair.Class)
	name := fmt.Sprintf("%s-%s-seed%d-sc%d-p%d.sql", class, v.Check, s.Seed, s.ID, v.Pair.ID)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(ReproScript(s, v)), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Repro is a parsed repro script.
type Repro struct {
	Class      string
	Relation   Relation
	Check      string
	Regime     string
	QueryIndex int
	Detail     string
	Scenario   *Scenario
	Queries    []Query
}

// Pair rebuilds the repro's query pair.
func (r *Repro) Pair() Pair {
	return Pair{Class: r.Class, Relation: r.Relation, Queries: r.Queries}
}

// Replay re-runs the repro's recorded check on a fresh engine and
// returns the failure detail, or "" when the check passes. Network
// regimes replay through the in-process path under the same strategy.
func (r *Repro) Replay(underTest engine.Strategy) string {
	v := &Violation{
		Pair:       r.Pair(),
		Check:      r.Check,
		Regime:     r.Regime,
		QueryIndex: r.QueryIndex,
	}
	if v.Check == "" {
		v.Check = "relation"
	}
	if v.Check == "relation" && v.Regime == "" {
		v.Regime = RegimeSeq
	}
	return replayDetail(r.Scenario, v, underTest)
}

// LoadRepro parses a repro script written by WriteRepro.
func LoadRepro(path string) (*Repro, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseRepro(string(raw))
}

// ParseRepro parses repro-script text: structured header comments, setup
// statements, and "-- Q<i>:"-marked queries.
func ParseRepro(src string) (*Repro, error) {
	r := &Repro{Scenario: &Scenario{}}
	var hasAll []bool
	var setup, query strings.Builder
	inQuery := false
	flushQuery := func() {
		if !inQuery {
			return
		}
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(query.String()), ";"))
		if sql != "" {
			r.Queries = append(r.Queries, Query{SQL: sql})
		}
		query.Reset()
	}
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "-- Q"):
			flushQuery()
			inQuery = true
		case strings.HasPrefix(trimmed, "--"):
			key, val, ok := strings.Cut(strings.TrimSpace(strings.TrimPrefix(trimmed, "--")), ":")
			if !ok {
				continue
			}
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "class":
				r.Class = val
			case "relation":
				rel, ok := relationByName(val)
				if !ok {
					return nil, fmt.Errorf("metamorph: unknown relation %q", val)
				}
				r.Relation = rel
			case "check":
				r.Check = val
			case "regime":
				r.Regime = val
			case "query-index":
				qi, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("metamorph: bad query-index %q", val)
				}
				r.QueryIndex = qi
			case "hasall":
				for _, p := range strings.Split(val, ",") {
					hasAll = append(hasAll, strings.TrimSpace(p) == "true")
				}
			case "seed":
				// "seed: N scenario: N pair: N" — informational only.
			case "detail":
				if r.Detail != "" {
					r.Detail += "\n"
				}
				r.Detail += val
			}
		case trimmed == "":
		case inQuery:
			query.WriteString(line + "\n")
		default:
			setup.WriteString(line + "\n")
		}
	}
	flushQuery()
	for i := range r.Queries {
		if i < len(hasAll) {
			r.Queries[i].HasAll = hasAll[i]
		}
	}
	if err := parseSetup(setup.String(), r.Scenario); err != nil {
		return nil, err
	}
	if len(r.Queries) == 0 {
		return nil, fmt.Errorf("metamorph: repro has no queries")
	}
	return r, nil
}

// parseSetup turns the CREATE/INSERT half of a repro back into tables.
func parseSetup(src string, s *Scenario) error {
	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		return fmt.Errorf("metamorph: bad repro setup: %w", err)
	}
	byName := map[string]int{}
	for _, stmt := range stmts {
		switch stmt := stmt.(type) {
		case *sqlparser.CreateTableStmt:
			rel := stmt.Relation
			byName[rel.Name] = len(s.Tables)
			s.Tables = append(s.Tables, Table{Name: rel.Name, Cols: rel.Columns, Key: rel.Key})
		case *sqlparser.InsertStmt:
			ti, ok := byName[stmt.Table]
			if !ok {
				return fmt.Errorf("metamorph: repro inserts into unknown table %s", stmt.Table)
			}
			for _, row := range stmt.Rows {
				s.Tables[ti].Rows = append(s.Tables[ti].Rows, storage.Tuple(row))
			}
		default:
			return fmt.Errorf("metamorph: unexpected statement in repro setup")
		}
	}
	return nil
}
