package metamorph

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/netfault"
	"repro/internal/planner"
	"repro/internal/qctx"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
)

// The execution regimes a pair is checked under. Each regime runs every
// query of the pair; the oracle relation must hold within each regime,
// and each query must agree with itself across regimes.
const (
	RegimeSeq   = "seq"   // the strategy under test, sequential
	RegimePar   = "par"   // the same strategy through the parallel executor
	RegimeNI    = "ni"    // nested iteration, the semantic ground truth
	RegimeNet   = "net"   // the strategy under test through a live server
	RegimeTight = "tight" // the same strategy with every buffer forced to spill runs
)

// RunnerConfig configures a Runner.
type RunnerConfig struct {
	// UnderTest is the strategy being fuzzed. The zero value means
	// TransformJA2 (nested iteration is always exercised separately as
	// the round-trip baseline); set TransformKim to point the fuzzer at
	// the known-buggy NEST-JA — the mutant the short gate proves it can
	// catch.
	UnderTest engine.Strategy
	// Parallel additionally runs every query through the morsel-driven
	// parallel executor (2 workers, cost gate bypassed).
	Parallel bool
	// Network additionally runs every query over the wire protocol
	// against a live server sharing the runner's database.
	Network bool
	// NetFault, when non-nil, routes the network regime through the
	// fault-injecting proxy. Queries lost to injected faults are skipped,
	// not failed.
	NetFault *netfault.Config
	// Faults, when non-nil, installs the storage fault injector for the
	// duration of each scenario. Queries lost to injected faults are
	// skipped, not failed.
	Faults *storage.FaultConfig
	// TightMemory additionally runs every query under forced spilling
	// (with sort-merge joins forced so every plan has buffering
	// operators): all spillable state goes through checksummed run
	// files, and results must still agree with the sequential regime.
	// Requires SpillDir.
	TightMemory bool
	// SpillDir roots the tight-memory regime's spill run files.
	SpillDir string
	// BufferPages sizes the engine's buffer pool (0 = 64).
	BufferPages int
	// Shrink minimizes failing scenarios before reporting them.
	Shrink bool
	// CorpusDir, when non-empty, receives one replayable .sql repro file
	// per violation.
	CorpusDir string
}

func (c RunnerConfig) underTest() engine.Strategy {
	if c.UnderTest == engine.NestedIteration {
		return engine.TransformJA2
	}
	return c.UnderTest
}

// Stats accumulates over a runner's lifetime.
type Stats struct {
	Scenarios  int
	Pairs      int
	Queries    int // engine executions across all regimes
	Violations int
	// Relations counts checked pairs by relation name.
	Relations map[string]int
	// SkippedAll counts round-trip checks skipped for ALL-quantifier
	// queries (their transform deliberately diverges from NI on empty
	// inner results).
	SkippedAll int
	// Relaxed counts relation checks downgraded to set comparisons
	// because the pair's queries took different execution shapes (one
	// fell back to nested iteration, the other transformed — their
	// duplicate multiplicities are not comparable).
	Relaxed int
	// FaultSkips counts query executions lost to injected storage or
	// network faults.
	FaultSkips int
	// SpillRuns counts spill run files written by the tight-memory
	// regime — the "no silent no-spill pass" teeth check.
	SpillRuns int64
	Elapsed   time.Duration
}

// Violation is one relation or cross-regime check that failed.
type Violation struct {
	Scenario *Scenario
	Pair     Pair
	// Check is "relation", "roundtrip" (strategy under test vs nested
	// iteration, as sets), or "parity" (sequential vs parallel, as bags).
	Check string
	// Regime is the regime a relation check failed in.
	Regime string
	// QueryIndex is the pair query a roundtrip/parity check failed on.
	QueryIndex int
	Detail     string
	// ReproSQL is the replayable repro script (shrunk when shrinking is
	// enabled and the failure reproduces in-process).
	ReproSQL string
	// ReproPath is where the repro was written, when CorpusDir is set.
	ReproPath string
}

func (v *Violation) String() string {
	loc := v.Regime
	if v.Check != "relation" {
		loc = fmt.Sprintf("query %d", v.QueryIndex)
	}
	return fmt.Sprintf("metamorph: %s check failed (%s, %s, %s): %s",
		v.Check, v.Pair.Class, v.Pair.Relation, loc, v.Detail)
}

// Runner owns the engine, server, proxy, and client a fuzzing session
// runs against. Not safe for concurrent use.
type Runner struct {
	cfg   RunnerConfig
	db    *engine.DB
	srv   *server.Server
	proxy *netfault.Proxy
	conn  *client.Conn
	stats Stats
	start time.Time
}

// NewRunner builds a runner and, for the network regime, starts its
// server (and fault proxy) on a loopback listener.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	pages := cfg.BufferPages
	if pages == 0 {
		pages = 64
	}
	r := &Runner{cfg: cfg, db: engine.New(pages), start: time.Now()}
	r.stats.Relations = make(map[string]int)
	if cfg.TightMemory {
		if cfg.SpillDir == "" {
			return nil, errors.New("metamorph: TightMemory requires SpillDir")
		}
		if err := r.db.EnableSpill(cfg.SpillDir, 0); err != nil {
			return nil, err
		}
	}
	if !cfg.Network {
		return r, nil
	}
	r.srv = server.New(r.db, server.Config{
		Strategy:     cfg.underTest(),
		BatchRows:    16,
		WriteTimeout: 5 * time.Second,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go r.srv.Serve(lis)
	addr := lis.Addr().String()
	if cfg.NetFault != nil {
		r.proxy, err = netfault.New(addr, *cfg.NetFault)
		if err != nil {
			r.Close()
			return nil, err
		}
		addr = r.proxy.Addr()
	}
	r.conn, err = client.DialOpts(addr, client.DialOptions{
		Timeout:   5 * time.Second,
		IOTimeout: 5 * time.Second,
		Reconnect: &client.ReconnectConfig{
			MaxAttempts: 8,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Seed:        1,
		},
	})
	if err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// Close tears the runner's network stack down.
func (r *Runner) Close() error {
	if r.conn != nil {
		r.conn.Close()
	}
	if r.proxy != nil {
		r.proxy.Close()
	}
	if r.srv != nil {
		r.srv.Shutdown(2 * time.Second)
	}
	return nil
}

// Stats returns the accumulated counters.
func (r *Runner) Stats() Stats {
	s := r.stats
	s.Elapsed = time.Since(r.start)
	return s
}

// faultTolerable reports whether a query error is an accepted outcome of
// the configured fault injection rather than a bug.
func (r *Runner) faultTolerable(err error) bool {
	if r.cfg.Faults != nil && errors.Is(err, storage.ErrInjectedFault) {
		return true
	}
	if r.cfg.NetFault != nil {
		var re *wire.RemoteError
		var ne net.Error
		if errors.As(err, &re) || errors.As(err, &ne) ||
			errors.Is(err, client.ErrConnectionLost) ||
			errors.Is(err, wire.ErrCorruptFrame) ||
			errors.Is(err, wire.ErrSlowConsumer) ||
			errors.Is(err, qctx.ErrCanceled) ||
			errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			errors.Is(err, net.ErrClosed) {
			return true
		}
	}
	return false
}

// run is one engine execution: rows, whether the query fell back to
// nested iteration, and whether the execution was lost to an injected
// fault (skip == true).
type runResult struct {
	rows     []storage.Tuple
	fellBack bool
	skip     bool
}

func (r *Runner) runQuery(sql, regime string) (runResult, error) {
	r.stats.Queries++
	switch regime {
	case RegimeNet:
		res, err := r.conn.Collect(sql, client.Options{Timeout: 10 * time.Second})
		if err != nil {
			if r.faultTolerable(err) {
				r.stats.FaultSkips++
				return runResult{skip: true}, nil
			}
			return runResult{}, fmt.Errorf("network query failed: %w\n  query: %s", err, sql)
		}
		return runResult{rows: res.Rows}, nil
	case RegimeSeq, RegimePar, RegimeNI, RegimeTight:
		opts := engine.Options{Strategy: r.cfg.underTest()}
		if regime == RegimeNI {
			opts.Strategy = engine.NestedIteration
		}
		if regime == RegimePar {
			opts.Planner = planner.Options{Parallelism: 2, ForceParallel: true}
		}
		if regime == RegimeTight {
			// Refuse every memory reservation and force sort-merge joins,
			// so every plan with a join or aggregate pushes its buffers
			// through checksummed spill runs.
			opts.Spill = qctx.SpillForced
			opts.Planner = planner.Options{TempJoin: planner.JoinMerge, FinalJoin: planner.JoinMerge}
		}
		res, err := r.db.Query(sql, opts)
		if err != nil {
			if r.faultTolerable(err) {
				r.stats.FaultSkips++
				return runResult{skip: true}, nil
			}
			return runResult{}, fmt.Errorf("%s query failed: %w\n  query: %s", regime, err, sql)
		}
		if regime == RegimeTight {
			r.stats.SpillRuns += res.Spill.Runs
		}
		return runResult{rows: res.Rows, fellBack: res.FellBack}, nil
	default:
		return runResult{}, fmt.Errorf("metamorph: unknown regime %q", regime)
	}
}

func (r *Runner) regimes() []string {
	regs := []string{RegimeSeq, RegimeNI}
	if r.cfg.Parallel {
		regs = append(regs, RegimePar)
	}
	if r.cfg.Network {
		regs = append(regs, RegimeNet)
	}
	if r.cfg.TightMemory {
		regs = append(regs, RegimeTight)
	}
	return regs
}

// RunScenario loads the scenario's tables, checks every pair under every
// configured regime, drops the tables again, and returns the violations
// (shrunk and written to the corpus directory as configured). A non-nil
// error means the harness itself failed — a query errored for a reason
// other than an injected fault.
func (r *Runner) RunScenario(s *Scenario) ([]Violation, error) {
	r.stats.Scenarios++
	if err := r.load(s); err != nil {
		return nil, err
	}
	defer r.unload(s)
	if r.cfg.Faults != nil {
		inj := storage.NewFaultInjector(*r.cfg.Faults)
		r.db.Store().SetFaultInjector(inj)
		defer r.db.Store().SetFaultInjector(nil)
	}

	var out []Violation
	for _, p := range s.Pairs {
		r.stats.Pairs++
		r.stats.Relations[p.Relation.String()]++
		viols, err := r.checkPair(s, p)
		if err != nil {
			return out, err
		}
		for i := range viols {
			r.finish(s, &viols[i])
		}
		out = append(out, viols...)
	}
	r.stats.Violations += len(out)
	return out, nil
}

func (r *Runner) load(s *Scenario) error {
	for _, t := range s.Tables {
		if err := r.db.CreateRelation(t.relation(), 0); err != nil {
			return err
		}
		if len(t.Rows) > 0 {
			if err := r.db.Insert(t.Name, t.Rows...); err != nil {
				return err
			}
		}
		if err := r.db.Seal(t.Name); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) unload(s *Scenario) {
	for _, t := range s.Tables {
		r.db.Catalog().Drop(t.Name)
		r.db.Store().Drop(t.Name)
	}
}

// checkPair runs every query of the pair in every regime, then applies
// the cross-regime agreement checks and the pair's oracle relation.
func (r *Runner) checkPair(s *Scenario, p Pair) ([]Violation, error) {
	regs := r.regimes()
	// results[regime][query index]
	results := make(map[string][]runResult)
	for _, reg := range regs {
		for qi, q := range p.Queries {
			res, err := r.runQuery(q.SQL, reg)
			if err != nil {
				return nil, err
			}
			_ = qi
			results[reg] = append(results[reg], res)
		}
	}

	var out []Violation
	// Cross-regime agreement per query: the strategy under test must be
	// set-equal to nested iteration (Kim's Lemma 1 — transformed queries
	// may carry join-multiplicity duplicates, so bags are not
	// comparable), and bag-equal to its own parallel and networked
	// executions.
	for qi, q := range p.Queries {
		seq := results[RegimeSeq][qi]
		if seq.skip {
			continue
		}
		if ni := results[RegimeNI][qi]; !ni.skip {
			if q.HasAll {
				r.stats.SkippedAll++
			} else if d := equalBags(setOf(seq.rows), setOf(ni.rows)); d != "" {
				out = append(out, Violation{
					Scenario: s, Pair: p, Check: "roundtrip", QueryIndex: qi,
					Detail: fmt.Sprintf("%v vs nested iteration disagree as sets: %s\n  query: %s",
						r.cfg.underTest(), d, q.SQL),
				})
			}
		}
		if par, ok := results[RegimePar]; ok && !par[qi].skip {
			if d := equalBags(bagOf(seq.rows), bagOf(par[qi].rows)); d != "" {
				out = append(out, Violation{
					Scenario: s, Pair: p, Check: "parity", QueryIndex: qi,
					Detail: fmt.Sprintf("sequential vs parallel disagree as bags: %s\n  query: %s", d, q.SQL),
				})
			}
		}
		if nrs, ok := results[RegimeNet]; ok && !nrs[qi].skip {
			if d := equalBags(bagOf(seq.rows), bagOf(nrs[qi].rows)); d != "" {
				out = append(out, Violation{
					Scenario: s, Pair: p, Check: "netparity", QueryIndex: qi,
					Detail: fmt.Sprintf("in-process vs networked disagree as bags: %s\n  query: %s", d, q.SQL),
				})
			}
		}
		if trs, ok := results[RegimeTight]; ok && !trs[qi].skip {
			if d := equalBags(bagOf(seq.rows), bagOf(trs[qi].rows)); d != "" {
				out = append(out, Violation{
					Scenario: s, Pair: p, Check: "tightparity", QueryIndex: qi,
					Detail: fmt.Sprintf("in-memory vs forced-spill disagree as bags: %s\n  query: %s", d, q.SQL),
				})
			}
		}
	}

	// The oracle relation, within each regime.
	for _, reg := range regs {
		rs := results[reg]
		rows := make([][]storage.Tuple, len(rs))
		skip, mixed := false, false
		for qi, rr := range rs {
			if rr.skip {
				skip = true
				break
			}
			rows[qi] = rr.rows
			// The network regime reuses the sequential regime's fallback
			// flags: the server runs the same strategy on the same data.
			fb := rr.fellBack
			if reg == RegimeNet {
				fb = results[RegimeSeq][qi].fellBack
			}
			first := rs[0].fellBack
			if reg == RegimeNet {
				first = results[RegimeSeq][0].fellBack
			}
			if fb != first {
				mixed = true
			}
		}
		if skip {
			continue
		}
		var d string
		if mixed {
			// One query transformed, another fell back: duplicate
			// multiplicities across the pair are not comparable, so the
			// bag relations degrade to their set forms.
			r.stats.Relaxed++
			d = p.CheckRelaxed(rows...)
		} else {
			d = p.Check(rows...)
		}
		if d != "" {
			out = append(out, Violation{
				Scenario: s, Pair: p, Check: "relation", Regime: reg,
				Detail: d + "\n  queries:\n    " + joinSQL(p.Queries),
			})
		}
	}
	return out, nil
}

func joinSQL(qs []Query) string {
	out := ""
	for i, q := range qs {
		if i > 0 {
			out += "\n    "
		}
		out += q.SQL + ";"
	}
	return out
}

// finish shrinks a violation (when configured and reproducible
// in-process) and writes its repro file.
func (r *Runner) finish(s *Scenario, v *Violation) {
	minimal := s
	if r.cfg.Shrink {
		minimal = ShrinkViolation(s, v, r.cfg.underTest())
	}
	v.ReproSQL = ReproScript(minimal, v)
	if r.cfg.CorpusDir != "" {
		if path, err := WriteRepro(r.cfg.CorpusDir, minimal, v); err == nil {
			v.ReproPath = path
		}
	}
}
