-- metamorph repro
-- class: aggbound-minmax/type-JA
-- relation: minmax-bound
-- check: roundtrip
-- query-index: 1
-- hasall: false,false
-- seed: 20260808 scenario: 0 pair: 12
-- detail: transform (Kim NEST-JA) vs nested iteration disagree as sets: 1 vs 1 rows; first difference: (3, 7) vs (0, 8)
-- detail:   query: SELECT MIN(A.V) AS lo, MAX(A.V) AS hi FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K) AND A.D <= 11-1-81
CREATE TABLE MM0A (R INTEGER, K INTEGER, V INTEGER, G INTEGER, S VARCHAR, D DATE, PRIMARY KEY (R));
INSERT INTO MM0A VALUES
  (6, NULL, 0, NULL, 'ash', 5-20-77);
CREATE TABLE MM0B (ID INTEGER, K INTEGER, W INTEGER, G INTEGER, PRIMARY KEY (ID));
CREATE TABLE MM0C (K INTEGER, W INTEGER, G INTEGER);
-- Q0:
SELECT MIN(A.V) AS lo, MAX(A.V) AS hi FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K);
-- Q1:
SELECT MIN(A.V) AS lo, MAX(A.V) AS hi FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K) AND A.D <= 11-1-81;
