-- metamorph repro
-- class: partition/type-JA
-- relation: partition-equal
-- check: roundtrip
-- query-index: 2
-- hasall: false,false,false
-- seed: 20260808 scenario: 0 pair: 10
-- detail: transform (Kim NEST-JA) vs nested iteration disagree as sets: 1 vs 2 rows; first unmatched: (NULL, 0)
-- detail:   query: SELECT A.K, A.V FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K) AND A.R >= 5
CREATE TABLE MM0A (R INTEGER, K INTEGER, V INTEGER, G INTEGER, S VARCHAR, D DATE, PRIMARY KEY (R));
INSERT INTO MM0A VALUES
  (6, NULL, 0, NULL, 'ash', 5-20-77);
CREATE TABLE MM0B (ID INTEGER, K INTEGER, W INTEGER, G INTEGER, PRIMARY KEY (ID));
CREATE TABLE MM0C (K INTEGER, W INTEGER, G INTEGER);
-- Q0:
SELECT A.K, A.V FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K);
-- Q1:
SELECT A.K, A.V FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K) AND A.R < 5;
-- Q2:
SELECT A.K, A.V FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K) AND A.R >= 5;
