-- metamorph repro
-- class: nullkey-count
-- relation: set-equal
-- check: roundtrip
-- regime: ni
-- query-index: 0
-- hasall: false
-- seed: 0 scenario: 0 pair: 0
-- detail: pinned by hand: NEST-JA2 step-4 back-join must be NULL-safe, or the
-- detail: CT=0 group materialized for NULL-keyed outer rows is dropped while
-- detail: nested iteration keeps them (COUNT over an empty set is 0).
CREATE TABLE GA (R INTEGER, K INTEGER, V INTEGER, PRIMARY KEY (R));
INSERT INTO GA VALUES
  (1, NULL, 0), (2, 7, 1), (3, NULL, 2);
CREATE TABLE GB (ID INTEGER, K INTEGER, W INTEGER, PRIMARY KEY (ID));
INSERT INTO GB VALUES
  (10, 7, 1), (11, NULL, 2);
-- Q0:
SELECT GA.R, GA.V FROM GA WHERE GA.V <= (SELECT COUNT(*) FROM GB WHERE GB.K = GA.K);
