-- metamorph repro
-- class: nullkey-notexists
-- relation: set-equal
-- check: roundtrip
-- regime: ni
-- query-index: 0
-- hasall: false
-- seed: 0 scenario: 0 pair: 0
-- detail: pinned by hand: NOT EXISTS reaches the NEST-JA2 COUNT path through
-- detail: the section 8.2 rewrite to 0 = COUNT(*); NULL-keyed outer rows have
-- detail: an empty correlated set and must survive the transform too.
CREATE TABLE GA (R INTEGER, K INTEGER, V INTEGER, PRIMARY KEY (R));
INSERT INTO GA VALUES
  (1, NULL, 0), (2, 7, 1), (3, NULL, 2);
CREATE TABLE GB (ID INTEGER, K INTEGER, W INTEGER, PRIMARY KEY (ID));
INSERT INTO GB VALUES
  (10, 7, 1), (11, NULL, 2);
-- Q0:
SELECT GA.R FROM GA WHERE NOT EXISTS (SELECT GB.ID FROM GB WHERE GB.K = GA.K);
