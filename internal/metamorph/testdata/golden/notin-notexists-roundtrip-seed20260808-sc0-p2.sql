-- metamorph repro
-- class: notin-notexists
-- relation: subset-set
-- check: roundtrip
-- query-index: 0
-- hasall: false,false
-- seed: 20260808 scenario: 0 pair: 2
-- detail: transform (Kim NEST-JA) vs nested iteration disagree as sets: 0 vs 7 rows; first unmatched: (0, 3)
-- detail:   query: SELECT A.R, A.K FROM MM0A A WHERE NOT EXISTS (SELECT B.ID FROM MM0B B WHERE B.W <= 6 AND B.K = A.K)
CREATE TABLE MM0A (R INTEGER, K INTEGER, V INTEGER, G INTEGER, S VARCHAR, D DATE, PRIMARY KEY (R));
INSERT INTO MM0A VALUES
  (6, NULL, 0, NULL, 'ash', 5-20-77);
CREATE TABLE MM0B (ID INTEGER, K INTEGER, W INTEGER, G INTEGER, PRIMARY KEY (ID));
CREATE TABLE MM0C (K INTEGER, W INTEGER, G INTEGER);
-- Q0:
SELECT A.R, A.K FROM MM0A A WHERE NOT EXISTS (SELECT B.ID FROM MM0B B WHERE B.W <= 6 AND B.K = A.K);
-- Q1:
SELECT A.R, A.K FROM MM0A A WHERE A.K NOT IN (SELECT B.K FROM MM0B B WHERE B.W <= 6);
