package metamorph

import (
	"fmt"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Config seeds and sizes a generator. Zero values take defaults.
type Config struct {
	// Seed drives every random choice. The same Config generates the same
	// scenarios, byte for byte.
	Seed int64
	// Scenarios is the number of database instances to generate.
	Scenarios int
	// PairsPerScenario is the number of query pairs per instance.
	PairsPerScenario int
	// MaxRows caps the row count of each generated table. Tables draw a
	// size in [0, MaxRows] (the outer table at least 1), so empty inner
	// relations — where the COUNT bug class lives — occur regularly.
	MaxRows int
	// NullFrac is the probability that a nullable cell is NULL. The
	// default 0.25 keeps the 3VL regimes dense without drowning the
	// two-valued ones.
	NullFrac float64
}

func (c Config) filled() Config {
	if c.Scenarios == 0 {
		c.Scenarios = 8
	}
	if c.PairsPerScenario == 0 {
		c.PairsPerScenario = 25
	}
	if c.MaxRows == 0 {
		c.MaxRows = 24
	}
	if c.NullFrac == 0 {
		c.NullFrac = 0.25
	}
	return c
}

// Generator produces scenarios deterministically from its Config.
type Generator struct {
	cfg Config
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) *Generator { return &Generator{cfg: cfg.filled()} }

// Scenarios returns the number of scenarios this generator produces.
func (g *Generator) Scenarios() int { return g.cfg.Scenarios }

// Scenario generates instance id. Each scenario has its own derived
// seed, so scenarios can be regenerated independently of each other.
func (g *Generator) Scenario(id int) *Scenario {
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(id)*0x9E3779B9))
	s := &Scenario{Seed: g.cfg.Seed, ID: id}
	d := genDomains(rng, g.cfg)
	s.Tables = genTables(rng, id, g.cfg, d)
	for p := 0; p < g.cfg.PairsPerScenario; p++ {
		s.Pairs = append(s.Pairs, genPair(rng, p, names(id), d))
	}
	return s
}

// tableNames are the per-scenario relation names; the scenario ID keeps
// concurrent scenarios apart on a shared engine.
type tableNames struct{ A, B, C string }

func names(id int) tableNames {
	return tableNames{
		A: fmt.Sprintf("MM%dA", id),
		B: fmt.Sprintf("MM%dB", id),
		C: fmt.Sprintf("MM%dC", id),
	}
}

// domains are the value ranges data and query constants draw from. They
// are deliberately tiny: a join-key domain of 2-5 values over a couple
// dozen rows forces duplicate-heavy bags and guarantees outer values
// with zero inner matches.
type domains struct {
	keyDom int // join keys K and G: [0, keyDom)
	valDom int // measures V and W: [0, valDom)
	rowsA  int
}

func genDomains(rng *rand.Rand, cfg Config) domains {
	return domains{
		keyDom: 2 + rng.Intn(4),
		valDom: 4 + rng.Intn(7),
		rowsA:  1 + rng.Intn(cfg.MaxRows),
	}
}

var sDomain = []string{"ash", "elm", "fir", "oak"}

func genTables(rng *rand.Rand, id int, cfg Config, d domains) []Table {
	n := names(id)
	null := func() bool { return rng.Float64() < cfg.NullFrac }
	key := func() value.Value {
		if null() {
			return value.Null
		}
		return value.NewInt(int64(rng.Intn(d.keyDom)))
	}
	val := func() value.Value {
		if null() {
			return value.Null
		}
		return value.NewInt(int64(rng.Intn(d.valDom)))
	}
	str := func() value.Value {
		if null() {
			return value.Null
		}
		return value.NewString(sDomain[rng.Intn(len(sDomain))])
	}
	date := func() value.Value {
		if null() {
			return value.Null
		}
		dt, err := value.NewDate(1977+rng.Intn(5), 1+rng.Intn(12), 1+rng.Intn(28))
		if err != nil {
			panic(err)
		}
		return value.NewDateValue(dt)
	}

	// A: the outer relation. R is a NULL-free unique rowid (the sound
	// partition column and declared key); everything else is nullable
	// and duplicate-heavy.
	a := Table{
		Name: n.A,
		Cols: []schema.Column{
			{Name: "R", Type: value.KindInt},
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
			{Name: "G", Type: value.KindInt},
			{Name: "S", Type: value.KindString},
			{Name: "D", Type: value.KindDate},
		},
		Key: []string{"R"},
	}
	for i := 0; i < d.rowsA; i++ {
		a.Rows = append(a.Rows, storage.Tuple{
			value.NewInt(int64(i)), key(), val(), key(), str(), date(),
		})
	}

	// B: the inner relation; may be empty, which is where the COUNT bug
	// class lives. ID is a true key so the key-based IN-merge path is
	// exercised honestly.
	b := Table{
		Name: n.B,
		Cols: []schema.Column{
			{Name: "ID", Type: value.KindInt},
			{Name: "K", Type: value.KindInt},
			{Name: "W", Type: value.KindInt},
			{Name: "G", Type: value.KindInt},
		},
		Key: []string{"ID"},
	}
	for i, rows := 0, rng.Intn(cfg.MaxRows+1); i < rows; i++ {
		b.Rows = append(b.Rows, storage.Tuple{
			value.NewInt(int64(i)), key(), val(), key(),
		})
	}

	// C: the third level for multi-level correlation; keyless, so whole
	// duplicate rows are legal and generated.
	c := Table{
		Name: n.C,
		Cols: []schema.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "W", Type: value.KindInt},
			{Name: "G", Type: value.KindInt},
		},
	}
	for i, rows := 0, rng.Intn(cfg.MaxRows+1); i < rows; i++ {
		row := storage.Tuple{key(), val(), key()}
		c.Rows = append(c.Rows, row)
		if rng.Float64() < 0.2 { // duplicate-heavy bag
			c.Rows = append(c.Rows, row.Clone())
		}
	}
	return []Table{a, b, c}
}

// nestedPred is one generated nested predicate over outer alias A, plus
// the classification every checker must agree on.
type nestedPred struct {
	sql    string
	want   []classify.NestType
	hasAll bool
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

var cmpOps = []string{"<", "<=", "=", ">=", ">", "!="}

// genNested draws one nested predicate. The mix leans on the correlated
// aggregate shapes (type-JA), because that is where Kim's COUNT and
// non-equality bugs live.
func genNested(rng *rand.Rand, n tableNames, d domains) nestedPred {
	kc := rng.Intn(d.keyDom + 1)  // join-key constant
	vc := rng.Intn(d.valDom + 1)  // measure constant
	agg := pick(rng, []string{"MAX", "MIN", "SUM", "AVG"})
	switch rng.Intn(12) {
	case 0: // type-A: uncorrelated aggregate, a single constant
		return nestedPred{
			sql:  fmt.Sprintf("A.V >= (SELECT %s(B.W) FROM %s B)", agg, n.B),
			want: []classify.NestType{classify.TypeA},
		}
	case 1: // type-A with a restricted inner block
		return nestedPred{
			sql:  fmt.Sprintf("A.V <= (SELECT AVG(B.W) FROM %s B WHERE B.G <= %d)", n.B, kc),
			want: []classify.NestType{classify.TypeA},
		}
	case 2: // type-N: the canonical IN
		return nestedPred{
			sql:  fmt.Sprintf("A.K IN (SELECT B.K FROM %s B WHERE B.W <= %d)", n.B, vc),
			want: []classify.NestType{classify.TypeN},
		}
	case 3: // type-N via a quantified comparison
		return nestedPred{
			sql:  fmt.Sprintf("A.V > ANY (SELECT B.W FROM %s B WHERE B.G = %d)", n.B, kc),
			want: []classify.NestType{classify.TypeN},
		}
	case 4: // type-N selecting the inner key column (the honest IN-merge path)
		return nestedPred{
			sql:  fmt.Sprintf("A.R IN (SELECT B.ID FROM %s B WHERE B.W >= %d)", n.B, vc),
			want: []classify.NestType{classify.TypeN},
		}
	case 5: // type-J: correlated EXISTS
		return nestedPred{
			sql:  fmt.Sprintf("EXISTS (SELECT B.ID FROM %s B WHERE B.K = A.K AND B.W <= %d)", n.B, vc),
			want: []classify.NestType{classify.TypeJ},
		}
	case 6: // type-J: correlated IN
		return nestedPred{
			sql:  fmt.Sprintf("A.V IN (SELECT B.W FROM %s B WHERE B.G = A.G)", n.B),
			want: []classify.NestType{classify.TypeJ},
		}
	case 7: // type-JA: the COUNT-bug shape
		op := pick(rng, []string{"=", ">=", "<="})
		return nestedPred{
			sql:  fmt.Sprintf("A.V %s (SELECT COUNT(*) FROM %s B WHERE B.K = A.K)", op, n.B),
			want: []classify.NestType{classify.TypeJA},
		}
	case 8: // type-JA: correlated aggregate comparison
		return nestedPred{
			sql:  fmt.Sprintf("A.V %s (SELECT %s(B.W) FROM %s B WHERE B.K = A.K)", pick(rng, cmpOps), agg, n.B),
			want: []classify.NestType{classify.TypeJA},
		}
	case 9: // ALL quantifier (transformed form diverges from NI on empty inners)
		if rng.Intn(2) == 0 {
			return nestedPred{
				sql:    fmt.Sprintf("A.V <= ALL (SELECT B.W FROM %s B WHERE B.K = A.K)", n.B),
				want:   []classify.NestType{classify.TypeJ},
				hasAll: true,
			}
		}
		return nestedPred{
			sql:    fmt.Sprintf("A.V < ALL (SELECT B.W FROM %s B WHERE B.G = %d)", n.B, kc),
			want:   []classify.NestType{classify.TypeN},
			hasAll: true,
		}
	case 10: // two levels: N over JA (section 9.1's recursive shape)
		return nestedPred{
			sql: fmt.Sprintf("A.K IN (SELECT B.K FROM %s B WHERE B.W >= (SELECT MIN(C.W) FROM %s C WHERE C.G = B.G))",
				n.B, n.C),
			want: []classify.NestType{classify.TypeN, classify.TypeJA},
		}
	default: // two levels: J over JA, correlation skipping a level
		return nestedPred{
			sql: fmt.Sprintf("EXISTS (SELECT B.ID FROM %s B WHERE B.K = A.K AND B.W <= (SELECT MAX(C.W) FROM %s C WHERE C.G = A.G))",
				n.B, n.C),
			want: []classify.NestType{classify.TypeJ, classify.TypeJA},
		}
	}
}

// genConjunct draws one plain strengthening conjunct over the outer
// alias A. ANDing it onto a query can only remove outer rows — under
// 3VL a NULL operand makes the conjunct unknown, which also removes the
// row — so it strengthens regardless of operator.
func genConjunct(rng *rand.Rand, d domains) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("A.V %s %d", pick(rng, cmpOps), rng.Intn(d.valDom+1))
	case 1:
		return fmt.Sprintf("A.S = '%s'", pick(rng, sDomain))
	case 2:
		dt, err := value.NewDate(1977+rng.Intn(5), 1+rng.Intn(12), 1+rng.Intn(28))
		if err != nil {
			panic(err)
		}
		return fmt.Sprintf("A.D %s %s", pick(rng, []string{"<=", ">=", "<", ">"}), value.NewDateValue(dt).DateOf())
	default:
		return fmt.Sprintf("A.G = %d", rng.Intn(d.keyDom+1))
	}
}

// genPair draws one metamorphic pair.
func genPair(rng *rand.Rand, id int, n tableNames, d domains) Pair {
	np := genNested(rng, n, d)
	vc := rng.Intn(d.valDom + 1)
	switch rng.Intn(11) {
	case 0, 1: // predicate strengthening: bag(Q1) ⊆ bag(Q0)
		base := fmt.Sprintf("SELECT A.R, A.K FROM %s A WHERE %s", n.A, np.sql)
		order := ""
		if rng.Intn(4) == 0 {
			order = " ORDER BY A.R"
		}
		return Pair{
			ID:       id,
			Class:    "strengthen/" + np.want[0].String(),
			Relation: SubsetBag,
			Queries: []Query{
				{SQL: base + order, Want: np.want, HasAll: np.hasAll},
				{SQL: base + " AND " + genConjunct(rng, d) + order, Want: np.want, HasAll: np.hasAll},
			},
		}
	case 2: // partition on the NULL-free rowid: exact reassembly
		cut := rng.Intn(d.rowsA + 1)
		base := fmt.Sprintf("SELECT A.K, A.V FROM %s A WHERE %s", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "partition/" + np.want[0].String(),
			Relation: PartitionEqual,
			Queries: []Query{
				{SQL: base, Want: np.want, HasAll: np.hasAll},
				{SQL: fmt.Sprintf("%s AND A.R < %d", base, cut), Want: np.want, HasAll: np.hasAll},
				{SQL: fmt.Sprintf("%s AND A.R >= %d", base, cut), Want: np.want, HasAll: np.hasAll},
			},
		}
	case 3: // partition on a NULLable column: 3VL loses the NULL rows, never gains
		cut := rng.Intn(d.valDom + 1)
		base := fmt.Sprintf("SELECT A.R, A.S FROM %s A WHERE %s", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "partition-null/" + np.want[0].String(),
			Relation: PartitionSubset,
			Queries: []Query{
				{SQL: base, Want: np.want, HasAll: np.hasAll},
				{SQL: fmt.Sprintf("%s AND A.V < %d", base, cut), Want: np.want, HasAll: np.hasAll},
				{SQL: fmt.Sprintf("%s AND A.V >= %d", base, cut), Want: np.want, HasAll: np.hasAll},
			},
		}
	case 4: // DISTINCT projection
		tail := fmt.Sprintf("A.K, A.S FROM %s A WHERE %s", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "distinct/" + np.want[0].String(),
			Relation: DistinctEqual,
			Queries: []Query{
				{SQL: "SELECT " + tail, Want: np.want, HasAll: np.hasAll},
				{SQL: "SELECT DISTINCT " + tail, Want: np.want, HasAll: np.hasAll},
			},
		}
	case 5: // COUNT monotonicity under strengthening
		base := fmt.Sprintf("SELECT COUNT(*) FROM %s A WHERE %s", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "aggbound-count/" + np.want[0].String(),
			Relation: CountBound,
			Queries: []Query{
				{SQL: base, Want: np.want, HasAll: np.hasAll},
				{SQL: base + " AND " + genConjunct(rng, d), Want: np.want, HasAll: np.hasAll},
			},
		}
	case 6: // MIN/MAX bounds under strengthening
		base := fmt.Sprintf("SELECT MIN(A.V) AS lo, MAX(A.V) AS hi FROM %s A WHERE %s", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "aggbound-minmax/" + np.want[0].String(),
			Relation: MinMaxBound,
			Queries: []Query{
				{SQL: base, Want: np.want, HasAll: np.hasAll},
				{SQL: base + " AND " + genConjunct(rng, d), Want: np.want, HasAll: np.hasAll},
			},
		}
	case 7: // IN vs its correlated EXISTS form: set-equal under 3VL
		return Pair{
			ID:       id,
			Class:    "inexists",
			Relation: SetEqual,
			Queries: []Query{
				{
					SQL:  fmt.Sprintf("SELECT A.R, A.K FROM %s A WHERE A.K IN (SELECT B.K FROM %s B WHERE B.W <= %d)", n.A, n.B, vc),
					Want: []classify.NestType{classify.TypeN},
				},
				{
					SQL:  fmt.Sprintf("SELECT A.R, A.K FROM %s A WHERE EXISTS (SELECT B.ID FROM %s B WHERE B.W <= %d AND B.K = A.K)", n.A, n.B, vc),
					Want: []classify.NestType{classify.TypeJ},
				},
			},
		}
	case 8: // NOT IN ⊆ NOT EXISTS: they differ exactly on NULLs, one-directionally
		return Pair{
			ID:       id,
			Class:    "notin-notexists",
			Relation: SubsetSet,
			Queries: []Query{
				{
					SQL:  fmt.Sprintf("SELECT A.R, A.K FROM %s A WHERE NOT EXISTS (SELECT B.ID FROM %s B WHERE B.W <= %d AND B.K = A.K)", n.A, n.B, vc),
					Want: []classify.NestType{classify.TypeJ},
				},
				{
					SQL:  fmt.Sprintf("SELECT A.R, A.K FROM %s A WHERE A.K NOT IN (SELECT B.K FROM %s B WHERE B.W <= %d)", n.A, n.B, vc),
					Want: []classify.NestType{classify.TypeN},
				},
			},
		}
	case 9: // strengthening a DISTINCT projection: dedup + transform interplay
		base := fmt.Sprintf("SELECT DISTINCT A.K, A.G FROM %s A WHERE %s", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "distinct-strengthen/" + np.want[0].String(),
			Relation: SubsetSet,
			Queries: []Query{
				{SQL: base, Want: np.want, HasAll: np.hasAll},
				{SQL: base + " AND " + genConjunct(rng, d), Want: np.want, HasAll: np.hasAll},
			},
		}
	default: // grouped HAVING thresholds: higher cutoff keeps fewer groups
		lo := 1 + rng.Intn(2)
		hi := lo + 1 + rng.Intn(2)
		base := fmt.Sprintf("SELECT A.K, COUNT(*) AS cnt FROM %s A WHERE %s GROUP BY A.K HAVING cnt >= ", n.A, np.sql)
		return Pair{
			ID:       id,
			Class:    "having/" + np.want[0].String(),
			Relation: SubsetBag,
			Queries: []Query{
				{SQL: fmt.Sprintf("%s%d", base, lo), Want: np.want, HasAll: np.hasAll},
				{SQL: fmt.Sprintf("%s%d", base, hi), Want: np.want, HasAll: np.hasAll},
			},
		}
	}
}
