package metamorph

import (
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/storage"
)

// maxShrinkAttempts bounds the replays one shrink may spend. Each replay
// is a handful of tiny in-process queries, so the bound is generous.
const maxShrinkAttempts = 600

// ShrinkViolation minimizes the scenario behind a violation: it narrows
// the scenario to the failing pair, then greedily deletes table rows —
// chunks first, then single rows, to a fixed point — keeping every
// deletion that preserves the failure. Each candidate replays on a
// fresh throwaway engine, so shrinking never disturbs the runner's
// database. Violations that only reproduce through the network stack
// (and not in-process under the same strategy) come back narrowed but
// otherwise unshrunk.
func ShrinkViolation(s *Scenario, v *Violation, underTest engine.Strategy) *Scenario {
	cand := &Scenario{Seed: s.Seed, ID: s.ID, Pairs: []Pair{v.Pair}}
	for _, t := range s.Tables {
		ct := t
		ct.Rows = append([]storage.Tuple(nil), t.Rows...)
		cand.Tables = append(cand.Tables, ct)
	}
	attempts := 0
	try := func(next *Scenario) bool {
		if attempts >= maxShrinkAttempts {
			return false
		}
		attempts++
		return replayDetail(next, v, underTest) != ""
	}
	if !try(cand) {
		return cand
	}
	for {
		reduced := false
		for ti := range cand.Tables {
			for chunk := len(cand.Tables[ti].Rows) / 2; chunk >= 1; chunk /= 2 {
				off := 0
				for off < len(cand.Tables[ti].Rows) {
					next := withoutRows(cand, ti, off, chunk)
					if try(next) {
						cand = next
						reduced = true
					} else {
						off += chunk
					}
				}
			}
		}
		if !reduced || attempts >= maxShrinkAttempts {
			return cand
		}
	}
}

// withoutRows copies the scenario with rows [off, off+n) of table ti
// removed.
func withoutRows(s *Scenario, ti, off, n int) *Scenario {
	out := &Scenario{Seed: s.Seed, ID: s.ID, Pairs: s.Pairs}
	out.Tables = append([]Table(nil), s.Tables...)
	t := out.Tables[ti]
	end := off + n
	if end > len(t.Rows) {
		end = len(t.Rows)
	}
	rows := make([]storage.Tuple, 0, len(t.Rows)-(end-off))
	rows = append(rows, t.Rows[:off]...)
	rows = append(rows, t.Rows[end:]...)
	t.Rows = rows
	out.Tables[ti] = t
	return out
}

// replayDetail re-runs a violation's specific check against a fresh
// engine loaded with the scenario, returning the (possibly different)
// failure detail, or "" when the check now passes. Network-only checks
// are replayed through the in-process path under the same strategy: a
// genuine logic bug reproduces there too, a wire-layer divergence does
// not (and then resists shrinking).
func replayDetail(s *Scenario, v *Violation, underTest engine.Strategy) string {
	if underTest == engine.NestedIteration {
		underTest = engine.TransformJA2
	}
	db := engine.New(64)
	for _, t := range s.Tables {
		if err := db.CreateRelation(t.relation(), 0); err != nil {
			return ""
		}
		if len(t.Rows) > 0 {
			if err := db.Insert(t.Name, t.Rows...); err != nil {
				return ""
			}
		}
		if err := db.Seal(t.Name); err != nil {
			return ""
		}
	}
	run := func(sql, regime string) (runResult, bool) {
		opts := engine.Options{Strategy: underTest}
		switch regime {
		case RegimeNI:
			opts.Strategy = engine.NestedIteration
		case RegimePar:
			opts.Planner = planner.Options{Parallelism: 2, ForceParallel: true}
		}
		res, err := db.Query(sql, opts)
		if err != nil {
			return runResult{}, false
		}
		return runResult{rows: res.Rows, fellBack: res.FellBack}, true
	}
	pair := v.Pair
	switch v.Check {
	case "relation":
		regime := v.Regime
		if regime == RegimeNet {
			regime = RegimeSeq
		}
		rows := make([][]storage.Tuple, len(pair.Queries))
		mixed := false
		var first bool
		for qi, q := range pair.Queries {
			rr, ok := run(q.SQL, regime)
			if !ok {
				return ""
			}
			rows[qi] = rr.rows
			if qi == 0 {
				first = rr.fellBack
			} else if rr.fellBack != first {
				mixed = true
			}
		}
		if mixed {
			return pair.CheckRelaxed(rows...)
		}
		return pair.Check(rows...)
	case "roundtrip":
		q := pair.Queries[v.QueryIndex]
		if q.HasAll {
			return ""
		}
		seq, ok1 := run(q.SQL, RegimeSeq)
		ni, ok2 := run(q.SQL, RegimeNI)
		if !ok1 || !ok2 {
			return ""
		}
		return equalBags(setOf(seq.rows), setOf(ni.rows))
	case "parity", "netparity":
		q := pair.Queries[v.QueryIndex]
		seq, ok1 := run(q.SQL, RegimeSeq)
		par, ok2 := run(q.SQL, RegimePar)
		if !ok1 || !ok2 {
			return ""
		}
		return equalBags(bagOf(seq.rows), bagOf(par.rows))
	default:
		return ""
	}
}
