package spill

import (
	"errors"
	"io"
	"os"
	"testing"

	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

func date(t *testing.T, s string) value.Value {
	t.Helper()
	d, err := value.ParseDate(s)
	if err != nil {
		t.Fatalf("ParseDate(%q): %v", s, err)
	}
	return value.NewDateValue(d)
}

// testRows covers every value kind, including edge values the varint
// and float encodings must round-trip exactly.
func testRows(t *testing.T) []storage.Tuple {
	return []storage.Tuple{
		{value.NewInt(0), value.NewString(""), value.Null},
		{value.NewInt(-1), value.NewString("hello"), value.NewFloat(3.25)},
		{value.NewInt(1<<62 - 1), value.NewString("a|b,c\nd"), value.NewFloat(-0.0)},
		{value.Null, value.Null, value.Null},
		{value.NewInt(42), date(t, "7-3-79"), value.NewFloat(1e300)},
	}
}

func newTestSession(t *testing.T) (*Manager, *Session) {
	t.Helper()
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return m, m.NewSession("q1")
}

func writeRun(t *testing.T, s *Session, rows []storage.Tuple) *Run {
	t.Helper()
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func readAll(run *Run) ([]storage.Tuple, error) {
	rd, err := run.Open()
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var out []storage.Tuple
	for {
		row, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, row)
	}
}

func TestRoundTrip(t *testing.T) {
	_, s := newTestSession(t)
	defer s.Close()
	rows := testRows(t)
	run := writeRun(t, s, rows)
	if run.Tuples != len(rows) {
		t.Fatalf("run.Tuples = %d, want %d", run.Tuples, len(rows))
	}
	// Runs are re-readable: merge join re-opens its group run once per
	// duplicate outer key.
	for pass := 0; pass < 2; pass++ {
		got, err := readAll(run)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if len(got) != len(rows) {
			t.Fatalf("pass %d: %d rows, want %d", pass, len(got), len(rows))
		}
		for i := range rows {
			if len(got[i]) != len(rows[i]) {
				t.Fatalf("row %d: %d cols, want %d", i, len(got[i]), len(rows[i]))
			}
			for j := range rows[i] {
				if got[i][j].Kind() != rows[i][j].Kind() || got[i][j].String() != rows[i][j].String() {
					t.Fatalf("row %d col %d: got %v, want %v", i, j, got[i][j], rows[i][j])
				}
			}
		}
	}
}

// TestEveryByteFlipDetected is the checksum's contract: flipping any
// single bit of a run file must surface as a typed ErrSpillCorrupt on
// read-back — never as silently wrong rows.
func TestEveryByteFlipDetected(t *testing.T) {
	_, s := newTestSession(t)
	defer s.Close()
	run := writeRun(t, s, testRows(t))
	orig, err := os.ReadFile(run.path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range orig {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(run.path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := readAll(run)
		if err == nil {
			t.Fatalf("byte %d flipped: read-back succeeded", pos)
		}
		if !errors.Is(err, qctx.ErrSpillCorrupt) {
			t.Fatalf("byte %d flipped: error %v is not ErrSpillCorrupt", pos, err)
		}
	}
}

// TestTruncation: a mid-record truncation is corruption; a truncation
// exactly at a record boundary reads back clean but short — operators
// that know their expected row count (merge join groups) catch that
// case themselves.
func TestTruncation(t *testing.T) {
	_, s := newTestSession(t)
	defer s.Close()
	run := writeRun(t, s, testRows(t))
	orig, err := os.ReadFile(run.path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(orig); cut++ {
		if err := os.WriteFile(run.path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rows, err := readAll(run)
		if err == nil {
			if len(rows) >= run.Tuples {
				t.Fatalf("cut %d: full read from truncated file", cut)
			}
			continue // boundary truncation: clean but short
		}
		if !errors.Is(err, qctx.ErrSpillCorrupt) {
			t.Fatalf("cut %d: error %v is not ErrSpillCorrupt", cut, err)
		}
	}
}

func TestSessionCloseRemovesFiles(t *testing.T) {
	m, s := newTestSession(t)
	writeRun(t, s, testRows(t))
	writeRun(t, s, testRows(t))
	if n, _ := m.LiveFiles(); n != 2 {
		t.Fatalf("LiveFiles = %d, want 2", n)
	}
	s.Close()
	s.Close() // idempotent
	if n, _ := m.LiveFiles(); n != 0 {
		t.Fatalf("LiveFiles after Close = %d, want 0", n)
	}
}

func TestRunRemoveAndWriterAbort(t *testing.T) {
	m, s := newTestSession(t)
	defer s.Close()
	run := writeRun(t, s, testRows(t))
	run.Remove()
	run.Remove() // idempotent
	if n, _ := m.LiveFiles(); n != 0 {
		t.Fatalf("LiveFiles after Remove = %d, want 0", n)
	}
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(storage.Tuple{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if n, _ := m.LiveFiles(); n != 0 {
		t.Fatalf("LiveFiles after Abort = %d, want 0", n)
	}
}

func TestStatsFold(t *testing.T) {
	m, s := newTestSession(t)
	defer s.Close()
	run := writeRun(t, s, testRows(t))
	ss, ms := s.Stats(), m.Stats()
	if ss.Runs != 1 || ss.Bytes != run.Bytes || ss.Bytes == 0 {
		t.Fatalf("session stats = %+v, want 1 run of %d bytes", ss, run.Bytes)
	}
	if ms != ss {
		t.Fatalf("manager stats %+v != session stats %+v", ms, ss)
	}
	// A second session folds into the same manager counters.
	s2 := m.NewSession("q2")
	defer s2.Close()
	writeRun(t, s2, testRows(t))
	if got := m.Stats(); got.Runs != 2 || got.Bytes != 2*run.Bytes {
		t.Fatalf("manager stats after 2 runs = %+v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var m *Manager
	var s *Session
	if m.Dir() != "" || m.Stats() != (Stats{}) {
		t.Fatal("nil manager not inert")
	}
	if n, err := m.LiveFiles(); n != 0 || err != nil {
		t.Fatal("nil manager LiveFiles not inert")
	}
	if m.NewSession("x") != nil {
		t.Fatal("nil manager NewSession != nil")
	}
	if s.Enabled() || s.Stats() != (Stats{}) {
		t.Fatal("nil session not inert")
	}
	s.Close()
	if _, err := s.NewWriter(); err == nil {
		t.Fatal("nil session NewWriter should error")
	}
}

func TestInjectedWriteAndReadFaults(t *testing.T) {
	m, s := newTestSession(t)
	defer s.Close()
	m.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, WriteError: 1}))
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append(storage.Tuple{value.NewInt(1)})
	if !errors.Is(err, storage.ErrInjectedFault) || !qctx.Retryable(err) {
		t.Fatalf("write fault = %v, want retryable injected fault", err)
	}
	w.Abort()

	m.SetFaultInjector(nil)
	run := writeRun(t, s, testRows(t))
	m.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 2, ReadError: 1}))
	_, err = readAll(run)
	if !errors.Is(err, storage.ErrInjectedFault) || !qctx.Retryable(err) {
		t.Fatalf("read fault = %v, want retryable injected fault", err)
	}
	m.SetFaultInjector(nil)
	if _, err := readAll(run); err != nil {
		t.Fatalf("clean read after removing injector: %v", err)
	}
}

func TestInjectedCorruptionCaughtByChecksum(t *testing.T) {
	m, s := newTestSession(t)
	defer s.Close()
	inj := NewFaultInjector(FaultConfig{Seed: 3, Corrupt: 1})
	m.SetFaultInjector(inj)
	run := writeRun(t, s, testRows(t))
	m.SetFaultInjector(nil)
	_, err := readAll(run)
	if !errors.Is(err, qctx.ErrSpillCorrupt) {
		t.Fatalf("corrupted run read = %v, want ErrSpillCorrupt", err)
	}
	if !qctx.Retryable(err) {
		t.Fatalf("spill corruption should be retryable, got %v", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("injector reported no faults")
	}
}

func TestMaxFaultsBound(t *testing.T) {
	m, s := newTestSession(t)
	defer s.Close()
	inj := NewFaultInjector(FaultConfig{Seed: 4, WriteError: 1, MaxFaults: 2})
	m.SetFaultInjector(inj)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	for i := 0; i < 50; i++ {
		if err := w.Append(storage.Tuple{value.NewInt(int64(i))}); err != nil {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("injected %d faults, want exactly MaxFaults=2", faults)
	}
	w.Abort()
}
