// Package spill is the run-file manager behind graceful degradation
// under memory pressure: when a buffering operator (hash join build,
// hash aggregation, sort) cannot reserve budget for its working set, it
// writes row runs to disk through this package and streams them back
// later, so the query degrades to slower-but-correct instead of dying
// with qctx.ErrMemoryBudget.
//
// Run files are sequences of checksummed records, reusing the wire
// protocol's codec shape (internal/wire): each record is a uint32
// big-endian payload length, the payload, and a uint32 big-endian
// CRC32C of the payload; the payload is a uvarint column count followed
// by one kind-tagged value per column. Any corruption — a flipped bit,
// a short write, a truncated tail — surfaces as a typed error wrapping
// qctx.ErrSpillCorrupt, never as wrong rows.
//
// Lifecycle: a Manager owns the spill directory and the cumulative
// counters; each query gets a Session namespaced by query id (mirroring
// the TEMPn#qN temp-table scheme). Operators create runs through the
// session and drop them eagerly when consumed; Session.Close removes
// everything that survived — on success, cancel, timeout, or panic
// alike — so a query can never leak spill files.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/qctx"
	"repro/internal/rowcodec"
	"repro/internal/storage"
)

// castagnoli is the CRC32C table, the same polynomial the wire protocol
// frames use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordLen caps one encoded row. Anything larger in a length prefix
// is treated as corruption rather than attempted as an allocation.
const maxRecordLen = 1 << 28

// Stats counts spill activity: run files written and payload bytes in
// them. Per-query sessions and the manager both expose a snapshot.
type Stats struct {
	Runs  int64
	Bytes int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d spill runs, %d bytes", s.Runs, s.Bytes)
}

// Manager owns one spill directory and the cumulative counters across
// every query that spilled into it. All methods are safe for concurrent
// use; a nil Manager is inert.
type Manager struct {
	dir   string
	seq   atomic.Int64
	runs  atomic.Int64
	bytes atomic.Int64
	inj   atomic.Pointer[FaultInjector]
}

// NewManager creates (if needed) the spill directory and returns a
// manager rooted there.
func NewManager(dir string) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("spill: empty spill directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// Dir reports the spill directory.
func (m *Manager) Dir() string {
	if m == nil {
		return ""
	}
	return m.dir
}

// Stats snapshots the cumulative counters. Safe on nil.
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{Runs: m.runs.Load(), Bytes: m.bytes.Load()}
}

// SetFaultInjector installs (or, with nil, removes) a seeded fault
// injector on every subsequent spill read and write. Tests only.
func (m *Manager) SetFaultInjector(inj *FaultInjector) {
	if m != nil {
		m.inj.Store(inj)
	}
}

// LiveFiles counts the files currently present in the spill directory —
// the leak-check invariant is zero once no query is in flight.
func (m *Manager) LiveFiles() (int, error) {
	if m == nil {
		return 0, nil
	}
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() {
			n++
		}
	}
	return n, nil
}

// NewSession opens a per-query spill namespace; name is the query tag
// (for example "q17", matching the TEMPn#q17 temp-table suffix). Safe on
// a nil manager, which returns a nil (inert) session.
func (m *Manager) NewSession(name string) *Session {
	if m == nil {
		return nil
	}
	return &Session{m: m, name: name, files: make(map[string]struct{})}
}

// Session tracks every run file one query creates so that Close can
// remove whatever the operators have not already dropped — the backstop
// that makes cancel, timeout, and panic paths leak-free. A nil Session
// means "spilling disabled" and every method is a safe no-op; operators
// only consult it after qctx.ReserveBuffered refuses a reservation.
type Session struct {
	m    *Manager
	name string

	runs  atomic.Int64
	bytes atomic.Int64

	mu     sync.Mutex
	files  map[string]struct{}
	closed bool
}

// Enabled reports whether spilling is available (non-nil session).
func (s *Session) Enabled() bool { return s != nil }

// Stats snapshots this query's spill counters. Safe on nil.
func (s *Session) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{Runs: s.runs.Load(), Bytes: s.bytes.Load()}
}

// Close removes every run file the session still tracks. Idempotent,
// safe on nil, and safe to race with operator Close paths (double
// removes are ignored).
func (s *Session) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	paths := make([]string, 0, len(s.files))
	for p := range s.files {
		paths = append(paths, p)
	}
	s.files = nil
	s.mu.Unlock()
	for _, p := range paths {
		os.Remove(p)
	}
}

// track registers a newly-created file; forget stops tracking one that
// an operator removed eagerly.
func (s *Session) track(path string) {
	s.mu.Lock()
	if !s.closed {
		s.files[path] = struct{}{}
	}
	s.mu.Unlock()
}

func (s *Session) forget(path string) {
	s.mu.Lock()
	if !s.closed {
		delete(s.files, path)
	}
	s.mu.Unlock()
}

// NewWriter opens a new run file for writing. The caller must call
// Finish (keeping the run) or Abort (discarding it) exactly once.
func (s *Session) NewWriter() (*Writer, error) {
	if s == nil {
		return nil, fmt.Errorf("spill: no spill session")
	}
	path := filepath.Join(s.m.dir, fmt.Sprintf("%s-%d.run", s.name, s.m.seq.Add(1)))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	s.track(path)
	return &Writer{s: s, f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path}, nil
}

// Writer appends encoded, checksummed rows to one run file.
type Writer struct {
	s       *Session
	f       *os.File
	bw      *bufio.Writer
	path    string
	tuples  int
	bytes   int64
	scratch []byte
}

// Append encodes and writes one row.
func (w *Writer) Append(t storage.Tuple) error {
	if inj := w.s.m.inj.Load(); inj != nil {
		if err := inj.onWrite(w.path); err != nil {
			return err
		}
	}
	payload := rowcodec.AppendTuple(w.scratch[:0], t)
	w.scratch = payload // reuse the allocation across rows
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	sum := crc32.Checksum(payload, castagnoli)
	if inj := w.s.m.inj.Load(); inj != nil && len(payload) > 0 && inj.corruptRoll() {
		// Corruption fault: flip one payload byte after the checksum was
		// taken, so the reader's CRC verification must catch it.
		payload[len(payload)/2] ^= 0x40
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], sum)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("spill: write %s: %w", w.path, err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("spill: write %s: %w", w.path, err)
	}
	if _, err := w.bw.Write(crc[:]); err != nil {
		return fmt.Errorf("spill: write %s: %w", w.path, err)
	}
	w.tuples++
	w.bytes += int64(len(payload) + 8)
	return nil
}

// Finish flushes and closes the file, returning the completed run and
// folding its size into the session and manager counters.
func (w *Writer) Finish() (*Run, error) {
	if inj := w.s.m.inj.Load(); inj != nil {
		if err := inj.onWrite(w.path); err != nil {
			w.f.Close()
			return nil, err
		}
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return nil, fmt.Errorf("spill: flush %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("spill: close %s: %w", w.path, err)
	}
	w.s.runs.Add(1)
	w.s.bytes.Add(w.bytes)
	w.s.m.runs.Add(1)
	w.s.m.bytes.Add(w.bytes)
	return &Run{s: w.s, path: w.path, Tuples: w.tuples, Bytes: w.bytes}, nil
}

// Abort discards the half-written run.
func (w *Writer) Abort() {
	w.f.Close()
	os.Remove(w.path)
	w.s.forget(w.path)
}

// Run is one completed, immutable run file. It can be opened for
// reading any number of times (merge-join groups re-read theirs once
// per duplicate outer key).
type Run struct {
	s      *Session
	path   string
	Tuples int
	Bytes  int64
}

// Open starts a sequential scan of the run.
func (r *Run) Open() (*Reader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Reader{r: r, f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

// Remove deletes the run file eagerly (the session Close would get it
// anyway; eager removal keeps disk usage proportional to the live
// working set). Idempotent.
func (r *Run) Remove() {
	os.Remove(r.path)
	r.s.forget(r.path)
}

// Reader streams a run back. Next returns io.EOF cleanly at the end of
// the run; any checksum mismatch, impossible length, or mid-record
// truncation returns an error wrapping qctx.ErrSpillCorrupt.
type Reader struct {
	r   *Run
	f   *os.File
	br  *bufio.Reader
	buf []byte
}

// Next decodes the next row.
func (rd *Reader) Next() (storage.Tuple, error) {
	if inj := rd.r.s.m.inj.Load(); inj != nil {
		if err := inj.onRead(rd.r.path); err != nil {
			return nil, err
		}
	}
	var hdr [4]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, corruptf(rd.r.path, "truncated record header")
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxRecordLen {
		return nil, corruptf(rd.r.path, "impossible record length %d", n)
	}
	if cap(rd.buf) < int(n)+4 {
		rd.buf = make([]byte, int(n)+4)
	}
	buf := rd.buf[:int(n)+4]
	if _, err := io.ReadFull(rd.br, buf); err != nil {
		return nil, corruptf(rd.r.path, "truncated record body")
	}
	payload, crc := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, corruptf(rd.r.path, "checksum mismatch")
	}
	t, err := rowcodec.DecodeTuple(payload)
	if err != nil {
		return nil, corruptf(rd.r.path, "%v", err)
	}
	return t, nil
}

// Close releases the file handle.
func (rd *Reader) Close() error { return rd.f.Close() }

func corruptf(path, format string, args ...any) error {
	return fmt.Errorf("spill: run %s: %s: %w", filepath.Base(path), fmt.Sprintf(format, args...), qctx.ErrSpillCorrupt)
}

// The tuple payload encoding lives in internal/rowcodec and is shared
// with the write-ahead log, so a row that round-trips through a spill
// run round-trips through a WAL record too.
