// Seeded fault injection for spill I/O, the internal/storage/fault.go
// idea carried to run files. Unlike the storage injector — which panics
// through the iterator stack because page reads have no error return —
// spill I/O is plumbed with errors end to end, so faults here are
// returned: write and read errors wrap storage.ErrInjectedFault (the
// transient, retryable family), and corruption faults flip a payload
// byte after the checksum is taken so the Reader's CRC verification
// must surface qctx.ErrSpillCorrupt. A run that decodes wrong rows
// instead of erroring is a test failure, never a degraded result.
package spill

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// FaultConfig sets seeded per-operation fault probabilities.
type FaultConfig struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// WriteError is the probability a spill write (or flush) fails with
	// a transient injected error.
	WriteError float64
	// ReadError is the probability a spill read fails with a transient
	// injected error.
	ReadError float64
	// Corrupt is the probability one written record is corrupted on
	// disk (a flipped payload byte the checksum must catch).
	Corrupt float64
	// MaxFaults bounds the total injected faults; 0 means unlimited.
	MaxFaults int64
}

// FaultInjector injects the configured faults. Install it on a Manager
// with SetFaultInjector. Safe for concurrent use.
type FaultInjector struct {
	cfg      FaultConfig
	mu       sync.Mutex
	rng      *rand.Rand
	injected atomic.Int64
}

// NewFaultInjector builds a seeded injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected reports how many faults fired — the chaos suites' teeth
// check.
func (fi *FaultInjector) Injected() int64 { return fi.injected.Load() }

// roll draws one seeded Bernoulli trial, honoring MaxFaults.
func (fi *FaultInjector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	fi.mu.Lock()
	hit := fi.rng.Float64() < p
	fi.mu.Unlock()
	if !hit {
		return false
	}
	if fi.cfg.MaxFaults > 0 && fi.injected.Load() >= fi.cfg.MaxFaults {
		return false
	}
	fi.injected.Add(1)
	return true
}

func (fi *FaultInjector) onWrite(path string) error {
	if fi.roll(fi.cfg.WriteError) {
		return fmt.Errorf("spill: injected write fault on %s: %w", path, storage.ErrInjectedFault)
	}
	return nil
}

func (fi *FaultInjector) onRead(path string) error {
	if fi.roll(fi.cfg.ReadError) {
		return fmt.Errorf("spill: injected read fault on %s: %w", path, storage.ErrInjectedFault)
	}
	return nil
}

func (fi *FaultInjector) corruptRoll() bool { return fi.roll(fi.cfg.Corrupt) }
