package ast

import "strings"

// Free-variable analysis. A subquery is correlated exactly when some
// column reference inside it binds to a FROM clause outside it — the
// paper's "join predicate which references the relation of an outer query
// block". This analysis requires a resolved tree (every reference
// qualified by its binding, as produced by schema.Resolve); unqualified
// references are treated as local.

// FreeRefs returns the column references anywhere inside the block subtree
// whose table binding is not defined by the subtree itself. Each reference
// is reported once per occurrence, in traversal order.
func FreeRefs(qb *QueryBlock) []ColumnRef {
	var out []ColumnRef
	collectFree(qb, nil, &out)
	return out
}

func collectFree(qb *QueryBlock, visible []string, out *[]ColumnRef) {
	vis := append(visible, qb.Bindings()...)
	for _, ref := range qb.LocalColumnRefs() {
		if ref.Table == "" {
			continue
		}
		bound := false
		for _, b := range vis {
			if strings.EqualFold(b, ref.Table) {
				bound = true
				break
			}
		}
		if !bound {
			*out = append(*out, ref)
		}
	}
	for _, p := range qb.Where {
		for _, sub := range SubqueriesOf(p) {
			collectFree(sub, vis, out)
		}
	}
}

// SubqueriesOf returns every nested query block inside a predicate,
// descending through OR, AND, and NOT.
func SubqueriesOf(p Predicate) []*QueryBlock {
	switch p := p.(type) {
	case *OrPred:
		return append(SubqueriesOf(p.Left), SubqueriesOf(p.Right)...)
	case *AndPred:
		return append(SubqueriesOf(p.Left), SubqueriesOf(p.Right)...)
	case *NotPred:
		return SubqueriesOf(p.P)
	case *Comparison:
		var out []*QueryBlock
		if sq, ok := p.Left.(*Subquery); ok {
			out = append(out, sq.Block)
		}
		if sq, ok := p.Right.(*Subquery); ok {
			out = append(out, sq.Block)
		}
		return out
	default:
		if sub := SubqueryOf(p); sub != nil {
			return []*QueryBlock{sub}
		}
		return nil
	}
}

// IsCorrelated reports whether the block subtree references any binding
// defined outside it. An uncorrelated subquery can be evaluated once,
// independently of the outer block (Kim's type-A and type-N nesting);
// a correlated one is type-J or type-JA.
func IsCorrelated(qb *QueryBlock) bool { return len(FreeRefs(qb)) > 0 }
