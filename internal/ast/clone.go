package ast

// Deep cloning. The transformation algorithms are rewrites that must not
// alias mutable state with the input query: the engine keeps the original
// AST to run nested iteration (the semantic baseline) side by side with the
// transformed form, so transforms always work on a clone.

// Clone returns a deep copy of the query block tree.
func (qb *QueryBlock) Clone() *QueryBlock {
	if qb == nil {
		return nil
	}
	out := &QueryBlock{
		Distinct: qb.Distinct,
		Select:   append([]SelectItem(nil), qb.Select...),
		From:     append([]TableRef(nil), qb.From...),
		GroupBy:  append([]ColumnRef(nil), qb.GroupBy...),
		Having:   append([]HavingPred(nil), qb.Having...),
		OrderBy:  append([]OrderItem(nil), qb.OrderBy...),
	}
	if qb.Where != nil {
		out.Where = make([]Predicate, len(qb.Where))
		for i, p := range qb.Where {
			out.Where[i] = ClonePredicate(p)
		}
	}
	return out
}

// ClonePredicate returns a deep copy of a predicate.
func ClonePredicate(p Predicate) Predicate {
	switch p := p.(type) {
	case *Comparison:
		return &Comparison{
			Left:      CloneExpr(p.Left),
			Op:        p.Op,
			Right:     CloneExpr(p.Right),
			LeftOuter: p.LeftOuter,
		}
	case *InPred:
		return &InPred{Left: CloneExpr(p.Left), Sub: p.Sub.Clone(), Negated: p.Negated}
	case *ExistsPred:
		return &ExistsPred{Sub: p.Sub.Clone(), Negated: p.Negated}
	case *QuantPred:
		return &QuantPred{Left: CloneExpr(p.Left), Op: p.Op, Quant: p.Quant, Sub: p.Sub.Clone()}
	case *OrPred:
		return &OrPred{Left: ClonePredicate(p.Left), Right: ClonePredicate(p.Right)}
	case *AndPred:
		return &AndPred{Left: ClonePredicate(p.Left), Right: ClonePredicate(p.Right)}
	case *NotPred:
		return &NotPred{P: ClonePredicate(p.P)}
	default:
		panic("ast: unknown predicate type in ClonePredicate")
	}
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case ColumnRef:
		return e
	case Const:
		return e
	case *Subquery:
		return &Subquery{Block: e.Block.Clone()}
	default:
		panic("ast: unknown expression type in CloneExpr")
	}
}
