package ast

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// mkBlock builds SELECT S.A FROM S WHERE S.B = 1 by hand.
func mkBlock() *QueryBlock {
	return &QueryBlock{
		Select: []SelectItem{{Col: ColumnRef{Table: "S", Column: "A"}}},
		From:   []TableRef{{Relation: "S"}},
		Where: []Predicate{&Comparison{
			Left:  ColumnRef{Table: "S", Column: "B"},
			Op:    value.OpEq,
			Right: Const{Val: value.NewInt(1)},
		}},
	}
}

func TestStringForms(t *testing.T) {
	qb := mkBlock()
	if got := qb.String(); got != "SELECT S.A FROM S WHERE S.B = 1" {
		t.Errorf("String = %q", got)
	}
	qb.Distinct = true
	qb.GroupBy = []ColumnRef{{Table: "S", Column: "A"}}
	if got := qb.String(); got != "SELECT DISTINCT S.A FROM S WHERE S.B = 1 GROUP BY S.A" {
		t.Errorf("String = %q", got)
	}
}

func TestPredicateStrings(t *testing.T) {
	sub := mkBlock()
	x := ColumnRef{Column: "X"}
	cases := []struct {
		p    Predicate
		want string
	}{
		{&InPred{Left: x, Sub: sub}, "X IN (SELECT S.A FROM S WHERE S.B = 1)"},
		{&InPred{Left: x, Sub: sub, Negated: true}, "X NOT IN (SELECT S.A FROM S WHERE S.B = 1)"},
		{&ExistsPred{Sub: sub}, "EXISTS (SELECT S.A FROM S WHERE S.B = 1)"},
		{&ExistsPred{Sub: sub, Negated: true}, "NOT EXISTS (SELECT S.A FROM S WHERE S.B = 1)"},
		{&QuantPred{Left: x, Op: value.OpLt, Quant: Any, Sub: sub}, "X < ANY (SELECT S.A FROM S WHERE S.B = 1)"},
		{&QuantPred{Left: x, Op: value.OpGe, Quant: All, Sub: sub}, "X >= ALL (SELECT S.A FROM S WHERE S.B = 1)"},
		{&Comparison{Left: x, Op: value.OpEq, Right: ColumnRef{Column: "Y"}, LeftOuter: true}, "X =+ Y"},
		{&OrPred{Left: &Comparison{Left: x, Op: value.OpEq, Right: Const{Val: value.NewInt(1)}},
			Right: &Comparison{Left: x, Op: value.OpEq, Right: Const{Val: value.NewInt(2)}}},
			"(X = 1 OR X = 2)"},
		{&NotPred{P: &Comparison{Left: x, Op: value.OpEq, Right: Const{Val: value.NewInt(1)}}},
			"NOT (X = 1)"},
		{&AndPred{Left: &Comparison{Left: x, Op: value.OpEq, Right: Const{Val: value.NewInt(1)}},
			Right: &Comparison{Left: x, Op: value.OpEq, Right: Const{Val: value.NewInt(2)}}},
			"(X = 1 AND X = 2)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestSelectItemForms(t *testing.T) {
	cases := []struct {
		item SelectItem
		str  string
		name string
	}{
		{SelectItem{Col: ColumnRef{Column: "X"}}, "X", "X"},
		{SelectItem{Agg: value.AggMax, Col: ColumnRef{Column: "X"}}, "MAX(X)", "MAX"},
		{SelectItem{Agg: value.AggCountStar}, "COUNT(*)", "COUNT"},
		{SelectItem{Agg: value.AggCount, Col: ColumnRef{Column: "X"}, As: "CT"}, "COUNT(X) AS CT", "CT"},
	}
	for _, c := range cases {
		if got := c.item.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		if got := c.item.OutputName(); got != c.name {
			t.Errorf("OutputName = %q, want %q", got, c.name)
		}
	}
}

func TestTableRefBinding(t *testing.T) {
	if (TableRef{Relation: "S"}).Binding() != "S" {
		t.Error("default binding")
	}
	tr := TableRef{Relation: "S", Alias: "X"}
	if tr.Binding() != "X" || tr.String() != "S X" {
		t.Errorf("aliased binding: %s / %s", tr.Binding(), tr.String())
	}
}

func TestSubqueryOfAndNested(t *testing.T) {
	sub := mkBlock()
	preds := []Predicate{
		&InPred{Left: ColumnRef{Column: "X"}, Sub: sub},
		&ExistsPred{Sub: sub},
		&QuantPred{Left: ColumnRef{Column: "X"}, Sub: sub},
		&Comparison{Left: ColumnRef{Column: "X"}, Op: value.OpEq, Right: &Subquery{Block: sub}},
		&Comparison{Left: &Subquery{Block: sub}, Op: value.OpEq, Right: Const{Val: value.NewInt(1)}},
	}
	for _, p := range preds {
		if SubqueryOf(p) != sub || !IsNested(p) {
			t.Errorf("SubqueryOf(%T) failed", p)
		}
	}
	simple := &Comparison{Left: ColumnRef{Column: "X"}, Op: value.OpEq, Right: Const{Val: value.NewInt(1)}}
	if SubqueryOf(simple) != nil || IsNested(simple) {
		t.Error("simple comparison must not be nested")
	}
}

func TestSubqueriesOfDescends(t *testing.T) {
	sub1, sub2 := mkBlock(), mkBlock()
	p := &OrPred{
		Left:  &InPred{Left: ColumnRef{Column: "X"}, Sub: sub1},
		Right: &NotPred{P: &ExistsPred{Sub: sub2}},
	}
	subs := SubqueriesOf(p)
	if len(subs) != 2 || subs[0] != sub1 || subs[1] != sub2 {
		t.Errorf("SubqueriesOf = %v", subs)
	}
	both := &Comparison{Left: &Subquery{Block: sub1}, Op: value.OpEq, Right: &Subquery{Block: sub2}}
	if got := SubqueriesOf(both); len(got) != 2 {
		t.Errorf("two-sided comparison subqueries = %d", len(got))
	}
}

func TestVisitBlocksDepth(t *testing.T) {
	inner := mkBlock()
	outer := mkBlock()
	outer.Where = append(outer.Where, &InPred{Left: ColumnRef{Table: "S", Column: "A"}, Sub: inner})
	var depths []int
	VisitBlocks(outer, func(_ *QueryBlock, d int) bool {
		depths = append(depths, d)
		return true
	})
	if len(depths) != 2 || depths[0] != 0 || depths[1] != 1 {
		t.Errorf("depths = %v", depths)
	}
	if outer.MaxDepth() != 1 || inner.MaxDepth() != 0 {
		t.Errorf("MaxDepth = %d / %d", outer.MaxDepth(), inner.MaxDepth())
	}
	// Early stop.
	count := 0
	VisitBlocks(outer, func(_ *QueryBlock, _ int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestLocalColumnRefsAndRewrite(t *testing.T) {
	qb := mkBlock()
	qb.GroupBy = []ColumnRef{{Table: "S", Column: "A"}}
	refs := qb.LocalColumnRefs()
	if len(refs) != 3 { // select, group by, where-left
		t.Errorf("LocalColumnRefs = %v", refs)
	}
	qb.RewriteLocalColumns(func(c ColumnRef) ColumnRef {
		c.Table = "T"
		return c
	})
	if !strings.Contains(qb.String(), "T.A") || strings.Contains(qb.String(), "S.A") {
		t.Errorf("rewrite failed: %s", qb.String())
	}
}

func TestRewriteColumnsDeep(t *testing.T) {
	inner := mkBlock()
	outer := mkBlock()
	outer.Where = append(outer.Where, &InPred{Left: ColumnRef{Table: "S", Column: "A"}, Sub: inner})
	outer.RewriteColumnsDeep(func(c ColumnRef) ColumnRef {
		c.Column = "Z" + c.Column
		return c
	})
	if !strings.Contains(inner.String(), "S.ZA") {
		t.Errorf("deep rewrite missed inner block: %s", inner.String())
	}
}

func TestFreeRefs(t *testing.T) {
	inner := mkBlock()
	// Add a correlated reference: S.B = OUT.C where OUT is not in scope.
	inner.Where = append(inner.Where, &Comparison{
		Left:  ColumnRef{Table: "S", Column: "B"},
		Op:    value.OpEq,
		Right: ColumnRef{Table: "OUT", Column: "C"},
	})
	free := FreeRefs(inner)
	if len(free) != 1 || free[0] != (ColumnRef{Table: "OUT", Column: "C"}) {
		t.Errorf("FreeRefs = %v", free)
	}
	if !IsCorrelated(inner) {
		t.Error("IsCorrelated must be true")
	}
	// Binding case-insensitivity: "s" binds "S".
	inner2 := mkBlock()
	inner2.Where = append(inner2.Where, &Comparison{
		Left:  ColumnRef{Table: "s", Column: "B"},
		Op:    value.OpEq,
		Right: Const{Val: value.NewInt(1)},
	})
	if IsCorrelated(inner2) {
		t.Error("lower-case binding must not be free")
	}
	// Unqualified references are treated as local.
	inner3 := mkBlock()
	inner3.Where = append(inner3.Where, &Comparison{
		Left:  ColumnRef{Column: "B"},
		Op:    value.OpEq,
		Right: Const{Val: value.NewInt(1)},
	})
	if IsCorrelated(inner3) {
		t.Error("unqualified ref must not be free")
	}
}

func TestFreeRefsNestedScopes(t *testing.T) {
	// outer(S) -> mid(T) -> leaf references S: free w.r.t. mid, bound
	// w.r.t. outer.
	leaf := &QueryBlock{
		Select: []SelectItem{{Col: ColumnRef{Table: "U", Column: "A"}}},
		From:   []TableRef{{Relation: "U"}},
		Where: []Predicate{&Comparison{
			Left:  ColumnRef{Table: "U", Column: "B"},
			Op:    value.OpEq,
			Right: ColumnRef{Table: "S", Column: "B"},
		}},
	}
	mid := &QueryBlock{
		Select: []SelectItem{{Col: ColumnRef{Table: "T", Column: "A"}}},
		From:   []TableRef{{Relation: "T"}},
		Where:  []Predicate{&InPred{Left: ColumnRef{Table: "T", Column: "A"}, Sub: leaf}},
	}
	outer := mkBlock()
	outer.Where = append(outer.Where, &InPred{Left: ColumnRef{Table: "S", Column: "A"}, Sub: mid})
	if !IsCorrelated(mid) {
		t.Error("mid subtree references S and must be correlated")
	}
	if IsCorrelated(outer) {
		t.Error("whole tree has no free refs")
	}
}

func TestHasNestedPredicateAndBindings(t *testing.T) {
	qb := mkBlock()
	if qb.HasNestedPredicate() {
		t.Error("flat block")
	}
	qb.Where = append(qb.Where, &ExistsPred{Sub: mkBlock()})
	if !qb.HasNestedPredicate() {
		t.Error("nested predicate not detected")
	}
	qb.From = append(qb.From, TableRef{Relation: "T", Alias: "X"})
	if got := strings.Join(qb.Bindings(), ","); got != "S,X" {
		t.Errorf("Bindings = %v", got)
	}
}

func TestHasAggregateAndDisjunction(t *testing.T) {
	qb := mkBlock()
	if qb.HasAggregate() {
		t.Error("no aggregate yet")
	}
	qb.Select = append(qb.Select, SelectItem{Agg: value.AggCountStar})
	if !qb.HasAggregate() {
		t.Error("aggregate not detected")
	}
	if qb.HasDisjunction() {
		t.Error("no disjunction yet")
	}
	qb.Where = append(qb.Where, &OrPred{
		Left:  &Comparison{Left: ColumnRef{Column: "X"}, Op: value.OpEq, Right: Const{Val: value.NewInt(1)}},
		Right: &Comparison{Left: ColumnRef{Column: "X"}, Op: value.OpEq, Right: Const{Val: value.NewInt(2)}},
	})
	if !qb.HasDisjunction() {
		t.Error("disjunction not detected")
	}
}

func TestClonePanicsOnUnknownTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ClonePredicate must panic on unknown type")
		}
	}()
	ClonePredicate(nil)
}

func TestQuantifierString(t *testing.T) {
	if Any.String() != "ANY" || All.String() != "ALL" {
		t.Error("quantifier names")
	}
}

func TestCloneNil(t *testing.T) {
	var qb *QueryBlock
	if qb.Clone() != nil {
		t.Error("Clone(nil) must be nil")
	}
}

func TestPrettyAllPredicateForms(t *testing.T) {
	sub := mkBlock()
	qb := mkBlock()
	qb.Where = append(qb.Where,
		&InPred{Left: ColumnRef{Table: "S", Column: "A"}, Sub: sub.Clone()},
		&ExistsPred{Sub: sub.Clone(), Negated: true},
		&QuantPred{Left: ColumnRef{Table: "S", Column: "A"}, Op: value.OpLt, Quant: All, Sub: sub.Clone()},
		&Comparison{Left: ColumnRef{Table: "S", Column: "A"}, Op: value.OpEq, Right: &Subquery{Block: sub.Clone()}},
	)
	qb.OrderBy = []OrderItem{{Col: ColumnRef{Table: "S", Column: "A"}, Desc: true}}
	pretty := qb.Pretty()
	for _, frag := range []string{"IN (", "NOT EXISTS (", "< ALL (", "= (", "ORDER BY S.A DESC"} {
		if !strings.Contains(pretty, frag) {
			t.Errorf("Pretty missing %q:\n%s", frag, pretty)
		}
	}
	// Subquery on the left renders through the generic path.
	qb2 := mkBlock()
	qb2.Where = []Predicate{
		&Comparison{Left: &Subquery{Block: sub.Clone()}, Op: value.OpEq, Right: Const{Val: value.NewInt(0)}},
	}
	if !strings.Contains(qb2.Pretty(), "(SELECT") {
		t.Errorf("left-subquery Pretty:\n%s", qb2.Pretty())
	}
}

func TestCloneCoversOrderBy(t *testing.T) {
	qb := mkBlock()
	qb.OrderBy = []OrderItem{{Col: ColumnRef{Table: "S", Column: "A"}}}
	c := qb.Clone()
	c.OrderBy[0].Desc = true
	if qb.OrderBy[0].Desc {
		t.Error("Clone shares OrderBy backing array")
	}
}
