package ast

import "repro/internal/value"

// Traversal and rewrite helpers shared by resolution, classification, and
// the transformation algorithms.

// VisitBlocks walks the query block tree in preorder, calling fn for each
// block together with its nesting depth (0 for the root). Returning false
// from fn stops descent into that block's children.
func VisitBlocks(qb *QueryBlock, fn func(b *QueryBlock, depth int) bool) {
	visitBlocks(qb, 0, fn)
}

func visitBlocks(qb *QueryBlock, depth int, fn func(b *QueryBlock, depth int) bool) {
	if qb == nil || !fn(qb, depth) {
		return
	}
	for _, p := range qb.Where {
		visitPredBlocks(p, depth, fn)
	}
}

func visitPredBlocks(p Predicate, depth int, fn func(b *QueryBlock, depth int) bool) {
	switch p := p.(type) {
	case *OrPred:
		visitPredBlocks(p.Left, depth, fn)
		visitPredBlocks(p.Right, depth, fn)
	case *AndPred:
		visitPredBlocks(p.Left, depth, fn)
		visitPredBlocks(p.Right, depth, fn)
	case *NotPred:
		visitPredBlocks(p.P, depth, fn)
	default:
		if sub := SubqueryOf(p); sub != nil {
			visitBlocks(sub, depth+1, fn)
		}
	}
}

// MaxDepth returns the nesting depth of the query: 0 for a flat query, 1
// for a single level of nesting, and so on.
func (qb *QueryBlock) MaxDepth() int {
	max := 0
	VisitBlocks(qb, func(_ *QueryBlock, d int) bool {
		if d > max {
			max = d
		}
		return true
	})
	return max
}

// LocalColumnRefs returns every column reference that belongs to the block
// itself: its SELECT items, GROUP BY columns, and the scalar sides of its
// WHERE conjuncts — not the contents of nested query blocks, which have
// their own scopes.
func (qb *QueryBlock) LocalColumnRefs() []ColumnRef {
	var out []ColumnRef
	for _, s := range qb.Select {
		if s.Agg != value.AggCountStar && s.Col != (ColumnRef{}) {
			out = append(out, s.Col)
		}
	}
	out = append(out, qb.GroupBy...)
	for _, p := range qb.Where {
		out = append(out, predLocalRefs(p)...)
	}
	return out
}

func predLocalRefs(p Predicate) []ColumnRef {
	var out []ColumnRef
	switch p := p.(type) {
	case *Comparison:
		out = append(out, exprRefs(p.Left)...)
		out = append(out, exprRefs(p.Right)...)
	case *InPred:
		out = append(out, exprRefs(p.Left)...)
	case *QuantPred:
		out = append(out, exprRefs(p.Left)...)
	case *ExistsPred:
		// no scalar side
	case *OrPred:
		out = append(out, predLocalRefs(p.Left)...)
		out = append(out, predLocalRefs(p.Right)...)
	case *AndPred:
		out = append(out, predLocalRefs(p.Left)...)
		out = append(out, predLocalRefs(p.Right)...)
	case *NotPred:
		out = append(out, predLocalRefs(p.P)...)
	}
	return out
}

func exprRefs(e Expr) []ColumnRef {
	if c, ok := e.(ColumnRef); ok {
		return []ColumnRef{c}
	}
	return nil
}

// RewriteLocalColumns applies fn to every column reference local to the
// block (see LocalColumnRefs), replacing each with fn's result. Nested
// blocks are left untouched.
func (qb *QueryBlock) RewriteLocalColumns(fn func(ColumnRef) ColumnRef) {
	for i := range qb.Select {
		if qb.Select[i].Agg != value.AggCountStar && qb.Select[i].Col != (ColumnRef{}) {
			qb.Select[i].Col = fn(qb.Select[i].Col)
		}
	}
	for i := range qb.GroupBy {
		qb.GroupBy[i] = fn(qb.GroupBy[i])
	}
	for _, p := range qb.Where {
		rewritePredLocal(p, fn)
	}
}

func rewritePredLocal(p Predicate, fn func(ColumnRef) ColumnRef) {
	switch p := p.(type) {
	case *Comparison:
		p.Left = rewriteExpr(p.Left, fn)
		p.Right = rewriteExpr(p.Right, fn)
	case *InPred:
		p.Left = rewriteExpr(p.Left, fn)
	case *QuantPred:
		p.Left = rewriteExpr(p.Left, fn)
	case *OrPred:
		rewritePredLocal(p.Left, fn)
		rewritePredLocal(p.Right, fn)
	case *AndPred:
		rewritePredLocal(p.Left, fn)
		rewritePredLocal(p.Right, fn)
	case *NotPred:
		rewritePredLocal(p.P, fn)
	}
}

func rewriteExpr(e Expr, fn func(ColumnRef) ColumnRef) Expr {
	if c, ok := e.(ColumnRef); ok {
		return fn(c)
	}
	return e
}

// RewriteColumnsDeep applies fn to every column reference in the block and
// in all nested blocks. The NEST-N-J transformer uses it to rename
// references after aliasing a merged table whose name collides with one
// already present in the combined FROM clause.
func (qb *QueryBlock) RewriteColumnsDeep(fn func(ColumnRef) ColumnRef) {
	VisitBlocks(qb, func(b *QueryBlock, _ int) bool {
		b.RewriteLocalColumns(fn)
		return true
	})
}

// HasDisjunction reports whether any WHERE conjunct (at this block level)
// contains OR or NOT, which the transformation algorithms cannot handle.
func (qb *QueryBlock) HasDisjunction() bool {
	for _, p := range qb.Where {
		if predHasDisjunction(p) {
			return true
		}
	}
	return false
}

func predHasDisjunction(p Predicate) bool {
	switch p.(type) {
	case *OrPred, *NotPred, *AndPred:
		return true
	}
	return false
}
