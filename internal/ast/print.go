package ast

import (
	"strings"

	"repro/internal/value"
)

// This file renders AST nodes back to SQL text. The output is used by
// EXPLAIN traces (the paper presents every transformation as SQL text, and
// our traces mirror its presentation), by error messages, and by tests that
// check transformations produce exactly the queries the paper prints.

// String renders the column reference, qualified if it has a table binding.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// String renders the literal.
func (c Const) String() string { return c.Val.String() }

// String renders the subquery in parentheses.
func (s *Subquery) String() string { return "(" + s.Block.String() + ")" }

// String renders the select item.
func (s SelectItem) String() string {
	var b strings.Builder
	switch {
	case s.Agg == value.AggCountStar:
		b.WriteString("COUNT(*)")
	case s.Agg != value.AggNone:
		b.WriteString(s.Agg.String())
		b.WriteByte('(')
		b.WriteString(s.Col.String())
		b.WriteByte(')')
	default:
		b.WriteString(s.Col.String())
	}
	if s.As != "" {
		b.WriteString(" AS ")
		b.WriteString(s.As)
	}
	return b.String()
}

// String renders the table reference.
func (t TableRef) String() string {
	if t.Alias != "" && t.Alias != t.Relation {
		return t.Relation + " " + t.Alias
	}
	return t.Relation
}

// String renders the comparison; the outer-join form uses the paper's "=+"
// style operator suffix (section 5.2).
func (c *Comparison) String() string {
	op := c.Op.String()
	if c.LeftOuter {
		op += "+"
	}
	return c.Left.String() + " " + op + " " + c.Right.String()
}

// String renders the IN predicate.
func (p *InPred) String() string {
	neg := ""
	if p.Negated {
		neg = "NOT "
	}
	return p.Left.String() + " " + neg + "IN (" + p.Sub.String() + ")"
}

// String renders the EXISTS predicate.
func (p *ExistsPred) String() string {
	neg := ""
	if p.Negated {
		neg = "NOT "
	}
	return neg + "EXISTS (" + p.Sub.String() + ")"
}

// String renders the quantified comparison.
func (p *QuantPred) String() string {
	return p.Left.String() + " " + p.Op.String() + " " + p.Quant.String() +
		" (" + p.Sub.String() + ")"
}

// String renders the disjunction with explicit parentheses.
func (p *OrPred) String() string {
	return "(" + p.Left.String() + " OR " + p.Right.String() + ")"
}

// String renders the conjunction with explicit parentheses.
func (p *AndPred) String() string {
	return "(" + p.Left.String() + " AND " + p.Right.String() + ")"
}

// String renders the negation.
func (p *NotPred) String() string { return "NOT (" + p.P.String() + ")" }

// String renders the whole block as a single-line SQL statement.
func (qb *QueryBlock) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if qb.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, s := range qb.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	for i, t := range qb.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(qb.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range qb.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(qb.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range qb.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(qb.Having) > 0 {
		b.WriteString(" HAVING ")
		for i, h := range qb.Having {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(h.String())
		}
	}
	if len(qb.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range qb.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	return b.String()
}

// Pretty renders the block as indented, multi-line SQL in the style the
// paper uses to present queries, with nested blocks indented under the
// predicate that contains them.
func (qb *QueryBlock) Pretty() string {
	var b strings.Builder
	qb.pretty(&b, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for range depth {
		b.WriteString("    ")
	}
}

func (qb *QueryBlock) pretty(b *strings.Builder, depth int) {
	indent(b, depth)
	b.WriteString("SELECT ")
	if qb.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, s := range qb.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteByte('\n')
	indent(b, depth)
	b.WriteString("FROM   ")
	for i, t := range qb.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(qb.Where) > 0 {
		b.WriteByte('\n')
		indent(b, depth)
		b.WriteString("WHERE  ")
		for i, p := range qb.Where {
			if i > 0 {
				b.WriteString(" AND\n")
				indent(b, depth)
				b.WriteString("       ")
			}
			prettyPred(b, p, depth)
		}
	}
	if len(qb.GroupBy) > 0 {
		b.WriteByte('\n')
		indent(b, depth)
		b.WriteString("GROUP BY ")
		for i, c := range qb.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(qb.Having) > 0 {
		b.WriteByte('\n')
		indent(b, depth)
		b.WriteString("HAVING ")
		for i, h := range qb.Having {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(h.String())
		}
	}
	if len(qb.OrderBy) > 0 {
		b.WriteByte('\n')
		indent(b, depth)
		b.WriteString("ORDER BY ")
		for i, o := range qb.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
}

func prettyPred(b *strings.Builder, p Predicate, depth int) {
	sub := SubqueryOf(p)
	if sub == nil {
		b.WriteString(p.String())
		return
	}
	switch p := p.(type) {
	case *Comparison:
		if sq, ok := p.Right.(*Subquery); ok {
			op := p.Op.String()
			if p.LeftOuter {
				op += "+"
			}
			b.WriteString(p.Left.String() + " " + op + " (\n")
			sq.Block.pretty(b, depth+1)
			b.WriteString(")")
			return
		}
		b.WriteString(p.String())
	case *InPred:
		neg := ""
		if p.Negated {
			neg = "NOT "
		}
		b.WriteString(p.Left.String() + " " + neg + "IN (\n")
		sub.pretty(b, depth+1)
		b.WriteString(")")
	case *ExistsPred:
		neg := ""
		if p.Negated {
			neg = "NOT "
		}
		b.WriteString(neg + "EXISTS (\n")
		sub.pretty(b, depth+1)
		b.WriteString(")")
	case *QuantPred:
		b.WriteString(p.Left.String() + " " + p.Op.String() + " " + p.Quant.String() + " (\n")
		sub.pretty(b, depth+1)
		b.WriteString(")")
	default:
		b.WriteString(p.String())
	}
}
