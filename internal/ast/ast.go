// Package ast defines the abstract syntax tree for the SQL subset of the
// paper "Optimization of Nested SQL Queries Revisited" (Ganski & Wong,
// SIGMOD 1987): query blocks with SELECT / FROM / WHERE / GROUP BY, nested
// query blocks appearing inside predicates to arbitrary depth, aggregate
// functions, and the predicate forms IN, EXISTS, and quantified comparisons
// (ANY / ALL).
//
// A query block's WHERE clause is a list of conjuncts; the transformation
// algorithms of the paper operate by moving, rewriting, and merging
// conjuncts across blocks. OR and NOT are representable (the nested
// iteration executor evaluates them) but make a block non-transformable,
// mirroring how the paper restricts itself to conjunctive WHERE clauses.
package ast

import (
	"repro/internal/value"
)

// QueryBlock is one SQL query block: the unit of nesting in the paper. The
// outermost block of a statement is the root of a multi-way tree whose
// children are the blocks nested inside its predicates (the paper's Figure 2
// models a query exactly this way).
type QueryBlock struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    []Predicate // conjuncts, implicitly ANDed
	GroupBy  []ColumnRef
	// Having filters groups after aggregation. Its predicates reference
	// the block's output columns (by name or alias); resolution rewrites
	// them to positional form.
	Having []HavingPred
	// OrderBy sorts the block's output. Only the outermost block of a
	// statement may carry it; the resolver rejects it inside subqueries,
	// where ordering is meaningless.
	OrderBy []OrderItem
}

// HavingPred is one HAVING conjunct: an output column (a grouping column
// or an aggregate, referenced by output name) compared to a constant. Pos
// is the select-list position, filled in by resolution.
type HavingPred struct {
	Col ColumnRef
	Pos int
	Op  value.CompareOp
	Val value.Value
}

// String renders the HAVING conjunct.
func (h HavingPred) String() string {
	return h.Col.String() + " " + h.Op.String() + " " + h.Val.String()
}

// OrderItem is one ORDER BY key: a position into the block's SELECT list
// plus a direction. Resolution maps the written column reference to the
// select position, so both executors sort the same way.
type OrderItem struct {
	Col  ColumnRef // as written
	Pos  int       // select-list position, filled in by resolution
	Desc bool
}

// SelectItem is one output of a query block: either a plain column or a
// single aggregate function application. Kim's classification hinges on
// whether the inner block's SELECT clause "consists of an aggregate
// function over a column in an inner relation".
type SelectItem struct {
	Agg value.AggFunc // AggNone for a plain column reference
	Col ColumnRef     // ignored when Agg == AggCountStar
	As  string        // optional output column name (used for temp tables)
}

// IsAggregate reports whether the item applies an aggregate function.
func (s SelectItem) IsAggregate() bool { return s.Agg != value.AggNone }

// OutputName returns the name under which the item appears in the block's
// result schema.
func (s SelectItem) OutputName() string {
	if s.As != "" {
		return s.As
	}
	if s.Agg == value.AggCountStar {
		return "COUNT"
	}
	if s.Agg != value.AggNone {
		return s.Agg.String()
	}
	return s.Col.Column
}

// HasAggregate reports whether any select item of the block applies an
// aggregate function.
func (qb *QueryBlock) HasAggregate() bool {
	for _, s := range qb.Select {
		if s.IsAggregate() {
			return true
		}
	}
	return false
}

// TableRef names a relation in a FROM clause, optionally under an alias.
// Column references bind to the alias (or the relation name when no alias
// is given). NEST-N-J merges FROM clauses, so the transformer may introduce
// fresh aliases to keep bindings unambiguous.
type TableRef struct {
	Relation string
	Alias    string
}

// Binding returns the name columns use to refer to this table.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Relation
}

// ColumnRef names a column, optionally qualified by a table binding.
// Unqualified references are resolved against the enclosing FROM clauses
// (innermost first, then outward through enclosing blocks — the rule that
// makes SP.ORIGIN = S.CITY in the paper's example 4 a correlated
// reference).
type ColumnRef struct {
	Table  string // table binding, "" if unqualified
	Column string
}

// Expr is a scalar expression: a column reference, a literal constant, or a
// scalar subquery. The dialect has no arithmetic; the paper's queries never
// need it.
type Expr interface {
	isExpr()
	String() string
}

// Const is a literal value.
type Const struct {
	Val value.Value
}

// Subquery is a query block used as a scalar expression (the Q in the
// paper's nested predicate form [Ri.Ck op Q]).
type Subquery struct {
	Block *QueryBlock
}

func (ColumnRef) isExpr() {}
func (Const) isExpr()     {}
func (*Subquery) isExpr() {}

// Predicate is one conjunct of a WHERE clause.
type Predicate interface {
	isPred()
	String() string
}

// Comparison is a scalar comparison Left Op Right. Either side may be a
// subquery; a comparison whose right side is a subquery is the paper's
// nested predicate [Ri.Ck op Q].
//
// LeftOuter marks the paper's outer-join comparison operator (written =+ in
// section 5.2): the join must preserve every row of the left operand's
// relation, padding the right side with NULLs when no match exists. The
// transformer emits it when building NEST-JA2's temporary table for COUNT.
type Comparison struct {
	Left      Expr
	Op        value.CompareOp
	Right     Expr
	LeftOuter bool
}

// InPred is Left [NOT] IN (subquery). The parser also accepts the System R
// spelling "IS IN".
type InPred struct {
	Left    Expr
	Sub     *QueryBlock
	Negated bool
}

// ExistsPred is [NOT] EXISTS (subquery), one of the section 8 extensions.
type ExistsPred struct {
	Sub     *QueryBlock
	Negated bool
}

// Quantifier distinguishes ANY from ALL in quantified comparisons.
type Quantifier uint8

// The quantifiers of section 8.
const (
	Any Quantifier = iota
	All
)

// String renders the quantifier keyword.
func (q Quantifier) String() string {
	if q == All {
		return "ALL"
	}
	return "ANY"
}

// QuantPred is Left Op ANY|ALL (subquery), one of the section 8 extensions.
type QuantPred struct {
	Left  Expr
	Op    value.CompareOp
	Quant Quantifier
	Sub   *QueryBlock
}

// OrPred is a disjunction. Blocks containing one are evaluated by nested
// iteration only; the paper's transformations require conjunctive WHERE
// clauses.
type OrPred struct {
	Left, Right Predicate
}

// AndPred is a conjunction that could not be flattened into the block's
// conjunct list because it appears under OR or NOT.
type AndPred struct {
	Left, Right Predicate
}

// NotPred is a negation of an arbitrary predicate.
type NotPred struct {
	P Predicate
}

func (*Comparison) isPred() {}
func (*InPred) isPred()     {}
func (*ExistsPred) isPred() {}
func (*QuantPred) isPred()  {}
func (*OrPred) isPred()     {}
func (*AndPred) isPred()    {}
func (*NotPred) isPred()    {}

// SubqueryOf returns the nested query block inside a predicate, if any.
// A Comparison contributes a block only when one side is a subquery.
func SubqueryOf(p Predicate) *QueryBlock {
	switch p := p.(type) {
	case *Comparison:
		if sq, ok := p.Right.(*Subquery); ok {
			return sq.Block
		}
		if sq, ok := p.Left.(*Subquery); ok {
			return sq.Block
		}
	case *InPred:
		return p.Sub
	case *ExistsPred:
		return p.Sub
	case *QuantPred:
		return p.Sub
	}
	return nil
}

// IsNested reports whether the predicate contains a nested query block.
func IsNested(p Predicate) bool { return SubqueryOf(p) != nil }

// HasNestedPredicate reports whether any conjunct of the block's WHERE
// clause is a nested predicate.
func (qb *QueryBlock) HasNestedPredicate() bool {
	for _, p := range qb.Where {
		if IsNested(p) {
			return true
		}
	}
	return false
}

// Bindings returns the table binding names visible inside the block's own
// FROM clause, in FROM order.
func (qb *QueryBlock) Bindings() []string {
	out := make([]string, len(qb.From))
	for i, t := range qb.From {
		out[i] = t.Binding()
	}
	return out
}
