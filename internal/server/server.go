// Package server hosts an engine.DB behind the wire protocol: a TCP
// listener accepting length-prefixed binary frames (see internal/wire),
// one session per connection, streamed row batches with real executor
// backpressure, and a graceful shutdown that drains in-flight queries
// through the admission layer before closing connections.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
)

// Config tunes a Server. The zero value is usable: engine defaults for
// strategy and parallelism, 64-row batches, a 32 KiB write buffer, and
// no caps on client-requested deadlines or row budgets.
type Config struct {
	// BatchRows bounds rows per RowBatch frame (0 = exec default of 64).
	BatchRows int
	// WriteBufferBytes sizes the per-connection buffered writer. The
	// buffer plus the kernel socket buffer is all the result data the
	// server will hold for a slow client; past that, the executor's pull
	// loop blocks on the flush. 0 = 32 KiB.
	WriteBufferBytes int
	// MaxTimeout caps (and, when the client sends none, supplies) the
	// per-query deadline. 0 = accept the client's value unchanged.
	MaxTimeout time.Duration
	// MaxRows caps (and defaults) the per-query row budget. 0 = accept
	// the client's value unchanged.
	MaxRows int64
	// Strategy answers wire.StrategyDefault. The zero value is the
	// engine's NestedIteration; nestedsqld overrides it to TransformJA2.
	Strategy engine.Strategy
	// Parallelism is the planner parallelism for queries that do not ask
	// for their own.
	Parallelism int
	// HandshakeTimeout bounds how long a fresh connection may dawdle
	// before its Hello arrives (0 = 5s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write (0 = 30s). A client that
	// stops reading stalls the query through backpressure first; this is
	// the slow-client eviction deadline: when a flush exceeds it, the
	// stalled query is cancelled (freeing its admission slot and pool
	// lease), a CodeSlowClient Error frame is attempted, and the
	// connection closes.
	WriteTimeout time.Duration
	// HeartbeatInterval paces Ping frames on idle sessions whose client
	// negotiated FeatureHeartbeat (0 = 15s). Two unanswered pings in a
	// row evict the peer as dead. DisableHeartbeat turns the feature off
	// in negotiation entirely.
	HeartbeatInterval time.Duration
	// DisableHeartbeat refuses FeatureHeartbeat during negotiation.
	DisableHeartbeat bool
	// DisableChecksum refuses FeatureChecksum during negotiation (for
	// overhead measurements; corruption then passes undetected).
	DisableChecksum bool
}

func (c Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout <= 0 {
		return 5 * time.Second
	}
	return c.HandshakeTimeout
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 30 * time.Second
	}
	return c.WriteTimeout
}

func (c Config) writeBuffer() int {
	if c.WriteBufferBytes <= 0 {
		return 32 << 10
	}
	return c.WriteBufferBytes
}

func (c Config) heartbeatInterval() time.Duration {
	if c.HeartbeatInterval <= 0 {
		return 15 * time.Second
	}
	return c.HeartbeatInterval
}

// Backend is what a Server fronts: a local engine.DB, or a cluster
// coordinator that fans each statement out to worker engines. Either
// way the session layer speaks the same wire protocol; only a backend
// that IS a local engine additionally grants FeatureCluster and answers
// ShardQuery frames (a coordinator scatters, it is never scattered to).
type Backend interface {
	ExecSQL(sql string, opts engine.Options) (*engine.Result, error)
	Drain(timeout time.Duration) error
}

// Server owns a listener and its sessions. Create with New (a local
// engine) or NewBackend (any Backend), run with Serve (or
// ListenAndServe), stop with Shutdown.
type Server struct {
	db  Backend
	eng *engine.DB // non-nil when the backend is a local engine (worker role)
	cfg Config

	mu       sync.Mutex
	lis      net.Listener
	sessions map[*session]struct{}
	closing  bool

	wg sync.WaitGroup // live session goroutines
}

// New builds a Server around an opened engine. Enable admission on the
// DB before serving if you want overload shedding and a draining
// Shutdown; without it queries run ungated and Shutdown cuts
// connections without waiting.
func New(db *engine.DB, cfg Config) *Server {
	return &Server{db: db, eng: db, cfg: cfg, sessions: make(map[*session]struct{})}
}

// NewBackend builds a Server around any Backend (e.g. a cluster
// coordinator). When the backend happens to be a local engine this is
// identical to New.
func NewBackend(b Backend, cfg Config) *Server {
	eng, _ := b.(*engine.DB)
	return &Server{db: b, eng: eng, cfg: cfg, sessions: make(map[*session]struct{})}
}

// DB returns the local engine this server fronts, or nil when the
// backend is not a local engine (coordinator role).
func (s *Server) DB() *engine.DB { return s.eng }

// Addr returns the listener address once Serve has been called, for
// tests and for logging "listening on" lines with a :0 port.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown closes it, spawning
// one session per connection. It returns nil after a Shutdown, or the
// accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: already shut down")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.serve()
		}()
	}
}

// Shutdown stops the server gracefully: the listener closes (Serve
// returns), the engine drains — in-flight queries get until timeout to
// finish streaming, queued and new ones are shed — then every
// connection is closed and Shutdown waits for the sessions to unwind.
// It returns the drain error, if any (stragglers were canceled).
//
// The whole sequence is bounded by the timeout: the drain runs
// concurrently, and if it has not finished shortly after the deadline —
// a canceled query can still be wedged in a frame flush to a client
// that stopped reading mid-drain, which no qctx cancellation can
// unblock — the connections are closed anyway, which breaks the stalled
// writes and lets the drain observe the queries unwinding.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	// Drain while connections stay up, so finishing queries can still
	// flush their Done frames to the client — but don't let a stalled
	// consumer hold Shutdown hostage past the deadline.
	drained := make(chan error, 1)
	go func() { drained <- s.db.Drain(timeout) }()
	grace := timeout / 4
	if grace < 100*time.Millisecond {
		grace = 100 * time.Millisecond
	} else if grace > time.Second {
		grace = time.Second
	}
	var drainErr error
	gotDrain := false
	select {
	case drainErr = <-drained:
		gotDrain = true
	case <-time.After(timeout + grace):
	}

	s.mu.Lock()
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	if !gotDrain {
		// Closing the connections failed any wedged flushes, so the
		// queries holding the drain open error out promptly.
		drainErr = <-drained
	}
	s.wg.Wait()
	return drainErr
}

func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}
