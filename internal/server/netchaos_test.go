package server_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/netfault"
	"repro/internal/qctx"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
)

// chaosSeed fixes the whole storm: the proxy's fault schedules, the
// admission jitter, and every client's reconnect backoff derive from it,
// so a failure replays.
const chaosSeed = 20260805

// canon renders a result as the canonical RowBatch wire encoding, the
// byte-for-byte comparison key between a storm survivor and the oracle.
func canon(cols []string, rows []storage.Tuple) []byte {
	return wire.EncodeRowBatch(wire.RowBatch{Columns: cols, Rows: rows})
}

// typedStormError reports whether an error from a chaos-storm query is
// one of the acceptable, typed outcomes. Anything else — and above all
// a *successful* result that differs from the oracle — is a bug.
func typedStormError(err error) bool {
	var re *wire.RemoteError
	var ne net.Error
	return errors.As(err, &re) || // any server-reported failure, taxonomy intact
		errors.Is(err, client.ErrConnectionLost) ||
		errors.Is(err, wire.ErrCorruptFrame) ||
		errors.Is(err, wire.ErrSlowConsumer) ||
		errors.Is(err, qctx.ErrCanceled) ||
		errors.Is(err, qctx.ErrOverloaded) ||
		errors.As(err, &ne) || // dial/handshake timeout through a faulted link
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// TestNetChaosStorm is the tentpole's capstone: N clients hammer the
// server through a seeded fault-injecting proxy that delays, splits,
// corrupts, truncates, drops, and partitions their traffic. Every query
// that completes must be byte-identical to the in-process oracle for its
// strategy; every query that fails must fail typed. Afterwards: no
// leaked goroutines, no stuck admission slots, no orphaned pool leases.
func TestNetChaosStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := serverDB(t)
	db.EnableAdmission(admission.Config{
		MaxConcurrent: 4, QueueDepth: 8, PoolBytes: 8 << 20, Seed: chaosSeed,
	})

	// In-process oracles, one per strategy (row order is part of the
	// contract and differs between strategies).
	strategies := []struct {
		wireStrat byte
		eng       engine.Strategy
	}{
		{wire.StrategyNested, engine.NestedIteration},
		{wire.StrategyTransform, engine.TransformJA2},
		{wire.StrategyKim, engine.TransformKim},
	}
	oracle := make(map[byte][]byte)
	for _, s := range strategies {
		res, err := db.Query(serverQuery, engine.Options{Strategy: s.eng})
		if err != nil {
			t.Fatalf("oracle %d: %v", s.wireStrat, err)
		}
		oracle[s.wireStrat] = canon(res.Columns, res.Rows)
	}

	srv := server.New(db, server.Config{
		Strategy:          engine.TransformJA2,
		BatchRows:         5, // many frames per result: more chances for chaos
		WriteTimeout:      2 * time.Second,
		HeartbeatInterval: 200 * time.Millisecond,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	proxy, err := netfault.New(lis.Addr().String(), netfault.Config{
		Seed:        chaosSeed,
		Delay:       0.05,
		DelayDur:    2 * time.Millisecond,
		SplitWrites: 0.25,
		Corrupt:     0.02,
		Truncate:    0.01,
		Drop:        0.01,
		Partition:   0.005,
		MaxFaults:   48,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients = 6
		rounds  = 8
	)
	var completed, failed, mismatches atomic.Int64
	var wg sync.WaitGroup
	for ci := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range rounds {
				strat := strategies[(ci+r)%len(strategies)]
				c, err := client.DialOpts(proxy.Addr(), client.DialOptions{
					Timeout:   2 * time.Second,
					IOTimeout: 3 * time.Second, // cuts partition hangs
					Reconnect: &client.ReconnectConfig{
						MaxAttempts: 3,
						BaseDelay:   5 * time.Millisecond,
						MaxDelay:    50 * time.Millisecond,
						Seed:        chaosSeed + int64(ci)*1000 + int64(r),
					},
				})
				if err != nil {
					failed.Add(1)
					if !typedStormError(err) {
						t.Errorf("client %d round %d: untyped dial error: %v", ci, r, err)
					}
					continue
				}
				res, err := c.Collect(serverQuery, client.Options{Strategy: strat.wireStrat})
				if err != nil {
					failed.Add(1)
					if !typedStormError(err) {
						t.Errorf("client %d round %d: untyped query error: %T %v", ci, r, err, err)
					}
				} else {
					completed.Add(1)
					if got := canon(res.Columns, res.Rows); !bytes.Equal(got, oracle[strat.wireStrat]) {
						mismatches.Add(1)
						t.Errorf("client %d round %d strategy %d: completed result differs from oracle (%d vs %d bytes) — garbled or duplicated rows reached the caller",
							ci, r, strat.wireStrat, len(got), len(oracle[strat.wireStrat]))
					}
				}
				c.Close()
			}
		}()
	}
	wg.Wait()
	if err := proxy.Close(); err != nil {
		t.Errorf("proxy close: %v", err)
	}
	t.Logf("storm: %d completed, %d failed typed, %d injected faults, %d proxied connections",
		completed.Load(), failed.Load(), proxy.Injected(), proxy.Connections())

	// The storm must not be vacuous in either direction: some queries
	// survive the chaos, and the chaos actually injected faults.
	if completed.Load() == 0 {
		t.Error("no query completed; the storm proved nothing about result integrity")
	}
	if proxy.Injected() == 0 {
		t.Error("no fault injected; the storm proved nothing about fault handling")
	}
	if mismatches.Load() > 0 {
		t.Errorf("%d completed results diverged from the oracle", mismatches.Load())
	}

	// Quiescence: every admission slot and pool lease released once the
	// cancellations propagate.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := db.Admission().Stats()
		if st.Running == 0 && st.Waiting == 0 && st.PoolUsed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never quiesced after the storm: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
	waitGoroutineBaseline(t, baseline, "chaos storm")
}
