package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wire"
)

// session is one connection's state. Frames are read by a dedicated
// reader goroutine and handed over a channel, so a query in progress
// learns about a client disconnect (the read loop dying) through the
// dead channel — which is wired into the engine as the query's Cancel,
// turning an abandoned connection into qctx.ErrCanceled instead of a
// query that streams into a broken pipe until its row budget runs out.
// All writes happen on the session goroutine (the reader answers
// nothing itself); net.Conn allows the concurrent Close from Shutdown.
//
// The Hello exchange fixes the session's codec (checksummed frames when
// the client negotiated FeatureChecksum) and whether the session
// heartbeats: with FeatureHeartbeat, an idle session pings the client on
// every HeartbeatInterval tick and evicts it after two unanswered pings
// — the half-open connection a silent partition leaves behind. While a
// query streams, no pings are sent (the session goroutine is busy and
// the write path's deadline already covers a dead consumer).
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	codec     wire.Codec
	heartbeat bool
	cluster   bool // FeatureCluster granted: this session may scatter

	frames  chan recvFrame
	dead    chan struct{} // closed when the read loop exits (disconnect)
	quit    chan struct{} // closed when the session goroutine exits
	readErr error         // read-loop failure; written before frames closes
}

type recvFrame struct {
	typ     byte
	payload []byte
}

// writeError wraps a frame-write failure so runQuery can tell "the
// connection broke" (tear the session down) apart from "the query
// failed" (report an Error frame and keep serving).
type writeError struct{ err error }

func (e *writeError) Error() string { return "server: write: " + e.err.Error() }
func (e *writeError) Unwrap() error { return e.err }

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:    srv,
		conn:   conn,
		br:     bufio.NewReader(conn),
		bw:     bufio.NewWriterSize(conn, srv.cfg.writeBuffer()),
		frames: make(chan recvFrame),
		dead:   make(chan struct{}),
		quit:   make(chan struct{}),
	}
}

// serve runs the session to completion: handshake, then one query at a
// time off the frame channel, with heartbeat ticks interleaved while
// idle. Responses are strictly sequential even if the client pipelines —
// the reader goroutine simply blocks handing over the next Query until
// the current one finishes.
func (s *session) serve() {
	defer s.srv.removeSession(s)
	defer s.conn.Close()
	defer close(s.quit)

	if !s.handshake() {
		return
	}

	go s.readLoop()

	var ticks <-chan time.Time
	if s.heartbeat {
		t := time.NewTicker(s.srv.cfg.heartbeatInterval())
		defer t.Stop()
		ticks = t.C
	}
	var pingSeq uint64
	unanswered := 0

	for {
		select {
		case f, ok := <-s.frames:
			if !ok {
				// Disconnect, or unrecoverable framing. A corrupt frame
				// deserves a typed goodbye: the client's writes were
				// damaged in flight and its reads may still work.
				if s.readErr != nil && errors.Is(s.readErr, wire.ErrCorruptFrame) {
					s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: s.readErr.Error()})
				}
				return
			}
			unanswered = 0 // any frame proves the peer alive
			switch f.typ {
			case wire.FramePong:
				continue
			case wire.FramePing:
				// Symmetric liveness: echo the client's sequence back.
				if s.writeFrame(wire.FramePong, f.payload) != nil || s.flush() != nil {
					return
				}
				continue
			case wire.FrameQuery:
				q, err := wire.DecodeQuery(f.payload)
				if err != nil {
					s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: err.Error()})
					return
				}
				if !s.runQuery(q) {
					return
				}
			case wire.FrameShardQuery:
				if !s.cluster {
					s.sendError(wire.ErrorFrame{
						Code:    wire.CodeProtocol,
						Message: "shard query without negotiated cluster feature",
					})
					return
				}
				q, err := wire.DecodeShardQuery(f.payload)
				if err != nil {
					s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: err.Error()})
					return
				}
				if !s.runShardQuery(q) {
					return
				}
			case wire.FrameSnapshot:
				if !s.cluster {
					s.sendError(wire.ErrorFrame{
						Code:    wire.CodeProtocol,
						Message: "snapshot without negotiated cluster feature",
					})
					return
				}
				sn, err := wire.DecodeSnapshot(f.payload)
				if err != nil {
					s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: err.Error()})
					return
				}
				if !s.runSnapshot(sn.Table) {
					return
				}
			default:
				s.sendError(wire.ErrorFrame{
					Code:    wire.CodeProtocol,
					Message: fmt.Sprintf("unexpected frame type 0x%02x", f.typ),
				})
				return
			}
		case <-ticks:
			if unanswered >= 2 {
				// Two intervals of silence after pinging: a dead peer or a
				// partition. Say why (best effort) and evict.
				s.sendError(wire.ErrorFrame{
					Code:    wire.CodeProtocol,
					Message: "heartbeat timeout: no pong from peer",
				})
				return
			}
			pingSeq++
			if s.writeFrame(wire.FramePing, wire.EncodePing(pingSeq)) != nil || s.flush() != nil {
				return
			}
			unanswered++
		}
	}
}

// handshake validates the client Hello under a read deadline, negotiates
// the feature flags, and answers with the server's version plus the
// granted subset — mirroring the client's payload form, so a legacy peer
// gets a legacy (5-byte, feature-free) reply it can parse. Protocol
// violations get an Error frame (best effort) before the connection
// drops. The negotiated codec takes effect after the reply: the Hello
// exchange itself is always plain.
func (s *session) handshake() bool {
	s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.handshakeTimeout()))
	typ, payload, err := wire.ReadFrame(s.br)
	if err != nil {
		return false
	}
	if typ != wire.FrameHello {
		s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: "expected hello"})
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: err.Error()})
		return false
	}
	if h.Version != wire.Version {
		s.sendError(wire.ErrorFrame{
			Code:    wire.CodeProtocol,
			Message: fmt.Sprintf("version %d unsupported (server speaks %d)", h.Version, wire.Version),
		})
		return false
	}
	var granted byte
	if !h.Legacy {
		mask := wire.FeatureChecksum | wire.FeatureHeartbeat
		if s.srv.cfg.DisableChecksum {
			mask &^= wire.FeatureChecksum
		}
		if s.srv.cfg.DisableHeartbeat {
			mask &^= wire.FeatureHeartbeat
		}
		if s.srv.eng != nil {
			// Only a local engine can execute-and-scatter; a coordinator
			// backend never grants the cluster feature.
			mask |= wire.FeatureCluster
		}
		granted = h.Flags & mask
	}
	s.conn.SetReadDeadline(time.Time{})
	reply := wire.Hello{Version: wire.Version, Flags: granted, Legacy: h.Legacy}
	if err := s.writeFrame(wire.FrameHello, wire.EncodeHello(reply)); err != nil {
		return false
	}
	if s.flush() != nil {
		return false
	}
	s.codec = wire.Codec{Checksums: granted&wire.FeatureChecksum != 0}
	s.heartbeat = granted&wire.FeatureHeartbeat != 0
	s.cluster = granted&wire.FeatureCluster != 0
	return true
}

// readLoop pulls frames off the wire and hands them to the session
// goroutine. Any read error — EOF, reset, a checksum-failing frame,
// malformed framing — is recorded, then dead closes (canceling an
// in-flight query) and the frame channel closes (ending the session
// loop). The select against quit keeps the goroutine from leaking if the
// session exits while a frame is in hand.
func (s *session) readLoop() {
	for {
		typ, payload, err := s.codec.ReadFrame(s.br)
		if err != nil {
			s.readErr = err
			close(s.dead)
			close(s.frames)
			return
		}
		select {
		case s.frames <- recvFrame{typ, payload}:
		case <-s.quit:
			return
		}
	}
}

// runQuery executes one Query frame, streaming RowBatch frames as the
// executor produces them. It reports whether the session should keep
// serving: query failures are answered with an Error frame and the
// session survives; write failures mean the client is gone or too slow,
// and either way the session ends.
func (s *session) runQuery(q wire.Query) bool {
	opts, ferr := s.queryOptions(q)
	if ferr != nil {
		return s.sendError(*ferr)
	}

	var (
		cols     []string
		sent     int64
		batchErr error // the sink's own write failure, distinct from query failure
	)
	opts.Sink = &engine.RowSink{
		BatchRows: s.srv.cfg.BatchRows,
		Columns: func(c []string) error {
			cols = append([]string(nil), c...)
			return nil
		},
		Batch: func(rows []storage.Tuple) error {
			if err := s.writeRowBatch(cols, rows); err != nil {
				batchErr = err
				return &writeError{err}
			}
			sent += int64(len(rows))
			return nil
		},
	}

	// ExecSQL routes a single SELECT through the streaming query path
	// (sink above) and everything else — DDL and DML — through Exec,
	// which acknowledges only after the commit record is durable when a
	// WAL is enabled. DML answers with an empty column set and its
	// affected-row count riding the Done frame's Rows field.
	res, err := s.srv.db.ExecSQL(q.SQL, opts)
	if err != nil {
		if batchErr != nil {
			// The write path failed, not the query. A stalled consumer
			// (write deadline exceeded) earns a typed eviction notice; a
			// vanished one gets nothing — there is no pipe left to talk
			// down. Either way the session ends and the query's admission
			// slot and pool lease were already released by Query's return.
			var ne net.Error
			if errors.As(batchErr, &ne) && ne.Timeout() {
				s.evictSlowClient()
			}
			return false
		}
		return s.sendError(wire.ErrorFrameFor(err))
	}

	// An empty result still announces its columns: one zero-row batch.
	if sent == 0 {
		if err := s.writeRowBatch(cols, nil); err != nil {
			return false
		}
	}
	done := wire.Done{
		Rows:     sent,
		Reads:    res.Stats.Reads,
		Writes:   res.Stats.Writes,
		FellBack: res.FellBack,
	}
	if len(res.Columns) == 0 && sent == 0 {
		done.Rows = res.Affected
	}
	if err := s.writeFrame(wire.FrameDone, wire.EncodeDone(done)); err != nil {
		return false
	}
	return s.flush() == nil
}

// runShardQuery executes one ShardQuery frame: the query runs on the
// local engine and every result row is partitioned by the hash of its
// key columns, streamed back as partition-tagged ShardBatch frames, and
// accounted in the closing ShardDone's per-partition counts (the
// coordinator cross-checks them against what it gathered). Partitioning
// happens here, worker-side, so shuffle traffic ships each row exactly
// once. Like runQuery it reports whether the session should keep
// serving.
func (s *session) runShardQuery(q wire.ShardQuery) bool {
	opts, ferr := s.queryOptions(wire.Query{TimeoutMicros: q.TimeoutMicros, Strategy: q.Strategy})
	if ferr != nil {
		return s.sendError(*ferr)
	}

	n := int(q.NumShards)
	keys := make([]int, len(q.KeyCols))
	for i, k := range q.KeyCols {
		keys[i] = int(k)
	}
	part := cluster.Partitioner{NumShards: n, KeyCols: keys}

	var (
		cols     []string
		perShard = make([]int64, n)
		batchErr error
	)
	opts.Sink = &engine.RowSink{
		BatchRows: s.srv.cfg.BatchRows,
		Columns: func(c []string) error {
			for _, k := range keys {
				if k >= len(c) {
					return fmt.Errorf("server: shard key column %d out of range (%d result columns)", k, len(c))
				}
			}
			cols = append([]string(nil), c...)
			return nil
		},
		Batch: func(rows []storage.Tuple) error {
			// Group this batch by destination partition and emit one
			// ShardBatch per non-empty partition. No cross-batch buffering:
			// executor backpressure reaches the socket per batch.
			byShard := make(map[int][]storage.Tuple, n)
			for _, row := range rows {
				sh := part.Shard(row)
				byShard[sh] = append(byShard[sh], row)
			}
			for sh := 0; sh < n; sh++ {
				chunk := byShard[sh]
				if len(chunk) == 0 {
					continue
				}
				b := wire.ShardBatch{Shard: uint32(sh), Batch: wire.RowBatch{Columns: cols, Rows: chunk}}
				if err := s.writeFrame(wire.FrameShardBatch, wire.EncodeShardBatch(b)); err != nil {
					batchErr = err
					return &writeError{err}
				}
				if err := s.flush(); err != nil {
					batchErr = err
					return &writeError{err}
				}
				perShard[sh] += int64(len(chunk))
			}
			return nil
		},
	}

	res, err := s.srv.eng.ExecSQL(q.SQL, opts)
	if err != nil {
		if batchErr != nil {
			var ne net.Error
			if errors.As(batchErr, &ne) && ne.Timeout() {
				s.evictSlowClient()
			}
			return false
		}
		return s.sendError(wire.ErrorFrameFor(err))
	}

	done := wire.ShardDone{Reads: res.Stats.Reads, Writes: res.Stats.Writes, PerShard: perShard}
	if err := s.writeFrame(wire.FrameShardDone, wire.EncodeShardDone(done)); err != nil {
		return false
	}
	return s.flush() == nil
}

// runSnapshot streams one physical table to a coordinator rebuilding a
// rejoining replica: the table's schema first (SnapshotMeta, so the
// receiver can verify the replicas agree structurally), then every row
// as RowBatch frames, then Done. A missing table answers with the
// engine's "unknown relation" phrasing — to the coordinator that means
// this worker lost state and must itself be rebuilt, not skipped.
func (s *session) runSnapshot(table string) bool {
	rel, ok := s.srv.eng.Catalog().Lookup(table)
	if !ok {
		return s.sendError(wire.ErrorFrame{
			Code:    wire.CodeInternal,
			Message: fmt.Sprintf("engine: unknown relation %s", table),
		})
	}
	meta := wire.SnapshotMeta{CreateSQL: cluster.RenderCreate(rel)}
	if err := s.writeFrame(wire.FrameSnapshotMeta, wire.EncodeSnapshotMeta(meta)); err != nil {
		return false
	}

	cols := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		cols[i] = c.Name
	}
	var (
		sent     int64
		batchErr error
	)
	opts := engine.Options{
		Cancel:   s.dead,
		Strategy: s.srv.cfg.Strategy,
		Timeout:  s.srv.cfg.MaxTimeout,
		Sink: &engine.RowSink{
			BatchRows: s.srv.cfg.BatchRows,
			Batch: func(rows []storage.Tuple) error {
				if err := s.writeRowBatch(cols, rows); err != nil {
					batchErr = err
					return &writeError{err}
				}
				sent += int64(len(rows))
				return nil
			},
		},
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(cols, ", "), rel.Name)
	if _, err := s.srv.eng.ExecSQL(sql, opts); err != nil {
		if batchErr != nil {
			var ne net.Error
			if errors.As(batchErr, &ne) && ne.Timeout() {
				s.evictSlowClient()
			}
			return false
		}
		return s.sendError(wire.ErrorFrameFor(err))
	}
	if err := s.writeFrame(wire.FrameDone, wire.EncodeDone(wire.Done{Rows: sent})); err != nil {
		return false
	}
	return s.flush() == nil
}

// evictSlowClient sends the CodeSlowClient Error frame best-effort,
// bypassing the buffered writer (whose error is sticky after the failed
// flush) and giving the socket one short grace to take it. If the pipe
// is still wedged solid the frame is lost and the client will see the
// close instead — as a connection loss, or as a corrupt frame if the
// failed flush tore mid-frame.
func (s *session) evictSlowClient() {
	s.conn.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
	s.codec.WriteFrame(s.conn, wire.FrameError, wire.EncodeError(wire.ErrorFrame{
		Code:    wire.CodeSlowClient,
		Message: fmt.Sprintf("write stalled past %s; slow consumer evicted", s.srv.cfg.writeTimeout()),
	}))
}

// queryOptions maps a Query frame onto engine options, applying the
// server's caps. A bad strategy byte is a protocol error.
func (s *session) queryOptions(q wire.Query) (engine.Options, *wire.ErrorFrame) {
	cfg := s.srv.cfg
	opts := engine.Options{Cancel: s.dead}

	switch q.Strategy {
	case wire.StrategyDefault:
		opts.Strategy = cfg.Strategy
	case wire.StrategyNested:
		opts.Strategy = engine.NestedIteration
	case wire.StrategyTransform:
		opts.Strategy = engine.TransformJA2
	case wire.StrategyKim:
		opts.Strategy = engine.TransformKim
	default:
		return opts, &wire.ErrorFrame{
			Code:    wire.CodeProtocol,
			Message: fmt.Sprintf("unknown strategy %d", q.Strategy),
		}
	}

	opts.Timeout = time.Duration(q.TimeoutMicros) * time.Microsecond
	if opts.Timeout < 0 {
		opts.Timeout = 0
	}
	if cfg.MaxTimeout > 0 && (opts.Timeout == 0 || opts.Timeout > cfg.MaxTimeout) {
		opts.Timeout = cfg.MaxTimeout
	}
	opts.MaxRows = q.MaxRows
	if opts.MaxRows < 0 {
		opts.MaxRows = 0
	}
	if cfg.MaxRows > 0 && (opts.MaxRows == 0 || opts.MaxRows > cfg.MaxRows) {
		opts.MaxRows = cfg.MaxRows
	}

	opts.Planner.Parallelism = cfg.Parallelism
	if q.Parallelism > 0 {
		opts.Planner.Parallelism = int(q.Parallelism)
	}
	return opts, nil
}

// writeRowBatch frames and flushes one batch. Flushing per batch keeps
// the client's view current and makes the buffered writer the only
// server-side buffering — when the socket is full, the flush blocks and
// backpressure reaches the executor through the sink, up to the write
// deadline that evicts a consumer who never drains it.
func (s *session) writeRowBatch(cols []string, rows []storage.Tuple) error {
	b := wire.RowBatch{Columns: cols, Rows: rows}
	if err := s.writeFrame(wire.FrameRowBatch, wire.EncodeRowBatch(b)); err != nil {
		return err
	}
	return s.flush()
}

// sendError reports a query or protocol failure and keeps the session
// alive if the write succeeded. Returns false when the client is gone.
func (s *session) sendError(f wire.ErrorFrame) bool {
	if err := s.writeFrame(wire.FrameError, wire.EncodeError(f)); err != nil {
		return false
	}
	return s.flush() == nil
}

func (s *session) writeFrame(typ byte, payload []byte) error {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.writeTimeout()))
	return s.codec.WriteFrame(s.bw, typ, payload)
}

func (s *session) flush() error {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.writeTimeout()))
	return s.bw.Flush()
}
