package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wire"
)

// session is one connection's state. Frames are read by a dedicated
// reader goroutine and handed over a channel, so a query in progress
// learns about a client disconnect (the read loop dying) through the
// dead channel — which is wired into the engine as the query's Cancel,
// turning an abandoned connection into qctx.ErrCanceled instead of a
// query that streams into a broken pipe until its row budget runs out.
// All writes happen on the session goroutine; net.Conn allows the
// concurrent Close from Shutdown.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	frames chan recvFrame
	dead   chan struct{} // closed when the read loop exits (disconnect)
	quit   chan struct{} // closed when the session goroutine exits
}

type recvFrame struct {
	typ     byte
	payload []byte
}

// writeError wraps a frame-write failure so runQuery can tell "the
// connection broke" (tear the session down) apart from "the query
// failed" (report an Error frame and keep serving).
type writeError struct{ err error }

func (e *writeError) Error() string { return "server: write: " + e.err.Error() }
func (e *writeError) Unwrap() error { return e.err }

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:    srv,
		conn:   conn,
		br:     bufio.NewReader(conn),
		bw:     bufio.NewWriterSize(conn, srv.cfg.writeBuffer()),
		frames: make(chan recvFrame),
		dead:   make(chan struct{}),
		quit:   make(chan struct{}),
	}
}

// serve runs the session to completion: handshake, then one query at a
// time off the frame channel. Responses are strictly sequential even if
// the client pipelines — the reader goroutine simply blocks handing
// over the next Query until the current one finishes.
func (s *session) serve() {
	defer s.srv.removeSession(s)
	defer s.conn.Close()
	defer close(s.quit)

	if !s.handshake() {
		return
	}

	go s.readLoop()

	for {
		f, ok := <-s.frames
		if !ok {
			return // client disconnected or sent garbage framing
		}
		if f.typ != wire.FrameQuery {
			s.sendError(wire.ErrorFrame{
				Code:    wire.CodeProtocol,
				Message: fmt.Sprintf("unexpected frame type 0x%02x", f.typ),
			})
			return
		}
		q, err := wire.DecodeQuery(f.payload)
		if err != nil {
			s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: err.Error()})
			return
		}
		if !s.runQuery(q) {
			return
		}
	}
}

// handshake validates the client Hello under a read deadline and
// answers with the server's version. Protocol violations get an Error
// frame (best effort) before the connection drops.
func (s *session) handshake() bool {
	s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.handshakeTimeout()))
	typ, payload, err := wire.ReadFrame(s.br)
	if err != nil {
		return false
	}
	if typ != wire.FrameHello {
		s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: "expected hello"})
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		s.sendError(wire.ErrorFrame{Code: wire.CodeProtocol, Message: err.Error()})
		return false
	}
	if h.Version != wire.Version {
		s.sendError(wire.ErrorFrame{
			Code:    wire.CodeProtocol,
			Message: fmt.Sprintf("version %d unsupported (server speaks %d)", h.Version, wire.Version),
		})
		return false
	}
	s.conn.SetReadDeadline(time.Time{})
	if err := s.writeFrame(wire.FrameHello, wire.EncodeHello(wire.Hello{Version: wire.Version})); err != nil {
		return false
	}
	return s.flush() == nil
}

// readLoop pulls frames off the wire and hands them to the session
// goroutine. Any read error — EOF, reset, malformed framing — closes
// dead (canceling an in-flight query) and the frame channel (ending the
// session loop). The select against quit keeps the goroutine from
// leaking if the session exits while a frame is in hand.
func (s *session) readLoop() {
	for {
		typ, payload, err := wire.ReadFrame(s.br)
		if err != nil {
			close(s.dead)
			close(s.frames)
			return
		}
		select {
		case s.frames <- recvFrame{typ, payload}:
		case <-s.quit:
			return
		}
	}
}

// runQuery executes one Query frame, streaming RowBatch frames as the
// executor produces them. It reports whether the session should keep
// serving: query failures are answered with an Error frame and the
// session survives; write failures mean the client is gone.
func (s *session) runQuery(q wire.Query) bool {
	opts, ferr := s.queryOptions(q)
	if ferr != nil {
		return s.sendError(*ferr)
	}

	var (
		cols     []string
		sent     int64
		batchErr error // the sink's own write failure, distinct from query failure
	)
	opts.Sink = &engine.RowSink{
		BatchRows: s.srv.cfg.BatchRows,
		Columns: func(c []string) error {
			cols = append([]string(nil), c...)
			return nil
		},
		Batch: func(rows []storage.Tuple) error {
			if err := s.writeRowBatch(cols, rows); err != nil {
				batchErr = err
				return &writeError{err}
			}
			sent += int64(len(rows))
			return nil
		},
	}

	res, err := s.srv.db.Query(q.SQL, opts)
	if err != nil {
		if batchErr != nil {
			return false // the connection is broken; no point reporting
		}
		return s.sendError(wire.ErrorFrameFor(err))
	}

	// An empty result still announces its columns: one zero-row batch.
	if sent == 0 {
		if err := s.writeRowBatch(cols, nil); err != nil {
			return false
		}
	}
	done := wire.Done{
		Rows:     sent,
		Reads:    res.Stats.Reads,
		Writes:   res.Stats.Writes,
		FellBack: res.FellBack,
	}
	if err := s.writeFrame(wire.FrameDone, wire.EncodeDone(done)); err != nil {
		return false
	}
	return s.flush() == nil
}

// queryOptions maps a Query frame onto engine options, applying the
// server's caps. A bad strategy byte is a protocol error.
func (s *session) queryOptions(q wire.Query) (engine.Options, *wire.ErrorFrame) {
	cfg := s.srv.cfg
	opts := engine.Options{Cancel: s.dead}

	switch q.Strategy {
	case wire.StrategyDefault:
		opts.Strategy = cfg.Strategy
	case wire.StrategyNested:
		opts.Strategy = engine.NestedIteration
	case wire.StrategyTransform:
		opts.Strategy = engine.TransformJA2
	case wire.StrategyKim:
		opts.Strategy = engine.TransformKim
	default:
		return opts, &wire.ErrorFrame{
			Code:    wire.CodeProtocol,
			Message: fmt.Sprintf("unknown strategy %d", q.Strategy),
		}
	}

	opts.Timeout = time.Duration(q.TimeoutMicros) * time.Microsecond
	if opts.Timeout < 0 {
		opts.Timeout = 0
	}
	if cfg.MaxTimeout > 0 && (opts.Timeout == 0 || opts.Timeout > cfg.MaxTimeout) {
		opts.Timeout = cfg.MaxTimeout
	}
	opts.MaxRows = q.MaxRows
	if opts.MaxRows < 0 {
		opts.MaxRows = 0
	}
	if cfg.MaxRows > 0 && (opts.MaxRows == 0 || opts.MaxRows > cfg.MaxRows) {
		opts.MaxRows = cfg.MaxRows
	}

	opts.Planner.Parallelism = cfg.Parallelism
	if q.Parallelism > 0 {
		opts.Planner.Parallelism = int(q.Parallelism)
	}
	return opts, nil
}

// writeRowBatch frames and flushes one batch. Flushing per batch keeps
// the client's view current and makes the buffered writer the only
// server-side buffering — when the socket is full, the flush blocks and
// backpressure reaches the executor through the sink.
func (s *session) writeRowBatch(cols []string, rows []storage.Tuple) error {
	b := wire.RowBatch{Columns: cols, Rows: rows}
	if err := s.writeFrame(wire.FrameRowBatch, wire.EncodeRowBatch(b)); err != nil {
		return err
	}
	return s.flush()
}

// sendError reports a query or protocol failure and keeps the session
// alive if the write succeeded. Returns false when the client is gone.
func (s *session) sendError(f wire.ErrorFrame) bool {
	if err := s.writeFrame(wire.FrameError, wire.EncodeError(f)); err != nil {
		return false
	}
	return s.flush() == nil
}

func (s *session) writeFrame(typ byte, payload []byte) error {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.writeTimeout()))
	return wire.WriteFrame(s.bw, typ, payload)
}

func (s *session) flush() error {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.writeTimeout()))
	return s.bw.Flush()
}
