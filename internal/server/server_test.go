package server_test

import (
	"errors"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// serverDB mirrors the engine lifecycle fixture: RA(K,V) with 60 rows,
// RB(K,V) with 40, sized so transformed joins stream multiple batches.
func serverDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New(6)
	for _, spec := range []struct {
		name string
		n    int
	}{{"RA", 60}, {"RB", 40}} {
		rel := &schema.Relation{Name: spec.name, Columns: []schema.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
		}}
		if err := db.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		for i := range spec.n {
			row := storage.Tuple{value.NewInt(int64(i % 7)), value.NewInt(int64(i % 5))}
			if err := db.Insert(spec.name, row); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Seal(spec.name); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

const serverQuery = "SELECT T1.K, T1.V FROM RA T1 WHERE T1.V IN (SELECT T2.V FROM RB T2)"

// startServer boots a server on a random port, returning its address
// and installing a cleanup that shuts it down and checks Serve's return.
func startServer(t *testing.T, db *engine.DB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(db, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after Shutdown, want nil", err)
		}
	})
	return srv, lis.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitGoroutineBaseline polls until the goroutine count returns to
// baseline (the leak-check pattern from the engine's storm test).
func waitGoroutineBaseline(t *testing.T, baseline int, label string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%s: goroutines leaked: baseline=%d now=%d\n%s",
				label, baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeQueryMatchesInProcess: every strategy's streamed result must
// equal the in-process materialized run, batch boundaries invisible.
func TestServeQueryMatchesInProcess(t *testing.T) {
	db := serverDB(t)
	_, addr := startServer(t, db, server.Config{Strategy: engine.TransformJA2, BatchRows: 7})
	c := dial(t, addr)

	for _, tc := range []struct {
		wireStrat byte
		engStrat  engine.Strategy
	}{
		{wire.StrategyDefault, engine.TransformJA2},
		{wire.StrategyNested, engine.NestedIteration},
		{wire.StrategyTransform, engine.TransformJA2},
	} {
		want, err := db.Query(serverQuery, engine.Options{Strategy: tc.engStrat})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Collect(serverQuery, client.Options{Strategy: tc.wireStrat})
		if err != nil {
			t.Fatalf("strategy %d: %v", tc.wireStrat, err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) {
			t.Errorf("strategy %d: columns %v, want %v", tc.wireStrat, got.Columns, want.Columns)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("strategy %d: %d rows differ from in-process %d",
				tc.wireStrat, len(got.Rows), len(want.Rows))
		}
		if got.Done.Rows != int64(len(want.Rows)) {
			t.Errorf("strategy %d: Done.Rows=%d, want %d", tc.wireStrat, got.Done.Rows, len(want.Rows))
		}
	}
}

// TestServeEmptyResultCarriesColumns: a zero-row result still tells the
// client its column names (the zero-row batch).
func TestServeEmptyResultCarriesColumns(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{Strategy: engine.TransformJA2})
	c := dial(t, addr)
	got, err := c.Collect("SELECT T1.K FROM RA T1 WHERE T1.V = 999", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 || !reflect.DeepEqual(got.Columns, []string{"K"}) {
		t.Errorf("got %d rows, columns %v", len(got.Rows), got.Columns)
	}
}

// TestServeErrorKeepsSession: a failed query answers with an Error
// frame and the connection stays usable for the next query.
func TestServeErrorKeepsSession(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{Strategy: engine.TransformJA2})
	c := dial(t, addr)

	_, err := c.Collect("SELECT nonsense FROM nowhere", client.Options{})
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Frame.Code != wire.CodeInternal {
		t.Fatalf("err = %v, want RemoteError with CodeInternal", err)
	}
	if got, err := c.Collect(serverQuery, client.Options{}); err != nil || len(got.Rows) == 0 {
		t.Fatalf("session dead after query error: %v", err)
	}
}

// TestServeTypedErrorsAcrossWire: qctx sentinels survive the protocol —
// a row-budget violation on the server satisfies errors.Is client-side.
func TestServeTypedErrorsAcrossWire(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{Strategy: engine.TransformJA2})
	c := dial(t, addr)
	_, err := c.Collect(serverQuery, client.Options{MaxRows: 3})
	if !errors.Is(err, qctx.ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget through the wire", err)
	}
}

// TestServeCapsApplyToUncappedClients: the server's MaxRows ceiling
// governs a client that asked for no budget at all.
func TestServeCapsApplyToUncappedClients(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{
		Strategy: engine.TransformJA2, MaxRows: 3,
	})
	c := dial(t, addr)
	if _, err := c.Collect(serverQuery, client.Options{}); !errors.Is(err, qctx.ErrRowBudget) {
		t.Fatalf("err = %v, want server-imposed ErrRowBudget", err)
	}
}

// TestServeOverloadCarriesRetryAfter: with admission saturated, a shed
// query's Error frame still yields a *qctx.OverloadError with a
// positive retry-after hint on the client side.
func TestServeOverloadCarriesRetryAfter(t *testing.T) {
	db := serverDB(t)
	db.EnableAdmission(admission.Config{MaxConcurrent: 1, QueueDepth: 0, Seed: 1})
	// Slow page reads keep the first query in its slot while the second
	// arrives and gets shed.
	db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
		Seed: 1, Latency: 1.0, LatencyDur: 2 * time.Millisecond,
	}))
	_, addr := startServer(t, db, server.Config{Strategy: engine.TransformJA2})

	c1, c2 := dial(t, addr), dial(t, addr)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c1.Collect(serverQuery, client.Options{Strategy: wire.StrategyNested})
	}()
	// Wait until the first query occupies the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for db.Admission().Stats().Running == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	_, err := c2.Collect(serverQuery, client.Options{})
	var ov *qctx.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Errorf("retry-after hint lost across the wire: %v", ov.RetryAfter)
	}
	if !errors.Is(err, qctx.ErrOverloaded) {
		t.Errorf("err = %v does not satisfy errors.Is(ErrOverloaded)", err)
	}
	wg.Wait()
}

// TestServeClientDisconnectCancelsQuery: an abandoned connection must
// cancel its in-flight query (the dead channel wired as Options.Cancel)
// instead of letting it stream into the void. Without cancellation the
// injected per-page latency makes the nested-iteration query run for
// tens of seconds; the leak check's 10s deadline would trip.
func TestServeClientDisconnectCancelsQuery(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := serverDB(t)
	db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
		Seed: 1, Latency: 1.0, LatencyDur: 20 * time.Millisecond,
	}))
	srv := server.New(db, server.Config{Strategy: engine.TransformJA2})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	c, err := client.Dial(lis.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Query(serverQuery, client.Options{Strategy: wire.StrategyNested})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	time.Sleep(50 * time.Millisecond) // let the query start grinding
	c.Close()                         // walk away without reading a row

	srv.Shutdown(100 * time.Millisecond)
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
	waitGoroutineBaseline(t, baseline, "disconnect")
}

// TestServeRejectsBadHandshake: wrong magic and wrong version both get
// a protocol Error frame, never a hang or a panic.
func TestServeRejectsBadHandshake(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{})

	for _, tc := range []struct {
		name    string
		payload []byte
	}{
		{"bad magic", append([]byte("XXXX"), wire.Version)},
		{"bad version", append([]byte(wire.Magic), 99)},
	} {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(nc, wire.FrameHello, tc.payload); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := wire.ReadFrame(nc)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if typ != wire.FrameError {
			t.Fatalf("%s: got frame 0x%02x, want Error", tc.name, typ)
		}
		f, err := wire.DecodeError(payload)
		if err != nil || f.Code != wire.CodeProtocol {
			t.Errorf("%s: frame %+v err %v, want CodeProtocol", tc.name, f, err)
		}
		nc.Close()
	}
}

// TestServeUnexpectedFrameGetsProtocolError: a non-Query frame after
// the handshake is answered with CodeProtocol before the disconnect.
func TestServeUnexpectedFrameGetsProtocolError(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.FrameHello, wire.EncodeHello(wire.Hello{Version: wire.Version})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(nc); err != nil || typ != wire.FrameHello {
		t.Fatalf("handshake reply: typ=0x%02x err=%v", typ, err)
	}
	if err := wire.WriteFrame(nc, wire.FrameDone, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := wire.DecodeError(payload)
	if typ != wire.FrameError || f.Code != wire.CodeProtocol {
		t.Errorf("got frame 0x%02x %+v, want protocol Error", typ, f)
	}
}

// TestShutdownDrainsInFlightStream (the graceful-shutdown guarantee):
// Shutdown during an in-flight streaming query lets it finish — the
// client receives the complete, correct result and a clean Done — then
// all goroutines unwind to baseline.
func TestShutdownDrainsInFlightStream(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := serverDB(t)
	db.EnableAdmission(admission.Config{MaxConcurrent: 4, Seed: 1})
	// Mild latency so the stream is still in flight when Shutdown lands.
	db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
		Seed: 1, Latency: 1.0, LatencyDur: time.Millisecond,
	}))
	want, err := db.Query(serverQuery, engine.Options{Strategy: engine.TransformJA2})
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(db, server.Config{Strategy: engine.TransformJA2, BatchRows: 4})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	c, err := client.Dial(lis.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Query(serverQuery, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("no first row: %v", st.Err())
	}

	// The stream is live; shut down underneath it.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(10 * time.Second) }()

	var rows []storage.Tuple
	rows = append(rows, append(storage.Tuple(nil), st.Row()...))
	for st.Next() {
		rows = append(rows, append(storage.Tuple(nil), st.Row()...))
	}
	if err := st.Err(); err != nil {
		t.Fatalf("in-flight stream broken by shutdown: %v", err)
	}
	if !reflect.DeepEqual(rows, want.Rows) {
		t.Errorf("drained stream delivered %d rows, want %d", len(rows), len(want.Rows))
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}

	// The server is gone: new connections must fail.
	if _, err := client.Dial(lis.Addr().String(), time.Second); err == nil {
		t.Error("dial succeeded after shutdown")
	}
	c.Close()
	waitGoroutineBaseline(t, baseline, "shutdown")
}
