package server_test

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// Resilience tests: the failure modes a hostile network inflicts on a
// session — consumers that stop reading, peers that die silently,
// frames corrupted in flight, legacy clients — must each resolve into
// a typed error and a released resource, never a wedged goroutine.

// wideDB builds BIG(K, V, P) with rows rows and a ~1 KiB string payload
// per row, so a full result overflows any write buffer plus the kernel
// socket buffers and genuinely wedges a writer whose peer stops reading.
func wideDB(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db := engine.New(6)
	pad := strings.Repeat("x", 1024)
	rel := &schema.Relation{Name: "BIG", Columns: []schema.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindInt},
		{Name: "P", Type: value.KindString},
	}}
	if err := db.CreateRelation(rel, 8); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		row := storage.Tuple{value.NewInt(int64(i)), value.NewInt(int64(i % 5)), value.NewString(pad)}
		if err := db.Insert("BIG", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Seal("BIG"); err != nil {
		t.Fatal(err)
	}
	rb := &schema.Relation{Name: "RB", Columns: []schema.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindInt},
	}}
	if err := db.CreateRelation(rb, 2); err != nil {
		t.Fatal(err)
	}
	for i := range 40 {
		row := storage.Tuple{value.NewInt(int64(i % 7)), value.NewInt(int64(i % 5))}
		if err := db.Insert("RB", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Seal("RB"); err != nil {
		t.Fatal(err)
	}
	return db
}

const wideQuery = "SELECT T1.K, T1.P FROM BIG T1 WHERE T1.V IN (SELECT T2.V FROM RB T2)"

// rawHandshake dials addr and completes a Hello exchange with the given
// flags, returning the conn and the negotiated codec.
func rawHandshake(t *testing.T, addr string, h wire.Hello) (net.Conn, *bufio.Reader, wire.Codec) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	// Pin the receive buffer small: kernel autotuning would otherwise
	// grow it to tens of MiB on loopback and absorb an entire "wedged"
	// result, making backpressure tests vacuous.
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(32 << 10)
	}
	if err := wire.WriteFrame(nc, wire.FrameHello, wire.EncodeHello(h)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.FrameHello {
		t.Fatalf("handshake reply: typ=0x%02x err=%v", typ, err)
	}
	reply, err := wire.DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	return nc, br, wire.Codec{Checksums: reply.Flags&wire.FeatureChecksum != 0}
}

// TestSlowClientEvicted: a consumer that submits a big query and never
// reads a byte must be evicted once a flush exceeds the write deadline —
// the query cancelled, the admission slot released, the session gone —
// instead of wedging a goroutine for as long as the client feels like
// staying silent.
func TestSlowClientEvicted(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// ~32 MiB of result (the JA2 join multiplies the 4000 outer rows by
	// the subquery's duplicate V values): decisively more than the
	// server's write buffer plus both kernel socket buffers can absorb,
	// so the flush wedges.
	db := wideDB(t, 4000)
	db.EnableAdmission(admission.Config{MaxConcurrent: 4, Seed: 1})
	srv, addr := startServer(t, db, server.Config{
		Strategy:     engine.TransformJA2,
		WriteTimeout: 300 * time.Millisecond,
	})

	nc, _, codec := rawHandshake(t, addr, wire.Hello{Version: wire.Version, Flags: wire.FeatureChecksum})
	q := wire.Query{SQL: wideQuery}
	if err := codec.WriteFrame(nc, wire.FrameQuery, wire.EncodeQuery(q)); err != nil {
		t.Fatal(err)
	}
	// Do not read. The server fills its write buffer and the socket,
	// then the flush stalls until the deadline evicts us. First wait for
	// the query to actually occupy its slot, or the idle Running==0
	// below would pass vacuously before execution begins.
	deadline := time.Now().Add(10 * time.Second)
	for db.Admission().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline = time.Now().Add(15 * time.Second)
	for db.Admission().Stats().Running != 0 || db.Admission().Stats().PoolUsed != 0 {
		if time.Now().After(deadline) {
			st := db.Admission().Stats()
			t.Fatalf("query still holds resources after eviction window: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The session must be gone: drain whatever was buffered and hit the
	// close. Among the final frames we should find the CodeSlowClient
	// notice if the socket had room for it; either way, EOF — not a hang.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(nc)
	sawEviction, sawDone := false, false
	for {
		typ, payload, err := codec.ReadFrame(br)
		if err != nil {
			break // EOF/reset/torn frame: the close reached us
		}
		switch typ {
		case wire.FrameDone:
			sawDone = true
		case wire.FrameError:
			if f, err := wire.DecodeError(payload); err == nil && f.Code == wire.CodeSlowClient {
				sawEviction = true
			}
		}
	}
	if sawDone {
		t.Fatal("query completed despite the stalled consumer; the result fit in kernel buffers and nothing was evicted")
	}
	t.Logf("CodeSlowClient notice delivered: %v", sawEviction)
	nc.Close()

	// The server is still healthy for other clients.
	c := dial(t, addr)
	if _, err := c.Collect("SELECT T2.K, T2.V FROM RB T2 WHERE T2.V IN (SELECT T3.V FROM RB T3)", client.Options{}); err != nil {
		t.Fatalf("server unhealthy after eviction: %v", err)
	}
	srv.Shutdown(5 * time.Second)
	waitGoroutineBaseline(t, baseline, "slow-client eviction")
}

// TestShutdownBoundedWithStalledConsumer pins the bounded-shutdown fix:
// with an hour-long write deadline (so eviction never fires) and a
// client wedged mid-drain, Shutdown(300ms) must still return promptly by
// force-closing the connection — not block until the write deadline or
// the admission drain's internal grace would get around to it.
func TestShutdownBoundedWithStalledConsumer(t *testing.T) {
	db := wideDB(t, 4000)
	db.EnableAdmission(admission.Config{MaxConcurrent: 4, Seed: 1})
	srv := server.New(db, server.Config{
		Strategy:     engine.TransformJA2,
		WriteTimeout: time.Hour,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	nc, _, codec := rawHandshake(t, lis.Addr().String(), wire.Hello{Version: wire.Version})
	if err := codec.WriteFrame(nc, wire.FrameQuery, wire.EncodeQuery(wire.Query{SQL: wideQuery})); err != nil {
		t.Fatal(err)
	}
	// Wait until the query is running and has certainly wedged its flush.
	deadline := time.Now().Add(10 * time.Second)
	for db.Admission().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)

	start := time.Now()
	srv.Shutdown(300 * time.Millisecond)
	elapsed := time.Since(start)
	// Budget: timeout + clamped grace (100ms) + scheduling slack. The
	// regression this guards against blocked for the full 5s+ admission
	// drain grace (or, worse, the write deadline).
	if elapsed > 3*time.Second {
		t.Errorf("Shutdown took %v with a stalled consumer, want bounded by ~timeout+grace", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
	// The force-close must have cut the stream: the client drains what
	// was buffered and finds a torn end, not a Done frame.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(nc)
	for {
		typ, _, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		if typ == wire.FrameDone {
			t.Fatal("stalled consumer received a complete result; the shutdown never had to cut anything")
		}
	}
	nc.Close()
}

// TestHeartbeatEvictsSilentPeer: an idle session whose client negotiated
// heartbeats but stopped answering pings is evicted after two unanswered
// intervals, with a typed goodbye.
func TestHeartbeatEvictsSilentPeer(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{
		Strategy:          engine.TransformJA2,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	nc, br, codec := rawHandshake(t, addr, wire.Hello{
		Version: wire.Version, Flags: wire.FeatureHeartbeat,
	})
	// Read frames but answer nothing: pings arrive, then the eviction
	// notice, then EOF.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	pings := 0
	for {
		typ, payload, err := codec.ReadFrame(br)
		if err != nil {
			t.Fatalf("connection died before a typed eviction (after %d pings): %v", pings, err)
		}
		if typ == wire.FramePing {
			pings++
			continue
		}
		if typ != wire.FrameError {
			t.Fatalf("unexpected frame 0x%02x", typ)
		}
		f, err := wire.DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		if f.Code != wire.CodeProtocol || !strings.Contains(f.Message, "heartbeat") {
			t.Errorf("eviction frame %+v, want CodeProtocol heartbeat timeout", f)
		}
		break
	}
	if pings < 2 {
		t.Errorf("evicted after %d pings, want at least 2 chances to answer", pings)
	}
	if _, _, err := codec.ReadFrame(br); err == nil {
		t.Error("connection still open after heartbeat eviction")
	}
}

// TestHeartbeatSparesResponsivePeer: a real client answers pings from
// its read pump, so an idle-but-alive connection survives many
// heartbeat intervals and still runs queries afterwards.
func TestHeartbeatSparesResponsivePeer(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{
		Strategy:          engine.TransformJA2,
		HeartbeatInterval: 30 * time.Millisecond,
	})
	c := dial(t, addr)
	if !c.Heartbeats() {
		t.Fatal("client did not negotiate heartbeats")
	}
	time.Sleep(400 * time.Millisecond) // a dozen intervals of idleness
	if got, err := c.Collect(serverQuery, client.Options{}); err != nil || len(got.Rows) == 0 {
		t.Fatalf("idle-but-alive client evicted: %v", err)
	}
}

// TestLegacyClientInterop: a peer sending the original five-byte Hello
// gets a five-byte, feature-free reply and plain framing — the old
// protocol, bit for bit.
func TestLegacyClientInterop(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{Strategy: engine.TransformJA2})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	legacy := wire.EncodeHello(wire.Hello{Version: wire.Version, Legacy: true})
	if len(legacy) != 5 {
		t.Fatalf("legacy hello is %d bytes, want 5", len(legacy))
	}
	if err := wire.WriteFrame(nc, wire.FrameHello, legacy); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.FrameHello {
		t.Fatalf("reply: typ=0x%02x err=%v", typ, err)
	}
	if len(payload) != 5 {
		t.Fatalf("reply payload is %d bytes, want the legacy 5 (old clients cannot parse more)", len(payload))
	}
	// Plain framing end to end: run a query the old way.
	if err := wire.WriteFrame(nc, wire.FrameQuery, wire.EncodeQuery(wire.Query{SQL: serverQuery})); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	rows := 0
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			t.Fatalf("legacy stream broke: %v", err)
		}
		switch typ {
		case wire.FrameRowBatch:
			b, err := wire.DecodeRowBatch(payload)
			if err != nil {
				t.Fatal(err)
			}
			rows += len(b.Rows)
		case wire.FrameDone:
			if rows == 0 {
				t.Error("legacy query returned no rows")
			}
			return
		default:
			t.Fatalf("unexpected frame 0x%02x", typ)
		}
	}
}

// TestCorruptQueryFrameTypedError: a checksummed frame damaged in
// flight is detected server-side and answered with a protocol Error
// frame naming the corruption — never decoded into a garbled query.
func TestCorruptQueryFrameTypedError(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{Strategy: engine.TransformJA2})
	nc, br, codec := rawHandshake(t, addr, wire.Hello{
		Version: wire.Version, Flags: wire.FeatureChecksum,
	})
	if !codec.Checksums {
		t.Fatal("server did not grant checksums")
	}
	// Encode a valid checksummed Query frame, then flip one payload byte.
	var buf strings.Builder
	if err := codec.WriteFrame(&buf, wire.FrameQuery, wire.EncodeQuery(wire.Query{SQL: serverQuery})); err != nil {
		t.Fatal(err)
	}
	frame := []byte(buf.String())
	frame[len(frame)/2] ^= 0x40
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := codec.ReadFrame(br)
	if err != nil {
		t.Fatalf("no typed reply to a corrupt frame: %v", err)
	}
	if typ != wire.FrameError {
		t.Fatalf("got frame 0x%02x, want Error", typ)
	}
	f, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Code != wire.CodeProtocol || !strings.Contains(f.Message, "corrupt") {
		t.Errorf("corruption surfaced as %+v, want CodeProtocol mentioning corruption", f)
	}
}

// TestChecksumNegotiationOptOut: DisableChecksum on either side falls
// back to plain framing without breaking the session.
func TestChecksumNegotiationOptOut(t *testing.T) {
	_, addr := startServer(t, serverDB(t), server.Config{
		Strategy: engine.TransformJA2, DisableChecksum: true,
	})
	c := dial(t, addr)
	if c.Checksums() {
		t.Error("client negotiated checksums against a server that refused them")
	}
	if got, err := c.Collect(serverQuery, client.Options{}); err != nil || len(got.Rows) == 0 {
		t.Fatalf("plain-framing fallback broken: %v", err)
	}
}

// TestWriteErrorSinkFenceReleasesPromptly: errors.Is works through the
// ConnectionLostError multi-unwrap when corruption killed the link.
func TestConnectionLostUnwrapsCause(t *testing.T) {
	cause := wire.ErrCorruptFrame
	err := error(&client.ConnectionLostError{Cause: cause})
	if !errors.Is(err, client.ErrConnectionLost) {
		t.Error("ConnectionLostError does not match ErrConnectionLost")
	}
	if !errors.Is(err, wire.ErrCorruptFrame) {
		t.Error("ConnectionLostError hides its cause from errors.Is")
	}
}
