package qctx

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
)

// The taxonomy contract: every error family is matchable with errors.Is
// through realistic wrapping — fmt.Errorf %w chains, panic containment,
// the admission layer's OverloadError — and Retryable singles out exactly
// the injected-fault family.
func TestErrorTaxonomy(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("engine: %w", err) }
	contained := func(v any) error { return Recovered(v) }

	cases := []struct {
		name      string
		err       error
		is        []error // sentinels the error must match
		isNot     []error // sentinels it must not match
		retryable bool
	}{
		{
			name:  "timeout",
			err:   wrap(ErrQueryTimeout),
			is:    []error{ErrQueryTimeout},
			isNot: []error{ErrCanceled, ErrBudgetExceeded, ErrOverloaded, ErrCircuitOpen, ErrInjectedFault},
		},
		{
			name:  "canceled",
			err:   wrap(ErrCanceled),
			is:    []error{ErrCanceled},
			isNot: []error{ErrQueryTimeout, ErrBudgetExceeded, ErrOverloaded},
		},
		{
			name:  "row budget",
			err:   wrap(ErrRowBudget),
			is:    []error{ErrRowBudget, ErrBudgetExceeded},
			isNot: []error{ErrMemoryBudget, ErrQueryTimeout, ErrOverloaded},
		},
		{
			name:  "memory budget",
			err:   wrap(ErrMemoryBudget),
			is:    []error{ErrMemoryBudget, ErrBudgetExceeded},
			isNot: []error{ErrRowBudget, ErrCircuitOpen},
		},
		{
			name:  "shed: queue full",
			err:   wrap(&OverloadError{Reason: "queue full", RetryAfter: 50 * time.Millisecond}),
			is:    []error{ErrOverloaded},
			isNot: []error{ErrQueryTimeout, ErrCanceled, ErrBudgetExceeded, ErrInjectedFault},
		},
		{
			name:  "shed: draining",
			err:   &OverloadError{Reason: "draining", RetryAfter: time.Second},
			is:    []error{ErrOverloaded},
			isNot: []error{ErrCircuitOpen},
		},
		{
			name:  "circuit open",
			err:   wrap(ErrCircuitOpen),
			is:    []error{ErrCircuitOpen},
			isNot: []error{ErrOverloaded, ErrQueryTimeout, ErrInjectedFault},
		},
		{
			name:      "injected fault, plain",
			err:       wrap(&storage.FaultError{Op: "read", File: "RA", N: 1}),
			is:        []error{ErrInjectedFault, storage.ErrInjectedFault},
			isNot:     []error{ErrQueryTimeout, ErrBudgetExceeded, ErrOverloaded},
			retryable: true,
		},
		{
			name:      "injected fault, contained from panic",
			err:       contained(&storage.FaultError{Op: "torn-write", File: "$tmp3", N: 2}),
			is:        []error{ErrInjectedFault},
			isNot:     []error{ErrCanceled, ErrOverloaded},
			retryable: true,
		},
		{
			name:  "contained non-fault panic",
			err:   contained("index out of range"),
			is:    nil,
			isNot: []error{ErrInjectedFault, ErrQueryTimeout, ErrOverloaded},
		},
		{
			name:  "timeout racing an injected fault stays final",
			err:   fmt.Errorf("%w during %w", ErrQueryTimeout, ErrInjectedFault),
			is:    []error{ErrQueryTimeout, ErrInjectedFault},
			isNot: []error{ErrCanceled},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, sentinel := range tc.is {
				if !errors.Is(tc.err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false, want true", tc.err, sentinel)
				}
			}
			for _, sentinel := range tc.isNot {
				if errors.Is(tc.err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = true, want false", tc.err, sentinel)
				}
			}
			if got := Retryable(tc.err); got != tc.retryable {
				t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.retryable)
			}
		})
	}
	if Retryable(nil) {
		t.Error("Retryable(nil) = true")
	}
}

// The shed error renders its hint and reason so operators can read logs
// without decoding error chains.
func TestOverloadErrorMessage(t *testing.T) {
	e := &OverloadError{Reason: "queue full", RetryAfter: 100 * time.Millisecond}
	for _, frag := range []string{"overloaded", "queue full", "100ms"} {
		if s := e.Error(); !containsFold(s, frag) {
			t.Errorf("message %q missing %q", s, frag)
		}
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
