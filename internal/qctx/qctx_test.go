package qctx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilContext asserts every method is a no-op on a nil receiver — the
// ungoverned fast path operators rely on.
func TestNilContext(t *testing.T) {
	var qc *QueryContext
	if err := qc.Check(); err != nil {
		t.Errorf("nil Check: %v", err)
	}
	if err := qc.AddRows(1_000_000); err != nil {
		t.Errorf("nil AddRows: %v", err)
	}
	if err := qc.AddBuffered(1 << 40); err != nil {
		t.Errorf("nil AddBuffered: %v", err)
	}
	qc.ReleaseBuffered(1)
	qc.Cancel(errors.New("x"))
	qc.Finish()
	qc.ResetUsage()
	if qc.Err() != nil || qc.Done() != nil {
		t.Error("nil context must report live and a nil Done channel")
	}
	if qc.RowsProduced() != 0 || qc.BytesBuffered() != 0 {
		t.Error("nil context must report zero usage")
	}
}

func TestCancelFirstCauseWins(t *testing.T) {
	qc := New(Limits{})
	defer qc.Finish()
	if err := qc.Check(); err != nil {
		t.Fatalf("live query: %v", err)
	}
	qc.Cancel(ErrCanceled)
	qc.Cancel(errors.New("second"))
	if err := qc.Check(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Check = %v, want ErrCanceled", err)
	}
	if err := qc.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err = %v, want ErrCanceled", err)
	}
	select {
	case <-qc.Done():
	default:
		t.Error("Done channel not closed after Cancel")
	}
}

func TestCancelNilCause(t *testing.T) {
	qc := New(Limits{})
	defer qc.Finish()
	qc.Cancel(nil)
	if err := qc.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err = %v, want ErrCanceled for nil cause", err)
	}
}

func TestTimeout(t *testing.T) {
	qc := New(Limits{Timeout: 10 * time.Millisecond})
	defer qc.Finish()
	select {
	case <-qc.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if err := qc.Check(); !errors.Is(err, ErrQueryTimeout) {
		t.Errorf("Check = %v, want ErrQueryTimeout", err)
	}
}

func TestRowBudget(t *testing.T) {
	qc := New(Limits{MaxRows: 10})
	defer qc.Finish()
	for i := 0; i < 10; i++ {
		if err := qc.AddRows(1); err != nil {
			t.Fatalf("row %d within budget: %v", i, err)
		}
	}
	err := qc.AddRows(1)
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("AddRows over budget = %v, want ErrRowBudget", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Error("ErrRowBudget must wrap ErrBudgetExceeded")
	}
	// The violation also cancels the query, so parallel workers see it.
	if err := qc.Check(); !errors.Is(err, ErrRowBudget) {
		t.Errorf("Check after violation = %v, want ErrRowBudget", err)
	}
}

func TestMemoryBudget(t *testing.T) {
	qc := New(Limits{MaxBytes: 1000})
	defer qc.Finish()
	if err := qc.AddBuffered(600); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	qc.ReleaseBuffered(600)
	if err := qc.AddBuffered(900); err != nil {
		t.Fatalf("released bytes must be reusable: %v", err)
	}
	err := qc.AddBuffered(200)
	if !errors.Is(err, ErrMemoryBudget) || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("AddBuffered over budget = %v, want ErrMemoryBudget", err)
	}
}

func TestResetUsageRearmsBudgetCancel(t *testing.T) {
	qc := New(Limits{MaxRows: 1, MaxBytes: 100})
	defer qc.Finish()
	qc.AddRows(5)
	if qc.Check() == nil {
		t.Fatal("expected canceled")
	}
	qc.ResetUsage()
	if err := qc.Check(); err != nil {
		t.Fatalf("after ResetUsage the query must be live again: %v", err)
	}
	if qc.RowsProduced() != 0 || qc.BytesBuffered() != 0 {
		t.Error("usage counters not zeroed")
	}
	// The full budget is available again.
	if err := qc.AddRows(1); err != nil {
		t.Errorf("fresh budget: %v", err)
	}
}

func TestResetUsageKeepsExplicitCancel(t *testing.T) {
	for _, cause := range []error{ErrCanceled, ErrQueryTimeout} {
		qc := New(Limits{MaxRows: 1})
		qc.Cancel(cause)
		qc.ResetUsage()
		if err := qc.Check(); !errors.Is(err, cause) {
			t.Errorf("ResetUsage cleared %v; it must only re-arm budget cancels", cause)
		}
		qc.Finish()
	}
}

func TestConcurrentCheckAndCancel(t *testing.T) {
	qc := New(Limits{MaxRows: 1000})
	defer qc.Finish()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				qc.Check()
				qc.AddRows(0)
				qc.AddBuffered(0)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		qc.Cancel(ErrCanceled)
	}()
	wg.Wait()
	if err := qc.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err = %v", err)
	}
}

func TestPanicError(t *testing.T) {
	if Recovered(nil) != nil {
		t.Fatal("Recovered(nil) must be nil")
	}
	inner := fmt.Errorf("wrapped: %w", ErrCanceled)
	pe := Recovered(inner)
	if pe == nil || len(pe.Stack) == 0 {
		t.Fatal("Recovered must capture a stack")
	}
	// An error payload stays recognizable through the panic wrapper.
	if !errors.Is(pe, ErrCanceled) {
		t.Error("errors.Is must see through PanicError to the payload")
	}
	var got *PanicError
	if !errors.As(error(pe), &got) {
		t.Error("errors.As must find the PanicError")
	}
	// A non-error payload unwraps to nothing but still formats.
	pe2 := Recovered("boom")
	if pe2.Unwrap() != nil {
		t.Error("non-error payload must unwrap to nil")
	}
	if pe2.Error() == "" {
		t.Error("empty message")
	}
}
