// Package qctx defines the query lifecycle context: a per-query carrier
// for deadlines, cooperative cancellation, and resource budgets that the
// executor checks between morsels of work. It deliberately does not wrap
// context.Context — operators sit in tight Next loops where the only
// affordable check is one atomic load or a non-blocking select on an
// already-closed channel, and the budget accounting (rows emitted, bytes
// buffered by hash builds and sorts) has no analogue in the standard
// context package.
//
// All methods are safe on a nil *QueryContext and act as no-ops, so
// operators thread the context unconditionally and ungoverned queries
// (the default) pay a single nil check.
package qctx

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The typed lifecycle errors (ErrQueryTimeout, ErrCanceled, the budget
// family, and the admission-layer families) live in errors.go.

// PanicError wraps a recovered panic so it can travel the error path.
// The engine boundary and every parallel worker convert panics from
// value/storage/exec code into one of these instead of killing the
// process.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack captured at recovery
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("query panicked: %v", p.Value)
}

// Unwrap exposes a panicked error value to errors.Is/As, so e.g. an
// injected storage fault that panics with a *storage.FaultError is still
// recognizable after containment.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered converts a recover() result into a *PanicError, capturing
// the stack at the call site. It returns nil for a nil recover value so
// it can be used unconditionally in a deferred handler.
func Recovered(v any) *PanicError {
	if v == nil {
		return nil
	}
	buf := make([]byte, 16<<10)
	return &PanicError{Value: v, Stack: buf[:runtime.Stack(buf, false)]}
}

// QueryContext governs one query execution: cancellation (explicit or by
// deadline) and resource budgets. The zero limits mean "unlimited"; a
// nil *QueryContext means "ungoverned" and every method no-ops.
type QueryContext struct {
	// done holds the current cancellation channel. It is a pointer so
	// ResetUsage can re-arm a budget-canceled query with a fresh
	// channel without racing the lock-free readers in Check and Done.
	done  atomic.Pointer[chan struct{}]
	timer *time.Timer // deadline timer, nil when no deadline

	mu    sync.Mutex
	cause error // first cancellation cause, nil until canceled

	// Budgets; 0 means unlimited. Immutable after construction.
	maxRows  int64
	maxBytes int64

	// Spill policy. Stored atomically because ForceSpill may escalate
	// it between execution attempts while per-operator readers run
	// lock-free; spillThreshold is immutable after construction.
	spill          atomic.Uint32
	spillThreshold int64

	rows     atomic.Int64 // result rows produced so far
	buffered atomic.Int64 // bytes currently buffered (hash builds, sorts)
}

// SpillPolicy selects how buffering operators respond to memory
// pressure when a spill session is available.
type SpillPolicy uint8

// The spill policies. SpillDefault is resolved by the engine (to
// SpillAuto when a spill directory is configured, SpillOff otherwise)
// before a QueryContext is built.
const (
	SpillDefault SpillPolicy = iota
	// SpillOff never spills: exceeding the memory budget fails the
	// query with ErrMemoryBudget, the pre-spill behavior.
	SpillOff
	// SpillAuto spills when a reservation would cross the memory budget
	// or the configured spill threshold, and stays in memory otherwise.
	SpillAuto
	// SpillForced refuses every reservation, pushing all buffering
	// operator state through spill runs — the chaos and metamorph
	// suites use it to exercise the spill paths deterministically.
	SpillForced
)

func (p SpillPolicy) String() string {
	switch p {
	case SpillOff:
		return "off"
	case SpillAuto:
		return "auto"
	case SpillForced:
		return "forced"
	default:
		return "default"
	}
}

// Limits configures a QueryContext.
type Limits struct {
	// Timeout bounds wall-clock execution; 0 means none.
	Timeout time.Duration
	// MaxRows bounds the number of result rows; 0 means unlimited.
	MaxRows int64
	// MaxBytes bounds bytes buffered by hash builds and sort runs at
	// any one time; 0 means unlimited.
	MaxBytes int64
	// Spill selects the spill policy (see SpillPolicy).
	Spill SpillPolicy
	// SpillThreshold makes SpillAuto spill once buffered bytes would
	// cross it, even when MaxBytes is unlimited or larger; 0 means
	// "spill only at the MaxBytes boundary".
	SpillThreshold int64
}

// New creates a QueryContext. If lim.Timeout is positive, a timer
// cancels the query with ErrQueryTimeout at the deadline — per-row
// checks then cost one closed-channel select, never a time.Now call.
// Callers must Finish() the context when the query ends to release the
// timer.
func New(lim Limits) *QueryContext {
	qc := &QueryContext{
		maxRows:        lim.MaxRows,
		maxBytes:       lim.MaxBytes,
		spillThreshold: lim.SpillThreshold,
	}
	qc.spill.Store(uint32(lim.Spill))
	ch := make(chan struct{})
	qc.done.Store(&ch)
	if lim.Timeout > 0 {
		qc.timer = time.AfterFunc(lim.Timeout, func() {
			qc.Cancel(ErrQueryTimeout)
		})
	}
	return qc
}

// Cancel cancels the query with the given cause. The first cause wins;
// later calls are no-ops. A nil cause is recorded as ErrCanceled.
func (qc *QueryContext) Cancel(cause error) {
	if qc == nil {
		return
	}
	if cause == nil {
		cause = ErrCanceled
	}
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.cause != nil {
		return
	}
	qc.cause = cause
	close(*qc.done.Load())
}

// Finish releases the deadline timer. It does not cancel the query;
// call it when execution ends, successfully or not.
func (qc *QueryContext) Finish() {
	if qc == nil || qc.timer == nil {
		return
	}
	qc.timer.Stop()
}

// Done returns a channel closed on cancellation, for operators that
// block on channel receives (ExchangeMerge) and need to wake up. A nil
// context returns nil — a receive that never fires, which is exactly
// the ungoverned behavior.
func (qc *QueryContext) Done() <-chan struct{} {
	if qc == nil {
		return nil
	}
	return *qc.done.Load()
}

// Err returns the cancellation cause, or nil if the query is live.
func (qc *QueryContext) Err() error {
	if qc == nil {
		return nil
	}
	select {
	case <-*qc.done.Load():
	default:
		return nil
	}
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return qc.cause
}

// Check is the per-morsel (or per-row, in sequential loops) gate: it
// returns the cancellation cause once the query is canceled and nil
// otherwise. The live-query fast path is one select on an open channel.
func (qc *QueryContext) Check() error {
	if qc == nil {
		return nil
	}
	select {
	case <-*qc.done.Load():
		qc.mu.Lock()
		defer qc.mu.Unlock()
		return qc.cause
	default:
		return nil
	}
}

// AddRows charges n result rows against the row budget and returns
// ErrRowBudget when the budget is exhausted (also canceling the query so
// parallel workers stop). The error is returned within the same call
// that crosses the limit — one morsel of slack at most.
func (qc *QueryContext) AddRows(n int) error {
	if qc == nil || qc.maxRows == 0 {
		return nil
	}
	if qc.rows.Add(int64(n)) > qc.maxRows {
		qc.Cancel(ErrRowBudget)
		return ErrRowBudget
	}
	return nil
}

// tracking reports whether buffered-byte accounting is live: either a
// hard budget or a spill threshold makes the counter meaningful.
func (qc *QueryContext) tracking() bool {
	return qc.maxBytes != 0 || qc.spillThreshold != 0
}

// AddBuffered charges n bytes of buffered state (hash-table partitions,
// sort runs) against the memory budget; ReleaseBuffered returns them.
// Exceeding the budget cancels the query with ErrMemoryBudget.
func (qc *QueryContext) AddBuffered(n int64) error {
	if qc == nil || !qc.tracking() {
		return nil
	}
	if qc.buffered.Add(n) > qc.maxBytes && qc.maxBytes != 0 {
		qc.Cancel(ErrMemoryBudget)
		return ErrMemoryBudget
	}
	return nil
}

// ReserveBuffered tries to charge n bytes like AddBuffered but without
// ever canceling the query: it reports false — rolling back the charge —
// when the caller should spill instead. That happens under SpillForced
// always, and under any policy when the reservation would cross the
// hard memory budget or the spill threshold. A nil or untracked context
// always grants, and a granted reservation is returned with
// ReleaseBuffered like any other charge. Operators without a spill
// session keep calling AddBuffered, so refusal here never strands an
// unspillable operator.
func (qc *QueryContext) ReserveBuffered(n int64) bool {
	if qc == nil {
		return true
	}
	if SpillPolicy(qc.spill.Load()) == SpillForced {
		return false
	}
	if !qc.tracking() {
		return true
	}
	nb := qc.buffered.Add(n)
	if (qc.maxBytes != 0 && nb > qc.maxBytes) ||
		(qc.spillThreshold != 0 && nb > qc.spillThreshold) {
		qc.buffered.Add(-n)
		return false
	}
	return true
}

// SpillPolicy reports the context's spill policy (SpillOff for nil).
func (qc *QueryContext) SpillPolicy() SpillPolicy {
	if qc == nil {
		return SpillOff
	}
	return SpillPolicy(qc.spill.Load())
}

// ForceSpill escalates the policy to SpillForced — the engine's last
// degradation rung before failing a query: operators whose reservations
// merely FIT the budget can starve a later irreducible charge (a temp
// page buffer has no spill path), so the retry refuses every
// reservation and pushes all spillable state to disk.
func (qc *QueryContext) ForceSpill() {
	if qc == nil {
		return
	}
	qc.spill.Store(uint32(SpillForced))
}

// ReleaseBuffered returns n bytes to the memory budget, e.g. when a
// hash join closes and frees its build side.
func (qc *QueryContext) ReleaseBuffered(n int64) {
	if qc == nil || !qc.tracking() {
		return
	}
	qc.buffered.Add(-n)
}

// ResetUsage zeroes the row and buffered-byte counters and, if the
// query was canceled by a budget (not a timeout or explicit cancel),
// re-arms it. The engine uses this for the one-shot sequential retry of
// a failed parallel plan: the retry gets the full budgets back but the
// original deadline keeps ticking.
func (qc *QueryContext) ResetUsage() {
	if qc == nil {
		return
	}
	qc.rows.Store(0)
	qc.buffered.Store(0)
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if qc.cause != nil && errors.Is(qc.cause, ErrBudgetExceeded) {
		qc.cause = nil
		ch := make(chan struct{})
		qc.done.Store(&ch)
	}
}

// RowsProduced reports rows charged so far (for tests and tracing).
func (qc *QueryContext) RowsProduced() int64 {
	if qc == nil {
		return 0
	}
	return qc.rows.Load()
}

// BytesBuffered reports bytes currently charged (for tests and tracing).
func (qc *QueryContext) BytesBuffered() int64 {
	if qc == nil {
		return 0
	}
	return qc.buffered.Load()
}
