// The typed error taxonomy of the lifecycle and admission layers. Every
// failure a governed query can produce belongs to exactly one family,
// each anchored by a sentinel matchable with errors.Is through any
// amount of wrapping (fmt.Errorf %w chains, PanicError containment, the
// admission layer's OverloadError). Callers — the REPL, the chaos
// harness, retry logic — branch on these sentinels, never on error
// strings.
//
// The families:
//
//	ErrQueryTimeout   the query ran past its deadline (including while
//	                  waiting in the admission queue)
//	ErrCanceled       explicit cancellation (Ctrl-C, caller, drain)
//	ErrBudgetExceeded resource budgets; ErrRowBudget and ErrMemoryBudget
//	                  wrap it to identify the resource
//	ErrOverloaded     the admission layer shed the query (full queue or
//	                  draining engine); carries a retry-after hint
//	ErrCircuitOpen    the parallel path is circuit-broken and the caller
//	                  demanded parallel execution
//	ErrInjectedFault  a chaos-harness storage fault (transient and
//	                  retryable)
//	ErrSpillCorrupt   a spill run failed its checksum or decode; the
//	                  query never saw wrong rows, and a clean re-run can
//	                  succeed (transient and retryable)
package qctx

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// Typed lifecycle errors. Budget violations wrap ErrBudgetExceeded so
// callers can test the family with errors.Is and still distinguish the
// resource via ErrRowBudget / ErrMemoryBudget.
var (
	// ErrQueryTimeout reports that the query ran past its deadline.
	ErrQueryTimeout = errors.New("query timeout exceeded")
	// ErrCanceled reports an explicit cancellation (Ctrl-C, caller).
	ErrCanceled = errors.New("query canceled")
	// ErrBudgetExceeded is the common ancestor of all budget errors.
	ErrBudgetExceeded = errors.New("query budget exceeded")
	// ErrRowBudget reports that the query produced more result rows
	// than its row budget allows.
	ErrRowBudget = fmt.Errorf("row limit: %w", ErrBudgetExceeded)
	// ErrMemoryBudget reports that hash builds / sort buffers exceeded
	// the per-query memory budget.
	ErrMemoryBudget = fmt.Errorf("memory limit: %w", ErrBudgetExceeded)

	// ErrOverloaded reports that the admission layer refused the query:
	// the queue was full, or the engine is draining. Concrete errors are
	// *OverloadError values carrying a retry-after hint.
	ErrOverloaded = errors.New("engine overloaded")
	// ErrCircuitOpen reports that repeated parallel-worker faults tripped
	// the circuit breaker and the caller explicitly demanded a parallel
	// plan (cost-gated parallel requests degrade to sequential instead).
	ErrCircuitOpen = errors.New("parallel circuit open")

	// ErrInjectedFault is the storage layer's injected-fault sentinel,
	// re-exported so the taxonomy is complete in one place. It is a
	// transient family: see Retryable.
	ErrInjectedFault = storage.ErrInjectedFault

	// ErrSpillCorrupt reports that a spill run file failed its CRC32C
	// checksum (or could not be decoded) when read back. The executor
	// guarantees corruption is detected before any row from the damaged
	// run is returned, so the result is never wrong — the query fails
	// typed, and because the runs are rewritten from scratch on a
	// re-run, the family is transient and retryable.
	ErrSpillCorrupt = errors.New("corrupt spill run")
)

// OverloadError is the concrete shed error: the admission queue was full
// (or the engine was draining) and the query was rejected without doing
// any work. RetryAfter is the controller's estimate of when capacity will
// free up — a hint, not a promise.
type OverloadError struct {
	Reason     string // "queue full", "draining"
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (%s; retry after %v)", ErrOverloaded, e.Reason, e.RetryAfter)
}

// Unwrap ties every OverloadError to the ErrOverloaded sentinel.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Retryable reports whether an error is worth a transient retry of the
// whole query: an injected storage fault (possibly contained from a
// panic) or a corrupt spill run, as long as it is not also a lifecycle
// outcome. Timeouts, cancellations, budget violations, sheds, and
// circuit-breaker rejections are final — retrying them either cannot
// succeed or would override the caller.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrQueryTimeout) || errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrCircuitOpen) {
		return false
	}
	return errors.Is(err, ErrInjectedFault) || errors.Is(err, ErrSpillCorrupt)
}
