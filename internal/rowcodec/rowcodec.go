// Package rowcodec is the shared binary encoding for tuples at rest: a
// uvarint column count followed by one kind-tagged value per column.
// The spill run files (internal/spill) and the write-ahead log
// (internal/wal) both frame sequences of these payloads with a uint32
// length prefix and a CRC32C trailer, mirroring the wire protocol's
// codec shape (internal/wire) — one encoding, three consumers, so a
// tuple that round-trips in one subsystem round-trips in all of them.
package rowcodec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/storage"
	"repro/internal/value"
)

// MaxLen caps one encoded payload. Anything larger in a length prefix is
// treated as corruption rather than attempted as an allocation.
const MaxLen = 1 << 28

// AppendTuple appends the encoding of t to dst: uvarint column count,
// then per column a kind byte followed by the payload — varint for
// integers and dates (dates as their year*10000+month*100+day encoding),
// 8-byte big-endian IEEE bits for floats, uvarint-length-prefixed bytes
// for strings, nothing for NULL.
func AppendTuple(dst []byte, t storage.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case value.KindNull:
		case value.KindInt:
			dst = binary.AppendVarint(dst, v.Int())
		case value.KindFloat:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Float()))
			dst = append(dst, b[:]...)
		case value.KindString:
			s := v.Str()
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		case value.KindDate:
			d := v.DateOf()
			dst = binary.AppendVarint(dst, int64(d.Year())*10000+int64(d.Month())*100+int64(d.Day()))
		}
	}
	return dst
}

// DecodeTuple parses one payload produced by AppendTuple, rejecting any
// malformed input with an error (never a panic). The whole payload must
// be consumed: trailing bytes are corruption.
func DecodeTuple(p []byte) (storage.Tuple, error) {
	t, rest, err := decode(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing bytes")
	}
	return t, nil
}

// DecodeTuplePrefix parses one tuple from the front of p, returning the
// remainder — for payloads that carry several tuples back to back.
func DecodeTuplePrefix(p []byte) (storage.Tuple, []byte, error) {
	return decode(p)
}

func decode(p []byte) (storage.Tuple, []byte, error) {
	ncols, n := binary.Uvarint(p)
	if n <= 0 || ncols > uint64(MaxLen) {
		return nil, nil, fmt.Errorf("bad column count")
	}
	p = p[n:]
	t := make(storage.Tuple, ncols)
	for i := range t {
		if len(p) == 0 {
			return nil, nil, fmt.Errorf("short value")
		}
		kind := value.Kind(p[0])
		p = p[1:]
		switch kind {
		case value.KindNull:
			t[i] = value.Null
		case value.KindInt:
			x, n := binary.Varint(p)
			if n <= 0 {
				return nil, nil, fmt.Errorf("bad int")
			}
			p = p[n:]
			t[i] = value.NewInt(x)
		case value.KindFloat:
			if len(p) < 8 {
				return nil, nil, fmt.Errorf("short float")
			}
			t[i] = value.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(p[:8])))
			p = p[8:]
		case value.KindString:
			l, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)-n) < l {
				return nil, nil, fmt.Errorf("bad string length")
			}
			p = p[n:]
			t[i] = value.NewString(string(p[:l]))
			p = p[l:]
		case value.KindDate:
			enc, n := binary.Varint(p)
			if n <= 0 {
				return nil, nil, fmt.Errorf("bad date")
			}
			p = p[n:]
			d, err := value.NewDate(int(enc/10000), int(enc/100)%100, int(enc%100))
			if err != nil {
				return nil, nil, fmt.Errorf("bad date payload")
			}
			t[i] = value.NewDateValue(d)
		default:
			return nil, nil, fmt.Errorf("unknown kind %d", kind)
		}
	}
	return t, p, nil
}
