package schema_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

// paperCatalog builds the catalog of the paper's two example databases:
// the S/P/SP suppliers database of the introduction and the PARTS/SUPPLY
// database of Kiessling's memo.
func paperCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	rels := []*schema.Relation{
		{Name: "S", Columns: []schema.Column{
			{Name: "SNO", Type: value.KindString},
			{Name: "SNAME", Type: value.KindString},
			{Name: "STATUS", Type: value.KindInt},
			{Name: "CITY", Type: value.KindString},
		}, Key: []string{"SNO"}},
		{Name: "P", Columns: []schema.Column{
			{Name: "PNO", Type: value.KindString},
			{Name: "PNAME", Type: value.KindString},
			{Name: "COLOR", Type: value.KindString},
			{Name: "WEIGHT", Type: value.KindInt},
			{Name: "CITY", Type: value.KindString},
		}, Key: []string{"PNO"}},
		{Name: "SP", Columns: []schema.Column{
			{Name: "SNO", Type: value.KindString},
			{Name: "PNO", Type: value.KindString},
			{Name: "QTY", Type: value.KindInt},
			{Name: "ORIGIN", Type: value.KindString},
		}, Key: []string{"SNO", "PNO"}},
		{Name: "PARTS", Columns: []schema.Column{
			{Name: "PNUM", Type: value.KindInt},
			{Name: "QOH", Type: value.KindInt},
		}},
		{Name: "SUPPLY", Columns: []schema.Column{
			{Name: "PNUM", Type: value.KindInt},
			{Name: "QUAN", Type: value.KindInt},
			{Name: "SHIPDATE", Type: value.KindDate},
		}},
	}
	for _, r := range rels {
		if err := cat.Define(r); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func resolveSQL(t *testing.T, cat *schema.Catalog, src string) (*ast.QueryBlock, []schema.OutputCol, error) {
	t.Helper()
	qb, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := schema.Resolve(cat, qb)
	return qb, out, err
}

func TestCatalogDefineErrors(t *testing.T) {
	cat := schema.NewCatalog()
	ok := &schema.Relation{Name: "R", Columns: []schema.Column{{Name: "X", Type: value.KindInt}}}
	if err := cat.Define(ok); err != nil {
		t.Fatal(err)
	}
	cases := []*schema.Relation{
		{Name: "", Columns: []schema.Column{{Name: "X"}}},
		{Name: "R", Columns: []schema.Column{{Name: "X"}}},                         // duplicate
		{Name: "r", Columns: []schema.Column{{Name: "X"}}},                         // duplicate, case-insensitive
		{Name: "Q", Columns: nil},                                                  // no columns
		{Name: "Q2", Columns: []schema.Column{{Name: ""}}},                         // unnamed column
		{Name: "Q3", Columns: []schema.Column{{Name: "A"}, {Name: "a"}}},           // dup column
		{Name: "Q4", Columns: []schema.Column{{Name: "A"}}, Key: []string{"NOPE"}}, // bad key
	}
	for _, r := range cases {
		if err := cat.Define(r); err == nil {
			t.Errorf("Define(%+v): expected error", r)
		}
	}
}

func TestCatalogLookupDropNames(t *testing.T) {
	cat := paperCatalog(t)
	if _, ok := cat.Lookup("supply"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := cat.Lookup("NOPE"); ok {
		t.Error("lookup of unknown relation succeeded")
	}
	names := cat.Names()
	want := []string{"P", "PARTS", "S", "SP", "SUPPLY"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("Names = %v", names)
	}
	cat.Drop("parts")
	if _, ok := cat.Lookup("PARTS"); ok {
		t.Error("Drop did not remove relation")
	}
}

func TestRelationHelpers(t *testing.T) {
	cat := paperCatalog(t)
	s, _ := cat.Lookup("S")
	if s.ColumnIndex("sname") != 1 {
		t.Errorf("ColumnIndex(sname) = %d", s.ColumnIndex("sname"))
	}
	if s.ColumnIndex("NOPE") != -1 {
		t.Error("ColumnIndex of unknown column")
	}
	if !s.IsKey("SNO") || s.IsKey("SNAME") {
		t.Error("IsKey wrong for S")
	}
	sp, _ := cat.Lookup("SP")
	if sp.IsKey("SNO") {
		t.Error("composite key: single column must not be the key")
	}
}

func TestResolveQualifies(t *testing.T) {
	cat := paperCatalog(t)
	qb, out, err := resolveSQL(t, cat, "SELECT SNAME FROM S WHERE STATUS > 10")
	if err != nil {
		t.Fatal(err)
	}
	if qb.Select[0].Col != (ast.ColumnRef{Table: "S", Column: "SNAME"}) {
		t.Errorf("select col = %+v", qb.Select[0].Col)
	}
	cmp := qb.Where[0].(*ast.Comparison)
	if cmp.Left != (ast.ColumnRef{Table: "S", Column: "STATUS"}) {
		t.Errorf("where col = %+v", cmp.Left)
	}
	if len(out) != 1 || out[0].Name != "SNAME" || out[0].Type != value.KindString {
		t.Errorf("output = %+v", out)
	}
}

func TestResolveAliasAndCase(t *testing.T) {
	cat := paperCatalog(t)
	qb, _, err := resolveSQL(t, cat, "SELECT x.sname FROM s x WHERE x.status > 10")
	if err != nil {
		t.Fatal(err)
	}
	// Canonical column name comes from the catalog; binding from the alias.
	if qb.Select[0].Col != (ast.ColumnRef{Table: "x", Column: "SNAME"}) {
		t.Errorf("select col = %+v", qb.Select[0].Col)
	}
}

func TestResolveCorrelatedReference(t *testing.T) {
	cat := paperCatalog(t)
	// Example 4 of the paper: SP.ORIGIN = S.CITY inside the inner block,
	// where S is bound by the outer block.
	qb, _, err := resolveSQL(t, cat, `
		SELECT SNAME FROM S
		WHERE SNO IS IN (SELECT SNO FROM SP
		                 WHERE QTY > 100 AND SP.ORIGIN = S.CITY)`)
	if err != nil {
		t.Fatal(err)
	}
	inner := ast.SubqueryOf(qb.Where[0])
	if inner == nil {
		t.Fatal("no inner block")
	}
	// Unqualified SNO and QTY in the inner block bind to SP (innermost).
	if inner.Select[0].Col != (ast.ColumnRef{Table: "SP", Column: "SNO"}) {
		t.Errorf("inner select = %+v", inner.Select[0].Col)
	}
	cmp := inner.Where[1].(*ast.Comparison)
	if cmp.Right != (ast.ColumnRef{Table: "S", Column: "CITY"}) {
		t.Errorf("correlated ref = %+v", cmp.Right)
	}
}

func TestResolveInnermostScopeWins(t *testing.T) {
	cat := paperCatalog(t)
	// CITY exists in both S (outer) and P (inner): unqualified CITY inside
	// the inner block must bind to P.
	qb, _, err := resolveSQL(t, cat, `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT PNO FROM P WHERE CITY = 'Rome')`)
	if err != nil {
		t.Fatal(err)
	}
	inner := ast.SubqueryOf(qb.Where[0])
	cmp := inner.Where[0].(*ast.Comparison)
	if cmp.Left != (ast.ColumnRef{Table: "P", Column: "CITY"}) {
		t.Errorf("CITY bound to %+v, want P", cmp.Left)
	}
}

func TestResolveAmbiguous(t *testing.T) {
	cat := paperCatalog(t)
	// SNO is in both S and SP at the same scope level.
	_, _, err := resolveSQL(t, cat, "SELECT SNO FROM S, SP")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestResolveErrors(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct {
		src, frag string
	}{
		{"SELECT X FROM NOPE", "unknown relation"},
		{"SELECT NOPE FROM S", "unknown column"},
		{"SELECT S.NOPE FROM S", "no column"},
		{"SELECT NOPE.SNO FROM S", "unknown table"},
		{"SELECT SNAME FROM S, S", "duplicate table binding"},
		{"SELECT SNAME FROM S WHERE STATUS = 'x'", "cannot compare"},
		{"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO, PNO FROM SP)", "exactly one column"},
		{"SELECT SNAME FROM S WHERE SNO = (SELECT SNO, PNO FROM SP)", "exactly one column"},
		{"SELECT SNAME FROM S WHERE SNO < ANY (SELECT SNO, PNO FROM SP)", "exactly one column"},
		{"SELECT SNAME, MAX(STATUS) FROM S", "must appear in GROUP BY"},
		{"SELECT SNAME FROM S GROUP BY SNAME", "GROUP BY without an aggregate"},
		{"SELECT SNO, SNO FROM S, SP WHERE S.SNO = SP.SNO", "ambiguous"},
		{"SELECT S.SNO, SP.SNO FROM S, SP", "duplicate output column"},
		{"SELECT SNAME FROM S WHERE SNAME IN (SELECT QTY FROM SP)", "cannot compare"},
	}
	for _, c := range cases {
		_, _, err := resolveSQL(t, cat, c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("schema.Resolve(%q): got %v, want error containing %q", c.src, err, c.frag)
		}
	}
}

func TestResolveGroupByAggregate(t *testing.T) {
	cat := paperCatalog(t)
	qb, out, err := resolveSQL(t, cat,
		"SELECT PNUM AS SUPPNUM, COUNT(SHIPDATE) AS CT FROM SUPPLY GROUP BY PNUM")
	if err != nil {
		t.Fatal(err)
	}
	if qb.GroupBy[0] != (ast.ColumnRef{Table: "SUPPLY", Column: "PNUM"}) {
		t.Errorf("GroupBy = %+v", qb.GroupBy)
	}
	if out[0].Name != "SUPPNUM" || out[0].Type != value.KindInt {
		t.Errorf("out[0] = %+v", out[0])
	}
	if out[1].Name != "CT" || out[1].Type != value.KindInt {
		t.Errorf("out[1] = %+v", out[1])
	}
}

func TestResolveAggregateResultTypes(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct {
		src  string
		want value.Kind
	}{
		{"SELECT COUNT(*) FROM SUPPLY", value.KindInt},
		{"SELECT COUNT(SHIPDATE) FROM SUPPLY", value.KindInt},
		{"SELECT MAX(SHIPDATE) FROM SUPPLY", value.KindDate},
		{"SELECT MIN(QUAN) FROM SUPPLY", value.KindInt},
		{"SELECT SUM(QUAN) FROM SUPPLY", value.KindInt},
		{"SELECT AVG(QUAN) FROM SUPPLY", value.KindFloat},
	}
	for _, c := range cases {
		_, out, err := resolveSQL(t, cat, c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if out[0].Type != c.want {
			t.Errorf("%q: type = %v, want %v", c.src, out[0].Type, c.want)
		}
	}
}

func TestResolveDateCoercion(t *testing.T) {
	cat := paperCatalog(t)
	qb, _, err := resolveSQL(t, cat, "SELECT PNUM FROM SUPPLY WHERE SHIPDATE < '1-1-80'")
	if err != nil {
		t.Fatal(err)
	}
	c := qb.Where[0].(*ast.Comparison).Right.(ast.Const)
	if c.Val.Kind() != value.KindDate {
		t.Errorf("quoted date literal not coerced: %v", c.Val)
	}
	// Coercion applies on the left side too.
	qb, _, err = resolveSQL(t, cat, "SELECT PNUM FROM SUPPLY WHERE '1-1-80' > SHIPDATE")
	if err != nil {
		t.Fatal(err)
	}
	c = qb.Where[0].(*ast.Comparison).Left.(ast.Const)
	if c.Val.Kind() != value.KindDate {
		t.Errorf("left-side date literal not coerced: %v", c.Val)
	}
}

func TestResolvePaperQueriesAll(t *testing.T) {
	cat := paperCatalog(t)
	queries := []string{
		"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')",
		"SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
		"SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)",
		"SELECT SNAME FROM S WHERE SNO IS IN (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
		"SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
		"SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
		"SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)",
		"SELECT PNUM FROM PARTS WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
		"SELECT PNUM FROM PARTS WHERE QOH < ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
	}
	for _, src := range queries {
		if _, _, err := resolveSQL(t, cat, src); err != nil {
			t.Errorf("schema.Resolve(%q): %v", src, err)
		}
	}
}

func TestResolveOrNotPredicates(t *testing.T) {
	cat := paperCatalog(t)
	_, _, err := resolveSQL(t, cat,
		"SELECT SNAME FROM S WHERE STATUS > 10 OR NOT (CITY = 'Rome' AND STATUS < 5)")
	if err != nil {
		t.Fatal(err)
	}
	// Type errors under OR are still caught.
	_, _, err = resolveSQL(t, cat, "SELECT SNAME FROM S WHERE STATUS > 10 OR CITY = 5")
	if err == nil {
		t.Error("type error under OR not caught")
	}
}

func TestResolveOrderBy(t *testing.T) {
	cat := paperCatalog(t)
	qb, _, err := resolveSQL(t, cat, "SELECT SNAME, STATUS FROM S ORDER BY STATUS DESC, SNAME")
	if err != nil {
		t.Fatal(err)
	}
	if qb.OrderBy[0].Pos != 1 || !qb.OrderBy[0].Desc {
		t.Errorf("OrderBy[0] = %+v", qb.OrderBy[0])
	}
	if qb.OrderBy[1].Pos != 0 || qb.OrderBy[1].Desc {
		t.Errorf("OrderBy[1] = %+v", qb.OrderBy[1])
	}
	// Qualified reference resolves and matches the selected column.
	qb, _, err = resolveSQL(t, cat, "SELECT S.SNAME FROM S ORDER BY S.SNAME")
	if err != nil {
		t.Fatal(err)
	}
	if qb.OrderBy[0].Pos != 0 {
		t.Errorf("qualified OrderBy = %+v", qb.OrderBy[0])
	}
	// Aggregate output by name.
	qb, _, err = resolveSQL(t, cat, "SELECT CITY, COUNT(SNO) AS CT FROM S GROUP BY CITY ORDER BY CT")
	if err != nil {
		t.Fatal(err)
	}
	if qb.OrderBy[0].Pos != 1 {
		t.Errorf("aggregate OrderBy = %+v", qb.OrderBy[0])
	}
	// Errors.
	for _, src := range []string{
		"SELECT SNAME FROM S ORDER BY STATUS",                                // not selected
		"SELECT SNAME FROM S ORDER BY NOPE",                                  // unknown
		"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP ORDER BY QTY)", // subquery
	} {
		if _, _, err := resolveSQL(t, cat, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestResolveHaving(t *testing.T) {
	cat := paperCatalog(t)
	qb, _, err := resolveSQL(t, cat,
		"SELECT CITY, COUNT(SNO) AS CT FROM S GROUP BY CITY HAVING CT > 1 AND CITY != 'Rome'")
	if err != nil {
		t.Fatal(err)
	}
	if qb.Having[0].Pos != 1 || qb.Having[1].Pos != 0 {
		t.Errorf("Having = %+v", qb.Having)
	}
	for _, src := range []string{
		"SELECT SNAME FROM S HAVING SNAME = 'x'",                             // no aggregate
		"SELECT CITY, COUNT(SNO) AS CT FROM S GROUP BY CITY HAVING NOPE > 1", // unknown output
		"SELECT CITY, COUNT(SNO) AS CT FROM S GROUP BY CITY HAVING S.CT > 1", // qualified
		"SELECT CITY, COUNT(SNO) AS CT FROM S GROUP BY CITY HAVING CT > 'x'", // type clash
	} {
		if _, _, err := resolveSQL(t, cat, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
	// NULL literal is allowed (comparison is just never true).
	if _, _, err := resolveSQL(t, cat,
		"SELECT CITY, COUNT(SNO) AS CT FROM S GROUP BY CITY HAVING CT > NULL"); err != nil {
		t.Errorf("NULL literal: %v", err)
	}
}
