// Package schema implements the catalog: relation schemas, column types and
// keys, and the name resolution that binds every column reference in a
// query block tree to a table in scope. Resolution is what turns the
// paper's syntactic notion of a "join predicate which references the
// relation of an outer query block" into something the classifier can test
// mechanically: after resolution every reference is fully qualified, so a
// correlated reference is simply one whose binding is not in the inner
// block's own FROM clause.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/value"
)

// Column describes one column of a relation.
type Column struct {
	Name string
	Type value.Kind
}

// Relation describes a stored relation (base table or materialized
// temporary table).
type Relation struct {
	Name    string
	Columns []Column
	// Key names the primary key columns, if declared. The paper's S, P,
	// SP relations declare keys; keys also let tests assert which inner
	// relations make NEST-N-J duplicate-safe.
	Key []string
}

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the relation has the named column.
func (r *Relation) HasColumn(name string) bool { return r.ColumnIndex(name) >= 0 }

// IsKey reports whether the given column is the entire declared key of the
// relation (so its values are unique).
func (r *Relation) IsKey(col string) bool {
	return len(r.Key) == 1 && strings.EqualFold(r.Key[0], col)
}

// Catalog is the set of known relations. Lookups and mutations are safe
// for concurrent use: under admission-controlled concurrency every query
// defines (and drops) its own suffixed temporary tables while other
// queries resolve names against the same catalog. Relation values are
// immutable once defined — the lock guards only the name map.
type Catalog struct {
	mu        sync.RWMutex
	relations map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{relations: make(map[string]*Relation)}
}

// Define adds a relation to the catalog. It fails on duplicate relation
// names, empty or duplicate column names, and key columns that do not
// exist.
func (c *Catalog) Define(r *Relation) error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation must have a name")
	}
	key := strings.ToUpper(r.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.relations[key]; ok {
		return fmt.Errorf("schema: relation %s already defined", r.Name)
	}
	if len(r.Columns) == 0 {
		return fmt.Errorf("schema: relation %s has no columns", r.Name)
	}
	seen := make(map[string]bool, len(r.Columns))
	for _, col := range r.Columns {
		if col.Name == "" {
			return fmt.Errorf("schema: relation %s has an unnamed column", r.Name)
		}
		up := strings.ToUpper(col.Name)
		if seen[up] {
			return fmt.Errorf("schema: relation %s has duplicate column %s", r.Name, col.Name)
		}
		seen[up] = true
	}
	for _, k := range r.Key {
		if !r.HasColumn(k) {
			return fmt.Errorf("schema: relation %s key column %s does not exist", r.Name, k)
		}
	}
	c.relations[key] = r
	return nil
}

// Drop removes a relation (used for temporary tables).
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.relations, strings.ToUpper(name))
}

// Lookup finds a relation by name, case-insensitively.
func (c *Catalog) Lookup(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.relations[strings.ToUpper(name)]
	return r, ok
}

// Names returns the defined relation names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.relations))
	for _, r := range c.relations {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}
