package schema

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// OutputCol describes one column of a query block's result.
type OutputCol struct {
	Name string
	Type value.Kind
}

// Resolve binds every column reference in the query block tree to a table
// binding that is in scope, rewriting each reference to its fully qualified
// form, and type-checks predicates. SQL scoping applies: an unqualified
// name binds in the innermost enclosing FROM clause that defines it; a
// qualified name binds to the nearest enclosing FROM clause with that
// binding. A reference that binds outside its own block is a correlated
// (outer) reference — exactly the situation that makes a nested predicate
// type-J or type-JA in Kim's classification.
//
// Resolve mutates qb in place. It returns the result schema of the
// outermost block.
func Resolve(cat *Catalog, qb *ast.QueryBlock) ([]OutputCol, error) {
	r := &resolver{cat: cat}
	return r.block(qb)
}

// resolveOrderBy maps each ORDER BY key to a SELECT-list position: by
// output name first (covering AS aliases and aggregate names), then by
// resolving the reference and matching it against the selected columns.
func (r *resolver) resolveOrderBy(qb *ast.QueryBlock, out []OutputCol) error {
	for i := range qb.OrderBy {
		item := &qb.OrderBy[i]
		pos := -1
		if item.Col.Table == "" {
			for j, c := range out {
				if strings.EqualFold(c.Name, item.Col.Column) {
					pos = j
					break
				}
			}
		}
		if pos < 0 {
			col, _, err := r.column(item.Col)
			if err != nil {
				return fmt.Errorf("schema: ORDER BY: %w", err)
			}
			for j, sel := range qb.Select {
				if !sel.IsAggregate() && sel.Col == col {
					pos = j
					break
				}
			}
			item.Col = col
		}
		if pos < 0 {
			return fmt.Errorf("schema: ORDER BY column %s must appear in the SELECT list", item.Col)
		}
		item.Pos = pos
	}
	return nil
}

type frame struct {
	bindings []string
	rels     []*Relation
}

type resolver struct {
	cat    *Catalog
	scopes []frame // innermost last
}

// depth is the current nesting level (0 at the outermost block).
func (r *resolver) depth() int { return len(r.scopes) }

func (r *resolver) block(qb *ast.QueryBlock) ([]OutputCol, error) {
	if len(qb.From) == 0 {
		return nil, fmt.Errorf("schema: query block has no FROM clause")
	}
	if len(qb.OrderBy) > 0 && r.depth() > 0 {
		return nil, fmt.Errorf("schema: ORDER BY is only valid on the outermost query block")
	}
	var f frame
	seen := make(map[string]bool)
	for _, t := range qb.From {
		rel, ok := r.cat.Lookup(t.Relation)
		if !ok {
			return nil, fmt.Errorf("schema: unknown relation %s", t.Relation)
		}
		b := strings.ToUpper(t.Binding())
		if seen[b] {
			return nil, fmt.Errorf("schema: duplicate table binding %s in FROM clause", t.Binding())
		}
		seen[b] = true
		f.bindings = append(f.bindings, t.Binding())
		f.rels = append(f.rels, rel)
	}
	r.scopes = append(r.scopes, f)
	defer func() { r.scopes = r.scopes[:len(r.scopes)-1] }()

	hasAgg := false
	var out []OutputCol
	for i := range qb.Select {
		item := &qb.Select[i]
		var typ value.Kind
		if item.Agg == value.AggCountStar {
			typ = value.KindInt
		} else {
			col, ctyp, err := r.column(item.Col)
			if err != nil {
				return nil, err
			}
			item.Col = col
			typ = ctyp
			switch item.Agg {
			case value.AggCount:
				typ = value.KindInt
			case value.AggAvg:
				typ = value.KindFloat
			case value.AggSum, value.AggMax, value.AggMin:
				// result type follows the argument
			}
		}
		if item.IsAggregate() {
			hasAgg = true
		}
		out = append(out, OutputCol{Name: item.OutputName(), Type: typ})
	}
	outNames := make(map[string]bool, len(out))
	for _, c := range out {
		if outNames[strings.ToUpper(c.Name)] {
			return nil, fmt.Errorf("schema: duplicate output column %s; use AS to disambiguate", c.Name)
		}
		outNames[strings.ToUpper(c.Name)] = true
	}

	for i := range qb.GroupBy {
		col, _, err := r.column(qb.GroupBy[i])
		if err != nil {
			return nil, err
		}
		qb.GroupBy[i] = col
	}
	if hasAgg {
		// Every plain select column must appear in GROUP BY.
		for _, item := range qb.Select {
			if item.IsAggregate() {
				continue
			}
			found := false
			for _, g := range qb.GroupBy {
				if g == item.Col {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("schema: column %s must appear in GROUP BY when aggregates are selected", item.Col)
			}
		}
	} else if len(qb.GroupBy) > 0 {
		return nil, fmt.Errorf("schema: GROUP BY without an aggregate in the SELECT clause is not supported")
	}

	for _, p := range qb.Where {
		if err := r.predicate(p); err != nil {
			return nil, err
		}
	}
	if err := r.resolveHaving(qb, out, hasAgg); err != nil {
		return nil, err
	}
	if err := r.resolveOrderBy(qb, out); err != nil {
		return nil, err
	}
	return out, nil
}

// resolveHaving maps each HAVING key to a SELECT-list position by output
// name and type-checks the literal.
func (r *resolver) resolveHaving(qb *ast.QueryBlock, out []OutputCol, hasAgg bool) error {
	if len(qb.Having) == 0 {
		return nil
	}
	if !hasAgg {
		return fmt.Errorf("schema: HAVING requires an aggregate query")
	}
	for i := range qb.Having {
		h := &qb.Having[i]
		if h.Col.Table != "" {
			return fmt.Errorf("schema: HAVING references output columns by name; %s is qualified", h.Col)
		}
		pos := -1
		for j, c := range out {
			if strings.EqualFold(c.Name, h.Col.Column) {
				pos = j
				break
			}
		}
		if pos < 0 {
			return fmt.Errorf("schema: HAVING column %s must name an output column", h.Col)
		}
		h.Pos = pos
		if typeClass(out[pos].Type) != typeClass(h.Val.Kind()) && h.Val.Kind() != value.KindNull {
			return fmt.Errorf("schema: HAVING cannot compare %s with %s", out[pos].Type, h.Val.Kind())
		}
	}
	return nil
}

// column resolves a reference to its qualified form and type.
func (r *resolver) column(c ast.ColumnRef) (ast.ColumnRef, value.Kind, error) {
	if c.Column == "" {
		return c, 0, fmt.Errorf("schema: empty column reference")
	}
	if c.Table != "" {
		for i := len(r.scopes) - 1; i >= 0; i-- {
			f := r.scopes[i]
			for j, b := range f.bindings {
				if strings.EqualFold(b, c.Table) {
					idx := f.rels[j].ColumnIndex(c.Column)
					if idx < 0 {
						return c, 0, fmt.Errorf("schema: relation %s has no column %s", b, c.Column)
					}
					return ast.ColumnRef{Table: b, Column: f.rels[j].Columns[idx].Name},
						f.rels[j].Columns[idx].Type, nil
				}
			}
		}
		return c, 0, fmt.Errorf("schema: unknown table %s in reference %s", c.Table, c)
	}
	for i := len(r.scopes) - 1; i >= 0; i-- {
		f := r.scopes[i]
		var hit ast.ColumnRef
		var typ value.Kind
		matches := 0
		for j, b := range f.bindings {
			if idx := f.rels[j].ColumnIndex(c.Column); idx >= 0 {
				matches++
				hit = ast.ColumnRef{Table: b, Column: f.rels[j].Columns[idx].Name}
				typ = f.rels[j].Columns[idx].Type
			}
		}
		if matches > 1 {
			return c, 0, fmt.Errorf("schema: ambiguous column %s", c.Column)
		}
		if matches == 1 {
			return hit, typ, nil
		}
	}
	return c, 0, fmt.Errorf("schema: unknown column %s", c.Column)
}

func (r *resolver) predicate(p ast.Predicate) error {
	switch p := p.(type) {
	case *ast.Comparison:
		lt, err := r.expr(&p.Left)
		if err != nil {
			return err
		}
		rt, err := r.expr(&p.Right)
		if err != nil {
			return err
		}
		return r.checkComparable(&p.Left, lt, &p.Right, rt)
	case *ast.InPred:
		lt, err := r.expr(&p.Left)
		if err != nil {
			return err
		}
		sub, err := r.subquery(p.Sub)
		if err != nil {
			return err
		}
		if len(sub) != 1 {
			return fmt.Errorf("schema: IN subquery must select exactly one column, got %d", len(sub))
		}
		var dummy ast.Expr = ast.Const{Val: value.Null}
		return r.checkComparable(&p.Left, lt, &dummy, sub[0].Type)
	case *ast.ExistsPred:
		_, err := r.subquery(p.Sub)
		return err
	case *ast.QuantPred:
		lt, err := r.expr(&p.Left)
		if err != nil {
			return err
		}
		sub, err := r.subquery(p.Sub)
		if err != nil {
			return err
		}
		if len(sub) != 1 {
			return fmt.Errorf("schema: quantified subquery must select exactly one column, got %d", len(sub))
		}
		var dummy ast.Expr = ast.Const{Val: value.Null}
		return r.checkComparable(&p.Left, lt, &dummy, sub[0].Type)
	case *ast.OrPred:
		if err := r.predicate(p.Left); err != nil {
			return err
		}
		return r.predicate(p.Right)
	case *ast.AndPred:
		if err := r.predicate(p.Left); err != nil {
			return err
		}
		return r.predicate(p.Right)
	case *ast.NotPred:
		return r.predicate(p.P)
	default:
		return fmt.Errorf("schema: unknown predicate type %T", p)
	}
}

// expr resolves an expression in place and returns its type.
func (r *resolver) expr(e *ast.Expr) (value.Kind, error) {
	switch ex := (*e).(type) {
	case ast.ColumnRef:
		col, typ, err := r.column(ex)
		if err != nil {
			return 0, err
		}
		*e = col
		return typ, nil
	case ast.Const:
		return ex.Val.Kind(), nil
	case *ast.Subquery:
		out, err := r.subquery(ex.Block)
		if err != nil {
			return 0, err
		}
		if len(out) != 1 {
			return 0, fmt.Errorf("schema: scalar subquery must select exactly one column, got %d", len(out))
		}
		return out[0].Type, nil
	default:
		return 0, fmt.Errorf("schema: unknown expression type %T", ex)
	}
}

func (r *resolver) subquery(qb *ast.QueryBlock) ([]OutputCol, error) {
	return r.block(qb)
}

// typeClass groups kinds into comparability classes.
func typeClass(k value.Kind) string {
	switch k {
	case value.KindInt, value.KindFloat:
		return "numeric"
	case value.KindString:
		return "string"
	case value.KindDate:
		return "date"
	case value.KindNull:
		return "null"
	default:
		return "?"
	}
}

// checkComparable verifies two expression types can be compared, coercing a
// string literal to a date when compared against a date (the paper writes
// dates bare, but users may quote them).
func (r *resolver) checkComparable(le *ast.Expr, lt value.Kind, re *ast.Expr, rt value.Kind) error {
	coerce := func(e *ast.Expr, k value.Kind) value.Kind {
		c, ok := (*e).(ast.Const)
		if !ok || c.Val.Kind() != value.KindString || k != value.KindDate {
			return 0
		}
		d, err := value.ParseDate(c.Val.Str())
		if err != nil {
			return 0
		}
		*e = ast.Const{Val: value.NewDateValue(d)}
		return value.KindDate
	}
	if k := coerce(le, rt); k != 0 {
		lt = k
	}
	if k := coerce(re, lt); k != 0 {
		rt = k
	}
	lc, rc := typeClass(lt), typeClass(rt)
	if lc == "null" || rc == "null" || lc == rc {
		return nil
	}
	return fmt.Errorf("schema: cannot compare %s with %s", lt, rt)
}
