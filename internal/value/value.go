// Package value implements the SQL scalar value system used throughout the
// engine: typed values (integer, float, string, date), the SQL NULL, and the
// three-valued logic that comparison predicates produce.
//
// The semantics follow the SQL dialect of the paper "Optimization of Nested
// SQL Queries Revisited" (Ganski & Wong, SIGMOD 1987) and its references:
// comparisons involving NULL yield Unknown, aggregate functions other than
// COUNT return NULL over an empty input (the paper assumes MAX({}) = NULL in
// section 5.3), and COUNT ignores NULL inputs, which is what makes the
// outer-join fix for the COUNT bug work.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The kinds of SQL values supported by the engine.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL.
//
// Values are small (no pointers for numeric kinds) and are passed by value.
// Dates are stored in the I field encoded as described in date.go.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an integer.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the float payload, widening an integer if necessary. It
// panics for non-numeric values.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("value: Float() on %s", v.kind))
	}
}

// Str returns the string payload. It panics if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s", v.kind))
	}
	return v.s
}

// String renders the value the way the paper prints table contents: bare
// numbers and dates, quoted strings, and the special null mark for NULL
// (the paper uses a lambda; we print NULL).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return Date{enc: v.i}.String()
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// isNumeric reports whether the value is an integer or float.
func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// fnv64 constants for Hash (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a 64-bit hash consistent with Equal: Equal values hash
// identically (NULL included), so it can partition tuples across parallel
// workers and key hash tables. Because Equal compares numerics across
// int/float, numeric values hash through their float64 payload; large
// integers that collapse under the float conversion also collapse under
// Equal, so consistency is preserved. Unequal values may collide — users
// must confirm with Equal.
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset)
	mix8 := func(x uint64) {
		for range 8 {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		f := v.Float()
		if f == 0 {
			f = 0 // fold -0.0 into +0.0: they are Equal
		}
		mix8(math.Float64bits(f))
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= fnvPrime
		}
	case KindDate:
		h ^= 0xda
		h *= fnvPrime
		mix8(uint64(v.i))
	}
	return h
}

// Equal reports whether two values are identical (same kind and payload).
// Unlike SQL equality it treats NULL as equal to NULL; it exists for tests
// and duplicate elimination, where NULL must group with NULL.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric values compare across int/float.
		if v.isNumeric() && o.isNumeric() {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt, KindDate:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	default:
		return false
	}
}
