package value

import (
	"testing"
	"testing/quick"
)

// mustParseDate parses a known-good date literal for test data.
func mustParseDate(s string) Date {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindDate:   "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if !Null.IsNull() {
		t.Fatal("Null must be NULL")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float = %v", got)
	}
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("int widened = %v", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str = %q", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Int on string":   func() { NewString("x").Int() },
		"Float on string": func() { NewString("x").Float() },
		"Str on int":      func() { NewInt(1).Str() },
		"DateOf on int":   func() { NewInt(1).DateOf() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("P2"), "'P2'"},
		{NewDateValue(mustParseDate("7-3-79")), "7-3-79"},
		{NewDateValue(mustParseDate("2001-02-03")), "2001-02-03"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.kind, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Null.Equal(Null) {
		t.Error("NULL must Equal NULL (grouping semantics)")
	}
	if !NewInt(3).Equal(NewFloat(3)) {
		t.Error("3 must Equal 3.0 across kinds")
	}
	if NewInt(3).Equal(NewString("3")) {
		t.Error("3 must not Equal '3'")
	}
	if !NewString("a").Equal(NewString("a")) {
		t.Error("'a' must Equal 'a'")
	}
	if NewString("a").Equal(NewString("b")) {
		t.Error("'a' must not Equal 'b'")
	}
	d := NewDateValue(mustParseDate("1-1-80"))
	if !d.Equal(NewDateValue(mustParseDate("1-1-80"))) {
		t.Error("equal dates must Equal")
	}
}

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("a"), 1},
		{NewString("a"), NewString("a"), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("Compare with NULL must error")
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("Compare int/string must error")
	}
	if _, err := Compare(NewDateValue(mustParseDate("1-1-80")), NewInt(1)); err == nil {
		t.Error("Compare date/int must error")
	}
}

func TestCompareOpApply(t *testing.T) {
	one, two := NewInt(1), NewInt(2)
	cases := []struct {
		op   CompareOp
		a, b Value
		want Tri
	}{
		{OpEq, one, one, True},
		{OpEq, one, two, False},
		{OpNe, one, two, True},
		{OpNe, one, one, False},
		{OpLt, one, two, True},
		{OpLt, two, one, False},
		{OpLe, one, one, True},
		{OpLe, two, one, False},
		{OpGt, two, one, True},
		{OpGt, one, two, False},
		{OpGe, one, one, True},
		{OpGe, one, two, False},
		{OpEq, Null, one, Unknown},
		{OpLt, one, Null, Unknown},
		{OpNe, Null, Null, Unknown},
		// NULL-safe equality is definite on every input.
		{OpEqNull, one, one, True},
		{OpEqNull, one, two, False},
		{OpEqNull, Null, Null, True},
		{OpEqNull, Null, one, False},
		{OpEqNull, one, Null, False},
	}
	for _, c := range cases {
		got, err := c.op.Apply(c.a, c.b)
		if err != nil {
			t.Fatalf("%v.Apply(%v,%v): %v", c.op, c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v.Apply(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareOpFlipNegate(t *testing.T) {
	ops := []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	// Property: a op b == b flip(op) a, and a op b == !(a negate(op) b).
	f := func(a, b int8) bool {
		va, vb := NewInt(int64(a)), NewInt(int64(b))
		for _, op := range ops {
			direct, _ := op.Apply(va, vb)
			flipped, _ := op.Flip().Apply(vb, va)
			if direct != flipped {
				return false
			}
			neg, _ := op.Negate().Apply(va, vb)
			if direct != neg.Not() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareOpString(t *testing.T) {
	want := map[CompareOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEqNull: "<=>"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestTriLogic(t *testing.T) {
	ts := []Tri{False, Unknown, True}
	// Kleene logic: And is min, Or is max over False < Unknown < True.
	for _, a := range ts {
		for _, b := range ts {
			min, max := a, a
			if b < a {
				min = b
			}
			if b > a {
				max = b
			}
			if got := a.And(b); got != min {
				t.Errorf("And(%v,%v) = %v, want %v", a, b, got, min)
			}
			if got := a.Or(b); got != max {
				t.Errorf("Or(%v,%v) = %v, want %v", a, b, got, max)
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not truth table wrong")
	}
	if !True.IsTrue() || False.IsTrue() || Unknown.IsTrue() {
		t.Error("IsTrue wrong")
	}
	if TriOf(true) != True || TriOf(false) != False {
		t.Error("TriOf wrong")
	}
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("Tri.String wrong")
	}
}

func TestTotalCompareNulls(t *testing.T) {
	if c, err := TotalCompare(Null, NewInt(-100)); err != nil || c >= 0 {
		t.Errorf("NULL must sort before any value: %d, %v", c, err)
	}
	if c, err := TotalCompare(NewInt(-100), Null); err != nil || c <= 0 {
		t.Errorf("no value sorts before NULL: %d, %v", c, err)
	}
	if c, err := TotalCompare(Null, Null); err != nil || c != 0 {
		t.Errorf("TotalCompare(NULL,NULL) = %d, %v, want 0", c, err)
	}
	if c, err := TotalCompare(NewInt(1), NewInt(2)); err != nil || c != -1 {
		t.Errorf("TotalCompare(1,2) = %d, %v", c, err)
	}
	if c, err := TotalCompare(NewInt(2), NewInt(1)); err != nil || c != 1 {
		t.Errorf("TotalCompare(2,1) = %d, %v", c, err)
	}
	if _, err := TotalCompare(NewInt(1), NewString("a")); err == nil {
		t.Error("TotalCompare across kinds must error, not panic")
	}
}

func TestDateParsing(t *testing.T) {
	cases := []struct {
		in      string
		y, m, d int
	}{
		{"7-3-79", 1979, 7, 3},
		{"1-1-80", 1980, 1, 1},
		{"8/14/77", 1977, 8, 14},
		{"6/22/76", 1976, 6, 22},
		{"1979-07-03", 1979, 7, 3},
	}
	for _, c := range cases {
		d, err := ParseDate(c.in)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", c.in, err)
		}
		if d.Year() != c.y || d.Month() != c.m || d.Day() != c.d {
			t.Errorf("ParseDate(%q) = %d-%d-%d", c.in, d.Year(), d.Month(), d.Day())
		}
	}
}

func TestDateParsingErrors(t *testing.T) {
	for _, in := range []string{"x-y-z", "1-1", "13-1-79", "0-1-79", "1-32-79", "", "1-1-80-2"} {
		if _, err := ParseDate(in); err == nil {
			t.Errorf("ParseDate(%q): expected error", in)
		}
	}
}

func TestDateOrdering(t *testing.T) {
	early := NewDateValue(mustParseDate("6/22/76"))
	late := NewDateValue(mustParseDate("1-1-80"))
	tri, err := OpLt.Apply(early, late)
	if err != nil || tri != True {
		t.Errorf("6/22/76 < 1-1-80 = %v, %v", tri, err)
	}
	// The paper's restriction SHIPDATE < 1-1-80 in Kiessling's Q2.
	cutoff := NewDateValue(mustParseDate("1-1-80"))
	ship := NewDateValue(mustParseDate("5-7-83"))
	tri, _ = OpLt.Apply(ship, cutoff)
	if tri != False {
		t.Errorf("5-7-83 < 1-1-80 must be false, got %v", tri)
	}
}

func TestAggFuncByName(t *testing.T) {
	for name, want := range map[string]AggFunc{
		"MAX": AggMax, "min": AggMin, "Sum": AggSum, "AVG": AggAvg, "count": AggCount,
	} {
		got, ok := AggFuncByName(name)
		if !ok || got != want {
			t.Errorf("AggFuncByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggFuncByName("MEDIAN"); ok {
		t.Error("MEDIAN must not resolve")
	}
}

func TestAggFuncString(t *testing.T) {
	if AggMax.String() != "MAX" || AggCount.String() != "COUNT" || AggCountStar.String() != "COUNT" {
		t.Error("AggFunc.String wrong")
	}
	if AggNone.String() != "" {
		t.Error("AggNone.String must be empty")
	}
	if !AggCount.IsCount() || !AggCountStar.IsCount() || AggMax.IsCount() {
		t.Error("IsCount wrong")
	}
}

func accumulate(t *testing.T, fn AggFunc, vs ...Value) Value {
	t.Helper()
	acc := NewAccumulator(fn)
	for _, v := range vs {
		if err := acc.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return acc.Result()
}

func TestAccumulatorEmptyInputs(t *testing.T) {
	// MAX({}) = NULL — the assumption in section 5.3 of the paper.
	for _, fn := range []AggFunc{AggMax, AggMin, AggSum, AggAvg} {
		if got := accumulate(t, fn); !got.IsNull() {
			t.Errorf("%v over empty = %v, want NULL", fn, got)
		}
	}
	// COUNT({}) = 0 — the value Kim's NEST-JA can never produce (the
	// COUNT bug, section 5.1).
	for _, fn := range []AggFunc{AggCount, AggCountStar} {
		got := accumulate(t, fn)
		if got.IsNull() || got.Int() != 0 {
			t.Errorf("%v over empty = %v, want 0", fn, got)
		}
	}
}

func TestAccumulatorNullHandling(t *testing.T) {
	// COUNT(col) ignores NULLs; COUNT(*) counts rows. This is exactly why
	// NEST-JA2 must rewrite COUNT(*) to COUNT(join column) after the outer
	// join (section 5.2.1).
	if got := accumulate(t, AggCount, Null, NewInt(1), Null); got.Int() != 1 {
		t.Errorf("COUNT with NULLs = %v, want 1", got)
	}
	if got := accumulate(t, AggCountStar, Null, NewInt(1), Null); got.Int() != 3 {
		t.Errorf("COUNT(*) with NULLs = %v, want 3", got)
	}
	if got := accumulate(t, AggMax, Null, Null); !got.IsNull() {
		t.Errorf("MAX over all-NULL = %v, want NULL", got)
	}
	if got := accumulate(t, AggSum, Null, NewInt(2), NewInt(3)); got.Int() != 5 {
		t.Errorf("SUM ignoring NULLs = %v, want 5", got)
	}
}

func TestAccumulatorMaxMin(t *testing.T) {
	vs := []Value{NewInt(4), NewInt(2), NewInt(5)}
	if got := accumulate(t, AggMax, vs...); got.Int() != 5 {
		t.Errorf("MAX = %v", got)
	}
	if got := accumulate(t, AggMin, vs...); got.Int() != 2 {
		t.Errorf("MIN = %v", got)
	}
	// Dates aggregate too (MAX(SHIPDATE) style).
	d1 := NewDateValue(mustParseDate("7-3-79"))
	d2 := NewDateValue(mustParseDate("5-7-83"))
	if got := accumulate(t, AggMax, d1, d2); !got.Equal(d2) {
		t.Errorf("MAX(dates) = %v", got)
	}
	if got := accumulate(t, AggMin, d1, d2); !got.Equal(d1) {
		t.Errorf("MIN(dates) = %v", got)
	}
}

func TestAccumulatorSumAvg(t *testing.T) {
	if got := accumulate(t, AggSum, NewInt(1), NewInt(2), NewInt(3)); got.Kind() != KindInt || got.Int() != 6 {
		t.Errorf("SUM(ints) = %v, want int 6", got)
	}
	if got := accumulate(t, AggSum, NewInt(1), NewFloat(0.5)); got.Kind() != KindFloat || got.Float() != 1.5 {
		t.Errorf("SUM(mixed) = %v, want 1.5", got)
	}
	if got := accumulate(t, AggAvg, NewInt(1), NewInt(2)); got.Float() != 1.5 {
		t.Errorf("AVG = %v, want 1.5", got)
	}
}

func TestAccumulatorErrors(t *testing.T) {
	acc := NewAccumulator(AggSum)
	if err := acc.Add(NewString("x")); err == nil {
		t.Error("SUM over string must error")
	}
	acc = NewAccumulator(AggMax)
	if err := acc.Add(NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(NewString("x")); err == nil {
		t.Error("MAX over mixed kinds must error")
	}
	acc = NewAccumulator(AggNone)
	if err := acc.Add(NewInt(1)); err == nil {
		t.Error("accumulate into AggNone must error")
	}
	if !NewAccumulator(AggNone).Result().IsNull() {
		t.Error("AggNone result must be NULL")
	}
}

// Property: for any multiset of ints, COUNT = len, MAX/MIN bound every
// element, SUM is the arithmetic sum, AVG = SUM/COUNT.
func TestAccumulatorProperties(t *testing.T) {
	f := func(xs []int16) bool {
		vs := make([]Value, len(xs))
		var sum int64
		for i, x := range xs {
			vs[i] = NewInt(int64(x))
			sum += int64(x)
		}
		if got := accumulate(t, AggCount, vs...); got.Int() != int64(len(xs)) {
			return false
		}
		if got := accumulate(t, AggSum, vs...); len(xs) > 0 && got.Int() != sum {
			return false
		}
		if len(xs) == 0 {
			return true
		}
		maxV := accumulate(t, AggMax, vs...)
		minV := accumulate(t, AggMin, vs...)
		for _, v := range vs {
			cMax, err1 := TotalCompare(maxV, v)
			cMin, err2 := TotalCompare(v, minV)
			if err1 != nil || err2 != nil || cMax < 0 || cMin < 0 {
				return false
			}
		}
		avg := accumulate(t, AggAvg, vs...)
		return avg.Float() == float64(sum)/float64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		NewInt(42), NewInt(-7),
		NewFloat(2.5), NewFloat(-0.0),
		NewString(""), NewString("O'BRIEN|x"),
		NewDateValue(mustParseDate("7-3-79")),
	}
	for _, v := range vals {
		b, err := v.GobEncode()
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		var got Value
		if err := got.GobDecode(b); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestGobDecodeErrors(t *testing.T) {
	var v Value
	for _, b := range [][]byte{
		nil,
		{99},              // unknown kind
		{byte(KindInt)},   // missing varint
		{byte(KindFloat)}, // short float
		{byte(KindFloat), 1, 2, 3},
	} {
		if err := v.GobDecode(b); err == nil {
			t.Errorf("GobDecode(%v): expected error", b)
		}
	}
}
