package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Date is a calendar date. The paper's example data uses dates such as
// 7-3-79 and 8/14/77 (month-day-two-digit-year, with two-digit years in the
// 1900s); we also accept ISO YYYY-MM-DD. Dates are encoded as the integer
// year*10000 + month*100 + day so that the natural integer order is
// chronological order, which is all the engine's comparisons and sorts need.
type Date struct {
	enc int64
}

// NewDate builds a date from components. It validates ranges loosely (month
// 1-12, day 1-31); the engine does not need full calendar arithmetic.
func NewDate(year, month, day int) (Date, error) {
	if month < 1 || month > 12 || day < 1 || day > 31 || year < 0 || year > 9999 {
		return Date{}, fmt.Errorf("value: invalid date %d-%d-%d", month, day, year)
	}
	return Date{enc: int64(year)*10000 + int64(month)*100 + int64(day)}, nil
}

// ParseDate parses the date syntaxes that appear in the paper and in our
// test data:
//
//	M-D-YY   (7-3-79: July 3, 1979)
//	M/D/YY   (8/14/77)
//	YYYY-MM-DD (1979-07-03)
//
// Two-digit years are interpreted in the 1900s, matching the paper's data.
func ParseDate(s string) (Date, error) {
	sep := "-"
	if strings.Contains(s, "/") {
		sep = "/"
	}
	parts := strings.Split(s, sep)
	if len(parts) != 3 {
		return Date{}, fmt.Errorf("value: cannot parse date %q", s)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return Date{}, fmt.Errorf("value: cannot parse date %q: %v", s, err)
		}
		nums[i] = n
	}
	if len(parts[0]) == 4 {
		// ISO: YYYY-MM-DD.
		return NewDate(nums[0], nums[1], nums[2])
	}
	year := nums[2]
	if year < 100 {
		year += 1900
	}
	return NewDate(year, nums[0], nums[1])
}

// Year returns the calendar year.
func (d Date) Year() int { return int(d.enc / 10000) }

// Month returns the calendar month (1-12).
func (d Date) Month() int { return int(d.enc/100) % 100 }

// Day returns the day of month.
func (d Date) Day() int { return int(d.enc % 100) }

// String renders the date in the paper's M-D-YY style for years in the
// 1900s and ISO otherwise.
func (d Date) String() string {
	y := d.Year()
	if y >= 1900 && y < 2000 {
		return fmt.Sprintf("%d-%d-%02d", d.Month(), d.Day(), y-1900)
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, d.Month(), d.Day())
}

// NewDateValue wraps a Date as a Value.
func NewDateValue(d Date) Value { return Value{kind: KindDate, i: d.enc} }

// DateOf extracts the Date payload. It panics if the value is not a date.
func (v Value) DateOf() Date {
	if v.kind != KindDate {
		panic(fmt.Sprintf("value: DateOf() on %s", v.kind))
	}
	return Date{enc: v.i}
}
