package value

import "fmt"

// AggFunc identifies a SQL aggregate function. AggNone marks a plain
// (non-aggregate) select item.
type AggFunc uint8

// The aggregate functions of the paper's dialect. AggCountStar is COUNT(*),
// which counts rows; AggCount is COUNT(column), which counts non-NULL
// values. The distinction drives section 5.2.1 of the paper: after the
// outer-join rewrite, COUNT(*) would count the NULL-padded row of an
// unmatched group as 1, so NEST-JA2 must convert COUNT(*) to COUNT over the
// inner join column.
const (
	AggNone AggFunc = iota
	AggMax
	AggMin
	AggSum
	AggAvg
	AggCount
	AggCountStar
)

// String renders the aggregate name in SQL syntax (without its argument).
func (f AggFunc) String() string {
	switch f {
	case AggNone:
		return ""
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount, AggCountStar:
		return "COUNT"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// IsCount reports whether the function is COUNT in either form. COUNT is
// the aggregate that makes Kim's NEST-JA unsound (the COUNT bug, section
// 5.1) and the one for which NEST-JA2 must use an outer join.
func (f AggFunc) IsCount() bool { return f == AggCount || f == AggCountStar }

// AggFuncByName resolves an aggregate function name (case-insensitively).
func AggFuncByName(name string) (AggFunc, bool) {
	switch upper(name) {
	case "MAX":
		return AggMax, true
	case "MIN":
		return AggMin, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "COUNT":
		return AggCount, true
	default:
		return AggNone, false
	}
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Accumulator folds a stream of values into an aggregate result.
//
// SQL semantics implemented here, on which the paper's examples depend:
//
//   - COUNT(column) counts non-NULL inputs, so after an outer join the
//     NULL-padded tuples of an unmatched group contribute 0 (section 5.2).
//   - COUNT(*) counts every row.
//   - MAX/MIN/SUM/AVG ignore NULL inputs and return NULL over an empty (or
//     all-NULL) input — the paper assumes MAX({}) = NULL in section 5.3.
type Accumulator struct {
	fn      AggFunc
	count   int64
	sum     float64
	sumInt  int64
	intOnly bool
	best    Value
	seen    bool
}

// NewAccumulator returns an empty accumulator for fn.
func NewAccumulator(fn AggFunc) *Accumulator {
	return &Accumulator{fn: fn, intOnly: true}
}

// Add folds one input value.
func (a *Accumulator) Add(v Value) error {
	if a.fn == AggCountStar {
		a.count++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	switch a.fn {
	case AggCount:
		a.count++
	case AggMax:
		if !a.seen {
			a.best, a.seen = v, true
			return nil
		}
		c, err := Compare(v, a.best)
		if err != nil {
			return err
		}
		if c > 0 {
			a.best = v
		}
	case AggMin:
		if !a.seen {
			a.best, a.seen = v, true
			return nil
		}
		c, err := Compare(v, a.best)
		if err != nil {
			return err
		}
		if c < 0 {
			a.best = v
		}
	case AggSum, AggAvg:
		if !v.isNumeric() {
			return fmt.Errorf("value: %s over non-numeric %s", a.fn, v.Kind())
		}
		if v.Kind() != KindInt {
			a.intOnly = false
		} else {
			a.sumInt += v.Int()
		}
		a.sum += v.Float()
		a.count++
	default:
		return fmt.Errorf("value: cannot accumulate into %s", a.fn)
	}
	return nil
}

// Result produces the aggregate value for everything added so far.
func (a *Accumulator) Result() Value {
	switch a.fn {
	case AggCount, AggCountStar:
		return NewInt(a.count)
	case AggMax, AggMin:
		if !a.seen {
			return Null
		}
		return a.best
	case AggSum:
		if a.count == 0 {
			return Null
		}
		if a.intOnly {
			return NewInt(a.sumInt)
		}
		return NewFloat(a.sum)
	case AggAvg:
		if a.count == 0 {
			return Null
		}
		return NewFloat(a.sum / float64(a.count))
	default:
		return Null
	}
}
