package value

import "fmt"

// CompareOp is a scalar comparison operator. The paper's SQL dialect uses
// =, !=, <, >, <=, >= and the System R spellings !< and !> (which the
// parser normalizes to >= and <=).
type CompareOp uint8

// The comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// OpEqNull is NULL-safe equality: NULL <=> NULL is True and
	// NULL <=> x is False, where = yields Unknown. It is not part of the
	// paper's dialect and the parser never produces it; NEST-JA2 uses it
	// for the back-join with the grouped temp table, whose key columns
	// carry the outer relation's NULLs (the COUNT path materializes a
	// CT=0 group for them, and a plain = would drop it — the same class
	// of bug as Kim's COUNT bug, one join later).
	OpEqNull
)

// String renders the operator in SQL syntax.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpEqNull:
		return "<=>"
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Flip returns the operator with its operands exchanged: a op b is
// equivalent to b op.Flip() a. The transformation algorithms use it when a
// correlated join predicate is written with the outer column on either side.
func (op CompareOp) Flip() CompareOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // =, != and <=> are symmetric
		return op
	}
}

// Negate returns the complementary operator: a op b is false exactly when
// a op.Negate() b is true (for non-NULL operands). OpEqNull has no dialect
// complement and is never negated: the transforms that call Negate only see
// parser-produced operators.
func (op CompareOp) Negate() CompareOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		return op
	}
}

// Compare orders two non-NULL values of compatible types, returning a
// negative, zero, or positive integer. Numeric values compare across
// int/float; strings compare lexicographically; dates chronologically. It
// returns an error for incomparable kinds (e.g. a string against a number),
// which the engine surfaces as a type error at execution time.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("value: Compare called on NULL")
	}
	switch {
	case a.isNumeric() && b.isNumeric():
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			default:
				return 0, nil
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	case a.kind == KindString && b.kind == KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case a.kind == KindDate && b.kind == KindDate:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
}

// Apply evaluates a op b under SQL three-valued logic: if either operand is
// NULL the result is Unknown — except OpEqNull, which is definite on every
// input — otherwise it is the definite truth value of the comparison.
func (op CompareOp) Apply(a, b Value) (Tri, error) {
	if a.IsNull() || b.IsNull() {
		if op == OpEqNull {
			return TriOf(a.IsNull() && b.IsNull()), nil
		}
		return Unknown, nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return Unknown, err
	}
	switch op {
	case OpEq, OpEqNull:
		return TriOf(c == 0), nil
	case OpNe:
		return TriOf(c != 0), nil
	case OpLt:
		return TriOf(c < 0), nil
	case OpLe:
		return TriOf(c <= 0), nil
	case OpGt:
		return TriOf(c > 0), nil
	case OpGe:
		return TriOf(c >= 0), nil
	default:
		return Unknown, fmt.Errorf("value: unknown operator %v", op)
	}
}

// TotalCompare is the total order over values used by sorting, merging,
// and duplicate elimination: NULL sorts before every non-NULL value, and
// NULLs are equal to each other. Incomparable kinds (e.g. a string
// against a number) return an error, which execution surfaces as a
// per-query type error — never a panic, since mixed kinds can reach a
// sort or merge-join key from user queries over untyped literals.
func TotalCompare(a, b Value) (int, error) {
	if a.IsNull() {
		if b.IsNull() {
			return 0, nil
		}
		return -1, nil
	}
	if b.IsNull() {
		return 1, nil
	}
	return Compare(a, b)
}
