package value

// Tri is SQL's three-valued logic: the result of a predicate over values
// that may be NULL. A WHERE clause keeps a row only when the predicate is
// True; both False and Unknown reject it. This distinction is what makes
// the paper's examples come out right: in query Q5 (section 5.3) the
// correlated MAX over an empty set is NULL, QOH = NULL is Unknown, and the
// outer row is dropped.
type Tri int8

// The three truth values.
const (
	False   Tri = -1
	Unknown Tri = 0
	True    Tri = 1
)

// TriOf converts a Go bool to a definite truth value.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t Tri) And(o Tri) Tri {
	if t < o {
		return t
	}
	return o
}

// Or is three-valued disjunction.
func (t Tri) Or(o Tri) Tri {
	if t > o {
		return t
	}
	return o
}

// Not is three-valued negation: NOT Unknown is Unknown.
func (t Tri) Not() Tri { return -t }

// IsTrue reports whether the truth value is definitely true — the only case
// in which a WHERE clause accepts a row.
func (t Tri) IsTrue() bool { return t == True }

// String renders the truth value.
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}
