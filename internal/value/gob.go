package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Gob encoding for Value, enabling database snapshots (engine Save /
// Restore). The wire form is one kind byte followed by the payload:
// varint for integers and dates, 8 fixed bytes for floats, raw bytes for
// strings. NULL is the kind byte alone.

// GobEncode implements gob.GobEncoder.
func (v Value) GobEncode() ([]byte, error) {
	out := []byte{byte(v.kind)}
	switch v.kind {
	case KindNull:
	case KindInt, KindDate:
		out = binary.AppendVarint(out, v.i)
	case KindFloat:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		out = append(out, buf[:]...)
	case KindString:
		out = append(out, v.s...)
	default:
		return nil, fmt.Errorf("value: cannot encode kind %d", v.kind)
	}
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("value: empty encoding")
	}
	kind := Kind(b[0])
	payload := b[1:]
	switch kind {
	case KindNull:
		*v = Null
	case KindInt, KindDate:
		i, n := binary.Varint(payload)
		if n <= 0 {
			return fmt.Errorf("value: bad integer encoding")
		}
		*v = Value{kind: kind, i: i}
	case KindFloat:
		if len(payload) != 8 {
			return fmt.Errorf("value: bad float encoding")
		}
		*v = Value{kind: KindFloat, f: math.Float64frombits(binary.BigEndian.Uint64(payload))}
	case KindString:
		*v = Value{kind: KindString, s: string(payload)}
	default:
		return fmt.Errorf("value: cannot decode kind %d", kind)
	}
	return nil
}
