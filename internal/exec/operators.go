package exec

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

// Operator is a pull-based physical operator (the iterator model of
// System R). Open prepares state, Next produces one row at a time, Close
// releases resources. Schema describes the rows Next yields.
type Operator interface {
	Open() error
	Next() (storage.Tuple, bool, error)
	Close() error
	Schema() RowSchema
}

// SeqScan reads a heap file in sequential page order through the buffer
// pool.
type SeqScan struct {
	File *storage.HeapFile
	Sch  RowSchema
	// QC, when set, is checked once per page — the scan's natural morsel.
	QC *qctx.QueryContext

	pageIdx int
	tuples  []storage.Tuple
	tupIdx  int
}

// NewSeqScan builds a scan of file whose columns are bound under binding.
func NewSeqScan(file *storage.HeapFile, binding string, cols []string) *SeqScan {
	sch := make(RowSchema, len(cols))
	for i, c := range cols {
		sch[i] = ColID{Table: binding, Column: c}
	}
	return &SeqScan{File: file, Sch: sch}
}

// Open resets the scan to the first page.
func (s *SeqScan) Open() error {
	s.pageIdx, s.tupIdx, s.tuples = 0, 0, nil
	return nil
}

// Next returns the next tuple in file order.
func (s *SeqScan) Next() (storage.Tuple, bool, error) {
	for s.tupIdx >= len(s.tuples) {
		if err := s.QC.Check(); err != nil {
			return nil, false, err
		}
		if s.pageIdx >= s.File.NumPages() {
			return nil, false, nil
		}
		s.tuples = s.File.ReadPage(s.pageIdx)
		s.pageIdx++
		s.tupIdx = 0
	}
	t := s.tuples[s.tupIdx]
	s.tupIdx++
	return t, true, nil
}

// Close releases nothing; scans hold no resources.
func (s *SeqScan) Close() error { return nil }

// Schema returns the scan's column bindings.
func (s *SeqScan) Schema() RowSchema { return s.Sch }

// RowPred is a compiled predicate over positional rows.
type RowPred func(storage.Tuple) (value.Tri, error)

// Filter passes through rows for which the predicate is definitely true.
type Filter struct {
	Child Operator
	Pred  RowPred
}

func (f *Filter) Open() error { return f.Child.Open() }

func (f *Filter) Next() (storage.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		tri, err := f.Pred(t)
		if err != nil {
			return nil, false, err
		}
		if tri.IsTrue() {
			return t, true, nil
		}
	}
}

func (f *Filter) Close() error      { return f.Child.Close() }
func (f *Filter) Schema() RowSchema { return f.Child.Schema() }

// Project emits selected columns of its child, optionally renaming them.
type Project struct {
	Child Operator
	Cols  []int
	Sch   RowSchema
}

// NewProject builds a projection of the given child columns. Output names
// default to the child's; name overrides apply per position when non-empty.
func NewProject(child Operator, cols []int, names []ColID) *Project {
	childSch := child.Schema()
	sch := make(RowSchema, len(cols))
	for i, c := range cols {
		if names != nil && names[i] != (ColID{}) {
			sch[i] = names[i]
		} else {
			sch[i] = childSch[c]
		}
	}
	return &Project{Child: child, Cols: cols, Sch: sch}
}

func (p *Project) Open() error { return p.Child.Open() }

func (p *Project) Next() (storage.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(storage.Tuple, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = t[c]
	}
	return out, true, nil
}

func (p *Project) Close() error      { return p.Child.Close() }
func (p *Project) Schema() RowSchema { return p.Sch }

// Distinct removes duplicates from a sorted input by comparing adjacent
// rows; NULL compares equal to NULL, matching SQL DISTINCT. The planner
// always places it above a Sort on all columns — the paper eliminates
// duplicates with a (B−1)-way merge sort (section 7.1).
type Distinct struct {
	Child Operator
	prev  storage.Tuple
}

func (d *Distinct) Open() error {
	d.prev = nil
	return d.Child.Open()
}

func (d *Distinct) Next() (storage.Tuple, bool, error) {
	for {
		t, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if d.prev != nil && tuplesEqual(d.prev, t) {
			continue
		}
		d.prev = t
		return t, true, nil
	}
}

func (d *Distinct) Close() error      { return d.Child.Close() }
func (d *Distinct) Schema() RowSchema { return d.Child.Schema() }

func tuplesEqual(a, b storage.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Materialize drains an operator into a new temporary heap file, counting
// the writes — the +Pt terms of the paper's cost formulas. On any failure
// — an error, or a panic (torn-write fault) unwinding through an append —
// the temp file is dropped, so failed materializations leak nothing.
func Materialize(op Operator, store *storage.Store, tuplesPerPage int) (*storage.HeapFile, error) {
	return MaterializeBudget(op, store, tuplesPerPage, nil)
}

// MaterializeBudget is Materialize with the partial-page buffer charged
// against qc's memory budget (see MaterializeIntoBudget).
func MaterializeBudget(op Operator, store *storage.Store, tuplesPerPage int, qc *qctx.QueryContext) (*storage.HeapFile, error) {
	f := store.CreateTemp(tuplesPerPage)
	done := false
	defer func() {
		if !done {
			store.Drop(f.Name())
		}
	}()
	if err := MaterializeIntoBudget(op, f, qc); err != nil {
		return nil, err
	}
	done = true
	return f, nil
}

// MaterializeInto drains an operator into an existing (empty) heap file
// and seals it. Close is deferred before Open so resources acquired by a
// partially successful Open (sort runs, worker goroutines) are released
// even when Open itself errors or panics; Operator.Close is required to
// be safe in that state (see DESIGN.md, "Operator lifecycle contract").
func MaterializeInto(op Operator, f *storage.HeapFile) error {
	return MaterializeIntoBudget(op, f, nil)
}

// MaterializeIntoBudget is MaterializeInto with memory governance: the
// tuples accumulating in the heap file's open page are charged against
// qc's memory budget and released every time a page fills — heap pages
// model disk, so only the partial-page working set counts as memory.
// A nil qc means ungoverned.
func MaterializeIntoBudget(op Operator, f *storage.HeapFile, qc *qctx.QueryContext) error {
	defer op.Close()
	if err := op.Open(); err != nil {
		return err
	}
	var pageBytes int64
	defer func() { qc.ReleaseBuffered(pageBytes) }()
	tpp := f.TuplesPerPage()
	count := 0
	for {
		t, ok, err := op.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := qc.AddBuffered(tupleBytes(t)); err != nil {
			return err
		}
		pageBytes += tupleBytes(t)
		f.Append(t)
		count++
		if tpp > 0 && count%tpp == 0 {
			qc.ReleaseBuffered(pageBytes)
			pageBytes = 0
		}
	}
	f.Seal()
	return nil
}

// Drain runs an operator to completion collecting all rows (used by the
// engine to produce final results and by tests).
func Drain(op Operator) ([]storage.Tuple, error) {
	return DrainBudget(op, nil)
}

// DrainBudget is Drain with lifecycle governance: every produced row is
// charged against qc's row budget, so a query exceeding its row limit
// stops within one row of the limit. A nil qc means ungoverned.
func DrainBudget(op Operator, qc *qctx.QueryContext) ([]storage.Tuple, error) {
	defer op.Close() // see MaterializeInto for why this precedes Open
	if err := op.Open(); err != nil {
		return nil, err
	}
	var rows []storage.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		if err := qc.AddRows(1); err != nil {
			return nil, err
		}
		rows = append(rows, t)
	}
}

// tupleBytes estimates the in-memory footprint of a tuple for budget
// accounting: a fixed per-value overhead plus string payloads. It is an
// estimate — budgets bound magnitude, not exact allocation.
func tupleBytes(t storage.Tuple) int64 {
	n := int64(24) // slice header
	for _, v := range t {
		n += 32
		if v.Kind() == value.KindString {
			n += int64(len(v.Str()))
		}
	}
	return n
}

// CompileConjuncts compiles simple (non-nested) conjuncts against a row
// schema into a single RowPred evaluating their three-valued conjunction.
// Disjunctions and negations over simple comparisons compile too; nested
// subqueries do not (the planner never passes them).
func CompileConjuncts(preds []ast.Predicate, sch RowSchema) (RowPred, error) {
	compiled := make([]RowPred, len(preds))
	for i, p := range preds {
		c, err := compilePred(p, sch)
		if err != nil {
			return nil, err
		}
		compiled[i] = c
	}
	return func(t storage.Tuple) (value.Tri, error) {
		out := value.True
		for _, p := range compiled {
			tri, err := p(t)
			if err != nil {
				return value.Unknown, err
			}
			out = out.And(tri)
			if out == value.False {
				return out, nil
			}
		}
		return out, nil
	}, nil
}

func compilePred(p ast.Predicate, sch RowSchema) (RowPred, error) {
	switch p := p.(type) {
	case *ast.Comparison:
		if p.LeftOuter {
			return nil, fmt.Errorf("exec: outer-join predicate %s cannot be a filter", p)
		}
		l, err := compileExpr(p.Left, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(p.Right, sch)
		if err != nil {
			return nil, err
		}
		op := p.Op
		return func(t storage.Tuple) (value.Tri, error) {
			return op.Apply(l(t), r(t))
		}, nil
	case *ast.OrPred:
		l, err := compilePred(p.Left, sch)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(p.Right, sch)
		if err != nil {
			return nil, err
		}
		return func(t storage.Tuple) (value.Tri, error) {
			lt, err := l(t)
			if err != nil {
				return value.Unknown, err
			}
			rt, err := r(t)
			if err != nil {
				return value.Unknown, err
			}
			return lt.Or(rt), nil
		}, nil
	case *ast.AndPred:
		return CompileConjuncts([]ast.Predicate{p.Left, p.Right}, sch)
	case *ast.NotPred:
		inner, err := compilePred(p.P, sch)
		if err != nil {
			return nil, err
		}
		return func(t storage.Tuple) (value.Tri, error) {
			tri, err := inner(t)
			return tri.Not(), err
		}, nil
	default:
		return nil, fmt.Errorf("exec: cannot compile predicate %s into a plan", p)
	}
}

func compileExpr(e ast.Expr, sch RowSchema) (func(storage.Tuple) value.Value, error) {
	switch e := e.(type) {
	case ast.ColumnRef:
		i := sch.Index(e)
		if i < 0 {
			return nil, errUnknownColumn(e)
		}
		return func(t storage.Tuple) value.Value { return t[i] }, nil
	case ast.Const:
		v := e.Val
		return func(storage.Tuple) value.Value { return v }, nil
	default:
		return nil, fmt.Errorf("exec: cannot compile expression %s into a plan", e)
	}
}
