package exec

import (
	"fmt"
	"io"

	"repro/internal/qctx"
	"repro/internal/spill"
	"repro/internal/storage"
	"repro/internal/value"
)

// MergeJoin is a sort-merge equality join over children sorted on the join
// keys. With Outer set it is the left outer merge join of section 5.2: the
// paper notes its cost function is "identical to that for a standard join,
// since the two relations are scanned in sorted order, and no extra cost is
// involved in determining which tuples have no matching tuples".
//
// Rows whose join key is NULL match nothing; under Outer they are emitted
// NULL-padded, preserving every left row as the =+ operator requires. With
// NullEq set the key comparison is NULL-safe (value.OpEqNull): NULL keys
// join with NULL keys, which NEST-JA2's back-join needs so the COUNT=0
// groups materialized for NULL-keyed outer rows are not dropped. The sort
// order both sides arrive in (TotalCompare, NULLs first) already groups
// NULL keys, so the merge needs no extra passes.
type MergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey int
	Outer             bool
	NullEq            bool
	// QC, when set, charges the buffered right-side group against the
	// memory budget — the sequential join's only unbounded buffer is a
	// run of duplicate right keys.
	QC *qctx.QueryContext
	// Spill, when set, lets an over-budget group spill to a run file that
	// is re-read once per duplicate left key instead of failing the query.
	Spill *spill.Session

	sch        RowSchema
	rightWidth int

	cur      storage.Tuple   // current left row, nil when exhausted/consumed
	group    []storage.Tuple // right rows matching groupKey (resident case)
	groupKey value.Value
	groupSet bool
	gi       int

	groupCharged int64         // bytes charged for group
	groupRun     *spill.Run    // spilled group, nil when resident
	groupRd      *spill.Reader // open scan of groupRun for the current left row
	groupLen     int           // rows in the current group, resident or spilled

	pendRight storage.Tuple // lookahead right row
	rightEOF  bool
}

// Open prepares both children.
func (m *MergeJoin) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.sch = m.Left.Schema().Concat(m.Right.Schema())
	m.rightWidth = len(m.Right.Schema())
	m.cur, m.group, m.groupSet, m.gi = nil, nil, false, 0
	m.groupCharged, m.groupRun, m.groupRd, m.groupLen = 0, nil, nil, 0
	m.pendRight, m.rightEOF = nil, false
	return nil
}

// dropGroup releases the current group's budget charge and spill state.
func (m *MergeJoin) dropGroup() {
	m.QC.ReleaseBuffered(m.groupCharged)
	m.groupCharged = 0
	m.group = m.group[:0]
	if m.groupRd != nil {
		m.groupRd.Close()
		m.groupRd = nil
	}
	if m.groupRun != nil {
		m.groupRun.Remove()
		m.groupRun = nil
	}
	m.groupLen = 0
}

func (m *MergeJoin) nextRight() (storage.Tuple, bool, error) {
	if m.pendRight != nil {
		t := m.pendRight
		m.pendRight = nil
		return t, true, nil
	}
	if m.rightEOF {
		return nil, false, nil
	}
	t, ok, err := m.Right.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		m.rightEOF = true
		return nil, false, nil
	}
	return t, true, nil
}

// loadGroup positions the right side at key and buffers the rows equal to
// it. The buffered group is reused for consecutive left rows with the same
// key (duplicate outer values).
func (m *MergeJoin) loadGroup(key value.Value) error {
	if m.groupSet && m.groupKey.Equal(key) {
		return nil
	}
	m.dropGroup()
	m.groupKey, m.groupSet = key, true
	var wr *spill.Writer
	fail := func(err error) error {
		if wr != nil {
			wr.Abort()
		}
		return err
	}
	for {
		t, ok, err := m.nextRight()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		rk := t[m.RightKey]
		if rk.IsNull() && !m.NullEq {
			continue // NULL keys can never match
		}
		c, err := value.TotalCompare(rk, key)
		if err != nil {
			return fail(err) // incomparable join keys: a per-query type error
		}
		if c < 0 {
			continue // smaller keys can never match again
		}
		if c > 0 {
			m.pendRight = t // beyond the group; keep for the next key
			break
		}
		if wr != nil {
			if err := wr.Append(t); err != nil {
				return fail(err)
			}
			m.groupLen++
			continue
		}
		n := tupleBytes(t)
		if m.Spill.Enabled() && !m.QC.ReserveBuffered(n) {
			// The group no longer fits: move what is buffered to a run
			// file and divert the rest of the group there.
			w2, werr := m.Spill.NewWriter()
			if werr != nil {
				return werr
			}
			wr = w2
			for _, r := range m.group {
				if err := wr.Append(r); err != nil {
					return fail(err)
				}
			}
			if err := wr.Append(t); err != nil {
				return fail(err)
			}
			m.QC.ReleaseBuffered(m.groupCharged)
			m.groupCharged = 0
			m.group = m.group[:0]
			m.groupLen++
			continue
		}
		if !m.Spill.Enabled() {
			if err := m.QC.AddBuffered(n); err != nil {
				return err
			}
		}
		m.groupCharged += n
		m.group = append(m.group, t)
		m.groupLen++
	}
	if wr != nil {
		run, err := wr.Finish()
		if err != nil {
			return err
		}
		m.groupRun = run
	}
	return nil
}

func (m *MergeJoin) padRight(left storage.Tuple) storage.Tuple {
	out := make(storage.Tuple, 0, len(left)+m.rightWidth)
	out = append(out, left...)
	for range m.rightWidth {
		out = append(out, value.Null)
	}
	return out
}

// Next produces the next joined row.
func (m *MergeJoin) Next() (storage.Tuple, bool, error) {
	for {
		if m.cur == nil {
			t, ok, err := m.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			m.cur, m.gi = t, 0
		}
		key := m.cur[m.LeftKey]
		if key.IsNull() && !m.NullEq {
			left := m.cur
			m.cur = nil
			if m.Outer {
				return m.padRight(left), true, nil
			}
			continue
		}
		if err := m.loadGroup(key); err != nil {
			return nil, false, err
		}
		if m.groupLen == 0 {
			left := m.cur
			m.cur = nil
			if m.Outer {
				return m.padRight(left), true, nil
			}
			continue
		}
		var right storage.Tuple
		if m.groupRun != nil {
			// Spilled group: stream the run, re-opened once per left row
			// with this key.
			if m.groupRd == nil {
				rd, err := m.groupRun.Open()
				if err != nil {
					return nil, false, err
				}
				m.groupRd = rd
			}
			t, err := m.groupRd.Next()
			if err == io.EOF {
				err = fmt.Errorf("merge join: spill group shorter than written: %w", qctx.ErrSpillCorrupt)
			}
			if err != nil {
				return nil, false, err
			}
			right = t
		} else {
			right = m.group[m.gi]
		}
		out := make(storage.Tuple, 0, len(m.cur)+m.rightWidth)
		out = append(out, m.cur...)
		out = append(out, right...)
		m.gi++
		if m.gi == m.groupLen {
			if m.groupRd != nil {
				m.groupRd.Close()
				m.groupRd = nil
			}
			m.cur = nil
		}
		return out, true, nil
	}
}

// Close releases the buffered group and closes both children.
func (m *MergeJoin) Close() error {
	m.dropGroup()
	m.group = nil
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// Schema is the concatenation of the children's schemas.
func (m *MergeJoin) Schema() RowSchema {
	if m.sch == nil {
		return m.Left.Schema().Concat(m.Right.Schema())
	}
	return m.sch
}

// NestedLoopJoin joins a streamed left side against a stored right side,
// re-scanning the right heap file once per left row through the buffer
// pool: if the right side fits in B−1 pages it is effectively read once
// (the favorable case of section 7.2), otherwise every left row pays a
// full re-read (the Nt2·Pt3 term).
//
// The join predicate is arbitrary, which is how NEST-JA2 builds temporary
// tables for non-equality correlated operators (section 5.3.1: SUPPLY.PNUM
// < PARTS.PNUM). With Outer set, left rows with no match are emitted
// NULL-padded — the outer theta-join used when the aggregate is COUNT and
// the operator is not equality.
type NestedLoopJoin struct {
	Left     Operator
	Right    *storage.HeapFile
	RightSch RowSchema
	// Pred sees the concatenated (left ++ right) row.
	Pred  RowPred
	Outer bool
	// QC, when set, is checked once per left row — each left row costs a
	// full scan of the right side, so that is the natural morsel.
	QC *qctx.QueryContext

	cur     storage.Tuple
	matched bool
	pageIdx int
	tuples  []storage.Tuple
	tupIdx  int
	sch     RowSchema
}

// Open prepares the left child.
func (n *NestedLoopJoin) Open() error {
	if err := n.Left.Open(); err != nil {
		return err
	}
	n.sch = n.Left.Schema().Concat(n.RightSch)
	n.cur = nil
	return nil
}

// Next produces the next joined row.
func (n *NestedLoopJoin) Next() (storage.Tuple, bool, error) {
	for {
		if n.cur == nil {
			if err := n.QC.Check(); err != nil {
				return nil, false, err
			}
			t, ok, err := n.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur, n.matched = t, false
			n.pageIdx, n.tupIdx, n.tuples = 0, 0, nil
		}
		for {
			for n.tupIdx >= len(n.tuples) {
				if n.pageIdx >= n.Right.NumPages() {
					n.tuples = nil
					goto rightDone
				}
				n.tuples = n.Right.ReadPage(n.pageIdx)
				n.pageIdx++
				n.tupIdx = 0
			}
			r := n.tuples[n.tupIdx]
			n.tupIdx++
			out := make(storage.Tuple, 0, len(n.cur)+len(r))
			out = append(out, n.cur...)
			out = append(out, r...)
			tri, err := n.Pred(out)
			if err != nil {
				return nil, false, err
			}
			if tri.IsTrue() {
				n.matched = true
				return out, true, nil
			}
		}
	rightDone:
		left, matched := n.cur, n.matched
		n.cur = nil
		if n.Outer && !matched {
			out := make(storage.Tuple, 0, len(left)+len(n.RightSch))
			out = append(out, left...)
			for range n.RightSch {
				out = append(out, value.Null)
			}
			return out, true, nil
		}
	}
}

// Close closes the left child.
func (n *NestedLoopJoin) Close() error { return n.Left.Close() }

// Schema is the concatenation of left and right schemas.
func (n *NestedLoopJoin) Schema() RowSchema {
	if n.sch == nil {
		return n.Left.Schema().Concat(n.RightSch)
	}
	return n.sch
}
