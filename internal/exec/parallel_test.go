package exec_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

// Unit tests for the morsel-driven parallel operators. Every parallel
// operator is checked for equivalence against its sequential counterpart
// (MergeJoin, GroupAgg) across worker counts 1..8 — parallelism may only
// reorder rows, so comparisons are over sorted bags of rendered tuples.

// loadTuples creates a heap file from explicit tuples (NULLs allowed).
func loadTuples(s *storage.Store, name string, tpp int, rows []storage.Tuple) *storage.HeapFile {
	f, err := s.Create(name, tpp)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		f.Append(r)
	}
	f.Seal()
	return f
}

// sortedBag drains op and returns its rows rendered and sorted.
func sortedBag(t *testing.T, op exec.Operator) []string {
	t.Helper()
	rows, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// randTuples builds n two-column tuples with keys from a small domain (to
// force duplicates) and the occasional NULL in either column.
func randTuples(rng *rand.Rand, n, keyDomain int) []storage.Tuple {
	rows := make([]storage.Tuple, n)
	for i := range rows {
		k := value.NewInt(int64(rng.Intn(keyDomain)))
		if rng.Intn(10) == 0 {
			k = value.Null
		}
		v := value.NewInt(int64(rng.Intn(5)))
		if rng.Intn(10) == 0 {
			v = value.Null
		}
		rows[i] = storage.Tuple{k, v}
	}
	return rows
}

func TestParallelHashJoinEquivalence(t *testing.T) {
	for _, outer := range []bool{false, true} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			name := fmt.Sprintf("outer=%v/workers=%d", outer, workers)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(workers)*100 + 7))
				s := storage.NewStore(8)
				left := loadTuples(s, "L", 2, randTuples(rng, 60, 8))
				right := loadTuples(s, "R", 2, randTuples(rng, 40, 8))

				// Reference: sort-merge join over sorted scans.
				want := sortedBag(t, &exec.MergeJoin{
					Left:     &exec.Sort{Child: scanOf(left, "L"), Keys: []int{0}, Store: s, TuplesPerPage: 2},
					Right:    &exec.Sort{Child: scanOf(right, "R"), Keys: []int{0}, Store: s, TuplesPerPage: 2},
					LeftKey:  0,
					RightKey: 0,
					Outer:    outer,
				})
				got := sortedBag(t, &exec.ExchangeMerge{Source: &exec.ParallelHashJoin{
					Left:     scanOf(left, "L"),
					Right:    scanOf(right, "R"),
					LeftKey:  0,
					RightKey: 0,
					Outer:    outer,
					Workers:  workers,
				}})
				if !eqStrings(got, want) {
					t.Errorf("parallel join != merge join\n  want: %v\n  got:  %v", want, got)
				}
			})
		}
	}
}

// TestParallelHashJoinPartitioning pins partitioning correctness directly:
// with duplicate keys on both sides, each key's full cross product must
// appear exactly once (every copy of a key lands on exactly one worker),
// and under Outer each unmatched left row is padded exactly once.
func TestParallelHashJoinPartitioning(t *testing.T) {
	s := storage.NewStore(8)
	left := loadTuples(s, "L", 2, []storage.Tuple{
		{intv(1), intv(10)}, {intv(1), intv(11)},
		{intv(2), intv(20)},
		{intv(3), intv(30)}, // unmatched
		{value.Null, intv(40)},
	})
	right := loadTuples(s, "R", 2, []storage.Tuple{
		{intv(1), intv(100)}, {intv(1), intv(101)}, {intv(1), intv(102)},
		{intv(2), intv(200)},
		{value.Null, intv(300)},
	})
	got := sortedBag(t, &exec.ExchangeMerge{Source: &exec.ParallelHashJoin{
		Left: scanOf(left, "L"), Right: scanOf(right, "R"),
		LeftKey: 0, RightKey: 0, Outer: true, Workers: 4,
	}})
	want := []string{
		// key 1: 2 left × 3 right = 6 rows
		"(1, 10, 1, 100)", "(1, 10, 1, 101)", "(1, 10, 1, 102)",
		"(1, 11, 1, 100)", "(1, 11, 1, 101)", "(1, 11, 1, 102)",
		// key 2: exactly one match
		"(2, 20, 2, 200)",
		// key 3 and the NULL-keyed left row: padded exactly once each
		"(3, 30, NULL, NULL)",
		"(NULL, 40, NULL, NULL)",
	}
	sort.Strings(want)
	if !eqStrings(got, want) {
		t.Errorf("partitioned outer join\n  want: %v\n  got:  %v", want, got)
	}
}

func TestParallelHashGroupEquivalence(t *testing.T) {
	items := []exec.GroupItem{
		{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
		{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CNT"}},
		{Agg: value.AggCountStar, Out: exec.ColID{Column: "CNTSTAR"}},
		{Agg: value.AggSum, Col: 1, Out: exec.ColID{Column: "SUM"}},
		{Agg: value.AggMax, Col: 1, Out: exec.ColID{Column: "MAX"}},
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(workers)*100 + 13))
			s := storage.NewStore(8)
			f := loadTuples(s, "G", 2, randTuples(rng, 80, 6))

			want := sortedBag(t, &exec.GroupAgg{
				Child:     &exec.Sort{Child: scanOf(f, "G"), Keys: []int{0}, Store: s, TuplesPerPage: 2},
				GroupCols: []int{0},
				Items:     items,
			})
			got := sortedBag(t, &exec.ExchangeMerge{Source: &exec.ParallelHashGroup{
				Child:     scanOf(f, "G"),
				GroupCols: []int{0},
				Items:     items,
				Workers:   workers,
			}})
			if !eqStrings(got, want) {
				t.Errorf("parallel group != sequential group\n  want: %v\n  got:  %v", want, got)
			}
		})
	}
}

// TestParallelHashGroupGlobalEmpty pins the COUNT-bug invariant at the
// operator level: a global aggregate over empty input emits exactly one
// row (COUNT = 0, MAX = NULL) no matter how many workers run.
func TestParallelHashGroupGlobalEmpty(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := storage.NewStore(4)
		f := loadTuples(s, "E", 2, nil)
		got := sortedBag(t, &exec.ExchangeMerge{Source: &exec.ParallelHashGroup{
			Child: scanOf(f, "E"),
			Items: []exec.GroupItem{
				{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CNT"}},
				{Agg: value.AggMax, Col: 1, Out: exec.ColID{Column: "MAX"}},
			},
			Workers: workers,
		}})
		want := []string{"(0, NULL)"}
		if !eqStrings(got, want) {
			t.Errorf("workers=%d: global aggregate over empty input = %v, want %v", workers, got, want)
		}
		// A grouped aggregate over empty input emits nothing.
		got = sortedBag(t, &exec.ExchangeMerge{Source: &exec.ParallelHashGroup{
			Child:     scanOf(f, "E"),
			GroupCols: []int{0},
			Items: []exec.GroupItem{
				{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
				{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CNT"}},
			},
			Workers: workers,
		}})
		if len(got) != 0 {
			t.Errorf("workers=%d: grouped aggregate over empty input = %v, want none", workers, got)
		}
	}
}

// TestParallelEarlyCloseNoLeak closes an ExchangeMerge after consuming
// only a few rows of a large join and checks every distributor/worker
// goroutine shuts down. Close must also be idempotent and callable
// without Next ever having been invoked.
func TestParallelEarlyCloseNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := storage.NewStore(8)
	left := loadTuples(s, "L", 2, randTuples(rng, 4000, 16))
	right := loadTuples(s, "R", 2, randTuples(rng, 2000, 16))
	before := runtime.NumGoroutine()

	newOp := func() *exec.ExchangeMerge {
		return &exec.ExchangeMerge{Source: &exec.ParallelHashJoin{
			Left: scanOf(left, "L"), Right: scanOf(right, "R"),
			LeftKey: 0, RightKey: 0, Outer: true, Workers: 4,
		}}
	}
	for round := range 20 {
		op := newOp()
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		// Consume a handful of rows — or none on every third round — so
		// workers are still mid-flight when Close arrives.
		if round%3 != 0 {
			for range 5 {
				if _, ok, err := op.Next(); err != nil {
					t.Fatal(err)
				} else if !ok {
					break
				}
			}
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
		if err := op.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	// Goroutine counts settle asynchronously; retry before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after early Close: before=%d after=%d", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// failingOp yields a few rows, then errors.
type failingOp struct {
	rows int
	n    int
}

func (f *failingOp) Open() error { f.n = 0; return nil }
func (f *failingOp) Next() (storage.Tuple, bool, error) {
	if f.n >= f.rows {
		return nil, false, fmt.Errorf("synthetic child failure")
	}
	f.n++
	return storage.Tuple{intv(int64(f.n)), intv(0)}, true, nil
}
func (f *failingOp) Close() error { return nil }
func (f *failingOp) Schema() exec.RowSchema {
	return exec.RowSchema{{Table: "F", Column: "K"}, {Table: "F", Column: "V"}}
}

// TestExchangeMergeErrorPropagation makes a probe-side child fail mid-scan
// and checks the error surfaces from Next (not a hang, not silence), with
// Close still shutting everything down.
func TestExchangeMergeErrorPropagation(t *testing.T) {
	s := storage.NewStore(4)
	right := loadTuples(s, "R", 2, []storage.Tuple{{intv(1), intv(100)}})
	op := &exec.ExchangeMerge{Source: &exec.ParallelHashJoin{
		Left: &failingOp{rows: 3}, Right: scanOf(right, "R"),
		LeftKey: 0, RightKey: 0, Workers: 2,
	}}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for {
		_, ok, err := op.Next()
		if err != nil {
			sawErr = err
			break
		}
		if !ok {
			break
		}
	}
	if sawErr == nil || !strings.Contains(sawErr.Error(), "synthetic child failure") {
		t.Errorf("child error not propagated, got %v", sawErr)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelHashGroupWorkerErrorNoDeadlock pins the regression where a
// worker-side aggregation error (MAX over mixed int/string values) killed a
// worker without draining its input channel, leaving the distributor
// blocked on a full channel forever and hanging ExchangeMerge.Next. The
// input puts the error at the front of one group's stream and follows it
// with far more rows than the worker channels can buffer, so the pre-fix
// code deadlocks deterministically; post-fix, Next must surface the error.
func TestParallelHashGroupWorkerErrorNoDeadlock(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rows := []storage.Tuple{
				{intv(1), intv(1)},
				{intv(1), value.NewString("x")}, // MAX(int, string) errors
			}
			// Enough follow-on rows for the same key to overflow the dead
			// worker's channel buffer (2 morsels) and block the distributor.
			for range 4 * exec.MorselSize {
				rows = append(rows, storage.Tuple{intv(1), intv(2)})
			}
			s := storage.NewStore(8)
			f := loadTuples(s, "M", 2, rows)
			op := &exec.ExchangeMerge{Source: &exec.ParallelHashGroup{
				Child:     scanOf(f, "M"),
				GroupCols: []int{0},
				Items: []exec.GroupItem{
					{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
					{Agg: value.AggMax, Col: 1, Out: exec.ColID{Column: "MAX"}},
				},
				Workers: workers,
			}}
			done := make(chan error, 1)
			go func() {
				_, err := exec.Drain(op) // Drain opens and closes op itself
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Error("aggregation error not propagated from parallel group")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("parallel group deadlocked after worker-side aggregation error")
			}
		})
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
