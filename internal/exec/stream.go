package exec

import (
	"repro/internal/qctx"
	"repro/internal/storage"
)

// BatchSink receives result rows in bounded batches as an operator tree
// produces them. A sink that blocks (a full network write buffer) blocks
// the pull loop, so backpressure propagates into the executor: sequential
// operators simply stop being pulled, and parallel operators stall on
// their bounded exchange channels. A sink error aborts the drain and is
// returned to the caller unchanged.
//
// The sink must not retain the batch slice after returning; DrainInto
// reuses it.
type BatchSink func(rows []storage.Tuple) error

// DefaultBatchRows is the batch size DrainInto uses when the caller
// passes 0.
const DefaultBatchRows = 64

// DrainInto runs an operator to completion, delivering rows to sink in
// batches of at most batchRows, charging each row against qc's row budget
// exactly like DrainBudget. It returns the number of rows delivered —
// including those already handed to the sink when an error occurs
// mid-stream, so callers that retry can tell whether anything escaped.
func DrainInto(op Operator, qc *qctx.QueryContext, batchRows int, sink BatchSink) (int64, error) {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	defer op.Close() // see MaterializeInto for why this precedes Open
	if err := op.Open(); err != nil {
		return 0, err
	}
	var delivered int64
	batch := make([]storage.Tuple, 0, batchRows)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := sink(batch); err != nil {
			return err
		}
		delivered += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for {
		t, ok, err := op.Next()
		if err != nil {
			return delivered, err
		}
		if !ok {
			return delivered, flush()
		}
		if err := qc.AddRows(1); err != nil {
			return delivered, err
		}
		batch = append(batch, t)
		if len(batch) >= batchRows {
			if err := flush(); err != nil {
				return delivered, err
			}
		}
	}
}
