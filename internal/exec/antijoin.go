package exec

import (
	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

// AntiJoin implements NOT IN with full SQL three-valued semantics — an
// extension beyond the paper, which leaves anti-joins out of its
// algorithms (section 8 rewrites != ANY to NOT IN and stops there). For
// each left row, the relevant right rows are those satisfying the
// correlation predicate; the left row qualifies exactly when
//
//   - there are no relevant right rows (NOT IN over the empty set is
//     TRUE, even for a NULL operand), or
//   - the membership operand is non-NULL, matches no relevant membership
//     value, and no relevant membership value is NULL (a NULL member
//     makes the predicate UNKNOWN, rejecting the row).
//
// The right side is a materialized file re-scanned per left row through
// the buffer pool, like NestedLoopJoin.
type AntiJoin struct {
	Left     Operator
	Right    *storage.HeapFile
	RightSch RowSchema
	// Corr filters relevant right rows, evaluated over the concatenated
	// (left ++ right) row; nil means every right row is relevant.
	Corr RowPred
	// LeftVal extracts the membership operand from a left row.
	LeftVal func(storage.Tuple) value.Value
	// MemberCol is the right column holding membership values.
	MemberCol int
	// QC, when set, is checked once per left row — each left row can cost
	// a full scan of the right side.
	QC *qctx.QueryContext
}

// Open prepares the left child.
func (a *AntiJoin) Open() error { return a.Left.Open() }

// Next emits the next qualifying left row.
func (a *AntiJoin) Next() (storage.Tuple, bool, error) {
	for {
		if err := a.QC.Check(); err != nil {
			return nil, false, err
		}
		l, ok, err := a.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := a.qualifies(l)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return l, true, nil
		}
	}
}

func (a *AntiJoin) qualifies(l storage.Tuple) (bool, error) {
	lv := a.LeftVal(l)
	relevant, matched, sawNull := 0, false, false
	for pg := 0; pg < a.Right.NumPages(); pg++ {
		for _, r := range a.Right.ReadPage(pg) {
			if a.Corr != nil {
				combined := make(storage.Tuple, 0, len(l)+len(r))
				combined = append(combined, l...)
				combined = append(combined, r...)
				tri, err := a.Corr(combined)
				if err != nil {
					return false, err
				}
				if !tri.IsTrue() {
					continue
				}
			}
			relevant++
			mv := r[a.MemberCol]
			if mv.IsNull() {
				sawNull = true
				continue
			}
			if lv.IsNull() {
				continue
			}
			tri, err := value.OpEq.Apply(lv, mv)
			if err != nil {
				return false, err
			}
			if tri.IsTrue() {
				matched = true
			}
		}
		if matched {
			break
		}
	}
	if relevant == 0 {
		return true, nil
	}
	return !matched && !sawNull && !lv.IsNull(), nil
}

// Close closes the left child.
func (a *AntiJoin) Close() error { return a.Left.Close() }

// Schema is the left schema: an anti-join filters, never widens.
func (a *AntiJoin) Schema() RowSchema { return a.Left.Schema() }
