package exec

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Evaluator executes query blocks by nested iteration — the method System R
// used for nested queries ([SEL 79:33], summarized in section 2 of the
// paper): the inner query block of a correlated (type-J / type-JA) nested
// predicate is re-evaluated once for each outer tuple that satisfies the
// simple predicates, while an uncorrelated (type-A / type-N) inner block is
// evaluated once, its result kept as a constant or materialized as a list
// of values that membership tests then scan.
//
// This executor is the engine's semantic ground truth: every transformation
// is validated against it. Its page I/Os flow through the storage layer, so
// it also measures the baseline cost the paper's analyses start from.
type Evaluator struct {
	Cat   *schema.Catalog
	Store *storage.Store
	// QC, when set, is checked once per cartesian-product row and charged
	// for every root-block result row. Inner blocks do not charge the row
	// budget — it bounds what the query returns, not what it examines.
	QC *qctx.QueryContext
	// MapName, when set, translates relation references to their physical
	// names — the planner uses it so blocks referencing its namespaced
	// temporary tables (TEMP1 → TEMP1#qN) resolve under concurrency.
	MapName func(string) string

	// root is the block whose emissions count against the row budget,
	// recorded by EvalQuery.
	root *ast.QueryBlock

	// subCache holds once-evaluated results of uncorrelated subqueries,
	// keyed by block identity. Scalar results stay in memory (System R
	// replaces the block with "a single constant"); set-valued results
	// are materialized to a temporary list file whose membership scans
	// are charged like any other page access.
	subCache map[*ast.QueryBlock]*cachedSub
	// tempFiles tracks materializations for cleanup.
	tempFiles []*storage.HeapFile
}

type cachedSub struct {
	scalar   value.Value // for scalar/aggregate blocks
	isScalar bool
	list     *storage.HeapFile // for set-valued blocks (the "list X")
}

// NewEvaluator returns an evaluator over the given catalog and store.
func NewEvaluator(cat *schema.Catalog, store *storage.Store) *Evaluator {
	return &Evaluator{Cat: cat, Store: store, subCache: make(map[*ast.QueryBlock]*cachedSub)}
}

// Close drops any temporary list files the evaluator materialized.
func (ev *Evaluator) Close() {
	for _, f := range ev.tempFiles {
		ev.Store.Drop(f.Name())
	}
	ev.tempFiles = nil
}

// EvalQuery evaluates a resolved query block tree and returns the result
// rows and their schema.
func (ev *Evaluator) EvalQuery(qb *ast.QueryBlock) ([]storage.Tuple, RowSchema, error) {
	ev.root = qb
	return ev.evalBlock(qb, nil)
}

// evalBlock evaluates one query block under the given outer environment.
func (ev *Evaluator) evalBlock(qb *ast.QueryBlock, env *Env) ([]storage.Tuple, RowSchema, error) {
	files := make([]*storage.HeapFile, len(qb.From))
	schemas := make([]RowSchema, len(qb.From))
	for i, tr := range qb.From {
		name := tr.Relation
		if ev.MapName != nil {
			name = ev.MapName(name)
		}
		f, ok := ev.Store.Lookup(name)
		if !ok {
			return nil, nil, fmt.Errorf("exec: no stored relation %s", tr.Relation)
		}
		rel, ok := ev.Cat.Lookup(name)
		if !ok {
			return nil, nil, fmt.Errorf("exec: relation %s not in catalog", tr.Relation)
		}
		files[i] = f
		rs := make(RowSchema, len(rel.Columns))
		for j, c := range rel.Columns {
			rs[j] = ColID{Table: tr.Binding(), Column: c.Name}
		}
		schemas[i] = rs
	}

	// Evaluate cheap conjuncts first so nested predicates run only for
	// tuples that satisfy all simple predicates — System R's rule, and
	// the origin of the f(i)·Ni factor in the cost analyses.
	var simple, nested []ast.Predicate
	for _, p := range qb.Where {
		if len(ast.SubqueriesOf(p)) == 0 {
			simple = append(simple, p)
		} else {
			nested = append(nested, p)
		}
	}

	outSchema := blockOutputSchema(qb)
	hasAgg := qb.HasAggregate()

	var rows []storage.Tuple
	groups := newGroupTable(qb)

	err := ev.scanProduct(files, schemas, 0, env, func(rowEnv *Env) error {
		for _, p := range simple {
			tri, err := ev.evalPred(p, rowEnv)
			if err != nil {
				return err
			}
			if !tri.IsTrue() {
				return nil
			}
		}
		for _, p := range nested {
			tri, err := ev.evalPred(p, rowEnv)
			if err != nil {
				return err
			}
			if !tri.IsTrue() {
				return nil
			}
		}
		if hasAgg {
			return groups.add(qb, rowEnv)
		}
		row := make(storage.Tuple, len(qb.Select))
		for i, item := range qb.Select {
			v, ok := rowEnv.Lookup(item.Col)
			if !ok {
				return errUnknownColumn(item.Col)
			}
			row[i] = v
		}
		if qb == ev.root && !qb.Distinct {
			// Streaming root emission: charge as we go so the row budget
			// stops the scan within one row. DISTINCT charges after
			// deduplication — duplicates are not result rows.
			if err := ev.QC.AddRows(1); err != nil {
				return err
			}
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	if hasAgg {
		rows = groups.results(qb)
		rows, err = filterHaving(rows, qb.Having)
		if err != nil {
			return nil, nil, err
		}
	}
	if qb.Distinct {
		rows = dedupeRows(rows)
	}
	if qb == ev.root && (hasAgg || qb.Distinct) {
		if err := ev.QC.AddRows(len(rows)); err != nil {
			return nil, nil, err
		}
	}
	if len(qb.OrderBy) > 0 {
		if err := sortRowsBy(rows, qb.OrderBy); err != nil {
			return nil, nil, err
		}
	}
	return rows, outSchema, nil
}

// filterHaving keeps aggregate output rows whose HAVING conjuncts are all
// definitely true.
func filterHaving(rows []storage.Tuple, having []ast.HavingPred) ([]storage.Tuple, error) {
	if len(having) == 0 {
		return rows, nil
	}
	out := rows[:0:0]
	for _, row := range rows {
		keep := true
		for _, h := range having {
			tri, err := h.Op.Apply(row[h.Pos], h.Val)
			if err != nil {
				return nil, err
			}
			if !tri.IsTrue() {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// sortRowsBy orders result rows by the resolved ORDER BY positions. An
// incomparable pair of sort keys surfaces as an error after the sort.
func sortRowsBy(rows []storage.Tuple, order []ast.OrderItem) error {
	var cmpErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, o := range order {
			c, err := value.TotalCompare(rows[i][o.Pos], rows[j][o.Pos])
			if err != nil {
				if cmpErr == nil {
					cmpErr = err
				}
				return false
			}
			if c != 0 {
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return cmpErr
}

// blockOutputSchema derives the result schema of a block. Plain columns
// keep their binding so correlation through selected columns stays
// resolvable; aggregates and aliased items become derived columns.
func blockOutputSchema(qb *ast.QueryBlock) RowSchema {
	out := make(RowSchema, len(qb.Select))
	for i, item := range qb.Select {
		switch {
		case item.As != "":
			out[i] = ColID{Column: item.As}
		case item.IsAggregate():
			out[i] = ColID{Column: item.OutputName()}
		default:
			out[i] = ColID{Table: item.Col.Table, Column: item.Col.Column}
		}
	}
	return out
}

// scanProduct iterates the cartesian product of the FROM relations in
// order, re-scanning inner files once per outer combination — the nested
// iteration of the paper. Pages move through the buffer pool, so an inner
// relation that fits in B pages is effectively cached.
func (ev *Evaluator) scanProduct(files []*storage.HeapFile, schemas []RowSchema, i int, env *Env, fn func(*Env) error) error {
	if i == len(files) {
		if err := ev.QC.Check(); err != nil {
			return err
		}
		return fn(env)
	}
	var scanErr error
	files[i].Scan(func(t storage.Tuple) bool {
		if err := ev.scanProduct(files, schemas, i+1, env.Bind(schemas[i], t), fn); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	return scanErr
}

// groupTable accumulates grouped (or global) aggregates in deterministic
// first-seen order.
type groupTable struct {
	order []string
	accs  map[string][]*value.Accumulator
	keys  map[string][]value.Value
}

func newGroupTable(qb *ast.QueryBlock) *groupTable {
	return &groupTable{accs: make(map[string][]*value.Accumulator), keys: make(map[string][]value.Value)}
}

func (g *groupTable) add(qb *ast.QueryBlock, rowEnv *Env) error {
	keyVals := make([]value.Value, len(qb.GroupBy))
	for i, col := range qb.GroupBy {
		v, ok := rowEnv.Lookup(col)
		if !ok {
			return errUnknownColumn(col)
		}
		keyVals[i] = v
	}
	key := encodeKey(keyVals)
	accs, ok := g.accs[key]
	if !ok {
		accs = make([]*value.Accumulator, len(qb.Select))
		for i, item := range qb.Select {
			if item.IsAggregate() {
				accs[i] = value.NewAccumulator(item.Agg)
			}
		}
		g.accs[key] = accs
		g.keys[key] = keyVals
		g.order = append(g.order, key)
	}
	for i, item := range qb.Select {
		if !item.IsAggregate() {
			continue
		}
		var v value.Value
		if item.Agg == value.AggCountStar {
			v = value.NewInt(1) // COUNT(*) counts rows; argument unused
		} else {
			var ok bool
			v, ok = rowEnv.Lookup(item.Col)
			if !ok {
				return errUnknownColumn(item.Col)
			}
		}
		if err := accs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

// results emits one row per group. With no GROUP BY, aggregates over an
// empty input still produce one row (COUNT = 0, MAX = NULL) — the
// semantics the COUNT bug of section 5.1 loses.
func (g *groupTable) results(qb *ast.QueryBlock) []storage.Tuple {
	if len(qb.GroupBy) == 0 && len(g.order) == 0 {
		row := make(storage.Tuple, len(qb.Select))
		for i, item := range qb.Select {
			if item.IsAggregate() {
				row[i] = value.NewAccumulator(item.Agg).Result()
			} else {
				row[i] = value.Null
			}
		}
		return []storage.Tuple{row}
	}
	out := make([]storage.Tuple, 0, len(g.order))
	for _, key := range g.order {
		accs := g.accs[key]
		keyVals := g.keys[key]
		row := make(storage.Tuple, len(qb.Select))
		for i, item := range qb.Select {
			if item.IsAggregate() {
				row[i] = accs[i].Result()
				continue
			}
			// Plain column: resolver guarantees it is a GROUP BY column.
			for j, col := range qb.GroupBy {
				if col == item.Col {
					row[i] = keyVals[j]
					break
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// dedupeRows removes duplicate rows preserving first occurrence, with NULL
// equal to NULL (SQL DISTINCT semantics).
func dedupeRows(rows []storage.Tuple) []storage.Tuple {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := encodeKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// Qualifies reports whether a tuple of the given schema satisfies every
// predicate (all definitely true). The engine's DELETE and UPDATE use it,
// so their WHERE clauses support the full dialect including nested
// subqueries.
func (ev *Evaluator) Qualifies(preds []ast.Predicate, sch RowSchema, t storage.Tuple) (bool, error) {
	env := (*Env)(nil).Bind(sch, t)
	for _, p := range preds {
		tri, err := ev.evalPred(p, env)
		if err != nil {
			return false, err
		}
		if !tri.IsTrue() {
			return false, nil
		}
	}
	return true, nil
}

// evalPred evaluates one predicate under three-valued logic.
func (ev *Evaluator) evalPred(p ast.Predicate, env *Env) (value.Tri, error) {
	switch p := p.(type) {
	case *ast.Comparison:
		if p.LeftOuter {
			return value.Unknown, fmt.Errorf("exec: outer-join operator %s+ is only valid in transformed temporary-table definitions", p.Op)
		}
		lv, err := ev.evalExpr(p.Left, env)
		if err != nil {
			return value.Unknown, err
		}
		rv, err := ev.evalExpr(p.Right, env)
		if err != nil {
			return value.Unknown, err
		}
		return p.Op.Apply(lv, rv)
	case *ast.InPred:
		return ev.evalIn(p, env)
	case *ast.ExistsPred:
		rows, err := ev.subRows(p.Sub, env)
		if err != nil {
			return value.Unknown, err
		}
		return value.TriOf(len(rows) > 0 != p.Negated), nil
	case *ast.QuantPred:
		return ev.evalQuant(p, env)
	case *ast.OrPred:
		l, err := ev.evalPred(p.Left, env)
		if err != nil {
			return value.Unknown, err
		}
		r, err := ev.evalPred(p.Right, env)
		if err != nil {
			return value.Unknown, err
		}
		return l.Or(r), nil
	case *ast.AndPred:
		l, err := ev.evalPred(p.Left, env)
		if err != nil {
			return value.Unknown, err
		}
		r, err := ev.evalPred(p.Right, env)
		if err != nil {
			return value.Unknown, err
		}
		return l.And(r), nil
	case *ast.NotPred:
		t, err := ev.evalPred(p.P, env)
		if err != nil {
			return value.Unknown, err
		}
		return t.Not(), nil
	default:
		return value.Unknown, fmt.Errorf("exec: unknown predicate type %T", p)
	}
}

// evalExpr evaluates a scalar expression.
func (ev *Evaluator) evalExpr(e ast.Expr, env *Env) (value.Value, error) {
	switch e := e.(type) {
	case ast.ColumnRef:
		v, ok := env.Lookup(e)
		if !ok {
			return value.Null, errUnknownColumn(e)
		}
		return v, nil
	case ast.Const:
		return e.Val, nil
	case *ast.Subquery:
		return ev.scalarSub(e.Block, env)
	default:
		return value.Null, fmt.Errorf("exec: unknown expression type %T", e)
	}
}

// scalarSub evaluates a subquery used as a scalar: zero rows yield NULL
// (which makes MAX over an empty correlated set behave as the paper's
// section 5.3 assumes), more than one row is a runtime error.
func (ev *Evaluator) scalarSub(qb *ast.QueryBlock, env *Env) (value.Value, error) {
	if !ast.IsCorrelated(qb) {
		c, err := ev.cached(qb)
		if err != nil {
			return value.Null, err
		}
		if c.isScalar {
			return c.scalar, nil
		}
		return value.Null, fmt.Errorf("exec: scalar use of set-valued subquery")
	}
	rows, _, err := ev.evalBlock(qb, env)
	if err != nil {
		return value.Null, err
	}
	switch len(rows) {
	case 0:
		return value.Null, nil
	case 1:
		return rows[0][0], nil
	default:
		return value.Null, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
	}
}

// evalIn implements membership under three-valued logic: TRUE on a match;
// UNKNOWN when there is no match but a NULL is involved; FALSE otherwise.
func (ev *Evaluator) evalIn(p *ast.InPred, env *Env) (value.Tri, error) {
	lv, err := ev.evalExpr(p.Left, env)
	if err != nil {
		return value.Unknown, err
	}
	matched, sawNull, n := false, false, 0
	visit := func(v value.Value) error {
		n++
		if v.IsNull() {
			sawNull = true
			return nil
		}
		if lv.IsNull() {
			return nil
		}
		tri, err := value.OpEq.Apply(lv, v)
		if err != nil {
			return err
		}
		if tri.IsTrue() {
			matched = true
		}
		return nil
	}
	if err := ev.visitSubValues(p.Sub, env, visit); err != nil {
		return value.Unknown, err
	}
	var tri value.Tri
	switch {
	case matched:
		tri = value.True
	case n > 0 && (lv.IsNull() || sawNull):
		tri = value.Unknown
	default:
		tri = value.False
	}
	if p.Negated {
		tri = tri.Not()
	}
	return tri, nil
}

// evalQuant implements op ANY / op ALL under three-valued logic, including
// the empty-set cases (ANY over empty is FALSE, ALL over empty is TRUE).
func (ev *Evaluator) evalQuant(p *ast.QuantPred, env *Env) (value.Tri, error) {
	lv, err := ev.evalExpr(p.Left, env)
	if err != nil {
		return value.Unknown, err
	}
	anyTrue, anyUnknown, anyFalse := false, false, false
	visit := func(v value.Value) error {
		tri, err := p.Op.Apply(lv, v)
		if err != nil {
			return err
		}
		switch tri {
		case value.True:
			anyTrue = true
		case value.Unknown:
			anyUnknown = true
		default:
			anyFalse = true
		}
		return nil
	}
	if err := ev.visitSubValues(p.Sub, env, visit); err != nil {
		return value.Unknown, err
	}
	if p.Quant == ast.Any {
		switch {
		case anyTrue:
			return value.True, nil
		case anyUnknown:
			return value.Unknown, nil
		default:
			return value.False, nil
		}
	}
	switch {
	case anyFalse:
		return value.False, nil
	case anyUnknown:
		return value.Unknown, nil
	default:
		return value.True, nil
	}
}

// visitSubValues streams the single-column values of a subquery result to
// fn. Uncorrelated subqueries are materialized once as the list X of
// [SEL 79]; each visit then re-scans the list through the buffer pool, so
// a list that does not fit in B pages costs real I/O per outer tuple,
// matching Kim's type-N cost analysis.
func (ev *Evaluator) visitSubValues(qb *ast.QueryBlock, env *Env, fn func(value.Value) error) error {
	if !ast.IsCorrelated(qb) {
		c, err := ev.cached(qb)
		if err != nil {
			return err
		}
		if c.isScalar {
			return fn(c.scalar)
		}
		var visitErr error
		c.list.Scan(func(t storage.Tuple) bool {
			if err := fn(t[0]); err != nil {
				visitErr = err
				return false
			}
			return true
		})
		return visitErr
	}
	rows, _, err := ev.evalBlock(qb, env)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := fn(r[0]); err != nil {
			return err
		}
	}
	return nil
}

// subRows returns the full result rows of a subquery (used by EXISTS).
func (ev *Evaluator) subRows(qb *ast.QueryBlock, env *Env) ([]storage.Tuple, error) {
	if !ast.IsCorrelated(qb) {
		c, err := ev.cached(qb)
		if err != nil {
			return nil, err
		}
		if c.isScalar {
			return []storage.Tuple{{c.scalar}}, nil
		}
		var rows []storage.Tuple
		c.list.Scan(func(t storage.Tuple) bool {
			rows = append(rows, t)
			return true
		})
		return rows, nil
	}
	rows, _, err := ev.evalBlock(qb, env)
	return rows, err
}

// cached evaluates an uncorrelated subquery once. A single-row aggregate
// block without GROUP BY becomes an in-memory constant (type-A evaluation,
// [SEL 79:33]); anything else is materialized as a temporary list file.
func (ev *Evaluator) cached(qb *ast.QueryBlock) (*cachedSub, error) {
	if c, ok := ev.subCache[qb]; ok {
		return c, nil
	}
	rows, _, err := ev.evalBlock(qb, nil)
	if err != nil {
		return nil, err
	}
	c := &cachedSub{}
	if qb.HasAggregate() && len(qb.GroupBy) == 0 && len(qb.Select) == 1 {
		c.isScalar = true
		c.scalar = rows[0][0]
	} else {
		f := ev.Store.CreateTemp(0)
		// Register for cleanup before filling: an append that panics
		// (torn-write fault) must not orphan the half-written temp.
		ev.tempFiles = append(ev.tempFiles, f)
		for _, r := range rows {
			f.Append(r)
		}
		f.Seal()
		c.list = f
	}
	ev.subCache[qb] = c
	return c, nil
}

// encodeKey builds a canonical, collision-free string key for a value
// list, used for grouping and duplicate elimination (NULL groups with
// NULL).
func encodeKey(vs []value.Value) string {
	b := make([]byte, 0, 16*len(vs))
	for _, v := range vs {
		b = appendValueKey(b, v)
	}
	return string(b)
}

func appendValueKey(b []byte, v value.Value) []byte {
	s := v.String()
	b = append(b, byte('0'+int(v.Kind())))
	b = appendInt(b, len(s))
	b = append(b, ':')
	b = append(b, s...)
	return b
}

func appendInt(b []byte, n int) []byte {
	return fmt.Appendf(b, "%d", n)
}
