package exec_test

import (
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

func intv(v int64) value.Value { return value.NewInt(v) }

// loadFile creates a heap file of two-column tuples.
func loadFile(s *storage.Store, name string, tpp int, rows [][2]int64) *storage.HeapFile {
	f, err := s.Create(name, tpp)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		f.Append(storage.Tuple{intv(r[0]), intv(r[1])})
	}
	f.Seal()
	return f
}

func scanOf(f *storage.HeapFile, binding string) *exec.SeqScan {
	return exec.NewSeqScan(f, binding, []string{"K", "V"})
}

func drainInts(t *testing.T, op exec.Operator) [][]int64 {
	t.Helper()
	rows, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int64, len(rows))
	for i, r := range rows {
		row := make([]int64, len(r))
		for j, v := range r {
			if v.IsNull() {
				row[j] = -999 // sentinel for NULL in these integer tests
			} else {
				row[j] = v.Int()
			}
		}
		out[i] = row
	}
	return out
}

func eqRows(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSeqScanAndRescan(t *testing.T) {
	s := storage.NewStore(4)
	f := loadFile(s, "R", 2, [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	scan := scanOf(f, "R")
	got := drainInts(t, scan)
	if !eqRows(got, [][]int64{{1, 10}, {2, 20}, {3, 30}}) {
		t.Errorf("scan = %v", got)
	}
	// Re-open rescans from the start.
	got = drainInts(t, scan)
	if len(got) != 3 {
		t.Errorf("rescan = %v", got)
	}
}

func TestFilterAndProject(t *testing.T) {
	s := storage.NewStore(4)
	f := loadFile(s, "R", 2, [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	scan := scanOf(f, "R")
	pred, err := exec.CompileConjuncts([]ast.Predicate{
		&ast.Comparison{
			Left:  ast.ColumnRef{Table: "R", Column: "V"},
			Op:    value.OpGt,
			Right: ast.Const{Val: intv(15)},
		},
	}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	filtered := &exec.Filter{Child: scan, Pred: pred}
	proj := exec.NewProject(filtered, []int{1}, nil)
	got := drainInts(t, proj)
	if !eqRows(got, [][]int64{{20}, {30}}) {
		t.Errorf("filter+project = %v", got)
	}
	if proj.Schema()[0] != (exec.ColID{Table: "R", Column: "V"}) {
		t.Errorf("project schema = %v", proj.Schema())
	}
}

func TestProjectRename(t *testing.T) {
	s := storage.NewStore(4)
	f := loadFile(s, "R", 2, [][2]int64{{1, 10}})
	proj := exec.NewProject(scanOf(f, "R"), []int{0}, []exec.ColID{{Column: "SUPPNUM"}})
	if proj.Schema()[0] != (exec.ColID{Column: "SUPPNUM"}) {
		t.Errorf("renamed schema = %v", proj.Schema())
	}
}

func TestCompileConjunctsErrors(t *testing.T) {
	s := storage.NewStore(4)
	f := loadFile(s, "R", 2, [][2]int64{{1, 10}})
	sch := scanOf(f, "R").Schema()
	cases := []ast.Predicate{
		&ast.InPred{Left: ast.ColumnRef{Table: "R", Column: "K"}, Sub: &ast.QueryBlock{}},
		&ast.Comparison{Left: ast.ColumnRef{Table: "R", Column: "K"}, Op: value.OpEq,
			Right: ast.ColumnRef{Table: "X", Column: "Y"}},
		&ast.Comparison{Left: ast.ColumnRef{Table: "R", Column: "K"}, Op: value.OpEq,
			Right: ast.ColumnRef{Table: "R", Column: "V"}, LeftOuter: true},
	}
	for _, p := range cases {
		if _, err := exec.CompileConjuncts([]ast.Predicate{p}, sch); err == nil {
			t.Errorf("CompileConjuncts(%s): expected error", p)
		}
	}
}

func TestSortInMemory(t *testing.T) {
	s := storage.NewStore(8)
	f := loadFile(s, "R", 4, [][2]int64{{3, 1}, {1, 2}, {2, 3}})
	s.ResetStats()
	srt := &exec.Sort{Child: scanOf(f, "R"), Keys: []int{0}, Store: s, TuplesPerPage: 4}
	got := drainInts(t, srt)
	if !eqRows(got, [][]int64{{1, 2}, {2, 3}, {3, 1}}) {
		t.Errorf("sorted = %v", got)
	}
	// One page input, fits in memory: only the scan's read.
	if st := s.Stats(); st.Reads != 1 || st.Writes != 0 {
		t.Errorf("in-memory sort I/O = %+v", st)
	}
}

func TestSortExternalIO(t *testing.T) {
	// B = 3 buffer pages, 1 tuple per page, 12 tuples = 12 pages. Runs of
	// 3 pages -> 4 runs; fan-in B-1 = 2: merge 4 -> 2 -> 1.
	s := storage.NewStore(3)
	rows := make([][2]int64, 12)
	for i := range rows {
		rows[i] = [2]int64{int64(11 - i), int64(i)}
	}
	f := loadFile(s, "R", 1, rows)
	s.ResetStats()
	srt := &exec.Sort{Child: scanOf(f, "R"), Keys: []int{0}, Store: s, TuplesPerPage: 1}
	got := drainInts(t, srt)
	for i := range got {
		if got[i][0] != int64(i) {
			t.Fatalf("sorted order wrong: %v", got)
		}
	}
	// Cost: read input 12; write 4 runs (12 pages); merge pass 1: read 12,
	// write 12 (2 runs); merge pass 2: read 12, write 12 (1 run); Next()
	// streams the final run: read 12. The model's 2·P·log_{B-1}(P) with
	// P=12, B-1=2 gives ~86; measured is the same order.
	st := s.Stats()
	if st.Reads != 12+12+12+12 || st.Writes != 12+12+12 {
		t.Errorf("external sort I/O = %+v, want 48 reads + 36 writes", st)
	}
	if err := srt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSortByMultipleKeysAndNulls(t *testing.T) {
	s := storage.NewStore(8)
	f, _ := s.Create("R", 4)
	f.Append(storage.Tuple{intv(1), value.Null})
	f.Append(storage.Tuple{value.Null, intv(5)})
	f.Append(storage.Tuple{intv(1), intv(2)})
	f.Seal()
	srt := &exec.Sort{Child: scanOf(f, "R"), Keys: []int{0, 1}, Store: s}
	rows, err := exec.Drain(srt)
	if err != nil {
		t.Fatal(err)
	}
	// NULLs sort first.
	if !rows[0][0].IsNull() {
		t.Errorf("first row = %v", rows[0])
	}
	if !rows[1][1].IsNull() {
		t.Errorf("second row = %v (NULL value sorts before 2)", rows[1])
	}
}

func TestDistinct(t *testing.T) {
	s := storage.NewStore(8)
	f := loadFile(s, "R", 4, [][2]int64{{1, 1}, {2, 2}, {2, 2}, {2, 3}, {3, 3}})
	d := &exec.Distinct{Child: scanOf(f, "R")} // input already sorted
	got := drainInts(t, d)
	if !eqRows(got, [][]int64{{1, 1}, {2, 2}, {2, 3}, {3, 3}}) {
		t.Errorf("distinct = %v", got)
	}
}

func TestDistinctTreatsNullsEqual(t *testing.T) {
	s := storage.NewStore(8)
	f, _ := s.Create("R", 4)
	f.Append(storage.Tuple{value.Null})
	f.Append(storage.Tuple{value.Null})
	f.Append(storage.Tuple{intv(1)})
	f.Seal()
	d := &exec.Distinct{Child: exec.NewSeqScan(f, "R", []string{"K"})}
	rows, err := exec.Drain(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("distinct with NULLs = %v", rows)
	}
}

func TestMergeJoinInner(t *testing.T) {
	s := storage.NewStore(8)
	l := loadFile(s, "L", 4, [][2]int64{{1, 10}, {2, 20}, {2, 21}, {4, 40}})
	r := loadFile(s, "R", 4, [][2]int64{{1, 100}, {2, 200}, {2, 201}, {3, 300}})
	j := &exec.MergeJoin{Left: scanOf(l, "L"), Right: scanOf(r, "R"), LeftKey: 0, RightKey: 0}
	got := drainInts(t, j)
	want := [][]int64{
		{1, 10, 1, 100},
		{2, 20, 2, 200}, {2, 20, 2, 201},
		{2, 21, 2, 200}, {2, 21, 2, 201},
	}
	if !eqRows(got, want) {
		t.Errorf("merge join = %v, want %v", got, want)
	}
}

func TestMergeJoinLeftOuter(t *testing.T) {
	// The paper's outer join example (section 5.2): R{A,B} =+ S{B,C,E}
	// keeps A with a NULL partner.
	s := storage.NewStore(8)
	l := loadFile(s, "L", 4, [][2]int64{{1, 10}, {2, 20}, {4, 40}})
	r := loadFile(s, "R", 4, [][2]int64{{2, 200}, {3, 300}})
	j := &exec.MergeJoin{Left: scanOf(l, "L"), Right: scanOf(r, "R"), LeftKey: 0, RightKey: 0, Outer: true}
	got := drainInts(t, j)
	want := [][]int64{
		{1, 10, -999, -999},
		{2, 20, 2, 200},
		{4, 40, -999, -999},
	}
	if !eqRows(got, want) {
		t.Errorf("outer merge join = %v, want %v", got, want)
	}
}

func TestMergeJoinNullKeys(t *testing.T) {
	s := storage.NewStore(8)
	l, _ := s.Create("L", 4)
	l.Append(storage.Tuple{value.Null, intv(1)})
	l.Append(storage.Tuple{intv(2), intv(2)})
	l.Seal()
	r, _ := s.Create("R", 4)
	r.Append(storage.Tuple{value.Null, intv(9)})
	r.Append(storage.Tuple{intv(2), intv(8)})
	r.Seal()
	// Inner: NULL keys never match.
	j := &exec.MergeJoin{Left: scanOf(l, "L"), Right: scanOf(r, "R"), LeftKey: 0, RightKey: 0}
	got := drainInts(t, j)
	if !eqRows(got, [][]int64{{2, 2, 2, 8}}) {
		t.Errorf("inner with NULL keys = %v", got)
	}
	// Outer: NULL-keyed left rows are padded, not matched.
	j = &exec.MergeJoin{Left: scanOf(l, "L"), Right: scanOf(r, "R"), LeftKey: 0, RightKey: 0, Outer: true}
	got = drainInts(t, j)
	want := [][]int64{{-999, 1, -999, -999}, {2, 2, 2, 8}}
	if !eqRows(got, want) {
		t.Errorf("outer with NULL keys = %v", got)
	}
}

func TestNestedLoopJoinTheta(t *testing.T) {
	// The section 5.3.1 shape: SUPPLY.PNUM < PARTS.PNUM.
	s := storage.NewStore(8)
	l := loadFile(s, "L", 4, [][2]int64{{3, 0}, {8, 4}})
	r := loadFile(s, "R", 4, [][2]int64{{3, 4}, {9, 5}})
	left := scanOf(l, "L")
	sch := left.Schema().Concat(exec.RowSchema{{Table: "R", Column: "K"}, {Table: "R", Column: "V"}})
	pred, err := exec.CompileConjuncts([]ast.Predicate{
		&ast.Comparison{
			Left:  ast.ColumnRef{Table: "R", Column: "K"},
			Op:    value.OpLt,
			Right: ast.ColumnRef{Table: "L", Column: "K"},
		},
	}, sch)
	if err != nil {
		t.Fatal(err)
	}
	j := &exec.NestedLoopJoin{
		Left: left, Right: r,
		RightSch: exec.RowSchema{{Table: "R", Column: "K"}, {Table: "R", Column: "V"}},
		Pred:     pred,
	}
	got := drainInts(t, j)
	if !eqRows(got, [][]int64{{8, 4, 3, 4}}) {
		t.Errorf("theta NL join = %v", got)
	}
}

func TestNestedLoopJoinOuter(t *testing.T) {
	s := storage.NewStore(8)
	l := loadFile(s, "L", 4, [][2]int64{{1, 0}, {5, 4}})
	r := loadFile(s, "R", 4, [][2]int64{{3, 4}})
	left := scanOf(l, "L")
	rightSch := exec.RowSchema{{Table: "R", Column: "K"}, {Table: "R", Column: "V"}}
	pred, err := exec.CompileConjuncts([]ast.Predicate{
		&ast.Comparison{
			Left:  ast.ColumnRef{Table: "R", Column: "K"},
			Op:    value.OpLt,
			Right: ast.ColumnRef{Table: "L", Column: "K"},
		},
	}, left.Schema().Concat(rightSch))
	if err != nil {
		t.Fatal(err)
	}
	j := &exec.NestedLoopJoin{Left: left, Right: r, RightSch: rightSch, Pred: pred, Outer: true}
	got := drainInts(t, j)
	want := [][]int64{{1, 0, -999, -999}, {5, 4, 3, 4}}
	if !eqRows(got, want) {
		t.Errorf("outer theta NL join = %v, want %v", got, want)
	}
}

func TestGroupAggSorted(t *testing.T) {
	s := storage.NewStore(8)
	f := loadFile(s, "R", 4, [][2]int64{{1, 10}, {1, 20}, {2, 5}, {3, 7}})
	g := &exec.GroupAgg{
		Child:     scanOf(f, "R"),
		GroupCols: []int{0},
		Items: []exec.GroupItem{
			{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
			{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CT"}},
			{Agg: value.AggMax, Col: 1, Out: exec.ColID{Column: "MX"}},
			{Agg: value.AggSum, Col: 1, Out: exec.ColID{Column: "SM"}},
		},
	}
	got := drainInts(t, g)
	want := [][]int64{{1, 2, 20, 30}, {2, 1, 5, 5}, {3, 1, 7, 7}}
	if !eqRows(got, want) {
		t.Errorf("group agg = %v, want %v", got, want)
	}
}

// After an outer join, unmatched groups carry NULL in the inner columns:
// COUNT(inner col) = 0 for them — the heart of the section 5.2 fix.
func TestGroupAggCountOverOuterJoinNulls(t *testing.T) {
	s := storage.NewStore(8)
	f, _ := s.Create("R", 4)
	f.Append(storage.Tuple{intv(3), intv(7)})
	f.Append(storage.Tuple{intv(3), intv(9)})
	f.Append(storage.Tuple{intv(8), value.Null}) // NULL-padded outer-join row
	f.Seal()
	g := &exec.GroupAgg{
		Child:     exec.NewSeqScan(f, "R", []string{"K", "V"}),
		GroupCols: []int{0},
		Items: []exec.GroupItem{
			{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
			{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CT"}},
		},
	}
	got := drainInts(t, g)
	want := [][]int64{{3, 2}, {8, 0}}
	if !eqRows(got, want) {
		t.Errorf("COUNT over padded rows = %v, want %v", got, want)
	}
	// COUNT(*) would wrongly count the padded row — section 5.2.1.
	g = &exec.GroupAgg{
		Child:     exec.NewSeqScan(f, "R", []string{"K", "V"}),
		GroupCols: []int{0},
		Items: []exec.GroupItem{
			{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
			{Agg: value.AggCountStar, Col: -1, Out: exec.ColID{Column: "CT"}},
		},
	}
	got = drainInts(t, g)
	want = [][]int64{{3, 2}, {8, 1}}
	if !eqRows(got, want) {
		t.Errorf("COUNT(*) over padded rows = %v, want %v", got, want)
	}
}

func TestGroupAggGlobalEmpty(t *testing.T) {
	s := storage.NewStore(8)
	f, _ := s.Create("R", 4)
	f.Seal()
	g := &exec.GroupAgg{
		Child: exec.NewSeqScan(f, "R", []string{"K", "V"}),
		Items: []exec.GroupItem{
			{Agg: value.AggCount, Col: 0, Out: exec.ColID{Column: "CT"}},
			{Agg: value.AggMax, Col: 1, Out: exec.ColID{Column: "MX"}},
		},
	}
	rows, err := exec.Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("global empty agg = %v, want one row (0, NULL)", rows)
	}
	// With GROUP BY, empty input yields no rows.
	g2 := &exec.GroupAgg{
		Child:     exec.NewSeqScan(f, "R", []string{"K", "V"}),
		GroupCols: []int{0},
		Items: []exec.GroupItem{
			{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
			{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CT"}},
		},
	}
	rows, err = exec.Drain(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("grouped empty agg = %v, want none", rows)
	}
}

func TestMaterialize(t *testing.T) {
	s := storage.NewStore(8)
	f := loadFile(s, "R", 4, [][2]int64{{1, 10}, {2, 20}})
	s.ResetStats()
	mat, err := exec.Materialize(scanOf(f, "R"), s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mat.NumTuples() != 2 || mat.NumPages() != 1 {
		t.Errorf("materialized: %d tuples, %d pages", mat.NumTuples(), mat.NumPages())
	}
	if st := s.Stats(); st.Writes != 1 {
		t.Errorf("materialize writes = %d, want 1", st.Writes)
	}
}

// Property: MergeJoin on sorted inputs equals a naive nested-loop equality
// join, inner and left-outer, for arbitrary key multisets.
func TestMergeJoinEquivalentToNaive(t *testing.T) {
	check := func(lk, rk []uint8, outer bool) bool {
		s := storage.NewStore(8)
		lrows := make([][2]int64, len(lk))
		for i, k := range lk {
			lrows[i] = [2]int64{int64(k % 8), int64(i)}
		}
		rrows := make([][2]int64, len(rk))
		for i, k := range rk {
			rrows[i] = [2]int64{int64(k % 8), int64(100 + i)}
		}
		l := loadFile(s, "L", 4, lrows)
		r := loadFile(s, "R", 4, rrows)
		lsort := &exec.Sort{Child: scanOf(l, "L"), Keys: []int{0}, Store: s}
		rsort := &exec.Sort{Child: scanOf(r, "R"), Keys: []int{0}, Store: s}
		j := &exec.MergeJoin{Left: lsort, Right: rsort, LeftKey: 0, RightKey: 0, Outer: outer}
		rows, err := exec.Drain(j)
		if err != nil {
			return false
		}
		// Naive join for comparison.
		var naive [][4]int64
		for _, lr := range lrows {
			matched := false
			for _, rr := range rrows {
				if lr[0] == rr[0] {
					naive = append(naive, [4]int64{lr[0], lr[1], rr[0], rr[1]})
					matched = true
				}
			}
			if outer && !matched {
				naive = append(naive, [4]int64{lr[0], lr[1], -999, -999})
			}
		}
		if len(rows) != len(naive) {
			return false
		}
		counts := make(map[[4]int64]int)
		for _, n := range naive {
			counts[n]++
		}
		for _, r := range rows {
			var key [4]int64
			for j := range 4 {
				if r[j].IsNull() {
					key[j] = -999
				} else {
					key[j] = r[j].Int()
				}
			}
			counts[key]--
			if counts[key] < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(lk, rk []uint8) bool { return check(lk, rk, false) }, cfg); err != nil {
		t.Errorf("inner: %v", err)
	}
	if err := quick.Check(func(lk, rk []uint8) bool { return check(lk, rk, true) }, cfg); err != nil {
		t.Errorf("outer: %v", err)
	}
}

// Property: external Sort output equals in-memory sort for arbitrary
// inputs and small buffer pools.
func TestSortEquivalentToInMemory(t *testing.T) {
	check := func(keys []uint16, bufSmall uint8) bool {
		s := storage.NewStore(int(bufSmall%4) + 3)
		rows := make([][2]int64, len(keys))
		for i, k := range keys {
			rows[i] = [2]int64{int64(k % 50), int64(i)}
		}
		f := loadFile(s, "R", 2, rows)
		srt := &exec.Sort{Child: scanOf(f, "R"), Keys: []int{0}, Store: s, TuplesPerPage: 2}
		got, err := exec.Drain(srt)
		if err != nil {
			return false
		}
		if len(got) != len(rows) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1][0].Int() > got[i][0].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Section 7.2's claim, measured: "The merge join method of performing an
// outer join will have a cost function identical to that for a standard
// join, since the two relations are scanned in sorted order, and no extra
// cost is involved in determining which tuples have no matching tuples."
// Reads must be identical; the outer result may only be slightly larger.
func TestOuterMergeJoinCostEqualsStandard(t *testing.T) {
	build := func(outer bool) (reads int64, rows int) {
		s := storage.NewStore(4)
		lrows := make([][2]int64, 60)
		for i := range lrows {
			lrows[i] = [2]int64{int64(i), int64(i % 7)}
		}
		rrows := make([][2]int64, 40)
		for i := range rrows {
			rrows[i] = [2]int64{int64(i * 2), int64(i % 5)} // half the keys match
		}
		l := loadFile(s, "L", 4, lrows)
		r := loadFile(s, "R", 4, rrows)
		s.ResetStats()
		j := &exec.MergeJoin{
			Left:    scanOf(l, "L"),
			Right:   scanOf(r, "R"),
			LeftKey: 0, RightKey: 0,
			Outer: outer,
		}
		out, err := exec.Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		return s.Stats().Reads, len(out)
	}
	innerReads, innerRows := build(false)
	outerReads, outerRows := build(true)
	if innerReads != outerReads {
		t.Errorf("outer merge join reads %d != standard %d", outerReads, innerReads)
	}
	if outerRows <= innerRows {
		t.Errorf("outer join must add padded rows: %d vs %d", outerRows, innerRows)
	}
}

// Property: GroupAgg over sorted input equals a naive per-key aggregation
// for COUNT, SUM, MAX across arbitrary key multisets.
func TestGroupAggEquivalentToNaive(t *testing.T) {
	check := func(keys []uint8) bool {
		s := storage.NewStore(8)
		rows := make([][2]int64, len(keys))
		for i, k := range keys {
			rows[i] = [2]int64{int64(k % 6), int64(i % 11)}
		}
		f := loadFile(s, "R", 4, rows)
		g := &exec.GroupAgg{
			Child:     &exec.Sort{Child: scanOf(f, "R"), Keys: []int{0}, Store: s},
			GroupCols: []int{0},
			Items: []exec.GroupItem{
				{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
				{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CT"}},
				{Agg: value.AggSum, Col: 1, Out: exec.ColID{Column: "SM"}},
				{Agg: value.AggMax, Col: 1, Out: exec.ColID{Column: "MX"}},
			},
		}
		got, err := exec.Drain(g)
		if err != nil {
			return false
		}
		type agg struct{ ct, sm, mx int64 }
		naive := map[int64]*agg{}
		for _, r := range rows {
			a, ok := naive[r[0]]
			if !ok {
				a = &agg{mx: -1 << 62}
				naive[r[0]] = a
			}
			a.ct++
			a.sm += r[1]
			if r[1] > a.mx {
				a.mx = r[1]
			}
		}
		if len(got) != len(naive) {
			return false
		}
		for _, row := range got {
			a := naive[row[0].Int()]
			if a == nil || row[1].Int() != a.ct || row[2].Int() != a.sm || row[3].Int() != a.mx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AntiJoin equals the naive NOT IN evaluation over arbitrary
// multisets including NULLs.
func TestAntiJoinEquivalentToNaive(t *testing.T) {
	check := func(lk, rk []uint8) bool {
		s := storage.NewStore(8)
		mk := func(k uint8) value.Value {
			if k%5 == 0 {
				return value.Null
			}
			return value.NewInt(int64(k % 4))
		}
		l, _ := s.Create("L", 4)
		for i, k := range lk {
			l.Append(storage.Tuple{mk(k), value.NewInt(int64(i))})
		}
		l.Seal()
		r, _ := s.Create("R", 4)
		for _, k := range rk {
			r.Append(storage.Tuple{mk(k)})
		}
		r.Seal()

		aj := &exec.AntiJoin{
			Left:      scanOf(l, "L"),
			Right:     r,
			RightSch:  exec.RowSchema{{Table: "R", Column: "M"}},
			LeftVal:   func(t storage.Tuple) value.Value { return t[0] },
			MemberCol: 0,
		}
		got, err := exec.Drain(aj)
		if err != nil {
			return false
		}
		// Naive NOT IN semantics.
		var want int
		for _, k := range lk {
			lv := mk(k)
			if len(rk) == 0 {
				want++
				continue
			}
			if lv.IsNull() {
				continue
			}
			matched, sawNull := false, false
			for _, rkv := range rk {
				mv := mk(rkv)
				if mv.IsNull() {
					sawNull = true
				} else if mv.Int() == lv.Int() {
					matched = true
				}
			}
			if !matched && !sawNull {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
