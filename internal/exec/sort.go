package exec

import (
	"io"
	"sort"

	"repro/internal/qctx"
	"repro/internal/spill"
	"repro/internal/storage"
	"repro/internal/value"
)

// Sort is an external (B−1)-way merge sort, the sorting method of the
// paper's cost model (section 7): initial runs of B pages are formed in
// memory, then merged B−1 at a time, costing about 2·P·log_{B−1}(P) page
// I/Os for a P-page input. Run files bypass the buffer pool — the sorter
// owns its buffers — so measured I/O follows the model rather than LRU
// caching. An input that fits entirely in B pages sorts in memory with no
// I/O beyond the child's own reads.
//
// Under memory pressure (a refused qctx reservation) with a spill
// session attached, the in-memory buffer is cut short and written as a
// checksummed spill run on real disk instead of failing the query with
// ErrMemoryBudget; from then on every initial run spills. Heap-file
// runs and spill runs are kept in creation order and merged together,
// so the output is byte-identical to the unspilled sort (the merge is
// stable: ties resolve to the earliest run).
//
// NULLs sort first and compare equal to each other, so a Sort feeds both
// Distinct and GroupAgg directly.
type Sort struct {
	Child Operator
	// Keys are child column positions ordered by significance. Remaining
	// columns do not participate in the order.
	Keys []int
	// Desc flips the direction per key (nil = all ascending).
	Desc []bool
	// Store provides temp run files; TuplesPerPage sizes their pages
	// (callers pass the source relation's page capacity so run pages
	// match the cost model's page counts).
	Store         *storage.Store
	TuplesPerPage int
	// QC, when set, is checked while draining the child and merging runs,
	// and charged for tuples buffered in memory.
	QC *qctx.QueryContext
	// Spill, when set, enables degradation to spill runs instead of
	// ErrMemoryBudget when a buffer reservation is refused.
	Spill *spill.Session

	mem        []storage.Tuple // in-memory result when input fits in B pages
	runs       []sortRun       // initial/merged runs in creation order
	final      sortRun         // the single fully-merged run
	haveFinal  bool
	finalRd    *spill.Reader // streaming cursor when final is a spill run
	pos        int           // cursor into mem
	pageIdx    int           // cursor into a heap-file final run
	tuples     []storage.Tuple
	tupIdx     int
	cmpErr     error // first key-comparison type error, surfaced by Open
	charged    int64 // bytes currently charged against the memory budget
	spillMode  bool  // a reservation was refused; all new runs spill
	spillBatch int   // tuples per spill run once in spill mode
}

// sortRun is one sorted run, on the paged heap "disk" or in a spill
// file. Exactly one field is set.
type sortRun struct {
	heap *storage.HeapFile
	sp   *spill.Run
}

func (s *Sort) less(a, b storage.Tuple) bool {
	for i, k := range s.Keys {
		c, err := value.TotalCompare(a[k], b[k])
		if err != nil {
			// sort.SliceStable cannot propagate errors; record the first
			// one and let Open report it after the sort completes.
			if s.cmpErr == nil {
				s.cmpErr = err
			}
			return false
		}
		if c != 0 {
			if s.Desc != nil && s.Desc[i] {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// Open drains the child, forms sorted runs, and merges them down to one.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	defer s.Child.Close()
	s.mem, s.runs = nil, nil
	s.final, s.haveFinal, s.finalRd = sortRun{}, false, nil
	s.pos, s.pageIdx, s.tupIdx, s.tuples = 0, 0, 0, nil
	s.cmpErr, s.charged, s.spillMode = nil, 0, false

	tpp := s.TuplesPerPage
	if tpp <= 0 {
		tpp = storage.DefaultTuplesPerPage
	}
	b := s.Store.BufferPages()
	if b < 3 {
		b = 3 // a merge sort needs at least two inputs and one output frame
	}
	runCap := b * tpp
	// Once spilling, cut runs at a morsel of tuples: small enough that
	// the uncharged slack between flushes stays bounded, large enough to
	// amortize file creation.
	s.spillBatch = MorselSize
	if runCap < s.spillBatch {
		s.spillBatch = runCap
	}

	var buf []storage.Tuple
	var bufBytes int64
	flushHeap := func() {
		if len(buf) == 0 {
			return
		}
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		f := s.Store.CreateTemp(tpp)
		// Register for cleanup before filling: an append that panics (torn
		// write) must leave the half-written run where Close can drop it.
		s.runs = append(s.runs, sortRun{heap: f})
		for _, t := range buf {
			f.Append(t)
		}
		f.Seal()
		// Run pages were just produced in memory; the writes above are
		// their cost. Reads during merging use ReadPageDirect.
		buf = nil
		// The run now lives on "disk"; return its bytes to the budget.
		s.QC.ReleaseBuffered(bufBytes)
		s.charged -= bufBytes
		bufBytes = 0
	}
	flushSpill := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		if s.cmpErr != nil {
			return s.cmpErr
		}
		run, err := s.writeSpillRun(buf)
		if err != nil {
			return err
		}
		s.runs = append(s.runs, sortRun{sp: run})
		buf = nil
		s.QC.ReleaseBuffered(bufBytes)
		s.charged -= bufBytes
		bufBytes = 0
		return nil
	}

	for {
		t, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := s.QC.Check(); err != nil {
			return err
		}
		n := tupleBytes(t)
		if s.spillMode {
			// Tuples between spill flushes ride uncharged; the batch cap
			// bounds the slack to one morsel.
			buf = append(buf, t)
			if len(buf) >= s.spillBatch {
				if err := flushSpill(); err != nil {
					return err
				}
			}
			continue
		}
		if s.Spill.Enabled() && s.QC != nil {
			if !s.QC.ReserveBuffered(n) {
				// Memory pressure: spill what is buffered (plus this
				// uncharged tuple) and degrade to spill runs from here on.
				s.spillMode = true
				buf = append(buf, t)
				if err := flushSpill(); err != nil {
					return err
				}
				continue
			}
		} else if err := s.QC.AddBuffered(n); err != nil {
			return err
		}
		s.charged += n
		bufBytes += n
		buf = append(buf, t)
		if len(buf) == runCap {
			flushHeap()
			if s.cmpErr != nil {
				return s.cmpErr
			}
		}
	}
	if len(s.runs) == 0 {
		// Entire input fits in the sort's memory: no run I/O. The charge
		// for buf stays until Close — the rows remain buffered.
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		if s.cmpErr != nil {
			return s.cmpErr
		}
		s.mem = buf
		return nil
	}
	if s.spillMode {
		if err := flushSpill(); err != nil {
			return err
		}
	} else {
		flushHeap()
	}
	if s.cmpErr != nil {
		return s.cmpErr
	}

	// Merge passes, B-1 runs at a time, over adjacent runs in creation
	// order (stability: earlier runs hold earlier input rows).
	for len(s.runs) > 1 {
		var next []sortRun
		for i := 0; i < len(s.runs); i += b - 1 {
			j := min(i+b-1, len(s.runs))
			merged, err := s.mergeRuns(s.runs[i:j], tpp)
			if err != nil {
				// Runs created so far (including partial output) are in
				// s.runs; Close drops them.
				s.runs = append(s.runs, next...)
				return err
			}
			next = append(next, merged)
		}
		for _, r := range s.runs {
			found := false
			for _, n := range next {
				if n == r {
					found = true
					break
				}
			}
			if !found {
				s.dropRun(r)
			}
		}
		s.runs = next
	}
	s.final, s.haveFinal = s.runs[0], true
	if s.final.sp != nil {
		rd, err := s.final.sp.Open()
		if err != nil {
			return err
		}
		s.finalRd = rd
	}
	return nil
}

// writeSpillRun sorts and writes one buffer as a checksummed spill run.
func (s *Sort) writeSpillRun(buf []storage.Tuple) (*spill.Run, error) {
	w, err := s.Spill.NewWriter()
	if err != nil {
		return nil, err
	}
	for _, t := range buf {
		if err := w.Append(t); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}

func (s *Sort) dropRun(r sortRun) {
	if r.heap != nil {
		s.Store.Drop(r.heap.Name())
	}
	if r.sp != nil {
		r.sp.Remove()
	}
}

// runCursor reads one run sequentially: heap runs with direct
// (always-counted) page I/O, spill runs through a checksum-verifying
// reader.
type runCursor struct {
	file    *storage.HeapFile
	rd      *spill.Reader
	pageIdx int
	tuples  []storage.Tuple
	tupIdx  int
	cur     storage.Tuple
	done    bool
}

func newRunCursor(r sortRun) (*runCursor, error) {
	c := &runCursor{file: r.heap}
	if r.sp != nil {
		rd, err := r.sp.Open()
		if err != nil {
			return nil, err
		}
		c.rd = rd
	}
	return c, nil
}

func (c *runCursor) advance() error {
	if c.rd != nil {
		t, err := c.rd.Next()
		if err == io.EOF {
			c.cur, c.done = nil, true
			return nil
		}
		if err != nil {
			return err
		}
		c.cur = t
		return nil
	}
	for c.tupIdx >= len(c.tuples) {
		if c.pageIdx >= c.file.NumPages() {
			c.cur, c.done = nil, true
			return nil
		}
		c.tuples = c.file.ReadPageDirect(c.pageIdx)
		c.pageIdx++
		c.tupIdx = 0
	}
	c.cur = c.tuples[c.tupIdx]
	c.tupIdx++
	return nil
}

func (c *runCursor) close() {
	if c.rd != nil {
		c.rd.Close()
	}
}

// mergeRuns merges sorted runs into a single new run — a heap temp
// normally, a spill run once the sort is in spill mode. On error the
// partial output is dropped before returning.
func (s *Sort) mergeRuns(runs []sortRun, tpp int) (sortRun, error) {
	if len(runs) == 1 {
		return runs[0], nil
	}
	cursors := make([]*runCursor, len(runs))
	defer func() {
		for _, c := range cursors {
			if c != nil {
				c.close()
			}
		}
	}()
	for i, r := range runs {
		c, err := newRunCursor(r)
		if err != nil {
			return sortRun{}, err
		}
		cursors[i] = c
		if err := c.advance(); err != nil {
			return sortRun{}, err
		}
	}

	var outHeap *storage.HeapFile
	var outSpill *spill.Writer
	if s.spillMode {
		w, err := s.Spill.NewWriter()
		if err != nil {
			return sortRun{}, err
		}
		outSpill = w
	} else {
		outHeap = s.Store.CreateTemp(tpp)
	}
	done := false
	// Drop the partial output on any failure — error return or a panic
	// unwinding through an append (Store.Drop is idempotent; the spill
	// session removes aborted files too).
	defer func() {
		if done {
			return
		}
		if outHeap != nil {
			s.Store.Drop(outHeap.Name())
		}
		if outSpill != nil {
			outSpill.Abort()
		}
	}()
	for {
		if err := s.QC.Check(); err != nil {
			return sortRun{}, err
		}
		best := -1
		for i, c := range cursors {
			if c.done {
				continue
			}
			if best < 0 || s.less(c.cur, cursors[best].cur) {
				best = i
			}
		}
		if s.cmpErr != nil {
			return sortRun{}, s.cmpErr
		}
		if best < 0 {
			break
		}
		if outSpill != nil {
			if err := outSpill.Append(cursors[best].cur); err != nil {
				return sortRun{}, err
			}
		} else {
			outHeap.Append(cursors[best].cur)
		}
		if err := cursors[best].advance(); err != nil {
			return sortRun{}, err
		}
	}
	if outSpill != nil {
		run, err := outSpill.Finish()
		if err != nil {
			return sortRun{}, err
		}
		outSpill = nil // Finished: the deferred Abort must not fire.
		done = true
		return sortRun{sp: run}, nil
	}
	outHeap.Seal()
	done = true
	return sortRun{heap: outHeap}, nil
}

// Next streams the sorted rows.
func (s *Sort) Next() (storage.Tuple, bool, error) {
	if !s.haveFinal {
		if s.pos >= len(s.mem) {
			return nil, false, nil
		}
		t := s.mem[s.pos]
		s.pos++
		return t, true, nil
	}
	if s.finalRd != nil {
		t, err := s.finalRd.Next()
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		return t, true, nil
	}
	for s.tupIdx >= len(s.tuples) {
		if s.pageIdx >= s.final.heap.NumPages() {
			return nil, false, nil
		}
		s.tuples = s.final.heap.ReadPageDirect(s.pageIdx)
		s.pageIdx++
		s.tupIdx = 0
	}
	t := s.tuples[s.tupIdx]
	s.tupIdx++
	return t, true, nil
}

// Close drops the remaining run files and returns any buffered-byte
// charge. It is safe to call before Open and more than once.
func (s *Sort) Close() error {
	if s.finalRd != nil {
		s.finalRd.Close()
		s.finalRd = nil
	}
	for _, r := range s.runs {
		s.dropRun(r)
	}
	s.runs, s.mem = nil, nil
	s.final, s.haveFinal = sortRun{}, false
	s.QC.ReleaseBuffered(s.charged)
	s.charged = 0
	return nil
}

// Schema returns the child's schema; sorting does not change columns.
func (s *Sort) Schema() RowSchema { return s.Child.Schema() }
