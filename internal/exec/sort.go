package exec

import (
	"sort"

	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

// Sort is an external (B−1)-way merge sort, the sorting method of the
// paper's cost model (section 7): initial runs of B pages are formed in
// memory, then merged B−1 at a time, costing about 2·P·log_{B−1}(P) page
// I/Os for a P-page input. Run files bypass the buffer pool — the sorter
// owns its buffers — so measured I/O follows the model rather than LRU
// caching. An input that fits entirely in B pages sorts in memory with no
// I/O beyond the child's own reads.
//
// NULLs sort first and compare equal to each other, so a Sort feeds both
// Distinct and GroupAgg directly.
type Sort struct {
	Child Operator
	// Keys are child column positions ordered by significance. Remaining
	// columns do not participate in the order.
	Keys []int
	// Desc flips the direction per key (nil = all ascending).
	Desc []bool
	// Store provides temp run files; TuplesPerPage sizes their pages
	// (callers pass the source relation's page capacity so run pages
	// match the cost model's page counts).
	Store         *storage.Store
	TuplesPerPage int
	// QC, when set, is checked while draining the child and merging runs,
	// and charged for tuples buffered in memory.
	QC *qctx.QueryContext

	mem     []storage.Tuple     // in-memory result when input fits in B pages
	runFile *storage.HeapFile   // final run otherwise
	runs    []*storage.HeapFile // intermediate runs pending cleanup
	pos     int                 // cursor into mem
	pageIdx int                 // cursor into runFile
	tuples  []storage.Tuple
	tupIdx  int
	cmpErr  error // first key-comparison type error, surfaced by Open
	charged int64 // bytes currently charged against the memory budget
}

func (s *Sort) less(a, b storage.Tuple) bool {
	for i, k := range s.Keys {
		c, err := value.TotalCompare(a[k], b[k])
		if err != nil {
			// sort.SliceStable cannot propagate errors; record the first
			// one and let Open report it after the sort completes.
			if s.cmpErr == nil {
				s.cmpErr = err
			}
			return false
		}
		if c != 0 {
			if s.Desc != nil && s.Desc[i] {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// Open drains the child, forms sorted runs, and merges them down to one.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	defer s.Child.Close()
	s.mem, s.runFile, s.runs = nil, nil, nil
	s.pos, s.pageIdx, s.tupIdx, s.tuples = 0, 0, 0, nil
	s.cmpErr, s.charged = nil, 0

	tpp := s.TuplesPerPage
	if tpp <= 0 {
		tpp = storage.DefaultTuplesPerPage
	}
	b := s.Store.BufferPages()
	if b < 3 {
		b = 3 // a merge sort needs at least two inputs and one output frame
	}
	runCap := b * tpp

	var buf []storage.Tuple
	var bufBytes int64
	flush := func() {
		if len(buf) == 0 {
			return
		}
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		f := s.Store.CreateTemp(tpp)
		// Register for cleanup before filling: an append that panics (torn
		// write) must leave the half-written run where Close can drop it.
		s.runs = append(s.runs, f)
		for _, t := range buf {
			f.Append(t)
		}
		f.Seal()
		// Run pages were just produced in memory; the writes above are
		// their cost. Reads during merging use ReadPageDirect.
		buf = nil
		// The run now lives on "disk"; return its bytes to the budget.
		s.QC.ReleaseBuffered(bufBytes)
		s.charged -= bufBytes
		bufBytes = 0
	}

	for {
		t, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := s.QC.Check(); err != nil {
			return err
		}
		n := tupleBytes(t)
		if err := s.QC.AddBuffered(n); err != nil {
			return err
		}
		s.charged += n
		bufBytes += n
		buf = append(buf, t)
		if len(buf) == runCap {
			flush()
			if s.cmpErr != nil {
				return s.cmpErr
			}
		}
	}
	if len(s.runs) == 0 {
		// Entire input fits in the sort's memory: no run I/O. The charge
		// for buf stays until Close — the rows remain buffered.
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		if s.cmpErr != nil {
			return s.cmpErr
		}
		s.mem = buf
		return nil
	}
	flush()
	if s.cmpErr != nil {
		return s.cmpErr
	}

	// Merge passes, B-1 runs at a time.
	for len(s.runs) > 1 {
		var next []*storage.HeapFile
		for i := 0; i < len(s.runs); i += b - 1 {
			j := min(i+b-1, len(s.runs))
			merged, err := s.mergeRuns(s.runs[i:j], tpp)
			if err != nil {
				// Runs created so far (including partial output) are in
				// s.runs; Close drops them.
				s.runs = append(s.runs, next...)
				return err
			}
			next = append(next, merged)
		}
		for _, r := range s.runs {
			found := false
			for _, n := range next {
				if n == r {
					found = true
					break
				}
			}
			if !found {
				s.Store.Drop(r.Name())
			}
		}
		s.runs = next
	}
	s.runFile = s.runs[0]
	return nil
}

// runCursor reads one run sequentially with direct (always-counted) I/O.
type runCursor struct {
	file    *storage.HeapFile
	pageIdx int
	tuples  []storage.Tuple
	tupIdx  int
	cur     storage.Tuple
	done    bool
}

func (c *runCursor) advance() {
	for c.tupIdx >= len(c.tuples) {
		if c.pageIdx >= c.file.NumPages() {
			c.cur, c.done = nil, true
			return
		}
		c.tuples = c.file.ReadPageDirect(c.pageIdx)
		c.pageIdx++
		c.tupIdx = 0
	}
	c.cur = c.tuples[c.tupIdx]
	c.tupIdx++
}

// mergeRuns merges sorted runs into a single new run. On error the
// partial output file is dropped before returning.
func (s *Sort) mergeRuns(runs []*storage.HeapFile, tpp int) (*storage.HeapFile, error) {
	if len(runs) == 1 {
		return runs[0], nil
	}
	cursors := make([]*runCursor, len(runs))
	for i, r := range runs {
		cursors[i] = &runCursor{file: r}
		cursors[i].advance()
	}
	out := s.Store.CreateTemp(tpp)
	done := false
	// Drop the partial output on any failure — error return or a panic
	// unwinding through an append (Store.Drop is idempotent).
	defer func() {
		if !done {
			s.Store.Drop(out.Name())
		}
	}()
	for {
		if err := s.QC.Check(); err != nil {
			return nil, err
		}
		best := -1
		for i, c := range cursors {
			if c.done {
				continue
			}
			if best < 0 || s.less(c.cur, cursors[best].cur) {
				best = i
			}
		}
		if s.cmpErr != nil {
			return nil, s.cmpErr
		}
		if best < 0 {
			break
		}
		out.Append(cursors[best].cur)
		cursors[best].advance()
	}
	out.Seal()
	done = true
	return out, nil
}

// Next streams the sorted rows.
func (s *Sort) Next() (storage.Tuple, bool, error) {
	if s.runFile == nil {
		if s.pos >= len(s.mem) {
			return nil, false, nil
		}
		t := s.mem[s.pos]
		s.pos++
		return t, true, nil
	}
	for s.tupIdx >= len(s.tuples) {
		if s.pageIdx >= s.runFile.NumPages() {
			return nil, false, nil
		}
		s.tuples = s.runFile.ReadPageDirect(s.pageIdx)
		s.pageIdx++
		s.tupIdx = 0
	}
	t := s.tuples[s.tupIdx]
	s.tupIdx++
	return t, true, nil
}

// Close drops the remaining run files and returns any buffered-byte
// charge. It is safe to call before Open and more than once.
func (s *Sort) Close() error {
	for _, r := range s.runs {
		s.Store.Drop(r.Name())
	}
	s.runs, s.runFile, s.mem = nil, nil, nil
	s.QC.ReleaseBuffered(s.charged)
	s.charged = 0
	return nil
}

// Schema returns the child's schema; sorting does not change columns.
func (s *Sort) Schema() RowSchema { return s.Child.Schema() }
