package exec

import (
	"fmt"
	"strings"
)

// Describe renders a physical operator tree as an indented outline, the
// EXPLAIN view of a compiled plan.
func Describe(op Operator) string {
	var b strings.Builder
	describe(&b, op, "")
	return b.String()
}

func describe(b *strings.Builder, op Operator, indent string) {
	b.WriteString(indent)
	child := indent + "  "
	switch op := op.(type) {
	case *SeqScan:
		fmt.Fprintf(b, "SeqScan(%s, %d pages)\n", op.File.Name(), op.File.NumPages())
	case *IndexScan:
		fmt.Fprintf(b, "IndexScan(%s.%s %s %s)\n", op.Idx.Relation, op.Idx.Column, op.Op, op.Key)
	case *Filter:
		b.WriteString("Filter\n")
		describe(b, op.Child, child)
	case *Project:
		fmt.Fprintf(b, "Project(%s)\n", op.Sch)
		describe(b, op.Child, child)
	case *Distinct:
		b.WriteString("Distinct\n")
		describe(b, op.Child, child)
	case *Sort:
		dirs := ""
		if op.Desc != nil {
			dirs = " desc-mixed"
		}
		fmt.Fprintf(b, "Sort(keys=%v%s)\n", op.Keys, dirs)
		describe(b, op.Child, child)
	case *MergeJoin:
		kind := "MergeJoin"
		if op.Outer {
			kind = "OuterMergeJoin"
		}
		fmt.Fprintf(b, "%s(left#%d = right#%d)\n", kind, op.LeftKey, op.RightKey)
		describe(b, op.Left, child)
		describe(b, op.Right, child)
	case *NestedLoopJoin:
		kind := "NestedLoopJoin"
		if op.Outer {
			kind = "OuterNestedLoopJoin"
		}
		fmt.Fprintf(b, "%s(right=%s, %d pages)\n", kind, op.Right.Name(), op.Right.NumPages())
		describe(b, op.Left, child)
	case *GroupAgg:
		fmt.Fprintf(b, "GroupAgg(group=%v, out=[%s])\n", op.GroupCols, describeItems(op.Items))
		describe(b, op.Child, child)
	case *ExchangeMerge:
		fmt.Fprintf(b, "ExchangeMerge(workers=%d)\n", op.Source.NumWorkers())
		describeSource(b, op.Source, child)
	default:
		fmt.Fprintf(b, "%T\n", op)
	}
}

// describeSource renders the parallel fragment under an ExchangeMerge.
func describeSource(b *strings.Builder, src ParallelSource, indent string) {
	b.WriteString(indent)
	child := indent + "  "
	switch src := src.(type) {
	case *ParallelHashJoin:
		kind := "ParallelHashJoin"
		if src.Outer {
			kind = "OuterParallelHashJoin"
		}
		fmt.Fprintf(b, "%s(left#%d = right#%d, workers=%d)\n", kind, src.LeftKey, src.RightKey, src.NumWorkers())
		describe(b, src.Left, child)
		describe(b, src.Right, child)
	case *ParallelHashGroup:
		fmt.Fprintf(b, "ParallelHashGroup(group=%v, out=[%s], workers=%d)\n", src.GroupCols, describeItems(src.Items), src.NumWorkers())
		describe(b, src.Child, child)
	default:
		fmt.Fprintf(b, "%T\n", src)
	}
}

func describeItems(items []GroupItem) string {
	out := make([]string, len(items))
	for i, it := range items {
		if it.Agg == 0 {
			out[i] = it.Out.String()
		} else {
			out[i] = fmt.Sprintf("%s#%d", it.Agg, it.Col)
		}
	}
	return strings.Join(out, ", ")
}
