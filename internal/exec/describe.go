package exec

import (
	"fmt"
	"strings"
)

// Describe renders a physical operator tree as an indented outline, the
// EXPLAIN view of a compiled plan.
func Describe(op Operator) string {
	var b strings.Builder
	describe(&b, op, "")
	return b.String()
}

func describe(b *strings.Builder, op Operator, indent string) {
	b.WriteString(indent)
	child := indent + "  "
	switch op := op.(type) {
	case *SeqScan:
		fmt.Fprintf(b, "SeqScan(%s, %d pages)\n", op.File.Name(), op.File.NumPages())
	case *IndexScan:
		fmt.Fprintf(b, "IndexScan(%s.%s %s %s)\n", op.Idx.Relation, op.Idx.Column, op.Op, op.Key)
	case *Filter:
		b.WriteString("Filter\n")
		describe(b, op.Child, child)
	case *Project:
		fmt.Fprintf(b, "Project(%s)\n", op.Sch)
		describe(b, op.Child, child)
	case *Distinct:
		b.WriteString("Distinct\n")
		describe(b, op.Child, child)
	case *Sort:
		dirs := ""
		if op.Desc != nil {
			dirs = " desc-mixed"
		}
		fmt.Fprintf(b, "Sort(keys=%v%s)\n", op.Keys, dirs)
		describe(b, op.Child, child)
	case *MergeJoin:
		kind := "MergeJoin"
		if op.Outer {
			kind = "OuterMergeJoin"
		}
		fmt.Fprintf(b, "%s(left#%d = right#%d)\n", kind, op.LeftKey, op.RightKey)
		describe(b, op.Left, child)
		describe(b, op.Right, child)
	case *NestedLoopJoin:
		kind := "NestedLoopJoin"
		if op.Outer {
			kind = "OuterNestedLoopJoin"
		}
		fmt.Fprintf(b, "%s(right=%s, %d pages)\n", kind, op.Right.Name(), op.Right.NumPages())
		describe(b, op.Left, child)
	case *GroupAgg:
		items := make([]string, len(op.Items))
		for i, it := range op.Items {
			if it.Agg == 0 {
				items[i] = it.Out.String()
			} else {
				items[i] = fmt.Sprintf("%s#%d", it.Agg, it.Col)
			}
		}
		fmt.Fprintf(b, "GroupAgg(group=%v, out=[%s])\n", op.GroupCols, strings.Join(items, ", "))
		describe(b, op.Child, child)
	default:
		fmt.Fprintf(b, "%T\n", op)
	}
}
