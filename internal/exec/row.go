// Package exec implements query execution: the nested-iteration evaluator
// that System R used for nested queries (the paper's baseline and the
// semantic ground truth), and the physical operators — sequential scan,
// selection, projection, external (B−1)-way merge sort, sort-merge join
// with the outer variant of section 5.2, nested-loop join, grouped
// aggregation, duplicate elimination, and materialization — that execute
// transformed (canonical) queries.
//
// All table access goes through the storage layer's page accounting, so
// executing the same query under nested iteration and under a transformed
// plan yields directly comparable page-I/O measurements, the paper's
// performance metric.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// ColID names one column of a row flowing between operators: the table
// binding it came from and the column name. Derived columns (aggregate
// results) have an empty Table.
type ColID struct {
	Table  string
	Column string
}

func (c ColID) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// RowSchema maps positions of a tuple to column identities.
type RowSchema []ColID

// Index finds the position of the reference, matching case-insensitively.
// Unqualified references match on column name alone if unambiguous.
// It returns -1 when absent and -2 when ambiguous.
func (s RowSchema) Index(ref ast.ColumnRef) int {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Column, ref.Column) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.Table, ref.Table) {
			continue
		}
		if found >= 0 {
			return -2
		}
		found = i
	}
	return found
}

// Concat appends another schema (used by joins).
func (s RowSchema) Concat(o RowSchema) RowSchema {
	out := make(RowSchema, 0, len(s)+len(o))
	out = append(out, s...)
	return append(out, o...)
}

// Env is the binding environment for correlated evaluation: a chain of
// (schema, row) frames, innermost first. When the nested-iteration
// evaluator processes the inner block of Kiessling's query Q2, the current
// PARTS tuple sits in the parent frame, which is how SUPPLY.PNUM =
// PARTS.PNUM sees the outer row.
type Env struct {
	Schema RowSchema
	Row    storage.Tuple
	Parent *Env
}

// Bind pushes a new innermost frame.
func (e *Env) Bind(schema RowSchema, row storage.Tuple) *Env {
	return &Env{Schema: schema, Row: row, Parent: e}
}

// Lookup resolves a column reference against the innermost frame that
// defines it.
func (e *Env) Lookup(ref ast.ColumnRef) (value.Value, bool) {
	for f := e; f != nil; f = f.Parent {
		switch i := f.Schema.Index(ref); {
		case i >= 0:
			return f.Row[i], true
		case i == -2:
			return value.Null, false
		}
	}
	return value.Null, false
}

// errUnknownColumn builds the standard lookup failure. Resolution should
// prevent this; hitting it indicates a planner bug, so the message names
// the reference.
func errUnknownColumn(ref ast.ColumnRef) error {
	return fmt.Errorf("exec: no binding for column %s", ref)
}
