package exec_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

// Lifecycle regression tests for the parallel operators: early Close and
// mid-stream cancellation must tear down every distributor and worker
// goroutine, and cancellation must surface as the typed cause.

// settleGoroutines waits for the goroutine count to drop back to the
// baseline, failing the test if it does not within the deadline.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// parallelOps builds one instance of each parallel operator shape over
// shared input files, all governed by qc.
func parallelOps(s *storage.Store, left, right *storage.HeapFile, qc *qctx.QueryContext) map[string]func() exec.Operator {
	return map[string]func() exec.Operator{
		"ParallelHashJoin": func() exec.Operator {
			return &exec.ExchangeMerge{Source: &exec.ParallelHashJoin{
				Left: scanOf(left, "L"), Right: scanOf(right, "R"),
				LeftKey: 0, RightKey: 0, Outer: true, Workers: 4, QC: qc,
			}, QC: qc}
		},
		"ParallelHashGroup": func() exec.Operator {
			return &exec.ExchangeMerge{Source: &exec.ParallelHashGroup{
				Child:     scanOf(left, "L"),
				GroupCols: []int{0},
				Items: []exec.GroupItem{
					{Agg: value.AggNone, Col: 0, Out: exec.ColID{Column: "K"}},
					{Agg: value.AggCount, Col: 1, Out: exec.ColID{Column: "CNT"}},
				},
				Workers: 4, QC: qc,
			}, QC: qc}
		},
	}
}

// TestParallelEarlyCloseAllOperators extends the hash-join early-close
// test to every parallel operator: Close before Next, after a few Next
// calls, and twice in a row, with no goroutine left behind.
func TestParallelEarlyCloseAllOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := storage.NewStore(8)
	left := loadTuples(s, "L", 2, randTuples(rng, 4000, 16))
	right := loadTuples(s, "R", 2, randTuples(rng, 2000, 16))
	for name, mk := range parallelOps(s, left, right, nil) {
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			for round := range 12 {
				op := mk()
				if err := op.Open(); err != nil {
					t.Fatal(err)
				}
				if round%3 != 0 {
					for range 5 {
						if _, ok, err := op.Next(); err != nil {
							t.Fatal(err)
						} else if !ok {
							break
						}
					}
				}
				if err := op.Close(); err != nil {
					t.Fatal(err)
				}
				if err := op.Close(); err != nil { // idempotent
					t.Fatal(err)
				}
			}
			settleGoroutines(t, before)
		})
	}
}

// TestParallelMidStreamCancel cancels the query context while workers are
// mid-flight. Next must return the cancellation cause promptly (never
// hang), Close must succeed, and every goroutine must exit.
func TestParallelMidStreamCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := storage.NewStore(8)
	left := loadTuples(s, "L", 2, randTuples(rng, 6000, 16))
	right := loadTuples(s, "R", 2, randTuples(rng, 3000, 16))
	for _, name := range []string{"ParallelHashJoin", "ParallelHashGroup"} {
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			for round := range 8 {
				qc := qctx.New(qctx.Limits{})
				op := parallelOps(s, left, right, qc)[name]()
				if err := op.Open(); err != nil {
					qc.Finish()
					t.Fatal(err)
				}
				// Let a few rows through on even rounds so cancellation
				// lands both before and during the output stream.
				if round%2 == 0 {
					for range 3 {
						if _, ok, err := op.Next(); err != nil || !ok {
							break
						}
					}
				}
				qc.Cancel(qctx.ErrCanceled)
				sawCause := false
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						_, ok, err := op.Next()
						if err != nil {
							sawCause = errors.Is(err, qctx.ErrCanceled)
							return
						}
						if !ok {
							return
						}
					}
				}()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Fatal("Next hung after mid-stream cancellation")
				}
				if !sawCause {
					// Workers that already finished may have drained the
					// stream before noticing; that is fine only when the
					// stream actually ended. Any error must be the cause.
					t.Logf("round %d: stream ended before cancellation surfaced", round)
				}
				if err := op.Close(); err != nil {
					t.Fatal(err)
				}
				qc.Finish()
			}
			settleGoroutines(t, before)
		})
	}
}

// TestExchangeMergeCancelUnblocksNext pins the case the Done channel
// exists for: a consumer blocked in ExchangeMerge.Next with no producer
// progress (simulated by a child that blocks forever) must be woken by
// cancellation rather than hang.
func TestExchangeMergeCancelUnblocksNext(t *testing.T) {
	qc := qctx.New(qctx.Limits{})
	defer qc.Finish()
	block := make(chan struct{})
	defer close(block)
	op := &exec.ExchangeMerge{Source: &exec.ParallelHashJoin{
		Left:    &blockingOp{block: block},
		Right:   &blockingOp{block: block}, // build side blocks: Open never returns a row
		LeftKey: 0, RightKey: 0, Workers: 2, QC: qc,
	}, QC: qc}
	// Open builds the hash table from Right — run it in a goroutine since
	// the blocking child stalls it; cancellation must unblock via QC.Check
	// inside the build loop.
	errc := make(chan error, 1)
	go func() {
		if err := op.Open(); err != nil {
			errc <- err
			return
		}
		_, _, err := op.Next()
		op.Close()
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	qc.Cancel(qctx.ErrCanceled)
	select {
	case err := <-errc:
		if !errors.Is(err, qctx.ErrCanceled) {
			t.Errorf("got %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock the parallel pipeline")
	}
}

// blockingOp emits rows slowly forever until its channel closes.
type blockingOp struct {
	block <-chan struct{}
	n     int64
}

func (b *blockingOp) Open() error { return nil }
func (b *blockingOp) Next() (storage.Tuple, bool, error) {
	select {
	case <-b.block:
		return nil, false, fmt.Errorf("blockingOp released")
	case <-time.After(5 * time.Millisecond):
		b.n++
		return storage.Tuple{intv(b.n % 7), intv(b.n)}, true, nil
	}
}
func (b *blockingOp) Close() error { return nil }
func (b *blockingOp) Schema() exec.RowSchema {
	return exec.RowSchema{{Table: "B", Column: "K"}, {Table: "B", Column: "V"}}
}
