package exec

import (
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/value"
)

// IndexScan reads the tuples of a relation matching `column op key`
// through a secondary index: the covering index pages are charged on Open
// and base pages are fetched through the buffer pool in key order, so the
// output is sorted on the indexed column — a scan that can feed a merge
// join or a GROUP BY without an extra sort.
type IndexScan struct {
	Idx *index.Index
	Sch RowSchema
	Op  value.CompareOp
	Key value.Value

	cur *index.Cursor
}

// Open positions the cursor (charging index page reads).
func (s *IndexScan) Open() error {
	cur, ok := s.Idx.Lookup(s.Op, s.Key)
	if !ok {
		// The planner only builds IndexScan for supported operators;
		// an unsupported lookup yields an empty scan.
		s.cur = nil
		return nil
	}
	s.cur = cur
	return nil
}

// Next returns the next matching tuple in indexed-column order.
func (s *IndexScan) Next() (storage.Tuple, bool, error) {
	if s.cur == nil {
		return nil, false, nil
	}
	t, ok := s.cur.Next()
	if !ok {
		return nil, false, nil
	}
	return t, true, nil
}

// Close releases nothing; cursors hold no resources.
func (s *IndexScan) Close() error { return nil }

// Schema returns the relation's column bindings.
func (s *IndexScan) Schema() RowSchema { return s.Sch }
