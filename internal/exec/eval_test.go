package exec_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/workload"
)

// runNI parses, resolves, and evaluates a query by nested iteration.
func runNI(t *testing.T, db *workload.DB, src string) []storage.Tuple {
	t.Helper()
	qb, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	ev := exec.NewEvaluator(db.Cat, db.Store)
	defer ev.Close()
	rows, _, err := ev.EvalQuery(qb)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return rows
}

// rowStrings renders rows sorted, for order-insensitive comparison.
func rowStrings(rows []storage.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func wantRows(t *testing.T, got []storage.Tuple, want ...string) {
	t.Helper()
	sort.Strings(want)
	gs := rowStrings(got)
	if strings.Join(gs, " ") != strings.Join(want, " ") {
		t.Errorf("rows = %v, want %v", gs, want)
	}
}

func kiesslingDB(t *testing.T) *workload.DB {
	t.Helper()
	db := workload.NewDB(8)
	if err := workload.LoadKiessling(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func suppliersDB(t *testing.T) *workload.DB {
	t.Helper()
	db := workload.NewDB(8)
	if err := workload.LoadSuppliers(db); err != nil {
		t.Fatal(err)
	}
	return db
}

// Section 5.1: Kiessling's Q2 under nested iteration yields {10, 8}. This
// is the ground truth the COUNT bug violates.
func TestNIKiesslingQ2(t *testing.T) {
	db := kiesslingDB(t)
	wantRows(t, runNI(t, db, workload.KiesslingQ2), "(10)", "(8)")
}

// Section 5.2.1: the COUNT(*) variant has the same nested-iteration result
// on this instance.
func TestNIKiesslingQ2CountStar(t *testing.T) {
	db := kiesslingDB(t)
	wantRows(t, runNI(t, db, workload.KiesslingQ2CountStar), "(10)", "(8)")
}

// Section 5.3: query Q5 with the "<" correlated operator yields {8},
// "assuming MAX({}) = NULL".
func TestNIGanskiQ5(t *testing.T) {
	db := workload.NewDB(8)
	if err := workload.LoadNonEquality(db); err != nil {
		t.Fatal(err)
	}
	wantRows(t, runNI(t, db, workload.GanskiQ5), "(8)")
}

// Section 5.4: Q2 over the instance with duplicate outer join-column
// values yields {3, 10, 8}.
func TestNIDuplicatesQ2(t *testing.T) {
	db := workload.NewDB(8)
	if err := workload.LoadDuplicates(db); err != nil {
		t.Fatal(err)
	}
	wantRows(t, runNI(t, db, workload.KiesslingQ2), "(3)", "(10)", "(8)")
}

// The introduction's example 1: suppliers who supply part P2.
func TestNISuppliersOfP2(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')`)
	wantRows(t, rows, "('Smith')", "('Jones')", "('Blake')", "('Clark')")
}

// Example 2 (type-A): the inner block is an independent aggregate.
func TestNITypeA(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNO FROM SP
		WHERE PNO = (SELECT MAX(PNO) FROM P)`)
	wantRows(t, rows, "('S1')") // only S1 supplies P6
}

// Example 3 (type-N): uncorrelated IN.
func TestNITypeN(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNO FROM SP
		WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 15)`)
	// Parts heavier than 15: P2, P3, P6.
	wantRows(t, rows, "('S1')", "('S1')", "('S1')", "('S2')", "('S3')", "('S4')")
	// The paper's literal example (WEIGHT > 50) selects nothing.
	wantRows(t, runNI(t, db, `
		SELECT SNO FROM SP
		WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)`))
}

// Example 4 (type-J): correlated join predicate, no aggregate.
func TestNITypeJ(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNAME FROM S
		WHERE SNO IS IN (SELECT SNO FROM SP
		                 WHERE QTY > 100 AND SP.ORIGIN = S.CITY)`)
	wantRows(t, rows, "('Smith')", "('Jones')", "('Blake')", "('Clark')")
}

// Example 5 (type-JA): correlated aggregate — "names of parts which have
// the highest part number in the city from which they are supplied".
func TestNITypeJA(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT PNAME FROM P
		WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)`)
	wantRows(t, rows, "('Screw')", "('Cam')", "('Cog')")
}

func TestNIExists(t *testing.T) {
	db := kiesslingDB(t)
	rows := runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	wantRows(t, rows, "(3)", "(10)", "(8)")

	rows = runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE EXISTS (SELECT QUAN FROM SUPPLY
		              WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`)
	wantRows(t, rows, "(3)", "(10)")

	rows = runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY
		                  WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`)
	wantRows(t, rows, "(8)")
}

func TestNIQuantified(t *testing.T) {
	db := kiesslingDB(t)
	// QOH < ANY (quantities of that part's shipments).
	rows := runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	// PARTS(3,6): quans {4,2}: 6 < none. (10,1): {1,2}: 1<2 yes. (8,0): {5}: yes.
	wantRows(t, rows, "(10)", "(8)")

	rows = runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH > ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	// (3,6): 6 > 4 and 6 > 2: yes. (10,1): no. (8,0): no.
	wantRows(t, rows, "(3)")

	// ALL over an empty correlated set is TRUE.
	rows = runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH > ALL (SELECT QUAN FROM SUPPLY
		                 WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE > 1-1-99)`)
	wantRows(t, rows, "(3)", "(10)", "(8)")

	// ANY over an empty set is FALSE.
	rows = runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH < ANY (SELECT QUAN FROM SUPPLY
		                 WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE > 1-1-99)`)
	wantRows(t, rows)
}

func TestNINotIn(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNAME FROM S
		WHERE SNO NOT IN (SELECT SNO FROM SP WHERE PNO = 'P2')`)
	wantRows(t, rows, "('Adams')")
}

func TestNIGroupByQuery(t *testing.T) {
	db := kiesslingDB(t)
	rows := runNI(t, db, `
		SELECT PNUM, COUNT(SHIPDATE) AS CT FROM SUPPLY
		WHERE SHIPDATE < 1-1-80 GROUP BY PNUM`)
	// Kim's NEST-JA temp table for Q2 ([KIE 84:4]): {(3,2),(10,1)}.
	wantRows(t, rows, "(3, 2)", "(10, 1)")
}

func TestNIGlobalAggregateEmptyInput(t *testing.T) {
	db := kiesslingDB(t)
	rows := runNI(t, db, `SELECT COUNT(QUAN), MAX(QUAN) FROM SUPPLY WHERE QUAN > 1000`)
	wantRows(t, rows, "(0, NULL)")
}

func TestNIDistinct(t *testing.T) {
	db := workload.NewDB(8)
	if err := workload.LoadDuplicates(db); err != nil {
		t.Fatal(err)
	}
	rows := runNI(t, db, `SELECT DISTINCT PNUM FROM PARTS`)
	wantRows(t, rows, "(3)", "(10)", "(8)")
}

func TestNIMultiTableJoin(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNAME FROM S, SP
		WHERE S.SNO = SP.SNO AND SP.PNO = 'P3'`)
	wantRows(t, rows, "('Smith')")
}

func TestNIOrPredicate(t *testing.T) {
	db := suppliersDB(t)
	rows := runNI(t, db, `
		SELECT SNAME FROM S WHERE CITY = 'Athens' OR STATUS = 10`)
	wantRows(t, rows, "('Adams')", "('Jones')")
}

func TestNIScalarSubqueryMultiRowError(t *testing.T) {
	db := suppliersDB(t)
	qb := sqlparser.MustParse(`
		SELECT SNAME FROM S
		WHERE SNO = (SELECT SNO FROM SP WHERE SP.ORIGIN = S.CITY)`)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	ev := exec.NewEvaluator(db.Cat, db.Store)
	defer ev.Close()
	_, _, err := ev.EvalQuery(qb)
	if err == nil || !strings.Contains(err.Error(), "scalar subquery returned") {
		t.Errorf("expected multi-row scalar error, got %v", err)
	}
}

// Scalar subquery over an empty correlated set yields NULL, so the
// comparison is Unknown and the outer row is rejected — section 5.3's
// MAX({}) = NULL assumption.
func TestNIScalarEmptyIsNull(t *testing.T) {
	db := kiesslingDB(t)
	rows := runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE > 1-1-99)`)
	wantRows(t, rows)
}

// Nested iteration I/O: a correlated inner relation larger than the buffer
// pool is re-read once per qualifying outer tuple — the Pi + f(i)·Ni·Pj
// cost that motivated Kim's transformations.
func TestNICorrelatedIOCost(t *testing.T) {
	db := workload.NewDB(2) // B = 2: SUPPLY (2+ pages) cannot stay cached
	if err := db.Load(&schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM"}, {Name: "QOH"},
	}}, 1, tuples2(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(&schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM"}, {Name: "QUAN"},
	}}, 1, tuples2(4)); err != nil {
		t.Fatal(err)
	}
	db.Store.ResetStats()
	runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	// Pi = 10 pages read once; Pj = 4 pages re-read for each of the
	// Ni = 10 outer tuples: 10 + 10*4 = 50 reads.
	if got := db.Store.Stats().Reads; got != 50 {
		t.Errorf("nested iteration reads = %d, want 50", got)
	}
}

// Uncorrelated (type-N) inner blocks are evaluated once and materialized;
// re-evaluations scan the cached list, not the inner relation.
func TestNIUncorrelatedEvaluatedOnce(t *testing.T) {
	db := workload.NewDB(50)
	if err := db.Load(&schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM"}, {Name: "QOH"},
	}}, 1, tuples2(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(&schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM"}, {Name: "QUAN"},
	}}, 1, tuples2(6)); err != nil {
		t.Fatal(err)
	}
	db.Store.ResetStats()
	runNI(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH IN (SELECT QUAN FROM SUPPLY)`)
	// SUPPLY (6 pages) is read once to build the list X; X (6 pages at
	// 1-per-page... list tuples are 1-column so page capacity is the
	// default) is written and scanned per outer tuple through the pool,
	// where it stays cached. PARTS adds 10 reads.
	stats := db.Store.Stats()
	if stats.Reads > 10+6+2 {
		t.Errorf("uncorrelated IN cost too high: %+v", stats)
	}
}

// tuples2 builds n two-column tuples (k, k%3) for k = 0..n-1.
func tuples2(n int) []storage.Tuple {
	out := make([]storage.Tuple, n)
	for k := range n {
		out[k] = storage.Tuple{intv(int64(k)), intv(int64(k % 3))}
	}
	return out
}

func TestFreeRefsAndCorrelation(t *testing.T) {
	db := suppliersDB(t)
	qb := sqlparser.MustParse(`
		SELECT SNAME FROM S
		WHERE SNO IS IN (SELECT SNO FROM SP WHERE SP.ORIGIN = S.CITY)`)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	inner := ast.SubqueryOf(qb.Where[0])
	if !ast.IsCorrelated(inner) {
		t.Error("inner block must be correlated")
	}
	free := ast.FreeRefs(inner)
	if len(free) != 1 || free[0] != (ast.ColumnRef{Table: "S", Column: "CITY"}) {
		t.Errorf("FreeRefs = %v", free)
	}
	if ast.IsCorrelated(qb) {
		t.Error("whole query must not be correlated")
	}
}
