package exec

import (
	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

// GroupItem describes one output of a GroupAgg: either a grouping column
// passed through, or an aggregate over a child column.
type GroupItem struct {
	Agg value.AggFunc // AggNone for a grouping column
	Col int           // child column position; ignored for AggCountStar
	Out ColID         // output column identity
}

// GroupAgg implements GROUP BY aggregation over an input sorted on the
// grouping columns — the paper's temp tables are created with the GROUP BY
// column being the join/sort column, so no extra sort is needed (section
// 7.2). On a group-key change it emits the finished group.
//
// With no grouping columns it is a global aggregate, emitting exactly one
// row even over empty input (COUNT = 0, MAX = NULL) — the nested-iteration
// semantics that NEST-JA loses and NEST-JA2 restores.
type GroupAgg struct {
	Child Operator
	// GroupCols are child column positions forming the group key, in the
	// child's sort order.
	GroupCols []int
	Items     []GroupItem
	// QC, when set, charges the in-flight group's key and accumulator
	// state against the memory budget. The operator is streaming — one
	// group at a time — so the charge is small but honest.
	QC *qctx.QueryContext

	sch     RowSchema
	curKey  []value.Value
	accs    []*value.Accumulator
	charged int64
	started bool
	eof     bool
	emitted bool // at least one group emitted (for the global empty case)
}

// Open prepares the child.
func (g *GroupAgg) Open() error {
	if err := g.Child.Open(); err != nil {
		return err
	}
	g.sch = make(RowSchema, len(g.Items))
	for i, it := range g.Items {
		g.sch[i] = it.Out
	}
	g.curKey, g.accs = nil, nil
	g.charged = 0
	g.started, g.eof, g.emitted = false, false, false
	return nil
}

// chargeGroup swaps the budget charge from the finished group to the one
// keyed by key.
func (g *GroupAgg) chargeGroup(key []value.Value) error {
	g.QC.ReleaseBuffered(g.charged)
	g.charged = 0
	n := tupleBytes(storage.Tuple(key)) + 64*int64(len(g.Items))
	if err := g.QC.AddBuffered(n); err != nil {
		return err
	}
	g.charged = n
	return nil
}

func (g *GroupAgg) newAccs() []*value.Accumulator {
	accs := make([]*value.Accumulator, len(g.Items))
	for i, it := range g.Items {
		if it.Agg != value.AggNone {
			accs[i] = value.NewAccumulator(it.Agg)
		}
	}
	return accs
}

func (g *GroupAgg) accumulate(t storage.Tuple) error {
	for i, it := range g.Items {
		if it.Agg == value.AggNone {
			continue
		}
		v := value.NewInt(1)
		if it.Agg != value.AggCountStar {
			v = t[it.Col]
		}
		if err := g.accs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

func (g *GroupAgg) emit() storage.Tuple {
	g.emitted = true
	out := make(storage.Tuple, len(g.Items))
	for i, it := range g.Items {
		if it.Agg == value.AggNone {
			// A grouping column: constant within the group.
			for j, gc := range g.GroupCols {
				if gc == it.Col {
					out[i] = g.curKey[j]
					break
				}
			}
		} else {
			out[i] = g.accs[i].Result()
		}
	}
	return out
}

func (g *GroupAgg) keyOf(t storage.Tuple) []value.Value {
	key := make([]value.Value, len(g.GroupCols))
	for i, c := range g.GroupCols {
		key[i] = t[c]
	}
	return key
}

func sameKey(a, b []value.Value) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Next emits one group per call.
func (g *GroupAgg) Next() (storage.Tuple, bool, error) {
	if g.eof {
		return nil, false, nil
	}
	for {
		t, ok, err := g.Child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.eof = true
			if g.started {
				return g.emit(), true, nil
			}
			if len(g.GroupCols) == 0 && !g.emitted {
				// Global aggregate over empty input.
				g.curKey, g.accs = nil, g.newAccs()
				return g.emit(), true, nil
			}
			return nil, false, nil
		}
		key := g.keyOf(t)
		if !g.started {
			g.started = true
			g.curKey, g.accs = key, g.newAccs()
			if err := g.chargeGroup(key); err != nil {
				return nil, false, err
			}
			if err := g.accumulate(t); err != nil {
				return nil, false, err
			}
			continue
		}
		if sameKey(g.curKey, key) {
			if err := g.accumulate(t); err != nil {
				return nil, false, err
			}
			continue
		}
		// Group boundary: emit the finished group, start the new one.
		out := g.emit()
		g.curKey, g.accs = key, g.newAccs()
		if err := g.chargeGroup(key); err != nil {
			return nil, false, err
		}
		if err := g.accumulate(t); err != nil {
			return nil, false, err
		}
		return out, true, nil
	}
}

// Close releases the in-flight group's charge and closes the child.
func (g *GroupAgg) Close() error {
	g.QC.ReleaseBuffered(g.charged)
	g.charged = 0
	return g.Child.Close()
}

// Schema lists the configured output columns.
func (g *GroupAgg) Schema() RowSchema {
	if g.sch == nil {
		sch := make(RowSchema, len(g.Items))
		for i, it := range g.Items {
			sch[i] = it.Out
		}
		return sch
	}
	return g.sch
}
