package exec

import (
	"runtime"
	"sync"

	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file implements morsel-driven parallel execution. A distributor
// goroutine pulls the (single-threaded) child iterator and hash-partitions
// its tuples by join/group key into per-worker channels of "morsels" —
// batches of tuples that amortize channel synchronization. Workers do pure
// in-memory hash join / hash aggregation on their partition and push output
// morsels into a shared channel; ExchangeMerge drains that channel back
// into the pull-iterator model.
//
// Partitioning by key hash is what preserves the paper's COUNT-bug
// semantics under parallelism: every row of a given key lands on exactly
// one worker, so an outer-join pad (the NULL row that makes COUNT(col)
// yield 0 for an empty group) is emitted by exactly one worker, and a
// group's accumulators never need cross-worker merging.
//
// Output order is nondeterministic — workers interleave. Plan builders must
// treat exchange output as unsorted (sort above it for ORDER BY, GROUP BY
// on sorted streams, or merge joins).

// Morsel is a batch of tuples moved between parallel workers.
type Morsel []storage.Tuple

// MorselSize is the batch size used by distributors and workers.
const MorselSize = 256

// exchange carries worker output back to the consuming goroutine, plus the
// control channels that make early Close safe: closing stop unblocks any
// producer waiting to send, and wg tracks producer goroutines so Close can
// wait for all of them to exit before returning (no goroutine leaks).
type exchange struct {
	out  chan Morsel
	errc chan error
	stop chan struct{}
	wg   sync.WaitGroup
}

// send delivers a morsel to the consumer; it returns false when the
// consumer has closed the exchange and the producer should exit.
func (ex *exchange) send(m Morsel) bool {
	select {
	case ex.out <- m:
		return true
	case <-ex.stop:
		return false
	}
}

// fail records the first error; later errors are dropped.
func (ex *exchange) fail(err error) {
	select {
	case ex.errc <- err:
	default:
	}
}

// guard is the deferred panic handler of every producer goroutine: a
// panic in a distributor or worker (a storage fault, a bug) becomes a
// recorded exchange error instead of killing the process. Register it
// LAST among a goroutine's defers, so it runs before wg.Done and before
// a distributor closes its worker channels. A worker passes its input
// channel so the guard can drain it — otherwise the distributor could
// block forever on the dead worker's full channel.
func (ex *exchange) guard(in <-chan Morsel) {
	if v := recover(); v != nil {
		ex.fail(qctx.Recovered(v))
		if in != nil {
			for range in {
			}
		}
	}
}

// ParallelSource is a plan fragment that produces rows through worker
// goroutines. ExchangeMerge is its only consumer; run must register every
// goroutine it starts with ex.wg before returning.
type ParallelSource interface {
	Open() error
	Close() error
	Schema() RowSchema
	// NumWorkers reports the worker count (for sizing the exchange).
	NumWorkers() int
	run(ex *exchange)
}

// ExchangeMerge adapts a ParallelSource back into the pull-based Operator
// interface: Open starts the source's goroutines, Next drains their merged
// output one tuple at a time, Close stops and joins them. It is the
// single synchronization point between the parallel fragment below and the
// sequential plan above.
type ExchangeMerge struct {
	Source ParallelSource
	// QC, when set, wakes Next on cancellation even while all workers
	// are stalled (e.g. injected latency), and is checked per morsel.
	QC *qctx.QueryContext

	ex     *exchange
	cur    Morsel
	idx    int
	closed bool
}

// Open opens the source and starts its distributor and workers.
func (e *ExchangeMerge) Open() error {
	if err := e.Source.Open(); err != nil {
		return err
	}
	w := e.Source.NumWorkers()
	ex := &exchange{
		out:  make(chan Morsel, 2*w),
		errc: make(chan error, w+1),
		stop: make(chan struct{}),
	}
	e.ex, e.cur, e.idx, e.closed = ex, nil, 0, false
	e.Source.run(ex)
	go func() {
		ex.wg.Wait()
		close(ex.out)
	}()
	return nil
}

// Next returns the next tuple from any worker, in arrival order.
func (e *ExchangeMerge) Next() (storage.Tuple, bool, error) {
	if e.ex == nil {
		return nil, false, nil
	}
	for {
		if e.idx < len(e.cur) {
			t := e.cur[e.idx]
			e.idx++
			return t, true, nil
		}
		var m Morsel
		var ok bool
		select {
		case m, ok = <-e.ex.out:
		case <-e.QC.Done():
			return nil, false, e.QC.Err()
		}
		if !ok {
			// All producers exited; surface a recorded error, if any.
			select {
			case err := <-e.ex.errc:
				return nil, false, err
			default:
				return nil, false, nil
			}
		}
		e.cur, e.idx = m, 0
	}
}

// Close signals producers to stop, waits for every goroutine to exit, and
// closes the source. It is safe to call before the output is fully drained
// (e.g. a LIMIT-style consumer) and safe to call more than once.
func (e *ExchangeMerge) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.ex != nil {
		close(e.ex.stop)
		// Drain until the closer goroutine closes out (after wg.Wait), so
		// no producer is left blocked on a full channel.
		for range e.ex.out {
		}
		e.ex.wg.Wait()
		e.ex, e.cur = nil, nil
	}
	return e.Source.Close()
}

// Schema is the source's schema.
func (e *ExchangeMerge) Schema() RowSchema { return e.Source.Schema() }

// defaultWorkers resolves a configured worker count: non-positive means
// one worker per CPU.
func defaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ParallelHashJoin is an equality hash join executed by Workers goroutines.
// Open drains the Right (build) side sequentially, partitioning it by key
// hash; run starts a distributor that partitions the Left (probe) side the
// same way, so matching keys meet on the same worker. Semantics match
// MergeJoin: rows whose join key is NULL match nothing, and with Outer set
// every unmatched left row is emitted NULL-padded — the left outer join
// NEST-JA2's COUNT fix depends on. With NullEq set the key comparison is
// NULL-safe, matching MergeJoin.NullEq: NULL hashes like any other value
// (to a fixed bucket), so NULL build and probe keys still meet on one
// worker and join with each other.
type ParallelHashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey int
	Outer             bool
	NullEq            bool
	// Workers is the worker-goroutine count; <= 0 means runtime.NumCPU().
	Workers int
	// QC, when set, governs the build scan (cancellation + memory budget
	// for the buffered build side) and is checked by every goroutine.
	QC *qctx.QueryContext

	sch        RowSchema
	rightWidth int
	buildParts [][]storage.Tuple
	buildBytes int64 // bytes charged for buildParts, released in Close
}

// NumWorkers reports the resolved worker count.
func (j *ParallelHashJoin) NumWorkers() int { return defaultWorkers(j.Workers) }

// Open opens both children and builds the partitioned hash-table input
// from the right side. The build scan happens on the calling goroutine, so
// storage access stays sequential.
func (j *ParallelHashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		j.Left.Close()
		return err
	}
	j.sch = j.Left.Schema().Concat(j.Right.Schema())
	j.rightWidth = len(j.Right.Schema())
	w := j.NumWorkers()
	j.buildParts = make([][]storage.Tuple, w)
	for {
		t, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := j.QC.Check(); err != nil {
			return err
		}
		k := t[j.RightKey]
		if k.IsNull() && !j.NullEq {
			continue // NULL build keys can never match
		}
		n := tupleBytes(t)
		if err := j.QC.AddBuffered(n); err != nil {
			return err
		}
		j.buildBytes += n
		p := int(k.Hash() % uint64(w))
		j.buildParts[p] = append(j.buildParts[p], t)
	}
}

func (j *ParallelHashJoin) run(ex *exchange) {
	w := j.NumWorkers()
	inputs := make([]chan Morsel, w)
	for i := range inputs {
		inputs[i] = make(chan Morsel, 2)
	}
	ex.wg.Add(w + 1)
	go j.distribute(ex, inputs)
	for i := range w {
		go j.worker(ex, i, inputs[i])
	}
}

// distribute pulls the probe side and routes tuples to workers by key
// hash. NULL probe keys match nothing regardless of worker, so they are
// routed to worker 0, which pads them when Outer.
func (j *ParallelHashJoin) distribute(ex *exchange, inputs []chan Morsel) {
	defer ex.wg.Done()
	defer func() {
		for _, ch := range inputs {
			close(ch)
		}
	}()
	defer ex.guard(nil) // runs first: recover, then close inputs, then Done
	w := len(inputs)
	bufs := make([]Morsel, w)
	flush := func(i int) bool {
		if len(bufs[i]) == 0 {
			return true
		}
		m := bufs[i]
		bufs[i] = nil
		select {
		case inputs[i] <- m:
			return true
		case <-ex.stop:
			return false
		}
	}
	for {
		if err := j.QC.Check(); err != nil {
			ex.fail(err)
			return
		}
		t, ok, err := j.Left.Next()
		if err != nil {
			ex.fail(err)
			return
		}
		if !ok {
			break
		}
		p := 0
		if k := t[j.LeftKey]; j.NullEq || !k.IsNull() {
			p = int(k.Hash() % uint64(w))
		}
		bufs[p] = append(bufs[p], t)
		if len(bufs[p]) >= MorselSize {
			if !flush(p) {
				return
			}
		}
	}
	for i := range bufs {
		if !flush(i) {
			return
		}
	}
}

func (j *ParallelHashJoin) worker(ex *exchange, id int, in <-chan Morsel) {
	defer ex.wg.Done()
	defer ex.guard(in) // runs first: recover + drain, then Done
	table := make(map[uint64][]storage.Tuple)
	for _, r := range j.buildParts[id] {
		h := r[j.RightKey].Hash()
		table[h] = append(table[h], r)
	}
	var out Morsel
	emit := func(t storage.Tuple) bool {
		out = append(out, t)
		if len(out) >= MorselSize {
			m := out
			out = nil
			return ex.send(m)
		}
		return true
	}
	for m := range in {
		if err := j.QC.Check(); err != nil {
			ex.fail(err)
			for range in {
			}
			return
		}
		for _, l := range m {
			matched := false
			if k := l[j.LeftKey]; j.NullEq || !k.IsNull() {
				for _, r := range table[k.Hash()] {
					if !r[j.RightKey].Equal(k) {
						continue // hash collision
					}
					matched = true
					row := make(storage.Tuple, 0, len(l)+j.rightWidth)
					row = append(row, l...)
					row = append(row, r...)
					if !emit(row) {
						return
					}
				}
			}
			if !matched && j.Outer {
				row := make(storage.Tuple, 0, len(l)+j.rightWidth)
				row = append(row, l...)
				for range j.rightWidth {
					row = append(row, value.Null)
				}
				if !emit(row) {
					return
				}
			}
		}
	}
	if len(out) > 0 {
		ex.send(out)
	}
}

// Close releases the build partitions and closes both children.
func (j *ParallelHashJoin) Close() error {
	j.buildParts = nil
	j.QC.ReleaseBuffered(j.buildBytes)
	j.buildBytes = 0
	err := j.Left.Close()
	if err2 := j.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// Schema is the concatenation of the children's schemas.
func (j *ParallelHashJoin) Schema() RowSchema {
	if j.sch == nil {
		return j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.sch
}

// groupState is one group's accumulated state on one worker.
type groupState struct {
	key  []value.Value
	accs []*value.Accumulator
}

// ParallelHashGroup is GROUP BY aggregation executed by Workers goroutines
// over an unsorted input. The distributor routes every row of a group key
// to the same worker (hash partitioning on the full key), so each group is
// aggregated entirely on one worker and no accumulator merging — with its
// COUNT-vs-COUNT(*) and MAX({}) = NULL subtleties — is ever needed.
//
// With no grouping columns it is a global aggregate: all rows go to worker
// 0, which emits exactly one row even over empty input (COUNT = 0), the
// nested-iteration semantics NEST-JA2 must preserve.
type ParallelHashGroup struct {
	Child     Operator
	GroupCols []int
	Items     []GroupItem
	// Workers is the worker-goroutine count; <= 0 means runtime.NumCPU().
	Workers int
	// QC, when set, governs cancellation and charges buffered group state
	// against the memory budget.
	QC *qctx.QueryContext

	sch RowSchema
}

// NumWorkers reports the resolved worker count.
func (g *ParallelHashGroup) NumWorkers() int { return defaultWorkers(g.Workers) }

// Open opens the child.
func (g *ParallelHashGroup) Open() error {
	if err := g.Child.Open(); err != nil {
		return err
	}
	g.sch = make(RowSchema, len(g.Items))
	for i, it := range g.Items {
		g.sch[i] = it.Out
	}
	return nil
}

func (g *ParallelHashGroup) run(ex *exchange) {
	w := g.NumWorkers()
	inputs := make([]chan Morsel, w)
	for i := range inputs {
		inputs[i] = make(chan Morsel, 2)
	}
	ex.wg.Add(w + 1)
	go g.distribute(ex, inputs)
	for i := range w {
		go g.worker(ex, i, inputs[i])
	}
}

// keyHash combines the group-key column hashes. Values that are Equal
// (NULL with NULL, int with equal float) hash identically, so a group
// never splits across workers.
func (g *ParallelHashGroup) keyHash(t storage.Tuple) uint64 {
	var h uint64
	for _, c := range g.GroupCols {
		h = h*1099511628211 + t[c].Hash()
	}
	return h
}

func (g *ParallelHashGroup) distribute(ex *exchange, inputs []chan Morsel) {
	defer ex.wg.Done()
	defer func() {
		for _, ch := range inputs {
			close(ch)
		}
	}()
	defer ex.guard(nil) // runs first: recover, then close inputs, then Done
	w := len(inputs)
	bufs := make([]Morsel, w)
	flush := func(i int) bool {
		if len(bufs[i]) == 0 {
			return true
		}
		m := bufs[i]
		bufs[i] = nil
		select {
		case inputs[i] <- m:
			return true
		case <-ex.stop:
			return false
		}
	}
	for {
		if err := g.QC.Check(); err != nil {
			ex.fail(err)
			return
		}
		t, ok, err := g.Child.Next()
		if err != nil {
			ex.fail(err)
			return
		}
		if !ok {
			break
		}
		p := 0
		if len(g.GroupCols) > 0 {
			p = int(g.keyHash(t) % uint64(w))
		}
		bufs[p] = append(bufs[p], t)
		if len(bufs[p]) >= MorselSize {
			if !flush(p) {
				return
			}
		}
	}
	for i := range bufs {
		if !flush(i) {
			return
		}
	}
}

func (g *ParallelHashGroup) worker(ex *exchange, id int, in <-chan Morsel) {
	defer ex.wg.Done()
	var charged int64
	defer func() { g.QC.ReleaseBuffered(charged) }()
	defer ex.guard(in) // runs first: recover + drain, then release, then Done
	groups := make(map[uint64][]*groupState)
	var order []*groupState
	newState := func(key []value.Value) *groupState {
		accs := make([]*value.Accumulator, len(g.Items))
		for i, it := range g.Items {
			if it.Agg != value.AggNone {
				accs[i] = value.NewAccumulator(it.Agg)
			}
		}
		gs := &groupState{key: key, accs: accs}
		order = append(order, gs)
		return gs
	}
	// drainFail records err and keeps consuming input so the distributor
	// is never left blocked on this worker's full channel.
	drainFail := func(err error) {
		ex.fail(err)
		for range in {
		}
	}
	for m := range in {
		if err := g.QC.Check(); err != nil {
			drainFail(err)
			return
		}
		for _, t := range m {
			key := make([]value.Value, len(g.GroupCols))
			for i, c := range g.GroupCols {
				key[i] = t[c]
			}
			h := g.keyHash(t)
			var gs *groupState
			for _, cand := range groups[h] {
				if sameKey(cand.key, key) {
					gs = cand
					break
				}
			}
			if gs == nil {
				gs = newState(key)
				groups[h] = append(groups[h], gs)
				// Each live group buffers its key plus accumulator state.
				n := tupleBytes(storage.Tuple(key)) + 64*int64(len(g.Items))
				if err := g.QC.AddBuffered(n); err != nil {
					drainFail(err)
					return
				}
				charged += n
			}
			for i, it := range g.Items {
				if it.Agg == value.AggNone {
					continue
				}
				v := value.NewInt(1)
				if it.Agg != value.AggCountStar {
					v = t[it.Col]
				}
				if err := gs.accs[i].Add(v); err != nil {
					drainFail(err)
					return
				}
			}
		}
	}
	if id == 0 && len(g.GroupCols) == 0 && len(order) == 0 {
		// Global aggregate over empty input: one row, COUNT = 0.
		newState(nil)
	}
	var out Morsel
	for _, gs := range order {
		row := make(storage.Tuple, len(g.Items))
		for i, it := range g.Items {
			if it.Agg == value.AggNone {
				for jdx, gc := range g.GroupCols {
					if gc == it.Col {
						row[i] = gs.key[jdx]
						break
					}
				}
			} else {
				row[i] = gs.accs[i].Result()
			}
		}
		out = append(out, row)
		if len(out) >= MorselSize {
			if !ex.send(out) {
				return
			}
			out = nil
		}
	}
	if len(out) > 0 {
		ex.send(out)
	}
}

// Close closes the child.
func (g *ParallelHashGroup) Close() error { return g.Child.Close() }

// Schema lists the configured output columns.
func (g *ParallelHashGroup) Schema() RowSchema {
	if g.sch == nil {
		sch := make(RowSchema, len(g.Items))
		for i, it := range g.Items {
			sch[i] = it.Out
		}
		return sch
	}
	return g.sch
}
