package exec

import (
	"errors"
	"io"
	"runtime"
	"sync"

	"repro/internal/qctx"
	"repro/internal/spill"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file implements morsel-driven parallel execution. A distributor
// goroutine pulls the (single-threaded) child iterator and hash-partitions
// its tuples by join/group key into per-worker channels of "morsels" —
// batches of tuples that amortize channel synchronization. Workers do pure
// in-memory hash join / hash aggregation on their partition and push output
// morsels into a shared channel; ExchangeMerge drains that channel back
// into the pull-iterator model.
//
// Partitioning by key hash is what preserves the paper's COUNT-bug
// semantics under parallelism: every row of a given key lands on exactly
// one worker, so an outer-join pad (the NULL row that makes COUNT(col)
// yield 0 for an empty group) is emitted by exactly one worker, and a
// group's accumulators never need cross-worker merging.
//
// Output order is nondeterministic — workers interleave. Plan builders must
// treat exchange output as unsorted (sort above it for ORDER BY, GROUP BY
// on sorted streams, or merge joins).

// Morsel is a batch of tuples moved between parallel workers.
type Morsel []storage.Tuple

// MorselSize is the batch size used by distributors and workers.
const MorselSize = 256

// exchange carries worker output back to the consuming goroutine, plus the
// control channels that make early Close safe: closing stop unblocks any
// producer waiting to send, and wg tracks producer goroutines so Close can
// wait for all of them to exit before returning (no goroutine leaks).
type exchange struct {
	out  chan Morsel
	errc chan error
	stop chan struct{}
	wg   sync.WaitGroup
}

// send delivers a morsel to the consumer; it returns false when the
// consumer has closed the exchange and the producer should exit.
func (ex *exchange) send(m Morsel) bool {
	select {
	case ex.out <- m:
		return true
	case <-ex.stop:
		return false
	}
}

// fail records the first error; later errors are dropped.
func (ex *exchange) fail(err error) {
	select {
	case ex.errc <- err:
	default:
	}
}

// guard is the deferred panic handler of every producer goroutine: a
// panic in a distributor or worker (a storage fault, a bug) becomes a
// recorded exchange error instead of killing the process. Register it
// LAST among a goroutine's defers, so it runs before wg.Done and before
// a distributor closes its worker channels. A worker passes its input
// channel so the guard can drain it — otherwise the distributor could
// block forever on the dead worker's full channel.
func (ex *exchange) guard(in <-chan Morsel) {
	if v := recover(); v != nil {
		ex.fail(qctx.Recovered(v))
		if in != nil {
			for range in {
			}
		}
	}
}

// ParallelSource is a plan fragment that produces rows through worker
// goroutines. ExchangeMerge is its only consumer; run must register every
// goroutine it starts with ex.wg before returning.
type ParallelSource interface {
	Open() error
	Close() error
	Schema() RowSchema
	// NumWorkers reports the worker count (for sizing the exchange).
	NumWorkers() int
	run(ex *exchange)
}

// ExchangeMerge adapts a ParallelSource back into the pull-based Operator
// interface: Open starts the source's goroutines, Next drains their merged
// output one tuple at a time, Close stops and joins them. It is the
// single synchronization point between the parallel fragment below and the
// sequential plan above.
type ExchangeMerge struct {
	Source ParallelSource
	// QC, when set, wakes Next on cancellation even while all workers
	// are stalled (e.g. injected latency), and is checked per morsel.
	QC *qctx.QueryContext

	ex     *exchange
	cur    Morsel
	idx    int
	closed bool
}

// Open opens the source and starts its distributor and workers.
func (e *ExchangeMerge) Open() error {
	if err := e.Source.Open(); err != nil {
		return err
	}
	w := e.Source.NumWorkers()
	ex := &exchange{
		out:  make(chan Morsel, 2*w),
		errc: make(chan error, w+1),
		stop: make(chan struct{}),
	}
	e.ex, e.cur, e.idx, e.closed = ex, nil, 0, false
	e.Source.run(ex)
	go func() {
		ex.wg.Wait()
		close(ex.out)
	}()
	return nil
}

// Next returns the next tuple from any worker, in arrival order.
func (e *ExchangeMerge) Next() (storage.Tuple, bool, error) {
	if e.ex == nil {
		return nil, false, nil
	}
	for {
		if e.idx < len(e.cur) {
			t := e.cur[e.idx]
			e.idx++
			return t, true, nil
		}
		var m Morsel
		var ok bool
		select {
		case m, ok = <-e.ex.out:
		case <-e.QC.Done():
			return nil, false, e.QC.Err()
		}
		if !ok {
			// All producers exited; surface a recorded error, if any.
			select {
			case err := <-e.ex.errc:
				return nil, false, err
			default:
				return nil, false, nil
			}
		}
		e.cur, e.idx = m, 0
	}
}

// Close signals producers to stop, waits for every goroutine to exit, and
// closes the source. It is safe to call before the output is fully drained
// (e.g. a LIMIT-style consumer) and safe to call more than once.
func (e *ExchangeMerge) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.ex != nil {
		close(e.ex.stop)
		// Drain until the closer goroutine closes out (after wg.Wait), so
		// no producer is left blocked on a full channel.
		for range e.ex.out {
		}
		e.ex.wg.Wait()
		e.ex, e.cur = nil, nil
	}
	return e.Source.Close()
}

// Schema is the source's schema.
func (e *ExchangeMerge) Schema() RowSchema { return e.Source.Schema() }

// defaultWorkers resolves a configured worker count: non-positive means
// one worker per CPU.
func defaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ParallelHashJoin is an equality hash join executed by Workers goroutines.
// Open drains the Right (build) side sequentially, partitioning it by key
// hash; run starts a distributor that partitions the Left (probe) side the
// same way, so matching keys meet on the same worker. Semantics match
// MergeJoin: rows whose join key is NULL match nothing, and with Outer set
// every unmatched left row is emitted NULL-padded — the left outer join
// NEST-JA2's COUNT fix depends on. With NullEq set the key comparison is
// NULL-safe, matching MergeJoin.NullEq: NULL hashes like any other value
// (to a fixed bucket), so NULL build and probe keys still meet on one
// worker and join with each other.
type ParallelHashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey int
	Outer             bool
	NullEq            bool
	// Workers is the worker-goroutine count; <= 0 means runtime.NumCPU().
	Workers int
	// QC, when set, governs the build scan (cancellation + memory budget
	// for the buffered build side) and is checked by every goroutine.
	QC *qctx.QueryContext
	// Spill, when set, enables Grace-style degradation: a build partition
	// whose reservation is refused spills to a run file, its probe tuples
	// are diverted to a probe run, and the pair is joined in a post-pass
	// on the owning worker (recursively sub-partitioned if still too big).
	Spill *spill.Session

	sch        RowSchema
	rightWidth int
	buildParts [][]storage.Tuple
	buildBytes int64   // bytes charged for buildParts, released in Close
	partBytes  []int64 // per-partition share of buildBytes
	spilled    []bool  // partitions evicted to spill runs
	buildWr    []*spill.Writer
	buildRuns  []*spill.Run
	probeWr    []*spill.Writer // written only by the distributor goroutine
	probeRuns  []*spill.Run    // published before worker channels close
}

// NumWorkers reports the resolved worker count.
func (j *ParallelHashJoin) NumWorkers() int { return defaultWorkers(j.Workers) }

// Open opens both children and builds the partitioned hash-table input
// from the right side. The build scan happens on the calling goroutine, so
// storage access stays sequential.
func (j *ParallelHashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		j.Left.Close()
		return err
	}
	j.sch = j.Left.Schema().Concat(j.Right.Schema())
	j.rightWidth = len(j.Right.Schema())
	w := j.NumWorkers()
	j.buildParts = make([][]storage.Tuple, w)
	j.partBytes = make([]int64, w)
	j.spilled = make([]bool, w)
	j.buildWr = make([]*spill.Writer, w)
	j.buildRuns = make([]*spill.Run, w)
	j.probeWr = make([]*spill.Writer, w)
	j.probeRuns = make([]*spill.Run, w)
	for {
		t, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := j.QC.Check(); err != nil {
			return err
		}
		k := t[j.RightKey]
		if k.IsNull() && !j.NullEq {
			continue // NULL build keys can never match
		}
		n := tupleBytes(t)
		p := int(k.Hash() % uint64(w))
		if j.spilled[p] {
			if err := j.buildWr[p].Append(t); err != nil {
				return err
			}
			continue
		}
		if !j.Spill.Enabled() {
			if err := j.QC.AddBuffered(n); err != nil {
				return err
			}
			j.buildBytes += n
			j.partBytes[p] += n
			j.buildParts[p] = append(j.buildParts[p], t)
			continue
		}
		// Spill-capable path: reserve, and on refusal evict the largest
		// resident partition to disk until the reservation fits or this
		// tuple's own partition has spilled.
		for !j.spilled[p] {
			if j.QC.ReserveBuffered(n) {
				j.buildBytes += n
				j.partBytes[p] += n
				j.buildParts[p] = append(j.buildParts[p], t)
				break
			}
			if err := j.spillPartition(j.largestResident(p)); err != nil {
				return err
			}
		}
		if j.spilled[p] {
			if err := j.buildWr[p].Append(t); err != nil {
				return err
			}
		}
	}
	// Seal the build runs; probe runs are written during distribution.
	for p, wr := range j.buildWr {
		if wr == nil {
			continue
		}
		run, err := wr.Finish()
		j.buildWr[p] = nil
		if err != nil {
			return err
		}
		j.buildRuns[p] = run
	}
	return nil
}

// largestResident picks the spill victim: the resident partition holding
// the most charged bytes (fallback, the requesting partition itself).
func (j *ParallelHashJoin) largestResident(p int) int {
	best := p
	for i := range j.partBytes {
		if !j.spilled[i] && j.partBytes[i] > j.partBytes[best] {
			best = i
		}
	}
	return best
}

// spillPartition evicts one build partition: its tuples move to a fresh
// run file, its budget charge is released, and all later build and probe
// tuples for the partition divert to runs.
func (j *ParallelHashJoin) spillPartition(p int) error {
	wr, err := j.Spill.NewWriter()
	if err != nil {
		return err
	}
	j.buildWr[p] = wr
	j.spilled[p] = true
	for _, t := range j.buildParts[p] {
		if err := wr.Append(t); err != nil {
			return err
		}
	}
	j.buildParts[p] = nil
	j.QC.ReleaseBuffered(j.partBytes[p])
	j.buildBytes -= j.partBytes[p]
	j.partBytes[p] = 0
	return nil
}

func (j *ParallelHashJoin) run(ex *exchange) {
	w := j.NumWorkers()
	inputs := make([]chan Morsel, w)
	for i := range inputs {
		inputs[i] = make(chan Morsel, 2)
	}
	ex.wg.Add(w + 1)
	go j.distribute(ex, inputs)
	for i := range w {
		go j.worker(ex, i, inputs[i])
	}
}

// distribute pulls the probe side and routes tuples to workers by key
// hash. NULL probe keys match nothing regardless of worker, so they are
// routed to worker 0, which pads them when Outer.
func (j *ParallelHashJoin) distribute(ex *exchange, inputs []chan Morsel) {
	defer ex.wg.Done()
	defer func() {
		for _, ch := range inputs {
			close(ch)
		}
	}()
	defer ex.guard(nil) // runs first: recover, then close inputs, then Done
	w := len(inputs)
	bufs := make([]Morsel, w)
	flush := func(i int) bool {
		if len(bufs[i]) == 0 {
			return true
		}
		m := bufs[i]
		bufs[i] = nil
		select {
		case inputs[i] <- m:
			return true
		case <-ex.stop:
			return false
		}
	}
	for {
		if err := j.QC.Check(); err != nil {
			ex.fail(err)
			return
		}
		t, ok, err := j.Left.Next()
		if err != nil {
			ex.fail(err)
			return
		}
		if !ok {
			break
		}
		p := 0
		if k := t[j.LeftKey]; j.NullEq || !k.IsNull() {
			p = int(k.Hash() % uint64(w))
		}
		if j.spilled[p] {
			// The build side of this partition lives on disk; divert its
			// probe tuples to a probe run for the worker's post-pass.
			if j.probeWr[p] == nil {
				wr, err := j.Spill.NewWriter()
				if err != nil {
					ex.fail(err)
					return
				}
				j.probeWr[p] = wr
			}
			if err := j.probeWr[p].Append(t); err != nil {
				ex.fail(err)
				return
			}
			continue
		}
		bufs[p] = append(bufs[p], t)
		if len(bufs[p]) >= MorselSize {
			if !flush(p) {
				return
			}
		}
	}
	// Seal the probe runs before the deferred channel close publishes
	// them to the workers (channel close is the happens-before edge).
	for p, wr := range j.probeWr {
		if wr == nil {
			continue
		}
		run, err := wr.Finish()
		j.probeWr[p] = nil
		if err != nil {
			ex.fail(err)
			return
		}
		j.probeRuns[p] = run
	}
	for i := range bufs {
		if !flush(i) {
			return
		}
	}
}

func (j *ParallelHashJoin) worker(ex *exchange, id int, in <-chan Morsel) {
	defer ex.wg.Done()
	defer ex.guard(in) // runs first: recover + drain, then Done
	table := make(map[uint64][]storage.Tuple)
	for _, r := range j.buildParts[id] {
		h := r[j.RightKey].Hash()
		table[h] = append(table[h], r)
	}
	var out Morsel
	emit := func(t storage.Tuple) bool {
		out = append(out, t)
		if len(out) >= MorselSize {
			m := out
			out = nil
			return ex.send(m)
		}
		return true
	}
	for m := range in {
		if err := j.QC.Check(); err != nil {
			ex.fail(err)
			for range in {
			}
			return
		}
		for _, l := range m {
			matched := false
			if k := l[j.LeftKey]; j.NullEq || !k.IsNull() {
				for _, r := range table[k.Hash()] {
					if !r[j.RightKey].Equal(k) {
						continue // hash collision
					}
					matched = true
					row := make(storage.Tuple, 0, len(l)+j.rightWidth)
					row = append(row, l...)
					row = append(row, r...)
					if !emit(row) {
						return
					}
				}
			}
			if !matched && j.Outer {
				row := make(storage.Tuple, 0, len(l)+j.rightWidth)
				row = append(row, l...)
				for range j.rightWidth {
					row = append(row, value.Null)
				}
				if !emit(row) {
					return
				}
			}
		}
	}
	if j.spilled[id] {
		// Post-pass: join this worker's spilled (build run, probe run)
		// pair. The input channel is closed, so the distributor has
		// sealed and published the probe run.
		if err := j.joinSpilled(emit, j.buildRuns[id], j.probeRuns[id], 0); err != nil {
			if err != errExchangeStopped {
				ex.fail(err)
			}
			return
		}
		if j.buildRuns[id] != nil {
			j.buildRuns[id].Remove()
			j.buildRuns[id] = nil
		}
		if j.probeRuns[id] != nil {
			j.probeRuns[id].Remove()
			j.probeRuns[id] = nil
		}
	}
	if len(out) > 0 {
		ex.send(out)
	}
}

// errExchangeStopped aborts spilled post-pass processing when the
// consumer has closed the exchange; it is never surfaced to the query.
var errExchangeStopped = errors.New("exchange stopped")

// maxSpillDepth caps recursive sub-partitioning of spilled data. Splits
// past this depth cannot help (e.g. one giant duplicate key), so the
// data is hard-charged instead and the memory budget's typed error is
// allowed to surface.
const maxSpillDepth = 6

// rehashSpill re-salts a key hash for sub-partitioning at the given
// recursion depth, so each level cuts along an independent boundary.
func rehashSpill(h uint64, depth int) uint64 {
	h ^= uint64(depth+1) * 0x9E3779B97F4A7C15
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// reserveSpillDepth is the depth-aware reservation used while rebuilding
// spilled data: under SpillForced (which refuses every reservation by
// design) and at the recursion cap it hard-charges via AddBuffered, so
// forced runs terminate and over-budget data surfaces ErrMemoryBudget.
func reserveSpillDepth(qc *qctx.QueryContext, n int64, depth int) (bool, error) {
	if qc.SpillPolicy() == qctx.SpillForced || depth >= maxSpillDepth {
		return true, qc.AddBuffered(n)
	}
	return qc.ReserveBuffered(n), nil
}

// joinSpilled joins one spilled partition: it rebuilds the hash table
// from the build run under reservation, streams the probe run against
// it, and emits matches (padding unmatched probe rows when Outer). If
// the build side still cannot be reserved, both runs are sub-partitioned
// and joined recursively.
func (j *ParallelHashJoin) joinSpilled(emit func(storage.Tuple) bool, br, pr *spill.Run, depth int) error {
	if pr == nil || pr.Tuples == 0 {
		// No probe rows reached this partition: inner and left-outer
		// joins emit nothing (Outer pads probe rows, and there are none).
		return nil
	}
	var charged int64
	defer func() { j.QC.ReleaseBuffered(charged) }()
	table := make(map[uint64][]storage.Tuple)
	if br != nil && br.Tuples > 0 {
		rd, err := br.Open()
		if err != nil {
			return err
		}
		for {
			t, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rd.Close()
				return err
			}
			if err := j.QC.Check(); err != nil {
				rd.Close()
				return err
			}
			n := tupleBytes(t)
			ok, err := reserveSpillDepth(j.QC, n, depth)
			if err != nil {
				rd.Close()
				return err
			}
			if !ok {
				rd.Close()
				j.QC.ReleaseBuffered(charged)
				charged = 0
				return j.splitSpilled(emit, br, pr, depth)
			}
			charged += n
			h := t[j.RightKey].Hash()
			table[h] = append(table[h], t)
		}
		if err := rd.Close(); err != nil {
			return err
		}
	}
	prd, err := pr.Open()
	if err != nil {
		return err
	}
	defer prd.Close()
	for {
		l, err := prd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := j.QC.Check(); err != nil {
			return err
		}
		matched := false
		if k := l[j.LeftKey]; j.NullEq || !k.IsNull() {
			for _, r := range table[k.Hash()] {
				if !r[j.RightKey].Equal(k) {
					continue // hash collision
				}
				matched = true
				row := make(storage.Tuple, 0, len(l)+j.rightWidth)
				row = append(row, l...)
				row = append(row, r...)
				if !emit(row) {
					return errExchangeStopped
				}
			}
		}
		if !matched && j.Outer {
			row := make(storage.Tuple, 0, len(l)+j.rightWidth)
			row = append(row, l...)
			for range j.rightWidth {
				row = append(row, value.Null)
			}
			if !emit(row) {
				return errExchangeStopped
			}
		}
	}
}

// splitSpilled sub-partitions a too-large spilled pair by a re-salted
// hash and joins each sub-pair recursively.
func (j *ParallelHashJoin) splitSpilled(emit func(storage.Tuple) bool, br, pr *spill.Run, depth int) error {
	const fanout = 4
	var subB, subP [fanout]*spill.Run
	cleanup := func() {
		for i := range fanout {
			if subB[i] != nil {
				subB[i].Remove()
			}
			if subP[i] != nil {
				subP[i].Remove()
			}
		}
	}
	split := func(src *spill.Run, key int, dst *[fanout]*spill.Run) error {
		wrs := make([]*spill.Writer, fanout)
		abort := func() {
			for _, wr := range wrs {
				if wr != nil {
					wr.Abort()
				}
			}
		}
		rd, err := src.Open()
		if err != nil {
			return err
		}
		for {
			t, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rd.Close()
				abort()
				return err
			}
			if err := j.QC.Check(); err != nil {
				rd.Close()
				abort()
				return err
			}
			b := int(rehashSpill(t[key].Hash(), depth) % fanout)
			if wrs[b] == nil {
				if wrs[b], err = j.Spill.NewWriter(); err != nil {
					rd.Close()
					abort()
					return err
				}
			}
			if err := wrs[b].Append(t); err != nil {
				rd.Close()
				abort()
				return err
			}
		}
		if err := rd.Close(); err != nil {
			abort()
			return err
		}
		for i, wr := range wrs {
			if wr == nil {
				continue
			}
			run, err := wr.Finish()
			wrs[i] = nil
			if err != nil {
				abort()
				return err
			}
			dst[i] = run
		}
		return nil
	}
	if br != nil {
		if err := split(br, j.RightKey, &subB); err != nil {
			cleanup()
			return err
		}
	}
	if err := split(pr, j.LeftKey, &subP); err != nil {
		cleanup()
		return err
	}
	// The parents are fully rewritten into the children; drop them now so
	// peak disk stays proportional to one level of the recursion.
	if br != nil {
		br.Remove()
	}
	pr.Remove()
	for i := range fanout {
		if err := j.joinSpilled(emit, subB[i], subP[i], depth+1); err != nil {
			cleanup()
			return err
		}
		if subB[i] != nil {
			subB[i].Remove()
			subB[i] = nil
		}
		if subP[i] != nil {
			subP[i].Remove()
			subP[i] = nil
		}
	}
	return nil
}

// Close releases the build partitions, drops any spill state the workers
// did not consume (error and early-close paths), and closes both
// children. It runs after ExchangeMerge has joined every goroutine, so
// touching the writer and run slices is race-free.
func (j *ParallelHashJoin) Close() error {
	j.buildParts = nil
	j.QC.ReleaseBuffered(j.buildBytes)
	j.buildBytes = 0
	for i := range j.buildWr {
		if j.buildWr[i] != nil {
			j.buildWr[i].Abort()
			j.buildWr[i] = nil
		}
	}
	for i := range j.probeWr {
		if j.probeWr[i] != nil {
			j.probeWr[i].Abort()
			j.probeWr[i] = nil
		}
	}
	for i := range j.buildRuns {
		if j.buildRuns[i] != nil {
			j.buildRuns[i].Remove()
			j.buildRuns[i] = nil
		}
	}
	for i := range j.probeRuns {
		if j.probeRuns[i] != nil {
			j.probeRuns[i].Remove()
			j.probeRuns[i] = nil
		}
	}
	err := j.Left.Close()
	if err2 := j.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// Schema is the concatenation of the children's schemas.
func (j *ParallelHashJoin) Schema() RowSchema {
	if j.sch == nil {
		return j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.sch
}

// groupState is one group's accumulated state on one worker.
type groupState struct {
	key  []value.Value
	accs []*value.Accumulator
}

// ParallelHashGroup is GROUP BY aggregation executed by Workers goroutines
// over an unsorted input. The distributor routes every row of a group key
// to the same worker (hash partitioning on the full key), so each group is
// aggregated entirely on one worker and no accumulator merging — with its
// COUNT-vs-COUNT(*) and MAX({}) = NULL subtleties — is ever needed.
//
// With no grouping columns it is a global aggregate: all rows go to worker
// 0, which emits exactly one row even over empty input (COUNT = 0), the
// nested-iteration semantics NEST-JA2 must preserve.
type ParallelHashGroup struct {
	Child     Operator
	GroupCols []int
	Items     []GroupItem
	// Workers is the worker-goroutine count; <= 0 means runtime.NumCPU().
	Workers int
	// QC, when set, governs cancellation and charges buffered group state
	// against the memory budget.
	QC *qctx.QueryContext
	// Spill, when set, enables hybrid aggregation: once a worker's group
	// table cannot grow, rows for unseen keys are diverted to a spill run
	// (resident keys keep accumulating) and the run is aggregated in
	// recursive passes after the input drains.
	Spill *spill.Session

	sch RowSchema
}

// NumWorkers reports the resolved worker count.
func (g *ParallelHashGroup) NumWorkers() int { return defaultWorkers(g.Workers) }

// Open opens the child.
func (g *ParallelHashGroup) Open() error {
	if err := g.Child.Open(); err != nil {
		return err
	}
	g.sch = make(RowSchema, len(g.Items))
	for i, it := range g.Items {
		g.sch[i] = it.Out
	}
	return nil
}

func (g *ParallelHashGroup) run(ex *exchange) {
	w := g.NumWorkers()
	inputs := make([]chan Morsel, w)
	for i := range inputs {
		inputs[i] = make(chan Morsel, 2)
	}
	ex.wg.Add(w + 1)
	go g.distribute(ex, inputs)
	for i := range w {
		go g.worker(ex, i, inputs[i])
	}
}

// keyHash combines the group-key column hashes. Values that are Equal
// (NULL with NULL, int with equal float) hash identically, so a group
// never splits across workers.
func (g *ParallelHashGroup) keyHash(t storage.Tuple) uint64 {
	var h uint64
	for _, c := range g.GroupCols {
		h = h*1099511628211 + t[c].Hash()
	}
	return h
}

func (g *ParallelHashGroup) distribute(ex *exchange, inputs []chan Morsel) {
	defer ex.wg.Done()
	defer func() {
		for _, ch := range inputs {
			close(ch)
		}
	}()
	defer ex.guard(nil) // runs first: recover, then close inputs, then Done
	w := len(inputs)
	bufs := make([]Morsel, w)
	flush := func(i int) bool {
		if len(bufs[i]) == 0 {
			return true
		}
		m := bufs[i]
		bufs[i] = nil
		select {
		case inputs[i] <- m:
			return true
		case <-ex.stop:
			return false
		}
	}
	for {
		if err := g.QC.Check(); err != nil {
			ex.fail(err)
			return
		}
		t, ok, err := g.Child.Next()
		if err != nil {
			ex.fail(err)
			return
		}
		if !ok {
			break
		}
		p := 0
		if len(g.GroupCols) > 0 {
			p = int(g.keyHash(t) % uint64(w))
		}
		bufs[p] = append(bufs[p], t)
		if len(bufs[p]) >= MorselSize {
			if !flush(p) {
				return
			}
		}
	}
	for i := range bufs {
		if !flush(i) {
			return
		}
	}
}

// newGroupState allocates one group's accumulators and appends it to the
// emission order.
func (g *ParallelHashGroup) newGroupState(key []value.Value, order *[]*groupState) *groupState {
	accs := make([]*value.Accumulator, len(g.Items))
	for i, it := range g.Items {
		if it.Agg != value.AggNone {
			accs[i] = value.NewAccumulator(it.Agg)
		}
	}
	gs := &groupState{key: key, accs: accs}
	*order = append(*order, gs)
	return gs
}

// lookupGroup finds the state for t's key in groups, returning the key
// and hash for insertion when absent.
func (g *ParallelHashGroup) lookupGroup(groups map[uint64][]*groupState, t storage.Tuple) (*groupState, []value.Value, uint64) {
	key := make([]value.Value, len(g.GroupCols))
	for i, c := range g.GroupCols {
		key[i] = t[c]
	}
	h := g.keyHash(t)
	for _, cand := range groups[h] {
		if sameKey(cand.key, key) {
			return cand, key, h
		}
	}
	return nil, key, h
}

// accumulate folds one input row into its group's accumulators.
func (g *ParallelHashGroup) accumulate(gs *groupState, t storage.Tuple) error {
	for i, it := range g.Items {
		if it.Agg == value.AggNone {
			continue
		}
		v := value.NewInt(1)
		if it.Agg != value.AggCountStar {
			v = t[it.Col]
		}
		if err := gs.accs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

// groupRow renders one finished group as an output row.
func (g *ParallelHashGroup) groupRow(gs *groupState) storage.Tuple {
	row := make(storage.Tuple, len(g.Items))
	for i, it := range g.Items {
		if it.Agg == value.AggNone {
			for jdx, gc := range g.GroupCols {
				if gc == it.Col {
					row[i] = gs.key[jdx]
					break
				}
			}
		} else {
			row[i] = gs.accs[i].Result()
		}
	}
	return row
}

func (g *ParallelHashGroup) worker(ex *exchange, id int, in <-chan Morsel) {
	defer ex.wg.Done()
	var charged int64
	defer func() { g.QC.ReleaseBuffered(charged) }()
	var spillWr *spill.Writer
	defer func() {
		if spillWr != nil {
			spillWr.Abort()
		}
	}()
	defer ex.guard(in) // runs first: recover + drain, then cleanup, then Done
	groups := make(map[uint64][]*groupState)
	var order []*groupState
	// drainFail records err and keeps consuming input so the distributor
	// is never left blocked on this worker's full channel.
	drainFail := func(err error) {
		ex.fail(err)
		for range in {
		}
	}
	spilling := false
	for m := range in {
		if err := g.QC.Check(); err != nil {
			drainFail(err)
			return
		}
		for _, t := range m {
			gs, key, h := g.lookupGroup(groups, t)
			if gs == nil {
				if spilling {
					// Hybrid aggregation: no new keys once the table is
					// frozen; their raw rows go to the spill run. Rows for
					// resident keys keep accumulating in memory, so run
					// keys and resident keys stay disjoint.
					if err := spillWr.Append(t); err != nil {
						drainFail(err)
						return
					}
					continue
				}
				// Each live group buffers its key plus accumulator state.
				n := tupleBytes(storage.Tuple(key)) + 64*int64(len(g.Items))
				if g.Spill.Enabled() {
					if !g.QC.ReserveBuffered(n) {
						wr, err := g.Spill.NewWriter()
						if err != nil {
							drainFail(err)
							return
						}
						spillWr = wr
						spilling = true
						if err := spillWr.Append(t); err != nil {
							drainFail(err)
							return
						}
						continue
					}
				} else if err := g.QC.AddBuffered(n); err != nil {
					drainFail(err)
					return
				}
				charged += n
				gs = g.newGroupState(key, &order)
				groups[h] = append(groups[h], gs)
			}
			if err := g.accumulate(gs, t); err != nil {
				drainFail(err)
				return
			}
		}
	}
	if id == 0 && len(g.GroupCols) == 0 && len(order) == 0 && !spilling {
		// Global aggregate over empty input: one row, COUNT = 0.
		g.newGroupState(nil, &order)
	}
	var out Morsel
	emit := func(row storage.Tuple) bool {
		out = append(out, row)
		if len(out) >= MorselSize {
			m := out
			out = nil
			return ex.send(m)
		}
		return true
	}
	for _, gs := range order {
		if !emit(g.groupRow(gs)) {
			return
		}
	}
	if spilling {
		run, err := spillWr.Finish()
		spillWr = nil
		if err != nil {
			ex.fail(err)
			return
		}
		// The resident groups are emitted; release their charge so the
		// recursive passes get the budget back.
		g.QC.ReleaseBuffered(charged)
		charged = 0
		if err := g.groupSpilled(emit, run, 1); err != nil {
			if err != errExchangeStopped {
				ex.fail(err)
			}
			return
		}
	}
	if len(out) > 0 {
		ex.send(out)
	}
}

// groupSpilled aggregates one spill run of raw input rows: it admits as
// many groups as the budget allows, diverts rows of unadmitted keys to a
// next-level run, emits the finished groups, and recurses. The first key
// of every level is hard-charged (and forced/capped levels hard-charge
// everything), so each pass strictly shrinks the key set and the
// recursion terminates — or surfaces ErrMemoryBudget if the data truly
// cannot fit.
func (g *ParallelHashGroup) groupSpilled(emit func(storage.Tuple) bool, run *spill.Run, depth int) error {
	var charged int64
	defer func() { g.QC.ReleaseBuffered(charged) }()
	var nextWr *spill.Writer
	defer func() {
		if nextWr != nil {
			nextWr.Abort()
		}
	}()
	groups := make(map[uint64][]*groupState)
	var order []*groupState
	rd, err := run.Open()
	if err != nil {
		return err
	}
	for {
		t, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rd.Close()
			return err
		}
		if err := g.QC.Check(); err != nil {
			rd.Close()
			return err
		}
		gs, key, h := g.lookupGroup(groups, t)
		if gs == nil {
			n := tupleBytes(storage.Tuple(key)) + 64*int64(len(g.Items))
			ok, rerr := reserveSpillDepth(g.QC, n, depth)
			if rerr == nil && !ok && len(order) == 0 {
				// Progress guarantee: admit at least one group per level.
				ok, rerr = true, g.QC.AddBuffered(n)
			}
			if rerr != nil {
				rd.Close()
				return rerr
			}
			if !ok {
				if nextWr == nil {
					if nextWr, err = g.Spill.NewWriter(); err != nil {
						rd.Close()
						return err
					}
				}
				if err := nextWr.Append(t); err != nil {
					rd.Close()
					return err
				}
				continue
			}
			charged += n
			gs = g.newGroupState(key, &order)
			groups[h] = append(groups[h], gs)
		}
		if err := g.accumulate(gs, t); err != nil {
			rd.Close()
			return err
		}
	}
	if err := rd.Close(); err != nil {
		return err
	}
	run.Remove()
	for _, gs := range order {
		if !emit(g.groupRow(gs)) {
			return errExchangeStopped
		}
	}
	if nextWr == nil {
		return nil
	}
	next, err := nextWr.Finish()
	nextWr = nil
	if err != nil {
		return err
	}
	g.QC.ReleaseBuffered(charged)
	charged = 0
	return g.groupSpilled(emit, next, depth+1)
}

// Close closes the child.
func (g *ParallelHashGroup) Close() error { return g.Child.Close() }

// Schema lists the configured output columns.
func (g *ParallelHashGroup) Schema() RowSchema {
	if g.sch == nil {
		sch := make(RowSchema, len(g.Items))
		for i, it := range g.Items {
			sch[i] = it.Out
		}
		return sch
	}
	return g.sch
}
