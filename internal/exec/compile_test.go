package exec_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/value"
)

// Compilation of OR / AND / NOT trees over simple comparisons (used when a
// canonical query keeps a disjunction conjunct).
func TestCompileDisjunctionTrees(t *testing.T) {
	s := storage.NewStore(4)
	f := loadFile(s, "R", 4, [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	scan := scanOf(f, "R")
	k := ast.ColumnRef{Table: "R", Column: "K"}
	v := ast.ColumnRef{Table: "R", Column: "V"}
	eq := func(c ast.ColumnRef, n int64) ast.Predicate {
		return &ast.Comparison{Left: c, Op: value.OpEq, Right: ast.Const{Val: intv(n)}}
	}

	or := &ast.OrPred{Left: eq(k, 1), Right: eq(v, 30)}
	pred, err := exec.CompileConjuncts([]ast.Predicate{or}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got := drainInts(t, &exec.Filter{Child: scan, Pred: pred})
	if !eqRows(got, [][]int64{{1, 10}, {3, 30}}) {
		t.Errorf("OR filter = %v", got)
	}

	not := &ast.NotPred{P: eq(k, 2)}
	pred, err = exec.CompileConjuncts([]ast.Predicate{not}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got = drainInts(t, &exec.Filter{Child: scanOf(f, "R"), Pred: pred})
	if !eqRows(got, [][]int64{{1, 10}, {3, 30}}) {
		t.Errorf("NOT filter = %v", got)
	}

	andUnderOr := &ast.OrPred{
		Left:  &ast.AndPred{Left: eq(k, 1), Right: eq(v, 10)},
		Right: eq(k, 3),
	}
	pred, err = exec.CompileConjuncts([]ast.Predicate{andUnderOr}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got = drainInts(t, &exec.Filter{Child: scanOf(f, "R"), Pred: pred})
	if !eqRows(got, [][]int64{{1, 10}, {3, 30}}) {
		t.Errorf("AND-under-OR filter = %v", got)
	}
}

// NOT over a NULL comparison stays Unknown: the row is rejected both ways.
func TestCompileNotWithNulls(t *testing.T) {
	s := storage.NewStore(4)
	f, _ := s.Create("R", 4)
	f.Append(storage.Tuple{value.Null})
	f.Append(storage.Tuple{intv(1)})
	f.Seal()
	scan := exec.NewSeqScan(f, "R", []string{"K"})
	k := ast.ColumnRef{Table: "R", Column: "K"}
	eq1 := &ast.Comparison{Left: k, Op: value.OpEq, Right: ast.Const{Val: intv(1)}}

	pred, err := exec.CompileConjuncts([]ast.Predicate{eq1}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(&exec.Filter{Child: scan, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("K = 1 rows = %d", len(rows))
	}
	notEq, err := exec.CompileConjuncts([]ast.Predicate{&ast.NotPred{P: eq1}}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rows, err = exec.Drain(&exec.Filter{Child: exec.NewSeqScan(f, "R", []string{"K"}), Pred: notEq})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 { // NOT(NULL = 1) is Unknown, NOT(1 = 1) is False
		t.Errorf("NOT rows = %d, want 0", len(rows))
	}
}

// Type errors inside a compiled predicate surface at execution time.
func TestCompiledPredicateRuntimeError(t *testing.T) {
	s := storage.NewStore(4)
	f, _ := s.Create("R", 4)
	f.Append(storage.Tuple{value.NewString("x")})
	f.Seal()
	scan := exec.NewSeqScan(f, "R", []string{"K"})
	pred, err := exec.CompileConjuncts([]ast.Predicate{&ast.Comparison{
		Left:  ast.ColumnRef{Table: "R", Column: "K"},
		Op:    value.OpLt,
		Right: ast.Const{Val: intv(1)},
	}}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	_, err = exec.Drain(&exec.Filter{Child: scan, Pred: pred})
	if err == nil || !strings.Contains(err.Error(), "cannot compare") {
		t.Errorf("runtime type error = %v", err)
	}
}

// A cartesian nested-loops join (always-true predicate).
func TestNestedLoopJoinCartesian(t *testing.T) {
	s := storage.NewStore(4)
	l := loadFile(s, "L", 4, [][2]int64{{1, 0}, {2, 0}})
	r := loadFile(s, "R", 4, [][2]int64{{7, 0}})
	left := scanOf(l, "L")
	rightSch := exec.RowSchema{{Table: "R", Column: "K"}, {Table: "R", Column: "V"}}
	pred, err := exec.CompileConjuncts(nil, left.Schema().Concat(rightSch))
	if err != nil {
		t.Fatal(err)
	}
	j := &exec.NestedLoopJoin{Left: left, Right: r, RightSch: rightSch, Pred: pred}
	got := drainInts(t, j)
	if len(got) != 2 {
		t.Errorf("cartesian rows = %v", got)
	}
}

// Sort is reusable: Open resets all state, including after an external
// spill.
func TestSortReopen(t *testing.T) {
	s := storage.NewStore(3)
	rows := make([][2]int64, 9)
	for i := range rows {
		rows[i] = [2]int64{int64(8 - i), 0}
	}
	f := loadFile(s, "R", 1, rows)
	srt := &exec.Sort{Child: scanOf(f, "R"), Keys: []int{0}, Store: s, TuplesPerPage: 1}
	for round := range 2 {
		got := drainInts(t, srt)
		for i := range got {
			if got[i][0] != int64(i) {
				t.Fatalf("round %d: order broken: %v", round, got)
			}
		}
	}
}

// RowSchema.Index handles qualified, unqualified, ambiguous, and missing
// references.
func TestRowSchemaIndex(t *testing.T) {
	sch := exec.RowSchema{
		{Table: "A", Column: "X"},
		{Table: "B", Column: "X"},
		{Table: "B", Column: "Y"},
	}
	if got := sch.Index(ast.ColumnRef{Table: "A", Column: "X"}); got != 0 {
		t.Errorf("A.X = %d", got)
	}
	if got := sch.Index(ast.ColumnRef{Table: "b", Column: "y"}); got != 2 {
		t.Errorf("b.y = %d (case-insensitive)", got)
	}
	if got := sch.Index(ast.ColumnRef{Column: "Y"}); got != 2 {
		t.Errorf("unqualified Y = %d", got)
	}
	if got := sch.Index(ast.ColumnRef{Column: "X"}); got != -2 {
		t.Errorf("ambiguous X = %d, want -2", got)
	}
	if got := sch.Index(ast.ColumnRef{Column: "Z"}); got != -1 {
		t.Errorf("missing Z = %d, want -1", got)
	}
}

// Env lookup walks outward through frames; inner frames shadow outer ones.
func TestEnvShadowing(t *testing.T) {
	outer := (*exec.Env)(nil).Bind(
		exec.RowSchema{{Table: "S", Column: "CITY"}},
		storage.Tuple{value.NewString("outer")})
	inner := outer.Bind(
		exec.RowSchema{{Table: "P", Column: "CITY"}},
		storage.Tuple{value.NewString("inner")})
	v, ok := inner.Lookup(ast.ColumnRef{Table: "S", Column: "CITY"})
	if !ok || v.Str() != "outer" {
		t.Errorf("S.CITY = %v, %v", v, ok)
	}
	v, ok = inner.Lookup(ast.ColumnRef{Table: "P", Column: "CITY"})
	if !ok || v.Str() != "inner" {
		t.Errorf("P.CITY = %v, %v", v, ok)
	}
	if _, ok := inner.Lookup(ast.ColumnRef{Table: "Q", Column: "CITY"}); ok {
		t.Error("unknown binding resolved")
	}
	// Unqualified CITY binds to the innermost frame.
	v, ok = inner.Lookup(ast.ColumnRef{Column: "CITY"})
	if !ok || v.Str() != "inner" {
		t.Errorf("unqualified CITY = %v, %v", v, ok)
	}
}

func TestIndexScanOperator(t *testing.T) {
	s := storage.NewStore(8)
	f := loadFile(s, "R", 4, [][2]int64{{3, 0}, {1, 1}, {3, 2}, {2, 3}})
	idx := index.Build(s, f, "R", "K", 0)
	scan := &exec.IndexScan{
		Idx: idx,
		Sch: exec.RowSchema{{Table: "R", Column: "K"}, {Table: "R", Column: "V"}},
		Op:  value.OpGe,
		Key: intv(2),
	}
	got := drainInts(t, scan)
	// Key order: 2, then both 3s in stable position order.
	want := [][]int64{{2, 3}, {3, 0}, {3, 2}}
	if !eqRows(got, want) {
		t.Errorf("index scan = %v, want %v", got, want)
	}
	// Unsupported operator yields an empty scan rather than an error.
	scan = &exec.IndexScan{Idx: idx, Sch: scan.Sch, Op: value.OpNe, Key: intv(2)}
	if got := drainInts(t, scan); len(got) != 0 {
		t.Errorf("!= index scan = %v, want empty", got)
	}
}
