package storage

import (
	"errors"
	"testing"
	"time"

	"repro/internal/value"
)

func row(n int64) Tuple {
	return Tuple{value.NewInt(n), value.NewString("x"), value.NewInt(n * 2)}
}

// catchFault runs fn and returns the *FaultError it panics with (nil when
// fn completes without a fault).
func catchFault(t *testing.T, fn func()) (fe *FaultError) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		var ok bool
		if fe, ok = v.(*FaultError); !ok {
			t.Fatalf("panic value %v (%T) is not a *FaultError", v, v)
		}
	}()
	fn()
	return nil
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewStore(4)
		s.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: seed, ReadError: 0.3}))
		f, _ := s.Create("R", 2)
		s.SetFaultInjector(nil) // load fault-free
		for i := range 20 {
			f.Append(row(int64(i)))
		}
		f.Seal()
		s.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: seed, ReadError: 0.3}))
		var faults []int64
		for i := range f.NumPages() {
			if fe := catchFault(t, func() { f.ReadPage(i) }); fe != nil {
				faults = append(faults, int64(i))
			}
		}
		return faults
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("seed 42 at p=0.3 over 10 pages injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
}

func TestFaultErrorIdentity(t *testing.T) {
	fe := &FaultError{Op: "read", File: "R", N: 3}
	if !errors.Is(fe, ErrInjectedFault) {
		t.Error("FaultError must wrap ErrInjectedFault")
	}
}

func TestReadFaultPanicsAndDisarms(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 2)
	for i := range 4 {
		f.Append(row(int64(i)))
	}
	f.Seal()
	inj := NewFaultInjector(FaultConfig{Seed: 1, ReadError: 1.0})
	s.SetFaultInjector(inj)
	fe := catchFault(t, func() { f.ReadPage(0) })
	if fe == nil {
		t.Fatal("p=1.0 read must fault")
	}
	if fe.Op != "read" || fe.File != "R" {
		t.Errorf("fault = %+v", fe)
	}
	if inj.Injected() != 1 {
		t.Errorf("Injected = %d, want 1", inj.Injected())
	}
	// Disarming restores normal service and the store is undamaged.
	s.SetFaultInjector(nil)
	if got := len(f.ReadPage(0)); got != 2 {
		t.Errorf("page 0 has %d tuples after disarm, want 2", got)
	}
}

func TestTornWriteTruncatesAndPanics(t *testing.T) {
	s := NewStore(4)
	tmp := s.CreateTemp(4)
	s.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, WriteTear: 1.0}))
	fe := catchFault(t, func() { tmp.Append(row(7)) })
	if fe == nil {
		t.Fatal("p=1.0 append to a temp must tear")
	}
	if fe.Op != "torn-write" {
		t.Errorf("Op = %q", fe.Op)
	}
	s.SetFaultInjector(nil)
	// The torn tuple is on the page, truncated — exactly the corruption a
	// failed materialization must clean up by dropping the temp.
	pg := tmp.ReadPage(0)
	if len(pg) != 1 || len(pg[0]) >= len(row(7)) {
		t.Errorf("torn page = %v, want one truncated tuple", pg)
	}
	if s.TempCount() != 1 {
		t.Fatalf("TempCount = %d, want 1", s.TempCount())
	}
	s.Drop(tmp.Name())
	if s.TempCount() != 0 {
		t.Fatalf("TempCount after drop = %d, want 0", s.TempCount())
	}
}

func TestTearPrefixes(t *testing.T) {
	s := NewStore(4)
	base, _ := s.Create("PARTS", 4)
	temp, _ := s.Create("TEMP1", 4)
	s.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, WriteTear: 1.0, TearPrefixes: []string{"$tmp", "TEMP"}}))
	// Base tables never tear, whatever the config, so fault-free reruns
	// see uncorrupted data.
	if fe := catchFault(t, func() { base.Append(row(1)) }); fe != nil {
		t.Fatalf("base table tore: %v", fe)
	}
	if fe := catchFault(t, func() { temp.Append(row(1)) }); fe == nil {
		t.Fatal("TEMP1 must be tearable with the TEMP prefix configured")
	}
}

func TestMaxFaultsCap(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 1)
	for i := range 50 {
		f.Append(row(int64(i)))
	}
	f.Seal()
	inj := NewFaultInjector(FaultConfig{Seed: 1, ReadError: 1.0, MaxFaults: 3})
	s.SetFaultInjector(inj)
	faults := 0
	for i := range f.NumPages() {
		if catchFault(t, func() { f.ReadPage(i) }) != nil {
			faults++
		}
	}
	if faults != 3 {
		t.Errorf("injected %d faults, want exactly MaxFaults=3", faults)
	}
	if inj.Injected() != 3 {
		t.Errorf("Injected = %d, want 3", inj.Injected())
	}
}

func TestLatencyInjection(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 2)
	f.Append(row(1))
	f.Seal()
	s.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, Latency: 1.0, LatencyDur: 20 * time.Millisecond}))
	start := time.Now()
	f.ReadPage(0)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("read took %v, want >= 20ms of injected latency", d)
	}
}
