package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func intTuple(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = value.NewInt(v)
	}
	return t
}

// fill appends n single-column tuples 0..n-1 and seals the file.
func fill(f *HeapFile, n int) {
	for i := range n {
		f.Append(intTuple(int64(i)))
	}
	f.Seal()
}

func TestHeapFilePaging(t *testing.T) {
	s := NewStore(4)
	f, err := s.Create("R", 10)
	if err != nil {
		t.Fatal(err)
	}
	fill(f, 25)
	if f.NumTuples() != 25 {
		t.Errorf("NumTuples = %d", f.NumTuples())
	}
	if f.NumPages() != 3 { // 10 + 10 + 5
		t.Errorf("NumPages = %d", f.NumPages())
	}
	if f.TuplesPerPage() != 10 {
		t.Errorf("TuplesPerPage = %d", f.TuplesPerPage())
	}
	if got := s.Stats().Writes; got != 3 {
		t.Errorf("Writes = %d, want 3 (two full pages + sealed partial)", got)
	}
}

func TestSealIdempotentAndExact(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 5)
	fill(f, 10) // exactly two full pages: seal must not double-count
	if got := s.Stats().Writes; got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
	f.Seal()
	f.Seal()
	if got := s.Stats().Writes; got != 2 {
		t.Errorf("Writes after re-seal = %d, want 2", got)
	}
}

func TestAppendAfterSealRewritesPartialPage(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 5)
	fill(f, 1) // partial page sealed: 1 write
	if got := s.Stats().Writes; got != 1 {
		t.Fatalf("Writes = %d, want 1", got)
	}
	// Reopening and resealing rewrites the partial page.
	f.Append(intTuple(9))
	f.Seal()
	if got := s.Stats().Writes; got != 2 {
		t.Errorf("Writes after reopen = %d, want 2 (partial page rewritten)", got)
	}
	if f.NumTuples() != 2 || f.NumPages() != 1 {
		t.Errorf("file shape after reopen: %d tuples, %d pages", f.NumTuples(), f.NumPages())
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 3)
	fill(f, 10)
	var got []int64
	f.Scan(func(tu Tuple) bool {
		got = append(got, tu[0].Int())
		return tu[0].Int() < 6
	})
	if len(got) != 7 { // values 0..6; fn returns false on 6, stopping the scan
		t.Errorf("scanned %d tuples: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Errorf("out of order at %d: %v", i, got)
		}
	}
}

func TestBufferPoolCachingAndLRU(t *testing.T) {
	s := NewStore(2) // B = 2 pages
	f, _ := s.Create("R", 1)
	fill(f, 3) // three pages: 0, 1, 2
	s.ResetStats()

	f.ReadPage(0) // miss
	f.ReadPage(1) // miss
	f.ReadPage(0) // hit
	if got := s.Stats().Reads; got != 2 {
		t.Fatalf("Reads = %d, want 2", got)
	}
	f.ReadPage(2) // miss, evicts LRU = page 1 (0 was touched more recently)
	f.ReadPage(0) // hit
	f.ReadPage(1) // miss again
	if got := s.Stats().Reads; got != 4 {
		t.Errorf("Reads = %d, want 4", got)
	}
}

func TestBufferPoolFitsWholeFile(t *testing.T) {
	// An inner relation that fits in B pages is read once no matter how
	// many times it is re-scanned — System R's favorable case.
	s := NewStore(10)
	f, _ := s.Create("INNER", 2)
	fill(f, 10) // 5 pages < B
	s.ResetStats()
	for range 100 {
		f.Scan(func(Tuple) bool { return true })
	}
	if got := s.Stats().Reads; got != 5 {
		t.Errorf("Reads = %d, want 5 (fully cached)", got)
	}
}

func TestBufferPoolThrashing(t *testing.T) {
	// An inner relation larger than B pays a full re-read per scan under
	// sequential LRU — the worst case of the paper's analyses.
	s := NewStore(3)
	f, _ := s.Create("INNER", 1)
	fill(f, 6) // 6 pages > B = 3
	s.ResetStats()
	const scans = 10
	for range scans {
		f.Scan(func(Tuple) bool { return true })
	}
	if got := s.Stats().Reads; got != scans*6 {
		t.Errorf("Reads = %d, want %d (thrash)", got, scans*6)
	}
}

func TestReadPageDirectAlwaysCounts(t *testing.T) {
	s := NewStore(100)
	f, _ := s.Create("R", 2)
	fill(f, 4)
	s.ResetStats()
	f.ReadPageDirect(0)
	f.ReadPageDirect(0)
	f.ReadPageDirect(1)
	if got := s.Stats().Reads; got != 3 {
		t.Errorf("direct Reads = %d, want 3", got)
	}
}

func TestZeroCapacityPoolCountsEverything(t *testing.T) {
	s := NewStore(0)
	f, _ := s.Create("R", 2)
	fill(f, 4)
	s.ResetStats()
	f.ReadPage(0)
	f.ReadPage(0)
	if got := s.Stats().Reads; got != 2 {
		t.Errorf("Reads = %d, want 2 with no buffer", got)
	}
}

func TestReadPageOutOfRange(t *testing.T) {
	s := NewStore(2)
	f, _ := s.Create("R", 2)
	fill(f, 2)
	for _, fn := range []func(){
		func() { f.ReadPage(-1) },
		func() { f.ReadPage(1) },
		func() { f.ReadPageDirect(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range page")
				}
			}()
			fn()
		}()
	}
}

func TestStoreCreateLookupDrop(t *testing.T) {
	s := NewStore(2)
	if _, err := s.Create("R", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("R", 2); err == nil {
		t.Error("duplicate Create must fail")
	}
	if _, ok := s.Lookup("R"); !ok {
		t.Error("Lookup failed")
	}
	s.Drop("R")
	if _, ok := s.Lookup("R"); ok {
		t.Error("Drop did not remove file")
	}
	s.Drop("R") // idempotent
}

func TestDropInvalidatesBufferFrames(t *testing.T) {
	s := NewStore(2)
	f, _ := s.Create("R", 1)
	fill(f, 2)
	g, _ := s.Create("G", 1)
	fill(g, 1)
	s.ResetStats()
	f.ReadPage(0)
	f.ReadPage(1) // pool now full with R's pages
	s.Drop("R")
	g.ReadPage(0) // must be a miss, then resident
	g.ReadPage(0) // hit
	if got := s.Stats().Reads; got != 3 {
		t.Errorf("Reads = %d, want 3", got)
	}
}

func TestCreateTempUnique(t *testing.T) {
	s := NewStore(2)
	a := s.CreateTemp(0)
	b := s.CreateTemp(0)
	if a.Name() == b.Name() {
		t.Errorf("temp names collide: %s", a.Name())
	}
	if a.TuplesPerPage() != DefaultTuplesPerPage {
		t.Errorf("default capacity = %d", a.TuplesPerPage())
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 4}
	b := IOStats{Reads: 3, Writes: 1}
	d := a.Sub(b)
	if d.Reads != 7 || d.Writes != 3 || d.Total() != 10 {
		t.Errorf("Sub = %+v", d)
	}
	want := "14 page I/Os (10 reads + 4 writes)"
	if a.String() != want {
		t.Errorf("String = %q", a.String())
	}
}

func TestTupleCloneAndString(t *testing.T) {
	tu := intTuple(1, 2)
	c := tu.Clone()
	c[0] = value.NewInt(9)
	if tu[0].Int() != 1 {
		t.Error("Clone shares backing array")
	}
	if got := tu.String(); got != "(1, 2)" {
		t.Errorf("String = %q", got)
	}
}

// Property: for any page capacity and tuple count, NumPages is
// ceil(n/capacity), total writes after Seal equals NumPages, and scanning
// returns the tuples in insertion order.
func TestHeapFileProperties(t *testing.T) {
	f := func(cap8 uint8, n16 uint16) bool {
		capacity := int(cap8%20) + 1
		n := int(n16 % 500)
		s := NewStore(4)
		hf, err := s.Create("R", capacity)
		if err != nil {
			return false
		}
		fill(hf, n)
		wantPages := (n + capacity - 1) / capacity
		if hf.NumPages() != wantPages || hf.NumTuples() != n {
			return false
		}
		if s.Stats().Writes != int64(wantPages) {
			return false
		}
		i := 0
		ok := true
		hf.Scan(func(tu Tuple) bool {
			if tu[0].Int() != int64(i) {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with pool capacity >= file pages, repeated scans cost exactly
// NumPages reads; with capacity < pages, repeated sequential scans cost
// scans*NumPages reads.
func TestBufferPoolProperties(t *testing.T) {
	f := func(pages8, cap8 uint8) bool {
		pages := int(pages8%10) + 1
		capacity := int(cap8%12) + 1
		s := NewStore(capacity)
		hf, _ := s.Create("R", 1)
		fill(hf, pages)
		s.ResetStats()
		const scans = 4
		for range scans {
			hf.Scan(func(Tuple) bool { return true })
		}
		got := s.Stats().Reads
		if capacity >= pages {
			return got == int64(pages)
		}
		return got == int64(scans*pages)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func ExampleIOStats() {
	s := NewStore(2)
	f, _ := s.Create("R", 1)
	f.Append(Tuple{value.NewInt(1)})
	f.Seal()
	f.ReadPage(0)
	fmt.Println(s.Stats())
	// Output: 2 page I/Os (1 reads + 1 writes)
}

func TestRewriteDeleteAndUpdate(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 3)
	fill(f, 10) // values 0..9
	s.ResetStats()

	// Delete odd values.
	n := f.Rewrite(func(t Tuple) (bool, Tuple) {
		return t[0].Int()%2 == 0, nil
	})
	if n != 5 {
		t.Errorf("deleted = %d, want 5", n)
	}
	if f.NumTuples() != 5 || f.NumPages() != 2 {
		t.Errorf("after delete: %d tuples, %d pages", f.NumTuples(), f.NumPages())
	}
	// Reads: 4 pages in; writes: 2 pages out.
	st := s.Stats()
	if st.Reads != 4 || st.Writes != 2 {
		t.Errorf("rewrite I/O = %+v, want 4 reads + 2 writes", st)
	}

	// Update: double every remaining value.
	n = f.Rewrite(func(t Tuple) (bool, Tuple) {
		return true, Tuple{value.NewInt(t[0].Int() * 2)}
	})
	if n != 5 {
		t.Errorf("updated = %d, want 5", n)
	}
	var got []int64
	f.Scan(func(t Tuple) bool {
		got = append(got, t[0].Int())
		return true
	})
	want := []int64{0, 4, 8, 12, 16}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("after update = %v, want %v", got, want)
		}
	}
}

func TestRewriteInvalidatesBufferFrames(t *testing.T) {
	s := NewStore(4)
	f, _ := s.Create("R", 2)
	fill(f, 4)
	f.Scan(func(Tuple) bool { return true }) // warm the pool
	f.Rewrite(func(t Tuple) (bool, Tuple) { return t[0].Int() != 0, nil })
	s.ResetStats()
	f.Scan(func(Tuple) bool { return true })
	// Every page is a miss after the rewrite dropped the old frames.
	if got := s.Stats().Reads; got != int64(f.NumPages()) {
		t.Errorf("post-rewrite scan reads = %d, want %d", got, f.NumPages())
	}
}

func TestChargeReads(t *testing.T) {
	s := NewStore(2)
	s.ChargeReads(7)
	if s.Stats().Reads != 7 {
		t.Errorf("ChargeReads = %+v", s.Stats())
	}
}

func TestRewriteEmptyFile(t *testing.T) {
	s := NewStore(2)
	f, _ := s.Create("R", 2)
	f.Seal()
	if n := f.Rewrite(func(Tuple) (bool, Tuple) { return true, nil }); n != 0 {
		t.Errorf("rewrite of empty file affected %d", n)
	}
}
