package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedFault is the sentinel all injected storage faults wrap, so
// the chaos harness can recognize its own faults with errors.Is after
// they have crossed panic containment and the engine boundary.
var ErrInjectedFault = errors.New("injected storage fault")

// FaultError is the panic payload of an injected fault. The storage API
// has no error returns — page reads and appends are infallible on the
// in-memory substrate — so faults surface as panics, exactly the shape a
// corrupted page or failed device read would take in this engine; the
// lifecycle layer's containment must turn them into per-query errors.
type FaultError struct {
	Op   string // "read", "torn-write"
	File string // heap file name
	N    int64  // 1-based injection sequence number
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("%s fault on %s (injection #%d): %v", e.Op, e.File, e.N, ErrInjectedFault)
}

// Unwrap ties every FaultError to the ErrInjectedFault sentinel.
func (e *FaultError) Unwrap() error { return ErrInjectedFault }

// FaultConfig sets the per-operation fault probabilities of an injector.
// All randomness is drawn from one seeded source, so a (seed, workload)
// pair replays the same fault schedule.
type FaultConfig struct {
	Seed int64
	// ReadError is the probability that a page read panics.
	ReadError float64
	// WriteTear is the probability that an append to a temp file tears:
	// a truncated tuple is written and the append then panics, modeling
	// a partial page write during NEST-JA2 materialization. Base tables
	// are never torn, so fault-free reruns see uncorrupted data.
	WriteTear float64
	// TearPrefixes lists the file-name prefixes eligible for torn writes;
	// empty means only anonymous temporaries ($tmpN). The chaos harness
	// adds "TEMP" to cover the transform algorithms' named temp tables,
	// which are recreated per query and dropped on failure.
	TearPrefixes []string
	// Latency is the probability that a storage operation sleeps for
	// LatencyDur before proceeding (a slow device, not a failure).
	Latency    float64
	LatencyDur time.Duration
	// MaxFaults caps the number of hard faults (read errors and torn
	// writes) injected over the injector's lifetime; 0 means unlimited.
	// Latency is not capped.
	MaxFaults int64
}

// FaultInjector decides, per storage operation, whether to inject a
// fault. One injector may be shared by all goroutines of a query.
type FaultInjector struct {
	cfg      FaultConfig
	mu       sync.Mutex // guards rng
	rng      *rand.Rand
	count    atomic.Int64 // hard faults injected so far
	inflight atomic.Int64 // storage ops currently inside the store
}

// NewFaultInjector creates a seeded injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected reports how many hard faults have fired.
func (fi *FaultInjector) Injected() int64 { return fi.count.Load() }

// begin/end bracket one storage operation (read or append, including any
// injected latency sleep and fault panic unwind) so InFlight can observe
// whether any goroutine is still inside the storage layer.
func (fi *FaultInjector) begin() { fi.inflight.Add(1) }
func (fi *FaultInjector) end()   { fi.inflight.Add(-1) }

// InFlight reports how many storage operations are currently executing
// under this injector. The drain test asserts it returns to zero after a
// drain — no leaked goroutine is still touching storage.
func (fi *FaultInjector) InFlight() int64 { return fi.inflight.Load() }

// roll draws one uniform [0,1) sample.
func (fi *FaultInjector) roll() float64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.rng.Float64()
}

// allow reserves one hard-fault slot, respecting MaxFaults.
func (fi *FaultInjector) allow() (int64, bool) {
	n := fi.count.Add(1)
	if fi.cfg.MaxFaults > 0 && n > fi.cfg.MaxFaults {
		fi.count.Add(-1)
		return 0, false
	}
	return n, true
}

// onRead runs before a page read, outside the store mutex (latency must
// not stall unrelated storage traffic). It may sleep, and may panic with
// a *FaultError.
func (fi *FaultInjector) onRead(file string) {
	if fi.cfg.Latency > 0 && fi.roll() < fi.cfg.Latency {
		time.Sleep(fi.cfg.LatencyDur)
	}
	if fi.cfg.ReadError > 0 && fi.roll() < fi.cfg.ReadError {
		if n, ok := fi.allow(); ok {
			panic(&FaultError{Op: "read", File: file, N: n})
		}
	}
}

// onAppend runs before a tuple append, outside the store mutex. It may
// sleep, and returns true when this append should tear: the caller then
// writes a truncated tuple and panics with the returned FaultError.
// Only temporary files (per TearPrefixes) tear.
func (fi *FaultInjector) onAppend(file string) (*FaultError, bool) {
	if fi.cfg.Latency > 0 && fi.roll() < fi.cfg.Latency {
		time.Sleep(fi.cfg.LatencyDur)
	}
	if !fi.tearable(file) {
		return nil, false
	}
	if fi.cfg.WriteTear > 0 && fi.roll() < fi.cfg.WriteTear {
		if n, ok := fi.allow(); ok {
			return &FaultError{Op: "torn-write", File: file, N: n}, true
		}
	}
	return nil, false
}

// tearable reports whether a file name is eligible for torn writes.
func (fi *FaultInjector) tearable(file string) bool {
	if len(fi.cfg.TearPrefixes) == 0 {
		return strings.HasPrefix(file, "$tmp")
	}
	for _, p := range fi.cfg.TearPrefixes {
		if strings.HasPrefix(file, p) {
			return true
		}
	}
	return false
}

// SetFaultInjector installs (or, with nil, removes) a fault injector on
// the store. The pointer is atomic so the chaos harness can disarm
// faults between the injected run and the fault-free rerun without
// racing in-flight readers.
func (s *Store) SetFaultInjector(fi *FaultInjector) {
	s.fault.Store(&fi)
}

// injector returns the installed injector, or nil. The fast path for
// ungoverned stores is one atomic load.
func (s *Store) injector() *FaultInjector {
	if p := s.fault.Load(); p != nil {
		return *p
	}
	return nil
}

// TempCount reports how many temporary files currently exist — anonymous
// materializations ($tmpN) and per-query namespaced temp tables
// (TEMPn#qN). The chaos harness asserts this returns to zero after every
// run, faulted or not, so failed materializations cannot leak
// intermediates.
func (s *Store) TempCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name := range s.files {
		if strings.HasPrefix(name, "$tmp") || strings.Contains(name, "#q") {
			n++
		}
	}
	return n
}
