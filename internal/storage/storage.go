// Package storage implements the paged storage substrate: heap files made
// of fixed-capacity pages, an LRU buffer pool of B pages, and page-I/O
// accounting.
//
// The paper's performance metric is "the number of disk page I/O's
// required" with relations scanned sequentially and B pages of main-memory
// buffer space (section 7). This package makes that metric *measurable*
// rather than only computable: every page fetched through the buffer pool
// that is not resident counts as one read, and every page appended to a
// heap file counts as one write. The nested-iteration executor re-scans
// inner relations through the pool, so an inner relation that fits in B
// pages stays cached (System R's favorable case) while one that does not
// pays a full re-read per outer tuple (the worst case Kim's and the paper's
// analyses assume).
//
// Heap files are in-memory; "disk" is a slice of pages. That preserves the
// behavior under study — which pages move — without actual device I/O.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Tuple is one row: a slice of values positionally matched to a relation's
// columns. Tuples are treated as immutable once appended.
type Tuple []value.Value

// Clone copies the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// String renders the tuple the way the paper prints table rows.
func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

// IOStats counts page movements. Reads are buffer-pool misses (and direct
// reads by the external sorter, which manages its own buffers); Writes are
// pages appended to heap files.
type IOStats struct {
	Reads  int64
	Writes int64
}

// Total returns reads plus writes — the paper's "page I/O's required".
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - o, used to measure a single query's cost
// as a delta between snapshots.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes}
}

func (s IOStats) String() string {
	return fmt.Sprintf("%d page I/Os (%d reads + %d writes)", s.Total(), s.Reads, s.Writes)
}

// DefaultTuplesPerPage is the page capacity used when a relation does not
// specify one. Experiments set capacities explicitly to hit the paper's
// page counts (Pi, Pj, ...).
const DefaultTuplesPerPage = 32

// page is one disk page: a bounded slice of tuples.
type page struct {
	tuples []Tuple
}

// HeapFile is a relation's stored representation: an ordered sequence of
// pages, scanned sequentially as in the paper's analyses.
type HeapFile struct {
	store         *Store
	name          string
	tuplesPerPage int
	pages         []*page
	nTuples       int
	// sealed marks the final partial page as written; further appends
	// are a programming error.
	sealed bool
}

// Name returns the file's name.
func (f *HeapFile) Name() string { return f.name }

// NumPages returns the file's size in pages — the paper's Pk.
func (f *HeapFile) NumPages() int { return len(f.pages) }

// NumTuples returns the number of stored tuples — the paper's Nk.
func (f *HeapFile) NumTuples() int { return f.nTuples }

// TuplesPerPage returns the page capacity.
func (f *HeapFile) TuplesPerPage() int { return f.tuplesPerPage }

// Append adds one tuple, counting a page write each time a page fills.
// Call Seal when the file is complete so the final partial page is
// accounted for. Appending to a sealed file reopens it: the next Seal
// re-counts the trailing partial page, modeling the rewrite of a page
// that had already gone to disk.
//
// A file has a single writer at a time, but the parallel executor lets one
// goroutine append to a temp file while another scans a different file, so
// the shared store state (I/O counters, buffer pool) is mutex-protected.
func (f *HeapFile) Append(t Tuple) {
	var tear *FaultError
	if inj := f.store.injector(); inj != nil {
		inj.begin()
		defer inj.end()
		// Fault decisions (and latency sleeps) happen before taking the
		// store mutex so a slow append does not stall unrelated I/O. A
		// torn write stores a truncated tuple, then panics below.
		var torn bool
		if tear, torn = inj.onAppend(f.name); torn && len(t) > 1 {
			t = t[:len(t)/2]
		}
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if tear != nil {
		defer panic(tear)
	}
	f.sealed = false
	if len(f.pages) == 0 || len(f.pages[len(f.pages)-1].tuples) == f.tuplesPerPage {
		f.pages = append(f.pages, &page{tuples: make([]Tuple, 0, f.tuplesPerPage)})
	}
	last := f.pages[len(f.pages)-1]
	last.tuples = append(last.tuples, t)
	f.nTuples++
	if len(last.tuples) == f.tuplesPerPage {
		f.store.stats.Writes++
	}
}

// Seal finishes the file: the trailing partial page, if any, is counted as
// one write. Seal is idempotent.
func (f *HeapFile) Seal() {
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if f.sealed {
		return
	}
	f.sealed = true
	if n := len(f.pages); n > 0 && len(f.pages[n-1].tuples) < f.tuplesPerPage {
		f.store.stats.Writes++
	}
}

// ReadPage fetches page i through the buffer pool, counting a read on a
// miss. The returned slice must not be mutated.
func (f *HeapFile) ReadPage(i int) []Tuple {
	if inj := f.store.injector(); inj != nil {
		inj.begin()
		defer inj.end()
		inj.onRead(f.name)
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if i < 0 || i >= len(f.pages) {
		panic(fmt.Sprintf("storage: page %d out of range for %s (%d pages)", i, f.name, len(f.pages)))
	}
	f.store.pool.touch(pageID{file: f, idx: i})
	return f.pages[i].tuples
}

// ReadPageDirect fetches page i bypassing the buffer pool, always counting
// one read. The external sorter uses it for run files: the sorter owns its
// merge buffers, so its I/O follows the 2·P·log_{B-1}(P) model rather than
// LRU caching.
func (f *HeapFile) ReadPageDirect(i int) []Tuple {
	if inj := f.store.injector(); inj != nil {
		inj.begin()
		defer inj.end()
		inj.onRead(f.name)
	}
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if i < 0 || i >= len(f.pages) {
		panic(fmt.Sprintf("storage: page %d out of range for %s (%d pages)", i, f.name, len(f.pages)))
	}
	f.store.stats.Reads++
	return f.pages[i].tuples
}

// Scan calls fn for every tuple in sequential page order, reading through
// the buffer pool. fn returning false stops the scan.
func (f *HeapFile) Scan(fn func(Tuple) bool) {
	for i := range f.pages {
		for _, t := range f.ReadPage(i) {
			if !fn(t) {
				return
			}
		}
	}
}

// Rewrite rebuilds the file, keeping each tuple for which keep returns
// true, after applying an optional transform. Reads go through the buffer
// pool; rewritten pages are charged as writes (the file is rebuilt in
// sequential order, as a System R-era update-by-rewrite would). It returns
// the number of tuples affected (dropped or changed).
func (f *HeapFile) Rewrite(keep func(Tuple) (bool, Tuple)) int {
	var kept []Tuple
	affected := 0
	for i := range f.pages {
		for _, t := range f.ReadPage(i) {
			ok, nt := keep(t)
			if !ok {
				affected++
				continue
			}
			if nt != nil {
				affected++
				kept = append(kept, nt)
				continue
			}
			kept = append(kept, t)
		}
	}
	f.store.mu.Lock()
	f.store.pool.invalidate(f)
	f.pages = nil
	f.nTuples = 0
	f.sealed = false
	f.store.mu.Unlock()
	for _, t := range kept {
		f.Append(t)
	}
	f.Seal()
	return affected
}

// Replace rebuilds the file from the given rows, invalidating its
// buffer frames and charging the rebuilt pages as writes. Unlike
// Rewrite it takes a fully decided row set, so callers can evaluate
// predicates first (where faults may strike) and mutate only after
// every decision succeeded. The rebuild goes into a shadow file that is
// swapped in whole: an injected fault panic during the rebuild unwinds
// with the original contents intact and the shadow dropped — DML stays
// all-or-nothing under fault injection.
func (f *HeapFile) Replace(rows []Tuple) {
	shadow := f.store.CreateTemp(f.tuplesPerPage)
	defer f.store.Drop(shadow.name)
	for _, t := range rows {
		shadow.Append(t)
	}
	shadow.Seal()
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	f.store.pool.invalidate(f)
	f.store.pool.invalidate(shadow)
	f.pages = shadow.pages
	f.nTuples = shadow.nTuples
	f.sealed = true
	shadow.pages = nil
	shadow.nTuples = 0
}

// TruncateTo discards every tuple appended after the first n, restoring
// the file to a prior boundary. Batch loaders use it to unwind a torn
// append so a failed batch leaves no partial rows behind.
func (f *HeapFile) TruncateTo(n int) {
	f.store.mu.Lock()
	defer f.store.mu.Unlock()
	if n < 0 || n >= f.nTuples {
		return
	}
	f.store.pool.invalidate(f)
	full, rem := n/f.tuplesPerPage, n%f.tuplesPerPage
	if rem > 0 {
		f.pages[full].tuples = f.pages[full].tuples[:rem]
		f.pages = f.pages[:full+1]
	} else {
		f.pages = f.pages[:full]
	}
	f.nTuples = n
	f.sealed = false
}

// pageID identifies a page for the buffer pool.
type pageID struct {
	file *HeapFile
	idx  int
}

// bufferPool is an LRU cache of page identities. Because heap files are in
// memory, the pool tracks residency only — which pages would occupy buffer
// frames — and charges a read for each miss.
type bufferPool struct {
	capacity int
	lru      []pageID // front = least recently used
	resident map[pageID]bool
	store    *Store
}

func (p *bufferPool) touch(id pageID) {
	if p.capacity <= 0 {
		p.store.stats.Reads++
		return
	}
	if p.resident[id] {
		// Move to back (most recently used).
		for i, e := range p.lru {
			if e == id {
				copy(p.lru[i:], p.lru[i+1:])
				p.lru[len(p.lru)-1] = id
				break
			}
		}
		return
	}
	p.store.stats.Reads++
	if len(p.lru) == p.capacity {
		evict := p.lru[0]
		copy(p.lru, p.lru[1:])
		p.lru = p.lru[:len(p.lru)-1]
		delete(p.resident, evict)
	}
	p.lru = append(p.lru, id)
	p.resident[id] = true
}

// invalidate drops all cached pages of a file (used when dropping temp
// tables so their frames free up).
func (p *bufferPool) invalidate(f *HeapFile) {
	out := p.lru[:0]
	for _, id := range p.lru {
		if id.file == f {
			delete(p.resident, id)
		} else {
			out = append(out, id)
		}
	}
	p.lru = out
}

// Store owns heap files, the buffer pool, and the I/O statistics. The
// mutex serializes access to the shared state (counters, pool residency,
// file map) so the parallel executor's distributor goroutine can scan one
// file while the consuming goroutine materializes another; page contents
// themselves still have a single writer per file.
type Store struct {
	mu    sync.Mutex
	pool  *bufferPool
	files map[string]*HeapFile
	stats IOStats
	tmpID int
	// fault holds the chaos harness's injector (see fault.go); nil for
	// normal operation. Atomic so arming/disarming does not race the
	// lock-free fast-path check in page reads and appends.
	fault atomic.Pointer[*FaultInjector]
}

// NewStore creates a store whose buffer pool holds bufferPages pages — the
// paper's B. A non-positive value disables caching (every page fetch
// counts).
func NewStore(bufferPages int) *Store {
	s := &Store{files: make(map[string]*HeapFile)}
	s.pool = &bufferPool{
		capacity: bufferPages,
		resident: make(map[pageID]bool),
		store:    s,
	}
	return s
}

// BufferPages returns the pool capacity B.
func (s *Store) BufferPages() int { return s.pool.capacity }

// Stats returns the cumulative I/O counters.
func (s *Store) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the I/O counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = IOStats{}
}

// ChargeReads adds n page reads to the counters. Access structures that
// manage their own pages (indexes) use it to charge their I/O.
func (s *Store) ChargeReads(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Reads += n
}

// Create makes a new, empty heap file. tuplesPerPage <= 0 uses the default.
func (s *Store) Create(name string, tuplesPerPage int) (*HeapFile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.create(name, tuplesPerPage)
}

func (s *Store) create(name string, tuplesPerPage int) (*HeapFile, error) {
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("storage: file %s already exists", name)
	}
	if tuplesPerPage <= 0 {
		tuplesPerPage = DefaultTuplesPerPage
	}
	f := &HeapFile{store: s, name: name, tuplesPerPage: tuplesPerPage}
	s.files[name] = f
	return f, nil
}

// CreateTemp makes an anonymous heap file for intermediate results (sort
// runs, materialized temporaries).
func (s *Store) CreateTemp(tuplesPerPage int) *HeapFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tmpID++
	f, err := s.create(fmt.Sprintf("$tmp%d", s.tmpID), tuplesPerPage)
	if err != nil {
		panic(err) // $tmp names are generated and cannot collide
	}
	return f
}

// Lookup finds a heap file by name.
func (s *Store) Lookup(name string) (*HeapFile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	return f, ok
}

// Drop removes a heap file and releases its buffer frames.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return
	}
	s.pool.invalidate(f)
	delete(s.files, name)
}
