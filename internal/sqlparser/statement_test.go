package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestParseCreateTable(t *testing.T) {
	stmt, err := ParseStatement(`
		CREATE TABLE PARTS (
			PNUM INTEGER,
			PNAME VARCHAR(20),
			PRICE FLOAT,
			ADDED DATE,
			PRIMARY KEY (PNUM)
		)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	rel := ct.Relation
	if rel.Name != "PARTS" || len(rel.Columns) != 4 {
		t.Fatalf("relation = %+v", rel)
	}
	wantTypes := []value.Kind{value.KindInt, value.KindString, value.KindFloat, value.KindDate}
	for i, w := range wantTypes {
		if rel.Columns[i].Type != w {
			t.Errorf("column %d type = %v, want %v", i, rel.Columns[i].Type, w)
		}
	}
	if len(rel.Key) != 1 || rel.Key[0] != "PNUM" {
		t.Errorf("key = %v", rel.Key)
	}
}

func TestParseCreateTableCompositeKey(t *testing.T) {
	stmt, err := ParseStatement(`CREATE TABLE SP (SNO INT, PNO INT, PRIMARY KEY (SNO, PNO))`)
	if err != nil {
		t.Fatal(err)
	}
	rel := stmt.(*CreateTableStmt).Relation
	if len(rel.Key) != 2 {
		t.Errorf("key = %v", rel.Key)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := ParseStatement(`
		INSERT INTO SUPPLY VALUES (3, 4, 7-3-79), (10, NULL, '1-1-80'), (-1, 2.5, 'text')`)
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*InsertStmt)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	if ins.Table != "SUPPLY" || len(ins.Rows) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Rows[0][2].Kind() != value.KindDate {
		t.Errorf("bare date literal = %v", ins.Rows[0][2])
	}
	if !ins.Rows[1][1].IsNull() {
		t.Errorf("NULL literal = %v", ins.Rows[1][1])
	}
	if ins.Rows[1][2].Kind() != value.KindDate {
		t.Errorf("quoted date literal = %v", ins.Rows[1][2])
	}
	if ins.Rows[2][0].Int() != -1 || ins.Rows[2][1].Float() != 2.5 || ins.Rows[2][2].Str() != "text" {
		t.Errorf("literals = %v", ins.Rows[2])
	}
}

func TestParseScriptMixed(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE T (X INT);
		INSERT INTO T VALUES (1), (2);
		SELECT X FROM T WHERE X > 1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	if _, ok := stmts[0].(*CreateTableStmt); !ok {
		t.Errorf("stmt 0 = %T", stmts[0])
	}
	if _, ok := stmts[1].(*InsertStmt); !ok {
		t.Errorf("stmt 1 = %T", stmts[1])
	}
	if _, ok := stmts[2].(*SelectStmt); !ok {
		t.Errorf("stmt 2 = %T", stmts[2])
	}
}

func TestParseDropTable(t *testing.T) {
	stmt, err := ParseStatement("DROP TABLE STAGING__X7")
	if err != nil {
		t.Fatal(err)
	}
	dt, ok := stmt.(*DropTableStmt)
	if !ok {
		t.Fatalf("statement = %T", stmt)
	}
	if dt.Table != "STAGING__X7" {
		t.Errorf("table = %q", dt.Table)
	}
	// The rendered form must parse back (the WAL and the cluster
	// coordinator both round-trip statements through text).
	back, err := ParseStatement(dt.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", dt.String(), err)
	}
	if back.(*DropTableStmt).Table != dt.Table {
		t.Errorf("round-trip = %+v", back)
	}
}

func TestRenderInsertRoundTrip(t *testing.T) {
	src := `INSERT INTO T VALUES (1, NULL, 2.5, 'it''s', '1-1-80'), (-3, 0, 0.25, 'x', NULL)`
	stmt, err := ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	back, err := ParseStatement(ins.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", ins.String(), err)
	}
	ins2 := back.(*InsertStmt)
	if len(ins2.Rows) != len(ins.Rows) {
		t.Fatalf("rows = %d, want %d", len(ins2.Rows), len(ins.Rows))
	}
	for i, row := range ins.Rows {
		for j, v := range row {
			if got := ins2.Rows[i][j]; !got.Equal(v) && !(got.IsNull() && v.IsNull()) {
				t.Errorf("row %d col %d: %v != %v", i, j, got, v)
			}
		}
	}
}

func TestParseStatementErrors(t *testing.T) {
	cases := []string{
		"",
		"ALTER TABLE T",                            // unsupported verb
		"DROP T",                                   // missing TABLE
		"DROP TABLE",                               // missing name
		"DROP TABLE 7",                             // non-ident name
		"CREATE T (X INT)",                         // missing TABLE
		"CREATE TABLE (X INT)",                     // missing name
		"CREATE TABLE T X INT",                     // missing paren
		"CREATE TABLE T (X BLOB)",                  // unknown type
		"CREATE TABLE T (X INT",                    //                  unclosed
		"CREATE TABLE T (X INT, PRIMARY KEY X)",    // key without parens
		"CREATE TABLE T (X VARCHAR(abc))",          // bad length
		"INSERT T VALUES (1)",                      // missing INTO
		"INSERT INTO T (1)",                        // missing VALUES
		"INSERT INTO T VALUES 1",                   // missing paren
		"INSERT INTO T VALUES (X)",                 // non-literal
		"INSERT INTO T VALUES (1) SELECT X FROM T", // missing semicolon
		"SELECT X FROM T; SELECT Y FROM U",         // two statements to ParseStatement
	}
	for _, src := range cases {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q): expected error", src)
		}
	}
}

func TestParseScriptSemicolons(t *testing.T) {
	stmts, err := ParseScript(";;SELECT X FROM T;;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Errorf("statements = %d", len(stmts))
	}
	if _, err := ParseScript(";;"); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty script: %v", err)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	stmt, err := ParseStatement("DELETE FROM T WHERE X > 3 AND Y IN (SELECT Z FROM U)")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table != "T" || len(del.Where) != 2 {
		t.Errorf("delete = %+v", del)
	}
	stmt, err = ParseStatement("DELETE FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*DeleteStmt); del.Where != nil {
		t.Errorf("unfiltered delete = %+v", del)
	}

	stmt, err = ParseStatement("UPDATE T SET A = 1, B = 'x', C = NULL WHERE A < 9")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStmt)
	if up.Table != "T" || len(up.Set) != 3 || len(up.Where) != 1 {
		t.Errorf("update = %+v", up)
	}
	if up.Set[0].Column != "A" || up.Set[0].Val.Int() != 1 {
		t.Errorf("set[0] = %+v", up.Set[0])
	}
	if !up.Set[2].Val.IsNull() {
		t.Errorf("set[2] = %+v", up.Set[2])
	}

	for _, src := range []string{
		"DELETE T",
		"DELETE FROM",
		"UPDATE SET A = 1",
		"UPDATE T A = 1",
		"UPDATE T SET = 1",
		"UPDATE T SET A 1",
		"UPDATE T SET A = B",
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q): expected error", src)
		}
	}
}
