package sqlparser

import (
	"strconv"
	"strings"

	"repro/internal/value"
)

// DML statements render back to parseable SQL text: the write-ahead log
// stores DELETE and UPDATE records logically (the statement, not the
// row images), and replays them by re-parsing. Predicates reuse the ast
// String renderers the EXPLAIN traces use; literals go through
// renderLiteral, which keeps every value in a form the lexer accepts
// (ISO dates as quoted strings, floats without exponents).

// String renders the statement as parseable SQL.
func (s *DeleteStmt) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	writeWhere(&b, s)
	return b.String()
}

// String renders the statement as parseable SQL.
func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, sc := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(sc.Column)
		b.WriteString(" = ")
		b.WriteString(renderLiteral(sc.Val))
	}
	writeWhere(&b, s)
	return b.String()
}

// String renders the statement as parseable SQL.
func (s *DropTableStmt) String() string {
	return "DROP TABLE " + s.Table
}

// String renders the statement as parseable SQL. The cluster coordinator
// uses it to forward partitioned row batches to their destination worker
// as plain INSERT statements, so shuffle traffic reuses the engine's
// ordinary DML path (coercion, WAL logging, admission) unchanged.
func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderLiteral(v))
		}
		b.WriteByte(')')
	}
	return b.String()
}

func writeWhere(b *strings.Builder, s Statement) {
	var preds []interface{ String() string }
	switch s := s.(type) {
	case *DeleteStmt:
		for _, p := range s.Where {
			preds = append(preds, p)
		}
	case *UpdateStmt:
		for _, p := range s.Where {
			preds = append(preds, p)
		}
	}
	for i, p := range preds {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
}

// renderLiteral renders one literal value so that parseLiteral reads it
// back to an equivalent value (after the engine's column coercion).
func renderLiteral(v value.Value) string {
	switch v.Kind() {
	case value.KindDate:
		d := v.DateOf()
		return "'" + strconv.Itoa(d.Year()) + "-" +
			pad2(d.Month()) + "-" + pad2(d.Day()) + "'"
	case value.KindFloat:
		// 'f' keeps the text free of exponents the lexer cannot read.
		return strconv.FormatFloat(v.Float(), 'f', -1, 64)
	default:
		// NULL, integers, and quoted strings already render parseably.
		return v.String()
	}
}

func pad2(n int) string {
	if n < 10 {
		return "0" + strconv.Itoa(n)
	}
	return strconv.Itoa(n)
}
