package sqlparser

import (
	"strings"
	"testing"
)

// FuzzParseScript asserts the parser never panics and that anything it
// accepts as a single SELECT statement round-trips: print it, re-parse it,
// and the second print is identical. Run with `go test -fuzz FuzzParseScript`
// for coverage-guided exploration; the seed corpus runs as a normal test.
func FuzzParseScript(f *testing.F) {
	seeds := []string{
		"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')",
		"SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
		"CREATE TABLE T (X INT, D DATE, PRIMARY KEY (X)); INSERT INTO T VALUES (1, 7-3-79), (2, NULL)",
		"UPDATE T SET X = 1 WHERE X NOT IN (SELECT Y FROM U); DELETE FROM T",
		"SELECT A, COUNT(B) AS C FROM T GROUP BY A HAVING C > 1 ORDER BY A DESC",
		"SELECT X FROM T WHERE NOT (A = 1 OR B != 2) AND C >= ALL (SELECT D FROM U)",
		"SELECT X FROM T WHERE A =+ B AND C <+ 1-1-80",
		"select x from t where y is not in (select z from u) -- comment",
		// One seed per metamorph generator query class (internal/metamorph),
		// so coverage-guided runs start from every nesting shape the
		// correctness fuzzer exercises.
		"SELECT A.R, A.K FROM MM0A A WHERE A.V <= (SELECT MAX(B.W) FROM MM0B B WHERE B.G = 1)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.V < (SELECT AVG(C.W) FROM MM0C C)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.K IN (SELECT B.K FROM MM0B B WHERE B.W <= 5)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.V = ANY (SELECT C.W FROM MM0C C WHERE C.G = 0)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.R IN (SELECT B.ID FROM MM0B B)",
		"SELECT A.R, A.K FROM MM0A A WHERE EXISTS (SELECT B.ID FROM MM0B B WHERE B.K = A.K)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.G IN (SELECT B.G FROM MM0B B WHERE B.K = A.K)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.V >= (SELECT COUNT(*) FROM MM0B B WHERE B.K = A.K)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.V <= (SELECT MIN(B.W) FROM MM0B B WHERE B.K = A.K)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.V >= ALL (SELECT B.W FROM MM0B B WHERE B.K = A.K)",
		"SELECT A.R, A.K FROM MM0A A WHERE A.K IN (SELECT B.K FROM MM0B B WHERE B.W = (SELECT COUNT(*) FROM MM0C C WHERE C.K = B.K))",
		"SELECT A.R, A.K FROM MM0A A WHERE EXISTS (SELECT B.ID FROM MM0B B WHERE B.K = A.K AND B.W = (SELECT COUNT(*) FROM MM0C C WHERE C.G = A.G))",
		"SELECT A.R, A.K FROM MM0A A WHERE NOT EXISTS (SELECT B.ID FROM MM0B B WHERE B.K = A.K) AND A.S = 'oak'",
		"SELECT A.R, A.K FROM MM0A A WHERE A.K NOT IN (SELECT B.K FROM MM0B B WHERE B.W <= 6) ORDER BY A.R",
		"SELECT DISTINCT A.K, A.G FROM MM0A A WHERE A.K IN (SELECT B.K FROM MM0B B) AND A.D <= 6-15-79",
		"SELECT A.K, COUNT(*) AS CNT FROM MM0A A WHERE EXISTS (SELECT B.ID FROM MM0B B WHERE B.K = A.K) GROUP BY A.K HAVING CNT >= 2",
		"SELECT MIN(A.V) AS LO, MAX(A.V) AS HI FROM MM0A A WHERE A.G = 2",
		"SELECT COUNT(*) FROM MM0A A WHERE A.K IN (SELECT C.K FROM MM0C C)",
		// The NULL-safe back-join operator NEST-JA2 emits (and the parser
		// accepts so transformed programs re-parse).
		"SELECT PARTS.PNUM FROM PARTS, TEMP3 WHERE PARTS.QOH = TEMP3.CT AND TEMP3.PNUM <=> PARTS.PNUM",
		"'unterminated",
		"SELECT 1-2-3-4 FROM",
		"((((((",
		"\x00\xff",
		// Nesting bombs: each would overflow the stack (parse-time or in a
		// later tree walk) without the maxParseDepth budget.
		"SELECT X FROM T WHERE " + strings.Repeat("(", 100000) + "A = 1",
		"SELECT X FROM T WHERE " + strings.Repeat("NOT ", 100000) + "A = 1",
		"SELECT X FROM T WHERE " + strings.Repeat("A = 1 AND ", 100000) + "A = 1",
		"SELECT X FROM T WHERE " + strings.Repeat("A = 1 OR ", 100000) + "A = 1",
		"SELECT X FROM T WHERE A IN " + strings.Repeat("(SELECT X FROM T WHERE A IN ", 100000) + "(SELECT X FROM T)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseScript(src)
		if err != nil {
			return
		}
		for _, stmt := range stmts {
			sel, ok := stmt.(*SelectStmt)
			if !ok {
				continue
			}
			printed := sel.Query.String()
			re, err := Parse(printed)
			if err != nil {
				t.Fatalf("accepted %q but printed form %q does not re-parse: %v",
					trim(src), printed, err)
			}
			if got := re.String(); got != printed {
				t.Fatalf("print not stable:\n  first:  %s\n  second: %s", printed, got)
			}
		}
	})
}

func trim(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return strings.ToValidUTF8(s, "?")
}
