// Package sqlparser implements a lexer and recursive-descent parser for the
// SQL subset used by the paper "Optimization of Nested SQL Queries
// Revisited": query blocks (SELECT / FROM / WHERE / GROUP BY) nested to
// arbitrary depth, the comparison operators including the System R
// spellings !< and !>, the set predicates IN and IS IN, the section 8
// extensions EXISTS / NOT EXISTS / ANY / ALL, aggregate functions, DISTINCT,
// and the paper's unquoted date literals (SHIPDATE < 1-1-80).
package sqlparser

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokDate
	tokOp // comparison operator, possibly with outer-join '+' suffix
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokStar
	tokSemi
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokDate:
		return "date"
	case tokOp:
		return "operator"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokStar:
		return "'*'"
	case tokSemi:
		return "';'"
	default:
		return fmt.Sprintf("tokenKind(%d)", uint8(k))
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // identifier text, keyword in upper case, operator, or literal text
	pos  int
}

// keywords of the dialect. Aggregate function names are ordinary
// identifiers; the parser recognizes them in call position.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "IS": true, "EXISTS": true, "ANY": true, "ALL": true,
	"AS": true,
	// DDL and DML statements.
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"INSERT": true, "INTO": true, "VALUES": true, "NULL": true,
	"ORDER": true, "ASC": true, "DESC": true, "HAVING": true,
	"DELETE": true, "UPDATE": true, "SET": true, "DROP": true,
}

// lexer scans SQL text into tokens.
type lexer struct {
	src string
	pos int
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }

// errorAt builds a parse error carrying source context.
func (lx *lexer) errorAt(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(lx.src); i++ {
		if lx.src[i] == '\n' {
			line, col = line+1, 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql: %s at line %d column %d", fmt.Sprintf(format, args...), line, col)
}

// next scans and returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
			continue
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// SQL line comment.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isLetter(c):
		for lx.pos < len(lx.src) && (isLetter(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case isDigit(c):
		return lx.scanNumberOrDate(start)
	case c == '\'':
		lx.pos++
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorAt(start, "unterminated string literal")
			}
			if lx.src[lx.pos] == '\'' {
				// '' escapes a quote.
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
					b.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				break
			}
			b.WriteByte(lx.src[lx.pos])
			lx.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '.':
		lx.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '*':
		lx.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == ';':
		lx.pos++
		return token{kind: tokSemi, text: ";", pos: start}, nil
	case c == '=' || c == '<' || c == '>' || c == '!':
		return lx.scanOperator(start)
	case c == '-':
		// Unary minus introducing a negative number literal.
		if lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			lx.pos++
			tok, err := lx.scanNumberOrDate(lx.pos)
			if err != nil {
				return token{}, err
			}
			if tok.kind == tokDate {
				return token{}, lx.errorAt(start, "negative date literal")
			}
			tok.text = "-" + tok.text
			tok.pos = start
			return tok, nil
		}
		return token{}, lx.errorAt(start, "unexpected character %q", string(c))
	default:
		return token{}, lx.errorAt(start, "unexpected character %q", string(c))
	}
}

// scanNumberOrDate scans a numeric literal, promoting it to a date literal
// when it matches the paper's unquoted D-D-D or D/D/D date syntax (the
// dialect has no arithmetic, so 1-1-80 is unambiguous).
func (lx *lexer) scanNumberOrDate(start int) (token, error) {
	digits := func() string {
		s := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		return lx.src[s:lx.pos]
	}
	first := digits()
	// Date: first sep second sep third with no intervening spaces.
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == '-' || lx.src[lx.pos] == '/') {
		sep := lx.src[lx.pos]
		save := lx.pos
		lx.pos++
		second := digits()
		if second != "" && lx.pos < len(lx.src) && lx.src[lx.pos] == sep {
			lx.pos++
			third := digits()
			if third != "" {
				text := first + string(sep) + second + string(sep) + third
				return token{kind: tokDate, text: text, pos: start}, nil
			}
		}
		lx.pos = save
	}
	// Fraction part.
	if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' && isDigit(lx.src[lx.pos+1]) {
		lx.pos++
		digits()
	}
	return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start}, nil
}

// scanOperator scans =, !=, <>, <, <=, >, >=, !<, !>, and the NULL-safe
// <=>, each optionally followed by '+' for the paper's outer-join
// operators (=+ and friends, section 5.2).
func (lx *lexer) scanOperator(start int) (token, error) {
	two := func(b byte) bool {
		return lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == b
	}
	var op string
	switch lx.src[lx.pos] {
	case '=':
		op = "="
		lx.pos++
	case '!':
		switch {
		case two('='):
			op = "!="
			lx.pos += 2
		case two('<'):
			op = ">=" // System R !< means "not less than"
			lx.pos += 2
		case two('>'):
			op = "<=" // System R !> means "not greater than"
			lx.pos += 2
		default:
			return token{}, lx.errorAt(start, "unexpected character %q", "!")
		}
	case '<':
		switch {
		case two('='):
			op = "<="
			lx.pos += 2
			// <=> is the NULL-safe equality NEST-JA2 emits for its
			// back-join; accepting it keeps transformed programs
			// re-parseable.
			if lx.pos < len(lx.src) && lx.src[lx.pos] == '>' {
				op = "<=>"
				lx.pos++
			}
		case two('>'):
			op = "!="
			lx.pos += 2
		default:
			op = "<"
			lx.pos++
		}
	case '>':
		if two('=') {
			op = ">="
			lx.pos += 2
		} else {
			op = ">"
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '+' {
		op += "+"
		lx.pos++
	}
	return token{kind: tokOp, text: op, pos: start}, nil
}
