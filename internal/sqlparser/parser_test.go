package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

// roundTrip parses, prints, re-parses, and re-prints, checking stability.
func roundTrip(t *testing.T, src string) *ast.QueryBlock {
	t.Helper()
	qb, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	printed := qb.String()
	qb2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", printed, err)
	}
	if printed2 := qb2.String(); printed2 != printed {
		t.Fatalf("print not stable:\n  first:  %s\n  second: %s", printed, printed2)
	}
	return qb
}

// The paper's example queries, numbered as in the text.
var paperQueries = map[string]string{
	"example1-nested-in": `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2');`,
	"example2-typeA": `
		SELECT SNO FROM SP
		WHERE PNO = (SELECT MAX(PNO) FROM P);`,
	"example3-typeN": `
		SELECT SNO FROM SP
		WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50);`,
	"example4-typeJ": `
		SELECT SNAME FROM S
		WHERE SNO IS IN (SELECT SNO FROM SP
		                 WHERE QTY > 100 AND SP.ORIGIN = S.CITY);`,
	"example5-typeJA": `
		SELECT PNAME FROM P
		WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY);`,
	"kiessling-Q2": `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80);`,
	"ganski-Q5": `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80);`,
}

func TestParsePaperQueries(t *testing.T) {
	for name, src := range paperQueries {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, src)
		})
	}
}

func TestParseSimpleSelect(t *testing.T) {
	qb := roundTrip(t, "SELECT SNAME FROM S")
	if len(qb.Select) != 1 || qb.Select[0].Col.Column != "SNAME" {
		t.Errorf("Select = %+v", qb.Select)
	}
	if len(qb.From) != 1 || qb.From[0].Relation != "S" {
		t.Errorf("From = %+v", qb.From)
	}
	if qb.Where != nil || qb.Distinct {
		t.Errorf("unexpected Where/Distinct")
	}
}

func TestParseDistinctAndAlias(t *testing.T) {
	qb := roundTrip(t, "SELECT DISTINCT T.PNUM FROM PARTS T WHERE T.QOH > 0")
	if !qb.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if qb.From[0].Relation != "PARTS" || qb.From[0].Alias != "T" {
		t.Errorf("alias not parsed: %+v", qb.From[0])
	}
	if qb.Select[0].Col != (ast.ColumnRef{Table: "T", Column: "PNUM"}) {
		t.Errorf("qualified column = %+v", qb.Select[0].Col)
	}
}

func TestParseAggregates(t *testing.T) {
	qb := roundTrip(t, "SELECT PNUM, COUNT(SHIPDATE) FROM SUPPLY GROUP BY PNUM")
	if len(qb.Select) != 2 {
		t.Fatalf("Select len = %d", len(qb.Select))
	}
	if qb.Select[1].Agg != value.AggCount || qb.Select[1].Col.Column != "SHIPDATE" {
		t.Errorf("COUNT item = %+v", qb.Select[1])
	}
	if len(qb.GroupBy) != 1 || qb.GroupBy[0].Column != "PNUM" {
		t.Errorf("GroupBy = %+v", qb.GroupBy)
	}

	qb = roundTrip(t, "SELECT COUNT(*) FROM SUPPLY")
	if qb.Select[0].Agg != value.AggCountStar {
		t.Errorf("COUNT(*) = %+v", qb.Select[0])
	}
	for _, fn := range []string{"MAX", "MIN", "SUM", "AVG"} {
		qb := roundTrip(t, "SELECT "+fn+"(QTY) FROM SP")
		if qb.Select[0].Agg.String() != fn {
			t.Errorf("%s parsed as %v", fn, qb.Select[0].Agg)
		}
	}
}

func TestParseSelectItemAS(t *testing.T) {
	qb := roundTrip(t, "SELECT PNUM AS SUPPNUM, COUNT(SHIPDATE) AS CT FROM SUPPLY GROUP BY PNUM")
	if qb.Select[0].As != "SUPPNUM" || qb.Select[1].As != "CT" {
		t.Errorf("AS aliases = %+v", qb.Select)
	}
}

func TestParseNestedDepth(t *testing.T) {
	qb := roundTrip(t, `
		SELECT A1 FROM A WHERE A2 IN (
			SELECT B1 FROM B WHERE B2 IN (
				SELECT C1 FROM C WHERE C2 = 5))`)
	if got := qb.MaxDepth(); got != 2 {
		t.Errorf("MaxDepth = %d, want 2", got)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]value.CompareOp{
		"=": value.OpEq, "!=": value.OpNe, "<>": value.OpNe,
		"<": value.OpLt, "<=": value.OpLe, ">": value.OpGt, ">=": value.OpGe,
		"!<": value.OpGe, "!>": value.OpLe, // System R spellings
		"<=>": value.OpEqNull, // NEST-JA2's NULL-safe back-join
	}
	for opText, want := range cases {
		qb, err := Parse("SELECT X FROM T WHERE X " + opText + " 5")
		if err != nil {
			t.Fatalf("op %q: %v", opText, err)
		}
		cmp, ok := qb.Where[0].(*ast.Comparison)
		if !ok {
			t.Fatalf("op %q: predicate is %T", opText, qb.Where[0])
		}
		if cmp.Op != want {
			t.Errorf("op %q parsed as %v, want %v", opText, cmp.Op, want)
		}
	}
}

func TestParseOuterJoinOperator(t *testing.T) {
	// The paper's TEMP3 definition uses PARTS.PNUM =+ SUPPLY.PNUM.
	qb := roundTrip(t, "SELECT A FROM R, S WHERE R.X =+ S.Y")
	cmp := qb.Where[0].(*ast.Comparison)
	if !cmp.LeftOuter || cmp.Op != value.OpEq {
		t.Errorf("outer eq = %+v", cmp)
	}
	qb = roundTrip(t, "SELECT A FROM R, S WHERE R.X <+ S.Y")
	cmp = qb.Where[0].(*ast.Comparison)
	if !cmp.LeftOuter || cmp.Op != value.OpLt {
		t.Errorf("outer lt = %+v", cmp)
	}
}

func TestParseInForms(t *testing.T) {
	for _, src := range []string{
		"SELECT X FROM T WHERE X IN (SELECT Y FROM U)",
		"SELECT X FROM T WHERE X IS IN (SELECT Y FROM U)",
	} {
		qb := roundTrip(t, src)
		in, ok := qb.Where[0].(*ast.InPred)
		if !ok || in.Negated {
			t.Errorf("%q: predicate = %+v", src, qb.Where[0])
		}
	}
	for _, src := range []string{
		"SELECT X FROM T WHERE X NOT IN (SELECT Y FROM U)",
		"SELECT X FROM T WHERE X IS NOT IN (SELECT Y FROM U)",
	} {
		qb := roundTrip(t, src)
		in, ok := qb.Where[0].(*ast.InPred)
		if !ok || !in.Negated {
			t.Errorf("%q: predicate = %+v", src, qb.Where[0])
		}
	}
}

func TestParseExists(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE EXISTS (SELECT Y FROM U WHERE U.A = T.B)")
	ex, ok := qb.Where[0].(*ast.ExistsPred)
	if !ok || ex.Negated {
		t.Fatalf("predicate = %+v", qb.Where[0])
	}
	qb = roundTrip(t, "SELECT X FROM T WHERE NOT EXISTS (SELECT Y FROM U)")
	ex, ok = qb.Where[0].(*ast.ExistsPred)
	if !ok || !ex.Negated {
		t.Fatalf("NOT EXISTS predicate = %+v", qb.Where[0])
	}
}

func TestParseQuantified(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE X < ANY (SELECT Y FROM U)")
	q, ok := qb.Where[0].(*ast.QuantPred)
	if !ok || q.Quant != ast.Any || q.Op != value.OpLt {
		t.Fatalf("predicate = %+v", qb.Where[0])
	}
	qb = roundTrip(t, "SELECT X FROM T WHERE X >= ALL (SELECT Y FROM U)")
	q = qb.Where[0].(*ast.QuantPred)
	if q.Quant != ast.All || q.Op != value.OpGe {
		t.Fatalf("predicate = %+v", qb.Where[0])
	}
}

func TestParseScalarSubqueryOnLeft(t *testing.T) {
	// Section 8's EXISTS rewrite produces 0 < (SELECT COUNT(...) ...).
	qb := roundTrip(t, "SELECT X FROM T WHERE 0 < (SELECT COUNT(Y) FROM U)")
	cmp := qb.Where[0].(*ast.Comparison)
	if _, ok := cmp.Left.(ast.Const); !ok {
		t.Errorf("left = %T", cmp.Left)
	}
	if _, ok := cmp.Right.(*ast.Subquery); !ok {
		t.Errorf("right = %T", cmp.Right)
	}
	// And a subquery as the left operand.
	qb = roundTrip(t, "SELECT X FROM T WHERE (SELECT COUNT(Y) FROM U) = 0")
	cmp = qb.Where[0].(*ast.Comparison)
	if _, ok := cmp.Left.(*ast.Subquery); !ok {
		t.Errorf("left = %T", cmp.Left)
	}
}

func TestParseAndFlattening(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE A = 1 AND B = 2 AND C = 3")
	if len(qb.Where) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(qb.Where))
	}
	for _, p := range qb.Where {
		if _, ok := p.(*ast.Comparison); !ok {
			t.Errorf("conjunct is %T", p)
		}
	}
}

func TestParseOrNot(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE A = 1 OR B = 2")
	if len(qb.Where) != 1 {
		t.Fatalf("conjuncts = %d", len(qb.Where))
	}
	if _, ok := qb.Where[0].(*ast.OrPred); !ok {
		t.Fatalf("predicate = %T", qb.Where[0])
	}
	if !qb.HasDisjunction() {
		t.Error("HasDisjunction must be true")
	}

	// Precedence: AND binds tighter than OR.
	qb = roundTrip(t, "SELECT X FROM T WHERE A = 1 AND B = 2 OR C = 3")
	or, ok := qb.Where[0].(*ast.OrPred)
	if !ok {
		t.Fatalf("top = %T", qb.Where[0])
	}
	if _, ok := or.Left.(*ast.AndPred); !ok {
		t.Errorf("or.Left = %T, want AndPred", or.Left)
	}

	qb = roundTrip(t, "SELECT X FROM T WHERE NOT (A = 1 OR B = 2)")
	not, ok := qb.Where[0].(*ast.NotPred)
	if !ok {
		t.Fatalf("top = %T", qb.Where[0])
	}
	if _, ok := not.P.(*ast.OrPred); !ok {
		t.Errorf("not.P = %T", not.P)
	}
}

func TestParseParenthesizedPredicate(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE (A = 1 OR B = 2) AND C = 3")
	if len(qb.Where) != 2 {
		t.Fatalf("conjuncts = %d, want 2", len(qb.Where))
	}
}

func TestParseLiterals(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE A = -7 AND B = 2.5 AND C = 'P2' AND D < 1-1-80 AND E < '1979-07-03'")
	consts := make([]value.Value, 0, 5)
	for _, p := range qb.Where {
		consts = append(consts, p.(*ast.Comparison).Right.(ast.Const).Val)
	}
	if consts[0].Int() != -7 {
		t.Errorf("int literal = %v", consts[0])
	}
	if consts[1].Float() != 2.5 {
		t.Errorf("float literal = %v", consts[1])
	}
	if consts[2].Str() != "P2" {
		t.Errorf("string literal = %v", consts[2])
	}
	if consts[3].Kind() != value.KindDate || consts[3].DateOf().Year() != 1980 {
		t.Errorf("bare date literal = %v", consts[3])
	}
	if consts[4].Kind() != value.KindDate || consts[4].DateOf().Year() != 1979 {
		t.Errorf("quoted ISO date literal = %v", consts[4])
	}
}

func TestParseStringEscapes(t *testing.T) {
	qb := roundTrip(t, "SELECT X FROM T WHERE A = 'O''BRIEN'")
	c := qb.Where[0].(*ast.Comparison).Right.(ast.Const).Val
	if c.Str() != "O'BRIEN" {
		t.Errorf("escaped string = %q", c.Str())
	}
}

func TestParseComments(t *testing.T) {
	qb := roundTrip(t, "SELECT X -- output column\nFROM T -- the relation\n")
	if qb.Select[0].Col.Column != "X" {
		t.Errorf("comment handling broke select: %+v", qb.Select)
	}
}

func TestParseSemicolonAndCase(t *testing.T) {
	qb := roundTrip(t, "select sname from s where sno in (select sno from sp);")
	if _, ok := qb.Where[0].(*ast.InPred); !ok {
		t.Errorf("lower-case keywords: %T", qb.Where[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // empty
		"SELECT",                              // missing items
		"SELECT X",                            // missing FROM
		"SELECT X FROM",                       // missing table
		"SELECT X FROM T WHERE",               // missing predicate
		"SELECT X FROM T WHERE X",             // missing operator
		"SELECT X FROM T WHERE X = ",          // missing operand
		"SELECT X FROM T WHERE X IN SELECT",   // missing paren
		"SELECT X FROM T WHERE X IS 5",        // IS without IN
		"SELECT MEDIAN(X) FROM T",             // unknown function
		"SELECT MAX(*) FROM T",                // only COUNT(*) allowed
		"SELECT X FROM T WHERE X = 5 GARBAGE", // trailing junk
		"SELECT X FROM T WHERE X = 'unclosed", // unterminated string
		"SELECT X FROM T WHERE X =+ ANY (SELECT Y FROM U)", // quantified outer op
		"SELECT X FROM T WHERE X ! 5",                      // bad operator
		"SELECT X FROM T WHERE X = @",                      // bad character
		"SELECT X.Y.Z FROM T",                              // over-qualified
		"SELECT X FROM T GROUP BY",                         // missing group column
		"SELECT X FROM T WHERE X = -1-1-80",                // negative date
		"SELECT X FROM T WHERE X IN (SELECT Y FROM U",      // unclosed subquery
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT X\nFROM T\nWHERE X = @")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not mention line 3", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("not sql")
}

// TestDepthLimit feeds the parser inputs whose recursion (at parse time
// or in any later tree walk) is proportional to input length; each must
// come back as a clean "nesting depth" error, not a stack overflow. A
// query at a reasonable depth must still parse.
func TestDepthLimit(t *testing.T) {
	bombs := map[string]string{
		"parens":     "SELECT X FROM T WHERE " + strings.Repeat("(", 1<<20) + "A = 1",
		"not":        "SELECT X FROM T WHERE " + strings.Repeat("NOT ", 1<<20) + "A = 1",
		"and":        "SELECT X FROM T WHERE " + strings.Repeat("A = 1 AND ", 1<<20) + "A = 1",
		"or":         "SELECT X FROM T WHERE " + strings.Repeat("A = 1 OR ", 1<<20) + "A = 1",
		"subqueries": "SELECT X FROM T WHERE A IN " + strings.Repeat("(SELECT X FROM T WHERE A IN ", 1<<18) + "(SELECT X FROM T)",
	}
	for name, src := range bombs {
		t.Run(name, func(t *testing.T) {
			_, err := Parse(src)
			if err == nil {
				t.Fatal("expected a depth error")
			}
			if !strings.Contains(err.Error(), "nesting depth") {
				t.Errorf("error %q is not the depth budget", err)
			}
		})
	}
	ok := "SELECT X FROM T WHERE " + strings.Repeat("(", 100) + "A = 1" + strings.Repeat(")", 100) + " AND " +
		strings.Repeat("B = 2 AND ", 100) + "C = 3"
	if _, err := Parse(ok); err != nil {
		t.Errorf("reasonable nesting rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	qb := MustParse(paperQueries["kiessling-Q2"])
	clone := qb.Clone()
	if clone.String() != qb.String() {
		t.Fatalf("clone differs:\n%s\n%s", clone.String(), qb.String())
	}
	// Mutating the clone must not affect the original.
	clone.RewriteColumnsDeep(func(c ast.ColumnRef) ast.ColumnRef {
		c.Column = "X" + c.Column
		return c
	})
	if clone.String() == qb.String() {
		t.Error("deep rewrite of clone affected nothing")
	}
	if strings.Contains(qb.String(), "XPNUM") {
		t.Error("clone shares state with original")
	}
}

func TestPrettyContainsNestedIndent(t *testing.T) {
	qb := MustParse(paperQueries["kiessling-Q2"])
	pretty := qb.Pretty()
	if !strings.Contains(pretty, "\n    SELECT COUNT(SHIPDATE)") {
		t.Errorf("Pretty output not indented:\n%s", pretty)
	}
}

func TestParseOrderBy(t *testing.T) {
	qb := roundTrip(t, "SELECT A, B FROM T ORDER BY A DESC, B")
	if len(qb.OrderBy) != 2 {
		t.Fatalf("OrderBy = %+v", qb.OrderBy)
	}
	if !qb.OrderBy[0].Desc || qb.OrderBy[1].Desc {
		t.Errorf("directions = %+v", qb.OrderBy)
	}
	// ASC is accepted and normalized away in printing.
	qb = sqlparseMust(t, "SELECT A FROM T ORDER BY A ASC")
	if qb.OrderBy[0].Desc {
		t.Error("ASC parsed as DESC")
	}
	if got := qb.String(); got != "SELECT A FROM T ORDER BY A" {
		t.Errorf("ASC printing = %q", got)
	}
	// After GROUP BY.
	roundTrip(t, "SELECT A, COUNT(B) FROM T GROUP BY A ORDER BY A DESC")
	// Errors.
	for _, src := range []string{
		"SELECT A FROM T ORDER A",
		"SELECT A FROM T ORDER BY",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func sqlparseMust(t *testing.T, src string) *ast.QueryBlock {
	t.Helper()
	qb, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return qb
}

func TestParseHaving(t *testing.T) {
	qb := roundTrip(t, "SELECT A, COUNT(B) AS CT FROM T GROUP BY A HAVING CT > 2 AND A < 10 ORDER BY A")
	if len(qb.Having) != 2 {
		t.Fatalf("Having = %+v", qb.Having)
	}
	if qb.Having[0].Col.Column != "CT" || qb.Having[0].Op != value.OpGt {
		t.Errorf("Having[0] = %+v", qb.Having[0])
	}
	for _, src := range []string{
		"SELECT A FROM T HAVING",
		"SELECT A FROM T HAVING A",
		"SELECT A FROM T HAVING A IN (SELECT B FROM U)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}
