package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/value"
)

// Statement is one parsed SQL statement: a query, a table definition, or
// an insertion.
type Statement interface {
	isStatement()
}

// SelectStmt wraps a query block tree.
type SelectStmt struct {
	Query *ast.QueryBlock
}

// CreateTableStmt is CREATE TABLE name (col type, ..., PRIMARY KEY (cols)).
type CreateTableStmt struct {
	Relation *schema.Relation
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]value.Value
}

// DeleteStmt is DELETE FROM name [WHERE ...]. The WHERE clause supports
// the full dialect, including nested subqueries.
type DeleteStmt struct {
	Table string
	Where []ast.Predicate
}

// UpdateStmt is UPDATE name SET col = literal [, ...] [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where []ast.Predicate
}

// SetClause assigns a literal to a column.
type SetClause struct {
	Column string
	Val    value.Value
}

// DropTableStmt is DROP TABLE name. The cluster coordinator leans on it
// to tear down per-query shuffle staging tables on the workers.
type DropTableStmt struct {
	Table string
}

func (*SelectStmt) isStatement()      {}
func (*CreateTableStmt) isStatement() {}
func (*InsertStmt) isStatement()      {}
func (*DeleteStmt) isStatement()      {}
func (*UpdateStmt) isStatement()      {}
func (*DropTableStmt) isStatement()   {}

// ParseStatement parses a single statement of any kind.
func ParseStatement(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements. Like
// Parse, it never panics on any input.
func ParseScript(src string) (stmts []Statement, err error) {
	defer recoverParse(&err)
	p := &parser{lx: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []Statement
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		switch p.tok.kind {
		case tokSemi:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokEOF:
		default:
			return nil, p.errorf("expected ';' between statements, found %q", p.tok.text)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sql: empty script")
	}
	return out, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		qb, err := p.parseQueryBlock()
		if err != nil {
			return nil, err
		}
		return &SelectStmt{Query: qb}, nil
	case p.atKeyword("CREATE"):
		return p.parseCreateTable()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DROP"):
		return p.parseDropTable()
	default:
		return nil, p.errorf("expected SELECT, CREATE TABLE, INSERT, DELETE, UPDATE, or DROP TABLE, found %q", p.tok.text)
	}
}

// parseDropTable parses DROP TABLE name.
func (p *parser) parseDropTable() (Statement, error) {
	if err := p.advance(); err != nil { // DROP
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", p.tok.text)
	}
	stmt := &DropTableStmt{Table: p.tok.text}
	return stmt, p.advance()
}

// columnTypes maps SQL type names to value kinds.
var columnTypes = map[string]value.Kind{
	"INT": value.KindInt, "INTEGER": value.KindInt,
	"FLOAT": value.KindFloat, "REAL": value.KindFloat,
	"VARCHAR": value.KindString, "CHAR": value.KindString, "TEXT": value.KindString,
	"DATE": value.KindDate,
}

// parseCreateTable parses
//
//	CREATE TABLE name ( col type [, col type]... [, PRIMARY KEY (col [, col]...)] )
//
// Types may carry a parenthesized length (VARCHAR(20)), which is accepted
// and ignored — the storage layer is untyped by width.
func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", p.tok.text)
	}
	rel := &schema.Relation{Name: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(' after table name, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for {
		if p.atKeyword("PRIMARY") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			rel.Key = cols
		} else {
			if p.tok.kind != tokIdent {
				return nil, p.errorf("expected column name, found %q", p.tok.text)
			}
			name := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, p.errorf("expected column type, found %q", p.tok.text)
			}
			kind, ok := columnTypes[strings.ToUpper(p.tok.text)]
			if !ok {
				return nil, p.errorf("unknown column type %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			// Optional length, e.g. VARCHAR(20).
			if p.tok.kind == tokLParen {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != tokNumber {
					return nil, p.errorf("expected length, found %q", p.tok.text)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != tokRParen {
					return nil, p.errorf("expected ')' after length, found %q", p.tok.text)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			rel.Columns = append(rel.Columns, schema.Column{Name: name, Type: kind})
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' at end of column list, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Relation: rel}, nil
}

// parseIdentList parses ( ident [, ident]... ).
func (p *parser) parseIdentList() ([]string, error) {
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(', found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []string
	for {
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected identifier, found %q", p.tok.text)
		}
		out = append(out, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')', found %q", p.tok.text)
	}
	return out, p.advance()
}

// parseInsert parses INSERT INTO name VALUES (lit, ...), (lit, ...).
// NULL is accepted as a literal.
func (p *parser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", p.tok.text)
	}
	stmt := &InsertStmt{Table: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		row, err := p.parseValueRow()
		if err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseValueRow() ([]value.Value, error) {
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(', found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var row []value.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' at end of row, found %q", p.tok.text)
	}
	return row, p.advance()
}

// parseLiteral parses one literal value in a VALUES row.
func (p *parser) parseLiteral() (value.Value, error) {
	if p.tok.kind == tokKeyword && p.tok.text == "NULL" {
		if err := p.advance(); err != nil {
			return value.Null, err
		}
		return value.Null, nil
	}
	e, err := p.parseOperand()
	if err != nil {
		return value.Null, err
	}
	c, ok := e.(ast.Const)
	if !ok {
		return value.Null, p.errorf("expected literal in VALUES row")
	}
	return c.Val, nil
}

// parseDelete parses DELETE FROM name [WHERE predicates].
func (p *parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", p.tok.text)
	}
	stmt := &DeleteStmt{Table: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.atKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		preds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		stmt.Where = preds
	}
	return stmt, nil
}

// parseUpdate parses UPDATE name SET col = literal [, ...] [WHERE ...].
func (p *parser) parseUpdate() (Statement, error) {
	if err := p.advance(); err != nil { // UPDATE
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", p.tok.text)
	}
	stmt := &UpdateStmt{Table: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected column name in SET, found %q", p.tok.text)
		}
		col := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || p.tok.text != "=" {
			return nil, p.errorf("expected '=' in SET, found %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Val: v})
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		preds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		stmt.Where = preds
	}
	return stmt, nil
}
