package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// Parse parses a single SQL statement (optionally terminated by a
// semicolon) into a query block tree. It never panics on any input: deep
// nesting is rejected by maxParseDepth and residual parser bugs are
// converted to errors by recoverParse.
func Parse(src string) (qb *ast.QueryBlock, err error) {
	defer recoverParse(&err)
	p := &parser{lx: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	qb, err = p.parseQueryBlock()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSemi {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after end of statement", p.tok.kind)
	}
	return qb, nil
}

// MustParse is Parse for statically-known query text; it panics on error.
// Tests and the workload generators use it for the paper's literal queries.
func MustParse(src string) *ast.QueryBlock {
	qb, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return qb
}

type parser struct {
	lx    *lexer
	tok   token
	depth int
}

// maxParseDepth bounds subquery/predicate nesting and AND/OR chain length
// (a long chain builds an equally deep left-leaning tree that later tree
// walks recurse over). Go cannot recover from stack overflow, so input
// like a megabyte of '(' must be rejected by budget, not contained.
const maxParseDepth = 512

// enter charges one level of nesting; exit with p.depth-- or by restoring
// a saved depth.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf("query exceeds maximum nesting depth %d", maxParseDepth)
	}
	return nil
}

// recoverParse converts a parser panic into an error at the public entry
// points. No code path is known to panic — the depth budget handles the
// one class recover cannot (stack overflow) — but user input must never
// take the process down, so the net stays.
func recoverParse(err *error) {
	if v := recover(); v != nil {
		*err = fmt.Errorf("sql: internal parser error: %v", v)
	}
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return p.lx.errorAt(p.tok.pos, format, args...)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errorf("expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

// parseQueryBlock parses SELECT [DISTINCT] items FROM tables
// [WHERE predicates] [GROUP BY columns].
func (p *parser) parseQueryBlock() (*ast.QueryBlock, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	qb := &ast.QueryBlock{}
	if p.atKeyword("DISTINCT") {
		qb.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		qb.Select = append(qb.Select, item)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		qb.From = append(qb.From, tr)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		preds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		qb.Where = preds
	}
	if p.atKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			qb.GroupBy = append(qb.GroupBy, col)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("HAVING") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			h, err := p.parseHavingPred()
			if err != nil {
				return nil, err
			}
			qb.Having = append(qb.Having, h)
			if !p.atKeyword("AND") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Col: col}
			if p.atKeyword("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.atKeyword("DESC") {
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			qb.OrderBy = append(qb.OrderBy, item)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return qb, nil
}

// parseHavingPred parses one HAVING conjunct: COLUMN op LITERAL, where
// COLUMN names an output column of the block (alias, aggregate name, or
// grouping column).
func (p *parser) parseHavingPred() (ast.HavingPred, error) {
	col, err := p.parseColumnRef()
	if err != nil {
		return ast.HavingPred{}, err
	}
	if p.tok.kind != tokOp {
		return ast.HavingPred{}, p.errorf("expected comparison operator in HAVING, found %q", p.tok.text)
	}
	op, err := compareOpOf(strings.TrimSuffix(p.tok.text, "+"))
	if err != nil {
		return ast.HavingPred{}, p.errorf("%v", err)
	}
	if err := p.advance(); err != nil {
		return ast.HavingPred{}, err
	}
	if p.atKeyword("NULL") {
		if err := p.advance(); err != nil {
			return ast.HavingPred{}, err
		}
		return ast.HavingPred{Col: col, Op: op, Val: value.Null}, nil
	}
	operand, err := p.parseOperand()
	if err != nil {
		return ast.HavingPred{}, err
	}
	c, ok := operand.(ast.Const)
	if !ok {
		return ast.HavingPred{}, p.errorf("HAVING compares an output column to a literal")
	}
	return ast.HavingPred{Col: col, Op: op, Val: c.Val}, nil
}

// parseSelectItem parses a plain column or an aggregate call, with an
// optional AS alias.
func (p *parser) parseSelectItem() (ast.SelectItem, error) {
	var item ast.SelectItem
	if p.tok.kind != tokIdent {
		return item, p.errorf("expected select item, found %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return item, err
	}
	if p.tok.kind == tokLParen {
		fn, ok := value.AggFuncByName(name)
		if !ok {
			return item, p.errorf("unknown function %q", name)
		}
		if err := p.advance(); err != nil {
			return item, err
		}
		if p.tok.kind == tokStar {
			if fn != value.AggCount {
				return item, p.errorf("%s(*) is not valid; only COUNT(*) is", strings.ToUpper(name))
			}
			item.Agg = value.AggCountStar
			if err := p.advance(); err != nil {
				return item, err
			}
		} else {
			col, err := p.parseColumnRef()
			if err != nil {
				return item, err
			}
			item.Agg = fn
			item.Col = col
		}
		if p.tok.kind != tokRParen {
			return item, p.errorf("expected ')' after aggregate argument, found %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return item, err
		}
	} else {
		col := ast.ColumnRef{Column: name}
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return item, err
			}
			if p.tok.kind != tokIdent {
				return item, p.errorf("expected column name after '.', found %q", p.tok.text)
			}
			col = ast.ColumnRef{Table: name, Column: p.tok.text}
			if err := p.advance(); err != nil {
				return item, err
			}
		}
		item.Col = col
	}
	if p.atKeyword("AS") {
		if err := p.advance(); err != nil {
			return item, err
		}
		if p.tok.kind != tokIdent {
			return item, p.errorf("expected alias after AS, found %q", p.tok.text)
		}
		item.As = p.tok.text
		if err := p.advance(); err != nil {
			return item, err
		}
	}
	return item, nil
}

// parseTableRef parses a relation name with an optional alias.
func (p *parser) parseTableRef() (ast.TableRef, error) {
	if p.tok.kind != tokIdent {
		return ast.TableRef{}, p.errorf("expected table name, found %q", p.tok.text)
	}
	tr := ast.TableRef{Relation: p.tok.text}
	if err := p.advance(); err != nil {
		return tr, err
	}
	if p.tok.kind == tokIdent {
		tr.Alias = p.tok.text
		if err := p.advance(); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// parseColumnRef parses NAME or TABLE.NAME.
func (p *parser) parseColumnRef() (ast.ColumnRef, error) {
	if p.tok.kind != tokIdent {
		return ast.ColumnRef{}, p.errorf("expected column reference, found %q", p.tok.text)
	}
	first := p.tok.text
	if err := p.advance(); err != nil {
		return ast.ColumnRef{}, err
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return ast.ColumnRef{}, err
		}
		if p.tok.kind != tokIdent {
			return ast.ColumnRef{}, p.errorf("expected column name after '.', found %q", p.tok.text)
		}
		col := ast.ColumnRef{Table: first, Column: p.tok.text}
		return col, p.advance()
	}
	return ast.ColumnRef{Column: first}, nil
}

// parseWhere parses the WHERE clause: a disjunction of conjunctions, with
// top-level ANDs flattened into the conjunct list the transformation
// algorithms operate on. AND under OR or NOT stays as an AndPred node.
func (p *parser) parseWhere() ([]ast.Predicate, error) {
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	return flattenAnd(pred), nil
}

func flattenAnd(p ast.Predicate) []ast.Predicate {
	if a, ok := p.(*ast.AndPred); ok {
		return append(flattenAnd(a.Left), flattenAnd(a.Right)...)
	}
	return []ast.Predicate{p}
}

func (p *parser) parseOr() (ast.Predicate, error) {
	start := p.depth
	defer func() { p.depth = start }()
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		if err := p.enter(); err != nil { // each chain link deepens the tree
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.OrPred{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (ast.Predicate, error) {
	start := p.depth
	defer func() { p.depth = start }()
	left, err := p.parsePrimaryPred()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		if err := p.enter(); err != nil { // each chain link deepens the tree
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimaryPred()
		if err != nil {
			return nil, err
		}
		left = &ast.AndPred{Left: left, Right: right}
	}
	return left, nil
}

// parsePrimaryPred parses NOT pred, a parenthesized predicate, EXISTS, or a
// comparison / IN predicate.
func (p *parser) parsePrimaryPred() (ast.Predicate, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	if p.atKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("EXISTS") {
			ex, err := p.parseExists()
			if err != nil {
				return nil, err
			}
			ex.(*ast.ExistsPred).Negated = true
			return ex, nil
		}
		inner, err := p.parsePrimaryPred()
		if err != nil {
			return nil, err
		}
		return &ast.NotPred{P: inner}, nil
	}
	if p.atKeyword("EXISTS") {
		return p.parseExists()
	}
	if p.tok.kind == tokLParen {
		// Either a parenthesized predicate or a subquery as the left
		// operand of a comparison. Distinguish by peeking for SELECT.
		save := *p.lx
		savedTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("SELECT") {
			*p.lx = save
			p.tok = savedTok
			left, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return p.parsePredTail(left)
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', found %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return p.parsePredTail(left)
}

func (p *parser) parseExists() (ast.Predicate, error) {
	if err := p.advance(); err != nil { // consume EXISTS
		return nil, err
	}
	sub, err := p.parseSubquery()
	if err != nil {
		return nil, err
	}
	return &ast.ExistsPred{Sub: sub}, nil
}

// parsePredTail parses the operator and right side of a predicate whose
// left operand is already parsed: a comparison (possibly quantified with
// ANY/ALL), or [IS] [NOT] IN (subquery).
func (p *parser) parsePredTail(left ast.Expr) (ast.Predicate, error) {
	// IS [NOT] IN — the System R spelling used throughout the paper.
	if p.atKeyword("IS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		negated := false
		if p.atKeyword("NOT") {
			negated = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if !p.atKeyword("IN") {
			return nil, p.errorf("expected IN after IS, found %q", p.tok.text)
		}
		return p.parseIn(left, negated)
	}
	if p.atKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.atKeyword("IN") {
			return nil, p.errorf("expected IN after NOT, found %q", p.tok.text)
		}
		return p.parseIn(left, true)
	}
	if p.atKeyword("IN") {
		return p.parseIn(left, false)
	}
	if p.tok.kind != tokOp {
		return nil, p.errorf("expected comparison operator or IN, found %q", p.tok.text)
	}
	opText := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	outer := strings.HasSuffix(opText, "+")
	op, err := compareOpOf(strings.TrimSuffix(opText, "+"))
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	if p.atKeyword("ANY") || p.atKeyword("ALL") {
		quant := ast.Any
		if p.tok.text == "ALL" {
			quant = ast.All
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if outer {
			return nil, p.errorf("outer-join operator cannot be quantified")
		}
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return &ast.QuantPred{Left: left, Op: op, Quant: quant, Sub: sub}, nil
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &ast.Comparison{Left: left, Op: op, Right: right, LeftOuter: outer}, nil
}

func (p *parser) parseIn(left ast.Expr, negated bool) (ast.Predicate, error) {
	if err := p.advance(); err != nil { // consume IN
		return nil, err
	}
	sub, err := p.parseSubquery()
	if err != nil {
		return nil, err
	}
	return &ast.InPred{Left: left, Sub: sub, Negated: negated}, nil
}

// parseSubquery parses '(' query block ')'.
func (p *parser) parseSubquery() (*ast.QueryBlock, error) {
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(' before subquery, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	qb, err := p.parseQueryBlock()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' after subquery, found %q", p.tok.text)
	}
	return qb, p.advance()
}

// parseOperand parses a scalar operand: column reference, literal, or
// parenthesized scalar subquery.
func (p *parser) parseOperand() (ast.Expr, error) {
	switch p.tok.kind {
	case tokIdent:
		return p.parseColumnRef()
	case tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q: %v", text, err)
			}
			return ast.Const{Val: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q: %v", text, err)
		}
		return ast.Const{Val: value.NewInt(n)}, nil
	case tokString:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// A quoted literal that parses as a date is a date (the paper
		// quotes part numbers like 'P2' but writes dates bare; accepting
		// quoted dates too costs nothing and reads naturally).
		if d, err := value.ParseDate(text); err == nil {
			return ast.Const{Val: value.NewDateValue(d)}, nil
		}
		return ast.Const{Val: value.NewString(text)}, nil
	case tokDate:
		d, err := value.ParseDate(p.tok.text)
		if err != nil {
			return nil, p.errorf("bad date literal %q: %v", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return ast.Const{Val: value.NewDateValue(d)}, nil
	case tokLParen:
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return &ast.Subquery{Block: sub}, nil
	default:
		return nil, p.errorf("expected operand, found %q", p.tok.text)
	}
}

func compareOpOf(s string) (value.CompareOp, error) {
	switch s {
	case "=":
		return value.OpEq, nil
	case "!=":
		return value.OpNe, nil
	case "<":
		return value.OpLt, nil
	case "<=":
		return value.OpLe, nil
	case ">":
		return value.OpGt, nil
	case ">=":
		return value.OpGe, nil
	case "<=>":
		return value.OpEqNull, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}
