package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// randValue draws from a small domain so collisions (equal values in
// independent rows) are common — the property below is vacuous without
// them. NULLs are dense for the same reason.
func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(6) {
	case 0:
		return value.Null
	case 1:
		return value.NewInt(int64(rng.Intn(5)))
	case 2:
		// Cross-kind equality: 3 == 3.0 under value.Equal, so they must
		// co-locate too.
		return value.NewFloat(float64(rng.Intn(5)))
	case 3:
		return value.NewFloat(float64(rng.Intn(5)) + 0.5)
	case 4:
		return value.NewString(string(rune('a' + rng.Intn(4))))
	default:
		if rng.Intn(2) == 0 {
			return value.NewFloat(0.0) // exercises the -0.0 fold
		}
		return value.NewInt(0)
	}
}

// eqNull reports a <=> b: the NULL-safe equality the NEST-JA2 back-join
// uses (PR 7's COUNT=0/NULL-key fix). The partitioner must never split
// a <=>-equal pair across shards, or a distributed back-join would drop
// exactly the COUNT=0 groups that fix recovered.
func eqNull(t *testing.T, a, b value.Value) bool {
	t.Helper()
	tri, err := value.OpEqNull.Apply(a, b)
	if err != nil {
		return false // incomparable kinds: not equal, nothing to assert
	}
	return tri == value.True
}

// TestPartitionerRespectsNullSafeEquality is the property test pinning
// the PR 7 fix across the network boundary: for any two rows whose key
// columns are pairwise equal under <=> — including NULL <=> NULL — the
// partitioner must route both rows to the same shard, at every shard
// count.
func TestPartitionerRespectsNullSafeEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows = 400
	for _, shards := range []int{1, 2, 3, 4, 7} {
		for _, keyCols := range [][]int{{0}, {1}, {0, 2}} {
			p := Partitioner{NumShards: shards, KeyCols: keyCols}
			pool := make([]storage.Tuple, rows)
			for i := range pool {
				pool[i] = storage.Tuple{randValue(rng), randValue(rng), randValue(rng)}
			}
			matched := 0
			for i := range pool {
				for j := i + 1; j < len(pool); j++ {
					equal := true
					for _, k := range keyCols {
						if !eqNull(t, pool[i][k], pool[j][k]) {
							equal = false
							break
						}
					}
					if !equal {
						continue
					}
					matched++
					si, sj := p.Shard(pool[i]), p.Shard(pool[j])
					if si != sj {
						t.Fatalf("shards=%d keys=%v: rows %v and %v are <=>-equal on the key but hash to shards %d and %d",
							shards, keyCols, pool[i], pool[j], si, sj)
					}
				}
			}
			if matched == 0 {
				t.Fatalf("shards=%d keys=%v: no <=>-equal pairs drawn; domain too wide for the property to bite", shards, keyCols)
			}
		}
	}
}

// TestPartitionerNullKeysCoLocate pins the headline special case: every
// row whose entire key is NULL lands on one shard.
func TestPartitionerNullKeysCoLocate(t *testing.T) {
	for _, shards := range []int{2, 3, 5} {
		p := Partitioner{NumShards: shards, KeyCols: []int{0}}
		want := p.Shard(storage.Tuple{value.Null, value.NewInt(1)})
		for i := 0; i < 50; i++ {
			row := storage.Tuple{value.Null, value.NewInt(int64(i))}
			if got := p.Shard(row); got != want {
				t.Fatalf("shards=%d: NULL-key row %d landed on shard %d, want %d", shards, i, got, want)
			}
		}
	}
}

// TestPartitionerBounds: results stay in range, and degenerate
// configurations (one shard, no key columns, short rows) route to 0.
func TestPartitionerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Partitioner{NumShards: 4, KeyCols: []int{0, 1}}
	for i := 0; i < 200; i++ {
		row := storage.Tuple{randValue(rng), randValue(rng)}
		if s := p.Shard(row); s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range for %v", s, row)
		}
	}
	if s := (Partitioner{NumShards: 1, KeyCols: []int{0}}).Shard(storage.Tuple{value.NewInt(9)}); s != 0 {
		t.Fatalf("single shard routed to %d", s)
	}
	if s := (Partitioner{NumShards: 3}).Shard(storage.Tuple{value.NewInt(9)}); s != 0 {
		t.Fatalf("empty key routed to %d", s)
	}
	// A key column beyond the row hashes as NULL rather than panicking.
	short := Partitioner{NumShards: 3, KeyCols: []int{5}}
	if s := short.Shard(storage.Tuple{value.NewInt(1)}); s < 0 || s >= 3 {
		t.Fatalf("short-row shard %d out of range", s)
	}
}

// TestPartitionerSpreads sanity-checks that distinct keys actually use
// more than one shard (the hash is not constant).
func TestPartitionerSpreads(t *testing.T) {
	p := Partitioner{NumShards: 4, KeyCols: []int{0}}
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[p.Shard(storage.Tuple{value.NewInt(int64(i))})] = true
	}
	if len(used) < 3 {
		t.Fatalf("64 distinct keys used only %d of 4 shards", len(used))
	}
}
