// Failover tests: replicated shards surviving dead workers. The
// in-process tests kill workers by arming their netfault proxy to drop
// every chunk (established conns die on the next frame, fresh dials die
// in the handshake); the storm SIGKILLs a real daemon subprocess and
// restarts it empty, forcing the snapshot rejoin path end to end.
package cluster_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/netfault"
)

// killProxy arms a proxy to behave like a dead worker.
func killProxy(p *netfault.Proxy) { p.Arm(netfault.Config{Drop: 1}) }

// healProxy restores clean forwarding for new chunks and dials.
func healProxy(p *netfault.Proxy) { p.Arm(netfault.Config{}) }

// waitStates polls until every worker reports the wanted state.
func waitStates(t *testing.T, co *cluster.Coordinator, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		states := co.WorkerStates()
		n := 0
		for _, s := range states {
			if s == want {
				n++
			}
		}
		if n == len(states) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never all reached %q: %v", want, states)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitState polls until one worker reports the wanted state.
func waitState(t *testing.T, co *cluster.Coordinator, w int, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if s := co.WorkerStates()[w]; s == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %d never reached %q: %v", w, want, co.WorkerStates())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// engineTable reads one physical table straight out of a worker's
// engine, canonically sorted; ok is false when the table does not exist.
func engineTable(t *testing.T, db *engine.DB, phys string, cols []string) ([]byte, bool) {
	t.Helper()
	qcols := make([]string, len(cols))
	for i, c := range cols {
		qcols[i] = phys + "." + c
	}
	res, err := db.Query("SELECT "+strings.Join(qcols, ", ")+" FROM "+phys, engine.Options{})
	if err != nil {
		if strings.Contains(err.Error(), "unknown relation") {
			return nil, false
		}
		t.Fatalf("read %s: %v", phys, err)
	}
	return canonSorted(res.Columns, res.Rows), true
}

// TestClusterFailover is the in-process failover drill: kill one worker
// of a 3-node R=2 cluster, prove every query still matches the oracle
// and DML still commits (ack = every live replica logged it), heal the
// link, prove the prober rejoins the worker automatically with every
// missed write re-shipped, then kill the OTHER replica and serve shard
// 0 from the rejoined worker.
func TestClusterFailover(t *testing.T) {
	oracle := oracleDB(t)
	addrs, dbs := startWorkers(t, 3, false)

	var proxies []*netfault.Proxy
	proxyAddrs := make([]string, len(addrs))
	for i, addr := range addrs {
		p, err := netfault.New(addr, netfault.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies = append(proxies, p)
		proxyAddrs[i] = p.Addr()
	}

	co, err := cluster.New(cluster.Config{
		Workers:       proxyAddrs,
		Replicas:      2,
		Placement:     map[string]string{"SP": "PNO"}, // shuffles must fail over too
		DialTimeout:   time.Second,
		IOTimeout:     2 * time.Second,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}

	diffAll := func(phase string) {
		t.Helper()
		for _, sql := range clusterQueries {
			want, err := oracle.Query(sql, engine.Options{Strategy: engine.TransformJA2})
			if err != nil {
				t.Fatalf("%s: oracle %q: %v", phase, sql, err)
			}
			got, err := co.ExecSQL(sql, engine.Options{Strategy: engine.TransformJA2})
			if err != nil {
				t.Fatalf("%s: cluster %q: %v", phase, sql, err)
			}
			if !bytes.Equal(canonSorted(want.Columns, want.Rows), canonSorted(got.Columns, got.Rows)) {
				t.Errorf("%s: %q diverges from oracle", phase, sql)
			}
		}
	}

	// Kill worker 0: every query must route shard 0 to its replica.
	killProxy(proxies[0])
	diffAll("worker 0 dead")
	waitState(t, co, 0, "dead", 10*time.Second)

	// DML with a dead worker: the surviving replica of each shard acks,
	// and the catalog keeps moving (the rejoin must replay all of it).
	for _, sql := range []string{
		"INSERT INTO S VALUES (100, 'PHOENIX', 'NICE')",
		"UPDATE S SET CITY = 'LYON' WHERE SNO = 100",
		"DELETE FROM SP WHERE QTY > 500",
		"CREATE TABLE FLUX (K INTEGER, V INTEGER, PRIMARY KEY (K))",
		"INSERT INTO FLUX VALUES (1, 10), (2, 20), (3, 30)",
	} {
		if _, err := co.ExecSQL(sql, engine.Options{}); err != nil {
			t.Fatalf("DML with worker 0 dead: %q: %v", sql, err)
		}
		if _, err := oracle.Exec(sql, engine.Options{}); err != nil {
			t.Fatalf("oracle replay %q: %v", sql, err)
		}
	}
	diffAll("post-DML, worker 0 still dead")

	// Heal the link: the prober must walk worker 0 through
	// dead -> rejoining -> healthy without any help.
	healProxy(proxies[0])
	waitState(t, co, 0, "healthy", 20*time.Second)

	// The rejoined slices must byte-match the replica that served while
	// worker 0 was out — including the table created in its absence.
	tables := map[string][]string{
		"S":    {"SNO", "SNAME", "CITY"},
		"SP":   {"SNO", "PNO", "QTY"},
		"FLUX": {"K", "V"},
	}
	for name, cols := range tables {
		for _, shard := range []struct{ s, peer int }{{0, 1}, {2, 2}} {
			phys := fmt.Sprintf("%s__S%d", name, shard.s)
			got, ok := engineTable(t, dbs[0], phys, cols)
			if !ok {
				t.Errorf("rejoined worker 0 is missing %s", phys)
				continue
			}
			want, ok := engineTable(t, dbs[shard.peer], phys, cols)
			if !ok {
				t.Fatalf("live replica %d is missing %s", shard.peer, phys)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("rejoined worker 0's %s diverges from replica %d's copy", phys, shard.peer)
			}
		}
	}

	// Now kill the other replica of shard 0: reads must come from the
	// rejoined worker and still match the oracle.
	killProxy(proxies[1])
	diffAll("worker 1 dead, rejoined worker 0 serving")

	// Heal everything and prove no staging table leaked.
	healProxy(proxies[1])
	waitStates(t, co, "healthy", 20*time.Second)
	if n := co.SweepStaging(); n != 0 {
		t.Errorf("%d staging tables still live after heal and sweep", n)
	}
}

// TestWorkerLostFastFailure (the typed-error fast path): a severed
// worker link must surface ErrWorkerLost immediately — the connection
// reset is the signal — not after waiting out the 10s IOTimeout.
func TestWorkerLostFastFailure(t *testing.T) {
	addrs, _ := startWorkers(t, 1, false)
	p, err := netfault.New(addrs[0], netfault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	co, err := cluster.New(cluster.Config{
		Workers:       []string{p.Addr()},
		IOTimeout:     10 * time.Second,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.ExecSQL("CREATE TABLE T (K INTEGER, PRIMARY KEY (K)); INSERT INTO T VALUES (1), (2)", engine.Options{}); err != nil {
		t.Fatal(err)
	}

	killProxy(p)
	start := time.Now()
	_, err = co.ExecSQL("SELECT T.K FROM T", engine.Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, cluster.ErrWorkerLost) {
		t.Fatalf("got %v, want ErrWorkerLost", err)
	}
	var lost *cluster.WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("error %v does not carry *WorkerLostError", err)
	}
	if lost.Worker != 0 {
		t.Errorf("lost worker %d, want 0", lost.Worker)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("failure took %v: the coordinator waited toward IOTimeout instead of reacting to the reset", elapsed)
	}
}

// TestProbeLeavesUserTablesAlone: the prober's reachability statement
// must name a table that can never exist. A user table literally named
// PROBE is legal, and its shard-0 physical slice is PROBE__S0 — a probe
// that dropped that name would silently destroy live replica data
// (unrecoverably at R=1). The prober runs manually (ProbeInterval -1,
// Probe) so the suspect → probe → healthy path is deterministic.
func TestProbeLeavesUserTablesAlone(t *testing.T) {
	addrs, dbs := startWorkers(t, 2, false)
	var proxies []*netfault.Proxy
	proxyAddrs := make([]string, len(addrs))
	for i, addr := range addrs {
		p, err := netfault.New(addr, netfault.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies = append(proxies, p)
		proxyAddrs[i] = p.Addr()
	}
	co, err := cluster.New(cluster.Config{
		Workers:       proxyAddrs,
		Replicas:      2,
		DialTimeout:   time.Second,
		IOTimeout:     2 * time.Second,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	fixture := `CREATE TABLE PROBE (K INTEGER, NOTE TEXT, PRIMARY KEY (K));
INSERT INTO PROBE VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd'), (5, 'e'), (6, 'f'), (7, 'g'), (8, 'h');`
	if _, err := co.ExecSQL(fixture, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	cols := []string{"K", "NOTE"}
	baseline, ok := engineTable(t, dbs[0], "PROBE__S0", cols)
	if !ok {
		t.Fatal("fixture: worker 0 does not hold PROBE__S0")
	}

	// One transport failure makes worker 0 suspect; the query itself
	// fails over to the other replica and succeeds.
	killProxy(proxies[0])
	if _, err := co.ExecSQL("SELECT PROBE.K, PROBE.NOTE FROM PROBE", engine.Options{}); err != nil {
		t.Fatalf("query should have failed over: %v", err)
	}
	if s := co.WorkerStates()[0]; s != "suspect" {
		t.Fatalf("worker 0 is %s after one transport failure, want suspect", s)
	}
	healProxy(proxies[0])
	if !co.Probe(0) {
		t.Fatal("probe of the healed worker failed")
	}
	if s := co.WorkerStates()[0]; s != "healthy" {
		t.Fatalf("worker 0 is %s after a clean probe, want healthy", s)
	}

	after, ok := engineTable(t, dbs[0], "PROBE__S0", cols)
	if !ok {
		t.Fatal("the health probe dropped user table slice PROBE__S0")
	}
	if !bytes.Equal(baseline, after) {
		t.Fatal("PROBE__S0 changed across a health probe")
	}
	res, err := co.ExecSQL("SELECT PROBE.K, PROBE.NOTE FROM PROBE", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("PROBE has %d rows after the probe, want 8", len(res.Rows))
	}
}

// TestClusterAnalyzeRefusals (table-driven, under replication): every
// unsound shape must be refused with a typed ErrNotDistributable whose
// message names the reason — never silently answered wrong.
func TestClusterAnalyzeRefusals(t *testing.T) {
	addrs, _ := startWorkers(t, 3, false)
	co, err := cluster.New(cluster.Config{
		Workers: addrs, Replicas: 2, IOTimeout: 10 * time.Second, ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, sql, want string
	}{
		{
			"correlated DELETE subquery",
			"DELETE FROM S WHERE SNO IN (SELECT SNO FROM SP)",
			"subquery would evaluate it per-shard",
		},
		{
			"correlated UPDATE subquery",
			"UPDATE S SET CITY = 'X' WHERE SNO IN (SELECT SNO FROM SP)",
			"subquery would evaluate it per-shard",
		},
		{
			"NOT IN",
			"SELECT S.SNAME FROM S WHERE S.SNO NOT IN (SELECT SP.SNO FROM SP)",
			"NOT IN: an inner NULL on another shard would flip the result",
		},
		{
			"conflicting partition keys",
			"SELECT S.SNAME FROM S WHERE S.SNO IN (SELECT SP.SNO FROM SP WHERE SP.PNO = S.SNO)",
			"would need partitioning on both",
		},
		{
			"uncorrelated EXISTS",
			"SELECT S.SNAME FROM S WHERE EXISTS (SELECT SP.SNO FROM SP WHERE SP.QTY > 0)",
			"not joined to the rest by an equality",
		},
		{
			"non-equality correlation",
			"SELECT S.SNAME FROM S WHERE 0 = (SELECT COUNT(SP.PNO) FROM SP WHERE SP.SNO > S.SNO)",
			"cannot be co-located by hash",
		},
		{
			"top-level DISTINCT",
			"SELECT DISTINCT S.CITY FROM S",
			"top-level DISTINCT needs a global dedup",
		},
		{
			"top-level aggregate",
			"SELECT COUNT(SP.PNO) FROM SP",
			"top-level aggregates span shards",
		},
		{
			"top-level ORDER BY",
			"SELECT S.SNAME FROM S ORDER BY S.SNAME",
			"top-level ORDER BY needs a global sort",
		},
		{
			"top-level GROUP BY",
			"SELECT SP.SNO, COUNT(SP.PNO) FROM SP GROUP BY SP.SNO",
			"top-level GROUP BY groups span shards",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := co.ExecSQL(tc.sql, engine.Options{})
			if !errors.Is(err, cluster.ErrNotDistributable) {
				t.Fatalf("%q: got %v, want ErrNotDistributable", tc.sql, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%q: error %q does not name the reason %q", tc.sql, err, tc.want)
			}
		})
	}
}

// workerDaemon is one nestedsqld worker subprocess on a pinned address.
type workerDaemon struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr strings.Builder
}

func (d *workerDaemon) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// buildWorkerDaemon compiles nestedsqld with -race into a temp dir.
func buildWorkerDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nestedsqld")
	cmd := exec.Command("go", "build", "-race", "-o", bin, "repro/cmd/nestedsqld")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return bin
}

// pinAddr reserves a loopback address a daemon can be restarted on.
func pinAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// startWorkerDaemon launches one in-memory worker on a pinned address
// and waits for its listening line. No data dir: a SIGKILLed worker
// restarts empty, exactly the state the snapshot rejoin must repair.
func startWorkerDaemon(t *testing.T, bin, addr string) *workerDaemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-fixture", "none", "-drain-timeout", "5s")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &workerDaemon{cmd: cmd, addr: addr}
	up := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if strings.Contains(line, "listening on ") {
				select {
				case up <- struct{}{}:
				default:
				}
			}
		}
	}()
	select {
	case <-up:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("worker daemon never listened on %s; stderr:\n%s", addr, d.log())
	}
	return d
}

// TestClusterFailoverStorm is the make cluster-failover gate: three
// real worker daemons at R=2 behind netfault proxies take concurrent
// queries (byte-diffed against the single-node oracle) and sequential
// DML while one daemon is SIGKILLed mid-storm and restarted empty on
// the same address. Every acknowledged write must survive on a replica,
// every completed query must match the oracle, the restarted worker
// must rejoin via snapshot re-ship, and nothing — staging tables or
// goroutines — may leak.
func TestClusterFailoverStorm(t *testing.T) {
	if testing.Short() && os.Getenv("FAILOVER_STORM_SHORT") == "" {
		t.Skip("failover storm skipped in -short mode without FAILOVER_STORM_SHORT=1")
	}
	baseline := runtime.NumGoroutine()
	oracle := oracleDB(t)
	oracleBytes := make(map[string][]byte)
	for _, sql := range clusterQueries {
		res, err := oracle.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		oracleBytes[sql] = canonSorted(res.Columns, res.Rows)
	}

	bin := buildWorkerDaemon(t)
	const workers = 3
	const victim = 0
	addrs := make([]string, workers)
	daemons := make([]*workerDaemon, workers)
	for i := range addrs {
		addrs[i] = pinAddr(t)
		daemons[i] = startWorkerDaemon(t, bin, addrs[i])
	}
	defer func() {
		for _, d := range daemons {
			if d != nil && d.cmd.ProcessState == nil {
				d.cmd.Process.Kill()
				d.cmd.Wait()
			}
		}
	}()

	var proxies []*netfault.Proxy
	proxyAddrs := make([]string, workers)
	for i, addr := range addrs {
		p, err := netfault.New(addr, netfault.Config{Seed: clusterSeed + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies = append(proxies, p)
		proxyAddrs[i] = p.Addr()
	}

	co, err := cluster.New(cluster.Config{
		Workers:       proxyAddrs,
		Replicas:      2,
		Placement:     map[string]string{"SP": "PNO"}, // shuffle under fire
		DialTimeout:   2 * time.Second,
		IOTimeout:     3 * time.Second,
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
		t.Fatalf("cluster load: %v", err)
	}
	if _, err := co.ExecSQL("CREATE TABLE DURABLE (K INTEGER, V INTEGER, PRIMARY KEY (K))", engine.Options{}); err != nil {
		t.Fatal(err)
	}

	// Fault schedule: hard faults only on the victim's link — the
	// surviving replicas must stay authoritative, or a row acked by the
	// victim alone would die with it. The other links get the
	// non-destructive reality (latency, split writes).
	proxies[victim].Arm(netfault.Config{
		Seed: clusterSeed, Delay: 0.05, DelayDur: 2 * time.Millisecond,
		SplitWrites: 0.25, Corrupt: 0.01, Drop: 0.01, MaxFaults: 8,
	})
	for i, p := range proxies {
		if i != victim {
			p.Arm(netfault.Config{
				Seed: clusterSeed + int64(i), Delay: 0.05, DelayDur: 2 * time.Millisecond,
				SplitWrites: 0.25,
			})
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Query load: completed results must match the oracle byte for byte;
	// failures must be typed.
	var completed, failed atomic.Int64
	const queryClients = 2
	for ci := 0; ci < queryClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				sql := clusterQueries[(ci+r)%len(clusterQueries)]
				res, err := co.ExecSQL(sql, engine.Options{Strategy: engine.TransformJA2})
				if err != nil {
					failed.Add(1)
					if !typedClusterError(err) {
						t.Errorf("query client %d: untyped error: %T %v", ci, err, err)
					}
					continue
				}
				completed.Add(1)
				if !bytes.Equal(canonSorted(res.Columns, res.Rows), oracleBytes[sql]) {
					t.Errorf("query client %d: completed %q diverges from oracle mid-storm", ci, sql)
				}
			}
		}(ci)
	}

	// DML load: sequential keys, tracking what was acked and what
	// errored. An acked key MUST survive; an errored key may or may not
	// have landed (the ack could have died on the wire).
	ackedKeys := make(map[int]bool)
	erroredKeys := make(map[int]bool)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			sql := fmt.Sprintf("INSERT INTO DURABLE VALUES (%d, %d)", k, k*7)
			if _, err := co.ExecSQL(sql, engine.Options{}); err != nil {
				erroredKeys[k] = true
				if !typedClusterError(err) {
					t.Errorf("DML key %d: untyped error: %T %v", k, err, err)
				}
				continue
			}
			ackedKeys[k] = true
		}
	}()

	// The hammer: SIGKILL the victim mid-storm, let the cluster run a
	// while without it, then restart it empty on the same address.
	time.Sleep(500 * time.Millisecond)
	if err := daemons[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemons[victim].cmd.Wait()
	time.Sleep(500 * time.Millisecond)
	daemons[victim] = startWorkerDaemon(t, bin, addrs[victim])
	time.Sleep(time.Second)
	close(stop)
	wg.Wait()

	// Disarm and let the prober heal the fleet: the restarted-empty
	// victim must come back through the snapshot rejoin.
	for _, p := range proxies {
		healProxy(p)
	}
	waitStates(t, co, "healthy", 60*time.Second)

	// Final correctness pass. A still-stale slice would be caught here —
	// either served wrong (byte-diff fails) or detected as restarted-
	// empty (failover serves the peer, the worker is re-rejoined).
	for _, sql := range clusterQueries {
		res, err := co.ExecSQL(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("post-heal %q: %v", sql, err)
		}
		if !bytes.Equal(canonSorted(res.Columns, res.Rows), oracleBytes[sql]) {
			t.Errorf("post-heal %q diverges from oracle", sql)
		}
	}
	waitStates(t, co, "healthy", 60*time.Second)

	// Durability: every acked key survived the SIGKILL, nothing appears
	// that was never sent, and no key was double-counted across shards.
	res, err := co.ExecSQL("SELECT DURABLE.K FROM DURABLE", engine.Options{})
	if err != nil {
		t.Fatalf("read DURABLE: %v", err)
	}
	got := make(map[int]int)
	for _, row := range res.Rows {
		got[int(row[0].Int())]++
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("key %d appears %d times", k, n)
		}
		if !ackedKeys[k] && !erroredKeys[k] {
			t.Errorf("ghost key %d: never sent, yet present", k)
		}
	}
	lost := 0
	for k := range ackedKeys {
		if got[k] == 0 {
			lost++
			t.Errorf("acked key %d lost after SIGKILL + rejoin", k)
		}
	}
	if n := co.SweepStaging(); n != 0 {
		t.Errorf("%d staging tables still live after heal and sweep", n)
	}
	t.Logf("failover storm: %d queries completed, %d failed typed; %d keys acked (%d lost), %d errored; victim faults injected: %d",
		completed.Load(), failed.Load(), len(ackedKeys), lost, len(erroredKeys), proxies[victim].Injected())
	if completed.Load() == 0 {
		t.Error("no query completed; the storm proved nothing")
	}
	if len(ackedKeys) == 0 {
		t.Error("no DML acked; the storm proved nothing about durability")
	}

	co.Close()
	for i, d := range daemons {
		d.cmd.Process.Kill()
		d.cmd.Wait()
		daemons[i] = nil
	}
	for _, p := range proxies {
		p.Close()
	}

	// Goroutine hygiene: pools, prober, and proxies all unwound.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after failover storm: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

