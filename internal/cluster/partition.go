// Package cluster is the coordinator/worker subsystem: heap files
// hash-partitioned by a chosen column across N engine nodes, with the
// exchange layer generalized from goroutine channels (exec.ExchangeMerge)
// to internal/wire connections. The paper's NEST-JA2 transformation is
// what makes this work: correlated nesting becomes joins on the
// correlation column, a shape that partitions cleanly by join key — so a
// distributed run is at most a 2-round shuffle (scatter rows by hash of
// the required key, then run the whole transformed plan locally on each
// shard and gather).
//
// The pieces:
//
//   - Partitioner: the NULL-safe hash routing rows to shards.
//   - Analyze: decides whether a query is distributable and derives the
//     partition key each table must be on.
//   - Coordinator: the client-facing backend (server.Backend) that owns
//     the catalog + placement map, fans DDL/DML out to the workers, and
//     runs distributable SELECTs via scatter/gather over internal/client
//     connections.
package cluster

import (
	"repro/internal/storage"
)

// Partitioner routes a row to a shard by hashing its key columns. The
// hash is value.Hash, which is Equal-consistent under NULL-safe <=>
// semantics: NULL hashes like NULL (so all-NULL keys land on one shard,
// matching the NEST-JA2 back-join's <=> conjuncts), and an integer 3
// hashes like a float 3.0 (Equal values across numeric kinds
// co-locate). That consistency is the entire correctness argument for
// co-located joins: rows that could ever compare equal on the key are
// guaranteed to be on the same shard.
//
// An empty KeyCols sends every row to shard 0 (a gather with no
// repartitioning). A key column index outside the row hashes as NULL —
// the decoder bounds indexes, and the worker validates them against the
// result columns, so this is defense in depth, not an expected path.
type Partitioner struct {
	NumShards int
	KeyCols   []int
}

// fnv64 constants, matching internal/value's hash family.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Shard returns the destination shard for row, in [0, NumShards).
func (p Partitioner) Shard(row storage.Tuple) int {
	if p.NumShards <= 1 || len(p.KeyCols) == 0 {
		return 0
	}
	h := uint64(fnvOffset)
	for _, k := range p.KeyCols {
		var hv uint64
		if k >= 0 && k < len(row) {
			hv = row[k].Hash()
		}
		// Mix each column hash FNV-style so (a, b) and (b, a) differ.
		for i := 0; i < 8; i++ {
			h ^= hv & 0xff
			h *= fnvPrime
			hv >>= 8
		}
	}
	return int(h % uint64(p.NumShards))
}
