package cluster

// Staging-table accounting. Shuffles create per-shard staging tables on
// the workers and drop them best-effort when the query ends — but a
// worker that is unreachable at cleanup time keeps its copy, silently.
// The registry records every physical staging table and the workers it
// landed on, so leaks are observable (LiveStaging, the cluster tests'
// leak probe — mirroring spill.LiveFiles) and recoverable
// (SweepStaging retries the drops once the fleet heals).

// stagingAdd records that worker w holds physical staging table phys.
func (co *Coordinator) stagingAdd(phys string, w int) {
	co.staging.Lock()
	defer co.staging.Unlock()
	set, ok := co.staging.tables[phys]
	if !ok {
		set = make(map[int]bool)
		co.staging.tables[phys] = set
	}
	set[w] = true
}

// stagingForget records that worker w no longer holds phys, dropping
// the registry entry once no worker does.
func (co *Coordinator) stagingForget(phys string, w int) {
	co.staging.Lock()
	defer co.staging.Unlock()
	set, ok := co.staging.tables[phys]
	if !ok {
		return
	}
	delete(set, w)
	if len(set) == 0 {
		delete(co.staging.tables, phys)
	}
}

// stagingHolders returns the workers currently recorded as holding phys.
func (co *Coordinator) stagingHolders(phys string) []int {
	co.staging.Lock()
	defer co.staging.Unlock()
	var out []int
	for w := range co.staging.tables[phys] {
		out = append(out, w)
	}
	return out
}

// dropStaging drops one physical staging table from every worker
// holding it, best-effort: a successful drop (or "unknown relation" —
// already gone) clears the registry entry; an unreachable worker keeps
// it, to be retried by SweepStaging.
func (co *Coordinator) dropStaging(phys string) {
	for _, w := range co.stagingHolders(phys) {
		if !co.health.live(w) {
			continue
		}
		if err := co.dropIgnoreMissing(w, phys); err == nil {
			co.stagingForget(phys, w)
		}
	}
}

// LiveStaging counts physical staging tables still registered on some
// worker. Zero after a clean query; anything else is a leak (or a dead
// worker still holding copies awaiting a sweep).
func (co *Coordinator) LiveStaging() int {
	co.staging.Lock()
	defer co.staging.Unlock()
	return len(co.staging.tables)
}

// SweepStaging retries every registered staging drop and returns the
// count still live. Chaos tests heal the fleet, sweep, and assert zero.
func (co *Coordinator) SweepStaging() int {
	co.staging.Lock()
	var names []string
	for phys := range co.staging.tables {
		names = append(names, phys)
	}
	co.staging.Unlock()
	for _, phys := range names {
		co.dropStaging(phys)
	}
	return co.LiveStaging()
}
