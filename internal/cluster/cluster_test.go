// End-to-end cluster tests: a coordinator over real worker servers,
// checked byte-for-byte against a single-node sequential oracle. In
// package cluster_test because the fixtures need internal/server, which
// itself imports internal/cluster for the worker-side partitioner.
package cluster_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/netfault"
	"repro/internal/qctx"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

const clusterSeed = 20260808

// clusterScript builds the paper's supplier schema with the data shapes
// PR 7 fought for: suppliers with no SP rows (COUNT=0 groups), NULL
// correlation keys on both sides, and enough spread that three shards
// all hold rows.
const clusterScript = `
CREATE TABLE S (SNO INTEGER, SNAME TEXT, CITY TEXT, PRIMARY KEY (SNO));
CREATE TABLE SP (SNO INTEGER, PNO INTEGER, QTY INTEGER);
INSERT INTO S VALUES
  (1, 'SMITH', 'PARIS'), (2, 'JONES', 'PARIS'), (3, 'BLAKE', 'ROME'),
  (4, 'CLARK', 'LONDON'), (5, 'ADAMS', 'ATHENS'), (6, 'IDLE', 'OSLO'),
  (7, 'NOONE', 'CAIRO'), (NULL, 'GHOST', 'LIMBO');
INSERT INTO SP VALUES
  (1, 10, 100), (1, 20, 200), (2, 10, 300), (2, 30, 400), (3, 30, 50),
  (3, 10, 60), (4, 40, 70), (5, 10, 5), (5, 20, 15), (5, 30, 25),
  (NULL, 10, 999), (NULL, 20, 888);
`

// clusterQueries are distributable shapes covering both rounds: the
// co-located fast path (correlation on the placement key SNO) and, for
// tables placed differently, the shuffle. Query 2 is the paper's
// COUNT bug territory: COUNT=0 suppliers must surface.
var clusterQueries = []string{
	"SELECT S.SNAME, S.CITY FROM S WHERE S.CITY = 'PARIS'",
	"SELECT S.SNO, S.SNAME FROM S WHERE 0 = (SELECT COUNT(SP.PNO) FROM SP WHERE SP.SNO = S.SNO)",
	"SELECT S.SNAME FROM S WHERE S.SNO IN (SELECT SP.SNO FROM SP WHERE SP.QTY > 90)",
	"SELECT S.SNAME FROM S WHERE 300 <= (SELECT SUM(SP.QTY) FROM SP WHERE SP.SNO = S.SNO)",
	"SELECT S.SNAME FROM S WHERE NOT EXISTS (SELECT SP.PNO FROM SP WHERE SP.SNO = S.SNO)",
	"SELECT S.SNAME FROM S WHERE S.SNO > ALL (SELECT SP.PNO FROM SP WHERE SP.SNO = S.SNO)",
}

// canonSorted is the byte-comparison key between a distributed gather
// and the single-node oracle: the gather concatenates shard-major, so
// both sides are put in a canonical total order first, then encoded as
// one RowBatch frame. No *testing.T — it runs inside storm goroutines.
func canonSorted(cols []string, rows []storage.Tuple) []byte {
	sorted := append([]storage.Tuple(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			c, err := value.TotalCompare(a[k], b[k])
			if err != nil {
				// Incomparable kinds: order by wire encoding, still total.
				c = bytes.Compare(wire.AppendValue(nil, a[k]), wire.AppendValue(nil, b[k]))
			}
			if c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return wire.EncodeRowBatch(wire.RowBatch{Columns: cols, Rows: sorted})
}

// startWorkers boots n empty worker engines behind real TCP servers.
func startWorkers(t *testing.T, n int, admit bool) (addrs []string, dbs []*engine.DB) {
	t.Helper()
	for i := 0; i < n; i++ {
		db := engine.New(6)
		if admit {
			db.EnableAdmission(admission.Config{
				MaxConcurrent: 4, QueueDepth: 16, PoolBytes: 8 << 20, Seed: clusterSeed + int64(i),
			})
		}
		srv := server.New(db, server.Config{
			Strategy:          engine.TransformJA2,
			BatchRows:         5,
			WriteTimeout:      2 * time.Second,
			HeartbeatInterval: 200 * time.Millisecond,
		})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(lis) }()
		t.Cleanup(func() {
			srv.Shutdown(5 * time.Second)
			if err := <-serveErr; err != nil {
				t.Errorf("worker Serve: %v", err)
			}
		})
		addrs = append(addrs, lis.Addr().String())
		dbs = append(dbs, db)
	}
	return addrs, dbs
}

// oracleDB builds the single-node reference database.
func oracleDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New(6)
	if _, err := db.Exec(clusterScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	return db
}

var clusterStrategies = []engine.Strategy{
	engine.NestedIteration, engine.TransformJA2, engine.TransformKim,
}

// TestDistributedNestJA2 is the acceptance gate: every query, under
// every strategy, on 3 workers, produces exactly the single-node
// sequential oracle's bag of rows — including the NULL-key supplier and
// the COUNT=0 groups — for both placements: co-located (SP placed on
// the correlation key SNO, pure 2-local-rounds) and misplaced (SP
// placed on PNO, forcing the shuffle round); each both unreplicated and
// at R=2, where every shard's slice lives on two workers.
func TestDistributedNestJA2(t *testing.T) {
	oracle := oracleDB(t)
	for _, tc := range []struct {
		name     string
		place    map[string]string
		replicas int
	}{
		{"co-located", map[string]string{"SP": "SNO"}, 1},
		{"shuffled", map[string]string{"SP": "PNO"}, 1},
		{"co-located-R2", map[string]string{"SP": "SNO"}, 2},
		{"shuffled-R2", map[string]string{"SP": "PNO"}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addrs, _ := startWorkers(t, 3, false)
			co, err := cluster.New(cluster.Config{
				Workers:       addrs,
				Replicas:      tc.replicas,
				Placement:     tc.place,
				IOTimeout:     10 * time.Second,
				ProbeInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer co.Close()
			if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
				t.Fatalf("cluster load: %v", err)
			}
			for _, sql := range clusterQueries {
				for _, strat := range clusterStrategies {
					want, err := oracle.Query(sql, engine.Options{Strategy: strat})
					if err != nil {
						t.Fatalf("oracle %v %q: %v", strat, sql, err)
					}
					got, err := co.ExecSQL(sql, engine.Options{Strategy: strat})
					if err != nil {
						t.Fatalf("cluster %v %q: %v", strat, sql, err)
					}
					wb := canonSorted(want.Columns, want.Rows)
					gb := canonSorted(got.Columns, got.Rows)
					if !bytes.Equal(wb, gb) {
						t.Errorf("%v %q: distributed result diverges from oracle\n  oracle: %d rows %v\n  cluster: %d rows %v",
							strat, sql, len(want.Rows), want.Rows, len(got.Rows), got.Rows)
					}
				}
			}
			if n := co.LiveStaging(); n != 0 {
				t.Errorf("%d staging tables leaked", n)
			}
		})
	}
}

// TestClusterDML checks that DML fans out and reads back coherently —
// at R=2, so every statement must land on both replicas of each shard —
// and that a dropped table disappears from every worker.
func TestClusterDML(t *testing.T) {
	addrs, _ := startWorkers(t, 3, false)
	co, err := cluster.New(cluster.Config{
		Workers: addrs, Replicas: 2, IOTimeout: 10 * time.Second, ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := co.ExecSQL("DELETE FROM SP WHERE QTY > 500", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("DELETE affected %d rows, want 2 (the NULL-key 999/888 pair)", res.Affected)
	}
	res, err = co.ExecSQL("UPDATE S SET CITY = 'LYON' WHERE CITY = 'PARIS'", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("UPDATE affected %d rows, want 2", res.Affected)
	}
	got, err := co.ExecSQL("SELECT S.SNAME FROM S WHERE S.CITY = 'LYON'", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Fatalf("post-UPDATE read: %d rows, want 2", len(got.Rows))
	}
	// Subquery DML must refuse rather than run per-shard-wrong.
	if _, err := co.ExecSQL("DELETE FROM S WHERE SNO IN (SELECT SNO FROM SP)", engine.Options{}); !errors.Is(err, cluster.ErrNotDistributable) {
		t.Fatalf("subquery DELETE: got %v, want ErrNotDistributable", err)
	}
	if _, err := co.ExecSQL("DROP TABLE SP", engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.ExecSQL("SELECT SP.SNO FROM SP", engine.Options{}); err == nil {
		t.Fatal("query against dropped table succeeded")
	}
	if n := co.LiveStaging(); n != 0 {
		t.Errorf("%d staging tables leaked", n)
	}
}

// TestClusterRejectsNonDistributable: the coordinator answers with a
// typed refusal instead of a wrong answer.
func TestClusterRejectsNonDistributable(t *testing.T) {
	addrs, _ := startWorkers(t, 2, false)
	co, err := cluster.New(cluster.Config{
		Workers: addrs, IOTimeout: 10 * time.Second, ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT COUNT(SP.PNO) FROM SP",
		"SELECT S.SNAME FROM S ORDER BY S.SNAME",
		"SELECT S.SNAME FROM S WHERE S.SNO NOT IN (SELECT SP.SNO FROM SP)",
	} {
		if _, err := co.ExecSQL(sql, engine.Options{}); !errors.Is(err, cluster.ErrNotDistributable) {
			t.Errorf("%q: got %v, want ErrNotDistributable", sql, err)
		}
	}
}

// typedClusterError is the closed list of acceptable failure shapes for
// the storm: remote (typed by the worker/front server), transport loss,
// timeout/cancel/overload taxonomy, or the coordinator's own refusal.
func typedClusterError(err error) bool {
	var re *wire.RemoteError
	var ne net.Error
	return errors.As(err, &re) ||
		errors.Is(err, client.ErrConnectionLost) ||
		errors.Is(err, cluster.ErrWorkerLost) ||
		errors.Is(err, cluster.ErrShardUnavailable) ||
		errors.Is(err, cluster.ErrNotDistributable) ||
		errors.Is(err, wire.ErrCorruptFrame) ||
		errors.Is(err, wire.ErrSlowConsumer) ||
		errors.Is(err, qctx.ErrCanceled) ||
		errors.Is(err, qctx.ErrOverloaded) ||
		errors.As(err, &ne) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// TestClusterChaosStorm is the make-cluster gate: a coordinator fronted
// by its own wire server, three workers each behind a seeded
// fault-injecting proxy, outer clients hammering distributable queries.
// Every completed result must be byte-identical (canonically sorted) to
// the single-node oracle; every failure must be typed; afterwards no
// goroutine leaks and every worker admission slot and pool lease is
// back.
func TestClusterChaosStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	oracle := oracleDB(t)
	oracleBytes := make(map[string][]byte)
	for _, sql := range clusterQueries {
		res, err := oracle.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		oracleBytes[sql] = canonSorted(res.Columns, res.Rows)
	}

	addrs, workerDBs := startWorkers(t, 3, true)

	// Each worker link runs through its own fault proxy; the proxies are
	// armed only after the data is loaded, so the storm exercises the
	// query path (scatter included) rather than a half-loaded fixture.
	var proxies []*netfault.Proxy
	proxyAddrs := make([]string, len(addrs))
	for i, addr := range addrs {
		p, err := netfault.New(addr, netfault.Config{Seed: clusterSeed + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		proxies = append(proxies, p)
		proxyAddrs[i] = p.Addr()
	}

	co, err := cluster.New(cluster.Config{
		Workers:       proxyAddrs,
		Replicas:      2, // storms ride out lost links via the peer replica
		Placement:     map[string]string{"SP": "PNO"}, // force shuffles under fire
		IOTimeout:     3 * time.Second,
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.ExecSQL(clusterScript, engine.Options{}); err != nil {
		t.Fatalf("cluster load: %v", err)
	}

	// Front the coordinator with its own server: outer clients speak the
	// same wire protocol to the cluster as they would to one node.
	front := server.NewBackend(co, server.Config{
		Strategy:     engine.TransformJA2,
		BatchRows:    5,
		WriteTimeout: 2 * time.Second,
	})
	if front.DB() != nil {
		t.Fatal("coordinator-backed server must not report a local engine")
	}
	frontLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	frontErr := make(chan error, 1)
	go func() { frontErr <- front.Serve(frontLis) }()

	// Arm the proxies now that the fixture is loaded.
	for _, p := range proxies {
		p.Arm(netfault.Config{
			Seed:        clusterSeed,
			Delay:       0.05,
			DelayDur:    2 * time.Millisecond,
			SplitWrites: 0.25,
			Corrupt:     0.01,
			Truncate:    0.01,
			Drop:        0.01,
			Partition:   0.003,
			MaxFaults:   24,
		})
	}

	const (
		clients = 4
		rounds  = 6
	)
	var completed, failed, mismatches atomic.Int64
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sql := clusterQueries[(ci+r)%len(clusterQueries)]
				c, err := client.Dial(frontLis.Addr().String(), 2*time.Second)
				if err != nil {
					failed.Add(1)
					if !typedClusterError(err) {
						t.Errorf("client %d round %d: untyped dial error: %v", ci, r, err)
					}
					continue
				}
				res, err := c.Collect(sql, client.Options{Strategy: wire.StrategyTransform})
				if err != nil {
					failed.Add(1)
					if !typedClusterError(err) {
						t.Errorf("client %d round %d: untyped error: %T %v", ci, r, err, err)
					}
				} else {
					completed.Add(1)
					if got := canonSorted(res.Columns, res.Rows); !bytes.Equal(got, oracleBytes[sql]) {
						mismatches.Add(1)
						t.Errorf("client %d round %d %q: completed distributed result differs from single-node oracle", ci, r, sql)
					}
				}
				c.Close()
			}
		}(ci)
	}
	wg.Wait()

	// Heal the links and let the prober repair the fleet: suspect workers
	// probe back to healthy, dead workers rejoin from a live replica's
	// snapshot. Stale partitioned conns in the pools cost one IOTimeout
	// each to flush out, so give the fleet a generous deadline.
	for _, p := range proxies {
		p.Arm(netfault.Config{})
	}
	healDeadline := time.Now().Add(60 * time.Second)
	for {
		states := co.WorkerStates()
		healthy := 0
		for _, s := range states {
			if s == "healthy" {
				healthy++
			}
		}
		if healthy == len(states) {
			break
		}
		if time.Now().After(healDeadline) {
			t.Fatalf("fleet never healed after the storm: %v", states)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := co.SweepStaging(); n != 0 {
		t.Errorf("%d staging tables still live after the fleet healed and a sweep", n)
	}

	var injected int64
	for _, p := range proxies {
		injected += p.Injected()
		if err := p.Close(); err != nil {
			t.Errorf("proxy close: %v", err)
		}
	}
	t.Logf("cluster storm: %d completed, %d failed typed, %d injected worker-link faults",
		completed.Load(), failed.Load(), injected)
	if completed.Load() == 0 {
		t.Error("no query completed; the storm proved nothing about distributed integrity")
	}
	if injected == 0 {
		t.Error("no fault injected on the worker links; the storm proved nothing about partition tolerance")
	}
	if mismatches.Load() > 0 {
		t.Errorf("%d completed distributed results diverged from the oracle", mismatches.Load())
	}

	// Worker quiescence: every admission slot and pool lease released.
	for i, db := range workerDBs {
		deadline := time.Now().Add(15 * time.Second)
		for {
			st := db.Admission().Stats()
			if st.Running == 0 && st.Waiting == 0 && st.PoolUsed == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d admission never quiesced: %+v", i, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	if err := front.Shutdown(5 * time.Second); err != nil {
		t.Errorf("front Shutdown: %v", err)
	}
	if err := <-frontErr; err != nil {
		t.Errorf("front Serve: %v", err)
	}
	co.Close()

	// Goroutine hygiene: workers shut down via t.Cleanup afterwards, so
	// allow their server goroutines; poll only back to baseline plus the
	// still-running worker servers' accept/session loops.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+3*4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after cluster storm: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
