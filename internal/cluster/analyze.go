package cluster

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// ErrNotDistributable marks a query the coordinator must not scatter.
// Every rejection wraps it, so callers test with errors.Is and fall back
// to a designated single node (or report the reason).
var ErrNotDistributable = errors.New("cluster: query is not distributable")

func notDistributable(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNotDistributable, fmt.Sprintf(format, args...))
}

// Analyze decides whether a resolved query block tree can run as a
// co-located distributed plan — every shard evaluates the whole query
// over its local slices and the coordinator concatenates — and, if so,
// returns the placement each relation requires: a map from UPPER(table)
// to UPPER(partition column), where "" means any placement works (a
// single-table scan is a union of shard scans no matter how the rows
// were split).
//
// The soundness argument has three legs, each enforced here:
//
//  1. Per-table key consistency. Every cross-binding equality (an
//     equijoin conjunct, a correlation conjunct, or the implicit
//     equality of a non-negated IN) demands its column be the table's
//     partition key. Two conjuncts demanding different keys for one
//     table cannot both be co-located — reject.
//
//  2. Join-graph connectivity. Equalities force equal hash — and thus
//     equal shard — on both sides (value.Hash is Equal-consistent,
//     NULL-safe included). If the equality graph over ALL bindings in
//     the tree is connected, every combination of rows that could
//     satisfy the query lies on one shard, so per-shard evaluation
//     misses nothing; a disconnected binding (an uncorrelated subquery,
//     a cross join) could pair rows across shards — reject.
//
//  3. Set-complete negation. NOT EXISTS and quantified ALL evaluate a
//     per-outer-row set that legs 1–2 prove is entirely on the outer
//     row's shard, so they distribute. NOT IN does not: its inner set
//     is defined by the IN column itself, and an inner NULL — which
//     poisons NOT IN globally — hashes to the NULL shard, invisible to
//     outer rows elsewhere. Negated IN is rejected outright.
//
// The top block must be a plain select-project (no DISTINCT, GROUP BY,
// HAVING, ORDER BY, or aggregates): the gather is a concatenation, and
// per-shard versions of those operators are not their global versions.
// Inner blocks are unrestricted — their evaluation sets are co-located,
// so any local computation over them (aggregates included, which is
// what makes NEST-JA2's per-group COUNT/AVG distribute) is exact.
func Analyze(qb *ast.QueryBlock) (map[string]string, error) {
	if qb == nil {
		return nil, notDistributable("empty query")
	}
	switch {
	case qb.Distinct:
		return nil, notDistributable("top-level DISTINCT needs a global dedup")
	case len(qb.GroupBy) > 0 || len(qb.Having) > 0:
		return nil, notDistributable("top-level GROUP BY groups span shards")
	case len(qb.OrderBy) > 0:
		return nil, notDistributable("top-level ORDER BY needs a global sort")
	case qb.HasAggregate():
		return nil, notDistributable("top-level aggregates span shards")
	}
	a := &analyzer{keys: make(map[string]string)}
	if _, err := a.block(qb, nil); err != nil {
		return nil, err
	}
	if err := a.connected(); err != nil {
		return nil, err
	}
	out := make(map[string]string, len(a.tables))
	for _, t := range a.tables {
		out[t] = a.keys[t] // "" when the table never needed a key
	}
	return out, nil
}

// scopeFrame maps UPPER(binding name) to binding id for one FROM clause.
type scopeFrame map[string]int

type analyzer struct {
	keys    map[string]string // UPPER(table) -> UPPER(required key column)
	tables  []string          // distinct UPPER(table) names, first-seen order
	bindTab []string          // binding id -> UPPER(table)
	parent  []int             // union-find over binding ids
}

func (a *analyzer) newBinding(table string) int {
	id := len(a.parent)
	a.parent = append(a.parent, id)
	a.bindTab = append(a.bindTab, table)
	if _, ok := a.keys[table]; !ok {
		a.keys[table] = ""
		a.tables = append(a.tables, table)
	}
	return id
}

func (a *analyzer) find(x int) int {
	for a.parent[x] != x {
		a.parent[x] = a.parent[a.parent[x]]
		x = a.parent[x]
	}
	return x
}

func (a *analyzer) union(x, y int) { a.parent[a.find(x)] = a.find(y) }

func (a *analyzer) connected() error {
	if len(a.parent) <= 1 {
		return nil
	}
	root := a.find(0)
	for i := 1; i < len(a.parent); i++ {
		if a.find(i) != root {
			return notDistributable("table %s is not joined to the rest by an equality; rows could pair across shards", a.bindTab[i])
		}
	}
	return nil
}

// block analyzes one query block against the enclosing scope chain and
// returns the block's own frame (for IN-link extraction by the caller).
func (a *analyzer) block(qb *ast.QueryBlock, scope []scopeFrame) (scopeFrame, error) {
	if len(qb.From) == 0 {
		return nil, notDistributable("block has no FROM clause")
	}
	frame := make(scopeFrame, len(qb.From))
	for _, t := range qb.From {
		frame[strings.ToUpper(t.Binding())] = a.newBinding(strings.ToUpper(t.Relation))
	}
	inner := append(append([]scopeFrame(nil), scope...), frame)
	for _, p := range qb.Where {
		if err := a.pred(p, inner); err != nil {
			return nil, err
		}
	}
	return frame, nil
}

// resolve finds the binding id for a qualified column reference,
// innermost frame first (matching schema resolution's scoping).
func resolve(ref ast.ColumnRef, scope []scopeFrame) (int, bool) {
	if ref.Table == "" {
		return 0, false
	}
	up := strings.ToUpper(ref.Table)
	for i := len(scope) - 1; i >= 0; i-- {
		if id, ok := scope[i][up]; ok {
			return id, true
		}
	}
	return 0, false
}

// link records the co-location demand of an equality between two
// bindings' columns: each table's partition key must be that column,
// and the two bindings land in one join-graph component.
func (a *analyzer) link(lid int, lcol string, rid int, rcol string) error {
	if err := a.setKey(lid, lcol); err != nil {
		return err
	}
	if err := a.setKey(rid, rcol); err != nil {
		return err
	}
	a.union(lid, rid)
	return nil
}

func (a *analyzer) setKey(bid int, col string) error {
	table := a.bindTab[bid]
	up := strings.ToUpper(col)
	if have := a.keys[table]; have != "" && have != up {
		return notDistributable("table %s would need partitioning on both %s and %s", table, have, up)
	}
	a.keys[table] = up
	return nil
}

func (a *analyzer) pred(p ast.Predicate, scope []scopeFrame) error {
	switch p := p.(type) {
	case *ast.Comparison:
		return a.comparison(p, scope)
	case *ast.InPred:
		if p.Negated {
			return notDistributable("NOT IN: an inner NULL on another shard would flip the result")
		}
		subFrame, err := a.block(p.Sub, scope)
		if err != nil {
			return err
		}
		// The IN itself is an equality between the left column and the
		// subquery's output column; when both are plain columns, that
		// equality is a co-location link just like an equijoin. Other
		// shapes (constant left, aggregate output) contribute no link,
		// and the subquery must then be tied in by its own correlation —
		// connectivity rejects it otherwise.
		left, lok := p.Left.(ast.ColumnRef)
		if !lok || len(p.Sub.Select) != 1 || p.Sub.Select[0].IsAggregate() {
			return nil
		}
		out := p.Sub.Select[0].Col
		rid, rok := resolve(out, []scopeFrame{subFrame})
		lid, lok := resolve(left, scope)
		if !rok || !lok {
			return nil
		}
		return a.link(lid, left.Column, rid, out.Column)
	case *ast.ExistsPred:
		_, err := a.block(p.Sub, scope)
		return err
	case *ast.QuantPred:
		if _, ok := p.Left.(*ast.Subquery); ok {
			return notDistributable("subquery on both sides of a quantified comparison")
		}
		_, err := a.block(p.Sub, scope)
		return err
	case *ast.OrPred, *ast.AndPred, *ast.NotPred:
		return a.boolean(p, scope)
	default:
		return notDistributable("unsupported predicate %T", p)
	}
}

func (a *analyzer) comparison(p *ast.Comparison, scope []scopeFrame) error {
	// Subquery sides recurse; their correlation conjuncts carry the
	// links. A scalar subquery with no correlation stays disconnected
	// and is rejected by connectivity — correctly, since its value
	// depends on rows the shard cannot see.
	for _, side := range []ast.Expr{p.Left, p.Right} {
		if sq, ok := side.(*ast.Subquery); ok {
			if _, err := a.block(sq.Block, scope); err != nil {
				return err
			}
		}
	}
	lref, lok := p.Left.(ast.ColumnRef)
	rref, rok := p.Right.(ast.ColumnRef)
	if !lok || !rok {
		return nil // column-vs-constant or subquery side: local filter
	}
	lid, lr := resolve(lref, scope)
	rid, rr := resolve(rref, scope)
	if !lr || !rr {
		return notDistributable("unresolved column reference %s", cond(lr, rref, lref).String())
	}
	if lid == rid {
		return nil // same binding: row-local filter
	}
	if p.Op != value.OpEq && p.Op != value.OpEqNull {
		return notDistributable("cross-table %s comparison cannot be co-located by hash", p.Op)
	}
	return a.link(lid, lref.Column, rid, rref.Column)
}

func cond(useA bool, a, b ast.ColumnRef) ast.ColumnRef {
	if useA {
		return a
	}
	return b
}

// boolean handles OR / NOT / nested AND conjuncts: allowed only as a
// row-local filter — no subqueries inside, and every column it touches
// from one binding. Anything wider would need cross-shard reasoning
// under negation, which concatenation-gather cannot do.
func (a *analyzer) boolean(p ast.Predicate, scope []scopeFrame) error {
	if len(ast.SubqueriesOf(p)) > 0 {
		return notDistributable("OR/NOT over a subquery")
	}
	refs := booleanRefs(p)
	seen := -1
	for _, ref := range refs {
		id, ok := resolve(ref, scope)
		if !ok {
			return notDistributable("unresolved column reference %s", ref.String())
		}
		if seen == -1 {
			seen = id
		} else if id != seen {
			return notDistributable("OR/NOT spans more than one table")
		}
	}
	return nil
}

func booleanRefs(p ast.Predicate) []ast.ColumnRef {
	var out []ast.ColumnRef
	add := func(e ast.Expr) {
		if c, ok := e.(ast.ColumnRef); ok {
			out = append(out, c)
		}
	}
	switch p := p.(type) {
	case *ast.Comparison:
		add(p.Left)
		add(p.Right)
	case *ast.InPred:
		add(p.Left)
	case *ast.QuantPred:
		add(p.Left)
	case *ast.OrPred:
		out = append(out, booleanRefs(p.Left)...)
		out = append(out, booleanRefs(p.Right)...)
	case *ast.AndPred:
		out = append(out, booleanRefs(p.Left)...)
		out = append(out, booleanRefs(p.Right)...)
	case *ast.NotPred:
		out = append(out, booleanRefs(p.P)...)
	}
	return out
}
