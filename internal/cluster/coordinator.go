package cluster

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers are the addresses of the worker nestedsqld instances. The
	// slice order defines shard numbering: shard i's primary is
	// Workers[i], its replicas the next R-1 workers round-robin.
	Workers []string
	// Replicas is the copy count R per shard (0 or 1 = unreplicated).
	// Must not exceed len(Workers).
	Replicas int
	// Placement overrides the partition column per table (UPPER names).
	// A table not listed defaults to its first primary-key column, or
	// its first column when no key is declared.
	Placement map[string]string
	// DialTimeout bounds each worker dial + handshake (0 = client default).
	DialTimeout time.Duration
	// IOTimeout bounds each per-frame wait on worker connections.
	IOTimeout time.Duration
	// InsertBatch bounds rows per INSERT statement when routing loads
	// and flushing shuffles (0 = 256).
	InsertBatch int
	// PoolIdle bounds idle pooled connections per worker (0 = 4).
	PoolIdle int
	// ProbeInterval is the health prober's cadence: suspect workers are
	// probe-dialed back to healthy, dead workers are automatically
	// rejoined via snapshot re-ship (0 = 1s, negative = no prober).
	ProbeInterval time.Duration
}

func (c Config) insertBatch() int {
	if c.InsertBatch <= 0 {
		return 256
	}
	return c.InsertBatch
}

func (c Config) replicas() int {
	if c.Replicas <= 1 {
		return 1
	}
	return c.Replicas
}

// Coordinator is the cluster's client-facing backend: it owns the
// catalog mirror and the placement map, fans DDL and DML out to all
// replicas of each shard, and runs distributable SELECTs as
// scatter/gather plans with per-shard failover. It implements
// server.Backend, so cmd/nestedsqld can serve it behind the same wire
// protocol a single-node engine uses.
//
// Each logical table T materializes as one physical table per shard,
// T__S<i>, present on every replica of shard i — a worker hosting R
// shards holds R such slices, and round 2 runs per shard against one
// live replica of that slice. SELECTs share an RWMutex read lock (the
// per-worker connection pools make concurrent statements real work, not
// just interleaved waits); DDL, DML, and rejoins take the write lock.
type Coordinator struct {
	cfg      Config
	nshards  int
	replicas int

	pools  []*client.Pool
	health *healthTracker

	mu    sync.RWMutex // catalog + placement: RLock SELECT, Lock DDL/DML/rejoin
	cat   *schema.Catalog
	place map[string]string // UPPER(table) -> UPPER(partition column)

	qid       atomic.Uint64 // staging-name counter
	runToken  string        // per-run nonce in staging names
	perWorker []int64       // round-2 gathers served, atomic

	staging struct {
		sync.Mutex
		tables map[string]map[int]bool // physical staging table -> workers holding it
	}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New dials every worker once to verify it is reachable and granted the
// cluster feature (only servers fronting a local engine do), then
// starts the health prober. Bootstrap needs the full fleet; failover
// covers workers lost after that.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	if cfg.replicas() > len(cfg.Workers) {
		return nil, fmt.Errorf("cluster: %d replicas need at least %d workers, have %d",
			cfg.replicas(), cfg.replicas(), len(cfg.Workers))
	}
	co := &Coordinator{
		cfg:       cfg,
		nshards:   len(cfg.Workers),
		replicas:  cfg.replicas(),
		cat:       schema.NewCatalog(),
		place:     make(map[string]string),
		health:    newHealthTracker(len(cfg.Workers)),
		runToken:  newRunToken(),
		perWorker: make([]int64, len(cfg.Workers)),
		stop:      make(chan struct{}),
	}
	co.staging.tables = make(map[string]map[int]bool)
	opts := client.DialOptions{Timeout: cfg.DialTimeout, IOTimeout: cfg.IOTimeout}
	for _, addr := range cfg.Workers {
		co.pools = append(co.pools, client.NewPool(addr, opts, cfg.PoolIdle))
	}
	for w := range co.pools {
		conn, err := co.getConn(w)
		if err != nil {
			co.Close()
			return nil, err
		}
		co.pools[w].Put(conn)
	}
	if interval := cfg.ProbeInterval; interval >= 0 {
		if interval == 0 {
			interval = time.Second
		}
		co.wg.Add(1)
		go co.probeLoop(interval)
	}
	return co, nil
}

// Close stops the prober and drops every pooled worker connection.
func (co *Coordinator) Close() error {
	co.stopOnce.Do(func() { close(co.stop) })
	co.wg.Wait()
	for _, p := range co.pools {
		p.Close()
	}
	return nil
}

// Drain satisfies server.Backend. The coordinator holds no queries of
// its own — in-flight statements finish under the statement lock, and
// the workers drain their engines during their own shutdowns.
func (co *Coordinator) Drain(time.Duration) error { return nil }

// NumWorkers returns the worker (and shard) count.
func (co *Coordinator) NumWorkers() int { return len(co.cfg.Workers) }

// Replicas returns the configured copy count per shard.
func (co *Coordinator) Replicas() int { return co.replicas }

// WorkerStates returns every worker's failover state name
// (healthy/suspect/dead/rejoining), index-aligned with Config.Workers.
func (co *Coordinator) WorkerStates() []string { return co.health.snapshot() }

// GatherCounts returns how many round-2 shard queries each worker has
// served, for load reporting (benchpaper's per-node q/s).
func (co *Coordinator) GatherCounts() []int64 {
	out := make([]int64, len(co.perWorker))
	for i := range out {
		out[i] = atomic.LoadInt64(&co.perWorker[i])
	}
	return out
}

// physName is the shard-suffixed physical table backing one shard's
// slice of a logical table. The "__" namespace is reserved at CREATE,
// so physical names can never collide with user tables.
func physName(table string, shard int) string {
	return fmt.Sprintf("%s__S%d", table, shard)
}

// newRunToken returns an identifier-safe nonce distinguishing this
// coordinator incarnation's staging tables from any prior run's.
func newRunToken() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return strings.ToUpper(hex.EncodeToString(b[:]))
}

// replicasOf lists the workers hosting shard s: the primary s and the
// next replicas-1 workers round-robin.
func (co *Coordinator) replicasOf(s int) []int {
	out := make([]int, co.replicas)
	for j := range out {
		out[j] = (s + j) % co.nshards
	}
	return out
}

// hostedShards lists the shards whose slices worker w holds.
func (co *Coordinator) hostedShards(w int) []int {
	out := make([]int, co.replicas)
	for j := range out {
		out[j] = (w - j + co.nshards) % co.nshards
	}
	return out
}

// getConn checks a connection to worker w out of its pool. Failures are
// transport-class by construction (dial refusal, handshake loss), so
// they count against the breaker and come back as *WorkerLostError.
func (co *Coordinator) getConn(w int) (*client.Conn, error) {
	conn, err := co.pools[w].Get()
	if err == nil && !conn.Cluster() {
		co.pools[w].Discard(conn)
		err = errors.New("did not grant the cluster feature")
	}
	if err != nil {
		co.health.markFailure(w)
		return nil, &WorkerLostError{Worker: w, Addr: co.pools[w].Addr(), Cause: err}
	}
	return conn, nil
}

// collect runs one statement on worker w through its pool, classifying
// the outcome: transport failures discard the conn, trip the breaker,
// and come back as *WorkerLostError; typed answers return the conn and
// pass through untouched.
func (co *Coordinator) collect(w int, sql string) (*client.Result, error) {
	conn, err := co.getConn(w)
	if err != nil {
		return nil, err
	}
	res, err := conn.Collect(sql, client.Options{Timeout: co.cfg.IOTimeout})
	if err != nil {
		if transportFailure(err) {
			co.pools[w].Discard(conn)
			co.health.markFailure(w)
			return nil, &WorkerLostError{Worker: w, Addr: co.pools[w].Addr(), Cause: err}
		}
		co.pools[w].Put(conn)
		return nil, err
	}
	co.pools[w].Put(conn)
	co.health.markSuccess(w)
	return res, nil
}

// ExecSQL runs a script of statements against the cluster, mirroring
// engine.Exec's contract: the result is the last SELECT's, Affected
// accumulates DML counts, and a failing statement aborts the script
// with prior statements applied. SELECTs share the read lock; DDL and
// DML serialize under the write lock.
func (co *Coordinator) ExecSQL(sql string, opts engine.Options) (*engine.Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *engine.Result
	var affected int64
	for _, stmt := range stmts {
		if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
			co.mu.RLock()
			res, err := co.query(sel.Query, opts)
			co.mu.RUnlock()
			if err != nil {
				return nil, err
			}
			last = res
			continue
		}
		co.mu.Lock()
		n, err := co.execWrite(stmt)
		co.mu.Unlock()
		if err != nil {
			return nil, err
		}
		affected += n
	}
	if last == nil {
		last = &engine.Result{Strategy: opts.Strategy}
	}
	last.Affected = affected
	return last, nil
}

// execWrite dispatches one non-SELECT statement under the write lock.
func (co *Coordinator) execWrite(stmt sqlparser.Statement) (int64, error) {
	switch stmt := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		return 0, co.execCreate(stmt.Relation)
	case *sqlparser.InsertStmt:
		return co.execInsert(stmt)
	case *sqlparser.DeleteStmt:
		return co.execFilterDML(stmt.Table, stmt.Where, stmt)
	case *sqlparser.UpdateStmt:
		return co.execFilterDML(stmt.Table, stmt.Where, stmt)
	case *sqlparser.DropTableStmt:
		return 0, co.execDrop(stmt.Table)
	default:
		return 0, fmt.Errorf("cluster: unsupported statement %T", stmt)
	}
}

// execCreate defines the relation in the catalog mirror, picks its
// placement column, and creates each shard's physical slice on every
// live replica of that shard. A replica that drops its link mid-CREATE
// is marked dead (it missed DDL another replica applied) rather than
// failing the statement — as long as every shard lands on at least one
// replica.
func (co *Coordinator) execCreate(rel *schema.Relation) error {
	if strings.Contains(rel.Name, "__") {
		return fmt.Errorf("cluster: table name %s collides with the reserved __ shard namespace", rel.Name)
	}
	if err := co.cat.Define(rel); err != nil {
		return err
	}
	up := strings.ToUpper(rel.Name)
	place := ""
	if p, ok := co.cfg.Placement[up]; ok {
		if rel.ColumnIndex(p) < 0 {
			co.cat.Drop(rel.Name)
			return fmt.Errorf("cluster: placement column %s does not exist in %s", p, rel.Name)
		}
		place = strings.ToUpper(p)
	} else if len(rel.Key) > 0 {
		place = strings.ToUpper(rel.Key[0])
	} else {
		place = strings.ToUpper(rel.Columns[0].Name)
	}
	type site struct{ w, s int }
	var created []site
	undo := func() {
		for _, c := range created {
			co.dropIgnoreMissing(c.w, physName(rel.Name, c.s))
		}
		co.cat.Drop(rel.Name)
	}
	for s := 0; s < co.nshards; s++ {
		acks := 0
		var lastErr error
		for _, w := range co.replicasOf(s) {
			if !co.health.live(w) {
				continue
			}
			srel := &schema.Relation{Name: physName(rel.Name, s), Columns: rel.Columns, Key: rel.Key}
			if _, err := co.collect(w, RenderCreate(srel)); err != nil {
				if transportFailure(err) {
					// This replica missed DDL its peers applied: diverged.
					co.health.markDead(w)
					lastErr = err
					continue
				}
				undo()
				return err
			}
			created = append(created, site{w, s})
			acks++
		}
		if acks == 0 {
			undo()
			if lastErr != nil {
				return fmt.Errorf("%w %d: %w", ErrShardUnavailable, s, lastErr)
			}
			return fmt.Errorf("%w %d", ErrShardUnavailable, s)
		}
	}
	co.place[up] = place
	return nil
}

// execInsert coerces each row's literals against the schema — hashing
// must see the value a worker will store, not the raw literal, or a
// DATE partition key would land rows on the wrong shard — then routes
// every row to its shard and fans each shard's rows out to all live
// replicas synchronously: the client's ack means every live replica
// logged the rows.
func (co *Coordinator) execInsert(stmt *sqlparser.InsertStmt) (int64, error) {
	rel, ok := co.cat.Lookup(stmt.Table)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown relation %s", stmt.Table)
	}
	pidx := rel.ColumnIndex(co.place[strings.ToUpper(rel.Name)])
	if pidx < 0 {
		return 0, fmt.Errorf("cluster: relation %s has no placement column", rel.Name)
	}
	part := Partitioner{NumShards: co.nshards, KeyCols: []int{pidx}}
	routed := make([][][]value.Value, co.nshards)
	for _, row := range stmt.Rows {
		if len(row) != len(rel.Columns) {
			return 0, fmt.Errorf("cluster: INSERT row has %d values, %s has %d columns",
				len(row), rel.Name, len(rel.Columns))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			cv, err := engine.CoerceInsertValue(v, rel.Columns[i].Type)
			if err != nil {
				return 0, fmt.Errorf("cluster: column %s of %s: %w", rel.Columns[i].Name, rel.Name, err)
			}
			t[i] = cv
		}
		d := part.Shard(t)
		routed[d] = append(routed[d], t)
	}
	write := func(w, s int) (int64, error) {
		return co.insertRows(w, physName(rel.Name, s), routed[s])
	}
	return co.fanOutWrite(routed, write)
}

// fanOutWrite runs one write per (shard, live replica) concurrently and
// settles each shard: at least one ack commits the shard (its row count
// counted once); a replica that failed while a peer acked has diverged
// and is marked dead; a shard with zero acks fails the statement.
func (co *Coordinator) fanOutWrite(routed [][][]value.Value, write func(w, s int) (int64, error)) (int64, error) {
	type attempt struct {
		w, s int
		n    int64
		err  error
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	attempts := make(map[int][]*attempt) // shard -> replica attempts
	for s := 0; s < co.nshards; s++ {
		if routed != nil && len(routed[s]) == 0 {
			continue
		}
		for _, w := range co.replicasOf(s) {
			if !co.health.live(w) {
				continue
			}
			a := &attempt{w: w, s: s}
			mu.Lock()
			attempts[s] = append(attempts[s], a)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.n, a.err = write(a.w, a.s)
			}()
		}
	}
	wg.Wait()
	var affected int64
	for s := 0; s < co.nshards; s++ {
		as := attempts[s]
		if routed != nil && len(routed[s]) == 0 {
			continue
		}
		if len(as) == 0 {
			return affected, fmt.Errorf("%w %d", ErrShardUnavailable, s)
		}
		acked := false
		var firstErr error
		for _, a := range as {
			if a.err == nil && !acked {
				affected += a.n
				acked = true
			} else if a.err != nil && firstErr == nil {
				firstErr = a.err
			}
		}
		if !acked {
			return affected, firstErr
		}
		for _, a := range as {
			if a.err != nil {
				// A peer acked what this replica missed: it has diverged
				// and must rejoin from a snapshot before serving again.
				co.health.markDead(a.w)
			}
		}
	}
	return affected, nil
}

// insertRows flushes rows to one worker's physical table in
// InsertBatch-sized chunks.
func (co *Coordinator) insertRows(worker int, table string, rows [][]value.Value) (int64, error) {
	var n int64
	batch := co.cfg.insertBatch()
	for len(rows) > 0 {
		chunk := rows
		if len(chunk) > batch {
			chunk = chunk[:batch]
		}
		rows = rows[len(chunk):]
		stmt := &sqlparser.InsertStmt{Table: table, Rows: chunk}
		res, err := co.collect(worker, stmt.String())
		if err != nil {
			return n, err
		}
		n += res.Done.Rows
	}
	return n, nil
}

// execFilterDML fans a DELETE or UPDATE whose WHERE clause is row-local
// out to every live replica of every shard, rewritten per shard against
// the physical table. Subqueries are rejected: their evaluation would
// see only each shard's slice, deleting (or keeping) the wrong rows.
// Affected counts one replica per shard — the copies are identical.
func (co *Coordinator) execFilterDML(table string, where []ast.Predicate, stmt sqlparser.Statement) (int64, error) {
	if _, ok := co.cat.Lookup(table); !ok {
		return 0, fmt.Errorf("cluster: unknown relation %s", table)
	}
	for _, p := range where {
		if len(ast.SubqueriesOf(p)) > 0 {
			return 0, notDistributable("DELETE/UPDATE with a subquery would evaluate it per-shard")
		}
	}
	sqls := make([]string, co.nshards)
	for s := range sqls {
		sqls[s] = renderShardDML(stmt, s)
	}
	write := func(w, s int) (int64, error) {
		res, err := co.collect(w, sqls[s])
		if err != nil {
			return 0, err
		}
		return res.Done.Rows, nil
	}
	return co.fanOutWrite(nil, write)
}

// renderShardDML rewrites a single-table DELETE/UPDATE against one
// shard's physical table. Column qualifiers are stripped: DML with a
// subquery is refused, so every reference belongs to the one renamed
// table and an unqualified name is unambiguous.
func renderShardDML(stmt sqlparser.Statement, shard int) string {
	switch st := stmt.(type) {
	case *sqlparser.DeleteStmt:
		out := &sqlparser.DeleteStmt{Table: physName(st.Table, shard), Where: stripQualifiers(st.Where)}
		return out.String()
	case *sqlparser.UpdateStmt:
		out := &sqlparser.UpdateStmt{Table: physName(st.Table, shard), Set: st.Set, Where: stripQualifiers(st.Where)}
		return out.String()
	default:
		panic(fmt.Sprintf("cluster: renderShardDML on %T", stmt))
	}
}

// stripQualifiers deep-copies the predicates with every column's table
// qualifier cleared.
func stripQualifiers(where []ast.Predicate) []ast.Predicate {
	if len(where) == 0 {
		return nil
	}
	out := make([]ast.Predicate, len(where))
	for i, p := range where {
		out[i] = ast.ClonePredicate(p)
	}
	qb := &ast.QueryBlock{Where: out}
	qb.RewriteLocalColumns(func(c ast.ColumnRef) ast.ColumnRef {
		c.Table = ""
		return c
	})
	return out
}

// execDrop removes every shard slice from every live replica. Transport
// failures mark the replica dead and move on — the table is gone from
// the catalog either way, and a rejoin rebuilds only cataloged tables.
func (co *Coordinator) execDrop(table string) error {
	rel, ok := co.cat.Lookup(table)
	if !ok {
		return fmt.Errorf("cluster: unknown relation %s", table)
	}
	for s := 0; s < co.nshards; s++ {
		for _, w := range co.replicasOf(s) {
			if !co.health.live(w) {
				continue
			}
			if err := co.dropIgnoreMissing(w, physName(rel.Name, s)); err != nil {
				if transportFailure(err) {
					co.health.markDead(w)
					continue
				}
				return err
			}
		}
	}
	co.cat.Drop(table)
	delete(co.place, strings.ToUpper(table))
	return nil
}

// dropIgnoreMissing drops one physical table on one worker, treating
// "unknown relation" as success (already gone).
func (co *Coordinator) dropIgnoreMissing(w int, phys string) error {
	_, err := co.collect(w, "DROP TABLE "+phys)
	if err != nil && unknownRelation(err) {
		return nil
	}
	return err
}

// query runs one SELECT as a distributed plan:
//
//	round 1 (only when some table's placement differs from the key the
//	         query requires): shuffle — each shard's slice scatters
//	         partitioned by the required key, and the coordinator lands
//	         the rows in per-shard staging tables on every replica;
//	round 2: the query — rewritten per shard over the physical tables —
//	         runs whole against one live replica of each shard, failing
//	         over to the next replica on a lost link, and the per-shard
//	         results are concatenated in shard order.
//
// Analyze proves the concatenation equals the single-node result; a
// query it rejects fails with ErrNotDistributable rather than running
// wrong.
func (co *Coordinator) query(qb *ast.QueryBlock, opts engine.Options) (*engine.Result, error) {
	outs, err := schema.Resolve(co.cat, qb)
	if err != nil {
		return nil, err
	}
	req, err := Analyze(qb)
	if err != nil {
		return nil, err
	}

	// okBy[s][w]: replica w of shard s holds everything round 2 needs —
	// shuffles knock out replicas that missed a staging landing.
	okBy := make([][]bool, co.nshards)
	for s := range okBy {
		okBy[s] = make([]bool, co.nshards)
		for w := range okBy[s] {
			okBy[s][w] = true
		}
	}
	staged := make(map[string]string) // UPPER(table) -> staging logical name
	var stagedPhys []string
	defer func() {
		for _, phys := range stagedPhys {
			co.dropStaging(phys)
		}
	}()
	for table, col := range req {
		if col == "" || col == co.place[table] {
			continue // co-located (or placement-independent) already
		}
		sname, phys, err := co.shuffle(table, col, opts, okBy)
		stagedPhys = append(stagedPhys, phys...)
		if err != nil {
			return nil, err
		}
		staged[table] = sname
	}

	// Rewrite once per shard: record every table reference and its
	// logical target, pin the binding name so column references still
	// resolve, then rename serially and render each shard's SQL before
	// any of them dispatches.
	type refSite struct {
		ref     *ast.TableRef
		logical string
	}
	var sites []refSite
	ast.VisitBlocks(qb, func(b *ast.QueryBlock, _ int) bool {
		for i := range b.From {
			t := &b.From[i]
			logical := t.Relation
			if sname, ok := staged[strings.ToUpper(t.Relation)]; ok {
				logical = sname
			}
			t.Alias = t.Binding()
			sites = append(sites, refSite{t, logical})
		}
		return true
	})
	sqls := make([]string, co.nshards)
	for s := range sqls {
		for _, site := range sites {
			site.ref.Relation = physName(site.logical, s)
		}
		sqls[s] = qb.String()
	}

	cols := make([]string, len(outs))
	for i, o := range outs {
		cols[i] = o.Name
	}
	return co.gather(sqls, cols, opts, okBy)
}

// shuffle re-partitions one table by the required key into fresh
// per-shard staging tables on every replica (round 1). Each shard's
// slice is scattered from one live replica — failing over like a
// gather — and every landed row fans out to all replicas of its
// destination shard, so round 2 can fail over too. Returns the staging
// logical name and every physical staging table created (for cleanup,
// even on error).
func (co *Coordinator) shuffle(table, keyCol string, opts engine.Options, okBy [][]bool) (string, []string, error) {
	rel, ok := co.cat.Lookup(table)
	if !ok {
		return "", nil, fmt.Errorf("cluster: unknown relation %s", table)
	}
	kidx := rel.ColumnIndex(keyCol)
	if kidx < 0 {
		return "", nil, fmt.Errorf("cluster: relation %s has no column %s", rel.Name, keyCol)
	}
	// The run token keeps staging names from a previous coordinator
	// incarnation out of play: staging DDL is durable on the workers and
	// cleanup is best-effort, so a counter alone — restarting at 1 —
	// would collide with a remnant leaked by a crashed run.
	sname := fmt.Sprintf("%s__X%s_%d", rel.Name, co.runToken, co.qid.Add(1))

	// Create the staging slices. A replica that cannot take its slice is
	// excluded from this query's round-2 candidates for that shard, not
	// failed — replication exists to absorb exactly this.
	var phys []string
	for d := 0; d < co.nshards; d++ {
		pname := physName(sname, d)
		// Key columns survive re-partitioning (a per-shard subset of a
		// globally unique key is still unique), and keeping them
		// preserves the planner's duplicate-safety reasoning.
		srel := &schema.Relation{Name: pname, Columns: rel.Columns, Key: rel.Key}
		acks := 0
		for _, w := range co.replicasOf(d) {
			if !co.health.live(w) {
				okBy[d][w] = false
				continue
			}
			if _, err := co.collect(w, RenderCreate(srel)); err != nil {
				if transportFailure(err) {
					okBy[d][w] = false
					continue
				}
				return "", phys, err
			}
			co.stagingAdd(pname, w)
			if acks == 0 {
				phys = append(phys, pname)
			}
			acks++
		}
		if acks == 0 {
			return "", phys, fmt.Errorf("%w %d: no replica can stage %s", ErrShardUnavailable, d, sname)
		}
	}

	// Scatter: each source shard's slice partitions by the new key on
	// whichever live replica serves it, buffered per attempt so a
	// failover never double-counts rows.
	sq := wire.ShardQuery{
		TimeoutMicros: opts.Timeout.Microseconds(),
		Strategy:      wire.StrategyNested, // a flat scan; no transform to pick
		NumShards:     int64(co.nshards),
		KeyCols:       []int64{int64(kidx)},
	}
	colNames := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		colNames[i] = c.Name
	}
	sourced := make([][][][]value.Value, co.nshards)
	scatterErr := make([]error, co.nshards)
	var wg sync.WaitGroup
	for s := 0; s < co.nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			q := sq
			q.SQL = "SELECT " + strings.Join(colNames, ", ") + " FROM " + physName(rel.Name, s)
			sourced[s], scatterErr[s] = co.scatterShard(s, q)
		}(s)
	}
	wg.Wait()
	for s, err := range scatterErr {
		if err != nil {
			return "", phys, fmt.Errorf("cluster: scatter of %s shard %d: %w", rel.Name, s, err)
		}
	}
	routed := make([][][]value.Value, co.nshards)
	for _, local := range sourced {
		for d, rows := range local {
			routed[d] = append(routed[d], rows...)
		}
	}

	// Land each destination slice on every replica still in the running.
	type landing struct {
		d, w int
		err  error
	}
	var landings []*landing
	for d := 0; d < co.nshards; d++ {
		for _, w := range co.replicasOf(d) {
			if !okBy[d][w] || !co.health.live(w) {
				okBy[d][w] = false
				continue
			}
			l := &landing{d: d, w: w}
			landings = append(landings, l)
			wg.Add(1)
			go func(l *landing) {
				defer wg.Done()
				_, l.err = co.insertRows(l.w, physName(sname, l.d), routed[l.d])
			}(l)
		}
	}
	wg.Wait()
	acked := make([]int, co.nshards)
	var firstErr error
	for _, l := range landings {
		if l.err != nil {
			if !transportFailure(l.err) && firstErr == nil {
				firstErr = l.err
			}
			okBy[l.d][l.w] = false
			continue
		}
		acked[l.d]++
	}
	if firstErr != nil {
		return "", phys, fmt.Errorf("cluster: landing shuffle of %s: %w", rel.Name, firstErr)
	}
	for d, n := range acked {
		if n == 0 {
			return "", phys, fmt.Errorf("%w %d: no replica landed %s", ErrShardUnavailable, d, sname)
		}
	}
	return sname, phys, nil
}

// scatterShard streams one shard's scatter from the first live replica
// that can serve it, returning rows routed by destination. Rows buffer
// per attempt: a mid-stream loss discards the partial buffer and the
// next replica restarts the scatter from scratch.
func (co *Coordinator) scatterShard(s int, q wire.ShardQuery) ([][][]value.Value, error) {
	var lastErr error
	for _, w := range co.replicasOf(s) {
		if !co.health.live(w) {
			continue
		}
		conn, err := co.getConn(w)
		if err != nil {
			lastErr = err
			continue
		}
		local := make([][][]value.Value, co.nshards)
		_, err = conn.Scatter(q, func(b wire.ShardBatch) error {
			if int(b.Shard) >= len(local) {
				return fmt.Errorf("cluster: worker %d sent shard %d of %d", w, b.Shard, len(local))
			}
			for _, row := range b.Batch.Rows {
				local[b.Shard] = append(local[b.Shard], []value.Value(row))
			}
			return nil
		})
		if err == nil {
			co.pools[w].Put(conn)
			co.health.markSuccess(w)
			return local, nil
		}
		if transportFailure(err) {
			co.pools[w].Discard(conn)
			co.health.markFailure(w)
			lastErr = &WorkerLostError{Worker: w, Addr: co.pools[w].Addr(), Cause: err}
			continue
		}
		co.pools[w].Put(conn)
		if unknownRelation(err) {
			// The replica is missing a physical table it must host: it
			// restarted empty and needs a snapshot rejoin.
			co.health.markDead(w)
			lastErr = err
			continue
		}
		return nil, err
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w %d", ErrShardUnavailable, s)
}

// gather runs each shard's round-2 SQL against one live replica,
// concurrently across shards, failing over within a shard on transport
// loss — each attempt buffers its rows, so a retried round never
// double-counts. Results concatenate in shard order, keeping gathered
// row order as deterministic as the sequential version's. Results
// stream through opts.Sink when the caller set one (the network server
// does) and materialize otherwise. Columns come from the coordinator's
// own resolution, so empty results still carry the full schema.
func (co *Coordinator) gather(sqls []string, cols []string, opts engine.Options, okBy [][]bool) (*engine.Result, error) {
	sink := opts.Sink
	batchRows := 64
	if sink != nil {
		if sink.BatchRows > 0 {
			batchRows = sink.BatchRows
		}
		if err := sink.Columns(cols); err != nil {
			return nil, err
		}
	}
	res := &engine.Result{Columns: cols, Strategy: opts.Strategy}
	copts := client.Options{
		Timeout:  opts.Timeout,
		Strategy: wireStrategy(opts.Strategy),
	}

	type shard struct {
		rows  []storage.Tuple
		stats wire.Done
		err   error
	}
	shards := make([]shard, co.nshards)
	var wg sync.WaitGroup
	for s := 0; s < co.nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &shards[s]
			var lastErr error
			tried := 0
			for _, w := range co.replicasOf(s) {
				if !co.health.live(w) || (okBy != nil && !okBy[s][w]) {
					continue
				}
				tried++
				rows, stats, err := co.shardRound(w, sqls[s], copts, opts.MaxRows)
				if err == nil {
					sh.rows, sh.stats = rows, stats
					atomic.AddInt64(&co.perWorker[w], 1)
					return
				}
				if transportFailure(err) {
					lastErr = err
					continue
				}
				if unknownRelation(err) {
					co.health.markDead(w)
					lastErr = err
					continue
				}
				sh.err = err // typed and deterministic: propagate, no failover
				return
			}
			switch {
			case lastErr != nil:
				sh.err = lastErr
			case tried == 0:
				sh.err = fmt.Errorf("%w %d", ErrShardUnavailable, s)
			}
		}(s)
	}
	wg.Wait()

	// Settle every shard before emitting anything: all results are fully
	// buffered at this point, so a failed shard (or a blown row budget)
	// can surface as one clean typed error instead of partial rows
	// already flushed to the client followed by an error frame.
	var total int64
	for s := range shards {
		if shards[s].err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, shards[s].err)
		}
		total += int64(len(shards[s].rows))
	}
	if opts.MaxRows > 0 && total > opts.MaxRows {
		return nil, qctx.ErrRowBudget
	}

	var pending []storage.Tuple
	for s := range shards {
		sh := &shards[s]
		for _, row := range sh.rows {
			if sink != nil {
				pending = append(pending, row)
				if len(pending) >= batchRows {
					if err := sink.Batch(pending); err != nil {
						return nil, err
					}
					pending = nil
				}
			} else {
				res.Rows = append(res.Rows, row)
			}
		}
		res.Stats.Reads += sh.stats.Reads
		res.Stats.Writes += sh.stats.Writes
		res.FellBack = res.FellBack || sh.stats.FellBack
	}
	if sink != nil && len(pending) > 0 {
		if err := sink.Batch(pending); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// shardRound runs one shard's round-2 query on one worker, buffering
// the rows (the failover fence: nothing merges until the round
// succeeds whole).
func (co *Coordinator) shardRound(w int, sql string, copts client.Options, maxRows int64) ([]storage.Tuple, wire.Done, error) {
	var zero wire.Done
	conn, err := co.getConn(w)
	if err != nil {
		return nil, zero, err
	}
	st, err := conn.Query(sql, copts)
	if err != nil {
		if transportFailure(err) {
			co.pools[w].Discard(conn)
			co.health.markFailure(w)
			return nil, zero, &WorkerLostError{Worker: w, Addr: co.pools[w].Addr(), Cause: err}
		}
		co.pools[w].Put(conn)
		return nil, zero, err
	}
	var rows []storage.Tuple
	for st.Next() {
		rows = append(rows, append(storage.Tuple(nil), st.Row()...))
		if maxRows > 0 && int64(len(rows)) > maxRows {
			// One shard already exceeds the global budget: stop pulling
			// before a runaway result fills the heap.
			st.Close()
			co.pools[w].Discard(conn)
			return nil, zero, qctx.ErrRowBudget
		}
	}
	if err := st.Close(); err != nil {
		if transportFailure(err) {
			co.pools[w].Discard(conn)
			co.health.markFailure(w)
			return nil, zero, &WorkerLostError{Worker: w, Addr: co.pools[w].Addr(), Cause: err}
		}
		co.pools[w].Put(conn)
		return nil, zero, err
	}
	stats := st.Stats()
	co.pools[w].Put(conn)
	co.health.markSuccess(w)
	return rows, stats, nil
}

// wireStrategy maps the engine strategy the session resolved into the
// explicit wire byte for the workers — the coordinator never lets a
// worker's own default win, or mixed worker configs would give
// strategy-mixed (and thus trace-divergent) gathers.
func wireStrategy(s engine.Strategy) byte {
	switch s {
	case engine.TransformJA2:
		return wire.StrategyTransform
	case engine.TransformKim:
		return wire.StrategyKim
	case engine.NestedIteration:
		return wire.StrategyNested
	default:
		return wire.StrategyDefault
	}
}

// RenderCreate turns a schema.Relation back into CREATE TABLE SQL —
// broadcast to workers on DDL, and shipped as SnapshotMeta when a
// rejoining worker rebuilds a slice.
func RenderCreate(rel *schema.Relation) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(rel.Name)
	b.WriteString(" (")
	for i, c := range rel.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(typeName(c.Type))
	}
	if len(rel.Key) > 0 {
		b.WriteString(", PRIMARY KEY (")
		b.WriteString(strings.Join(rel.Key, ", "))
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

func typeName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindDate:
		return "DATE"
	default:
		return "TEXT"
	}
}
