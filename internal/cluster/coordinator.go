package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers are the addresses of the worker nestedsqld instances. The
	// slice order defines shard numbering: shard i lives on Workers[i].
	Workers []string
	// Placement overrides the partition column per table (UPPER names).
	// A table not listed defaults to its first primary-key column, or
	// its first column when no key is declared.
	Placement map[string]string
	// DialTimeout bounds each worker dial + handshake (0 = client default).
	DialTimeout time.Duration
	// IOTimeout bounds each per-frame wait on worker connections.
	IOTimeout time.Duration
	// Reconnect configures transparent redialing of lost worker links;
	// nil disables it (a lost worker fails the statement).
	Reconnect *client.ReconnectConfig
	// InsertBatch bounds rows per INSERT statement when routing loads
	// and flushing shuffles (0 = 256).
	InsertBatch int
}

func (c Config) insertBatch() int {
	if c.InsertBatch <= 0 {
		return 256
	}
	return c.InsertBatch
}

// Coordinator is the cluster's client-facing backend: it owns the
// catalog mirror and the placement map, fans DDL and DML out to the
// workers, and runs distributable SELECTs as scatter/gather plans. It
// implements server.Backend, so cmd/nestedsqld can serve it behind the
// same wire protocol a single-node engine uses.
//
// Statements are serialized under one mutex: worker connections are
// plain client.Conns (one in-flight stream each), and a shuffle must
// not interleave with DDL that could drop its staging tables. The
// concurrency story is per-worker inside each statement, not across
// statements — matching the repo's admission model where the expensive
// work (the per-shard round 2) runs engine-side anyway.
type Coordinator struct {
	cfg Config

	mu    sync.Mutex
	conns []*client.Conn
	cat   *schema.Catalog
	place map[string]string // UPPER(table) -> UPPER(partition column)
	qid   uint64            // staging-name counter
	stats struct {
		perWorker []int64 // round-2 gathers issued per worker
	}
}

// New dials every worker and verifies each granted the cluster feature
// (only servers fronting a local engine do — a coordinator cannot be a
// worker for another coordinator).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	co := &Coordinator{
		cfg:   cfg,
		cat:   schema.NewCatalog(),
		place: make(map[string]string),
	}
	co.stats.perWorker = make([]int64, len(cfg.Workers))
	for _, addr := range cfg.Workers {
		conn, err := client.DialOpts(addr, client.DialOptions{
			Timeout:   cfg.DialTimeout,
			IOTimeout: cfg.IOTimeout,
			Reconnect: cfg.Reconnect,
		})
		if err == nil && !conn.Cluster() {
			conn.Close()
			err = fmt.Errorf("cluster: worker %s did not grant the cluster feature", addr)
		}
		if err != nil {
			co.Close()
			return nil, err
		}
		co.conns = append(co.conns, conn)
	}
	return co, nil
}

// Close drops every worker connection.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, c := range co.conns {
		c.Close()
	}
	return nil
}

// Drain satisfies server.Backend. The coordinator holds no queries of
// its own — in-flight statements finish under the mutex, and the
// workers drain their engines during their own shutdowns.
func (co *Coordinator) Drain(time.Duration) error { return nil }

// NumWorkers returns the shard count.
func (co *Coordinator) NumWorkers() int { return len(co.cfg.Workers) }

// GatherCounts returns how many round-2 subqueries each worker has
// served, for load reporting (benchpaper's per-node q/s).
func (co *Coordinator) GatherCounts() []int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append([]int64(nil), co.stats.perWorker...)
}

// ExecSQL runs a script of statements against the cluster, mirroring
// engine.Exec's contract: the result is the last SELECT's, Affected
// accumulates DML counts, and a failing statement aborts the script
// with prior statements applied.
func (co *Coordinator) ExecSQL(sql string, opts engine.Options) (*engine.Result, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *engine.Result
	var affected int64
	for _, stmt := range stmts {
		switch stmt := stmt.(type) {
		case *sqlparser.CreateTableStmt:
			if err := co.execCreate(stmt.Relation); err != nil {
				return nil, err
			}
		case *sqlparser.InsertStmt:
			n, err := co.execInsert(stmt)
			if err != nil {
				return nil, err
			}
			affected += n
		case *sqlparser.DeleteStmt:
			n, err := co.execFilterDML(stmt.Table, stmt.Where, stmt)
			if err != nil {
				return nil, err
			}
			affected += n
		case *sqlparser.UpdateStmt:
			n, err := co.execFilterDML(stmt.Table, stmt.Where, stmt)
			if err != nil {
				return nil, err
			}
			affected += n
		case *sqlparser.DropTableStmt:
			if err := co.execDrop(stmt.Table); err != nil {
				return nil, err
			}
		case *sqlparser.SelectStmt:
			res, err := co.query(stmt.Query, opts)
			if err != nil {
				return nil, err
			}
			last = res
		default:
			return nil, fmt.Errorf("cluster: unsupported statement %T", stmt)
		}
	}
	if last == nil {
		last = &engine.Result{Strategy: opts.Strategy}
	}
	last.Affected = affected
	return last, nil
}

// execCreate defines the relation in the catalog mirror, picks its
// placement column, and broadcasts the CREATE to every worker.
func (co *Coordinator) execCreate(rel *schema.Relation) error {
	if err := co.cat.Define(rel); err != nil {
		return err
	}
	up := strings.ToUpper(rel.Name)
	place := ""
	if p, ok := co.cfg.Placement[up]; ok {
		if rel.ColumnIndex(p) < 0 {
			co.cat.Drop(rel.Name)
			return fmt.Errorf("cluster: placement column %s does not exist in %s", p, rel.Name)
		}
		place = strings.ToUpper(p)
	} else if len(rel.Key) > 0 {
		place = strings.ToUpper(rel.Key[0])
	} else {
		place = strings.ToUpper(rel.Columns[0].Name)
	}
	if err := co.broadcast(renderCreate(rel)); err != nil {
		co.cat.Drop(rel.Name)
		co.broadcastBestEffort("DROP TABLE " + rel.Name)
		return err
	}
	co.place[up] = place
	return nil
}

// execInsert coerces each row's literals against the schema — hashing
// must see the value a worker will store, not the raw literal, or a
// DATE partition key would land rows on the wrong shard — then routes
// every row to its placement shard as per-worker INSERT statements.
func (co *Coordinator) execInsert(stmt *sqlparser.InsertStmt) (int64, error) {
	rel, ok := co.cat.Lookup(stmt.Table)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown relation %s", stmt.Table)
	}
	pidx := rel.ColumnIndex(co.place[strings.ToUpper(rel.Name)])
	if pidx < 0 {
		return 0, fmt.Errorf("cluster: relation %s has no placement column", rel.Name)
	}
	part := Partitioner{NumShards: len(co.conns), KeyCols: []int{pidx}}
	routed := make([][][]value.Value, len(co.conns))
	for _, row := range stmt.Rows {
		if len(row) != len(rel.Columns) {
			return 0, fmt.Errorf("cluster: INSERT row has %d values, %s has %d columns",
				len(row), rel.Name, len(rel.Columns))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			cv, err := engine.CoerceInsertValue(v, rel.Columns[i].Type)
			if err != nil {
				return 0, fmt.Errorf("cluster: column %s of %s: %w", rel.Columns[i].Name, rel.Name, err)
			}
			t[i] = cv
		}
		d := part.Shard(t)
		routed[d] = append(routed[d], t)
	}
	var affected int64
	for d, rows := range routed {
		n, err := co.insertRows(d, rel.Name, rows)
		if err != nil {
			return affected, err
		}
		affected += n
	}
	return affected, nil
}

// insertRows flushes rows to one worker in InsertBatch-sized chunks.
func (co *Coordinator) insertRows(worker int, table string, rows [][]value.Value) (int64, error) {
	var n int64
	batch := co.cfg.insertBatch()
	for len(rows) > 0 {
		chunk := rows
		if len(chunk) > batch {
			chunk = chunk[:batch]
		}
		rows = rows[len(chunk):]
		stmt := &sqlparser.InsertStmt{Table: table, Rows: chunk}
		res, err := co.conns[worker].Collect(stmt.String(), client.Options{Timeout: co.cfg.IOTimeout})
		if err != nil {
			return n, fmt.Errorf("cluster: worker %d: %w", worker, err)
		}
		n += res.Done.Rows
	}
	return n, nil
}

// execFilterDML broadcasts a DELETE or UPDATE whose WHERE clause is
// row-local. Subqueries are rejected: their evaluation would see only
// each worker's slice, deleting (or keeping) the wrong rows.
func (co *Coordinator) execFilterDML(table string, where []ast.Predicate, stmt sqlparser.Statement) (int64, error) {
	if _, ok := co.cat.Lookup(table); !ok {
		return 0, fmt.Errorf("cluster: unknown relation %s", table)
	}
	for _, p := range where {
		if len(ast.SubqueriesOf(p)) > 0 {
			return 0, notDistributable("DELETE/UPDATE with a subquery would evaluate it per-shard")
		}
	}
	type renderer interface{ String() string }
	sql := stmt.(renderer).String()
	var affected int64
	for i, conn := range co.conns {
		res, err := conn.Collect(sql, client.Options{Timeout: co.cfg.IOTimeout})
		if err != nil {
			return affected, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		affected += res.Done.Rows
	}
	return affected, nil
}

func (co *Coordinator) execDrop(table string) error {
	if _, ok := co.cat.Lookup(table); !ok {
		return fmt.Errorf("cluster: unknown relation %s", table)
	}
	if err := co.broadcast("DROP TABLE " + table); err != nil {
		return err
	}
	co.cat.Drop(table)
	delete(co.place, strings.ToUpper(table))
	return nil
}

// broadcast runs one statement on every worker, failing on the first
// error.
func (co *Coordinator) broadcast(sql string) error {
	for i, conn := range co.conns {
		if _, err := conn.Collect(sql, client.Options{Timeout: co.cfg.IOTimeout}); err != nil {
			return fmt.Errorf("cluster: worker %d: %w", i, err)
		}
	}
	return nil
}

// broadcastBestEffort runs one statement on every worker, ignoring
// failures — cleanup of staging tables must not mask the real error.
func (co *Coordinator) broadcastBestEffort(sql string) {
	for _, conn := range co.conns {
		conn.Collect(sql, client.Options{Timeout: co.cfg.IOTimeout})
	}
}

// query runs one SELECT as a distributed plan:
//
//	round 1 (only when some table's placement differs from the key the
//	         query requires): shuffle — every worker scatters its slice
//	         of that table partitioned by the required key, and the
//	         coordinator lands the rows in per-worker staging tables;
//	round 2: the query — rewritten over the staging tables — runs
//	         whole on every worker, and the results are concatenated.
//
// Analyze proves the concatenation equals the single-node result; a
// query it rejects fails with ErrNotDistributable rather than running
// wrong.
func (co *Coordinator) query(qb *ast.QueryBlock, opts engine.Options) (*engine.Result, error) {
	outs, err := schema.Resolve(co.cat, qb)
	if err != nil {
		return nil, err
	}
	req, err := Analyze(qb)
	if err != nil {
		return nil, err
	}

	staged := make(map[string]string) // UPPER(table) -> staging name
	defer func() {
		for _, sname := range staged {
			co.broadcastBestEffort("DROP TABLE " + sname)
		}
	}()
	for table, col := range req {
		if col == "" || col == co.place[table] {
			continue // co-located (or placement-independent) already
		}
		sname, err := co.shuffle(table, col, opts)
		if err != nil {
			return nil, err
		}
		staged[table] = sname
	}
	if len(staged) > 0 {
		ast.VisitBlocks(qb, func(b *ast.QueryBlock, _ int) bool {
			for i := range b.From {
				if sname, ok := staged[strings.ToUpper(b.From[i].Relation)]; ok {
					// Keep the binding name stable so every column
					// reference still resolves on the workers.
					b.From[i].Alias = b.From[i].Binding()
					b.From[i].Relation = sname
				}
			}
			return true
		})
	}

	cols := make([]string, len(outs))
	for i, o := range outs {
		cols[i] = o.Name
	}
	return co.gather(qb.String(), cols, opts)
}

// shuffle re-partitions one table by the required key into a fresh
// staging table on every worker (round 1). Each worker partitions its
// own slice — rows cross the network once, worker → coordinator →
// destination worker; there are no worker↔worker links to manage.
func (co *Coordinator) shuffle(table, keyCol string, opts engine.Options) (string, error) {
	rel, ok := co.cat.Lookup(table)
	if !ok {
		return "", fmt.Errorf("cluster: unknown relation %s", table)
	}
	kidx := rel.ColumnIndex(keyCol)
	if kidx < 0 {
		return "", fmt.Errorf("cluster: relation %s has no column %s", rel.Name, keyCol)
	}
	co.qid++
	sname := fmt.Sprintf("%s__X%d", rel.Name, co.qid)
	// Key columns survive re-partitioning (a per-shard subset of a
	// globally unique key is still unique), and keeping them preserves
	// the planner's duplicate-safety reasoning on the workers.
	srel := &schema.Relation{Name: sname, Columns: rel.Columns, Key: rel.Key}
	if err := co.broadcast(renderCreate(srel)); err != nil {
		return "", err
	}
	// Drop eagerly on scatter failure; success hands ownership to the
	// caller's deferred cleanup via the staged map.
	colNames := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		colNames[i] = c.Name
	}
	scan := "SELECT " + strings.Join(colNames, ", ") + " FROM " + rel.Name
	sq := wire.ShardQuery{
		TimeoutMicros: opts.Timeout.Microseconds(),
		Strategy:      wire.StrategyNested, // a flat scan; no transform to pick
		NumShards:     int64(len(co.conns)),
		KeyCols:       []int64{int64(kidx)},
		SQL:           scan,
	}
	// All workers scatter concurrently (each on its own connection),
	// each into a private routing table; the tables merge source-major
	// afterwards so the staged row order stays deterministic.
	sourced := make([][][][]value.Value, len(co.conns))
	scatterErr := make([]error, len(co.conns))
	var wg sync.WaitGroup
	for i, conn := range co.conns {
		wg.Add(1)
		go func(i int, conn *client.Conn) {
			defer wg.Done()
			local := make([][][]value.Value, len(co.conns))
			_, err := conn.Scatter(sq, func(b wire.ShardBatch) error {
				if int(b.Shard) >= len(local) {
					return fmt.Errorf("cluster: worker %d sent shard %d of %d", i, b.Shard, len(local))
				}
				for _, row := range b.Batch.Rows {
					local[b.Shard] = append(local[b.Shard], []value.Value(row))
				}
				return nil
			})
			sourced[i], scatterErr[i] = local, err
		}(i, conn)
	}
	wg.Wait()
	for i, err := range scatterErr {
		if err != nil {
			co.broadcastBestEffort("DROP TABLE " + sname)
			return "", fmt.Errorf("cluster: scatter of %s from worker %d: %w", rel.Name, i, err)
		}
	}
	routed := make([][][]value.Value, len(co.conns))
	for _, local := range sourced {
		for d, rows := range local {
			routed[d] = append(routed[d], rows...)
		}
	}
	// Landing fans out too: destination d owns connection d exclusively.
	landErr := make([]error, len(routed))
	for d, rows := range routed {
		wg.Add(1)
		go func(d int, rows [][]value.Value) {
			defer wg.Done()
			_, landErr[d] = co.insertRows(d, sname, rows)
		}(d, rows)
	}
	wg.Wait()
	for _, err := range landErr {
		if err != nil {
			co.broadcastBestEffort("DROP TABLE " + sname)
			return "", fmt.Errorf("cluster: landing shuffle of %s: %w", rel.Name, err)
		}
	}
	return sname, nil
}

// gather runs the round-2 SQL on every worker concurrently — each
// worker owns its own connection, so the streams are independent — and
// concatenates in shard order, so the gathered row order is as
// deterministic as the sequential version's. Results stream through
// opts.Sink when the caller set one (the network server does) and
// materialize otherwise; either way each shard's result is buffered
// until its turn, bounding peak memory at one result set — the same
// bound materialization already implies. Columns come from the
// coordinator's own resolution, so empty results still carry the full
// schema, exactly as a single-node engine reports it.
func (co *Coordinator) gather(sql string, cols []string, opts engine.Options) (*engine.Result, error) {
	sink := opts.Sink
	batchRows := 64
	if sink != nil {
		if sink.BatchRows > 0 {
			batchRows = sink.BatchRows
		}
		if err := sink.Columns(cols); err != nil {
			return nil, err
		}
	}
	res := &engine.Result{Columns: cols, Strategy: opts.Strategy}
	copts := client.Options{
		Timeout:  opts.Timeout,
		Strategy: wireStrategy(opts.Strategy),
	}

	type shard struct {
		rows  []storage.Tuple
		stats wire.Done
		err   error
	}
	shards := make([]shard, len(co.conns))
	var wg sync.WaitGroup
	for i, conn := range co.conns {
		wg.Add(1)
		go func(i int, conn *client.Conn) {
			defer wg.Done()
			s := &shards[i]
			st, err := conn.Query(sql, copts)
			if err != nil {
				s.err = err
				return
			}
			for st.Next() {
				s.rows = append(s.rows, append(storage.Tuple(nil), st.Row()...))
				if opts.MaxRows > 0 && int64(len(s.rows)) > opts.MaxRows {
					// One shard already exceeds the global budget: stop
					// pulling before a runaway result fills the heap.
					st.Close()
					s.err = qctx.ErrRowBudget
					return
				}
			}
			if err := st.Close(); err != nil {
				s.err = err
				return
			}
			s.stats = st.Stats()
		}(i, conn)
	}
	wg.Wait()

	var pending []storage.Tuple
	var total int64
	for i := range shards {
		s := &shards[i]
		if s.err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, s.err)
		}
		co.stats.perWorker[i]++
		for _, row := range s.rows {
			total++
			if opts.MaxRows > 0 && total > opts.MaxRows {
				return nil, qctx.ErrRowBudget
			}
			if sink != nil {
				pending = append(pending, row)
				if len(pending) >= batchRows {
					if err := sink.Batch(pending); err != nil {
						return nil, err
					}
					pending = nil
				}
			} else {
				res.Rows = append(res.Rows, row)
			}
		}
		res.Stats.Reads += s.stats.Reads
		res.Stats.Writes += s.stats.Writes
		res.FellBack = res.FellBack || s.stats.FellBack
	}
	if sink != nil && len(pending) > 0 {
		if err := sink.Batch(pending); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// wireStrategy maps the engine strategy the session resolved into the
// explicit wire byte for the workers — the coordinator never lets a
// worker's own default win, or mixed worker configs would give
// strategy-mixed (and thus trace-divergent) gathers.
func wireStrategy(s engine.Strategy) byte {
	switch s {
	case engine.TransformJA2:
		return wire.StrategyTransform
	case engine.TransformKim:
		return wire.StrategyKim
	case engine.NestedIteration:
		return wire.StrategyNested
	default:
		return wire.StrategyDefault
	}
}

// renderCreate turns a schema.Relation back into CREATE TABLE SQL for
// broadcast to the workers.
func renderCreate(rel *schema.Relation) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(rel.Name)
	b.WriteString(" (")
	for i, c := range rel.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(typeName(c.Type))
	}
	if len(rel.Key) > 0 {
		b.WriteString(", PRIMARY KEY (")
		b.WriteString(strings.Join(rel.Key, ", "))
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

func typeName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindDate:
		return "DATE"
	default:
		return "TEXT"
	}
}
