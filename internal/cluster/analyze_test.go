package cluster

import (
	"errors"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

func paperCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	for _, rel := range []*schema.Relation{
		{Name: "S", Columns: []schema.Column{
			{Name: "SNO", Type: value.KindInt},
			{Name: "SNAME", Type: value.KindString},
			{Name: "CITY", Type: value.KindString},
		}, Key: []string{"SNO"}},
		{Name: "P", Columns: []schema.Column{
			{Name: "PNO", Type: value.KindInt},
			{Name: "PNAME", Type: value.KindString},
			{Name: "CITY", Type: value.KindString},
		}, Key: []string{"PNO"}},
		{Name: "SP", Columns: []schema.Column{
			{Name: "SNO", Type: value.KindInt},
			{Name: "PNO", Type: value.KindInt},
			{Name: "QTY", Type: value.KindInt},
		}},
	} {
		if err := cat.Define(rel); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func analyzeSQL(t *testing.T, sql string) (map[string]string, error) {
	t.Helper()
	qb, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	if _, err := schema.Resolve(paperCatalog(t), qb); err != nil {
		t.Fatalf("resolve %q: %v", sql, err)
	}
	return Analyze(qb)
}

func TestAnalyzeDistributable(t *testing.T) {
	cases := []struct {
		sql  string
		want map[string]string
	}{
		// A single-table scan distributes under any placement.
		{"SELECT SNAME FROM S WHERE CITY = 'PARIS'",
			map[string]string{"S": ""}},
		// Local OR/NOT filters don't constrain placement.
		{"SELECT SNAME FROM S WHERE CITY = 'PARIS' OR CITY = 'LONDON'",
			map[string]string{"S": ""}},
		// The paper's type-N nesting: IN links both sides.
		{"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE QTY > 100)",
			map[string]string{"S": "SNO", "SP": "SNO"}},
		// Type-JA: correlated aggregate subquery — the distributed
		// NEST-JA2 case. Links come from the correlation conjunct.
		{"SELECT SNAME FROM S WHERE 100 < (SELECT SUM(QTY) FROM SP WHERE SP.SNO = S.SNO)",
			map[string]string{"S": "SNO", "SP": "SNO"}},
		// Equijoin of two tables.
		{"SELECT S.SNAME FROM S, SP WHERE S.SNO = SP.SNO AND SP.QTY > 10",
			map[string]string{"S": "SNO", "SP": "SNO"}},
		// Correlated EXISTS and NOT EXISTS: the per-row set is co-located.
		{"SELECT SNAME FROM S WHERE EXISTS (SELECT PNO FROM SP WHERE SP.SNO = S.SNO)",
			map[string]string{"S": "SNO", "SP": "SNO"}},
		{"SELECT SNAME FROM S WHERE NOT EXISTS (SELECT PNO FROM SP WHERE SP.SNO = S.SNO)",
			map[string]string{"S": "SNO", "SP": "SNO"}},
		// Quantified ALL over a correlated set distributes too (unlike
		// NOT IN, the set is keyed by the correlation, not the value).
		{"SELECT SNAME FROM S WHERE SNO > ALL (SELECT QTY FROM SP WHERE SP.SNO = S.SNO)",
			map[string]string{"S": "SNO", "SP": "SNO"}},
		// Three-way connectivity through transitive equalities.
		{"SELECT S.SNAME FROM S, SP, P WHERE S.SNO = SP.SNO AND SP.SNO = P.PNO",
			map[string]string{"S": "SNO", "SP": "SNO", "P": "PNO"}},
	}
	for _, tc := range cases {
		got, err := analyzeSQL(t, tc.sql)
		if err != nil {
			t.Errorf("%s: unexpected reject: %v", tc.sql, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.sql, got, tc.want)
			continue
		}
		for table, col := range tc.want {
			if got[table] != col {
				t.Errorf("%s: table %s got key %q, want %q", tc.sql, table, got[table], col)
			}
		}
	}
}

func TestAnalyzeRejects(t *testing.T) {
	cases := []string{
		// Top-level shapes whose per-shard versions are not their
		// global versions under concatenation-gather.
		"SELECT MAX(QTY) FROM SP",
		"SELECT DISTINCT CITY FROM S",
		"SELECT SNAME FROM S ORDER BY SNAME",
		"SELECT CITY, COUNT(SNO) FROM S GROUP BY CITY",
		// NOT IN: an inner NULL on another shard flips the answer.
		"SELECT SNAME FROM S WHERE SNO NOT IN (SELECT SNO FROM SP)",
		// Cross join: disconnected bindings pair rows across shards.
		"SELECT S.SNAME FROM S, P WHERE S.SNO > 0 AND P.PNO > 0",
		// Non-equality join: hash co-location can't honor an inequality.
		"SELECT S.SNAME FROM S, SP WHERE S.SNO < SP.SNO",
		// One table can't be partitioned on two columns at once.
		"SELECT S.SNAME FROM S, SP, P WHERE S.SNO = SP.SNO AND S.CITY = P.CITY AND SP.PNO = SP.QTY AND P.PNO = SP.SNO",
		// Uncorrelated subquery: its value depends on rows the shard
		// cannot see.
		"SELECT SNAME FROM S WHERE SNO = (SELECT MAX(SNO) FROM SP)",
		"SELECT SNAME FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE QTY > 0)",
		// Disjunction across tables needs cross-shard reasoning.
		"SELECT S.SNAME FROM S, SP WHERE S.SNO = SP.SNO AND (S.CITY = 'PARIS' OR SP.QTY = 1)",
	}
	for _, sql := range cases {
		got, err := analyzeSQL(t, sql)
		if err == nil {
			t.Errorf("%s: expected reject, got %v", sql, got)
			continue
		}
		if !errors.Is(err, ErrNotDistributable) {
			t.Errorf("%s: error %v does not wrap ErrNotDistributable", sql, err)
		}
	}
}

// TestAnalyzeKeyConflictSelfJoin pins the subtle case: a self-join on
// mismatched columns demands two placements for one table.
func TestAnalyzeKeyConflictSelfJoin(t *testing.T) {
	_, err := analyzeSQL(t, "SELECT S1.SNAME FROM S S1, S S2 WHERE S1.SNO = S2.SNO")
	if err != nil {
		t.Fatalf("aligned self-join should distribute: %v", err)
	}
	_, err = analyzeSQL(t, "SELECT S1.SNAME FROM S S1, SP WHERE S1.SNO = SP.SNO AND S1.SNO = SP.PNO")
	if !errors.Is(err, ErrNotDistributable) {
		t.Fatalf("conflicting keys for SP should reject, got %v", err)
	}
}
