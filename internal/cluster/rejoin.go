package cluster

// Worker rejoin and the health prober. A dead worker (crashed,
// restarted empty, or partitioned past the breaker) re-enters the
// routing table only after catching up: for every shard slice it hosts,
// a live replica ships a full snapshot — schema first, then rows — and
// the coordinator rebuilds the slice on the returning worker before
// flipping it healthy. The prober drives this automatically: suspect
// workers are probe-dialed back to healthy, dead workers get a rejoin
// attempt each tick.

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/wire"
)

// Rejoin rebuilds every shard slice worker w hosts from live replicas
// and returns it to the routing table. The worker must be dead; errors
// leave it dead for the next probe to retry. Runs under the write lock,
// so no statement observes a half-rebuilt worker.
func (co *Coordinator) Rejoin(w int) error {
	if !co.health.beginRejoin(w) {
		return fmt.Errorf("cluster: worker %d is %s, not dead", w, co.health.state(w))
	}
	co.mu.Lock()
	err := co.rejoinLocked(w)
	// Flip the worker healthy while still holding the write lock. If the
	// lock were released first, a DML could run in the gap, see the
	// worker still rejoining and skip it — and the freshly "caught-up"
	// worker would silently miss a committed write.
	co.health.finishRejoin(w, err == nil)
	co.mu.Unlock()
	return err
}

func (co *Coordinator) rejoinLocked(w int) error {
	for _, name := range co.cat.Names() {
		rel, ok := co.cat.Lookup(name)
		if !ok {
			continue
		}
		for _, s := range co.hostedShards(w) {
			src := -1
			for _, r := range co.replicasOf(s) {
				if r != w && co.health.live(r) {
					src = r
					break
				}
			}
			if src < 0 {
				return fmt.Errorf("cluster: rejoin of worker %d: %w %d", w, ErrShardUnavailable, s)
			}
			srel := &schema.Relation{Name: physName(rel.Name, s), Columns: rel.Columns, Key: rel.Key}
			if err := co.shipSnapshot(src, w, srel); err != nil {
				return fmt.Errorf("cluster: rejoin of worker %d: %s: %w", w, srel.Name, err)
			}
		}
	}
	return nil
}

// shipSnapshot rebuilds one physical table on dst from src's copy: drop
// any stale remnant, recreate from the coordinator's schema, stream the
// snapshot across in InsertBatch-sized chunks, and verify src's shipped
// schema matches — a mismatch means the replicas diverged structurally
// and the rejoin must not paper over it.
func (co *Coordinator) shipSnapshot(src, dst int, srel *schema.Relation) error {
	create := RenderCreate(srel)
	if err := co.dropIgnoreMissing(dst, srel.Name); err != nil {
		return err
	}
	if _, err := co.collect(dst, create); err != nil {
		return err
	}
	sconn, err := co.getConn(src)
	if err != nil {
		return err
	}
	var chunk [][]value.Value
	batch := co.cfg.insertBatch()
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		_, err := co.insertRows(dst, srel.Name, chunk)
		chunk = chunk[:0]
		return err
	}
	meta, _, err := sconn.Snapshot(srel.Name, func(b wire.RowBatch) error {
		for _, row := range b.Rows {
			chunk = append(chunk, append([]value.Value(nil), row...))
		}
		if len(chunk) >= batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		if transportFailure(err) {
			co.pools[src].Discard(sconn)
			co.health.markFailure(src)
			return &WorkerLostError{Worker: src, Addr: co.pools[src].Addr(), Cause: err}
		}
		co.pools[src].Put(sconn)
		return err
	}
	co.pools[src].Put(sconn)
	co.health.markSuccess(src)
	if err := flush(); err != nil {
		return err
	}
	if meta.CreateSQL != create {
		return fmt.Errorf("cluster: snapshot schema diverged: worker %d has %q, catalog says %q",
			src, meta.CreateSQL, create)
	}
	return nil
}

// probeLoop is the background health prober.
func (co *Coordinator) probeLoop(interval time.Duration) {
	defer co.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
		}
		for w := range co.pools {
			co.Probe(w)
		}
	}
}

// Probe runs one immediate health probe of worker w, exactly as a
// prober tick would: a suspect worker heals on a clean round-trip, a
// reachable dead worker gets a rejoin attempt (errors leave it dead for
// the next probe). It reports whether the worker is live afterwards.
// Exported for harnesses and tests that need deterministic probe timing
// instead of the background ticker.
func (co *Coordinator) Probe(w int) bool {
	switch co.health.state(w) {
	case workerSuspect:
		return co.probeWorker(w)
	case workerDead:
		if co.probeWorker(w) {
			return co.Rejoin(w) == nil
		}
		return false
	}
	return co.health.live(w)
}

// probeWorker checks reachability with a trivial statement. A healthy
// exchange heals a suspect worker (collect marks success); for a dead
// worker it only reports reachability — rejoin decides the rest.
func (co *Coordinator) probeWorker(w int) bool {
	conn, err := co.getConn(w)
	if err != nil {
		return false
	}
	// An idle pooled conn can be stale; a real round-trip proves the
	// worker serves. The probed name's logical part (__PROBE__) lies
	// inside the reserved __ namespace, so no CREATE can ever make it
	// exist — neither as a user table nor as any table's shard slice —
	// and the DROP answers fast and touches nothing. (A bare PROBE__S0
	// would NOT be safe: user table PROBE is legal, and its shard-0
	// slice is exactly that name.)
	_, err = conn.Collect("DROP TABLE __PROBE____S0", client.Options{Timeout: co.cfg.IOTimeout})
	if err != nil && !unknownRelation(err) {
		co.pools[w].Discard(conn)
		return false
	}
	co.pools[w].Put(conn)
	co.health.markSuccess(w)
	return true
}
