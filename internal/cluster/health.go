// Worker health: the failover state machine and the error taxonomy that
// drives it.
//
// Every worker is in one of four states:
//
//	healthy ──transport failure──▶ suspect ──breaker trips──▶ dead
//	   ▲                             │                          │
//	   │◀──────success / probe───────┘                          │
//	   │                                                        ▼
//	   └──────snapshot re-ship ok────── rejoining ◀───probe dials OK
//
// A suspect worker stays in the routing table (its next success heals
// it); a dead worker does not, and can only return through Rejoin — a
// full snapshot re-ship from a live replica — because a worker that
// missed even one committed write has diverged and must not serve
// reads. Two things kill a worker outright, skipping suspect: missing a
// DML/DDL write that another replica acknowledged, and answering
// "unknown relation" for a physical table it is supposed to host (the
// restarted-empty detector).
//
// Only transport-class failures move the state machine. A typed server
// error (overload shed, timeout, row budget, user error) proves the
// worker is alive and is propagated to the client untouched — otherwise
// one bad query could poison the whole routing table.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/client"
	"repro/internal/wire"
)

// ErrWorkerLost reports a worker link that failed at the transport
// level. Match with errors.Is; the concrete *WorkerLostError carries
// the worker index and cause.
var ErrWorkerLost = errors.New("cluster: worker lost")

// WorkerLostError wraps the transport failure behind a lost worker. It
// matches ErrWorkerLost and its cause.
type WorkerLostError struct {
	Worker int
	Addr   string
	Cause  error
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("cluster: worker %d (%s) lost: %v", e.Worker, e.Addr, e.Cause)
}

// Unwrap exposes both the sentinel and the cause (multi-error unwrap).
func (e *WorkerLostError) Unwrap() []error {
	return []error{ErrWorkerLost, e.Cause}
}

// ErrShardUnavailable reports a shard with no live replica left — every
// worker hosting it is dead or unreachable.
var ErrShardUnavailable = errors.New("cluster: no live replica for shard")

// workerState is one node of the failover state machine.
type workerState int32

const (
	workerHealthy workerState = iota
	workerSuspect
	workerDead
	workerRejoining
)

func (s workerState) String() string {
	switch s {
	case workerHealthy:
		return "healthy"
	case workerSuspect:
		return "suspect"
	case workerDead:
		return "dead"
	case workerRejoining:
		return "rejoining"
	default:
		return fmt.Sprintf("workerState(%d)", int32(s))
	}
}

// breakerThreshold is the circuit breaker: this many consecutive
// transport failures moves suspect to dead.
const breakerThreshold = 2

// healthTracker holds per-worker state under its own mutex, separate
// from the coordinator's statement lock so health reads never contend
// with query execution.
type healthTracker struct {
	mu     sync.Mutex
	states []workerState
	fails  []int // consecutive transport failures
}

func newHealthTracker(n int) *healthTracker {
	return &healthTracker{states: make([]workerState, n), fails: make([]int, n)}
}

func (h *healthTracker) state(w int) workerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[w]
}

// live reports whether w may serve reads and accept writes: healthy or
// suspect, but never dead or mid-rejoin.
func (h *healthTracker) live(w int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[w] == workerHealthy || h.states[w] == workerSuspect
}

// markFailure records a transport failure: healthy turns suspect, and
// breakerThreshold consecutive failures trip the breaker to dead.
func (h *healthTracker) markFailure(w int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.states[w] {
	case workerHealthy, workerSuspect:
		h.fails[w]++
		if h.fails[w] >= breakerThreshold {
			h.states[w] = workerDead
		} else {
			h.states[w] = workerSuspect
		}
	}
}

// markDead records a divergence (a missed write, a lost table): the
// worker leaves the routing table until a snapshot re-ship.
func (h *healthTracker) markDead(w int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.states[w] != workerRejoining {
		h.states[w] = workerDead
	}
}

// markSuccess records a clean exchange: a suspect worker heals.
func (h *healthTracker) markSuccess(w int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails[w] = 0
	if h.states[w] == workerSuspect {
		h.states[w] = workerHealthy
	}
}

// beginRejoin claims a dead worker for snapshot re-shipping; false when
// the worker is not dead (already rejoining, or was never lost).
func (h *healthTracker) beginRejoin(w int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.states[w] != workerDead {
		return false
	}
	h.states[w] = workerRejoining
	return true
}

// finishRejoin completes a rejoin: healthy on success, back to dead on
// failure (the next probe retries).
func (h *healthTracker) finishRejoin(w int, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.states[w] != workerRejoining {
		return
	}
	if ok {
		h.states[w], h.fails[w] = workerHealthy, 0
	} else {
		h.states[w] = workerDead
	}
}

// snapshot returns every worker's state name, for tests and harnesses.
func (h *healthTracker) snapshot() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.states))
	for i, s := range h.states {
		out[i] = s.String()
	}
	return out
}

// transportFailure classifies an error from a worker exchange: true for
// anything that means the link (or the worker) died — connection loss,
// dial refusal, corrupt framing, EOF — and false for typed server
// answers, which prove the worker alive.
func transportFailure(err error) bool {
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, ErrWorkerLost) || errors.Is(err, client.ErrConnectionLost) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, wire.ErrCorruptFrame) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		// A deadline tripping on an established exchange means the worker
		// is slow, not gone — breaker evidence is link death only. Real
		// silent partitions still count: the client's frame-wait IOTimeout
		// arrives wrapped in ErrConnectionLost (matched above), and dial
		// timeouts to an unreachable worker are counted by getConn without
		// consulting this classifier.
		return !ne.Timeout()
	}
	return false
}

// unknownRelation reports a typed "unknown relation" answer. Against a
// physical table the worker is supposed to host, it is the restarted-
// empty detector: the worker came back with no state and must rejoin
// before serving again. Against a staging table mid-cleanup it just
// means already dropped.
func unknownRelation(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Frame.Message, "unknown relation")
}
