package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Crash-safety proof for the durability layer, run in-process: seeded
// storms of concurrent DML and queries with the WAL fault injector
// armed, "crashed" by abandoning the live database (its unsynced state
// dies with it, exactly like a kill -9 loses everything past the last
// write), then recovered into a fresh engine and byte-compared against
// an oracle holding exactly the acknowledged statements. The subprocess
// variant with real SIGKILL lives in cmd/nestedsqld.

func openDurable(t *testing.T, dir string) (*engine.DB, engine.RecoveryInfo) {
	t.Helper()
	db := engine.New(64)
	info, err := db.EnableDurability(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db, info
}

func saveImage(t *testing.T, db *engine.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countFiles tallies the live data-directory files by suffix.
func countFiles(t *testing.T, db *engine.DB) (segs, snaps, tmps int) {
	t.Helper()
	for _, f := range db.WAL().LiveFiles() {
		switch {
		case strings.HasSuffix(f, ".seg"):
			segs++
		case strings.HasSuffix(f, ".snap"):
			snaps++
		default:
			tmps++
		}
	}
	return segs, snaps, tmps
}

const durabilityScript = `
	CREATE TABLE EMP (ID INT, NAME VARCHAR, SAL FLOAT, HIRED DATE, PRIMARY KEY (ID));
	INSERT INTO EMP VALUES (1, 'ann', 1000.5, 7-3-79), (2, 'bob', NULL, NULL), (3, 'o''hara', 2000.25, 1-1-80);
	CREATE TABLE DEPT (DNO INT, BUDGET INT);
	INSERT INTO DEPT VALUES (10, 100), (20, 200), (30, 300);
	UPDATE EMP SET SAL = 1500.75 WHERE ID = 2;
	DELETE FROM DEPT WHERE BUDGET = 200;
`

func TestDurabilityReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db, info := openDurable(t, dir)
	if info.Recovered() {
		t.Fatalf("fresh dir recovered state: %+v", info)
	}
	if _, err := db.Exec(durabilityScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	want := saveImage(t, db)
	// Crash: abandon db without closing or checkpointing. Everything
	// must come back from the WAL alone.
	re, info := openDurable(t, dir)
	if info.SnapshotLoaded || info.ReplayedRecords == 0 {
		t.Fatalf("want WAL-only recovery, got %+v", info)
	}
	if got := saveImage(t, re); !bytes.Equal(got, want) {
		t.Fatalf("recovered image differs (%d vs %d bytes)", len(got), len(want))
	}
}

func TestDurabilityDropTableReplay(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurable(t, dir)
	script := durabilityScript + `
		DROP TABLE DEPT;
		CREATE TABLE DEPT (DNO INT, HEAD VARCHAR);
		INSERT INTO DEPT VALUES (10, 'ann');
	`
	if _, err := db.Exec(script, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	want := saveImage(t, db)
	// WAL-only recovery must replay the drop and the re-create in order,
	// converging on the second DEPT, not the first.
	re, info := openDurable(t, dir)
	if info.SnapshotLoaded || info.ReplayedRecords == 0 {
		t.Fatalf("want WAL-only recovery, got %+v", info)
	}
	if got := saveImage(t, re); !bytes.Equal(got, want) {
		t.Fatal("recovered image differs after drop + recreate")
	}
	if _, err := re.Exec("DROP TABLE NOSUCH", engine.Options{}); err == nil {
		t.Fatal("dropping an unknown table succeeded")
	}
}

func TestDurabilityCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurable(t, dir)
	if _, err := db.Exec(durabilityScript, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if segs, snaps, tmps := countFiles(t, db); segs != 1 || snaps != 1 || tmps != 0 {
		t.Fatalf("after checkpoint: %d segments, %d snapshots, %d other files", segs, snaps, tmps)
	}
	// DML after the checkpoint lands in the fresh log tail.
	if _, err := db.Exec("INSERT INTO DEPT VALUES (40, 400); UPDATE EMP SET NAME = 'zed' WHERE ID = 1", engine.Options{}); err != nil {
		t.Fatal(err)
	}
	want := saveImage(t, db)
	re, info := openDurable(t, dir)
	if !info.SnapshotLoaded || info.ReplayedRecords != 2 {
		t.Fatalf("want snapshot + 2 replayed records, got %+v", info)
	}
	if got := saveImage(t, re); !bytes.Equal(got, want) {
		t.Fatal("recovered image differs from pre-crash state")
	}
}

func TestDurabilityPoisonAndHeal(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurable(t, dir)
	if _, err := db.Exec("CREATE TABLE T (K INT, V INT); INSERT INTO T VALUES (1, 1)", engine.Options{}); err != nil {
		t.Fatal(err)
	}
	// Every append now tears: the next DML fails and poisons the log.
	db.WAL().SetFaultInjector(wal.NewFaultInjector(wal.FaultConfig{Seed: 7, TornAppendRate: 1, MaxFaults: 1}))
	if _, err := db.Exec("INSERT INTO T VALUES (2, 2)", engine.Options{}); err == nil {
		t.Fatal("torn append acknowledged")
	}
	if _, err := db.Exec("DELETE FROM T WHERE K = 1", engine.Options{}); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("poisoned log accepted DML: %v", err)
	}
	// Queries keep working against the (ahead) in-memory state.
	res, err := db.Query("SELECT K FROM T", engine.Options{})
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("query on poisoned db: rows=%v err=%v", res, err)
	}
	// Checkpoint heals: the snapshot is the exact live state, so DML and
	// recovery both work again.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO T VALUES (3, 3)", engine.Options{}); err != nil {
		t.Fatalf("DML after healing checkpoint: %v", err)
	}
	want := saveImage(t, db)
	re, _ := openDurable(t, dir)
	if got := saveImage(t, re); !bytes.Equal(got, want) {
		t.Fatal("healed recovery differs from live state")
	}
}

func TestEnableDurabilityPreconditions(t *testing.T) {
	db := engine.New(8)
	if _, err := db.Exec("CREATE TABLE T (X INT)", engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EnableDurability(t.TempDir(), wal.Options{}); err == nil {
		t.Fatal("EnableDurability accepted a non-empty database")
	}
	db2, _ := openDurable(t, t.TempDir())
	if _, err := db2.EnableDurability(t.TempDir(), wal.Options{}); err == nil {
		t.Fatal("EnableDurability accepted a second call")
	}
}

// TestCrashStormInProcess is the seeded storm: every round runs
// concurrent DML and SELECTs from four clients on disjoint tables with
// torn-append faults armed, crashes by abandonment, recovers, and
// demands the recovered bytes equal an oracle replay of exactly the
// acknowledged statements — no lost acks, no ghost writes — with the
// data directory holding exactly one segment and one snapshot after
// each round's checkpoint.
func TestCrashStormInProcess(t *testing.T) {
	rounds, workers, ops := 16, 4, 10
	if testing.Short() {
		rounds = 4
	}
	dir := t.TempDir()
	acked := make([][]string, workers) // per-worker acknowledged SQL, in issue order
	created := make([]bool, workers)   // worker's CREATE TABLE has been acked
	var db *engine.DB

	for round := 0; round < rounds; round++ {
		var info engine.RecoveryInfo
		db, info = openDurable(t, dir)
		if round > 0 && !info.Recovered() && len(acked[0]) > 0 {
			t.Fatalf("round %d: nothing recovered", round)
		}
		// Oracle check: a fresh engine fed exactly the acked statements,
		// worker by worker (tables are disjoint, so cross-worker order
		// is irrelevant), must match the recovered bytes.
		oracle := engine.New(64)
		for w := 0; w < workers; w++ {
			for _, sql := range acked[w] {
				if _, err := oracle.Exec(sql, engine.Options{}); err != nil {
					t.Fatalf("oracle replay %q: %v", sql, err)
				}
			}
		}
		if got, want := saveImage(t, db), saveImage(t, oracle); !bytes.Equal(got, want) {
			t.Fatalf("round %d: recovered state differs from acked oracle (%d vs %d bytes)",
				round, len(got), len(want))
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		if segs, snaps, tmps := countFiles(t, db); segs != 1 || snaps != 1 || tmps != 0 {
			t.Fatalf("round %d: leaked files: %d segments, %d snapshots, %d other",
				round, segs, snaps, tmps)
		}
		// Arm torn-append faults for this round's traffic.
		db.WAL().SetFaultInjector(wal.NewFaultInjector(wal.FaultConfig{
			Seed: int64(round), TornAppendRate: 0.03, MaxFaults: 1,
		}))

		var wg sync.WaitGroup
		roundAcked := make([][]string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + w)))
				table := fmt.Sprintf("CRASH%d", w)
				for op := 0; op < ops; op++ {
					var sql string
					switch {
					case op == 0 && !created[w]:
						// First round, or the CREATE's append tore in an
						// earlier round and was never acknowledged.
						sql = fmt.Sprintf("CREATE TABLE %s (K INT, V INT)", table)
					case rng.Intn(4) == 0:
						sql = fmt.Sprintf("UPDATE %s SET V = %d WHERE K < %d",
							table, rng.Intn(1000), rng.Intn(50))
					case rng.Intn(4) == 1:
						sql = fmt.Sprintf("DELETE FROM %s WHERE V > %d", table, 500+rng.Intn(500))
					default:
						sql = fmt.Sprintf("INSERT INTO %s VALUES (%d, %d), (%d, %d)",
							table, rng.Intn(50), rng.Intn(1000), rng.Intn(50), rng.Intn(1000))
					}
					if _, err := db.Exec(sql, engine.Options{}); err != nil {
						if errors.Is(err, wal.ErrBroken) {
							return // poisoned: nothing further will be acked
						}
						t.Errorf("round %d worker %d: %q: %v", round, w, sql, err)
						return
					}
					roundAcked[w] = append(roundAcked[w], sql)
					if strings.HasPrefix(sql, "CREATE") {
						created[w] = true
					}
					if op%3 == 2 {
						if _, err := db.Query(fmt.Sprintf("SELECT K FROM %s WHERE V > 250", table), engine.Options{}); err != nil {
							t.Errorf("round %d worker %d query: %v", round, w, err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			acked[w] = append(acked[w], roundAcked[w]...)
		}
		// Crash: abandon db — no close, no checkpoint. The next round
		// recovers from whatever reached the files.
	}
}
