// Package engine is the façade over the whole system: catalog, paged
// storage, parser, resolver, classifier, transformer, planner, and the two
// executors. A query runs under one of three strategies:
//
//   - NestedIteration: the System R baseline the paper starts from, and
//     the engine's semantic ground truth.
//   - TransformJA2: the paper's contribution — the recursive nest_g
//     procedure with NEST-N-J and the corrected NEST-JA2, followed by
//     cost-based join planning. Queries outside the algorithms' scope fall
//     back to nested iteration (reported in the result).
//   - TransformKim: the same pipeline with Kim's original NEST-JA, kept to
//     reproduce the COUNT bug and the non-equality bug.
//
// Page I/O statistics are captured per query, so strategies are directly
// comparable on the paper's metric.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/planner"
	"repro/internal/qctx"
	"repro/internal/querygraph"
	"repro/internal/schema"
	"repro/internal/spill"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/wal"
)

// Strategy selects how a query is evaluated.
type Strategy uint8

// The strategies.
const (
	NestedIteration Strategy = iota
	TransformJA2
	TransformKim
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case NestedIteration:
		return "nested-iteration"
	case TransformJA2:
		return "transform (NEST-JA2)"
	case TransformKim:
		return "transform (Kim NEST-JA)"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// DB is a database instance: a catalog plus a paged store with a B-page
// buffer pool, and optionally System R statistics for the planner. It is
// safe for concurrent queries: temp tables are namespaced per query, the
// catalog is internally locked, and — when EnableAdmission is called —
// every query passes the admission gateway first.
type DB struct {
	cat     *schema.Catalog
	store   *storage.Store
	stats   *stats.Stats
	indexes *index.Registry
	admit   *admission.Controller
	qcount  atomic.Int64 // temp-table namespace allocator

	spill          *spill.Manager // nil unless EnableSpill was called
	spillThreshold int64

	// Durability (nil/zero unless EnableDurability was called). dmlMu is
	// the commit-order lock: DML and Checkpoint hold it exclusively,
	// queries hold it shared, so readers never see a half-applied
	// statement and WAL append order equals apply order. Internal
	// re-runs (noAdmission) skip the shared acquire — they execute
	// inside a query that already holds it.
	dmlMu    sync.RWMutex
	wal      *wal.Log
	recovery RecoveryInfo
}

// New creates an empty database with the given buffer pool size (the
// paper's B).
func New(bufferPages int) *DB {
	return &DB{
		cat:     schema.NewCatalog(),
		store:   storage.NewStore(bufferPages),
		indexes: index.NewRegistry(),
	}
}

// EnableAdmission installs an admission controller so every Query passes
// the concurrency gateway: bounded concurrent queries, a bounded FIFO
// queue whose wait counts against the query deadline, memory-pool
// leasing, transient-fault retries, the parallel-path circuit breaker,
// and graceful Drain. Call it before serving concurrent traffic; it is
// not safe to swap controllers while queries run.
func (db *DB) EnableAdmission(cfg admission.Config) *admission.Controller {
	db.admit = admission.NewController(cfg)
	if db.spill != nil {
		db.admit.SetSpillBacked(true)
	}
	return db.admit
}

// EnableSpill installs a spill-run manager rooted at dir, turning memory
// pressure into graceful degradation: queries whose buffering operators
// cannot reserve budget write run files under dir instead of failing
// with qctx.ErrMemoryBudget. threshold, when positive, makes SpillAuto
// queries spill once their buffered bytes would cross it even while
// under budget (the -spill-threshold flag). With admission enabled, the
// memory pool also starts granting small pressure leases instead of
// queuing when nearly exhausted, since lessees can now degrade.
func (db *DB) EnableSpill(dir string, threshold int64) error {
	m, err := spill.NewManager(dir)
	if err != nil {
		return err
	}
	db.spill = m
	db.spillThreshold = threshold
	if db.admit != nil {
		db.admit.SetSpillBacked(true)
	}
	return nil
}

// SpillManager returns the installed spill manager, or nil.
func (db *DB) SpillManager() *spill.Manager { return db.spill }

// SpillStats snapshots cumulative spill activity (zero without spill).
func (db *DB) SpillStats() spill.Stats { return db.spill.Stats() }

// Admission returns the installed controller, or nil.
func (db *DB) Admission() *admission.Controller { return db.admit }

// Drain gracefully shuts query traffic down: admission closes, in-flight
// queries get until the deadline to finish, stragglers are canceled
// through their lifecycle contexts. A no-op without EnableAdmission.
func (db *DB) Drain(timeout time.Duration) error {
	if db.admit == nil {
		return nil
	}
	return db.admit.Drain(timeout)
}

// Catalog exposes the catalog (for fixtures and tools).
func (db *DB) Catalog() *schema.Catalog { return db.cat }

// Store exposes the storage layer (for fixtures and I/O statistics).
func (db *DB) Store() *storage.Store { return db.store }

// Analyze collects System R-style statistics (page/tuple counts, distinct
// values per column) for every relation; subsequent transformed queries
// use them for selectivity-aware join choices. Run it after bulk loading
// and re-run after significant data changes. The collection scan's page
// reads are charged to the store like any other access.
func (db *DB) Analyze() error {
	st := stats.New()
	if err := st.Analyze(db.cat, db.store); err != nil {
		return err
	}
	db.stats = st
	return nil
}

// Statistics returns the collected statistics, or nil before Analyze.
func (db *DB) Statistics() *stats.Stats { return db.stats }

// CreateIndex builds a secondary index on table.column (charging the
// build scan). Inserting into the table afterwards drops its indexes —
// they are build-once snapshots, like the statistics.
func (db *DB) CreateIndex(table, column string) error {
	rel, ok := db.cat.Lookup(table)
	if !ok {
		return fmt.Errorf("engine: unknown relation %s", table)
	}
	colIdx := rel.ColumnIndex(column)
	if colIdx < 0 {
		return fmt.Errorf("engine: relation %s has no column %s", table, column)
	}
	f, ok := db.store.Lookup(rel.Name)
	if !ok {
		return fmt.Errorf("engine: relation %s has no storage", table)
	}
	return db.indexes.Add(index.Build(db.store, f, rel.Name, rel.Columns[colIdx].Name, colIdx))
}

// Indexes exposes the index registry (for tools).
func (db *DB) Indexes() *index.Registry { return db.indexes }

// CreateRelation defines a relation and its backing heap file.
// tuplesPerPage <= 0 uses the storage default. With durability enabled
// it is acknowledged only after the schema record is logged.
func (db *DB) CreateRelation(rel *schema.Relation, tuplesPerPage int) error {
	if db.wal == nil {
		return db.createRelationApply(rel, tuplesPerPage)
	}
	commit, err := db.createRelationDurable(rel, tuplesPerPage)
	if err != nil {
		return err
	}
	return commit.Wait()
}

func (db *DB) createRelationDurable(rel *schema.Relation, tuplesPerPage int) (wal.Commit, error) {
	db.dmlMu.Lock()
	defer db.dmlMu.Unlock()
	if err := db.wal.Err(); err != nil {
		return wal.Commit{}, err // poisoned: refuse before touching state
	}
	if err := db.createRelationApply(rel, tuplesPerPage); err != nil {
		return wal.Commit{}, err
	}
	sch := &wal.TableSchema{Name: rel.Name, Key: rel.Key, TuplesPerPage: tuplesPerPage}
	for _, c := range rel.Columns {
		sch.Columns = append(sch.Columns, wal.TableColumn{Name: c.Name, Kind: uint8(c.Type)})
	}
	return db.wal.Append(wal.Record{Type: wal.RecCreateTable, Schema: sch})
}

func (db *DB) createRelationApply(rel *schema.Relation, tuplesPerPage int) error {
	if err := db.cat.Define(rel); err != nil {
		return err
	}
	if _, err := db.store.Create(rel.Name, tuplesPerPage); err != nil {
		db.cat.Drop(rel.Name)
		return err
	}
	return nil
}

// DropRelation removes a relation: its schema, heap file, and any
// secondary indexes. With durability enabled the drop is acknowledged
// only after the record is logged — replaying a log that creates and
// later drops a table converges to the same catalog.
func (db *DB) DropRelation(name string) error {
	if db.wal == nil {
		return db.dropRelationApply(name)
	}
	commit, err := db.dropRelationDurable(name)
	if err != nil {
		return err
	}
	return commit.Wait()
}

func (db *DB) dropRelationDurable(name string) (wal.Commit, error) {
	db.dmlMu.Lock()
	defer db.dmlMu.Unlock()
	if err := db.wal.Err(); err != nil {
		return wal.Commit{}, err // poisoned: refuse before touching state
	}
	if err := db.dropRelationApply(name); err != nil {
		return wal.Commit{}, err
	}
	return db.wal.Append(wal.Record{Type: wal.RecDrop, Table: name})
}

func (db *DB) dropRelationApply(name string) error {
	rel, ok := db.cat.Lookup(name)
	if !ok {
		return fmt.Errorf("engine: unknown relation %s", name)
	}
	db.indexes.DropRelation(rel.Name)
	db.cat.Drop(rel.Name)
	db.store.Drop(rel.Name)
	return nil
}

// Insert appends rows to a relation. Call Seal (or run a query, which does
// not require sealing) when bulk loading is done; Insert seals lazily via
// the storage layer's accounting only when pages fill. With durability
// enabled the rows are applied and logged under the DML lock and the call
// returns only once the commit record is durable.
func (db *DB) Insert(relation string, rows ...storage.Tuple) error {
	if db.wal == nil {
		return db.insertApply(relation, rows...)
	}
	commit, err := db.insertDurable(relation, rows)
	if err != nil {
		return err
	}
	return commit.Wait()
}

func (db *DB) insertDurable(relation string, rows []storage.Tuple) (wal.Commit, error) {
	db.dmlMu.Lock()
	defer db.dmlMu.Unlock()
	if err := db.wal.Err(); err != nil {
		return wal.Commit{}, err // poisoned: refuse before touching state
	}
	if err := db.insertApply(relation, rows...); err != nil {
		return wal.Commit{}, err
	}
	if len(rows) == 0 {
		return wal.Commit{}, nil
	}
	return db.wal.Append(wal.Record{Type: wal.RecInsert, Table: relation, Rows: rows})
}

func (db *DB) insertApply(relation string, rows ...storage.Tuple) error {
	rel, ok := db.cat.Lookup(relation)
	if !ok {
		return fmt.Errorf("engine: unknown relation %s", relation)
	}
	f, ok := db.store.Lookup(rel.Name)
	if !ok {
		return fmt.Errorf("engine: relation %s has no storage", relation)
	}
	// Validate the whole batch before touching storage, and unwind a
	// fault panic mid-batch back to the pre-insert boundary: the batch
	// lands whole or not at all.
	for _, r := range rows {
		if len(r) != len(rel.Columns) {
			return fmt.Errorf("engine: row %v does not match schema of %s", r, relation)
		}
	}
	before := f.NumTuples()
	defer func() {
		if r := recover(); r != nil {
			f.TruncateTo(before)
			panic(r)
		}
	}()
	for _, r := range rows {
		f.Append(r)
	}
	// Indexes are snapshots of the data at build time.
	db.indexes.DropRelation(rel.Name)
	return nil
}

// Seal finishes bulk loading a relation (accounts the final partial page).
func (db *DB) Seal(relation string) error {
	f, ok := db.store.Lookup(relation)
	if !ok {
		return fmt.Errorf("engine: unknown relation %s", relation)
	}
	f.Seal()
	return nil
}

// Options control query execution.
type Options struct {
	Strategy Strategy
	// Planner options (forced join methods, temp page sizes) for the
	// transform strategies.
	Planner planner.Options
	// NoFallback makes a non-transformable query an error instead of
	// falling back to nested iteration.
	NoFallback bool
	// VerifyParallel runs the differential oracle after a parallel
	// transformed query: the result must be bag-equal to the sequential
	// plan's and (for NEST-JA2, excluding ALL quantifiers) set-equal to
	// nested iteration's. Disagreement fails the query. It has no effect
	// unless Planner.Parallelism enables parallel plans.
	VerifyParallel bool

	// Lifecycle governance. A query exceeding Timeout fails with
	// qctx.ErrQueryTimeout; one producing more than MaxRows result rows
	// fails with qctx.ErrRowBudget; one buffering more than MaxBytes in
	// hash builds and sorts fails with qctx.ErrMemoryBudget (a cost-gated
	// parallel plan is retried sequentially once first — see Query). Zero
	// values mean ungoverned, and execution pays only nil checks.
	Timeout  time.Duration
	MaxRows  int64
	MaxBytes int64
	// Spill selects this query's spill policy. SpillDefault resolves to
	// SpillAuto when the DB has a spill manager (EnableSpill) and to
	// SpillOff otherwise; without a manager every policy degrades to
	// SpillOff — there is nowhere to write runs.
	Spill qctx.SpillPolicy
	// Cancel, when non-nil, cancels the query with qctx.ErrCanceled as
	// soon as the channel is closed (e.g. Ctrl-C in the REPL).
	Cancel <-chan struct{}

	// Sink, when non-nil, streams the result instead of materializing it:
	// see RowSink. The network server uses it so a slow client throttles
	// the executor rather than buffering the whole result. Incompatible
	// with VerifyParallel (the oracle needs materialized rows to compare).
	Sink *RowSink

	// noAdmission bypasses the admission gateway. Internal: the
	// differential-oracle re-runs inside an already-admitted query use it,
	// both to avoid deadlocking against their own ticket and to keep
	// oracle work out of the admission accounting.
	noAdmission bool
	// ticket is the admission grant governing this query, when the
	// gateway is enabled.
	ticket *admission.Ticket
	// stream wraps Sink for one execution, tracking whether rows have
	// already escaped (which fences the engine's re-run retries).
	stream *streamState
}

// governed reports whether the query needs a lifecycle context: any
// explicit limit, or an admission ticket (drain cancels through it).
func (o Options) governed() bool {
	return o.Timeout > 0 || o.MaxRows > 0 || o.MaxBytes > 0 || o.Cancel != nil || o.ticket != nil
}

// Result is a completed query.
type Result struct {
	Columns  []string
	Rows     []storage.Tuple
	Stats    storage.IOStats // page I/Os consumed by this query
	Spill    spill.Stats     // spill runs/bytes written by this query
	Strategy Strategy        // strategy requested
	FellBack bool            // true if transformation fell back to nested iteration
	Affected int64           // rows inserted/updated/deleted by Exec DML
	Profile  classify.QueryProfile
	Trace    []string // transformation steps and plan notes
}

// Query parses, resolves, and executes one SQL statement. With admission
// enabled it first passes the gateway: it may wait in the FIFO queue
// (the wait counts against Timeout), be shed with qctx.ErrOverloaded,
// be rejected with qctx.ErrQueryTimeout if its deadline expires before a
// slot frees, or run with a degraded (smaller) memory lease and a
// sequential plan under pool pressure.
func (db *DB) Query(sql string, opts Options) (*Result, error) {
	if db.admit != nil && !opts.noAdmission {
		ticket, err := db.admit.Admit(admission.Request{
			Timeout:  opts.Timeout,
			MemBytes: opts.MaxBytes,
			Cancel:   opts.Cancel,
		})
		if err != nil {
			return nil, err
		}
		defer ticket.Release()
		// Queue time already consumed part of the deadline; the qctx
		// timer below gets only what is left.
		if rem, ok := ticket.Remaining(); ok {
			opts.Timeout = rem
		}
		if lease := ticket.Lease(); lease > 0 {
			opts.MaxBytes = lease
		}
		opts.ticket = ticket
	}
	return db.run(sql, opts)
}

// run executes one already-admitted (or ungoverned) statement.
func (db *DB) run(sql string, opts Options) (*Result, error) {
	if db.wal != nil && !opts.noAdmission {
		// Shared commit-order lock: a query never observes a DML
		// statement half-applied, and a checkpoint never snapshots one.
		// Internal oracle re-runs (noAdmission) already execute under
		// the outer query's hold — a recursive RLock could deadlock
		// against a writer, so they must not re-acquire.
		db.dmlMu.RLock()
		defer db.dmlMu.RUnlock()
	}
	if opts.Sink != nil {
		if opts.VerifyParallel {
			return nil, fmt.Errorf("engine: streaming sink is incompatible with VerifyParallel")
		}
		opts.stream = &streamState{sink: opts.Sink}
	}
	qb, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	out, err := schema.Resolve(db.cat, qb)
	if err != nil {
		return nil, err
	}
	res := &Result{Strategy: opts.Strategy, Profile: classify.Profile(qb)}
	for _, c := range out {
		res.Columns = append(res.Columns, c.Name)
	}
	if opts.stream != nil {
		// The header goes out before execution so even an empty (or
		// failing) result stream has told the client its shape.
		if err := opts.stream.columns(res.Columns); err != nil {
			return nil, err
		}
	}

	// Resolve the spill policy: without a manager there is nowhere to
	// write runs, so every policy degrades to off.
	spillPolicy := opts.Spill
	if db.spill == nil {
		spillPolicy = qctx.SpillOff
	} else if spillPolicy == qctx.SpillDefault {
		spillPolicy = qctx.SpillAuto
	}
	spillThreshold := int64(0)
	if spillPolicy == qctx.SpillAuto {
		spillThreshold = db.spillThreshold
	}

	// Lifecycle context: nil (all no-ops) unless a limit is configured —
	// or spilling needs the context's reservation bookkeeping (a forced
	// policy, or an auto threshold without any hard budget).
	var qc *qctx.QueryContext
	if opts.governed() || spillPolicy == qctx.SpillForced || spillThreshold > 0 {
		qc = qctx.New(qctx.Limits{
			Timeout: opts.Timeout, MaxRows: opts.MaxRows, MaxBytes: opts.MaxBytes,
			Spill: spillPolicy, SpillThreshold: spillThreshold,
		})
		defer qc.Finish()
		// A drain cancels stragglers through the bound ticket.
		opts.ticket.Bind(qc)
		if opts.Cancel != nil {
			// An already-closed Cancel channel stops the query before it
			// starts — don't leave that to the watcher goroutine's schedule.
			select {
			case <-opts.Cancel:
				qc.Cancel(qctx.ErrCanceled)
				return nil, qc.Err()
			default:
			}
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-opts.Cancel:
					qc.Cancel(qctx.ErrCanceled)
				case <-stop:
				case <-qc.Done():
				}
			}()
		}
	}

	if opts.ticket != nil && opts.ticket.Degraded() && parallelRequested(opts) {
		// Overload degradation: a reduced memory lease means pool
		// pressure, and sequential plans buffer less than partitioned
		// parallel hash builds.
		opts.Planner.Parallelism = 0
		opts.Planner.ForceParallel = false
		res.Trace = append(res.Trace,
			fmt.Sprintf("admission: degraded memory lease (%d bytes); running sequentially", opts.MaxBytes))
	}

	before := db.store.Stats()
	baseTrace := len(res.Trace)
	for attempt := 0; ; {
		res.Rows, res.FellBack = nil, false
		switch opts.Strategy {
		case NestedIteration:
			err = db.runNested(qb, qc, opts.stream, res)
		case TransformJA2, TransformKim:
			variant := transform.JA2
			if opts.Strategy == TransformKim {
				variant = transform.KimJA
			}
			err = db.runTransformed(qb, variant, opts, qc, res)
		default:
			err = fmt.Errorf("engine: unknown strategy %v", opts.Strategy)
		}
		// Transient-fault retry: only injected storage faults qualify
		// (qctx.Retryable), only under admission control, with capped
		// exponential backoff + jitter. The deadline keeps ticking
		// through the backoff sleep. A streaming query that has already
		// delivered rows is never re-run — the client would see them twice.
		if err == nil || db.admit == nil || opts.noAdmission || !qctx.Retryable(err) ||
			opts.stream.hasEmitted() || opts.stream.sinkBroken() {
			break
		}
		delay, ok := db.admit.RetryDelay(attempt)
		if !ok {
			break
		}
		attempt++
		// Drop the failed attempt's transform/plan notes so Explain shows
		// one coherent execution, then record the retry itself.
		res.Trace = append(res.Trace[:baseTrace],
			fmt.Sprintf("transient fault (%v); retry %d after %v", err, attempt, delay))
		baseTrace = len(res.Trace)
		interrupted := false
		select {
		case <-time.After(delay):
		case <-qc.Done():
			interrupted = true
		}
		if interrupted || qc.Check() != nil {
			break
		}
		qc.ResetUsage()
	}
	if err != nil {
		return nil, err
	}
	res.Stats = db.store.Stats().Sub(before)
	if db.wal != nil {
		// Surface the durability counters in EXPLAIN, next to the spill
		// line; recovery counters ride along after a boot that replayed.
		res.Trace = append(res.Trace, "durability: "+db.wal.Stats().String())
		if db.recovery.Recovered() {
			res.Trace = append(res.Trace, "durability: "+db.recovery.String())
		}
	}
	if opts.VerifyParallel && parallelRequested(opts) && !res.FellBack &&
		(opts.Strategy == TransformJA2 || opts.Strategy == TransformKim) {
		if err := db.verifyParallel(sql, qb, opts, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// contain runs fn on the calling goroutine and converts a panic — a
// storage fault, a bug in value or exec code — into a *qctx.PanicError,
// so one query's failure never kills the process. Deferred cleanups
// below fn (planner temp drops, evaluator Close) run during the unwind
// before the recovery here.
func contain(fn func() error) (err error) {
	defer func() {
		if pe := qctx.Recovered(recover()); pe != nil {
			err = pe
		}
	}()
	return fn()
}

func (db *DB) runNested(qb *ast.QueryBlock, qc *qctx.QueryContext, stream *streamState, res *Result) error {
	ev := exec.NewEvaluator(db.cat, db.store)
	ev.QC = qc
	defer ev.Close()
	var rows []storage.Tuple
	err := contain(func() error {
		var err error
		rows, _, err = ev.EvalQuery(qb)
		return err
	})
	if err != nil {
		return err
	}
	if stream != nil {
		// Nested iteration computes its result before any row can leave;
		// the stream still sees uniform batches (no backpressure gain on
		// this path — transformed plans are the streaming fast path).
		if err := stream.emitSlice(rows); err != nil {
			return err
		}
	} else {
		res.Rows = rows
	}
	res.Trace = append(res.Trace, "evaluated by nested iteration")
	return nil
}

func (db *DB) runTransformed(qb *ast.QueryBlock, variant transform.Variant, opts Options, qc *qctx.QueryContext, res *Result) error {
	tr, err := transform.New(db.cat, variant).Transform(qb)
	if errors.Is(err, transform.ErrNotTransformable) && !opts.NoFallback {
		res.FellBack = true
		res.Trace = append(res.Trace, fmt.Sprintf("fallback to nested iteration: %v", err))
		return db.runNested(qb, qc, opts.stream, res)
	}
	if err != nil {
		return err
	}
	for _, s := range tr.Steps {
		res.Trace = append(res.Trace, s.Rule+": "+s.Detail)
	}
	popts := opts.Planner
	if popts.Stats == nil {
		popts.Stats = db.stats
	}
	if popts.Indexes == nil {
		popts.Indexes = db.indexes
	}
	popts.QC = qc
	if opts.stream != nil {
		popts.Sink = opts.stream.batch
		popts.SinkBatchRows = opts.Sink.BatchRows
	}
	var qid int64
	if popts.TempSuffix == "" {
		// Namespace this query's TEMPn materializations in the shared
		// store and catalog so concurrent queries cannot collide.
		qid = db.qcount.Add(1)
		popts.TempSuffix = fmt.Sprintf("#q%d", qid)
	}
	// Spill session: run files share the query's namespace id and are
	// always removed when this function returns — success, error, or
	// contained panic alike.
	var sess *spill.Session
	if db.spill != nil {
		if sp := qc.SpillPolicy(); sp == qctx.SpillAuto || sp == qctx.SpillForced {
			if qid == 0 {
				qid = db.qcount.Add(1)
			}
			sess = db.spill.NewSession(fmt.Sprintf("q%d", qid))
			defer sess.Close()
			popts.Spill = sess
		}
	}
	// Circuit breaker: after repeated parallel-worker faults the parallel
	// path is closed for a cooldown. Cost-gated parallel requests degrade
	// to sequential; an explicit ForceParallel demand fails typed.
	useBreaker := db.admit != nil && !opts.noAdmission &&
		(popts.Parallelism > 1 || popts.Parallelism < 0)
	if useBreaker && !db.admit.AllowParallel() {
		if popts.ForceParallel {
			return fmt.Errorf("engine: parallel plan refused: %w", qctx.ErrCircuitOpen)
		}
		res.Trace = append(res.Trace, "admission: parallel circuit open; running sequentially")
		popts.Parallelism = 0
		useBreaker = false
	}
	var rows []storage.Tuple
	runPlan := func(o planner.Options) error {
		pl := planner.New(db.cat, db.store, o)
		err := contain(func() error {
			var err error
			rows, _, err = pl.Run(tr)
			return err
		})
		res.Trace = append(res.Trace, pl.Notes()...)
		return err
	}
	err = runPlan(popts)
	if useBreaker {
		// Report the parallel outcome so the breaker can trip or heal; a
		// contained panic is a worker fault, anything else (success,
		// timeout, budget) means the parallel path itself held up.
		var pe *qctx.PanicError
		if errors.As(err, &pe) {
			db.admit.ReportParallelFault()
		} else {
			db.admit.ReportParallelOK()
		}
	}
	parallel := popts.Parallelism > 1 || popts.Parallelism < 0
	if err != nil && parallel && retrySequentially(err) &&
		!opts.stream.hasEmitted() && !opts.stream.sinkBroken() {
		// Graceful degradation: a parallel plan that lost a worker to a
		// fault, or blew the memory budget partitioning its build side,
		// is retried sequentially once. Budget counters reset; the
		// original deadline keeps ticking. Timeouts, explicit cancels,
		// and row-budget violations are not retried — a sequential run
		// would exceed the same limits.
		qc.ResetUsage()
		res.Trace = append(res.Trace, fmt.Sprintf("parallel plan failed (%v); retrying sequentially", err))
		seq := popts
		seq.Parallelism = 0
		seq.ForceParallel = false
		err = runPlan(seq)
	}
	if errors.Is(err, qctx.ErrMemoryBudget) && sess != nil &&
		qc.SpillPolicy() == qctx.SpillAuto &&
		!opts.stream.hasEmitted() && !opts.stream.sinkBroken() {
		// The last degradation rung before failing: under SpillAuto an
		// operator whose buffer merely FITS the budget keeps it resident
		// and can starve a later charge that has no spill path (a temp
		// table's partial-page buffer models real memory). Rerun once,
		// sequentially, refusing every reservation — the resident set
		// collapses to the irreducible page buffers, and the sequential
		// spilled plan is deterministic, so results are unchanged.
		qc.ResetUsage()
		qc.ForceSpill()
		res.Trace = append(res.Trace, fmt.Sprintf("memory budget exceeded (%v); retrying with forced spill", err))
		seq := popts
		seq.Parallelism = 0
		seq.ForceParallel = false
		err = runPlan(seq)
	}
	if sess != nil {
		res.Spill = sess.Stats()
		if res.Spill.Runs > 0 {
			res.Trace = append(res.Trace, fmt.Sprintf("spill: %d run(s), %d bytes", res.Spill.Runs, res.Spill.Bytes))
		}
	}
	if err != nil {
		return err
	}
	res.Rows = rows
	return nil
}

// retrySequentially reports whether a parallel-plan failure is worth one
// sequential retry: a contained panic (worker fault) or a memory-budget
// violation (sequential plans buffer less than a partitioned hash build).
func retrySequentially(err error) bool {
	if errors.Is(err, qctx.ErrQueryTimeout) || errors.Is(err, qctx.ErrCanceled) || errors.Is(err, qctx.ErrRowBudget) {
		return false
	}
	var pe *qctx.PanicError
	return errors.As(err, &pe) || errors.Is(err, qctx.ErrMemoryBudget)
}

// Explain returns a textual report of how the query would be (and was)
// processed under the given options: the classification profile, the
// transformation steps with their SQL, the plan decisions, and the final
// canonical query. It executes the query to obtain measured page I/Os.
func (db *DB) Explain(sql string, opts Options) (string, error) {
	qb, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	if _, err := schema.Resolve(db.cat, qb); err != nil {
		return "", err
	}
	res, err := db.Query(sql, opts)
	if err != nil {
		return "", err
	}
	s := fmt.Sprintf("Query:\n%s\n\nStrategy: %v\n", qb.Pretty(), opts.Strategy)
	s += fmt.Sprintf("Nesting: %d block(s), depth %d", res.Profile.Blocks, res.Profile.MaxDepth)
	for _, ty := range res.Profile.Types {
		s += ", " + ty.String()
	}
	s += "\n"
	if res.Profile.MaxDepth > 0 {
		s += "\nQuery tree (Figure 2 style):\n" + querygraph.Build(qb).ASCII()
	}
	if res.FellBack {
		s += "Fell back to nested iteration.\n"
	}
	if len(res.Trace) > 0 {
		s += "\nSteps:\n"
		for _, t := range res.Trace {
			s += "  " + t + "\n"
		}
	}
	s += fmt.Sprintf("\nMeasured cost: %v\nRows: %d\n", res.Stats, len(res.Rows))
	return s, nil
}
