package engine_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func rowsInOrder(res *engine.Result) string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return strings.Join(out, " ")
}

func TestOrderByBothStrategies(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	sql := "SELECT SNAME, STATUS FROM S WHERE STATUS >= 20 ORDER BY STATUS DESC, SNAME"
	want := "('Adams', 30) ('Blake', 30) ('Clark', 20) ('Smith', 20)"
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		res := query(t, db, sql, engine.Options{Strategy: s})
		if got := rowsInOrder(res); got != want {
			t.Errorf("%v order = %v, want %v", s, got, want)
		}
	}
}

func TestOrderByOnNestedQuery(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	sql := workload.KiesslingQ2 + " ORDER BY PNUM"
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		res := query(t, db, sql, engine.Options{Strategy: s})
		if got := rowsInOrder(res); got != "(8) (10)" {
			t.Errorf("%v order = %v", s, got)
		}
	}
	sql = workload.KiesslingQ2 + " ORDER BY PNUM DESC"
	res := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	if got := rowsInOrder(res); got != "(10) (8)" {
		t.Errorf("desc order = %v", got)
	}
}

func TestOrderByAggregateOutput(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	sql := `SELECT PNUM, COUNT(SHIPDATE) AS CT FROM SUPPLY GROUP BY PNUM ORDER BY CT DESC, PNUM`
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		res := query(t, db, sql, engine.Options{Strategy: s})
		if got := rowsInOrder(res); got != "(3, 2) (10, 2) (8, 1)" {
			t.Errorf("%v order = %v", s, got)
		}
	}
}

func TestOrderByByAlias(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	sql := "SELECT SNAME AS N FROM S ORDER BY N"
	res := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	if got := rowsInOrder(res); got != "('Adams') ('Blake') ('Clark') ('Jones') ('Smith')" {
		t.Errorf("alias order = %v", got)
	}
}

func TestOrderByErrors(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	cases := []string{
		// ORDER BY column not in the SELECT list.
		"SELECT SNAME FROM S ORDER BY STATUS",
		// ORDER BY inside a subquery.
		"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP ORDER BY QTY)",
		// Unknown column.
		"SELECT SNAME FROM S ORDER BY NOPE",
	}
	for _, sql := range cases {
		if _, err := db.Query(sql, engine.Options{}); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

// A type-JA query whose aggregate is over a DATE column exercises the
// aggregate-type plumbing through the whole transformation.
func TestDateAggregateThroughJA2(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	sql := `
		SELECT PNUM FROM PARTS
		WHERE QOH < 100 AND
		      PNUM = (SELECT MAX(PNUM) FROM SUPPLY
		              WHERE SUPPLY.PNUM = PARTS.PNUM AND
		                    SHIPDATE = (SELECT MAX(SHIPDATE) FROM SUPPLY))`
	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	if sortedRows(ni) != sortedRows(ja2) {
		t.Errorf("date aggregate diverges:\n  NI: %v\n  JA2: %v", sortedRows(ni), sortedRows(ja2))
	}
	// MAX(SHIPDATE) over all of SUPPLY is 5-7-83, shipped for part 8.
	if sortedRows(ni) != "(8)" {
		t.Errorf("ground truth = %v", sortedRows(ni))
	}
}

func TestHavingBothStrategies(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	sql := `SELECT ORIGIN, COUNT(QTY) AS CT, MAX(QTY) AS MX FROM SP
	        GROUP BY ORIGIN HAVING CT >= 3 AND MX > 300 ORDER BY ORIGIN`
	// London: 7 shipments, max 400; Paris: 4 shipments, max 400; Oslo: 1.
	want := "('London', 7, 400) ('Paris', 4, 400)"
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		res := query(t, db, sql, engine.Options{Strategy: s})
		if got := rowsInOrder(res); got != want {
			t.Errorf("%v = %v, want %v", s, got, want)
		}
	}
}

func TestHavingOnGroupColumnName(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	sql := `SELECT PNUM, COUNT(QUAN) AS CT FROM SUPPLY GROUP BY PNUM HAVING PNUM < 9`
	for _, s := range []engine.Strategy{engine.NestedIteration, engine.TransformJA2} {
		res := query(t, db, sql, engine.Options{Strategy: s})
		if got := rowsInOrder(res); got != "(3, 2) (8, 1)" && got != "(8, 1) (3, 2)" {
			t.Errorf("%v = %v", s, got)
		}
	}
}

// TestOrderByUnderParallelism is the regression test for ordering
// nondeterminism: workers finish in arbitrary order, so a parallel plan
// must place the ORDER BY sort above the exchange (parallel nodes report
// no sort order, forbidding the section 7.4 sort elisions). The full
// ordered row string — not a sorted bag — must match the sequential plan
// on every run.
func TestOrderByUnderParallelism(t *testing.T) {
	popts := func() engine.Options {
		o := engine.Options{Strategy: engine.TransformJA2, NoFallback: true}
		o.Planner.Parallelism = 4
		o.Planner.ForceParallel = true
		return o
	}
	t.Run("aggregate", func(t *testing.T) {
		db := newDB(t, 8, workload.LoadSuppliers)
		sql := `SELECT ORIGIN, COUNT(QTY) AS CT FROM SP GROUP BY ORIGIN ORDER BY CT DESC, ORIGIN`
		seq := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
		sawParallel := false
		for range 25 { // ordering bugs are racy: one pass is not evidence
			par := query(t, db, sql, popts())
			if got, want := rowsInOrder(par), rowsInOrder(seq); got != want {
				t.Fatalf("parallel order = %v, want %v", got, want)
			}
			sawParallel = sawParallel || usedParallel(par)
		}
		if !sawParallel {
			t.Error("no run used a parallel plan; test exercises nothing")
		}
	})
	t.Run("nested", func(t *testing.T) {
		db := newDB(t, 8, workload.LoadDuplicates)
		sql := workload.KiesslingQ2 + " ORDER BY PNUM DESC"
		for range 25 {
			par := query(t, db, sql, popts())
			if got := rowsInOrder(par); got != "(10) (8) (3)" {
				t.Fatalf("parallel nested order = %v, want (10) (8) (3)", got)
			}
		}
	})
}

func TestHavingErrors(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	cases := []string{
		// HAVING without aggregates.
		"SELECT SNAME FROM S HAVING SNAME = 'x'",
		// Unknown output column.
		"SELECT ORIGIN, COUNT(QTY) AS CT FROM SP GROUP BY ORIGIN HAVING NOPE > 1",
		// Qualified reference.
		"SELECT ORIGIN, COUNT(QTY) AS CT FROM SP GROUP BY ORIGIN HAVING SP.CT > 1",
		// Type mismatch.
		"SELECT ORIGIN, COUNT(QTY) AS CT FROM SP GROUP BY ORIGIN HAVING CT > 'x'",
		// Non-literal right side.
		"SELECT ORIGIN, COUNT(QTY) AS CT FROM SP GROUP BY ORIGIN HAVING CT > QTY",
	}
	for _, sql := range cases {
		if _, err := db.Query(sql, engine.Options{}); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}
