package engine_test

import (
	"repro/internal/workload"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestExecScript(t *testing.T) {
	db := engine.New(8)
	res, err := db.Exec(`
		CREATE TABLE EMP (ID INTEGER, NAME VARCHAR(10), SAL FLOAT, HIRED DATE,
		                  PRIMARY KEY (ID));
		INSERT INTO EMP VALUES (1, 'ada', 10.5, 6-1-79), (2, 'bob', 9, '1-1-81');
		INSERT INTO EMP VALUES (3, 'cyd', NULL, NULL);
		SELECT NAME FROM EMP WHERE HIRED < 1-1-80;
	`, engine.Options{Strategy: engine.TransformJA2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "ada" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Int 9 was widened into the FLOAT column.
	res, err = db.Exec("SELECT SAL FROM EMP WHERE ID = 2", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Float(); got != 9.0 {
		t.Errorf("widened SAL = %v", got)
	}
}

func TestExecMultipleInsertsSameTable(t *testing.T) {
	db := engine.New(8)
	if _, err := db.Exec(`CREATE TABLE T (X INT)`, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	// Two separate INSERT statements: the second reopens the sealed file.
	for range 2 {
		if _, err := db.Exec(`INSERT INTO T VALUES (1), (2)`, engine.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT X FROM T`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(res.Rows))
	}
}

func TestExecNoSelectReturnsAffected(t *testing.T) {
	db := engine.New(8)
	res, err := db.Exec(`CREATE TABLE T (X INT); INSERT INTO T VALUES (1), (2), (3)`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("res = nil, want bare result with Affected")
	}
	if len(res.Columns) != 0 || len(res.Rows) != 0 {
		t.Errorf("res has rows/columns: %+v", res)
	}
	if res.Affected != 3 {
		t.Errorf("Affected = %d, want 3", res.Affected)
	}
	res, err = db.Exec(`UPDATE T SET X = 9 WHERE X >= 2; SELECT T.X FROM T WHERE T.X = 9`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 || len(res.Rows) != 2 {
		t.Errorf("Affected = %d rows = %d, want 2 and 2", res.Affected, len(res.Rows))
	}
}

func TestExecErrors(t *testing.T) {
	db := engine.New(8)
	cases := []struct {
		script, frag string
	}{
		{"INSERT INTO NOPE VALUES (1)", "unknown relation"},
		{"CREATE TABLE T (X INT); INSERT INTO T VALUES (1, 2)", "columns"},
		{"CREATE TABLE U (X INT); INSERT INTO U VALUES ('abc')", "cannot store"},
		{"CREATE TABLE V (D DATE); INSERT INTO V VALUES ('notadate')", "cannot parse date"},
		{"CREATE TABLE V2 (X INT); CREATE TABLE V2 (Y INT)", "already defined"},
		{"GARBAGE", "expected SELECT"},
	}
	for _, c := range cases {
		if _, err := db.Exec(c.script, engine.Options{}); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Exec(%q): err = %v, want containing %q", c.script, err, c.frag)
		}
	}
}

// DDL, DML, and a nested query in one script, end to end.
func TestExecEndToEndNestedQuery(t *testing.T) {
	db := engine.New(8)
	res, err := db.Exec(`
		CREATE TABLE PARTS (PNUM INT, QOH INT);
		CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
		INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
		INSERT INTO SUPPLY VALUES
			(3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
			(10, 2, 8-10-81), (8, 5, 5-7-83);
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80);
	`, engine.Options{Strategy: engine.TransformJA2})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, res, "(10)", "(8)")
}

func TestExecDeleteAndUpdate(t *testing.T) {
	db := engine.New(8)
	if _, err := db.Exec(`
		CREATE TABLE T (K INT, V INT);
		INSERT INTO T VALUES (1, 10), (2, 20), (3, 30), (4, 40);
		DELETE FROM T WHERE V >= 30;
		UPDATE T SET V = 99 WHERE K = 1;
	`, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT K, V FROM T ORDER BY K", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(res); got != "(1, 99) (2, 20)" {
		t.Errorf("after DML = %v", got)
	}
}

// DELETE and UPDATE WHERE clauses support nested subqueries, including
// correlated ones over the target table itself (evaluated against the
// pre-statement state, per SQL semantics).
func TestExecDMLWithSubqueries(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	if _, err := db.Exec(`
		DELETE FROM PARTS
		WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)
	`, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT PNUM FROM PARTS ORDER BY PNUM", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Q2 matched {10, 8}; only part 3 survives.
	if got := sortedRows(res); got != "(3)" {
		t.Errorf("after subquery DELETE = %v", got)
	}

	// Self-referencing UPDATE: bump the max-QOH row.
	if _, err := db.Exec(`
		CREATE TABLE U (K INT, V INT);
		INSERT INTO U VALUES (1, 5), (2, 9), (3, 7);
		UPDATE U SET V = 0 WHERE V = (SELECT MAX(V) FROM U);
	`, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec("SELECT K, V FROM U ORDER BY K", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(res); got != "(1, 5) (2, 0) (3, 7)" {
		t.Errorf("self-referencing UPDATE = %v", got)
	}
}

func TestExecDMLErrors(t *testing.T) {
	db := engine.New(8)
	if _, err := db.Exec("DELETE FROM NOPE", engine.Options{}); err == nil {
		t.Error("unknown table in DELETE")
	}
	if _, err := db.Exec(`
		CREATE TABLE T (K INT);
		UPDATE T SET NOPE = 1;
	`, engine.Options{}); err == nil {
		t.Error("unknown column in SET")
	}
	if _, err := db.Exec("UPDATE T SET K = 'x'", engine.Options{}); err == nil {
		t.Error("type mismatch in SET")
	}
	if _, err := db.Exec("DELETE FROM T WHERE NOPE = 1", engine.Options{}); err == nil {
		t.Error("unknown column in DELETE WHERE")
	}
}

func TestExecDMLInvalidatesIndexes(t *testing.T) {
	db := engine.New(8)
	if _, err := db.Exec(`
		CREATE TABLE T (K INT, V INT);
		INSERT INTO T VALUES (1, 10), (2, 20);
	`, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("T", "K"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM T WHERE K = 1", engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Indexes().On("T", "K") != nil {
		t.Error("index survived DELETE")
	}
}
