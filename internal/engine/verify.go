package engine

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/storage"
)

// This file implements the sequential-vs-parallel differential oracle.
// Parallel aggregation is exactly where the paper's COUNT bug would
// resurface — a partition with no matching inner tuples must still produce
// COUNT = 0 after the outer join — so a parallel plan is never trusted on
// its own: with Options.VerifyParallel set, its result is re-derived by
// the sequential plan (bag equality) and by nested iteration (set
// equality, the engine's semantic ground truth), and any disagreement
// fails the query.

// parallelRequested reports whether the planner options enable parallel
// operators (Parallelism < 0 means one worker per CPU, > 1 that many
// workers).
func parallelRequested(opts Options) bool {
	p := opts.Planner.Parallelism
	return p < 0 || p > 1
}

// verifyParallel cross-checks a parallel result. The sequential re-run of
// the same strategy must match as a bag — parallelism may only reorder
// rows, never change their multiplicities. Nested iteration must match as
// a set, and only for NEST-JA2: Kim's NEST-JA reproduces the COUNT bug by
// design, and ALL-quantifier rewrites deliberately diverge from nested
// iteration on empty subquery results.
func (db *DB) verifyParallel(sql string, qb *ast.QueryBlock, opts Options, res *Result) error {
	seqOpts := opts
	seqOpts.VerifyParallel = false
	seqOpts.Planner.Parallelism = 0
	seqOpts.Planner.ForceParallel = false
	// Oracle re-runs happen inside an already-admitted query: going back
	// through the gateway would deadlock against our own ticket and skew
	// the admission counters.
	seqOpts.noAdmission = true
	seqOpts.ticket = nil
	seq, err := db.Query(sql, seqOpts)
	if err != nil {
		return fmt.Errorf("engine: parallel oracle: sequential re-run failed: %w", err)
	}
	if diff := diffRows(rowBag(res.Rows), rowBag(seq.Rows)); diff != "" {
		return fmt.Errorf("engine: parallel oracle: parallel and sequential plans disagree: %s", diff)
	}
	res.Trace = append(res.Trace, "parallel oracle: bag-equal to sequential plan")
	if opts.Strategy != TransformJA2 || hasAllQuantifier(qb) {
		return nil
	}
	ni, err := db.Query(sql, Options{Strategy: NestedIteration, noAdmission: true})
	if err != nil {
		return fmt.Errorf("engine: parallel oracle: nested-iteration re-run failed: %w", err)
	}
	if diff := diffRows(rowSet(res.Rows), rowSet(ni.Rows)); diff != "" {
		return fmt.Errorf("engine: parallel oracle: parallel plan and nested iteration disagree: %s", diff)
	}
	res.Trace = append(res.Trace, "parallel oracle: set-equal to nested iteration")
	return nil
}

// rowBag renders rows as a sorted multiset of printed tuples.
func rowBag(rows []storage.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// rowSet is rowBag with duplicates removed.
func rowSet(rows []storage.Tuple) []string {
	bag := rowBag(rows)
	out := bag[:0]
	for i, s := range bag {
		if i == 0 || s != bag[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// diffRows compares two sorted row renderings, returning "" when equal and
// a short description of the first difference otherwise.
func diffRows(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := range n {
		if a[i] != b[i] {
			return fmt.Sprintf("%d vs %d rows; first difference: %s vs %s", len(a), len(b), a[i], b[i])
		}
	}
	if len(a) != len(b) {
		extra := a
		if len(b) > len(a) {
			extra = b
		}
		return fmt.Sprintf("%d vs %d rows; first unmatched: %s", len(a), len(b), extra[n])
	}
	return ""
}

// hasAllQuantifier reports whether any predicate in the query (at any
// nesting level) uses the ALL quantifier.
func hasAllQuantifier(qb *ast.QueryBlock) bool {
	found := false
	ast.VisitBlocks(qb, func(b *ast.QueryBlock, _ int) bool {
		for _, p := range b.Where {
			if predHasAll(p) {
				found = true
			}
		}
		return !found
	})
	return found
}

func predHasAll(p ast.Predicate) bool {
	switch p := p.(type) {
	case *ast.QuantPred:
		return p.Quant == ast.All
	case *ast.OrPred:
		return predHasAll(p.Left) || predHasAll(p.Right)
	case *ast.AndPred:
		return predHasAll(p.Left) || predHasAll(p.Right)
	case *ast.NotPred:
		return predHasAll(p.P)
	}
	return false
}
