package engine

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Exec runs a script of semicolon-separated statements: CREATE TABLE,
// INSERT INTO, DELETE FROM, UPDATE, and SELECT. It returns the result of
// the last SELECT (nil if the script contains none). DDL and DML take
// effect immediately; a failing statement aborts the script with prior
// statements applied (no transactional rollback — the paper's world has
// none either).
func (db *DB) Exec(script string, opts Options) (*Result, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		switch stmt := stmt.(type) {
		case *sqlparser.CreateTableStmt:
			if err := db.CreateRelation(stmt.Relation, 0); err != nil {
				return nil, err
			}
		case *sqlparser.InsertStmt:
			if err := contain(func() error { return db.execInsert(stmt) }); err != nil {
				return nil, err
			}
		case *sqlparser.DeleteStmt:
			err := contain(func() error { _, err := db.execDelete(stmt); return err })
			if err != nil {
				return nil, err
			}
		case *sqlparser.UpdateStmt:
			err := contain(func() error { _, err := db.execUpdate(stmt); return err })
			if err != nil {
				return nil, err
			}
		case *sqlparser.SelectStmt:
			res, err := db.Query(stmt.Query.String(), opts)
			if err != nil {
				return nil, err
			}
			last = res
		default:
			return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
		}
	}
	return last, nil
}

// execInsert type-checks literals against the table schema (coercing
// string literals to dates for DATE columns) and appends the rows.
func (db *DB) execInsert(stmt *sqlparser.InsertStmt) error {
	rel, ok := db.cat.Lookup(stmt.Table)
	if !ok {
		return fmt.Errorf("engine: unknown relation %s", stmt.Table)
	}
	for _, row := range stmt.Rows {
		if len(row) != len(rel.Columns) {
			return fmt.Errorf("engine: INSERT row has %d values, %s has %d columns",
				len(row), rel.Name, len(rel.Columns))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			cv, err := coerceInsertValue(v, rel.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("engine: column %s of %s: %w", rel.Columns[i].Name, rel.Name, err)
			}
			t[i] = cv
		}
		if err := db.Insert(rel.Name, t); err != nil {
			return err
		}
	}
	return db.Seal(stmt.Table)
}

// resolveDMLWhere resolves a DELETE/UPDATE WHERE clause by wrapping it in
// a synthetic SELECT over the target relation, returning the relation, its
// row schema, and the resolved predicates.
func (db *DB) resolveDMLWhere(table string, where []ast.Predicate) (*schema.Relation, exec.RowSchema, []ast.Predicate, error) {
	rel, ok := db.cat.Lookup(table)
	if !ok {
		return nil, nil, nil, fmt.Errorf("engine: unknown relation %s", table)
	}
	qb := &ast.QueryBlock{
		Select: []ast.SelectItem{{Col: ast.ColumnRef{Table: rel.Name, Column: rel.Columns[0].Name}}},
		From:   []ast.TableRef{{Relation: rel.Name}},
		Where:  where,
	}
	if _, err := schema.Resolve(db.cat, qb); err != nil {
		return nil, nil, nil, err
	}
	sch := make(exec.RowSchema, len(rel.Columns))
	for i, c := range rel.Columns {
		sch[i] = exec.ColID{Table: rel.Name, Column: c.Name}
	}
	return rel, sch, qb.Where, nil
}

// execDelete removes the rows matching the WHERE clause (all rows when it
// is absent), returning the count. The predicate supports the full
// dialect, including nested subqueries, evaluated by nested iteration.
func (db *DB) execDelete(stmt *sqlparser.DeleteStmt) (int, error) {
	rel, sch, where, err := db.resolveDMLWhere(stmt.Table, stmt.Where)
	if err != nil {
		return 0, err
	}
	f, _ := db.store.Lookup(rel.Name)
	ev := exec.NewEvaluator(db.cat, db.store)
	defer ev.Close()
	var evalErr error
	n := f.Rewrite(func(t storage.Tuple) (bool, storage.Tuple) {
		if evalErr != nil {
			return true, nil
		}
		match, err := ev.Qualifies(where, sch, t)
		if err != nil {
			evalErr = err
			return true, nil
		}
		return !match, nil
	})
	if evalErr != nil {
		return 0, evalErr
	}
	db.indexes.DropRelation(rel.Name)
	return n, nil
}

// execUpdate assigns the SET literals to the rows matching the WHERE
// clause, returning the count.
func (db *DB) execUpdate(stmt *sqlparser.UpdateStmt) (int, error) {
	rel, sch, where, err := db.resolveDMLWhere(stmt.Table, stmt.Where)
	if err != nil {
		return 0, err
	}
	type setIdx struct {
		pos int
		val value.Value
	}
	sets := make([]setIdx, len(stmt.Set))
	for i, sc := range stmt.Set {
		pos := rel.ColumnIndex(sc.Column)
		if pos < 0 {
			return 0, fmt.Errorf("engine: relation %s has no column %s", rel.Name, sc.Column)
		}
		v, err := coerceInsertValue(sc.Val, rel.Columns[pos].Type)
		if err != nil {
			return 0, fmt.Errorf("engine: column %s: %w", sc.Column, err)
		}
		sets[i] = setIdx{pos: pos, val: v}
	}
	f, _ := db.store.Lookup(rel.Name)
	ev := exec.NewEvaluator(db.cat, db.store)
	defer ev.Close()
	var evalErr error
	n := f.Rewrite(func(t storage.Tuple) (bool, storage.Tuple) {
		if evalErr != nil {
			return true, nil
		}
		match, err := ev.Qualifies(where, sch, t)
		if err != nil {
			evalErr = err
			return true, nil
		}
		if !match {
			return true, nil
		}
		nt := t.Clone()
		for _, si := range sets {
			nt[si.pos] = si.val
		}
		return true, nt
	})
	if evalErr != nil {
		return 0, evalErr
	}
	db.indexes.DropRelation(rel.Name)
	return n, nil
}

func coerceInsertValue(v value.Value, want value.Kind) (value.Value, error) {
	if v.IsNull() || v.Kind() == want {
		return v, nil
	}
	switch {
	case want == value.KindDate && v.Kind() == value.KindString:
		d, err := value.ParseDate(v.Str())
		if err != nil {
			return value.Null, err
		}
		return value.NewDateValue(d), nil
	case want == value.KindFloat && v.Kind() == value.KindInt:
		return value.NewFloat(float64(v.Int())), nil
	default:
		return value.Null, fmt.Errorf("cannot store %s into %s column", v.Kind(), want)
	}
}
