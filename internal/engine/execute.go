package engine

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

// Exec runs a script of semicolon-separated statements: CREATE TABLE,
// INSERT INTO, DELETE FROM, UPDATE, and SELECT. The returned result is
// the last SELECT's (with Affected accumulating every DML statement's
// row count), or a bare Result carrying only Affected when the script
// has no SELECT. DDL and DML take effect immediately; a failing
// statement aborts the script with prior statements applied (no
// transactional rollback — the paper's world has none either). With
// durability enabled each DML statement is acknowledged only once its
// commit record is durable.
func (db *DB) Exec(script string, opts Options) (*Result, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var last *Result
	var affected int64
	for _, stmt := range stmts {
		switch stmt := stmt.(type) {
		case *sqlparser.CreateTableStmt:
			if err := db.CreateRelation(stmt.Relation, 0); err != nil {
				return nil, err
			}
		case *sqlparser.InsertStmt:
			var n int
			if err := contain(func() error { var err error; n, err = db.execInsert(stmt); return err }); err != nil {
				return nil, err
			}
			affected += int64(n)
		case *sqlparser.DeleteStmt:
			var n int
			err := contain(func() error { var err error; n, err = db.execDelete(stmt); return err })
			if err != nil {
				return nil, err
			}
			affected += int64(n)
		case *sqlparser.UpdateStmt:
			var n int
			err := contain(func() error { var err error; n, err = db.execUpdate(stmt); return err })
			if err != nil {
				return nil, err
			}
			affected += int64(n)
		case *sqlparser.DropTableStmt:
			if err := contain(func() error { return db.DropRelation(stmt.Table) }); err != nil {
				return nil, err
			}
		case *sqlparser.SelectStmt:
			res, err := db.Query(stmt.Query.String(), opts)
			if err != nil {
				return nil, err
			}
			last = res
		default:
			return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
		}
	}
	if last == nil {
		last = &Result{Strategy: opts.Strategy}
	}
	last.Affected = affected
	return last, nil
}

// ExecSQL is the statement entry point for the network server: SELECTs
// stream through Query (admission, sinks, strategies), everything else
// goes through Exec. Unlike Query it accepts any statement kind.
func (db *DB) ExecSQL(sql string, opts Options) (*Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 1 {
		if sel, ok := stmts[0].(*sqlparser.SelectStmt); ok {
			return db.Query(sel.Query.String(), opts)
		}
	}
	return db.Exec(sql, opts)
}

// execInsert type-checks literals against the table schema (coercing
// string literals to dates for DATE columns) and appends the rows as
// one batch — with durability enabled, one commit record.
func (db *DB) execInsert(stmt *sqlparser.InsertStmt) (int, error) {
	rel, ok := db.cat.Lookup(stmt.Table)
	if !ok {
		return 0, fmt.Errorf("engine: unknown relation %s", stmt.Table)
	}
	rows := make([]storage.Tuple, len(stmt.Rows))
	for ri, row := range stmt.Rows {
		if len(row) != len(rel.Columns) {
			return 0, fmt.Errorf("engine: INSERT row has %d values, %s has %d columns",
				len(row), rel.Name, len(rel.Columns))
		}
		t := make(storage.Tuple, len(row))
		for i, v := range row {
			cv, err := coerceInsertValue(v, rel.Columns[i].Type)
			if err != nil {
				return 0, fmt.Errorf("engine: column %s of %s: %w", rel.Columns[i].Name, rel.Name, err)
			}
			t[i] = cv
		}
		rows[ri] = t
	}
	if err := db.Insert(rel.Name, rows...); err != nil {
		return 0, err
	}
	return len(rows), db.Seal(stmt.Table)
}

// resolveDMLWhere resolves a DELETE/UPDATE WHERE clause by wrapping it in
// a synthetic SELECT over the target relation, returning the relation, its
// row schema, and the resolved predicates.
func (db *DB) resolveDMLWhere(table string, where []ast.Predicate) (*schema.Relation, exec.RowSchema, []ast.Predicate, error) {
	rel, ok := db.cat.Lookup(table)
	if !ok {
		return nil, nil, nil, fmt.Errorf("engine: unknown relation %s", table)
	}
	qb := &ast.QueryBlock{
		Select: []ast.SelectItem{{Col: ast.ColumnRef{Table: rel.Name, Column: rel.Columns[0].Name}}},
		From:   []ast.TableRef{{Relation: rel.Name}},
		Where:  where,
	}
	if _, err := schema.Resolve(db.cat, qb); err != nil {
		return nil, nil, nil, err
	}
	sch := make(exec.RowSchema, len(rel.Columns))
	for i, c := range rel.Columns {
		sch[i] = exec.ColID{Table: rel.Name, Column: c.Name}
	}
	return rel, sch, qb.Where, nil
}

// execDelete removes the rows matching the WHERE clause (all rows when it
// is absent), returning the count. The predicate supports the full
// dialect, including nested subqueries, evaluated by nested iteration.
// Deletion is two-phase — decide every row first, then replace the heap
// file — so an evaluation error or an injected storage fault mid-decision
// leaves the table untouched instead of half-rewritten.
func (db *DB) execDelete(stmt *sqlparser.DeleteStmt) (int, error) {
	rel, sch, where, err := db.resolveDMLWhere(stmt.Table, stmt.Where)
	if err != nil {
		return 0, err
	}
	commit, n, err := db.applyDML(rel.Name, wal.RecDelete, stmt.String(), func(f *storage.HeapFile) (int, error) {
		ev := exec.NewEvaluator(db.cat, db.store)
		defer ev.Close()
		var kept []storage.Tuple
		removed := 0
		var evalErr error
		f.Scan(func(t storage.Tuple) bool {
			match, err := ev.Qualifies(where, sch, t)
			if err != nil {
				evalErr = err
				return false
			}
			if match {
				removed++
			} else {
				kept = append(kept, t.Clone())
			}
			return true
		})
		if evalErr != nil {
			return 0, evalErr
		}
		if removed > 0 {
			f.Replace(kept)
		}
		return removed, nil
	})
	if err != nil {
		return 0, err
	}
	return n, commit.Wait()
}

// execUpdate assigns the SET literals to the rows matching the WHERE
// clause, returning the count.
func (db *DB) execUpdate(stmt *sqlparser.UpdateStmt) (int, error) {
	rel, sch, where, err := db.resolveDMLWhere(stmt.Table, stmt.Where)
	if err != nil {
		return 0, err
	}
	type setIdx struct {
		pos int
		val value.Value
	}
	sets := make([]setIdx, len(stmt.Set))
	for i, sc := range stmt.Set {
		pos := rel.ColumnIndex(sc.Column)
		if pos < 0 {
			return 0, fmt.Errorf("engine: relation %s has no column %s", rel.Name, sc.Column)
		}
		v, err := coerceInsertValue(sc.Val, rel.Columns[pos].Type)
		if err != nil {
			return 0, fmt.Errorf("engine: column %s: %w", sc.Column, err)
		}
		sets[i] = setIdx{pos: pos, val: v}
	}
	commit, n, err := db.applyDML(rel.Name, wal.RecUpdate, stmt.String(), func(f *storage.HeapFile) (int, error) {
		ev := exec.NewEvaluator(db.cat, db.store)
		defer ev.Close()
		var rows []storage.Tuple
		changed := 0
		var evalErr error
		f.Scan(func(t storage.Tuple) bool {
			match, err := ev.Qualifies(where, sch, t)
			if err != nil {
				evalErr = err
				return false
			}
			nt := t.Clone()
			if match {
				changed++
				for _, si := range sets {
					nt[si.pos] = si.val
				}
			}
			rows = append(rows, nt)
			return true
		})
		if evalErr != nil {
			return 0, evalErr
		}
		if changed > 0 {
			f.Replace(rows)
		}
		return changed, nil
	})
	if err != nil {
		return 0, err
	}
	return n, commit.Wait()
}

// applyDML runs a DELETE/UPDATE body under the durability discipline:
// with the WAL enabled it holds the exclusive DML lock across decide,
// apply, and log append (so log order equals apply order), then hands
// the commit back for the caller to Wait on outside the lock. The body
// is two-phase by contract — it must not mutate the heap file before
// its row decisions are complete — so errors and injected fault panics
// (which unwind through the deferred unlock) leave the table intact.
// Mutations that touched no rows are not logged.
func (db *DB) applyDML(table string, rt wal.RecType, sql string, body func(*storage.HeapFile) (int, error)) (wal.Commit, int, error) {
	f, _ := db.store.Lookup(table)
	if db.wal == nil {
		n, err := body(f)
		if err == nil && n > 0 {
			db.indexes.DropRelation(table)
		}
		return wal.Commit{}, n, err
	}
	db.dmlMu.Lock()
	defer db.dmlMu.Unlock()
	if err := db.wal.Err(); err != nil {
		return wal.Commit{}, 0, err // poisoned: refuse before touching state
	}
	n, err := body(f)
	if err != nil || n == 0 {
		return wal.Commit{}, n, err
	}
	db.indexes.DropRelation(table)
	commit, err := db.wal.Append(wal.Record{Type: rt, SQL: sql})
	if err != nil {
		return wal.Commit{}, n, err
	}
	return commit, n, nil
}

// CoerceInsertValue applies INSERT literal coercion (string→date,
// int→float) without storing anything. The cluster coordinator needs
// this before hashing a row for placement: the hash must be taken over
// the value a worker will store, not the raw literal, or co-location
// silently breaks for DATE keys.
func CoerceInsertValue(v value.Value, want value.Kind) (value.Value, error) {
	return coerceInsertValue(v, want)
}

func coerceInsertValue(v value.Value, want value.Kind) (value.Value, error) {
	if v.IsNull() || v.Kind() == want {
		return v, nil
	}
	switch {
	case want == value.KindDate && v.Kind() == value.KindString:
		d, err := value.ParseDate(v.Str())
		if err != nil {
			return value.Null, err
		}
		return value.NewDateValue(d), nil
	case want == value.KindFloat && v.Kind() == value.KindInt:
		return value.NewFloat(float64(v.Int())), nil
	default:
		return value.Null, fmt.Errorf("cannot store %s into %s column", v.Kind(), want)
	}
}
