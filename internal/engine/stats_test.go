package engine_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func TestAnalyzeCollectsStats(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	if db.Statistics() != nil {
		t.Error("stats present before Analyze")
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	st := db.Statistics()
	if st == nil {
		t.Fatal("no stats after Analyze")
	}
	rs := st.Relation("SUPPLY")
	if rs == nil || rs.Tuples != 5 {
		t.Fatalf("SUPPLY stats = %+v", rs)
	}
	if rs.Distinct["PNUM"] != 3 {
		t.Errorf("SUPPLY PNUM distinct = %d, want 3", rs.Distinct["PNUM"])
	}
}

// Results must be identical with and without statistics — stats only steer
// join-method choices.
func TestStatsDoNotChangeResults(t *testing.T) {
	queries := []string{
		workload.KiesslingQ2,
		`SELECT PNUM FROM PARTS
		 WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
	}
	for seed := range 6 {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		db := randomInstance(t, rng, 8)
		sql := `SELECT PNUM, QOH FROM PARTS
		        WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`
		before, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Analyze(); err != nil {
			t.Fatal(err)
		}
		after, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatal(err)
		}
		if sortedRows(before) != sortedRows(after) {
			t.Errorf("seed %d: stats changed results:\n  before %v\n  after  %v",
				seed, sortedRows(before), sortedRows(after))
		}
	}
	// Fixed fixtures too.
	db := newDB(t, 8, workload.LoadKiessling)
	for _, sql := range queries {
		before := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
		if err := db.Analyze(); err != nil {
			t.Fatal(err)
		}
		after := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
		if sortedRows(before) != sortedRows(after) {
			t.Errorf("%q: stats changed results", sql)
		}
	}
}

// With statistics, the selective filter shrinks the estimate enough that
// the planner notes reflect informed choices (smoke check that the stats
// path is exercised).
func TestStatsInfluencePlanNotes(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	res := query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.TransformJA2})
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "join") {
		t.Errorf("trace lacks join decisions:\n%s", joined)
	}
}
