package engine

import (
	"repro/internal/exec"
	"repro/internal/storage"
)

// RowSink streams a query's result instead of materializing it on the
// Result: Columns is called exactly once (after name resolution, before
// any row), then Batch zero or more times with bounded row batches, in
// result order. Both callbacks run on the querying goroutine; a callback
// that blocks (a full network write buffer) blocks the executor's pull
// loop, which is how client backpressure reaches the operators. A
// callback error aborts the query and surfaces from Query unchanged.
//
// Restrictions: a sunk query reports Rows == nil on its Result, and
// VerifyParallel is rejected — the differential oracle needs the
// materialized result to compare against.
//
// Batch slices are reused by the executor; sinks must copy what they keep.
type RowSink struct {
	// BatchRows bounds rows per Batch call (0 = exec.DefaultBatchRows).
	BatchRows int
	Columns   func(cols []string) error
	Batch     func(rows []storage.Tuple) error
}

// streamState wraps a RowSink for one query execution. It tracks whether
// any rows have escaped to the caller: the engine's retry paths (the
// admission layer's transient-fault retry and the sequential retry of a
// failed parallel plan) re-run the whole query, which would duplicate
// already-delivered rows — so both are fenced once emission starts.
type streamState struct {
	sink       *RowSink
	colsSent   bool
	emitted    int64
	sinkFailed bool
}

// hasEmitted reports whether any batch reached the sink. Nil-safe so
// non-streaming paths can test it unconditionally.
func (s *streamState) hasEmitted() bool { return s != nil && s.emitted > 0 }

// sinkBroken reports whether a sink callback itself failed. A broken
// sink means the consumer is gone (a closed network connection, a
// stalled client past its write deadline): re-running the query on any
// retry path would stream into the same dead pipe, so retries are
// fenced even when no rows made it out.
func (s *streamState) sinkBroken() bool { return s != nil && s.sinkFailed }

// columns forwards the column header exactly once, surviving retries.
func (s *streamState) columns(cols []string) error {
	if s.colsSent {
		return nil
	}
	s.colsSent = true
	if s.sink.Columns == nil {
		return nil
	}
	if err := s.sink.Columns(cols); err != nil {
		s.sinkFailed = true
		return err
	}
	return nil
}

// batch forwards one batch, counting emission.
func (s *streamState) batch(rows []storage.Tuple) error {
	if len(rows) == 0 {
		return nil
	}
	if err := s.sink.Batch(rows); err != nil {
		s.sinkFailed = true
		return err
	}
	s.emitted += int64(len(rows))
	return nil
}

// emitSlice streams an already-materialized result (the nested-iteration
// evaluator computes its rows before any can be delivered) through the
// sink in BatchRows-sized chunks, so the wire sees the same batch shape
// regardless of the evaluation path.
func (s *streamState) emitSlice(rows []storage.Tuple) error {
	n := s.sink.BatchRows
	if n <= 0 {
		n = exec.DefaultBatchRows
	}
	for len(rows) > 0 {
		b := rows
		if len(b) > n {
			b = b[:n]
		}
		if err := s.batch(b); err != nil {
			return err
		}
		rows = rows[len(b):]
	}
	return nil
}
