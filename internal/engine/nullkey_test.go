package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/planner"
)

// Regression: NEST-JA2's step-4 back-join must be NULL-safe. For a COUNT
// aggregate, nested iteration counts an empty set for an outer row whose
// correlation key is NULL (the correlated predicate is Unknown for every
// inner row), so the row survives whenever `outer op 0` holds. The
// transform materializes that CT=0 group in TEMP3, but a plain equality
// back-join (TEMP3.K = A.K) is Unknown on NULL keys and silently dropped
// the group — Kim's COUNT bug resurfacing one join later. Found by the
// metamorph fuzzer (internal/metamorph), minimized by its shrinker to a
// single NULL-keyed outer row; kept here because the bug lived in the
// transform/exec layers, not the fuzzer.
const nullKeySetup = `
	CREATE TABLE NKA (R INTEGER, K INTEGER, V INTEGER, PRIMARY KEY (R));
	INSERT INTO NKA VALUES (1, NULL, 0), (2, 7, 1), (3, NULL, 2);
	CREATE TABLE NKB (ID INTEGER, K INTEGER, W INTEGER, PRIMARY KEY (ID));
	INSERT INTO NKB VALUES (10, 7, 1), (11, NULL, 2);
`

func newNullKeyDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New(8)
	if _, err := db.Exec(nullKeySetup, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNestJA2NullCorrelationKeyCount(t *testing.T) {
	db := newNullKeyDB(t)
	// R=1: COUNT over the empty correlated set is 0, V=0 <= 0 holds.
	// R=2: one matching shipment (the NULL-keyed NKB row matches nothing).
	// R=3: COUNT=0 but V=2, dropped.
	sql := `SELECT NKA.R, NKA.V FROM NKA
	        WHERE NKA.V <= (SELECT COUNT(*) FROM NKB WHERE NKB.K = NKA.K)`

	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(1, 0)", "(2, 1)")

	// The transform must agree under every join method for both the temp
	// builds and the final back-join, and under the parallel hash join.
	for tj := 0; tj < 3; tj++ {
		for fj := 0; fj < 3; fj++ {
			opts := engine.Options{Strategy: engine.TransformJA2, NoFallback: true}
			opts.Planner.TempJoin = planner.JoinMethod(tj)
			opts.Planner.FinalJoin = planner.JoinMethod(fj)
			wantRows(t, query(t, db, sql, opts), "(1, 0)", "(2, 1)")
		}
	}
	par := engine.Options{Strategy: engine.TransformJA2, NoFallback: true}
	par.Planner.Parallelism = 2
	par.Planner.ForceParallel = true
	wantRows(t, query(t, db, sql, par), "(1, 0)", "(2, 1)")
}

// NOT EXISTS reaches the same back-join through the section 8.2 rewrite to
// `0 = (SELECT COUNT(*) ...)`: NULL-keyed outer rows have no matching inner
// rows and must be kept.
func TestNestJA2NullCorrelationKeyNotExists(t *testing.T) {
	db := newNullKeyDB(t)
	sql := `SELECT NKA.R FROM NKA
	        WHERE NOT EXISTS (SELECT NKB.ID FROM NKB WHERE NKB.K = NKA.K)`

	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(1)", "(3)")

	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	wantRows(t, ja2, "(1)", "(3)")
}

// Non-COUNT aggregates take the other step-3 branch, where TEMP3 carries no
// NULL group keys; the NULL-safe back-join must coincide with plain
// equality there: NULL-keyed outer rows compare against a NULL aggregate
// and are dropped, exactly as nested iteration drops them.
func TestNestJA2NullCorrelationKeyNonCount(t *testing.T) {
	db := newNullKeyDB(t)
	sql := `SELECT NKA.R FROM NKA
	        WHERE NKA.V <= (SELECT MAX(NKB.W) FROM NKB WHERE NKB.K = NKA.K)`

	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(2)")

	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	wantRows(t, ja2, "(2)")
}
